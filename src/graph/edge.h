// Weighted undirected edges.
#pragma once

#include <algorithm>
#include <cstdint>
#include <tuple>

namespace parhc {

/// An undirected weighted edge between original point ids u and v.
struct WeightedEdge {
  uint32_t u = 0;
  uint32_t v = 0;
  double w = 0;

  /// Deterministic total order: by weight, then canonical endpoint ids.
  /// Using this everywhere makes MSTs and dendrograms unique even with
  /// tied weights, so algorithms can be cross-validated edge-for-edge.
  friend bool operator<(const WeightedEdge& a, const WeightedEdge& b) {
    auto ka = std::minmax(a.u, a.v);
    auto kb = std::minmax(b.u, b.v);
    return std::tie(a.w, ka.first, ka.second) <
           std::tie(b.w, kb.first, kb.second);
  }
  friend bool operator==(const WeightedEdge& a, const WeightedEdge& b) {
    auto ka = std::minmax(a.u, a.v);
    auto kb = std::minmax(b.u, b.v);
    return a.w == b.w && ka == kb;
  }
};

}  // namespace parhc
