// Batched parallel Kruskal (paper Section 3.1.2, "ParallelKruskal").
//
// The GFK/MemoGFK drivers deliver batches of edges whose weights are no
// smaller than any previously delivered batch; each batch is sorted in
// parallel and folded into the shared union-find sequentially (the union
// pass is O(batch * alpha), far below the sort).
#pragma once

#include <vector>

#include "graph/edge.h"
#include "graph/union_find.h"
#include "parallel/sort.h"

namespace parhc {

/// Adds the MST-relevant edges of `batch` to `out`, merging components in
/// `uf`. The batch is consumed (sorted in place).
inline void KruskalBatch(std::vector<WeightedEdge>& batch, UnionFind& uf,
                         std::vector<WeightedEdge>& out) {
  ParallelSort(batch, [](const WeightedEdge& a, const WeightedEdge& b) {
    return a < b;
  });
  for (const WeightedEdge& e : batch) {
    if (uf.Union(e.u, e.v)) out.push_back(e);
  }
}

/// One-shot MST of an explicit edge list over `n` vertices. Returns the
/// forest edges (n-1 edges if connected).
inline std::vector<WeightedEdge> KruskalMst(size_t n,
                                            std::vector<WeightedEdge> edges) {
  UnionFind uf(n);
  std::vector<WeightedEdge> out;
  out.reserve(n > 0 ? n - 1 : 0);
  KruskalBatch(edges, uf, out);
  return out;
}

}  // namespace parhc
