// Union-find with path halving.
//
// Find is safe to call concurrently with other Finds (benign CAS-free
// atomic halving). Unions must either run in a sequential phase (the
// Kruskal batch loop) or touch pairwise vertex-disjoint components (the
// parallel dendrogram builder's light subproblems): parent/rank accesses
// then never overlap, and the component counter is atomic so the tally
// stays exact either way.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "parallel/scheduler.h"
#include "util/check.h"

namespace parhc {

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), rank_(n, 0), components_(n) {
    ParallelFor(0, n, [&](size_t i) {
      parent_[i].store(static_cast<uint32_t>(i), std::memory_order_relaxed);
    });
  }

  /// Representative of x's component. Thread-safe with other Finds.
  uint32_t Find(uint32_t x) const {
    uint32_t p = parent_[x].load(std::memory_order_relaxed);
    while (p != x) {
      uint32_t gp = parent_[p].load(std::memory_order_relaxed);
      parent_[x].store(gp, std::memory_order_relaxed);  // path halving
      x = gp;
      p = parent_[x].load(std::memory_order_relaxed);
    }
    return x;
  }

  /// Joins the components of a and b; returns false if already joined.
  /// Concurrent calls are allowed only on vertex-disjoint components (see
  /// the header comment); otherwise call from a sequential phase.
  bool Union(uint32_t a, uint32_t b) {
    uint32_t ra = Find(a), rb = Find(b);
    if (ra == rb) return false;
    if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
    parent_[rb].store(ra, std::memory_order_relaxed);
    if (rank_[ra] == rank_[rb]) ++rank_[ra];
    components_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  bool Connected(uint32_t a, uint32_t b) const { return Find(a) == Find(b); }

  size_t num_components() const {
    return components_.load(std::memory_order_relaxed);
  }
  size_t size() const { return parent_.size(); }

 private:
  mutable std::vector<std::atomic<uint32_t>> parent_;
  std::vector<uint8_t> rank_;
  std::atomic<size_t> components_;
};

}  // namespace parhc
