// Dense O(n^2) Prim's algorithm over an implicit complete graph.
//
// Test oracle: exact MSTs of the Euclidean and mutual-reachability complete
// graphs, plus the Prim traversal order that defines the reachability plot
// (paper Section 2.1). Sequential by design.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/edge.h"
#include "util/check.h"

namespace parhc {

inline constexpr uint32_t kNilVertex = 0xffffffffu;

/// MST of the complete graph on n vertices with weights w(i, j).
template <typename WeightFn>
std::vector<WeightedEdge> PrimMst(size_t n, WeightFn w) {
  PARHC_CHECK(n >= 1);
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  std::vector<uint32_t> from(n, 0);
  std::vector<bool> in_tree(n, false);
  std::vector<WeightedEdge> out;
  out.reserve(n - 1);
  uint32_t cur = 0;
  in_tree[0] = true;
  for (size_t step = 1; step < n; ++step) {
    for (uint32_t j = 0; j < n; ++j) {
      if (in_tree[j]) continue;
      double d = w(cur, j);
      if (d < best[j]) {
        best[j] = d;
        from[j] = cur;
      }
    }
    uint32_t next = 0;
    double nd = std::numeric_limits<double>::infinity();
    for (uint32_t j = 0; j < n; ++j) {
      if (!in_tree[j] && best[j] < nd) {
        nd = best[j];
        next = j;
      }
    }
    out.push_back({from[next], next, nd});
    in_tree[next] = true;
    cur = next;
  }
  return out;
}

/// Prim traversal of an explicit tree (adjacency from `edges`) starting at
/// `s`: returns (visit order, reachability values), where the value of the
/// i-th visited point is the weight at which it joined the visited set
/// (infinity for the start point). This is the reachability plot definition
/// of Section 2.1.
inline std::pair<std::vector<uint32_t>, std::vector<double>>
PrimReachabilityReference(size_t n, const std::vector<WeightedEdge>& edges,
                          uint32_t s) {
  // Build adjacency.
  std::vector<std::vector<std::pair<uint32_t, double>>> adj(n);
  for (const auto& e : edges) {
    adj[e.u].push_back({e.v, e.w});
    adj[e.v].push_back({e.u, e.w});
  }
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  std::vector<bool> done(n, false);
  std::vector<uint32_t> order;
  std::vector<double> value;
  order.reserve(n);
  value.reserve(n);
  // O(n^2) selection; exact tie-breaking by vertex id for determinism.
  best[s] = -1;  // ensures s is selected first
  for (size_t step = 0; step < n; ++step) {
    uint32_t next = kNilVertex;
    for (uint32_t v = 0; v < n; ++v) {
      if (!done[v] && (next == kNilVertex || best[v] < best[next])) next = v;
    }
    PARHC_CHECK_MSG(best[next] != std::numeric_limits<double>::infinity() ||
                        step == 0,
                    "tree is disconnected");
    done[next] = true;
    order.push_back(next);
    value.push_back(step == 0 ? std::numeric_limits<double>::infinity()
                              : best[next]);
    for (auto [nb, w] : adj[next]) {
      if (!done[nb] && w < best[nb]) best[nb] = w;
    }
  }
  return {std::move(order), std::move(value)};
}

}  // namespace parhc
