// CSV point IO.
#pragma once

#include <string>
#include <vector>

#include "geometry/point.h"
#include "util/check.h"

namespace parhc {

/// Writes one point per line, comma-separated coordinates.
void WritePointsCsv(const std::string& path,
                    const std::vector<std::vector<double>>& rows);

/// Reads a CSV of doubles; returns rows. Blank lines and lines starting
/// with '#' are skipped.
std::vector<std::vector<double>> ReadPointsCsv(const std::string& path);

/// Typed helpers.
template <int D>
void WritePointsCsv(const std::string& path,
                    const std::vector<Point<D>>& pts) {
  std::vector<std::vector<double>> rows(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    rows[i].assign(pts[i].x.begin(), pts[i].x.end());
  }
  WritePointsCsv(path, rows);
}

template <int D>
std::vector<Point<D>> ReadPointsCsvAs(const std::string& path) {
  auto rows = ReadPointsCsv(path);
  std::vector<Point<D>> pts(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    PARHC_CHECK_MSG(rows[i].size() == static_cast<size_t>(D),
                    "CSV row dimension mismatch");
    for (int d = 0; d < D; ++d) pts[i][d] = rows[i][d];
  }
  return pts;
}

}  // namespace parhc
