// CSV and binary point IO.
//
// The binary format is a small fixed header followed by row-major doubles,
// so the dataset registry can load large datasets without CSV parsing:
//   uint32 magic  = kPointsBinMagic ("PHCB")
//   uint32 dim
//   uint64 count
//   count * dim doubles (native little-endian byte order)
//
// The binary *readers* throw std::runtime_error on unreadable, malformed,
// truncated, or wrong-dimension files — bad input data is a serving-path
// error the caller reports, not a program invariant (PARHC_CHECK remains
// for programmer errors like ragged rows passed to a writer).
#pragma once

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "geometry/point.h"
#include "util/check.h"

namespace parhc {

/// Writes one point per line, comma-separated coordinates.
void WritePointsCsv(const std::string& path,
                    const std::vector<std::vector<double>>& rows);

/// Reads a CSV of doubles; returns rows. Blank lines and lines starting
/// with '#' are skipped.
std::vector<std::vector<double>> ReadPointsCsv(const std::string& path);

/// "PHCB" little-endian.
inline constexpr uint32_t kPointsBinMagic = 0x42434850u;

/// Dimension and point count read from a binary point file's header.
struct PointsBinHeader {
  uint32_t dim;
  uint64_t count;
};

/// Writes the binary point format. All rows must share one dimension >= 1.
void WritePointsBin(const std::string& path,
                    const std::vector<std::vector<double>>& rows);

/// Reads just the header of a binary point file (for dimension dispatch).
/// Throws std::runtime_error on unreadable or malformed files.
PointsBinHeader ReadPointsBinHeader(const std::string& path);

/// Reads a binary point file; returns rows. Throws std::runtime_error on
/// unreadable, malformed, or truncated files.
std::vector<std::vector<double>> ReadPointsBin(const std::string& path);

/// Typed helpers.
template <int D>
void WritePointsCsv(const std::string& path,
                    const std::vector<Point<D>>& pts) {
  std::vector<std::vector<double>> rows(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    rows[i].assign(pts[i].x.begin(), pts[i].x.end());
  }
  WritePointsCsv(path, rows);
}

template <int D>
std::vector<Point<D>> ReadPointsCsvAs(const std::string& path) {
  auto rows = ReadPointsCsv(path);
  std::vector<Point<D>> pts(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    PARHC_CHECK_MSG(rows[i].size() == static_cast<size_t>(D),
                    "CSV row dimension mismatch");
    for (int d = 0; d < D; ++d) pts[i][d] = rows[i][d];
  }
  return pts;
}

namespace internal {
/// Streaming binary write shared by the typed and row overloads: `coord`
/// maps (point index, dim) to the coordinate value.
void WritePointsBinStream(const std::string& path, uint32_t dim,
                          uint64_t count,
                          double (*coord)(const void*, uint64_t, uint32_t),
                          const void* ctx);
/// Opens `path`, reads and validates the header (including that the payload
/// size matches dim * count doubles), and leaves the stream positioned at
/// the first coordinate. Throws std::runtime_error on any problem.
PointsBinHeader OpenPointsBin(std::ifstream& in, const std::string& path);
}  // namespace internal

template <int D>
void WritePointsBin(const std::string& path,
                    const std::vector<Point<D>>& pts) {
  internal::WritePointsBinStream(
      path, static_cast<uint32_t>(D), pts.size(),
      [](const void* ctx, uint64_t i, uint32_t d) {
        return (*static_cast<const std::vector<Point<D>>*>(ctx))[i][static_cast<int>(d)];
      },
      &pts);
}

/// Reads a binary point file directly into typed points: one contiguous
/// read into the Point<D> array, no per-row allocation — the fast path the
/// registry uses for large datasets. Throws std::runtime_error on
/// unreadable, malformed, truncated, or wrong-dimension files.
template <int D>
std::vector<Point<D>> ReadPointsBinAs(const std::string& path) {
  static_assert(sizeof(Point<D>) == D * sizeof(double),
                "Point<D> must be a bare coordinate array for bulk IO");
  std::ifstream in;
  PointsBinHeader h = internal::OpenPointsBin(in, path);
  if (h.dim != static_cast<uint32_t>(D)) {
    throw std::runtime_error(path + ": binary point file has dimension " +
                             std::to_string(h.dim) + ", expected " +
                             std::to_string(D));
  }
  std::vector<Point<D>> pts(h.count);
  in.read(reinterpret_cast<char*>(pts.data()),
          static_cast<std::streamsize>(h.count * sizeof(Point<D>)));
  if (!in.good() && h.count > 0) {
    throw std::runtime_error(path + ": binary point file truncated");
  }
  return pts;
}

}  // namespace parhc
