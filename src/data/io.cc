#include "data/io.h"

#include <fstream>
#include <sstream>

namespace parhc {

void WritePointsCsv(const std::string& path,
                    const std::vector<std::vector<double>>& rows) {
  std::ofstream out(path);
  PARHC_CHECK_MSG(out.good(), "cannot open output file");
  out.precision(17);
  for (const auto& row : rows) {
    for (size_t d = 0; d < row.size(); ++d) {
      if (d) out << ',';
      out << row[d];
    }
    out << '\n';
  }
}

std::vector<std::vector<double>> ReadPointsCsv(const std::string& path) {
  std::ifstream in(path);
  PARHC_CHECK_MSG(in.good(), "cannot open input file");
  std::vector<std::vector<double>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::vector<double> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      row.push_back(std::stod(cell));
    }
    if (!row.empty()) rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace parhc
