#include "data/io.h"

#include <fstream>
#include <sstream>

namespace parhc {

void WritePointsCsv(const std::string& path,
                    const std::vector<std::vector<double>>& rows) {
  std::ofstream out(path);
  PARHC_CHECK_MSG(out.good(), "cannot open output file");
  out.precision(17);
  for (const auto& row : rows) {
    for (size_t d = 0; d < row.size(); ++d) {
      if (d) out << ',';
      out << row[d];
    }
    out << '\n';
  }
}

void WritePointsBin(const std::string& path,
                    const std::vector<std::vector<double>>& rows) {
  uint32_t dim = rows.empty() ? 0 : static_cast<uint32_t>(rows[0].size());
  PARHC_CHECK_MSG(dim >= 1, "binary point file needs dimension >= 1");
  for (const auto& row : rows) {
    PARHC_CHECK_MSG(row.size() == dim, "rows must share one dimension");
  }
  internal::WritePointsBinStream(
      path, dim, rows.size(),
      [](const void* ctx, uint64_t i, uint32_t d) {
        return (*static_cast<const std::vector<std::vector<double>>*>(ctx))[i][d];
      },
      &rows);
}

namespace internal {

void WritePointsBinStream(const std::string& path, uint32_t dim,
                          uint64_t count,
                          double (*coord)(const void*, uint64_t, uint32_t),
                          const void* ctx) {
  std::ofstream out(path, std::ios::binary);
  PARHC_CHECK_MSG(out.good(), "cannot open output file");
  uint32_t magic = kPointsBinMagic;
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  std::vector<double> row(dim);
  for (uint64_t i = 0; i < count; ++i) {
    for (uint32_t d = 0; d < dim; ++d) row[d] = coord(ctx, i, d);
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(dim * sizeof(double)));
  }
  PARHC_CHECK_MSG(out.good(), "binary point write failed");
}

PointsBinHeader OpenPointsBin(std::ifstream& in, const std::string& path) {
  in.open(path, std::ios::binary);
  if (!in.good()) throw std::runtime_error("cannot open " + path);
  uint32_t magic = 0;
  PointsBinHeader h{0, 0};
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&h.dim), sizeof(h.dim));
  in.read(reinterpret_cast<char*>(&h.count), sizeof(h.count));
  if (!in.good() || magic != kPointsBinMagic) {
    throw std::runtime_error(path + ": not a parhc binary point file");
  }
  if (h.dim < 1) {
    throw std::runtime_error(path + ": binary point file has dimension 0");
  }
  // Validate the payload size up front so a corrupt count neither truncates
  // mid-read nor provokes a huge allocation. Compare by division: the
  // multiplication count * dim * 8 could wrap for a crafted count.
  std::streampos payload_start = in.tellg();
  in.seekg(0, std::ios::end);
  uint64_t payload = static_cast<uint64_t>(in.tellg() - payload_start);
  in.seekg(payload_start);
  uint64_t row_bytes = static_cast<uint64_t>(h.dim) * sizeof(double);
  if (payload % row_bytes != 0 || h.count != payload / row_bytes) {
    throw std::runtime_error(path +
                             ": binary point file truncated or corrupt");
  }
  return h;
}

}  // namespace internal

PointsBinHeader ReadPointsBinHeader(const std::string& path) {
  std::ifstream in;
  return internal::OpenPointsBin(in, path);
}

std::vector<std::vector<double>> ReadPointsBin(const std::string& path) {
  std::ifstream in;
  PointsBinHeader h = internal::OpenPointsBin(in, path);
  std::vector<std::vector<double>> rows(h.count);
  std::vector<double> row(h.dim);
  for (uint64_t i = 0; i < h.count; ++i) {
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(h.dim * sizeof(double)));
    if (!in.good()) {
      throw std::runtime_error(path + ": binary point file truncated");
    }
    rows[i].assign(row.begin(), row.end());
  }
  return rows;
}

std::vector<std::vector<double>> ReadPointsCsv(const std::string& path) {
  std::ifstream in(path);
  PARHC_CHECK_MSG(in.good(), "cannot open input file");
  std::vector<std::vector<double>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::vector<double> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      row.push_back(std::stod(cell));
    }
    if (!row.empty()) rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace parhc
