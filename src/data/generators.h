// Synthetic dataset generators (paper Section 5, "Data Sets").
//
//  * UniformFill: n points uniform in a hypergrid of side sqrt(n).
//  * SeedSpreaderVarden ("SS-varden"): the variable-density seed-spreader of
//    Gan & Tao [27] — a spreader performs a random walk, emitting points in
//    a local vicinity whose radius changes on restarts, producing clusters
//    of varying density plus background noise.
//  * SkewedLevy: heavy-tailed random walk; stand-in for the extremely skewed
//    GeoLife GPS dataset (see DESIGN.md substitutions).
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "geometry/point.h"
#include "parallel/scheduler.h"
#include "parallel/semisort.h"

namespace parhc {

namespace internal {
// Deterministic per-index double in [0, 1): parallel-friendly counter RNG.
inline double U01(uint64_t seed, uint64_t idx, uint64_t dim) {
  uint64_t h = HashU64(seed ^ HashU64(idx * 0x51ul + dim + 1));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Deterministic per-index standard normal (Box-Muller over the counter
// RNG): parallel-friendly like U01, used by the high-dim embedding
// generator where sequential mt19937 would serialize n*d draws.
inline double Gauss01(uint64_t seed, uint64_t idx, uint64_t dim) {
  double u1 = U01(seed, idx, 2 * dim);
  double u2 = U01(seed, idx, 2 * dim + 1);
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.141592653589793 * u2);
}
}  // namespace internal

/// n points uniformly distributed in [0, sqrt(n))^D (paper's UniformFill).
template <int D>
std::vector<Point<D>> UniformFill(size_t n, uint64_t seed = 1) {
  double side = std::sqrt(static_cast<double>(n));
  std::vector<Point<D>> pts(n);
  ParallelFor(0, n, [&](size_t i) {
    for (int d = 0; d < D; ++d) {
      pts[i][d] = side * internal::U01(seed, i, static_cast<uint64_t>(d));
    }
  });
  return pts;
}

/// Variable-density seed-spreader (SS-varden) of Gan & Tao [27]: `clusters`
/// random-walk clusters with vicinity radii varying by an order of
/// magnitude, plus a 10^-4 fraction of uniform noise, in [0, 1e5)^D.
template <int D>
std::vector<Point<D>> SeedSpreaderVarden(size_t n, uint64_t seed = 1,
                                         int clusters = 10) {
  constexpr double kSide = 1e5;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::vector<Point<D>> pts;
  pts.reserve(n);
  size_t noise = n / 10000;
  size_t walk_points = n - noise;
  size_t per_cluster = walk_points / static_cast<size_t>(clusters);
  for (int c = 0; c < clusters; ++c) {
    size_t count = (c + 1 == clusters) ? walk_points - pts.size()
                                       : per_cluster;
    // Restart: new location and new vicinity radius (log-uniform over one
    // order of magnitude -> varying density).
    Point<D> pos;
    for (int d = 0; d < D; ++d) pos[d] = kSide * (0.1 + 0.8 * u01(rng));
    double radius = 50.0 * std::pow(10.0, u01(rng));
    for (size_t i = 0; i < count; ++i) {
      Point<D> p;
      for (int d = 0; d < D; ++d) {
        p[d] = pos[d] + radius * (2.0 * u01(rng) - 1.0);
      }
      pts.push_back(p);
      // Step the spreader by radius/2 in a random direction.
      double norm = 0;
      double dir[D];
      for (int d = 0; d < D; ++d) {
        dir[d] = gauss(rng);
        norm += dir[d] * dir[d];
      }
      norm = std::sqrt(norm) + 1e-12;
      for (int d = 0; d < D; ++d) pos[d] += 0.5 * radius * dir[d] / norm;
    }
  }
  while (pts.size() < n) {  // background noise
    Point<D> p;
    for (int d = 0; d < D; ++d) p[d] = kSide * u01(rng);
    pts.push_back(p);
  }
  return pts;
}

/// Heavy-tailed (Pareto step length) random walk; an extremely skewed point
/// distribution standing in for GPS-trajectory data such as GeoLife.
template <int D>
std::vector<Point<D>> SkewedLevy(size_t n, uint64_t seed = 1) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u01(1e-9, 1.0);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::vector<Point<D>> pts(n);
  Point<D> pos{};
  for (size_t i = 0; i < n; ++i) {
    double step = std::pow(u01(rng), -1.0 / 1.2);  // Pareto(alpha=1.2)
    double norm = 0;
    double dir[D];
    for (int d = 0; d < D; ++d) {
      dir[d] = gauss(rng);
      norm += dir[d] * dir[d];
    }
    norm = std::sqrt(norm) + 1e-12;
    for (int d = 0; d < D; ++d) pos[d] += step * dir[d] / norm;
    pts[i] = pos;
  }
  return pts;
}

/// Mixture of uniform background and Gaussian blobs; stand-in for the
/// mid-dimensional sensor datasets (Household / HT / CHEM).
template <int D>
std::vector<Point<D>> ClusteredGaussians(size_t n, uint64_t seed = 1,
                                         int blobs = 16) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::normal_distribution<double> gauss(0.0, 1.0);
  constexpr double kSide = 1e3;
  std::vector<Point<D>> centers(blobs);
  for (int b = 0; b < blobs; ++b) {
    for (int d = 0; d < D; ++d) centers[b][d] = kSide * u01(rng);
  }
  std::vector<Point<D>> pts(n);
  for (size_t i = 0; i < n; ++i) {
    if (u01(rng) < 0.05) {  // 5% uniform background
      for (int d = 0; d < D; ++d) pts[i][d] = kSide * u01(rng);
    } else {
      const Point<D>& c = centers[rng() % blobs];
      for (int d = 0; d < D; ++d) pts[i][d] = c[d] + 10.0 * gauss(rng);
    }
  }
  return pts;
}

/// Gaussian-mixture embeddings: the high-dimensional ML-embedding workload
/// (d = 64..768). `clusters` centers drawn from N(0,1)^D (concentrating
/// near the sqrt(D)-radius shell like real normalized embeddings), each
/// point a center plus N(0, sigma^2) noise, cluster picked by a hash of
/// the index. Fully counter-RNG driven, so generation parallelizes over
/// points and is deterministic for a given (n, seed) at any worker count.
template <int D>
std::vector<Point<D>> GaussianEmbeddings(size_t n, uint64_t seed = 1,
                                         int clusters = 20,
                                         double sigma = 0.2) {
  std::vector<Point<D>> centers(clusters);
  for (int c = 0; c < clusters; ++c) {
    for (int d = 0; d < D; ++d) {
      centers[c][d] = internal::Gauss01(seed ^ 0x9e3779b97f4a7c15ull,
                                        static_cast<uint64_t>(c),
                                        static_cast<uint64_t>(d));
    }
  }
  std::vector<Point<D>> pts(n);
  ParallelFor(0, n, [&](size_t i) {
    const Point<D>& c =
        centers[HashU64(seed ^ (i * 0x9ddfea08eb382d69ull)) %
                static_cast<uint64_t>(clusters)];
    for (int d = 0; d < D; ++d) {
      pts[i][d] = c[d] + sigma * internal::Gauss01(seed + 1, i,
                                                   static_cast<uint64_t>(d));
    }
  });
  return pts;
}

}  // namespace parhc
