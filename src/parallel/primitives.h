// Work-efficient parallel sequence primitives (paper Section 2.2).
//
// All primitives take O(n) work and O(log n) depth (given the scheduler),
// matching the bounds the paper assumes: prefix sum (Scan), Filter, Split,
// Reduce, and the WRITE_MIN priority concurrent write.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "parallel/scheduler.h"
#include "util/check.h"

namespace parhc {

/// Builds a vector of `n` elements where element i is `f(i)`.
template <typename F>
auto Tabulate(size_t n, F&& f) {
  using T = decltype(f(size_t{0}));
  std::vector<T> out(n);
  ParallelFor(0, n, [&](size_t i) { out[i] = f(i); });
  return out;
}

namespace internal {
// Number of blocks used by blocked two-pass primitives (scan/filter).
inline size_t NumBlocks(size_t n) {
  size_t nb = static_cast<size_t>(NumWorkers()) * 8;
  if (nb > n) nb = n;
  if (nb < 1) nb = 1;
  return nb;
}
}  // namespace internal

/// Parallel reduction of a[0..n) with associative `op` and identity `id`.
template <typename T, typename Op>
T Reduce(const T* a, size_t n, T id, Op op) {
  if (n == 0) return id;
  size_t nb = internal::NumBlocks(n);
  size_t block = (n + nb - 1) / nb;
  std::vector<T> sums(nb, id);
  ParallelFor(
      0, nb,
      [&](size_t b) {
        size_t lo = b * block, hi = std::min(n, lo + block);
        T acc = id;
        for (size_t i = lo; i < hi; ++i) acc = op(acc, a[i]);
        sums[b] = acc;
      },
      1);
  T total = id;
  for (size_t b = 0; b < nb; ++b) total = op(total, sums[b]);
  return total;
}

template <typename T, typename Op>
T Reduce(const std::vector<T>& a, T id, Op op) {
  return Reduce(a.data(), a.size(), id, op);
}

/// Exclusive prefix sum of a[0..n) in place; returns the overall sum.
template <typename T, typename Op>
T ScanExclusive(T* a, size_t n, T id, Op op) {
  if (n == 0) return id;
  size_t nb = internal::NumBlocks(n);
  size_t block = (n + nb - 1) / nb;
  std::vector<T> sums(nb, id);
  ParallelFor(
      0, nb,
      [&](size_t b) {
        size_t lo = b * block, hi = std::min(n, lo + block);
        T acc = id;
        for (size_t i = lo; i < hi; ++i) acc = op(acc, a[i]);
        sums[b] = acc;
      },
      1);
  T total = id;
  for (size_t b = 0; b < nb; ++b) {
    T next = op(total, sums[b]);
    sums[b] = total;  // sums[b] becomes the offset of block b
    total = next;
  }
  ParallelFor(
      0, nb,
      [&](size_t b) {
        size_t lo = b * block, hi = std::min(n, lo + block);
        T acc = sums[b];
        for (size_t i = lo; i < hi; ++i) {
          T next = op(acc, a[i]);
          a[i] = acc;
          acc = next;
        }
      },
      1);
  return total;
}

template <typename T>
T ScanExclusiveAdd(std::vector<T>& a) {
  return ScanExclusive(a.data(), a.size(), T{0},
                       [](T x, T y) { return x + y; });
}

/// Returns elements of a[0..n) satisfying `pred`, preserving order.
template <typename T, typename Pred>
std::vector<T> Filter(const T* a, size_t n, Pred pred) {
  if (n == 0) return {};
  size_t nb = internal::NumBlocks(n);
  size_t block = (n + nb - 1) / nb;
  std::vector<size_t> counts(nb, 0);
  ParallelFor(
      0, nb,
      [&](size_t b) {
        size_t lo = b * block, hi = std::min(n, lo + block);
        size_t c = 0;
        for (size_t i = lo; i < hi; ++i) c += pred(a[i]) ? 1 : 0;
        counts[b] = c;
      },
      1);
  size_t total = ScanExclusive(counts.data(), nb, size_t{0},
                               [](size_t x, size_t y) { return x + y; });
  std::vector<T> out(total);
  ParallelFor(
      0, nb,
      [&](size_t b) {
        size_t lo = b * block, hi = std::min(n, lo + block);
        size_t o = counts[b];
        for (size_t i = lo; i < hi; ++i) {
          if (pred(a[i])) out[o++] = a[i];
        }
      },
      1);
  return out;
}

template <typename T, typename Pred>
std::vector<T> Filter(const std::vector<T>& a, Pred pred) {
  return Filter(a.data(), a.size(), pred);
}

/// Split: partitions `a` into (elements where pred is true, rest), each in
/// the original relative order (paper Section 2.2; used on Line 4/6 of
/// Algorithm 2).
template <typename T, typename Pred>
std::pair<std::vector<T>, std::vector<T>> Split(const std::vector<T>& a,
                                                Pred pred) {
  std::vector<T> yes = Filter(a, pred);
  std::vector<T> no = Filter(a, [&](const T& x) { return !pred(x); });
  return {std::move(yes), std::move(no)};
}

/// WRITE_MIN priority concurrent write (paper Section 2.2): atomically sets
/// `*loc = min(*loc, val)` under `<`.
template <typename T>
void WriteMin(std::atomic<T>* loc, T val) {
  T cur = loc->load(std::memory_order_relaxed);
  while (val < cur &&
         !loc->compare_exchange_weak(cur, val, std::memory_order_acq_rel)) {
  }
}

/// WRITE_MAX: atomically sets `*loc = max(*loc, val)` under `<`.
template <typename T>
void WriteMax(std::atomic<T>* loc, T val) {
  T cur = loc->load(std::memory_order_relaxed);
  while (cur < val &&
         !loc->compare_exchange_weak(cur, val, std::memory_order_acq_rel)) {
  }
}

/// Flattens a vector of vectors into one vector (parallel over sources).
template <typename T>
std::vector<T> Flatten(const std::vector<std::vector<T>>& parts) {
  size_t np = parts.size();
  std::vector<size_t> offsets(np, 0);
  for (size_t i = 0; i < np; ++i) offsets[i] = parts[i].size();
  size_t total = ScanExclusive(offsets.data(), np, size_t{0},
                               [](size_t x, size_t y) { return x + y; });
  std::vector<T> out(total);
  ParallelFor(
      0, np,
      [&](size_t i) {
        std::copy(parts[i].begin(), parts[i].end(), out.begin() + offsets[i]);
      },
      1);
  return out;
}

}  // namespace parhc
