#include "parallel/scheduler.h"

#include <chrono>
#include <cstdlib>
#include <functional>

namespace parhc {

thread_local internal::ArenaState* Scheduler::tl_arena = nullptr;
thread_local int Scheduler::tl_slot = -1;

namespace {

std::unique_ptr<Scheduler>& GlobalSchedulerSlot() {
  static std::unique_ptr<Scheduler> slot;
  return slot;
}

int DefaultWorkerCount() {
  if (const char* env = std::getenv("PARHC_WORKERS")) {
    int v = std::atoi(env);
    if (v >= 1) return v;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

Scheduler& Scheduler::Get() {
  auto& slot = GlobalSchedulerSlot();
  if (!slot) slot.reset(new Scheduler(DefaultWorkerCount()));
  return *slot;
}

void Scheduler::Reset(int num_workers) {
  PARHC_CHECK(num_workers >= 1);
  auto& slot = GlobalSchedulerSlot();
  if (slot) {
    PARHC_CHECK_MSG(
        slot->external_active_.load(std::memory_order_acquire) == 0,
        "Scheduler::Reset while parallel work is in flight (a thread is "
        "inside ParDo/ParallelFor or TaskArena::Execute)");
    PARHC_CHECK_MSG(slot->live_arenas_.load(std::memory_order_acquire) == 0,
                    "Scheduler::Reset while TaskArena objects are live");
  }
  slot.reset();  // join old workers before spawning new ones
  slot.reset(new Scheduler(num_workers));
}

Scheduler::Scheduler(int num_workers)
    : total_workers_(num_workers),
      root_(std::make_shared<internal::ArenaState>(num_workers)) {
  arenas_.push_back(root_);
  arenas_version_.fetch_add(1, std::memory_order_release);
  threads_.reserve(static_cast<size_t>(total_workers_ - 1));
  for (int id = 1; id < total_workers_; ++id) {
    threads_.emplace_back([this, id] { WorkerLoop(id); });
  }
}

Scheduler::~Scheduler() {
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(sleep_mutex_);
    sleep_cv_.notify_all();
  }
  for (auto& t : threads_) t.join();
}

void Scheduler::RegisterArena(
    const std::shared_ptr<internal::ArenaState>& a) {
  {
    std::lock_guard<std::mutex> lk(arenas_mu_);
    arenas_.push_back(a);
  }
  live_arenas_.fetch_add(1, std::memory_order_relaxed);
  arenas_version_.fetch_add(1, std::memory_order_release);
}

void Scheduler::UnregisterArena(const internal::ArenaState* a) {
  {
    std::lock_guard<std::mutex> lk(arenas_mu_);
    for (size_t i = 0; i < arenas_.size(); ++i) {
      if (arenas_[i].get() == a) {
        arenas_.erase(arenas_.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
  }
  live_arenas_.fetch_sub(1, std::memory_order_release);
  arenas_version_.fetch_add(1, std::memory_order_release);
}

void Scheduler::WakeOne() {
  if (sleepers_.load(std::memory_order_relaxed) > 0) {
    std::lock_guard<std::mutex> lk(sleep_mutex_);
    sleep_cv_.notify_one();
  }
}

bool Scheduler::RunOneIn(internal::ArenaState& a) {
  // Scan the arena's deques starting from a pseudo-random victim; include
  // our own (oldest job first), which implements local helping on joins.
  static thread_local uint64_t rng =
      0x9e3779b97f4a7c15ull ^
      (std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1);
  rng ^= rng << 13;
  rng ^= rng >> 7;
  rng ^= rng << 17;
  int n = a.slots;
  int start = static_cast<int>(rng % static_cast<uint64_t>(n));
  for (int k = 0; k < n; ++k) {
    int victim = start + k;
    if (victim >= n) victim -= n;
    internal::JobBase* job = a.deques[static_cast<size_t>(victim)].Steal();
    if (job != nullptr) {
      a.pending.fetch_sub(1, std::memory_order_relaxed);
      pending_.fetch_sub(1, std::memory_order_relaxed);
      job->Run();
      return true;
    }
  }
  return false;
}

void Scheduler::WaitFor(internal::ArenaState& a, internal::JobBase& job) {
  while (!job.done.load(std::memory_order_acquire)) {
    if (!RunOneIn(a)) {
#if defined(__x86_64__)
      __builtin_ia32_pause();
#else
      std::this_thread::yield();
#endif
    }
  }
}

void Scheduler::WorkerLoop(int /*id*/) {
  uint64_t seen_version = ~0ull;
  std::vector<std::shared_ptr<internal::ArenaState>> arenas;
  int idle_spins = 0;
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (arenas_version_.load(std::memory_order_acquire) != seen_version) {
      std::lock_guard<std::mutex> lk(arenas_mu_);
      arenas = arenas_;
      seen_version = arenas_version_.load(std::memory_order_acquire);
    }
    bool ran = false;
    for (const auto& a : arenas) {
      if (a->pending.load(std::memory_order_relaxed) <= 0) continue;
      int slot = a->AcquireSlot();
      if (slot < 0) continue;  // group already fully staffed
      tl_arena = a.get();
      tl_slot = slot;
      // Stay in the group until it runs dry for a while: fork-join work
      // arrives in bursts, and bouncing between arenas thrashes slots.
      int dry = 0;
      while (!shutdown_.load(std::memory_order_acquire) && dry < 64) {
        if (RunOneIn(*a)) {
          dry = 0;
          ran = true;
        } else {
          ++dry;
#if defined(__x86_64__)
          __builtin_ia32_pause();
#else
          std::this_thread::yield();
#endif
        }
      }
      tl_arena = nullptr;
      tl_slot = -1;
      a->ReleaseSlot(slot);
    }
    if (ran) {
      idle_spins = 0;
      continue;
    }
    if (++idle_spins < 128) {
      std::this_thread::yield();
      continue;
    }
    // Park until new work is pushed or shutdown; timed wait guards against
    // missed wakeups (pending_ is a hint, not a precise count).
    std::unique_lock<std::mutex> lk(sleep_mutex_);
    if (pending_.load(std::memory_order_relaxed) == 0 &&
        !shutdown_.load(std::memory_order_acquire)) {
      sleepers_.fetch_add(1, std::memory_order_relaxed);
      sleep_cv_.wait_for(lk, std::chrono::milliseconds(1));
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
    }
    idle_spins = 0;
  }
}

TaskArena::TaskArena(int max_workers) {
  PARHC_CHECK(max_workers >= 1);
  Scheduler& s = Scheduler::Get();
  int slots = std::min(max_workers, s.total_workers());
  state_ = std::make_shared<internal::ArenaState>(slots);
  s.RegisterArena(state_);
}

TaskArena::~TaskArena() {
  Scheduler::Get().UnregisterArena(state_.get());
}

int NumWorkers() { return Scheduler::Get().num_workers(); }

void SetNumWorkers(int p) { Scheduler::Reset(p); }

}  // namespace parhc
