#include "parallel/scheduler.h"

#include <chrono>
#include <random>

namespace parhc {

thread_local int Scheduler::tl_worker_id = -1;

namespace {
std::unique_ptr<Scheduler>& GlobalSchedulerSlot() {
  static std::unique_ptr<Scheduler> slot;
  return slot;
}
}  // namespace

Scheduler& Scheduler::Get() {
  auto& slot = GlobalSchedulerSlot();
  if (!slot) {
    unsigned hw = std::thread::hardware_concurrency();
    slot.reset(new Scheduler(hw == 0 ? 1 : static_cast<int>(hw)));
  }
  return *slot;
}

void Scheduler::Reset(int num_workers) {
  PARHC_CHECK(num_workers >= 1);
  auto& slot = GlobalSchedulerSlot();
  slot.reset();  // join old workers before spawning new ones
  slot.reset(new Scheduler(num_workers));
}

Scheduler::Scheduler(int num_workers)
    : num_workers_(num_workers), deques_(num_workers) {
  tl_worker_id = 0;  // the constructing (external) thread owns slot 0
  threads_.reserve(num_workers_ - 1);
  for (int id = 1; id < num_workers_; ++id) {
    threads_.emplace_back([this, id] { WorkerLoop(id); });
  }
}

Scheduler::~Scheduler() {
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(sleep_mutex_);
    sleep_cv_.notify_all();
  }
  for (auto& t : threads_) t.join();
}

void Scheduler::WakeOne() {
  if (sleepers_.load(std::memory_order_relaxed) > 0) {
    std::lock_guard<std::mutex> lk(sleep_mutex_);
    sleep_cv_.notify_one();
  }
}

bool Scheduler::TryRunOne(int my_id) {
  // Scan all deques starting from a pseudo-random victim; include our own
  // (oldest job first), which implements local helping during joins.
  static thread_local uint64_t rng = 0x9e3779b97f4a7c15ull ^
                                     (static_cast<uint64_t>(my_id) << 32);
  rng ^= rng << 13;
  rng ^= rng >> 7;
  rng ^= rng << 17;
  int start = static_cast<int>(rng % static_cast<uint64_t>(num_workers_));
  for (int k = 0; k < num_workers_; ++k) {
    int victim = start + k;
    if (victim >= num_workers_) victim -= num_workers_;
    internal::JobBase* job = deques_[victim].Steal();
    if (job != nullptr) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
      job->Run();
      return true;
    }
  }
  return false;
}

void Scheduler::WaitFor(internal::JobBase& job) {
  int my_id = MyId();
  while (!job.done.load(std::memory_order_acquire)) {
    if (!TryRunOne(my_id)) {
#if defined(__x86_64__)
      __builtin_ia32_pause();
#else
      std::this_thread::yield();
#endif
    }
  }
}

void Scheduler::WorkerLoop(int id) {
  tl_worker_id = id;
  int idle_spins = 0;
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (TryRunOne(id)) {
      idle_spins = 0;
      continue;
    }
    if (++idle_spins < 128) {
      std::this_thread::yield();
      continue;
    }
    // Park until new work is pushed or shutdown; timed wait guards against
    // missed wakeups (pending_ is a hint, not a precise count).
    std::unique_lock<std::mutex> lk(sleep_mutex_);
    if (pending_.load(std::memory_order_relaxed) == 0 &&
        !shutdown_.load(std::memory_order_acquire)) {
      sleepers_.fetch_add(1, std::memory_order_relaxed);
      sleep_cv_.wait_for(lk, std::chrono::milliseconds(1));
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
    }
    idle_spins = 0;
  }
}

int NumWorkers() { return Scheduler::Get().num_workers(); }

void SetNumWorkers(int p) { Scheduler::Reset(p); }

}  // namespace parhc
