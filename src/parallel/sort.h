// Parallel comparison sort: merge sort with a parallel merge.
//
// O(n log n) work and O(log^3 n) depth — a practical stand-in for the
// O(log n)-depth sample sorts in PBBS; identical semantics (stable variant
// not provided; all call sites use total orders with unique tie-breakers).
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "parallel/scheduler.h"

namespace parhc {

namespace internal {

constexpr size_t kSortSeqCutoff = 1 << 13;

template <typename T, typename Cmp>
void ParallelMergeSwapped(const T* a, size_t na, const T* b, size_t nb, T* out,
                          Cmp cmp);

template <typename T, typename Cmp>
void ParallelMerge(const T* a, size_t na, const T* b, size_t nb, T* out,
                   Cmp cmp) {
  if (na + nb <= kSortSeqCutoff) {
    std::merge(a, a + na, b, b + nb, out, cmp);
    return;
  }
  if (na < nb) {
    ParallelMergeSwapped(a, na, b, nb, out, cmp);
    return;
  }
  // Split the larger array at its median; binary-search the split point in
  // the smaller array; merge halves in parallel.
  size_t ma = na / 2;
  size_t mb = std::lower_bound(b, b + nb, a[ma], cmp) - b;
  ParDo([&] { ParallelMerge(a, ma, b, mb, out, cmp); },
        [&] { ParallelMerge(a + ma, na - ma, b + mb, nb - mb, out + ma + mb,
                            cmp); });
}

template <typename T, typename Cmp>
void ParallelMergeSwapped(const T* a, size_t na, const T* b, size_t nb, T* out,
                          Cmp cmp) {
  size_t mb = nb / 2;
  // upper_bound keeps the merge stable with respect to (a-before-b) order.
  size_t ma = std::upper_bound(a, a + na, b[mb], cmp) - a;
  ParDo([&] { ParallelMerge(a, ma, b, mb, out, cmp); },
        [&] { ParallelMerge(a + ma, na - ma, b + mb, nb - mb, out + ma + mb,
                            cmp); });
}

template <typename T, typename Cmp>
void MergeSortRec(T* a, T* buf, size_t n, Cmp cmp, bool to_buf) {
  if (n <= kSortSeqCutoff) {
    std::sort(a, a + n, cmp);
    if (to_buf) std::copy(a, a + n, buf);
    return;
  }
  size_t mid = n / 2;
  ParDo([&] { MergeSortRec(a, buf, mid, cmp, !to_buf); },
        [&] { MergeSortRec(a + mid, buf + mid, n - mid, cmp, !to_buf); });
  if (to_buf) {
    ParallelMerge(a, mid, a + mid, n - mid, buf, cmp);
  } else {
    ParallelMerge(buf, mid, buf + mid, n - mid, a, cmp);
  }
}

}  // namespace internal

/// Sorts `a` in parallel using comparator `cmp`.
template <typename T, typename Cmp>
void ParallelSort(std::vector<T>& a, Cmp cmp) {
  if (a.size() <= internal::kSortSeqCutoff || NumWorkers() == 1) {
    std::sort(a.begin(), a.end(), cmp);
    return;
  }
  std::vector<T> buf(a.size());
  internal::MergeSortRec(a.data(), buf.data(), a.size(), cmp,
                         /*to_buf=*/false);
}

template <typename T>
void ParallelSort(std::vector<T>& a) {
  ParallelSort(a, std::less<T>{});
}

}  // namespace parhc
