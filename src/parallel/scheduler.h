// Fork-join work-stealing scheduler.
//
// This is the substrate standing in for the Cilk runtime used by the paper
// (Section 2.2): binary fork (`ParDo`), helping joins, and randomized work
// stealing from per-worker deques. The worker count is adjustable at runtime
// (`SetNumWorkers`) so the benchmark harness can sweep thread counts as in
// Figures 6/7/9 of the paper.
//
// Threading model:
//  * `Scheduler::Get()` lazily creates a singleton with one deque per worker.
//  * Worker 0 is the *external* caller (main thread / test thread); workers
//    1..P-1 are spawned threads. Only one external thread may issue parallel
//    work at a time (the standard Cilk model).
//  * `ParDo(l, r)` pushes `r` onto the caller's deque and runs `l` inline.
//    On join, if `r` was stolen the caller helps by running other tasks.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.h"

namespace parhc {

namespace internal {

/// A unit of stealable work. Jobs live on the forking function's stack; the
/// fork does not return until the job completes, so this is safe.
struct JobBase {
  std::atomic<bool> done{false};
  virtual void Run() = 0;
  virtual ~JobBase() = default;
};

template <typename F>
struct Job final : JobBase {
  F* fn;
  explicit Job(F* f) : fn(f) {}
  void Run() override {
    (*fn)();
    done.store(true, std::memory_order_release);
  }
};

/// Test-and-set spinlock; protects one worker deque. Deque operations are a
/// few pointer moves, so a spinlock beats std::mutex at fork-join task rates.
class Spinlock {
 public:
  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
#if defined(__x86_64__)
      __builtin_ia32_pause();
#else
      std::this_thread::yield();
#endif
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// Per-worker job deque. The owner pushes/pops at the bottom (LIFO); thieves
/// steal from the top (FIFO), which takes the oldest (largest) tasks first.
class WorkDeque {
 public:
  void Push(JobBase* job) {
    lock_.lock();
    jobs_.push_back(job);
    lock_.unlock();
  }

  /// Pops the bottom job iff it is `expected` (i.e. it was not stolen).
  bool PopBottomIf(JobBase* expected) {
    lock_.lock();
    bool ok = !jobs_.empty() && jobs_.back() == expected;
    if (ok) jobs_.pop_back();
    lock_.unlock();
    return ok;
  }

  JobBase* Steal() {
    lock_.lock();
    JobBase* job = nullptr;
    if (!jobs_.empty()) {
      job = jobs_.front();
      jobs_.pop_front();
    }
    lock_.unlock();
    return job;
  }

 private:
  Spinlock lock_;
  std::deque<JobBase*> jobs_;
};

}  // namespace internal

/// Work-stealing fork-join scheduler (singleton).
class Scheduler {
 public:
  /// Returns the global scheduler, creating it with all hardware threads on
  /// first use.
  static Scheduler& Get();

  /// Destroys and recreates the global scheduler with `num_workers` workers.
  /// Must not be called while parallel work is in flight.
  static void Reset(int num_workers);

  /// Number of workers (including the external caller slot).
  int num_workers() const { return num_workers_; }

  /// Worker id of the calling thread; external callers map to 0.
  int MyId() const {
    int id = tl_worker_id;
    return (id < 0 || id >= num_workers_) ? 0 : id;
  }

  /// Runs `l` and `r`, potentially in parallel, returning when both finish.
  template <typename L, typename R>
  void ParDo(L&& l, R&& r) {
    if (num_workers_ == 1) {  // fast path: no stealing possible
      l();
      r();
      return;
    }
    using Rf = std::remove_reference_t<R>;
    internal::Job<Rf> rjob(&r);
    int id = MyId();
    deques_[id].Push(&rjob);
    pending_.fetch_add(1, std::memory_order_relaxed);
    WakeOne();
    l();
    if (deques_[id].PopBottomIf(&rjob)) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
      rjob.Run();
    } else {
      WaitFor(rjob);
    }
  }

  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

 private:
  explicit Scheduler(int num_workers);

  void WorkerLoop(int id);
  bool TryRunOne(int my_id);
  void WaitFor(internal::JobBase& job);
  void WakeOne();

  static thread_local int tl_worker_id;

  int num_workers_;
  std::vector<internal::WorkDeque> deques_;
  std::vector<std::thread> threads_;
  std::atomic<bool> shutdown_{false};
  std::atomic<int64_t> pending_{0};
  std::atomic<int> sleepers_{0};
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
};

/// Returns the current number of scheduler workers.
int NumWorkers();

/// Recreates the scheduler with `p` workers (benchmark thread sweeps).
void SetNumWorkers(int p);

/// Runs two closures, potentially in parallel.
template <typename L, typename R>
inline void ParDo(L&& l, R&& r) {
  Scheduler::Get().ParDo(std::forward<L>(l), std::forward<R>(r));
}

namespace internal {
template <typename F>
void ParallelForRec(size_t lo, size_t hi, F& f, size_t grain) {
  if (hi - lo <= grain) {
    for (size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  size_t mid = lo + (hi - lo) / 2;
  Scheduler::Get().ParDo([&] { ParallelForRec(lo, mid, f, grain); },
                         [&] { ParallelForRec(mid, hi, f, grain); });
}
}  // namespace internal

/// Parallel loop over [lo, hi). `grain` is the largest chunk executed
/// sequentially; 0 selects an automatic grain of roughly (hi-lo)/(8p),
/// capped at 2048 for load balance on irregular bodies.
template <typename F>
inline void ParallelFor(size_t lo, size_t hi, F&& f, size_t grain = 0) {
  if (hi <= lo) return;
  size_t n = hi - lo;
  Scheduler& s = Scheduler::Get();
  if (s.num_workers() == 1 || n == 1) {
    for (size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  if (grain == 0) {
    // grain = clamp(n / (8p), 1, 2048): about 8 chunks per worker for load
    // balance on irregular bodies, capped so chunks stay cache-sized, with
    // a floor of 1 so tiny ranges on many workers still make progress.
    size_t target = n / (static_cast<size_t>(s.num_workers()) * 8);
    grain = std::clamp<size_t>(target, 1, 2048);
  }
  internal::ParallelForRec(lo, hi, f, grain);
}

}  // namespace parhc
