// Fork-join work-stealing scheduler with partitioned worker groups.
//
// This is the substrate standing in for the Cilk runtime used by the paper
// (Section 2.2): binary fork (`ParDo`), helping joins, and randomized work
// stealing from per-worker deques. The worker count is adjustable at runtime
// (`SetNumWorkers`) so the benchmark harness can sweep thread counts as in
// Figures 6/7/9 of the paper.
//
// Threading model (arena-based):
//  * `Scheduler::Get()` lazily creates a singleton with a shared pool of
//    P - 1 worker threads (P = total workers, `PARHC_WORKERS` env override).
//  * Work always runs inside an *arena*: a group of `slots` logical workers
//    with its own steal deques. Stealing never crosses an arena boundary,
//    so `MyId()` / `NumWorkers()` are arena-relative and `ParallelFor`
//    grain selection — and therefore every per-worker-scratch algorithm —
//    behaves exactly like a dedicated scheduler of that size.
//  * `TaskArena(k)` carves a group of up to k workers out of the pool for
//    one caller (`Execute`), so several external threads can run parallel
//    builds concurrently, each inside its own group. This replaces the old
//    single-external-caller contract.
//  * A plain external caller (no arena) implicitly claims one slot of the
//    *root* arena (size P) for the duration of its outermost fork and
//    releases it on join — the classic one-caller fast path, now safe to
//    use from any number of threads at once (late callers that find the
//    root arena full simply run their forks inline).
//  * Pool threads scan the registered arenas for one with pending work and
//    a free slot, join it, steal until it runs dry, then move on.
//  * `ParDo(l, r)` pushes `r` onto the caller's deque and runs `l` inline.
//    On join, if `r` was stolen the caller helps by running other tasks
//    from its own arena.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.h"

namespace parhc {

namespace internal {

/// A unit of stealable work. Jobs live on the forking function's stack; the
/// fork does not return until the job completes, so this is safe.
struct JobBase {
  std::atomic<bool> done{false};
  virtual void Run() = 0;
  virtual ~JobBase() = default;
};

template <typename F>
struct Job final : JobBase {
  F* fn;
  explicit Job(F* f) : fn(f) {}
  void Run() override {
    (*fn)();
    done.store(true, std::memory_order_release);
  }
};

/// Test-and-set spinlock; protects one worker deque. Deque operations are a
/// few pointer moves, so a spinlock beats std::mutex at fork-join task rates.
class Spinlock {
 public:
  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
#if defined(__x86_64__)
      __builtin_ia32_pause();
#else
      std::this_thread::yield();
#endif
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// Per-worker job deque. The owner pushes/pops at the bottom (LIFO); thieves
/// steal from the top (FIFO), which takes the oldest (largest) tasks first.
class WorkDeque {
 public:
  void Push(JobBase* job) {
    lock_.lock();
    jobs_.push_back(job);
    lock_.unlock();
  }

  /// Pops the bottom job iff it is `expected` (i.e. it was not stolen).
  bool PopBottomIf(JobBase* expected) {
    lock_.lock();
    bool ok = !jobs_.empty() && jobs_.back() == expected;
    if (ok) jobs_.pop_back();
    lock_.unlock();
    return ok;
  }

  JobBase* Steal() {
    lock_.lock();
    JobBase* job = nullptr;
    if (!jobs_.empty()) {
      job = jobs_.front();
      jobs_.pop_front();
    }
    lock_.unlock();
    return job;
  }

 private:
  Spinlock lock_;
  std::deque<JobBase*> jobs_;
};

/// One worker group: its own deque array, slot-claim table, and pending-work
/// hint. Stealing is confined to a single arena, which is what keeps
/// `ParallelFor` semantics (grain, MyId range, NumWorkers) bit-identical to
/// a dedicated scheduler of `slots` workers.
struct ArenaState {
  explicit ArenaState(int n)
      : slots(n), deques(static_cast<size_t>(n)),
        claimed(static_cast<size_t>(n), 0) {}

  /// Claims a free slot, or returns -1 when every slot is occupied.
  int AcquireSlot() {
    slot_lock.lock();
    for (int s = 0; s < slots; ++s) {
      if (!claimed[static_cast<size_t>(s)]) {
        claimed[static_cast<size_t>(s)] = 1;
        slot_lock.unlock();
        return s;
      }
    }
    slot_lock.unlock();
    return -1;
  }

  void ReleaseSlot(int s) {
    slot_lock.lock();
    claimed[static_cast<size_t>(s)] = 0;
    slot_lock.unlock();
  }

  const int slots;
  std::vector<WorkDeque> deques;
  std::atomic<int64_t> pending{0};  ///< hint: jobs pushed, not yet taken
  Spinlock slot_lock;
  std::vector<uint8_t> claimed;
};

}  // namespace internal

/// Work-stealing fork-join scheduler (singleton).
class Scheduler {
 public:
  /// Returns the global scheduler, creating it on first use with all
  /// hardware threads, or with `PARHC_WORKERS` workers when that
  /// environment variable is set to a positive integer.
  static Scheduler& Get();

  /// Destroys and recreates the global scheduler with `num_workers`
  /// workers. Aborts with a clear error if any external caller is inside a
  /// fork or any TaskArena is live: destroying the singleton under
  /// concurrent `ParallelFor` callers would leave them stealing from freed
  /// deques.
  static void Reset(int num_workers);

  /// Workers visible to the calling thread: the current arena's size, or
  /// the total pool size for a thread not inside any arena.
  int num_workers() const {
    internal::ArenaState* a = tl_arena;
    return a ? a->slots : total_workers_;
  }

  /// Total workers in the shared pool (the TaskArena size ceiling).
  int total_workers() const { return total_workers_; }

  /// Arena-relative worker id of the calling thread, in
  /// [0, num_workers()); threads outside any arena map to 0.
  int MyId() const {
    internal::ArenaState* a = tl_arena;
    return a ? tl_slot : 0;
  }

  /// Runs `l` and `r`, potentially in parallel, returning when both finish.
  template <typename L, typename R>
  void ParDo(L&& l, R&& r) {
    internal::ArenaState* a = tl_arena;
    if (a == nullptr) {
      // Plain external caller: claim a root-arena slot for the outermost
      // fork. A full root arena (many concurrent callers) degrades to
      // inline execution, which is always correct.
      a = root_.get();
      if (a->slots == 1) {
        l();
        r();
        return;
      }
      int slot = a->AcquireSlot();
      if (slot < 0) {
        l();
        r();
        return;
      }
      external_active_.fetch_add(1, std::memory_order_relaxed);
      tl_arena = a;
      tl_slot = slot;
      ParDoIn(*a, slot, l, r);
      tl_arena = nullptr;
      tl_slot = -1;
      a->ReleaseSlot(slot);
      external_active_.fetch_sub(1, std::memory_order_release);
      return;
    }
    if (a->slots == 1) {  // fast path: no stealing possible in this group
      l();
      r();
      return;
    }
    ParDoIn(*a, tl_slot, l, r);
  }

  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

 private:
  friend class TaskArena;

  explicit Scheduler(int num_workers);

  template <typename L, typename R>
  void ParDoIn(internal::ArenaState& a, int slot, L& l, R& r) {
    using Rf = std::remove_reference_t<R>;
    internal::Job<Rf> rjob(&r);
    a.deques[static_cast<size_t>(slot)].Push(&rjob);
    a.pending.fetch_add(1, std::memory_order_relaxed);
    pending_.fetch_add(1, std::memory_order_relaxed);
    WakeOne();
    l();
    if (a.deques[static_cast<size_t>(slot)].PopBottomIf(&rjob)) {
      a.pending.fetch_sub(1, std::memory_order_relaxed);
      pending_.fetch_sub(1, std::memory_order_relaxed);
      rjob.Run();
    } else {
      WaitFor(a, rjob);
    }
  }

  /// Registers a TaskArena's state so pool threads can join it.
  void RegisterArena(const std::shared_ptr<internal::ArenaState>& a);
  void UnregisterArena(const internal::ArenaState* a);

  void WorkerLoop(int id);
  /// Steals and runs one job from `a`'s deques; false when all were empty.
  bool RunOneIn(internal::ArenaState& a);
  void WaitFor(internal::ArenaState& a, internal::JobBase& job);
  void WakeOne();

  static thread_local internal::ArenaState* tl_arena;
  static thread_local int tl_slot;

  int total_workers_;
  std::shared_ptr<internal::ArenaState> root_;
  std::vector<std::thread> threads_;
  std::atomic<bool> shutdown_{false};
  std::atomic<int64_t> pending_{0};  ///< global pending hint (sleep gate)
  std::atomic<int> external_active_{0};
  std::atomic<int> live_arenas_{0};
  std::atomic<int> sleepers_{0};
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  mutable std::mutex arenas_mu_;
  std::vector<std::shared_ptr<internal::ArenaState>> arenas_;
  std::atomic<uint64_t> arenas_version_{0};
};

/// A partitioned worker group: up to `max_workers` of the shared pool
/// cooperate on work submitted through Execute, isolated from every other
/// group. Inside Execute, `NumWorkers()` returns the group size and
/// `MyId()` is group-relative, so parallel algorithms (grain selection,
/// per-worker scratch) behave exactly as on a dedicated `max_workers`-wide
/// scheduler — this is what keeps results bit-identical to the serialized
/// path. Each Execute call occupies one slot of the group; pool threads
/// fill the rest on demand. Destroy the arena only after Execute returns
/// (pool threads drain on their own).
class TaskArena {
 public:
  /// Creates a group of min(max_workers, total pool size) slots.
  explicit TaskArena(int max_workers);
  ~TaskArena();

  TaskArena(const TaskArena&) = delete;
  TaskArena& operator=(const TaskArena&) = delete;

  int size() const { return state_->slots; }

  /// Runs `fn` inside this group. May be called concurrently from up to
  /// `size()` threads; callers beyond that wait for a slot. Nested calls
  /// from inside another arena temporarily switch the thread's group.
  template <typename F>
  void Execute(F&& fn) {
    Scheduler& s = Scheduler::Get();
    internal::ArenaState* prev_arena = Scheduler::tl_arena;
    int prev_slot = Scheduler::tl_slot;
    int slot;
    while ((slot = state_->AcquireSlot()) < 0) std::this_thread::yield();
    s.external_active_.fetch_add(1, std::memory_order_relaxed);
    Scheduler::tl_arena = state_.get();
    Scheduler::tl_slot = slot;
    struct Restore {
      internal::ArenaState* prev_arena;
      int prev_slot;
      internal::ArenaState* mine;
      int my_slot;
      Scheduler* sched;
      ~Restore() {
        Scheduler::tl_arena = prev_arena;
        Scheduler::tl_slot = prev_slot;
        mine->ReleaseSlot(my_slot);
        sched->external_active_.fetch_sub(1, std::memory_order_release);
      }
    } restore{prev_arena, prev_slot, state_.get(), slot, &s};
    fn();
  }

 private:
  std::shared_ptr<internal::ArenaState> state_;
};

/// Returns the number of workers visible to the calling thread (its arena
/// size, or the total pool size outside any arena).
int NumWorkers();

/// Recreates the scheduler with `p` workers (benchmark thread sweeps).
void SetNumWorkers(int p);

/// Runs two closures, potentially in parallel.
template <typename L, typename R>
inline void ParDo(L&& l, R&& r) {
  Scheduler::Get().ParDo(std::forward<L>(l), std::forward<R>(r));
}

namespace internal {
template <typename F>
void ParallelForRec(size_t lo, size_t hi, F& f, size_t grain) {
  if (hi - lo <= grain) {
    for (size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  size_t mid = lo + (hi - lo) / 2;
  Scheduler::Get().ParDo([&] { ParallelForRec(lo, mid, f, grain); },
                         [&] { ParallelForRec(mid, hi, f, grain); });
}
}  // namespace internal

/// Parallel loop over [lo, hi). `grain` is the largest chunk executed
/// sequentially; 0 selects an automatic grain of roughly (hi-lo)/(8p),
/// capped at 2048 for load balance on irregular bodies. p is the calling
/// thread's arena size, so the chunking — and any per-worker scratch keyed
/// on MyId — is deterministic per (range, group size).
template <typename F>
inline void ParallelFor(size_t lo, size_t hi, F&& f, size_t grain = 0) {
  if (hi <= lo) return;
  size_t n = hi - lo;
  Scheduler& s = Scheduler::Get();
  if (s.num_workers() == 1 || n == 1) {
    for (size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  if (grain == 0) {
    // grain = clamp(n / (8p), 1, 2048): about 8 chunks per worker for load
    // balance on irregular bodies, capped so chunks stay cache-sized, with
    // a floor of 1 so tiny ranges on many workers still make progress.
    size_t target = n / (static_cast<size_t>(s.num_workers()) * 8);
    grain = std::clamp<size_t>(target, 1, 2048);
  }
  internal::ParallelForRec(lo, hi, f, grain);
}

}  // namespace parhc
