// Phase-concurrent open-addressing hash table (paper Section 2.2, [29]).
//
// Supports n inserts / finds in O(n) work and O(log n) depth w.h.p.
// "Phase-concurrent" (as in PBBS): concurrent inserts are linearizable with
// each other, and concurrent finds with each other, but an insert phase must
// be separated from a find phase by a barrier (all call sites in this
// library obey that discipline).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "parallel/scheduler.h"
#include "parallel/semisort.h"
#include "util/check.h"

namespace parhc {

/// Fixed-capacity concurrent map from uint64 keys to trivially-copyable
/// values. The key ~0ull is reserved.
template <typename V>
class ConcurrentMap {
 public:
  static constexpr uint64_t kEmpty = ~0ull;

  /// Creates a table able to hold `max_elems` entries (load factor <= 0.5).
  explicit ConcurrentMap(size_t max_elems) {
    size_t cap = 16;
    while (cap < 2 * max_elems + 1) cap <<= 1;
    mask_ = cap - 1;
    keys_ = std::vector<std::atomic<uint64_t>>(cap);
    vals_.resize(cap);
    ParallelFor(0, cap, [&](size_t i) {
      keys_[i].store(kEmpty, std::memory_order_relaxed);
    });
  }

  /// Inserts (key, value). If the key is already present the first writer
  /// wins and `false` is returned. `key` must not be kEmpty.
  bool Insert(uint64_t key, const V& value) {
    PARHC_DCHECK(key != kEmpty);
    size_t i = HashU64(key) & mask_;
    while (true) {
      uint64_t cur = keys_[i].load(std::memory_order_acquire);
      if ((cur & ~kBusyBit) == key) return false;  // present or being written
      if (cur == kEmpty) {
        uint64_t expected = kEmpty;
        if (keys_[i].compare_exchange_strong(expected, key | kBusyBit,
                                             std::memory_order_acq_rel)) {
          vals_[i] = value;
          keys_[i].store(key, std::memory_order_release);
          return true;
        }
        continue;  // lost the race for this slot; re-inspect it
      }
      i = (i + 1) & mask_;
    }
  }

  /// Finds `key`; returns nullptr if absent. Must not run concurrently with
  /// Insert (phase-concurrency).
  const V* Find(uint64_t key) const {
    size_t i = HashU64(key) & mask_;
    while (true) {
      uint64_t cur = keys_[i].load(std::memory_order_acquire);
      if (cur == key) return &vals_[i];
      if (cur == kEmpty) return nullptr;
      i = (i + 1) & mask_;
    }
  }

 private:
  // Transient marker for a claimed-but-unwritten slot. Keys must fit in 63
  // bits; asserted by callers' key construction.
  static constexpr uint64_t kBusyBit = 1ull << 63;

  size_t mask_;
  std::vector<std::atomic<uint64_t>> keys_;
  std::vector<V> vals_;
};

}  // namespace parhc
