// Semisort (paper Section 2.2): groups items with equal keys together with
// no ordering guarantee between groups.
//
// Implemented by sorting on (hash(key), key) — O(n log n) work rather than
// the O(n) expected of Gu et al. [32], but with identical semantics; the
// difference is immaterial at the scales this library targets and is noted
// in DESIGN.md.
#pragma once

#include <cstdint>
#include <vector>

#include "parallel/sort.h"

namespace parhc {

/// 64-bit finalizer (splitmix64); used to scatter group keys.
inline uint64_t HashU64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Groups `items` by `key(item)` (a uint64-convertible key). Returns the
/// reordered items plus the start offset of each group; group g occupies
/// [offsets[g], offsets[g+1]) of the returned items.
template <typename T, typename KeyFn>
std::pair<std::vector<T>, std::vector<size_t>> SemiSort(std::vector<T> items,
                                                        KeyFn key) {
  ParallelSort(items, [&](const T& x, const T& y) {
    uint64_t kx = static_cast<uint64_t>(key(x));
    uint64_t ky = static_cast<uint64_t>(key(y));
    uint64_t hx = HashU64(kx), hy = HashU64(ky);
    return hx != hy ? hx < hy : kx < ky;
  });
  std::vector<size_t> starts;
  size_t n = items.size();
  // Group boundaries: positions where the key changes.
  std::vector<uint8_t> is_start(n, 0);
  ParallelFor(0, n, [&](size_t i) {
    is_start[i] =
        (i == 0 ||
         static_cast<uint64_t>(key(items[i])) !=
             static_cast<uint64_t>(key(items[i - 1])))
            ? 1
            : 0;
  });
  for (size_t i = 0; i < n; ++i) {
    if (is_start[i]) starts.push_back(i);
  }
  starts.push_back(n);
  return {std::move(items), std::move(starts)};
}

}  // namespace parhc
