// Euler tour of a tree and tour-based vertex depths (paper Sections 2.2, 4).
//
// The tour is represented as 2m directed edges (m = n-1 tree edges); edge
// 2j is (u_j -> v_j) and edge 2j+1 its twin, so twin(i) = i ^ 1. The tour's
// next pointers follow the standard rule: next(u->v) is the directed edge
// after (v->u) in v's cyclic adjacency order. Rooting the tour at a source
// vertex s plus list ranking yields each vertex's unweighted hop distance
// from s — exactly the "vertex distances" the dendrogram algorithm of
// Section 4.2 uses to order children.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "parallel/list_ranking.h"
#include "parallel/primitives.h"
#include "parallel/sort.h"
#include "util/check.h"

namespace parhc {

/// An undirected tree edge between vertices u and v.
struct TreeEdge {
  uint32_t u;
  uint32_t v;
};

/// Euler tour of a tree rooted at `source`.
struct EulerTour {
  /// next[i]: successor directed edge of edge i in the tour (kNil at end).
  std::vector<uint32_t> next;
  /// pos[i]: 0-based position of directed edge i in the rooted tour.
  std::vector<uint32_t> pos;
  /// The first directed edge of the rooted tour.
  uint32_t head = kNil;

  static uint32_t Twin(uint32_t e) { return e ^ 1u; }
};

/// Builds the Euler tour of the tree given by `edges` (n vertices, n-1
/// edges), rooted at `source`. The tree must be connected.
inline EulerTour BuildEulerTour(size_t n, const std::vector<TreeEdge>& edges,
                                uint32_t source) {
  PARHC_CHECK(edges.size() + 1 == n);
  size_t m2 = 2 * edges.size();
  EulerTour tour;
  tour.next.assign(m2, kNil);
  tour.pos.assign(m2, 0);
  if (m2 == 0) return tour;

  auto src = [&](uint32_t e) -> uint32_t {
    return (e & 1u) ? edges[e >> 1].v : edges[e >> 1].u;
  };
  auto dst = [&](uint32_t e) -> uint32_t {
    return (e & 1u) ? edges[e >> 1].u : edges[e >> 1].v;
  };

  // Group directed edges by source vertex: sort edge ids by (src, dst).
  std::vector<uint32_t> order = Tabulate(m2, [](size_t i) {
    return static_cast<uint32_t>(i);
  });
  ParallelSort(order, [&](uint32_t a, uint32_t b) {
    uint32_t sa = src(a), sb = src(b);
    if (sa != sb) return sa < sb;
    return dst(a) < dst(b);
  });
  std::vector<uint32_t> pos_in_order(m2);
  ParallelFor(0, m2, [&](size_t k) { pos_in_order[order[k]] = k; });
  // vstart[v] = first index in `order` whose src is v; vcount[v] = degree.
  std::vector<uint32_t> vstart(n, kNil), vcount(n, 0);
  ParallelFor(0, m2, [&](size_t k) {
    if (k == 0 || src(order[k]) != src(order[k - 1])) {
      vstart[src(order[k])] = static_cast<uint32_t>(k);
    }
  });
  ParallelFor(0, n, [&](size_t v) {
    if (vstart[v] == kNil) return;  // isolated vertex (cannot happen in tree)
    uint32_t s = vstart[v];
    uint32_t e = s;
    while (e < m2 && src(order[e]) == static_cast<uint32_t>(v)) ++e;
    vcount[v] = e - s;
  });

  // next(u->v) = edge after (v->u) in v's cyclic adjacency order.
  ParallelFor(0, m2, [&](size_t e) {
    uint32_t twin = EulerTour::Twin(static_cast<uint32_t>(e));
    uint32_t v = src(twin);
    uint32_t r = pos_in_order[twin] - vstart[v];
    uint32_t rn = (r + 1 == vcount[v]) ? 0 : r + 1;
    tour.next[e] = order[vstart[v] + rn];
  });

  // Root at `source`: head is source's first outgoing edge; the unique edge
  // whose next is head becomes the tail.
  PARHC_CHECK(vstart[source] != kNil);
  tour.head = order[vstart[source]];
  uint32_t last_out = order[vstart[source] + vcount[source] - 1];
  uint32_t tail = EulerTour::Twin(last_out);
  PARHC_DCHECK(tour.next[tail] == tour.head);
  tour.next[tail] = kNil;

  // Positions via list ranking: suffix counts of 1s give distance-to-end.
  std::vector<uint32_t> ones(m2, 1);
  std::vector<uint32_t> suffix = ListRank(tour.next, ones);
  ParallelFor(0, m2, [&](size_t e) {
    tour.pos[e] = static_cast<uint32_t>(m2) - suffix[e];
  });
  return tour;
}

/// Unweighted hop distance of every vertex from `source` along the tree,
/// computed with the Euler tour + list ranking (+1 on down edges, -1 on up
/// edges, prefix sums over tour order).
inline std::vector<uint32_t> TreeHopDistances(size_t n,
                                              const std::vector<TreeEdge>& edges,
                                              uint32_t source) {
  std::vector<uint32_t> depth(n, 0);
  if (n <= 1) return depth;
  EulerTour tour = BuildEulerTour(n, edges, source);
  size_t m2 = 2 * edges.size();
  auto dst = [&](uint32_t e) -> uint32_t {
    return (e & 1u) ? edges[e >> 1].u : edges[e >> 1].v;
  };
  // A directed edge is a "down" edge iff it appears before its twin.
  std::vector<int64_t> labels(m2);
  ParallelFor(0, m2, [&](size_t e) {
    bool down = tour.pos[e] < tour.pos[EulerTour::Twin(e)];
    labels[tour.pos[e]] = down ? 1 : -1;
  });
  ScanExclusive(labels.data(), m2, int64_t{0},
                [](int64_t a, int64_t b) { return a + b; });
  ParallelFor(0, m2, [&](size_t e) {
    uint32_t ue = static_cast<uint32_t>(e);
    if (tour.pos[ue] < tour.pos[EulerTour::Twin(ue)]) {
      depth[dst(ue)] = static_cast<uint32_t>(labels[tour.pos[ue]] + 1);
    }
  });
  depth[source] = 0;
  return depth;
}

}  // namespace parhc
