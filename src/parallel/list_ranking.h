// Parallel list ranking (paper Section 2.2).
//
// Given a linked list (next pointers, kNil-terminated) with a value on each
// node, computes for each node the sum of values from that node to the end
// of the list (inclusive). Implemented with pointer jumping: O(n log n) work
// and O(log n) depth — the work bound is a log factor above the optimal
// algorithm the paper cites [38]; noted in DESIGN.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "parallel/scheduler.h"
#include "util/check.h"

namespace parhc {

constexpr uint32_t kNil = std::numeric_limits<uint32_t>::max();

/// Inclusive suffix sums along a linked list. `next[i]` is the successor of
/// node i (kNil at the end of a list; multiple disjoint lists are allowed).
template <typename T>
std::vector<T> ListRank(const std::vector<uint32_t>& next,
                        const std::vector<T>& values) {
  size_t n = next.size();
  PARHC_CHECK(values.size() == n);
  std::vector<T> rank(values);
  std::vector<uint32_t> nxt(next);
  std::vector<T> rank2(n);
  std::vector<uint32_t> nxt2(n);
  // ceil(log2(n)) + 1 rounds of pointer jumping.
  size_t rounds = 1;
  while ((size_t{1} << rounds) < n + 1) ++rounds;
  for (size_t r = 0; r < rounds; ++r) {
    ParallelFor(0, n, [&](size_t i) {
      uint32_t j = nxt[i];
      if (j == kNil) {
        rank2[i] = rank[i];
        nxt2[i] = kNil;
      } else {
        rank2[i] = rank[i] + rank[j];
        nxt2[i] = nxt[j];
      }
    });
    rank.swap(rank2);
    nxt.swap(nxt2);
  }
  return rank;
}

}  // namespace parhc
