// Axis-aligned bounding boxes and derived bounding spheres.
//
// k-d tree nodes carry a Box; the WSPD well-separation test (Section 2.3)
// uses the bounding sphere derived from the box (center + half-diagonal
// radius), and the BCCP window pruning of MemoGFK (Figure 3) uses the
// tighter AABB min/max distances.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

#include "geometry/point.h"

namespace parhc {

/// Axis-aligned box in D dimensions.
template <int D>
struct Box {
  Point<D> lo;
  Point<D> hi;

  /// An empty box (inverted bounds); extending it with any point fixes it.
  static Box Empty() {
    Box b;
    for (int i = 0; i < D; ++i) {
      b.lo[i] = std::numeric_limits<double>::infinity();
      b.hi[i] = -std::numeric_limits<double>::infinity();
    }
    return b;
  }

  void Extend(const Point<D>& p) {
    for (int i = 0; i < D; ++i) {
      lo[i] = std::min(lo[i], p[i]);
      hi[i] = std::max(hi[i], p[i]);
    }
  }

  void Extend(const Box& o) {
    for (int i = 0; i < D; ++i) {
      lo[i] = std::min(lo[i], o.lo[i]);
      hi[i] = std::max(hi[i], o.hi[i]);
    }
  }

  Point<D> Center() const {
    Point<D> c;
    for (int i = 0; i < D; ++i) c[i] = 0.5 * (lo[i] + hi[i]);
    return c;
  }

  /// Radius of the bounding sphere (half the box diagonal).
  double SphereRadius() const {
    double s = 0;
    for (int i = 0; i < D; ++i) {
      double d = hi[i] - lo[i];
      s += d * d;
    }
    return 0.5 * std::sqrt(s);
  }

  /// Index of the widest dimension (spatial-median split axis).
  int WidestDim() const {
    int best = 0;
    double w = hi[0] - lo[0];
    for (int i = 1; i < D; ++i) {
      if (hi[i] - lo[i] > w) {
        w = hi[i] - lo[i];
        best = i;
      }
    }
    return best;
  }

  /// Minimum squared distance between this box and `o` (0 if overlapping).
  double MinSquaredDistance(const Box& o) const {
    double s = 0;
    for (int i = 0; i < D; ++i) {
      double d = std::max({0.0, lo[i] - o.hi[i], o.lo[i] - hi[i]});
      s += d * d;
    }
    return s;
  }

  /// Maximum squared distance between any point of this box and any of `o`.
  double MaxSquaredDistance(const Box& o) const {
    double s = 0;
    for (int i = 0; i < D; ++i) {
      double d = std::max(hi[i] - o.lo[i], o.hi[i] - lo[i]);
      s += d * d;
    }
    return s;
  }

  /// Minimum squared distance from the box to a point.
  double MinSquaredDistance(const Point<D>& p) const {
    double s = 0;
    for (int i = 0; i < D; ++i) {
      double d = std::max({0.0, lo[i] - p[i], p[i] - hi[i]});
      s += d * d;
    }
    return s;
  }
};

/// Minimum distance between the bounding *spheres* of boxes `a` and `b` —
/// the quantity d(A, B) of Table 1 (clamped at 0).
template <int D>
double SphereDistance(const Box<D>& a, const Box<D>& b) {
  double d = Distance(a.Center(), b.Center()) - a.SphereRadius() -
             b.SphereRadius();
  return d > 0 ? d : 0;
}

/// Standard well-separation test with separation constant `s` (Section 2.3):
/// both sets fit in spheres of radius r = max(rA, rB), and the spheres are
/// at least s*r apart.
template <int D>
bool WellSeparated(const Box<D>& a, const Box<D>& b, double s) {
  double r = std::max(a.SphereRadius(), b.SphereRadius());
  double center_dist = Distance(a.Center(), b.Center());
  return center_dist - 2 * r >= s * r;
}

}  // namespace parhc
