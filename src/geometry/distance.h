// Runtime-dispatched SIMD distance kernels (high-dimensional serving path).
//
// The low-dimensional traversals (d = 2..7) spend their time in tree
// descent, where the compile-time-unrolled loops of point.h/box.h are
// already optimal. At embedding dimensions (d = 64..768) the cost profile
// inverts: distance evaluation dominates every traversal, so the hot
// callers (kNN leaf scans, BCCP leaf scans, k-means assignment, the build's
// bounding-box sweep) route through the kernels below, which dispatch at
// runtime between a scalar reference and an AVX2+FMA implementation.
//
// Dispatch contract:
//  * Detection happens once (cpuid via __builtin_cpu_supports); setting
//    PARHC_FORCE_SCALAR=1 in the environment pins the scalar fallback.
//  * The scalar kernels accumulate sequentially — bit-identical to the
//    template loops in point.h/box.h, so a forced-scalar (or non-AVX2)
//    run reproduces pre-kernel results exactly.
//  * The AVX2 kernels use 4-lane FMA accumulation; reassociation and fused
//    rounding mean results agree with scalar only to relative O(d * eps),
//    not bitwise. All distances inside one process go through the same
//    dispatched kernel, so every internal exactness invariant (tie-breaks,
//    cached-vs-recomputed comparisons, snapshot round-trips) still holds
//    bit-for-bit within a run.
//  * Min/max-only kernels (box extend) never round, so they are bitwise
//    identical across ISA levels.
//
// Dimensions below kSimdMinDim bypass dispatch entirely and keep the
// unrolled scalar templates: low-dim results are bit-stable across this
// refactor by construction.
//
// Building with -DPARHC_SIMD=OFF compiles the AVX2 bodies out (the
// generic-ISA CI leg); dispatch then always resolves to scalar.
#pragma once

#include <cstddef>
#include <cstdint>

#include "geometry/box.h"
#include "geometry/point.h"

namespace parhc {

namespace simd {

/// Instruction-set level resolved by runtime dispatch.
enum class IsaLevel : int {
  kScalar = 0,
  kAvx2Fma = 1,
};

/// Human-readable name ("scalar" / "avx2+fma").
const char* LevelName(IsaLevel level);

/// True when the CPU supports AVX2+FMA *and* the AVX2 bodies were compiled
/// in (PARHC_SIMD=ON).
bool CpuSupportsAvx2Fma();

/// The level every dispatched kernel runs at: cached on first call;
/// PARHC_FORCE_SCALAR=1 in the environment forces kScalar.
IsaLevel ActiveLevel();

/// Pure detection (no caching): what ActiveLevel() would return given the
/// forced-scalar flag. Exposed for the dispatch test.
IsaLevel DetectLevel(bool force_scalar);

// ---- dispatched kernels (runtime length) --------------------------------
// `d` is the dimension; all pointers address unaligned double storage.

/// Squared Euclidean distance between two d-vectors.
double SquaredDistanceN(const double* a, const double* b, int d);

/// Squared distances from `q` to `count` points stored row-major at
/// `block` with `stride` doubles per row: out[i] = |q - block[i*stride]|^2.
void BatchSquaredDistancesN(const double* q, const double* block,
                            size_t count, size_t stride, int d, double* out);

/// Minimum squared distance from point `p` to the box [lo, hi].
double BoxMinSquaredDistanceN(const double* lo, const double* hi,
                              const double* p, int d);

/// Extends [lo, hi] by `count` row-major points (min/max only — bitwise
/// identical across ISA levels).
void BoxExtendBlockN(double* lo, double* hi, const double* block,
                     size_t count, size_t stride, int d);

// ---- fixed-level kernels (dispatch test / microbenchmarks) --------------
// Run a specific implementation regardless of ActiveLevel(). Calling the
// kAvx2Fma variants requires CpuSupportsAvx2Fma().

double SquaredDistanceAt(IsaLevel level, const double* a, const double* b,
                         int d);
void BatchSquaredDistancesAt(IsaLevel level, const double* q,
                             const double* block, size_t count, size_t stride,
                             int d, double* out);
double BoxMinSquaredDistanceAt(IsaLevel level, const double* lo,
                               const double* hi, const double* p, int d);
void BoxExtendBlockAt(IsaLevel level, double* lo, double* hi,
                      const double* block, size_t count, size_t stride, int d);

}  // namespace simd

/// Dimensions at or above this go through the dispatched kernels; below it
/// the unrolled templates in point.h/box.h win and stay bit-stable.
inline constexpr int kSimdMinDim = 8;

/// Batch size used by leaf scans that stage distances through a stack
/// buffer (duplicate leaves can exceed leaf_size, so scans chunk).
inline constexpr size_t kDistanceBatch = 64;

// Points are tightly packed rows: leaf scans hand Point arrays to the
// batched kernels as row-major blocks with stride D.
static_assert(sizeof(Point<8>) == 8 * sizeof(double),
              "Point<D> must be a packed double row");

/// Squared distance through the dispatched kernel (>= kSimdMinDim) or the
/// unrolled template (below it).
template <int D>
inline double SquaredDistanceDispatch(const Point<D>& a, const Point<D>& b) {
  if constexpr (D >= kSimdMinDim) {
    return simd::SquaredDistanceN(a.x.data(), b.x.data(), D);
  } else {
    return SquaredDistance(a, b);
  }
}

/// Distance through the dispatched kernel.
template <int D>
inline double DistanceDispatch(const Point<D>& a, const Point<D>& b) {
  return std::sqrt(SquaredDistanceDispatch(a, b));
}

/// Batched point-to-block squared distances over a packed Point row block.
template <int D>
inline void BatchSquaredDistances(const Point<D>& q, const Point<D>* block,
                                  size_t count, double* out) {
  if (count == 0) return;
  if constexpr (D >= kSimdMinDim) {
    simd::BatchSquaredDistancesN(q.x.data(), block->x.data(), count, D, D,
                                 out);
  } else {
    for (size_t i = 0; i < count; ++i) out[i] = SquaredDistance(q, block[i]);
  }
}

/// Point-to-box minimum squared distance through the dispatched kernel.
template <int D>
inline double BoxMinSquaredDistanceDispatch(const Box<D>& box,
                                            const Point<D>& p) {
  if constexpr (D >= kSimdMinDim) {
    return simd::BoxMinSquaredDistanceN(box.lo.x.data(), box.hi.x.data(),
                                        p.x.data(), D);
  } else {
    return box.MinSquaredDistance(p);
  }
}

/// Extends `box` by a packed block of points through the dispatched kernel
/// (bitwise identical to per-point Extend at every ISA level).
template <int D>
inline void BoxExtendBlock(Box<D>& box, const Point<D>* block, size_t count) {
  if (count == 0) return;
  if constexpr (D >= kSimdMinDim) {
    simd::BoxExtendBlockN(box.lo.x.data(), box.hi.x.data(), block->x.data(),
                          count, D, D);
  } else {
    for (size_t i = 0; i < count; ++i) box.Extend(block[i]);
  }
}

}  // namespace parhc
