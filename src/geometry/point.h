// Fixed-dimension Euclidean points.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <ostream>

namespace parhc {

/// A point in D-dimensional Euclidean space (double coordinates).
///
/// Trivially default-constructible on purpose: the k-d tree arena allocates
/// large uninitialized Point/Box arrays, and a member initializer here would
/// reintroduce an O(n) zero-fill on that critical path. Value-initialization
/// (`Point<D> p{};`, `std::vector<Point<D>>(n)`) still zeroes as before.
template <int D>
struct Point {
  static constexpr int kDim = D;
  std::array<double, D> x;

  double& operator[](int i) { return x[i]; }
  double operator[](int i) const { return x[i]; }

  bool operator==(const Point& o) const { return x == o.x; }
  bool operator!=(const Point& o) const { return !(*this == o); }
};

/// Squared Euclidean distance between `a` and `b`.
template <int D>
double SquaredDistance(const Point<D>& a, const Point<D>& b) {
  double s = 0;
  for (int i = 0; i < D; ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

/// Euclidean distance between `a` and `b`.
template <int D>
double Distance(const Point<D>& a, const Point<D>& b) {
  return std::sqrt(SquaredDistance(a, b));
}

template <int D>
std::ostream& operator<<(std::ostream& os, const Point<D>& p) {
  os << "(";
  for (int i = 0; i < D; ++i) os << (i ? ", " : "") << p[i];
  return os << ")";
}

}  // namespace parhc
