// Kernel bodies and runtime dispatch for geometry/distance.h.
//
// The AVX2+FMA bodies are compiled with per-function target attributes, so
// the translation unit builds under a generic -march and the binary stays
// runnable on non-AVX2 machines: the dispatcher only ever calls them after
// __builtin_cpu_supports says the ISA is there.

#include "geometry/distance.h"

#include <cstdlib>

#if defined(__x86_64__) && defined(__GNUC__) && !defined(PARHC_SIMD_OFF)
#define PARHC_HAVE_AVX2_BODIES 1
#include <immintrin.h>
#endif

namespace parhc {
namespace simd {

namespace {

// ---- scalar reference ---------------------------------------------------
// Sequential accumulation, bit-identical to the unrolled template loops in
// point.h/box.h.

double ScalarSquaredDistance(const double* a, const double* b, int d) {
  double s = 0;
  for (int i = 0; i < d; ++i) {
    double t = a[i] - b[i];
    s += t * t;
  }
  return s;
}

void ScalarBatchSquaredDistances(const double* q, const double* block,
                                 size_t count, size_t stride, int d,
                                 double* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = ScalarSquaredDistance(q, block + i * stride, d);
  }
}

double ScalarBoxMinSquaredDistance(const double* lo, const double* hi,
                                   const double* p, int d) {
  double s = 0;
  for (int i = 0; i < d; ++i) {
    double t = lo[i] - p[i];
    if (p[i] - hi[i] > t) t = p[i] - hi[i];
    if (t < 0) t = 0;
    s += t * t;
  }
  return s;
}

void ScalarBoxExtendBlock(double* lo, double* hi, const double* block,
                          size_t count, size_t stride, int d) {
  for (size_t i = 0; i < count; ++i) {
    const double* p = block + i * stride;
    for (int j = 0; j < d; ++j) {
      if (p[j] < lo[j]) lo[j] = p[j];
      if (p[j] > hi[j]) hi[j] = p[j];
    }
  }
}

// ---- AVX2+FMA -----------------------------------------------------------

#ifdef PARHC_HAVE_AVX2_BODIES

// always_inline: gcc leaves calls between same-target functions
// out-of-line, and a per-row call in the batch kernel costs ~25 cycles —
// a third of the whole d=256 row. Sharing one body also keeps the batch
// and pairwise kernels bit-identical by construction
// (tests/simd_dispatch_test.cc pins that).
__attribute__((target("avx2,fma"), always_inline)) inline double
Avx2SquaredDistanceBody(const double* a, const double* b, int d) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  int i = 0;
  for (; i + 8 <= d; i += 8) {
    __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(a + i + 4),
                               _mm256_loadu_pd(b + i + 4));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  if (i + 4 <= d) {
    __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    i += 4;
  }
  double tail = 0;
  for (; i < d; ++i) {
    double t = a[i] - b[i];
    tail += t * t;
  }
  acc0 = _mm256_add_pd(acc0, acc1);
  __m128d lo = _mm256_castpd256_pd128(acc0);
  __m128d hi = _mm256_extractf128_pd(acc0, 1);
  lo = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(lo) + _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo)) + tail;
}

__attribute__((target("avx2,fma"))) double Avx2SquaredDistance(
    const double* a, const double* b, int d) {
  return Avx2SquaredDistanceBody(a, b, d);
}

// Four rows interleaved per iteration: the query vectors are loaded once
// per 8-lane step instead of once per row, and four independent FMA
// chains cover the FMA latency a single row's two accumulators cannot.
// The floating-point operation order *within* each row is exactly
// Avx2SquaredDistanceBody's (same 2-accumulator split, same reduction),
// so results stay bit-identical to the pairwise kernel — interleaving
// only reorders operations across rows, which never mix.
__attribute__((target("avx2,fma"))) void Avx2BatchSquaredDistances(
    const double* q, const double* block, size_t count, size_t stride, int d,
    double* out) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const double* b0 = block + i * stride;
    const double* b1 = b0 + stride;
    const double* b2 = b1 + stride;
    const double* b3 = b2 + stride;
    __m256d a0 = _mm256_setzero_pd(), s0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd(), s1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd(), s2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd(), s3 = _mm256_setzero_pd();
    int j = 0;
    for (; j + 8 <= d; j += 8) {
      __m256d q0 = _mm256_loadu_pd(q + j);
      __m256d q1 = _mm256_loadu_pd(q + j + 4);
      __m256d d0, d1;
      d0 = _mm256_sub_pd(q0, _mm256_loadu_pd(b0 + j));
      d1 = _mm256_sub_pd(q1, _mm256_loadu_pd(b0 + j + 4));
      a0 = _mm256_fmadd_pd(d0, d0, a0);
      s0 = _mm256_fmadd_pd(d1, d1, s0);
      d0 = _mm256_sub_pd(q0, _mm256_loadu_pd(b1 + j));
      d1 = _mm256_sub_pd(q1, _mm256_loadu_pd(b1 + j + 4));
      a1 = _mm256_fmadd_pd(d0, d0, a1);
      s1 = _mm256_fmadd_pd(d1, d1, s1);
      d0 = _mm256_sub_pd(q0, _mm256_loadu_pd(b2 + j));
      d1 = _mm256_sub_pd(q1, _mm256_loadu_pd(b2 + j + 4));
      a2 = _mm256_fmadd_pd(d0, d0, a2);
      s2 = _mm256_fmadd_pd(d1, d1, s2);
      d0 = _mm256_sub_pd(q0, _mm256_loadu_pd(b3 + j));
      d1 = _mm256_sub_pd(q1, _mm256_loadu_pd(b3 + j + 4));
      a3 = _mm256_fmadd_pd(d0, d0, a3);
      s3 = _mm256_fmadd_pd(d1, d1, s3);
    }
    if (j + 4 <= d) {
      __m256d q0 = _mm256_loadu_pd(q + j);
      __m256d d0;
      d0 = _mm256_sub_pd(q0, _mm256_loadu_pd(b0 + j));
      a0 = _mm256_fmadd_pd(d0, d0, a0);
      d0 = _mm256_sub_pd(q0, _mm256_loadu_pd(b1 + j));
      a1 = _mm256_fmadd_pd(d0, d0, a1);
      d0 = _mm256_sub_pd(q0, _mm256_loadu_pd(b2 + j));
      a2 = _mm256_fmadd_pd(d0, d0, a2);
      d0 = _mm256_sub_pd(q0, _mm256_loadu_pd(b3 + j));
      a3 = _mm256_fmadd_pd(d0, d0, a3);
      j += 4;
    }
    double t0 = 0, t1 = 0, t2 = 0, t3 = 0;
    for (; j < d; ++j) {
      double u;
      u = q[j] - b0[j];
      t0 += u * u;
      u = q[j] - b1[j];
      t1 += u * u;
      u = q[j] - b2[j];
      t2 += u * u;
      u = q[j] - b3[j];
      t3 += u * u;
    }
    a0 = _mm256_add_pd(a0, s0);
    a1 = _mm256_add_pd(a1, s1);
    a2 = _mm256_add_pd(a2, s2);
    a3 = _mm256_add_pd(a3, s3);
    __m128d l;
    l = _mm_add_pd(_mm256_castpd256_pd128(a0), _mm256_extractf128_pd(a0, 1));
    out[i] = _mm_cvtsd_f64(l) + _mm_cvtsd_f64(_mm_unpackhi_pd(l, l)) + t0;
    l = _mm_add_pd(_mm256_castpd256_pd128(a1), _mm256_extractf128_pd(a1, 1));
    out[i + 1] = _mm_cvtsd_f64(l) + _mm_cvtsd_f64(_mm_unpackhi_pd(l, l)) + t1;
    l = _mm_add_pd(_mm256_castpd256_pd128(a2), _mm256_extractf128_pd(a2, 1));
    out[i + 2] = _mm_cvtsd_f64(l) + _mm_cvtsd_f64(_mm_unpackhi_pd(l, l)) + t2;
    l = _mm_add_pd(_mm256_castpd256_pd128(a3), _mm256_extractf128_pd(a3, 1));
    out[i + 3] = _mm_cvtsd_f64(l) + _mm_cvtsd_f64(_mm_unpackhi_pd(l, l)) + t3;
  }
  for (; i < count; ++i) {
    out[i] = Avx2SquaredDistanceBody(q, block + i * stride, d);
  }
}

__attribute__((target("avx2,fma"))) double Avx2BoxMinSquaredDistance(
    const double* lo, const double* hi, const double* p, int d) {
  __m256d acc = _mm256_setzero_pd();
  __m256d zero = _mm256_setzero_pd();
  int i = 0;
  for (; i + 4 <= d; i += 4) {
    __m256d pv = _mm256_loadu_pd(p + i);
    __m256d below = _mm256_sub_pd(_mm256_loadu_pd(lo + i), pv);
    __m256d above = _mm256_sub_pd(pv, _mm256_loadu_pd(hi + i));
    __m256d t = _mm256_max_pd(_mm256_max_pd(below, above), zero);
    acc = _mm256_fmadd_pd(t, t, acc);
  }
  double tail = 0;
  for (; i < d; ++i) {
    double t = lo[i] - p[i];
    if (p[i] - hi[i] > t) t = p[i] - hi[i];
    if (t < 0) t = 0;
    tail += t * t;
  }
  __m128d l = _mm256_castpd256_pd128(acc);
  __m128d h = _mm256_extractf128_pd(acc, 1);
  l = _mm_add_pd(l, h);
  return _mm_cvtsd_f64(l) + _mm_cvtsd_f64(_mm_unpackhi_pd(l, l)) + tail;
}

__attribute__((target("avx2,fma"))) void Avx2BoxExtendBlock(
    double* lo, double* hi, const double* block, size_t count, size_t stride,
    int d) {
  int j = 0;
  for (; j + 4 <= d; j += 4) {
    __m256d lov = _mm256_loadu_pd(lo + j);
    __m256d hiv = _mm256_loadu_pd(hi + j);
    for (size_t i = 0; i < count; ++i) {
      __m256d pv = _mm256_loadu_pd(block + i * stride + j);
      lov = _mm256_min_pd(lov, pv);
      hiv = _mm256_max_pd(hiv, pv);
    }
    _mm256_storeu_pd(lo + j, lov);
    _mm256_storeu_pd(hi + j, hiv);
  }
  for (; j < d; ++j) {
    for (size_t i = 0; i < count; ++i) {
      double v = block[i * stride + j];
      if (v < lo[j]) lo[j] = v;
      if (v > hi[j]) hi[j] = v;
    }
  }
}

#endif  // PARHC_HAVE_AVX2_BODIES

}  // namespace

const char* LevelName(IsaLevel level) {
  return level == IsaLevel::kAvx2Fma ? "avx2+fma" : "scalar";
}

bool CpuSupportsAvx2Fma() {
#ifdef PARHC_HAVE_AVX2_BODIES
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

IsaLevel DetectLevel(bool force_scalar) {
  if (force_scalar) return IsaLevel::kScalar;
  return CpuSupportsAvx2Fma() ? IsaLevel::kAvx2Fma : IsaLevel::kScalar;
}

IsaLevel ActiveLevel() {
  static const IsaLevel level = [] {
    const char* env = std::getenv("PARHC_FORCE_SCALAR");
    return DetectLevel(env != nullptr && env[0] == '1');
  }();
  return level;
}

double SquaredDistanceAt(IsaLevel level, const double* a, const double* b,
                         int d) {
#ifdef PARHC_HAVE_AVX2_BODIES
  if (level == IsaLevel::kAvx2Fma) return Avx2SquaredDistance(a, b, d);
#endif
  (void)level;
  return ScalarSquaredDistance(a, b, d);
}

void BatchSquaredDistancesAt(IsaLevel level, const double* q,
                             const double* block, size_t count, size_t stride,
                             int d, double* out) {
#ifdef PARHC_HAVE_AVX2_BODIES
  if (level == IsaLevel::kAvx2Fma) {
    Avx2BatchSquaredDistances(q, block, count, stride, d, out);
    return;
  }
#endif
  (void)level;
  ScalarBatchSquaredDistances(q, block, count, stride, d, out);
}

double BoxMinSquaredDistanceAt(IsaLevel level, const double* lo,
                               const double* hi, const double* p, int d) {
#ifdef PARHC_HAVE_AVX2_BODIES
  if (level == IsaLevel::kAvx2Fma) {
    return Avx2BoxMinSquaredDistance(lo, hi, p, d);
  }
#endif
  (void)level;
  return ScalarBoxMinSquaredDistance(lo, hi, p, d);
}

void BoxExtendBlockAt(IsaLevel level, double* lo, double* hi,
                      const double* block, size_t count, size_t stride,
                      int d) {
#ifdef PARHC_HAVE_AVX2_BODIES
  if (level == IsaLevel::kAvx2Fma) {
    Avx2BoxExtendBlock(lo, hi, block, count, stride, d);
    return;
  }
#endif
  (void)level;
  ScalarBoxExtendBlock(lo, hi, block, count, stride, d);
}

double SquaredDistanceN(const double* a, const double* b, int d) {
  return SquaredDistanceAt(ActiveLevel(), a, b, d);
}

void BatchSquaredDistancesN(const double* q, const double* block,
                            size_t count, size_t stride, int d, double* out) {
  BatchSquaredDistancesAt(ActiveLevel(), q, block, count, stride, d, out);
}

double BoxMinSquaredDistanceN(const double* lo, const double* hi,
                              const double* p, int d) {
  return BoxMinSquaredDistanceAt(ActiveLevel(), lo, hi, p, d);
}

void BoxExtendBlockN(double* lo, double* hi, const double* block,
                     size_t count, size_t stride, int d) {
  BoxExtendBlockAt(ActiveLevel(), lo, hi, block, count, stride, d);
}

}  // namespace simd
}  // namespace parhc
