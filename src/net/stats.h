// Serving-layer counters: lock-free request-latency histogram and the
// stats-source hook the `stats` verb reads.
//
// Every counter is a relaxed atomic: the stats verb runs on scheduler
// worker threads while the event loop and other workers keep mutating, so
// a snapshot is approximate by design (each field is individually exact;
// fields are not mutually consistent). That is the right trade for a
// monitoring verb — no shared lock on the serving path.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>

namespace parhc {
namespace net {

/// Log2-bucketed latency histogram over microseconds. Bucket b holds
/// samples with bit_width(us) == b, i.e. us in [2^(b-1), 2^b); quantiles
/// interpolate linearly inside the bucket (exact at bucket boundaries,
/// within one bucket's width everywhere — the reference-quantile unit
/// test in tests/obs_test.cc pins both properties), at the cost of two
/// relaxed increments and one relaxed add per sample.
///
/// The exact count/sum accessors, the per-bucket reads, and MergeFrom
/// exist for the metrics registry: obs/sources.h exports this as a
/// Prometheus histogram (cumulative le-buckets + _sum + _count).
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 48;

  void Record(uint64_t us) {
    int b = 0;
    uint64_t v = us;
    while (v > 0 && b < kBuckets - 1) {
      v >>= 1;
      ++b;
    }
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(us, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_us() const { return sum_us_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Inclusive upper bound (µs) of bucket b: 0, 1, 3, 7, ..., 2^b - 1.
  static uint64_t BucketUpperUs(int b) {
    return b == 0 ? 0 : (uint64_t{1} << b) - 1;
  }
  /// Inclusive lower bound (µs) of bucket b: 0, 1, 2, 4, ..., 2^(b-1).
  static uint64_t BucketLowerUs(int b) {
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
  }

  /// Folds another histogram's samples into this one (registry snapshots
  /// merge per-subsystem histograms).
  void MergeFrom(const LatencyHistogram& other) {
    for (int b = 0; b < kBuckets; ++b) {
      uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
      if (n != 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_us_.fetch_add(other.sum_us(), std::memory_order_relaxed);
  }

  /// Nearest-rank quantile with linear interpolation inside the bucket:
  /// for q in [0, 1], finds the sample of rank ceil(q * n) and maps its
  /// within-bucket position onto [lower, upper]. The last sample of a
  /// bucket reports exactly the bucket's upper bound (no boundary
  /// overshoot); 0 when empty. Bucket counts are snapshotted first so the
  /// rank search is internally consistent under concurrent Records.
  uint64_t QuantileUs(double q) const {
    uint64_t counts[kBuckets];
    uint64_t total = 0;
    for (int b = 0; b < kBuckets; ++b) {
      counts[b] = buckets_[b].load(std::memory_order_relaxed);
      total += counts[b];
    }
    if (total == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    uint64_t rank =
        static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
    if (rank < 1) rank = 1;
    if (rank > total) rank = total;
    uint64_t cum = 0;
    for (int b = 0; b < kBuckets; ++b) {
      if (counts[b] != 0 && cum + counts[b] >= rank) {
        double lo = static_cast<double>(BucketLowerUs(b));
        double hi = static_cast<double>(BucketUpperUs(b));
        double frac = static_cast<double>(rank - cum) /
                      static_cast<double>(counts[b]);
        return static_cast<uint64_t>(lo + frac * (hi - lo) + 0.5);
      }
      cum += counts[b];
    }
    return BucketUpperUs(kBuckets - 1);  // unreachable: total > 0
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
};

/// What the TCP server knows and the protocol's `stats` verb reports.
/// All gauges/counters are cumulative since server start except the
/// `*_now` gauges.
struct ServerStatsSnapshot {
  uint64_t connections_now = 0;
  uint64_t connections_total = 0;
  uint64_t served = 0;        ///< responses delivered (incl. busy replies)
  uint64_t inline_hits = 0;   ///< subset of served answered on the event
                              ///< loop's inline cache-hit path
  uint64_t shed = 0;          ///< requests answered `err busy` by load-shed
  uint64_t dropped = 0;       ///< responses whose connection died first
  uint64_t queued_now = 0;    ///< requests waiting in the scheduler
  uint64_t inflight_now = 0;  ///< requests running on a worker
  uint64_t protocol_errors = 0;
  uint64_t idle_closed = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;

  /// Space-separated key=value rendering, stable field order (parsed by
  /// the bench client and the CI smoke step).
  std::string Format() const {
    std::string s;
    auto kv = [&s](const char* k, uint64_t v) {
      s += ' ';
      s += k;
      s += '=';
      s += std::to_string(v);
    };
    kv("conns", connections_now);
    kv("conns_total", connections_total);
    kv("served", served);
    kv("inline_hits", inline_hits);
    kv("shed", shed);
    kv("dropped", dropped);
    kv("queued", queued_now);
    kv("inflight", inflight_now);
    kv("proto_errors", protocol_errors);
    kv("idle_closed", idle_closed);
    kv("bytes_in", bytes_in);
    kv("bytes_out", bytes_out);
    kv("p50_us", p50_us);
    kv("p99_us", p99_us);
    return s.substr(1);
  }
};

/// Implemented by the TCP server; the protocol core calls it (from a
/// worker thread) to answer the `stats` verb. The stdin REPL has no
/// server, so the hook is optional there.
class ServerStatsSource {
 public:
  virtual ~ServerStatsSource() = default;
  virtual ServerStatsSnapshot Stats() const = 0;
};

}  // namespace net
}  // namespace parhc
