// Verb implementations of the serving protocol (see protocol.h).
//
// Ported verbatim from the pre-PR examples/parhc_server.cpp REPL loop:
// every response is formatted with the same format strings so the REPL's
// batch output stays byte-identical (tests/protocol_golden_test.cc pins
// this against a transcript captured from the original implementation).
#include "net/protocol.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "data/generators.h"
#include "data/io.h"
#include "obs/trace.h"
#include "obs/verb_counters.h"

namespace parhc {
namespace net {
namespace {

std::string StrPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  char buf[512];
  int n = vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n < 0) return {};
  if (static_cast<size_t>(n) < sizeof buf) return std::string(buf, n);
  std::string big(static_cast<size_t>(n) + 1, '\0');
  va_start(ap, fmt);
  vsnprintf(&big[0], big.size(), fmt, ap);
  va_end(ap);
  big.resize(static_cast<size_t>(n));
  return big;
}

std::string JoinKeys(const std::vector<std::string>& keys) {
  std::string out = "[";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i) out += ',';
    out += keys[i];
  }
  return out + "]";
}

template <int D>
std::vector<Point<D>> GenTyped(const std::string& kind, size_t n,
                               uint64_t seed) {
  if (kind == "uniform") return UniformFill<D>(n, seed);
  if (kind == "varden") return SeedSpreaderVarden<D>(n, seed);
  if (kind == "levy") return SkewedLevy<D>(n, seed);
  if (kind == "gauss") return ClusteredGaussians<D>(n, seed);
  if (kind == "embed") return GaussianEmbeddings<D>(n, seed);
  return {};
}

template <int D>
std::vector<std::vector<double>> RowsFrom(const std::vector<Point<D>>& pts) {
  std::vector<std::vector<double>> rows(pts.size(), std::vector<double>(D));
  for (size_t i = 0; i < pts.size(); ++i) {
    for (int d = 0; d < D; ++d) rows[i][d] = pts[i][d];
  }
  return rows;
}

bool Generate(DatasetRegistry& reg, const std::string& name, int dim,
              const std::string& kind, size_t n, uint64_t seed) {
  if (kind != "uniform" && kind != "varden" && kind != "levy" &&
      kind != "gauss" && kind != "embed") {
    return false;
  }
  switch (dim) {
#define PARHC_GEN_CASE(D)                    \
  case D:                                    \
    reg.Add(name, GenTyped<D>(kind, n, seed)); \
    return true;
    PARHC_FOR_EACH_DIM(PARHC_GEN_CASE)
#undef PARHC_GEN_CASE
    default: return false;
  }
}

// `stats` is deliberately absent below: the REPL's batch output (including
// `help`) is pinned byte-for-byte to the pre-refactor implementation by
// tests/protocol_golden_test.cc. The verb is documented in README
// "Network serving" and protocol.h. `hello` and `cluster` are likewise
// absent for the same reason.
std::string HelpText() {
  return
      "commands:\n"
      "  gen <name> <dim> <uniform|varden|levy|gauss|embed> <n> [seed]\n"
      "  load <name> <csv|bin|snap> <path>\n"
      "  save <name> <dir>\n"
      "  dyn <name> <dim>\n"
      "  insert <name> <coords...>\n"
      "  geninsert <name> <dim> <kind> <n> [seed]\n"
      "  delete <name> <gid> [gid ...]\n"
      "  list | drop <name>\n"
      "  emst <name> [eps <e>]\n"
      "  slink <name> <k>\n"
      "  hdbscan <name> <minPts>\n"
      "  dbscan <name> <minPts> <eps>\n"
      "  reach <name> <minPts>\n"
      "  clusters <name> <minPts> <minClusterSize>\n"
      "  help | quit\n";
}

}  // namespace

std::vector<std::vector<double>> GenerateRows(int dim,
                                              const std::string& kind,
                                              size_t n, uint64_t seed) {
  switch (dim) {
#define PARHC_GEN_CASE(D) \
  case D:                 \
    return RowsFrom(GenTyped<D>(kind, n, seed));
    PARHC_FOR_EACH_DIM(PARHC_GEN_CASE)
#undef PARHC_GEN_CASE
    default: return {};
  }
}

std::string ProtocolDims() {
  std::string out;
#define PARHC_DIM_ITEM(D)            \
  if (!out.empty()) out += ',';      \
  out += std::to_string(D);
  PARHC_FOR_EACH_DIM(PARHC_DIM_ITEM)
#undef PARHC_DIM_ITEM
  return out;
}

std::string HelloLine(const char* role) {
  return StrPrintf("ok hello proto=%d role=%s dims=%s\n", kProtocolVersion,
                   role, ProtocolDims().c_str());
}

std::string ProtocolHelpText() { return HelpText(); }

uint64_t ExtractTraceSuffix(std::string* line) {
  size_t pos = line->rfind(" trace=");
  if (pos == std::string::npos) return 0;
  size_t digits = pos + 7;
  if (digits >= line->size() || line->size() - digits > 20) return 0;
  uint64_t id = 0;
  for (size_t i = digits; i < line->size(); ++i) {
    char c = (*line)[i];
    if (c < '0' || c > '9') return 0;  // not the final token: keep the line
    id = id * 10 + static_cast<uint64_t>(c - '0');
  }
  if (id == 0) return 0;
  line->erase(pos);
  return id;
}

// Hot path under pipelined load: snprintf into a stack buffer, no
// ostringstream. `%.6g` is byte-identical to `ostream << double` at the
// default precision (what the original REPL printed through
// ostringstream) — pinned by tests/protocol_golden_test.cc.
std::string FormatQueryResponse(const std::string& what,
                                const std::string& name,
                                const EngineResponse& r, bool show_timing) {
  if (!r.ok) {
    return StrPrintf("err %s %s: %s\n", what.c_str(), name.c_str(),
                     r.error.c_str());
  }
  char body[256];
  body[0] = '\0';
  size_t off = 0;
  auto put = [&body, &off](const char* fmt, auto... args) {
    if (off >= sizeof body) return;
    int n = snprintf(body + off, sizeof body - off, fmt, args...);
    if (n > 0) off = std::min(off + static_cast<size_t>(n), sizeof body);
  };
  if (r.mst) {
    put(" mst_edges=%zu mst_weight=%.6g", r.mst->size(), r.mst_weight);
  }
  if (r.approx_eps >= 0) {
    // High-dim EMST path: surface the approximation contract (eps bound,
    // decomposition width, how many cross pairs took the eps shortcut).
    put(" eps=%.6g partitions=%d cross_pruned=%zu", r.approx_eps,
        r.partitions, r.cross_pruned);
  }
  if (!r.labels.empty()) {
    put(" clusters=%d noise=%zu", r.num_clusters, r.num_noise);
  }
  if (r.plot) put(" plot_points=%zu", r.plot->order.size());
  if (r.dendrogram && !r.plot && r.labels.empty()) {
    put(" dendro_root_height=%.6g",
        r.dendrogram->num_points() > 1
            ? r.dendrogram->Height(r.dendrogram->root())
            : 0.0);
  }
  char tail[32];
  tail[0] = '\0';
  if (show_timing) snprintf(tail, sizeof tail, " secs=%.4f", r.seconds);
  return StrPrintf("ok %s %s%s built=%s reused=%s%s\n", what.c_str(),
                   name.c_str(), body, JoinKeys(r.built).c_str(),
                   JoinKeys(r.reused).c_str(), tail);
}

namespace {

// ---- Fast query-line parser (the inline cache-hit path) ----
//
// Splits on the same whitespace set operator>> skips and accepts only
// tokens whose hand parse provably matches istringstream extraction
// (decimal ints without overflow risk; doubles whose characters rule out
// the strtod/num_get divergences: hex, inf, nan). Anything else returns
// false and takes the istringstream path, so the two parses can never
// disagree on an accepted line.

bool IsStreamSpace(char ch) {
  return ch == ' ' || ch == '\t' || ch == '\n' || ch == '\v' ||
         ch == '\f' || ch == '\r';
}

/// Up to the first four whitespace-delimited tokens, allocation-free
/// (the query verbs need at most verb + dataset + two parameters; extra
/// tokens are ignored like the istringstream path ignores them).
int SplitTokens4(const std::string& line, std::string_view out[4]) {
  int count = 0;
  size_t i = 0;
  while (i < line.size() && count < 4) {
    while (i < line.size() && IsStreamSpace(line[i])) ++i;
    size_t b = i;
    while (i < line.size() && !IsStreamSpace(line[i])) ++i;
    if (i > b) out[count++] = std::string_view(line.data() + b, i - b);
  }
  return count;
}

bool ParseSmallInt(std::string_view tok, long* val) {
  size_t i = (tok[0] == '+' || tok[0] == '-') ? 1 : 0;
  if (i == tok.size() || tok.size() - i > 9) return false;  // no overflow
  long v = 0;
  for (size_t k = i; k < tok.size(); ++k) {
    if (tok[k] < '0' || tok[k] > '9') return false;
    v = v * 10 + (tok[k] - '0');
  }
  *val = tok[0] == '-' ? -v : v;
  return true;
}

bool ParseSimpleDouble(std::string_view tok, double* val) {
  if (tok.empty() || tok.size() > 63) return false;
  char buf[64];
  for (size_t k = 0; k < tok.size(); ++k) {
    char ch = tok[k];
    if (!((ch >= '0' && ch <= '9') || ch == '.' || ch == '+' ||
          ch == '-' || ch == 'e' || ch == 'E')) {
      return false;  // rules out hex/inf/nan, where strtod != operator>>
    }
    buf[k] = ch;
  }
  buf[tok.size()] = '\0';
  char* end = nullptr;
  *val = std::strtod(buf, &end);
  return end == buf + tok.size();
}

/// Recognizes a cleanly formed query line; extra trailing tokens are
/// ignored exactly like the istringstream path (which never checks eof
/// for query verbs).
bool FastParseQuery(const std::string& line, EngineRequest* req) {
  if (line.empty() || line[0] == '#') return false;
  std::string_view t[4];
  int nt = SplitTokens4(line, t);
  if (nt < 2) return false;
  std::string_view cmd = t[0];
  long a = 0, b = 0;
  double d = 0;
  if (cmd == "emst") {
    req->type = QueryType::kEmst;
    if (nt > 2) {
      // `emst <name> eps <e>` is the only 4-token form the slow path
      // accepts; anything else must fall through so it errs there.
      if (nt != 4 || t[2] != "eps" || !ParseSimpleDouble(t[3], &d) ||
          d < 0) {
        return false;
      }
      req->emst_eps = d;
    }
  } else if (cmd == "slink") {
    if (nt < 3 || !ParseSmallInt(t[2], &a) || a < 0) return false;
    req->type = QueryType::kSingleLinkage;
    req->k = static_cast<size_t>(a);
  } else if (cmd == "hdbscan") {
    if (nt < 3 || !ParseSmallInt(t[2], &a)) return false;
    req->type = QueryType::kHdbscan;
    req->min_pts = static_cast<int>(a);
  } else if (cmd == "dbscan") {
    if (nt < 4 || !ParseSmallInt(t[2], &a) ||
        !ParseSimpleDouble(t[3], &d)) {
      return false;
    }
    req->type = QueryType::kDbscanStarAt;
    req->min_pts = static_cast<int>(a);
    req->eps = d;
  } else if (cmd == "reach") {
    if (nt < 3 || !ParseSmallInt(t[2], &a)) return false;
    req->type = QueryType::kReachability;
    req->min_pts = static_cast<int>(a);
  } else if (cmd == "clusters") {
    if (nt < 4 || !ParseSmallInt(t[2], &a) || !ParseSmallInt(t[3], &b) ||
        b < 0) {
      return false;
    }
    req->type = QueryType::kStableClusters;
    req->min_pts = static_cast<int>(a);
    req->min_cluster_size = static_cast<size_t>(b);
  } else {
    return false;
  }
  req->dataset.assign(t[1].data(), t[1].size());
  return true;
}

}  // namespace

bool ProtocolSession::TryHandleCachedQuery(const std::string& line,
                                           std::string* out) {
  EngineRequest req;
  if (!FastParseQuery(line, &req)) return false;
  EngineResponse r;
  if (!engine_.TryRunCached(req, &r)) return false;
  // Same verb echo HandleLine produces (the verb is t[0] by construction).
  size_t b = line.find_first_not_of(" \t\n\v\f\r");
  size_t e = line.find_first_of(" \t\n\v\f\r", b);
  *out = FormatQueryResponse(line.substr(b, e - b), req.dataset, r,
                             opts_.show_timing);
  return true;
}

std::string VerbOf(const WireMessage& msg) {
  if (msg.binary) return "frame";
  size_t b = msg.text.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = msg.text.find_first_of(" \t", b);
  return msg.text.substr(b, e == std::string::npos ? e : e - b);
}

ProtocolResult ProtocolSession::HandleLine(const std::string& line) {
  // Standalone front-ends (the REPL, direct test drivers) have no
  // scheduler minting trace ids; give each request its own id and
  // `request:<verb>` span here, joining a propagated " trace=<id>" suffix
  // when a router hop carried one. TCP workers arrive with the suffix
  // already stripped and an id installed (server.cc/scheduler.cc), so
  // that path is one relaxed load.
  obs::Tracer& tracer = obs::Tracer::Get();
  if (obs::CurrentTraceId() != 0) return DispatchLine(line);
  // Strip unconditionally, so untraced front-ends still parse forwarded
  // lines.
  std::string stripped = line;
  uint64_t propagated = ExtractTraceSuffix(&stripped);
  if (propagated == 0 && !tracer.enabled()) return DispatchLine(stripped);
  obs::TraceContext ctx(propagated ? propagated : tracer.MintTraceId());
  size_t b = stripped.find_first_not_of(" \t");
  size_t e = stripped.find_first_of(" \t", b);
  std::string_view verb =
      b == std::string::npos
          ? std::string_view()
          : std::string_view(stripped.data() + b,
                             (e == std::string::npos ? stripped.size() : e) -
                                 b);
  obs::Span span(
      obs::VerbCounters::kRequestSpanNames[obs::VerbCounters::IndexOf(verb)],
      "net");
  return DispatchLine(stripped);
}

ProtocolResult ProtocolSession::DispatchLine(const std::string& line) {
  ProtocolResult res;
  if (line.empty() || line[0] == '#') return res;
  std::istringstream ss(line);
  std::string cmd;
  ss >> cmd;
  try {
    if (cmd == "quit" || cmd == "exit") {
      res.quit = true;
    } else if (cmd == "help") {
      res.out = HelpText();
    } else if (cmd == "hello") {
      res.out = HelloLine("engine");
    } else if (cmd == "stats") {
      res.out = "ok stats ";
      if (opts_.stats_source) {
        res.out += opts_.stats_source->Stats().Format();
        res.out += ' ';
      }
      res.out += engine_.counters().Format();
      res.out += ' ';
      res.out += engine_.executor().stats().Format();
      res.out += '\n';
    } else if (cmd == "gen") {
      std::string name, kind;
      int dim = 0;
      size_t n = 0;
      uint64_t seed = 1;
      ss >> name >> dim >> kind >> n;
      if (!(ss >> seed)) seed = 1;
      // Generators issue parallel scheduler work, so they run as an
      // executor task inside a worker group (see engine.h::RunExternal).
      bool ok = !name.empty() && n != 0 && engine_.RunExternal([&] {
        return Generate(engine_.registry(), name, dim, kind, n, seed);
      });
      if (!ok) {
        res.out = "err gen: usage/unsupported dim or kind\n";
      } else {
        res.out = StrPrintf("ok gen %s dim=%d n=%zu kind=%s\n", name.c_str(),
                            dim, n, kind.c_str());
      }
    } else if (cmd == "load") {
      std::string name, fmt, path;
      ss >> name >> fmt >> path;
      if (fmt != "csv" && fmt != "bin" && fmt != "snap") {
        res.out = "err load: format must be csv, bin, or snap\n";
        return res;
      }
      std::string err;
      if (fmt == "snap") {
        // Snapshot problems (missing, truncated, corrupt, or
        // version-mismatched files) come back as typed errors turned
        // into strings — never aborts.
        err = engine_.LoadDataset(name, path);
      } else {
        if (std::ifstream probe(path); !probe.good()) {
          res.out = StrPrintf("err load %s: cannot open %s\n", name.c_str(),
                              path.c_str());
          return res;
        }
        // Both loaders surface bad data as errors (CSV parse failures
        // and malformed binary files throw; caught below), never aborts.
        err = fmt == "csv"
                  ? engine_.registry().TryAddRows(name, ReadPointsCsv(path))
                  : engine_.registry().TryAddBin(name, path);
      }
      if (!err.empty()) {
        res.out = StrPrintf("err load %s: %s\n", name.c_str(), err.c_str());
        return res;
      }
      auto entry = engine_.registry().Find(name);
      res.out = StrPrintf("ok load %s dim=%d n=%zu%s\n", name.c_str(),
                          entry->dim(), entry->num_points(),
                          fmt == "snap" ? " warm" : "");
    } else if (cmd == "save") {
      std::string name, dir;
      ss >> name >> dir;
      if (name.empty() || dir.empty()) {
        res.out = "err save: usage: save <name> <dir>\n";
        return res;
      }
      std::string err = engine_.SaveDataset(name, dir);
      if (!err.empty()) {
        res.out = StrPrintf("err save %s: %s\n", name.c_str(), err.c_str());
      } else {
        res.out = StrPrintf("ok save %s dir=%s\n", name.c_str(), dir.c_str());
      }
    } else if (cmd == "dyn") {
      std::string name;
      int dim = 0;
      ss >> name >> dim;
      if (ss.fail() || name.empty()) {
        res.out = "err dyn: usage: dyn <name> <dim>\n";
        return res;
      }
      std::string err = engine_.registry().TryAddDynamic(name, dim);
      if (!err.empty()) {
        res.out = StrPrintf("err dyn %s: %s\n", name.c_str(), err.c_str());
      } else {
        res.out = StrPrintf("ok dyn %s dim=%d\n", name.c_str(), dim);
      }
    } else if (cmd == "insert") {
      std::string name;
      ss >> name;
      auto entry = engine_.registry().Find(name);
      if (!entry) {
        res.out = StrPrintf("err insert %s: unknown dataset\n", name.c_str());
        return res;
      }
      int dim = entry->dim();
      std::vector<double> vals;
      double v;
      while (ss >> v) vals.push_back(v);
      // A malformed token must not silently truncate the batch and print
      // "ok" (same rule the query verbs enforce below).
      if (!ss.eof()) {
        res.out = StrPrintf("err insert %s: malformed coordinate\n",
                            name.c_str());
        return res;
      }
      if (vals.empty() || vals.size() % static_cast<size_t>(dim) != 0) {
        res.out = StrPrintf("err insert %s: need a multiple of %d "
                            "coordinates\n",
                            name.c_str(), dim);
        return res;
      }
      std::vector<std::vector<double>> rows(vals.size() / dim);
      for (size_t i = 0; i < rows.size(); ++i) {
        rows[i].assign(vals.begin() + i * dim, vals.begin() + (i + 1) * dim);
      }
      res.out = DoInsert(name, rows);
    } else if (cmd == "geninsert") {
      std::string name, kind;
      int dim = 0;
      size_t n = 0;
      uint64_t seed = 1;
      ss >> name >> dim >> kind >> n;
      if (!(ss >> seed)) seed = 1;
      if (name.empty() || n == 0 || !DatasetRegistry::SupportedDim(dim)) {
        res.out = "err geninsert: usage/unsupported dim\n";
        return res;
      }
      // Validate the generator kind before the create-if-absent side
      // effect, so a typo doesn't leave a spurious empty dataset behind.
      // (Executor task: generators issue parallel work; see `gen` above.)
      std::vector<std::vector<double>> rows = engine_.RunExternal(
          [&] { return GenerateRows(dim, kind, n, seed); });
      if (rows.empty()) {
        res.out = StrPrintf("err geninsert: unknown kind %s\n", kind.c_str());
        return res;
      }
      if (!engine_.registry().Find(name)) {
        engine_.registry().TryAddDynamic(name, dim);
      }
      uint32_t first = 0;
      std::string err = engine_.InsertBatch(name, rows, &first);
      if (!err.empty()) {
        res.out = StrPrintf("err geninsert %s: %s\n", name.c_str(),
                            err.c_str());
      } else {
        res.out = StrPrintf("ok geninsert %s n=%zu gids=[%u,%u)\n",
                            name.c_str(), n, first,
                            first + static_cast<uint32_t>(n));
      }
    } else if (cmd == "delete") {
      std::string name;
      ss >> name;
      std::vector<uint32_t> gids;
      uint32_t gid;
      while (ss >> gid) gids.push_back(gid);
      if (!ss.eof()) {
        res.out = StrPrintf("err delete %s: malformed gid\n", name.c_str());
        return res;
      }
      if (name.empty() || gids.empty()) {
        res.out = "err delete: usage: delete <name> <gid> [gid ...]\n";
        return res;
      }
      size_t deleted = 0;
      std::string err = engine_.DeleteBatch(name, gids, &deleted);
      if (!err.empty()) {
        res.out = StrPrintf("err delete %s: %s\n", name.c_str(), err.c_str());
      } else {
        res.out = StrPrintf("ok delete %s deleted=%zu\n", name.c_str(),
                            deleted);
      }
    } else if (cmd == "list") {
      for (const DatasetInfo& info : engine_.registry().List()) {
        std::string extra;
        if (info.dynamic) {
          extra = " dynamic shards=" + std::to_string(info.num_shards);
        }
        res.out += StrPrintf("dataset %s dim=%d n=%zu knn_k=%zu cached=%zu%s\n",
                             info.name.c_str(), info.dim, info.num_points,
                             info.knn_k, info.cached_clusterings,
                             extra.c_str());
      }
      res.out += "ok list\n";
    } else if (cmd == "drop") {
      std::string name;
      ss >> name;
      res.out = StrPrintf(engine_.registry().Remove(name)
                              ? "ok drop %s\n"
                              : "err drop %s: unknown\n",
                          name.c_str());
    } else if (cmd == "emst" || cmd == "slink" || cmd == "hdbscan" ||
               cmd == "dbscan" || cmd == "reach" || cmd == "clusters") {
      EngineRequest req;
      ss >> req.dataset;
      if (cmd == "emst") {
        req.type = QueryType::kEmst;
        std::string sub;
        if (ss >> sub) {
          // Optional `eps <e>` suffix routes to the partitioned
          // high-dimensional path (emst/emst_highdim.h); eps 0 is the
          // exact distance decomposition.
          if (sub != "eps" || !(ss >> req.emst_eps) || req.emst_eps < 0) {
            res.out = "err emst: usage: emst <name> [eps <e>]\n";
            return res;
          }
        } else {
          ss.clear();  // plain `emst <name>`: the suffix is optional
        }
      } else if (cmd == "slink") {
        req.type = QueryType::kSingleLinkage;
        ss >> req.k;
      } else if (cmd == "hdbscan") {
        req.type = QueryType::kHdbscan;
        ss >> req.min_pts;
      } else if (cmd == "dbscan") {
        req.type = QueryType::kDbscanStarAt;
        ss >> req.min_pts >> req.eps;
      } else if (cmd == "reach") {
        req.type = QueryType::kReachability;
        ss >> req.min_pts;
      } else {
        req.type = QueryType::kStableClusters;
        ss >> req.min_pts >> req.min_cluster_size;
      }
      // A missing or malformed argument must not silently fall back to a
      // default parameterization and print "ok".
      if (ss.fail() || req.dataset.empty()) {
        res.out = StrPrintf("err %s: missing or malformed arguments "
                            "(try help)\n",
                            cmd.c_str());
        return res;
      }
      res.out = FormatQueryResponse(cmd, req.dataset, engine_.Run(req),
                                    opts_.show_timing);
    } else if (cmd == "metrics") {
      std::string mode;
      ss >> mode;
      if (opts_.obs == nullptr) {
        res.out = "err metrics: no metrics registry in this front-end\n";
      } else if (mode == "json") {
        res.out = opts_.obs->metrics.Json();
        res.out += '\n';
      } else if (!mode.empty()) {
        res.out = "err metrics: usage: metrics [json]\n";
      } else {
        res.out = opts_.obs->metrics.PrometheusText();
        res.out += "ok metrics\n";
      }
    } else if (cmd == "trace") {
      std::string sub;
      ss >> sub;
      obs::Tracer& tracer = obs::Tracer::Get();
      if (sub == "on") {
        tracer.Enable();
        res.out = "ok trace on\n";
      } else if (sub == "off") {
        tracer.Disable();
        res.out = "ok trace off\n";
      } else if (sub == "status") {
        res.out = StrPrintf(
            "ok trace status enabled=%d spans=%llu dropped=%llu\n",
            tracer.enabled() ? 1 : 0,
            static_cast<unsigned long long>(tracer.spans_recorded()),
            static_cast<unsigned long long>(tracer.spans_dropped()));
      } else if (sub == "clear") {
        tracer.Clear();
        res.out = "ok trace clear\n";
      } else if (sub == "dump") {
        std::string path;
        ss >> path;
        if (path.empty()) {
          res.out = "err trace: usage: trace dump <file>\n";
        } else {
          size_t spans = 0;
          if (tracer.DumpJsonToFile(path, &spans)) {
            res.out = StrPrintf("ok trace dump %s spans=%zu\n", path.c_str(),
                                spans);
          } else {
            res.out = StrPrintf("err trace dump %s: cannot write\n",
                                path.c_str());
          }
        }
      } else {
        res.out = "err trace: usage: trace on|off|status|clear|dump <file>\n";
      }
    } else if (cmd == "slowlog") {
      std::string sub;
      ss >> sub;
      if (opts_.obs == nullptr) {
        res.out = "err slowlog: no slow-query log in this front-end\n";
      } else if (sub == "clear") {
        opts_.obs->slowlog.Clear();
        res.out = "ok slowlog clear\n";
      } else if (sub == "threshold") {
        uint64_t us = 0;
        if (!(ss >> us)) {
          res.out = "err slowlog: usage: slowlog threshold <us>\n";
        } else {
          opts_.obs->slowlog.set_threshold_us(us);
          res.out = StrPrintf("ok slowlog threshold_us=%llu\n",
                              static_cast<unsigned long long>(us));
        }
      } else if (!sub.empty()) {
        res.out = "err slowlog: usage: slowlog [clear|threshold <us>]\n";
      } else {
        std::vector<obs::SlowLogRecord> entries = opts_.obs->slowlog.Entries();
        for (const obs::SlowLogRecord& e : entries) {
          res.out += e.Format();
          res.out += '\n';
        }
        res.out += StrPrintf(
            "ok slowlog n=%zu threshold_us=%llu\n", entries.size(),
            static_cast<unsigned long long>(opts_.obs->slowlog.threshold_us()));
      }
    } else {
      res.out = StrPrintf("err unknown command: %s (try help)\n", cmd.c_str());
    }
  } catch (const std::exception& e) {
    res.out = StrPrintf("err %s: %s\n", cmd.c_str(), e.what());
  }
  return res;
}

ProtocolResult ProtocolSession::HandleFrame(uint8_t opcode,
                                            const std::string& payload) {
  ProtocolResult res;
  try {
    PayloadReader rd(payload);
    if (opcode == kOpInsertPoints) {
      std::string name = rd.GetBytes(rd.GetU16());
      int dim = static_cast<int>(rd.GetU16());
      uint32_t count = rd.GetU32();
      if (!rd.ok() || name.empty() || dim <= 0 || count == 0 ||
          rd.remaining() != static_cast<size_t>(count) * dim * sizeof(double)) {
        res.out = "err insert: malformed frame payload\n";
        return res;
      }
      auto entry = engine_.registry().Find(name);
      if (!entry) {
        res.out = StrPrintf("err insert %s: unknown dataset\n", name.c_str());
        return res;
      }
      if (entry->dim() != dim) {
        res.out = StrPrintf("err insert %s: frame dim %d != dataset dim %d\n",
                            name.c_str(), dim, entry->dim());
        return res;
      }
      std::vector<std::vector<double>> rows(count, std::vector<double>(dim));
      for (auto& row : rows) {
        for (double& v : row) v = rd.GetF64();
      }
      res.out = DoInsert(name, rows);
    } else if (opcode == kOpGetLabels) {
      std::string name = rd.GetBytes(rd.GetU16());
      uint8_t kind = rd.GetU8();
      EngineRequest req;
      req.dataset = name;
      req.min_pts = static_cast<int>(rd.GetU32());
      if (kind == 0) {
        req.type = QueryType::kDbscanStarAt;
        req.eps = rd.GetF64();
      } else {
        req.type = QueryType::kStableClusters;
        req.min_cluster_size = static_cast<size_t>(rd.GetU64());
      }
      if (!rd.ok() || name.empty() || kind > 1 || rd.remaining() != 0) {
        res.out = "err labels: malformed frame payload\n";
        return res;
      }
      EngineResponse r = engine_.Run(req);
      if (!r.ok) {
        res.out = StrPrintf("err labels %s: %s\n", name.c_str(),
                            r.error.c_str());
        return res;
      }
      std::string reply;
      reply.reserve(4 + r.labels.size() * 4);
      PutU32(&reply, static_cast<uint32_t>(r.labels.size()));
      for (int32_t l : r.labels) PutU32(&reply, static_cast<uint32_t>(l));
      res.out = EncodeFrame(kOpLabelsReply, reply);
    } else if (opcode == kOpExportPoints) {
      std::string name = rd.GetBytes(rd.GetU16());
      if (!rd.ok() || name.empty() || rd.remaining() != 0) {
        res.out = "err export: malformed frame payload\n";
        return res;
      }
      int dim = 0;
      std::vector<uint32_t> gids;
      std::vector<double> coords;
      std::string err = engine_.ExportDataset(name, &dim, &gids, &coords);
      if (!err.empty()) {
        res.out = StrPrintf("err export %s: %s\n", name.c_str(), err.c_str());
        return res;
      }
      std::string reply;
      reply.reserve(6 + gids.size() * 4 + coords.size() * 8);
      PutU16(&reply, static_cast<uint16_t>(dim));
      PutU32(&reply, static_cast<uint32_t>(gids.size()));
      for (uint32_t g : gids) PutU32(&reply, g);
      for (double v : coords) PutF64(&reply, v);
      res.out = EncodeFrame(kOpPointsReply, reply);
    } else if (opcode == kOpExportMst) {
      std::string name = rd.GetBytes(rd.GetU16());
      if (!rd.ok() || name.empty() || rd.remaining() != 0) {
        res.out = "err export: malformed frame payload\n";
        return res;
      }
      EngineRequest req;
      req.type = QueryType::kEmst;
      req.dataset = name;
      EngineResponse r = engine_.Run(req);
      if (!r.ok) {
        res.out = StrPrintf("err export %s: %s\n", name.c_str(),
                            r.error.c_str());
        return res;
      }
      // MST endpoints are dense point indices; rewrite to global ids so
      // the router can merge edge lists across workers (point_ids is null
      // for static datasets, where dense index == gid).
      size_t count = r.mst ? r.mst->size() : 0;
      std::string reply;
      reply.reserve(4 + count * 16);
      PutU32(&reply, static_cast<uint32_t>(count));
      for (size_t i = 0; i < count; ++i) {
        const WeightedEdge& e = (*r.mst)[i];
        PutU32(&reply, r.point_ids ? (*r.point_ids)[e.u] : e.u);
        PutU32(&reply, r.point_ids ? (*r.point_ids)[e.v] : e.v);
        PutF64(&reply, e.w);
      }
      res.out = EncodeFrame(kOpEdgesReply, reply);
    } else if (opcode == kOpKnnQuery) {
      std::string name = rd.GetBytes(rd.GetU16());
      uint32_t k = rd.GetU32();
      int dim = static_cast<int>(rd.GetU16());
      uint32_t count = rd.GetU32();
      if (!rd.ok() || name.empty() || k == 0 || dim <= 0 || count == 0 ||
          rd.remaining() != static_cast<size_t>(count) * dim * sizeof(double)) {
        res.out = "err knn: malformed frame payload\n";
        return res;
      }
      std::vector<double> coords(static_cast<size_t>(count) * dim);
      for (double& v : coords) v = rd.GetF64();
      std::vector<double> rows;
      std::string err = engine_.KnnForQueries(name, k, coords, count, &rows);
      if (!err.empty()) {
        res.out = StrPrintf("err knn %s: %s\n", name.c_str(), err.c_str());
        return res;
      }
      std::string reply;
      reply.reserve(8 + rows.size() * 8);
      PutU32(&reply, count);
      PutU32(&reply, k);
      for (double v : rows) PutF64(&reply, v);
      res.out = EncodeFrame(kOpKnnReply, reply);
    } else if (opcode == kOpShardMrMst) {
      std::string name = rd.GetBytes(rd.GetU16());
      uint32_t count = rd.GetU32();
      if (!rd.ok() || name.empty() ||
          rd.remaining() != static_cast<size_t>(count) * sizeof(double)) {
        res.out = "err mrmst: malformed frame payload\n";
        return res;
      }
      std::vector<double> core(count);
      for (double& v : core) v = rd.GetF64();
      std::vector<WeightedEdge> edges;
      std::string err = engine_.ShardMrMst(name, core, &edges);
      if (!err.empty()) {
        res.out = StrPrintf("err mrmst %s: %s\n", name.c_str(), err.c_str());
        return res;
      }
      std::string reply;
      reply.reserve(4 + edges.size() * 16);
      PutU32(&reply, static_cast<uint32_t>(edges.size()));
      for (const WeightedEdge& e : edges) {
        PutU32(&reply, e.u);
        PutU32(&reply, e.v);
        PutF64(&reply, e.w);
      }
      res.out = EncodeFrame(kOpEdgesReply, reply);
    } else {
      res.out = StrPrintf("err frame: unknown opcode 0x%02x\n", opcode);
    }
  } catch (const std::exception& e) {
    res.out = StrPrintf("err frame: %s\n", e.what());
  }
  return res;
}

std::string ProtocolSession::DoInsert(
    const std::string& name, const std::vector<std::vector<double>>& rows) {
  uint32_t first = 0;
  std::string err = engine_.InsertBatch(name, rows, &first);
  if (!err.empty()) {
    return StrPrintf("err insert %s: %s\n", name.c_str(), err.c_str());
  }
  return StrPrintf("ok insert %s n=%zu gids=[%u,%u)\n", name.c_str(),
                   rows.size(), first,
                   first + static_cast<uint32_t>(rows.size()));
}

}  // namespace net
}  // namespace parhc
