// The serving layer's shared request language: one verb implementation
// for every front-end.
//
// Factored out of examples/parhc_server.cpp so the stdin REPL and the TCP
// server (net/server.h) parse, execute, and format requests with the same
// code — the REPL's batch output is byte-identical to the pre-split
// implementation (regression-locked by tests/protocol_golden_test.cc, and
// the loopback integration test holds the TCP path to the same bytes).
//
// Text verbs (one request per line; responses are '\n'-terminated lines):
//   gen <name> <dim> <uniform|varden|levy|gauss|embed> <n> [seed]
//   load <name> <csv|bin|snap> <path>
//   save <name> <dir>
//   dyn <name> <dim>
//   insert <name> <coords...>
//   geninsert <name> <dim> <kind> <n> [seed]
//   delete <name> <gid> [gid ...]
//   list | drop <name>
//   emst <name> [eps <e>] | slink <name> <k> | hdbscan <name> <minPts>
//     (emst eps: partitioned high-dim path with (1+eps) cross-pair
//      pruning — eps 0 is the exact distance decomposition; the response
//      carries eps=<e> partitions=<p> cross_pruned=<c>)
//   dbscan <name> <minPts> <eps> | reach <name> <minPts>
//   clusters <name> <minPts> <minClusterSize>
//   stats | help | quit
//
// Observability verbs (require ProtocolOptions::obs except `trace`, which
// drives the process-wide tracer; none appear in `help`, whose output is
// golden-pinned):
//   metrics        -> Prometheus text exposition lines, then "ok metrics"
//   metrics json   -> one JSON line: {"metrics":[...]}
//   trace on|off|status|clear
//   trace dump <file>  -> writes Chrome trace_event JSON (chrome://tracing
//                         or Perfetto), replies "ok trace dump <file>
//                         spans=<n>"
//   slowlog        -> one "slow kind=... verb=... queue_us=..." line per
//                     record (oldest first), then "ok slowlog n=<k>
//                     threshold_us=<t>"
//   slowlog clear | slowlog threshold <us>
//
// Binary requests (TCP only; see frame.h for the frame layout) reuse the
// same execution paths: kOpInsertPoints answers with the text `insert`
// verb's line, kOpGetLabels answers with a kOpLabelsReply frame.
//
// Thread-safety: a ProtocolSession holds only a reference to the (thread-
// safe) engine plus immutable options, so distinct sessions may execute
// on distinct threads concurrently. One session must not be driven from
// two threads at once (the TCP scheduler runs at most one request per
// connection at a time, which also keeps responses in request order).
// Verbs that issue parallel scheduler work outside the engine (the data
// generators behind gen/geninsert) run through
// ClusteringEngine::RunExternal, which admits them into the engine's
// build executor and runs them inside a TaskArena worker group like any
// artifact build.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "net/frame.h"
#include "net/stats.h"
#include "obs/observability.h"

namespace parhc {
namespace net {

/// Spoken protocol revision, reported by the `hello` handshake and the
/// netserver banner. Bump on any incompatible change to the request
/// language or frame payloads; the router refuses upstreams whose hello
/// reports a different version (src/cluster/upstream.h).
inline constexpr int kProtocolVersion = 1;

struct ProtocolOptions {
  /// Appends " secs=<wall clock>" to query responses (the REPL's historical
  /// format). Off in tests/benches that compare transcripts across runs.
  bool show_timing = true;
  /// Server counters for the `stats` verb; null (the REPL) reports engine
  /// counters only.
  const ServerStatsSource* stats_source = nullptr;
  /// Metrics registry + slow-query log behind the `metrics` and `slowlog`
  /// verbs; null front-ends answer those verbs with an err line. Not owned.
  obs::Observability* obs = nullptr;
};

/// Result of executing one request: the exact bytes to write back (every
/// line '\n'-terminated; empty for blank/comment input) and whether the
/// client asked to end the session.
struct ProtocolResult {
  std::string out;
  bool quit = false;
};

/// What the TCP server needs from a session: execute one wire message,
/// optionally answer warm reads inline on the event loop. Implemented by
/// ProtocolSession (engine worker) and cluster::RouterSession (router
/// tier); NetServer accepts any implementation through a SessionFactory
/// (server.h).
class SessionHandler {
 public:
  virtual ~SessionHandler() = default;

  /// Executes one decoded wire message (text line or binary frame).
  virtual ProtocolResult Handle(const WireMessage& msg) = 0;

  /// Inline fast path for the event loop: when the line can be answered
  /// without blocking, sets *out to the exact bytes Handle would produce
  /// and returns true. Default: nothing is inline-answerable.
  virtual bool TryHandleInline(const std::string& line, std::string* out) {
    (void)line;
    (void)out;
    return false;
  }
};

class ProtocolSession : public SessionHandler {
 public:
  explicit ProtocolSession(ClusteringEngine& engine,
                           ProtocolOptions opts = {})
      : engine_(engine), opts_(opts) {}

  /// Executes one text request line (without its '\n').
  ProtocolResult HandleLine(const std::string& line);

  /// Zero-dispatch fast path for the event loop: if `line` is a cleanly
  /// formed query verb (emst/slink/hdbscan/dbscan/reach/clusters) whose
  /// parse provably matches HandleLine's, and the engine can answer it
  /// from cache without blocking (ClusteringEngine::TryRunCached), sets
  /// *out to the exact bytes HandleLine would produce and returns true.
  /// Returns false for everything else — the caller must then route the
  /// line through HandleLine (on a worker). Callers may only use this
  /// when no earlier request of the same client is still pending, or
  /// responses would reorder.
  bool TryHandleCachedQuery(const std::string& line, std::string* out);

  /// Executes one binary frame. The returned bytes are either an encoded
  /// reply frame or a text err line.
  ProtocolResult HandleFrame(uint8_t opcode, const std::string& payload);

  /// Dispatches a decoded wire message to HandleLine/HandleFrame.
  ProtocolResult Handle(const WireMessage& msg) override {
    return msg.binary ? HandleFrame(msg.opcode, msg.payload)
                      : HandleLine(msg.text);
  }

  bool TryHandleInline(const std::string& line, std::string* out) override {
    return TryHandleCachedQuery(line, out);
  }

 private:
  /// HandleLine's body; HandleLine itself only adds trace bookkeeping for
  /// standalone front-ends (REPL/tests) that have no scheduler minting ids.
  ProtocolResult DispatchLine(const std::string& line);

  /// Shared tail of the text and binary insert paths; returns the reply
  /// line.
  std::string DoInsert(const std::string& name,
                       const std::vector<std::vector<double>>& rows);

  ClusteringEngine& engine_;
  ProtocolOptions opts_;
};

/// First whitespace-delimited token of a text line ("frame" for binary
/// messages) — the verb named in `err busy <verb>` load-shed replies.
std::string VerbOf(const WireMessage& msg);

// ---- Helpers shared with the router tier (src/cluster/) ----

/// Formats a query response line ("ok <what> <name> mst_edges=... ..."),
/// byte-identical to what the single-node verbs print (golden-pinned).
/// The router formats its merged answers through this so a sharded
/// response's numeric fields match a single-node engine bit for bit.
std::string FormatQueryResponse(const std::string& what,
                                const std::string& name,
                                const EngineResponse& r, bool show_timing);

/// The `help` verb's text (golden-pinned; the router serves the same).
std::string ProtocolHelpText();

/// The `hello` handshake reply for `role`:
///   "ok hello proto=<v> role=<role> dims=<d1,d2,...>\n"
std::string HelloLine(const char* role);

/// Comma-joined registry-hosted dimensions (the hello dim caps).
std::string ProtocolDims();

/// Strips a trailing " trace=<id>" suffix from a request line and returns
/// the id (0 when absent/malformed, line untouched). The router appends
/// this suffix on router→worker hops so worker spans join the client's
/// trace; stripping is unconditional so untraced workers still parse
/// forwarded lines. (A dataset literally named "trace=<digits>" as the
/// final token would be eaten — accepted, documented quirk.)
uint64_t ExtractTraceSuffix(std::string* line);

/// Generated points as runtime rows (the `gen`/`geninsert` generators);
/// empty when the kind or dim is unknown. Callers that issue this from a
/// serving path should wrap it in ClusteringEngine::RunExternal — the
/// generators issue parallel scheduler work.
std::vector<std::vector<double>> GenerateRows(int dim,
                                              const std::string& kind,
                                              size_t n, uint64_t seed);

}  // namespace net
}  // namespace parhc
