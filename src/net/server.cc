#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/frame.h"
#include "net/poller.h"
#include "net/protocol.h"
#include "net/scheduler.h"
#include "obs/sources.h"
#include "obs/trace.h"

namespace parhc {
namespace net {
namespace {

using Clock = std::chrono::steady_clock;

int SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return -1;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Signal → event-loop bridge: the handler may only touch async-signal-safe
// state, so it sets a flag and writes one byte to the wake pipe of the
// (single) server that installed handlers.
std::atomic<int> g_signal_wake_fd{-1};
volatile std::sig_atomic_t g_signal_stop = 0;

void OnStopSignal(int) {
  g_signal_stop = 1;
  int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    char b = 's';
    [[maybe_unused]] ssize_t ignored = ::write(fd, &b, 1);
  }
}

/// Second whitespace-delimited token of a text request — the dataset
/// argument for every verb that takes one; "" for binary frames, unknown
/// commands, and the dataset-less verbs (help/list/stats/metrics/trace/
/// slowlog).
std::string DatasetOf(const WireMessage& msg, int verb_idx) {
  using VC = obs::VerbCounters;
  if (msg.binary || verb_idx == VC::kOther) return "";
  std::string_view verb = VC::kVerbs[verb_idx];
  if (verb == "help" || verb == "list" || verb == "stats" ||
      verb == "metrics" || verb == "trace" || verb == "slowlog") {
    return "";
  }
  const std::string& text = msg.text;
  size_t b = text.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = text.find_first_of(" \t", b);
  if (e == std::string::npos) return "";
  b = text.find_first_not_of(" \t", e);
  if (b == std::string::npos) return "";
  e = text.find_first_of(" \t\n\v\f\r", b);
  return text.substr(b, e == std::string::npos ? std::string::npos : e - b);
}

/// The built-in factory behind the engine-reference constructor: plain
/// ProtocolSessions over one engine.
class EngineSessionFactory final : public SessionFactory {
 public:
  explicit EngineSessionFactory(ClusteringEngine& engine) : engine_(engine) {}

  std::shared_ptr<SessionHandler> NewSession(
      const SessionContext& ctx) override {
    ProtocolOptions popts;
    popts.show_timing = ctx.show_timing;
    popts.stats_source = ctx.stats_source;
    popts.obs = ctx.obs;
    return std::make_shared<ProtocolSession>(engine_, popts);
  }

  ClusteringEngine* engine() override { return &engine_; }

 private:
  ClusteringEngine& engine_;
};

}  // namespace

struct NetServer::Impl {
  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    FrameSplitter in{/*allow_binary=*/true};
    std::string out;
    std::shared_ptr<SessionHandler> session;  // outlives the conn: jobs
                                              // in flight hold a ref
    Clock::time_point last_active;
    uint64_t submitted = 0;
    uint64_t completed = 0;
    /// Peer closed its write side: no more bytes arrive, but everything
    /// already buffered (including a final line without '\n') is still
    /// parsed and answered.
    bool peer_eof = false;
    /// Discard all further input: quit verb, framing violation, or server
    /// drain. Unlike peer_eof, buffered bytes are dropped unparsed.
    bool stop_parsing = false;
    bool read_paused = false;   ///< per-conn flow control engaged
    bool want_write = false;    ///< EPOLLOUT armed
    bool flush_pending = false; ///< in DrainCompletions' touched set
  };

  std::unique_ptr<SessionFactory> owned_factory;  ///< engine-ctor only
  SessionFactory& factory;
  NetServerOptions opts;

  int listen_fd = -1;
  int wake_r = -1;
  int wake_w = -1;
  /// Reserve descriptor released to accept-and-close when the process is
  /// out of fds (EMFILE) — prevents a level-triggered accept busy-spin.
  int spare_fd = -1;
  std::unique_ptr<Poller> poller;
  std::unique_ptr<QueryScheduler> sched;

  std::unordered_map<int, std::unique_ptr<Conn>> conns;  // by fd
  std::unordered_map<uint64_t, Conn*> by_id;
  uint64_t next_conn_id = 1;
  bool draining = false;
  Clock::time_point drain_deadline;

  std::atomic<bool> stop_requested{false};

  std::mutex comp_mu;
  std::vector<std::pair<uint64_t, std::string>> completions;

  obs::Observability obs;     ///< metrics registry + slow-query log
  obs::VerbCounters verbs;    ///< per-verb request counters

  std::atomic<uint64_t> inline_served{0};
  std::atomic<uint64_t> conns_now{0};
  std::atomic<uint64_t> conns_total{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<uint64_t> proto_errors{0};
  std::atomic<uint64_t> idle_closed{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};

  Impl(std::unique_ptr<SessionFactory> owned, SessionFactory* external,
       NetServerOptions o)
      : owned_factory(std::move(owned)),
        factory(owned_factory ? *owned_factory : *external),
        opts(std::move(o)) {}

  ~Impl() {
    for (auto& [fd, conn] : conns) ::close(fd);
    conns.clear();
    by_id.clear();
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_r >= 0) ::close(wake_r);
    if (wake_w >= 0) ::close(wake_w);
    if (spare_fd >= 0) ::close(spare_fd);
  }

  void WakeLoop() {
    char b = 'w';
    [[maybe_unused]] ssize_t ignored = ::write(wake_w, &b, 1);
  }

  bool ReadEnabled(const Conn& c) const {
    return !c.peer_eof && !c.stop_parsing && !c.read_paused && !draining;
  }

  void UpdateInterest(Conn* c) {
    poller->Mod(c->fd, ReadEnabled(*c), c->want_write);
  }

  void Accept() {
    for (;;) {
      int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if ((errno == EMFILE || errno == ENFILE) && spare_fd >= 0) {
          // Out of descriptors with a connection still in the backlog:
          // level-triggered polling would otherwise report the listen fd
          // readable forever and spin the loop. Burn the reserve fd to
          // accept-and-close (the client sees a clean RST/EOF instead of
          // hanging), then re-arm the reserve.
          ::close(spare_fd);
          spare_fd = -1;
          int shed = ::accept(listen_fd, nullptr, nullptr);
          if (shed >= 0) ::close(shed);
          spare_fd = ::open("/dev/null", O_RDONLY);
          if (shed >= 0) continue;
        }
        return;  // EAGAIN or transient error
      }
      SetNonBlocking(fd);
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conn->id = next_conn_id++;
      SessionContext ctx;
      ctx.show_timing = opts.show_timing;
      ctx.stats_source = owner;
      ctx.obs = &obs;
      conn->session = factory.NewSession(ctx);
      conn->last_active = Clock::now();
      by_id[conn->id] = conn.get();
      poller->Add(fd, /*readable=*/true, /*writable=*/false);
      conns[fd] = std::move(conn);
      conns_now.fetch_add(1, std::memory_order_relaxed);
      conns_total.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void Destroy(Conn* c) {
    int fd = c->fd;
    sched->CloseConn(c->id);
    poller->Del(fd);
    ::close(fd);
    by_id.erase(c->id);
    conns.erase(fd);  // frees c
    conns_now.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Closes the connection once no more input is coming (or wanted) and
  /// everything it asked for has been answered and flushed.
  void MaybeFinish(Conn* c) {
    if ((c->peer_eof || c->stop_parsing) &&
        c->completed == c->submitted && c->out.empty()) {
      Destroy(c);
    }
  }

  /// Parses buffered wire messages and submits them to the scheduler,
  /// honoring the per-connection pipelining bound. May destroy the
  /// connection (via the trailing FlushOut) — callers must re-look it up
  /// before touching it again.
  void ProcessParsed(Conn* c) {
    // Inline fast path budget: warm reads answered directly on the event
    // loop (no worker handoff; see TryHandleCachedQuery). Bounded per
    // call so a deep pipelined burst cannot stall accepts/other
    // connections for long; past the budget, requests take the normal
    // scheduler path, which also re-establishes the ordering barrier.
    int inline_budget = 256;
    while (!c->stop_parsing && !c->read_paused) {
      WireMessage msg;
      if (!c->in.Next(&msg)) break;
      // A router hop carries the client's trace id as a " trace=<id>"
      // line suffix; strip it before parsing so verbs/datasets/replies
      // are unchanged, and thread it through to the request span.
      uint64_t propagated = msg.binary ? 0 : ExtractTraceSuffix(&msg.text);
      if (!msg.binary && c->submitted == c->completed &&
          inline_budget > 0) {
        // Nothing of this connection is queued or in flight, so an
        // inline answer cannot overtake an earlier response.
        std::string reply;
        auto t0 = Clock::now();
        if (c->session->TryHandleInline(msg.text, &reply)) {
          --inline_budget;
          inline_served.fetch_add(1, std::memory_order_relaxed);
          auto t1 = Clock::now();
          uint64_t us = static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                  .count());
          sched->RecordLatency(us);
          int vi = obs::VerbCounters::IndexOf(VerbOf(msg));
          verbs.BumpIndex(vi);
          obs::Tracer& tracer = obs::Tracer::Get();
          if (tracer.enabled()) {
            // No queue, no workers: the whole request is one span, reusing
            // the latency measurement's timestamps.
            tracer.RecordSpan(obs::VerbCounters::kRequestSpanNames[vi],
                              "net",
                              propagated ? propagated : tracer.MintTraceId(),
                              obs::ToTraceNs(t0), obs::ToTraceNs(t1));
          }
          if (us >= obs.slowlog.threshold_us()) {
            obs::SlowLogRecord rec;
            rec.verb = obs::VerbCounters::kVerbs[vi];
            rec.dataset = DatasetOf(msg, vi);
            rec.build_us = us;
            rec.total_us = us;
            rec.cache_hit = true;
            obs.slowlog.RecordQuery(std::move(rec));
          }
          c->last_active = t1;
          c->out += reply;
          continue;
        }
      }
      std::string verb = VerbOf(msg);
      if (!msg.binary && (verb == "quit" || verb == "exit")) {
        // The REPL's quit: stop parsing (rest of the input stream is
        // discarded), answer what is pending, close.
        c->stop_parsing = true;
        break;
      }
      auto session = c->session;  // keeps the session alive for the job
      auto m = std::make_shared<WireMessage>(std::move(msg));
      ++c->submitted;
      RequestTag tag;
      tag.verb = obs::VerbCounters::IndexOf(verb);
      tag.dataset = DatasetOf(*m, tag.verb);
      obs::Tracer& tracer = obs::Tracer::Get();
      if (propagated) {
        tag.trace_id = propagated;
      } else if (tracer.enabled()) {
        tag.trace_id = tracer.MintTraceId();
      }
      int verb_idx = tag.verb;
      size_t pending = sched->Submit(
          c->id, "err busy " + verb + "\n",
          [session, m, this, verb_idx] {
            std::string out = session->Handle(*m).out;
            // Bumped after the response exists so sum(per-verb) == served
            // at quiescence (asserted by ci/check_metrics.py); shed busy
            // replies never run this job and are counted by `shed` alone.
            verbs.BumpIndex(verb_idx);
            return out;
          },
          std::move(tag));
      if (pending >= opts.max_pipelined) c->read_paused = true;
    }
    if (!c->in.error().empty() && !c->stop_parsing) {
      proto_errors.fetch_add(1, std::memory_order_relaxed);
      c->out += "err protocol: " + c->in.error() + "\n";
      c->stop_parsing = true;  // answer what was already submitted, close
    }
    UpdateInterest(c);
    FlushOut(c);  // flushes any error line; MaybeFinish closes when drained
  }

  void OnReadable(Conn* c) {
    char buf[64 * 1024];
    for (;;) {
      ssize_t n = ::read(c->fd, buf, sizeof buf);
      if (n > 0) {
        bytes_in.fetch_add(static_cast<uint64_t>(n),
                           std::memory_order_relaxed);
        c->last_active = Clock::now();
        c->in.Feed(buf, static_cast<size_t>(n));
        if (static_cast<size_t>(n) < sizeof buf) break;
      } else if (n == 0) {
        // Peer EOF: a final line without '\n' still gets parsed and
        // answered (FlushEof), then the connection drains and closes.
        c->in.FlushEof();
        c->peer_eof = true;
        break;
      } else {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        Destroy(c);  // ECONNRESET and friends
        return;
      }
    }
    ProcessParsed(c);  // may destroy c
  }

  void FlushOut(Conn* c) {
    while (!c->out.empty()) {
      ssize_t n = ::send(c->fd, c->out.data(), c->out.size(), MSG_NOSIGNAL);
      if (n > 0) {
        bytes_out.fetch_add(static_cast<uint64_t>(n),
                            std::memory_order_relaxed);
        c->out.erase(0, static_cast<size_t>(n));
        // Write progress counts as activity: a peer that keeps reading
        // (however slowly) stays alive, one that stopped reading lets
        // last_active age until the idle reaper frees its buffer.
        c->last_active = Clock::now();
      } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      } else if (n < 0 && errno == EINTR) {
        continue;
      } else {
        Destroy(c);
        return;
      }
    }
    bool want = !c->out.empty();
    if (want != c->want_write) {
      c->want_write = want;
      UpdateInterest(c);
    }
    MaybeFinish(c);
  }

  void DrainCompletions() {
    std::vector<std::pair<uint64_t, std::string>> batch;
    {
      std::lock_guard<std::mutex> lock(comp_mu);
      batch.swap(completions);
    }
    // Two passes: append every response to its connection's write buffer
    // first, then write each touched connection once — one send(2) per
    // connection per batch instead of per response.
    std::vector<uint64_t> touched;
    for (auto& [conn_id, bytes] : batch) {
      auto it = by_id.find(conn_id);
      if (it == by_id.end()) {
        dropped.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      Conn* c = it->second;
      ++c->completed;
      c->last_active = Clock::now();
      c->out += bytes;
      if (!c->flush_pending) {
        c->flush_pending = true;
        touched.push_back(conn_id);
      }
    }
    for (uint64_t conn_id : touched) {
      auto it = by_id.find(conn_id);
      if (it == by_id.end()) continue;
      Conn* c = it->second;
      c->flush_pending = false;
      // Flow control: resume reading once the backlog has half-drained.
      if (c->read_paused &&
          sched->PendingFor(conn_id) <= opts.max_pipelined / 2) {
        c->read_paused = false;
        ProcessParsed(c);  // re-arms interest, flushes, may destroy c
      } else {
        FlushOut(c);  // may destroy c
      }
    }
  }

  void DrainWakePipe() {
    char buf[256];
    while (::read(wake_r, buf, sizeof buf) > 0) {
    }
  }

  void CloseIdle() {
    if (opts.idle_timeout_ms <= 0) return;
    auto now = Clock::now();
    std::vector<Conn*> victims;
    for (auto& [fd, conn] : conns) {
      // Waiting on our own engine work is not idleness; waiting on a peer
      // that neither sends requests nor drains responses is — including a
      // stalled reader whose write buffer would otherwise pin memory
      // forever (FlushOut refreshes last_active on any write progress).
      bool quiescent = conn->completed == conn->submitted;
      if (quiescent &&
          now - conn->last_active >=
              std::chrono::milliseconds(opts.idle_timeout_ms)) {
        victims.push_back(conn.get());
      }
    }
    for (Conn* c : victims) {
      idle_closed.fetch_add(1, std::memory_order_relaxed);
      Destroy(c);
    }
  }

  int NextTimeoutMs() const {
    int timeout = 60000;
    if (draining) timeout = 50;
    if (opts.idle_timeout_ms > 0 && !conns.empty()) {
      auto now = Clock::now();
      for (const auto& [fd, conn] : conns) {
        auto deadline = conn->last_active +
                        std::chrono::milliseconds(opts.idle_timeout_ms);
        int ms = static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                  now)
                .count());
        timeout = std::min(timeout, std::max(ms, 0) + 10);
      }
    }
    return timeout;
  }

  void BeginDrain() {
    if (draining) return;
    draining = true;
    drain_deadline = Clock::now() +
                     std::chrono::milliseconds(
                         std::max(0, opts.drain_timeout_ms));
    if (listen_fd >= 0) {
      poller->Del(listen_fd);
      ::close(listen_fd);
      listen_fd = -1;
    }
    // Stop reading everywhere; unparsed bytes are discarded, everything
    // already submitted is answered and flushed.
    std::vector<Conn*> all;
    all.reserve(conns.size());
    for (auto& [fd, conn] : conns) all.push_back(conn.get());
    for (Conn* c : all) {
      c->stop_parsing = true;
      UpdateInterest(c);
      MaybeFinish(c);  // quiescent connections close right away
    }
  }

  NetServer* owner = nullptr;  // for the stats hook
};

NetServer::NetServer(ClusteringEngine& engine, NetServerOptions opts)
    : impl_(std::make_unique<Impl>(
          std::make_unique<EngineSessionFactory>(engine), nullptr,
          std::move(opts))) {
  impl_->owner = this;
}

NetServer::NetServer(SessionFactory& factory, NetServerOptions opts)
    : impl_(std::make_unique<Impl>(nullptr, &factory, std::move(opts))) {
  impl_->owner = this;
}

NetServer::~NetServer() {
  // Contract: Run() has returned (or Start was never called); the
  // scheduler is stopped in Run's epilogue, and Impl's destructor closes
  // any remaining fds.
  if (impl_->sched) impl_->sched->Stop();
}

std::string NetServer::Start() {
  Impl& im = *impl_;
  im.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (im.listen_fd < 0) return "socket: " + std::string(strerror(errno));
  int one = 1;
  ::setsockopt(im.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(im.opts.port);
  if (::inet_pton(AF_INET, im.opts.bind_addr.c_str(), &addr.sin_addr) != 1) {
    return "bad bind address: " + im.opts.bind_addr;
  }
  if (::bind(im.listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0) {
    return "bind " + im.opts.bind_addr + ":" +
           std::to_string(im.opts.port) + ": " + strerror(errno);
  }
  if (::listen(im.listen_fd, SOMAXCONN) != 0) {
    return "listen: " + std::string(strerror(errno));
  }
  socklen_t len = sizeof addr;
  ::getsockname(im.listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(im.listen_fd);

  im.spare_fd = ::open("/dev/null", O_RDONLY);

  int pipefd[2];
  if (::pipe(pipefd) != 0) return "pipe: " + std::string(strerror(errno));
  im.wake_r = pipefd[0];
  im.wake_w = pipefd[1];
  SetNonBlocking(im.wake_r);
  SetNonBlocking(im.wake_w);

  im.poller = Poller::Create(im.opts.use_poll);
  im.poller->Add(im.listen_fd, /*readable=*/true, /*writable=*/false);
  im.poller->Add(im.wake_r, /*readable=*/true, /*writable=*/false);

  QueryScheduler::Options sopts;
  sopts.workers = im.opts.workers;
  sopts.max_queued = im.opts.max_queued;
  sopts.slowlog = &im.obs.slowlog;
  Impl* imp = impl_.get();
  im.sched = std::make_unique<QueryScheduler>(
      sopts, [imp](uint64_t conn_id, uint64_t /*seq*/, std::string bytes,
                   bool /*shed*/) {
        // Coalesced wake-up: one pipe write per queue-empty→non-empty
        // transition, not per completion — under pipelined load the event
        // loop drains whole batches per wake (measurably: this and the
        // batched flush below are what push the 32-connection loopback
        // throughput past 10x a strict request/response client).
        bool wake;
        {
          std::lock_guard<std::mutex> lock(imp->comp_mu);
          wake = imp->completions.empty();
          imp->completions.emplace_back(conn_id, std::move(bytes));
        }
        if (wake) imp->WakeLoop();
      });

  // Observability wiring: threshold + tracer per options, the engine's
  // build profiler, and the metrics sources (all close over members of
  // Impl / the engine, which outlive every scrape).
  im.obs.slowlog.set_threshold_us(im.opts.slow_query_us);
  if (im.opts.trace) obs::Tracer::Get().Enable();
  if (ClusteringEngine* eng = im.factory.engine()) {
    eng->set_slowlog(&im.obs.slowlog);
    obs::RegisterEngineMetrics(im.obs.metrics, *eng);
  }
  obs::RegisterServerMetrics(im.obs.metrics, *this, &im.sched->latency(),
                             &im.verbs);
  obs::RegisterAlgorithmMetrics(im.obs.metrics);
  obs::RegisterObsMetrics(im.obs.metrics, im.obs.slowlog);
  im.factory.RegisterMetrics(im.obs);

  if (im.opts.install_signal_handlers) {
    g_signal_wake_fd.store(im.wake_w, std::memory_order_relaxed);
    struct sigaction sa{};
    sa.sa_handler = OnStopSignal;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
  }
  return "";
}

void NetServer::Run() {
  Impl& im = *impl_;
  std::vector<PollerEvent> events;
  for (;;) {
    events.clear();
    im.poller->Wait(im.NextTimeoutMs(), &events);

    if (im.stop_requested.load(std::memory_order_relaxed) ||
        (im.opts.install_signal_handlers && g_signal_stop)) {
      im.BeginDrain();
    }

    // Accepts first, connection I/O second: a fd freed by a Destroy in
    // the second pass can then only be reused by an accept in the *next*
    // iteration, so a stale event in this batch can never be misrouted to
    // a different connection.
    for (const PollerEvent& ev : events) {
      if (ev.fd == im.listen_fd && im.listen_fd >= 0 && ev.readable) {
        im.Accept();
      } else if (ev.fd == im.wake_r) {
        im.DrainWakePipe();
      }
    }
    for (const PollerEvent& ev : events) {
      if (ev.fd == im.wake_r ||
          (ev.fd == im.listen_fd && im.listen_fd >= 0)) {
        continue;
      }
      auto it = im.conns.find(ev.fd);
      if (it == im.conns.end()) continue;
      Impl::Conn* c = it->second.get();
      if (ev.error && !ev.readable && !ev.writable) {
        im.Destroy(c);
        continue;
      }
      if (ev.readable) {
        im.OnReadable(c);
        if (im.conns.count(ev.fd) == 0) continue;
      }
      if (ev.writable) im.FlushOut(c);
    }

    im.DrainCompletions();
    im.CloseIdle();

    if (im.draining) {
      // Finished connections close themselves in MaybeFinish; force the
      // stragglers at the deadline.
      if (im.conns.empty()) break;
      if (Clock::now() >= im.drain_deadline) {
        std::vector<Impl::Conn*> rest;
        for (auto& [fd, conn] : im.conns) rest.push_back(conn.get());
        for (Impl::Conn* c : rest) im.Destroy(c);
        break;
      }
    }
  }
  // A signal arriving from here on must not write into wake_w — the fd
  // is about to be closed and its number reused (the handler stays
  // installed but no-ops on -1).
  if (im.opts.install_signal_handlers) {
    g_signal_wake_fd.store(-1, std::memory_order_relaxed);
  }
  // Every connection is gone, so no completion can matter anymore; stop
  // the workers (any in-flight job finishes first inside Stop()).
  im.sched->Stop();
  {
    std::lock_guard<std::mutex> lock(im.comp_mu);
    im.dropped.fetch_add(im.completions.size(), std::memory_order_relaxed);
    im.completions.clear();
  }
}

void NetServer::Shutdown() {
  impl_->stop_requested.store(true, std::memory_order_relaxed);
  impl_->WakeLoop();
}

obs::Observability& NetServer::observability() { return impl_->obs; }

const obs::VerbCounters& NetServer::verb_counters() const {
  return impl_->verbs;
}

ServerStatsSnapshot NetServer::Stats() const {
  const Impl& im = *impl_;
  ServerStatsSnapshot s;
  s.connections_now = im.conns_now.load(std::memory_order_relaxed);
  s.connections_total = im.conns_total.load(std::memory_order_relaxed);
  s.dropped = im.dropped.load(std::memory_order_relaxed);
  s.protocol_errors = im.proto_errors.load(std::memory_order_relaxed);
  s.idle_closed = im.idle_closed.load(std::memory_order_relaxed);
  s.bytes_in = im.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = im.bytes_out.load(std::memory_order_relaxed);
  s.inline_hits = im.inline_served.load(std::memory_order_relaxed);
  if (im.sched) {
    s.served = im.sched->served() + s.inline_hits;
    s.shed = im.sched->shed();
    s.queued_now = im.sched->queued_now();
    s.inflight_now = im.sched->inflight_now();
    s.p50_us = im.sched->latency().QuantileUs(0.50);
    s.p99_us = im.sched->latency().QuantileUs(0.99);
  }
  return s;
}

}  // namespace net
}  // namespace parhc
