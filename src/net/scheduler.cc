#include "net/scheduler.h"

#include <algorithm>
#include <utility>

namespace parhc {
namespace net {

QueryScheduler::QueryScheduler(const Options& opts, Completion completion)
    : opts_(opts), completion_(std::move(completion)) {
  int n = std::max(1, opts_.workers);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryScheduler::~QueryScheduler() { Stop(); }

size_t QueryScheduler::Submit(uint64_t conn_id, std::string busy_reply,
                              std::function<std::string()> work,
                              RequestTag tag) {
  std::lock_guard<std::mutex> lock(mu_);
  ConnQueue& cq = conns_[conn_id];
  if (cq.closed) return 0;
  Item item;
  item.seq = cq.next_seq++;
  item.shed = queued_live_ >= opts_.max_queued;
  item.busy_reply = std::move(busy_reply);
  item.work = std::move(work);
  item.enqueued = std::chrono::steady_clock::now();
  item.tag = std::move(tag);
  if (!item.shed) ++queued_live_;
  ++queued_total_;
  cq.q.push_back(std::move(item));
  if (!cq.in_flight && cq.q.size() == 1) {
    ready_.push_back(conn_id);
    work_cv_.notify_one();
  }
  return cq.q.size() + (cq.in_flight ? 1 : 0);
}

size_t QueryScheduler::PendingFor(uint64_t conn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return 0;
  return it->second.q.size() + (it->second.in_flight ? 1 : 0);
}

void QueryScheduler::CloseConn(uint64_t conn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ConnQueue& cq = it->second;
  for (const Item& item : cq.q) {
    if (!item.shed) --queued_live_;
  }
  queued_total_ -= cq.q.size();
  cq.q.clear();
  if (cq.in_flight) {
    cq.closed = true;  // worker erases the entry when the job returns
  } else {
    conns_.erase(it);
  }
  drain_cv_.notify_all();
}

void QueryScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock,
                 [this] { return queued_total_ == 0 && inflight_ == 0; });
}

void QueryScheduler::Stop() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

size_t QueryScheduler::queued_now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_total_;
}

size_t QueryScheduler::inflight_now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

bool QueryScheduler::NextReady(std::unique_lock<std::mutex>& lock,
                               uint64_t* conn_id) {
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
    if (ready_.empty()) return false;  // stopping_ and nothing to run
    *conn_id = ready_.front();
    ready_.pop_front();
    auto it = conns_.find(*conn_id);
    if (it == conns_.end() || it->second.q.empty() || it->second.in_flight) {
      continue;  // closed or raced; stale ready entry
    }
    return true;
  }
}

void QueryScheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t conn_id;
  while (NextReady(lock, &conn_id)) {
    ConnQueue& cq = conns_[conn_id];
    Item item = std::move(cq.q.front());
    cq.q.pop_front();
    cq.in_flight = true;
    if (!item.shed) --queued_live_;
    --queued_total_;
    ++inflight_;
    lock.unlock();

    std::string bytes;
    std::chrono::steady_clock::time_point started;
    if (item.shed) {
      bytes = std::move(item.busy_reply);
    } else {
      // Install the request's trace id for the work's duration: every span
      // below (executor, builds, algorithm phases) inherits it.
      obs::TraceContext trace_ctx(item.tag.trace_id);
      started = std::chrono::steady_clock::now();
      bytes = item.work();
    }
    auto now = std::chrono::steady_clock::now();
    uint64_t total_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                              item.enqueued)
            .count());
    latency_.Record(total_us);
    if (item.shed) {
      shed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      served_.fetch_add(1, std::memory_order_relaxed);
      if (obs::Tracer::Get().enabled()) {
        // Emit the queue-wait and whole-request spans from the timestamps
        // the latency measurement already took (no extra clock reads).
        uint64_t enq_ns = obs::ToTraceNs(item.enqueued);
        obs::Tracer& tracer = obs::Tracer::Get();
        tracer.RecordSpan("queue", "net", item.tag.trace_id, enq_ns,
                          obs::ToTraceNs(started));
        tracer.RecordSpan(
            obs::VerbCounters::kRequestSpanNames[item.tag.verb], "net",
            item.tag.trace_id, enq_ns, obs::ToTraceNs(now));
      }
      obs::SlowLog* log = opts_.slowlog;
      if (log != nullptr && total_us >= log->threshold_us()) {
        obs::SlowLogRecord rec;
        rec.verb = obs::VerbCounters::kVerbs[item.tag.verb];
        rec.dataset = item.tag.dataset;
        rec.queue_us = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                started - item.enqueued)
                .count());
        rec.build_us = total_us - rec.queue_us;
        rec.total_us = total_us;
        rec.trace_id = item.tag.trace_id;
        log->RecordQuery(std::move(rec));
      }
    }
    // Deliver outside the lock: the completion may call back into
    // PendingFor or enqueue writes on the event loop.
    completion_(conn_id, item.seq, std::move(bytes), item.shed);

    lock.lock();
    auto it = conns_.find(conn_id);
    if (it != conns_.end()) {
      it->second.in_flight = false;
      if (it->second.closed && it->second.q.empty()) {
        conns_.erase(it);
      } else if (!it->second.q.empty()) {
        ready_.push_back(conn_id);  // back of the line: round-robin
        work_cv_.notify_one();
      }
    }
    --inflight_;
    drain_cv_.notify_all();
  }
}

}  // namespace net
}  // namespace parhc
