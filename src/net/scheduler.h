// Fair bounded work-queue scheduler between the TCP event loop and the
// clustering engine.
//
// Design:
//  * Per connection, a FIFO queue of parsed requests with **at most one
//    request of a connection running at a time** — responses therefore
//    complete in request order with no reorder buffer, and one client
//    pipelining thousands of requests cannot occupy more than one worker.
//  * A round-robin ready list of connections: when a connection's
//    in-flight request finishes (or its first request arrives) it goes to
//    the *back* of the ready list, so N active connections share the
//    worker pool evenly regardless of their queue depths.
//  * A global bound (`max_queued`) on requests waiting across all
//    connections. A request arriving past the bound is *shed*: it stays
//    in its connection's queue (so the `err busy` reply is delivered in
//    request order like any other response) but is marked to skip
//    execution, costs no engine work, and does not count against the
//    bound. The TCP server layers per-connection flow control on top
//    (it stops reading a connection's socket past `max_pipelined`
//    unparsed requests), so shedding only triggers under genuine
//    many-connection overload.
//  * Workers execute requests against the (thread-safe) ClusteringEngine;
//    reads on warm datasets run concurrently under the engine's
//    readers-writer model while builds and per-dataset mutations
//    serialize on the engine's build mutex.
//
// Completions are delivered by invoking the `Completion` callback on the
// worker thread that ran the request; the TCP server's callback posts the
// bytes to its event loop, and tests collect them directly.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/stats.h"
#include "obs/slowlog.h"
#include "obs/trace.h"
#include "obs/verb_counters.h"

namespace parhc {
namespace net {

/// What the front-end knows about a request when it submits it: enough to
/// label the request's trace spans (`request:<verb>`, `queue`) and its
/// slow-query record, and the trace id workers install before running the
/// work so every span below inherits it.
struct RequestTag {
  int verb = obs::VerbCounters::kOther;  ///< VerbCounters::IndexOf result
  std::string dataset;                   ///< "" when the verb has none
  uint64_t trace_id = 0;                 ///< 0 = tracing off at parse time
};

class QueryScheduler {
 public:
  struct Options {
    int workers = 4;
    size_t max_queued = 256;  ///< global waiting-request bound (load-shed)
    /// When set, workers append slow-query records for requests whose
    /// total latency crosses the log's threshold. Not owned.
    obs::SlowLog* slowlog = nullptr;
  };

  /// Called once per request, in per-connection request order, on a worker
  /// thread. `bytes` is the response to deliver; `shed` marks a load-shed
  /// busy reply.
  using Completion = std::function<void(uint64_t conn_id, uint64_t seq,
                                       std::string bytes, bool shed)>;

  QueryScheduler(const Options& opts, Completion completion);
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Enqueues one request for `conn_id`. `work` produces the response
  /// bytes; `busy_reply` is delivered instead if the global bound sheds
  /// this request. `tag` labels the request's trace spans and slow-query
  /// record (the default tag is fine for untagged callers — spans land on
  /// "request:other" with no dataset). Never blocks. Returns the
  /// connection's pending count (queued + in flight) after the enqueue —
  /// the flow-control signal, returned here so the hot path pays no second
  /// lock via PendingFor.
  size_t Submit(uint64_t conn_id, std::string busy_reply,
                std::function<std::string()> work, RequestTag tag = {});

  /// Requests of `conn_id` still queued or running (the server's
  /// per-connection flow-control signal).
  size_t PendingFor(uint64_t conn_id) const;

  /// Drops every queued (not yet running) request of a closed connection;
  /// its in-flight request, if any, still completes (the server drops the
  /// orphaned response).
  void CloseConn(uint64_t conn_id);

  /// Blocks until every queued and in-flight request has completed.
  /// Callers must stop Submitting first (graceful-drain shutdown).
  void Drain();

  /// Drain, then stop and join the workers. Idempotent; the destructor
  /// calls it.
  void Stop();

  // Cumulative/state counters (all safe to read concurrently).
  uint64_t served() const { return served_.load(std::memory_order_relaxed); }
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  size_t queued_now() const;
  size_t inflight_now() const;
  const LatencyHistogram& latency() const { return latency_; }
  /// Folds an externally measured request latency (the server's inline
  /// cache-hit path) into the same histogram the p50/p99 stats report.
  void RecordLatency(uint64_t us) { latency_.Record(us); }

 private:
  struct Item {
    uint64_t seq;
    bool shed;
    std::string busy_reply;
    std::function<std::string()> work;
    std::chrono::steady_clock::time_point enqueued;
    RequestTag tag;
  };

  struct ConnQueue {
    std::deque<Item> q;
    bool in_flight = false;
    bool closed = false;
    uint64_t next_seq = 0;
  };

  void WorkerLoop();
  /// Pops the next runnable connection id; returns false when stopping
  /// and no work remains. Called under mu_.
  bool NextReady(std::unique_lock<std::mutex>& lock, uint64_t* conn_id);

  const Options opts_;
  const Completion completion_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers wait for ready conns
  std::condition_variable drain_cv_;  ///< Drain waits for quiescence
  std::unordered_map<uint64_t, ConnQueue> conns_;
  std::deque<uint64_t> ready_;  ///< conns with work and nothing in flight
  size_t queued_live_ = 0;      ///< non-shed queued items (the bound)
  size_t queued_total_ = 0;     ///< all queued items incl. shed
  size_t inflight_ = 0;
  bool stopping_ = false;

  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> shed_{0};
  LatencyHistogram latency_;

  std::vector<std::thread> workers_;
};

}  // namespace net
}  // namespace parhc
