// Readiness-notification backend for the TCP server: epoll on Linux, with
// a portable poll(2) fallback (also selectable at runtime to test the
// fallback path on Linux itself).
//
// Level-triggered semantics on both backends: Wait reports an fd as long
// as it stays readable/writable, so the event loop never needs to drain
// sockets to EAGAIN before re-arming. Interest is (readable, writable)
// per fd; error/hangup conditions are always reported.
#pragma once

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <memory>
#include <unordered_map>
#include <vector>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

namespace parhc {
namespace net {

struct PollerEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;  ///< EPOLLERR/EPOLLHUP (POLLERR/POLLHUP/POLLNVAL)
};

class Poller {
 public:
  virtual ~Poller() = default;
  virtual void Add(int fd, bool readable, bool writable) = 0;
  virtual void Mod(int fd, bool readable, bool writable) = 0;
  virtual void Del(int fd) = 0;
  /// Blocks up to timeout_ms (-1 = forever) and appends ready fds to
  /// *events. Returns the number of ready fds (0 on timeout); EINTR is
  /// treated as a zero-event wake-up.
  virtual int Wait(int timeout_ms, std::vector<PollerEvent>* events) = 0;

  /// Builds the platform poller; force_poll selects the poll(2) backend
  /// even where epoll exists.
  static std::unique_ptr<Poller> Create(bool force_poll);
};

/// poll(2) backend: the interest set lives in a map and is re-marshalled
/// into a pollfd array per Wait — O(conns) per wait, fine for the
/// hundreds-of-connections scale this server targets on non-Linux hosts.
class PollPoller final : public Poller {
 public:
  void Add(int fd, bool readable, bool writable) override {
    interest_[fd] = Events(readable, writable);
  }
  void Mod(int fd, bool readable, bool writable) override {
    interest_[fd] = Events(readable, writable);
  }
  void Del(int fd) override { interest_.erase(fd); }

  int Wait(int timeout_ms, std::vector<PollerEvent>* events) override {
    fds_.clear();
    for (const auto& [fd, ev] : interest_) {
      fds_.push_back({fd, ev, 0});
    }
    int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n <= 0) return 0;  // timeout or EINTR
    int out = 0;
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      PollerEvent e;
      e.fd = p.fd;
      e.readable = (p.revents & POLLIN) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      events->push_back(e);
      ++out;
    }
    return out;
  }

 private:
  static short Events(bool readable, bool writable) {
    return static_cast<short>((readable ? POLLIN : 0) |
                              (writable ? POLLOUT : 0));
  }

  std::unordered_map<int, short> interest_;
  std::vector<pollfd> fds_;
};

#if defined(__linux__)
class EpollPoller final : public Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(0)) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  bool valid() const { return epfd_ >= 0; }

  void Add(int fd, bool readable, bool writable) override {
    epoll_event ev = Event(fd, readable, writable);
    ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
  }
  void Mod(int fd, bool readable, bool writable) override {
    epoll_event ev = Event(fd, readable, writable);
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
  }
  void Del(int fd) override {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  int Wait(int timeout_ms, std::vector<PollerEvent>* events) override {
    epoll_event evs[128];
    int n = ::epoll_wait(epfd_, evs, 128, timeout_ms);
    if (n <= 0) return 0;  // timeout or EINTR
    for (int i = 0; i < n; ++i) {
      PollerEvent e;
      e.fd = evs[i].data.fd;
      e.readable = (evs[i].events & EPOLLIN) != 0;
      e.writable = (evs[i].events & EPOLLOUT) != 0;
      e.error = (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      events->push_back(e);
    }
    return n;
  }

 private:
  static epoll_event Event(int fd, bool readable, bool writable) {
    epoll_event ev{};
    ev.events = (readable ? EPOLLIN : 0u) | (writable ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    return ev;
  }

  int epfd_;
};
#endif  // __linux__

inline std::unique_ptr<Poller> Poller::Create(bool force_poll) {
#if defined(__linux__)
  if (!force_poll) {
    auto ep = std::make_unique<EpollPoller>();
    if (ep->valid()) return ep;
  }
#else
  (void)force_poll;
#endif
  return std::make_unique<PollPoller>();
}

}  // namespace net
}  // namespace parhc
