// Wire framing for the serving layer: text lines + binary frames.
//
// The TCP server and the stdin REPL speak the same request language (see
// protocol.h). On the wire a request stream is a mix of two framings:
//
//  * Text: one request per line, terminated by '\n' (a trailing '\r' is
//    stripped, so CRLF clients work). The response to a text request is
//    one or more complete '\n'-terminated lines — byte-identical to what
//    the REPL prints for the same command.
//  * Binary: a length-prefixed frame for bulk point/label payloads, which
//    would be wasteful to shuttle as decimal text. A frame is
//
//        byte 0      magic 0x01 (SOH — never starts a text verb)
//        byte 1      opcode
//        bytes 2..5  u32 little-endian payload length
//        bytes 6..   payload
//
//    Frames and text lines may be freely interleaved on one connection;
//    the first byte of each message disambiguates. Payloads are capped at
//    kMaxFramePayload (64 MiB) and text lines at kMaxLineBytes (1 MiB);
//    violating either is a connection-fatal protocol error (the splitter
//    latches an error and the server closes the connection after sending
//    one final "err protocol ..." line).
//
// FrameSplitter is the incremental decoder both front-ends share: feed it
// raw bytes as they arrive (in arbitrary split-write chunks) and pull
// complete messages out. FlushEof() handles the stream's end: a final
// line *without* a trailing '\n' is emitted as a normal message rather
// than dropped, so "echo -n 'emst d' | parhc_server" still answers.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace parhc {
namespace net {

inline constexpr uint8_t kFrameMagic = 0x01;
inline constexpr size_t kFrameHeaderBytes = 6;  // magic + opcode + u32 len
inline constexpr size_t kMaxFramePayload = 64u << 20;
inline constexpr size_t kMaxLineBytes = 1u << 20;

/// Binary opcodes. Client-to-server requests live below 0x80; server
/// replies at 0x80 and above.
enum FrameOpcode : uint8_t {
  /// Bulk point insert into a batch-dynamic dataset. Payload:
  ///   u16 name_len, name bytes, u16 dim, u32 count, count*dim f64 coords
  /// (all little-endian). Answered with the same text line the text
  /// `insert` verb prints.
  kOpInsertPoints = 0x10,
  /// Fetch a flat labeling as a binary payload. Payload:
  ///   u16 name_len, name bytes, u8 kind (0 = DBSCAN* at (minPts, eps),
  ///   1 = stable clusters at (minPts, minClusterSize)), u32 min_pts,
  ///   f64 eps (kind 0) | u64 min_cluster_size (kind 1).
  /// Answered with a kOpLabelsReply frame on success, else a text err
  /// line.
  kOpGetLabels = 0x11,
  /// Partial-artifact export for the router tier (src/cluster/): the
  /// dataset's live points. Payload: u16 name_len, name bytes. Answered
  /// with kOpPointsReply.
  kOpExportPoints = 0x12,
  /// Per-worker Euclidean MST edges (the distance-decomposition merge
  /// input). Payload: u16 name_len, name bytes. Answered with
  /// kOpEdgesReply; edge endpoints are the worker's gids.
  kOpExportMst = 0x13,
  /// kNN rows for arbitrary query points against a dataset's live points.
  /// Payload: u16 name_len, name bytes, u32 k, u16 dim, u32 count,
  /// count*dim f64 coords. Answered with kOpKnnReply.
  kOpKnnQuery = 0x14,
  /// MR-MST under externally supplied (global) core distances. Payload:
  /// u16 name_len, name bytes, u32 count (= live points), count f64 core
  /// distances in ascending-gid order. Answered with kOpEdgesReply; edge
  /// endpoints are the worker's gids.
  kOpShardMrMst = 0x15,
  /// Labels reply. Payload: u32 count, count * i32 labels in dense point
  /// order (for dynamic datasets dense index i is the i-th live global id
  /// in ascending order; -1 = noise).
  kOpLabelsReply = 0x91,
  /// Points reply. Payload: u16 dim, u32 count, count u32 gids
  /// (ascending), count*dim f64 coords in the same order.
  kOpPointsReply = 0x92,
  /// Edge-list reply. Payload: u32 count, count * {u32 u, u32 v, f64 w}
  /// with gid endpoints.
  kOpEdgesReply = 0x93,
  /// kNN reply. Payload: u32 count, u32 k, count*k f64 sorted squared
  /// distances (+inf-padded past the dataset size).
  kOpKnnReply = 0x94,
};

// ---- Little-endian scalar packing (the snapshot store already commits
// the repo to little-endian payloads; see store/format.h) ----

inline void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>(v >> 8));
}

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  PutU64(out, bits);
}

/// Bounds-checked little-endian reader over a payload. Any overrun sets
/// ok = false and every later Get returns 0.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& data) : data_(data) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }

  uint8_t GetU8() { return static_cast<uint8_t>(Raw(1)); }
  uint16_t GetU16() { return static_cast<uint16_t>(Raw(2)); }
  uint32_t GetU32() { return static_cast<uint32_t>(Raw(4)); }
  uint64_t GetU64() { return Raw(8); }
  double GetF64() {
    uint64_t bits = Raw(8);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string GetBytes(size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return {};
    }
    std::string out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

 private:
  uint64_t Raw(size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return 0;
    }
    uint64_t v = 0;
    for (size_t i = 0; i < n; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += n;
    return v;
  }

  const std::string& data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Encodes one complete binary frame (header + payload).
inline std::string EncodeFrame(uint8_t opcode, const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.push_back(static_cast<char>(kFrameMagic));
  out.push_back(static_cast<char>(opcode));
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  out += payload;
  return out;
}

/// One decoded request: either a text line (without its terminator) or a
/// binary frame (opcode + payload).
struct WireMessage {
  bool binary = false;
  std::string text;     ///< text message body
  uint8_t opcode = 0;   ///< binary only
  std::string payload;  ///< binary only
};

/// Incremental stream decoder. Not thread-safe; one per connection.
class FrameSplitter {
 public:
  /// `allow_binary` = false gives pure text-line splitting (the stdin
  /// REPL), where a 0x01 byte is just line data like any other.
  /// `max_line_bytes` is the line-length cap (a remote-peer protection);
  /// the REPL lifts it to keep the pre-refactor getline behavior of
  /// accepting arbitrarily long batch lines.
  explicit FrameSplitter(bool allow_binary = true,
                         size_t max_line_bytes = kMaxLineBytes)
      : allow_binary_(allow_binary), max_line_bytes_(max_line_bytes) {}

  /// Appends raw stream bytes.
  void Feed(const char* data, size_t n) { buf_.append(data, n); }
  void Feed(const std::string& data) { buf_ += data; }

  /// Marks end of stream: a buffered final line without '\n' becomes one
  /// last message; a buffered incomplete binary frame is a protocol
  /// error.
  void FlushEof() { eof_ = true; }

  /// Extracts the next complete message into *msg. Returns false when no
  /// complete message is buffered (or the stream is in error).
  bool Next(WireMessage* msg) {
    if (!error_.empty()) return false;
    if (pos_ == buf_.size()) {
      Compact();
      return false;
    }
    bool ok = (allow_binary_ &&
               static_cast<uint8_t>(buf_[pos_]) == kFrameMagic)
                  ? NextFrame(msg)
                  : NextLine(msg);
    // Consumed bytes are tracked by pos_ and reclaimed lazily: erasing the
    // buffer front per message would memmove the whole remainder each
    // time (O(bytes^2) over a big pipelined read batch).
    if (pos_ >= kCompactBytes || pos_ == buf_.size()) Compact();
    return ok;
  }

  /// Non-empty once the stream has violated the framing rules; the
  /// connection should answer with one err line and close.
  const std::string& error() const { return error_; }

  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  static constexpr size_t kCompactBytes = 64 * 1024;

  void Compact() {
    if (pos_ == 0) return;
    buf_.erase(0, pos_);
    pos_ = 0;
  }

  size_t avail() const { return buf_.size() - pos_; }

  bool NextLine(WireMessage* msg) {
    size_t nl = buf_.find('\n', pos_);
    if (nl == std::string::npos) {
      if (avail() > max_line_bytes_) {
        error_ =
            "line exceeds " + std::to_string(max_line_bytes_) + " bytes";
        return false;
      }
      if (!eof_) return false;
      nl = buf_.size();  // final unterminated line
    } else if (nl - pos_ > max_line_bytes_) {
      error_ =
          "line exceeds " + std::to_string(max_line_bytes_) + " bytes";
      return false;
    }
    msg->binary = false;
    msg->opcode = 0;
    msg->payload.clear();
    msg->text.assign(buf_, pos_, nl - pos_);
    if (!msg->text.empty() && msg->text.back() == '\r') msg->text.pop_back();
    pos_ = (nl == buf_.size()) ? nl : nl + 1;
    return true;
  }

  bool NextFrame(WireMessage* msg) {
    if (avail() < kFrameHeaderBytes) {
      if (eof_) error_ = "truncated frame header at end of stream";
      return false;
    }
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(static_cast<uint8_t>(buf_[pos_ + 2 + i]))
             << (8 * i);
    }
    if (len > kMaxFramePayload) {
      error_ = "frame payload " + std::to_string(len) + " exceeds " +
               std::to_string(kMaxFramePayload) + " bytes";
      return false;
    }
    if (avail() < kFrameHeaderBytes + len) {
      if (eof_) error_ = "truncated frame payload at end of stream";
      return false;
    }
    msg->binary = true;
    msg->text.clear();
    msg->opcode = static_cast<uint8_t>(buf_[pos_ + 1]);
    msg->payload.assign(buf_, pos_ + kFrameHeaderBytes, len);
    pos_ += kFrameHeaderBytes + len;
    return true;
  }

  std::string buf_;
  size_t pos_ = 0;  ///< consumed prefix of buf_
  std::string error_;
  bool allow_binary_;
  size_t max_line_bytes_;
  bool eof_ = false;
};

}  // namespace net
}  // namespace parhc
