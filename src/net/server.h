// Non-blocking TCP front-end over the ClusteringEngine.
//
// Architecture (single event-loop thread + worker pool):
//
//   clients --> accept --> per-conn read buffer --> FrameSplitter
//                                |                      | parsed requests
//                                |                      v
//                                |              QueryScheduler
//                                |      (bounded, fair, per-conn FIFO,
//                                |       one in-flight per connection)
//                                |                      | worker threads
//                                |                      v
//                                |              ProtocolSession --> engine
//                                |                      | response bytes
//                                v                      v
//                           per-conn write buffer <-- completion queue
//                                |                      (wake pipe)
//                                v
//                             flush / EPOLLOUT
//
// The event-loop thread owns every connection object and all socket I/O;
// scheduler workers never touch a socket — they post (conn_id, bytes) to
// the completion queue and write one byte to the wake pipe. Responses to
// one connection are delivered in request order (the scheduler runs at
// most one of its requests at a time).
//
// Overload behavior, outermost first:
//  1. Per-connection pipelining bound (`max_pipelined`): past it the
//     server stops parsing (and reading) that connection until its queue
//     drains below half — the kernel socket buffer then fills and TCP
//     flow control pushes back on the client. No requests are lost.
//  2. Global scheduler bound (`max_queued`): across connections, excess
//     requests are answered `err busy <verb>` in order (load-shed)
//     without touching the engine.
//
// Lifecycle: idle connections (no request, no response activity for
// `idle_timeout_ms`) are closed. On Shutdown() — or SIGINT/SIGTERM when
// `install_signal_handlers` — the server stops accepting and reading,
// lets queued requests finish, flushes every write buffer (bounded by
// `drain_timeout_ms`), then closes. A client half-closing its write side
// still gets answers to everything it sent, including a final line
// without '\n'.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "engine/engine.h"
#include "net/protocol.h"
#include "net/stats.h"
#include "obs/observability.h"
#include "obs/verb_counters.h"

namespace parhc {
namespace net {

/// What the server hands a SessionFactory for each accepted connection.
struct SessionContext {
  bool show_timing = true;
  const ServerStatsSource* stats_source = nullptr;  ///< the server itself
  obs::Observability* obs = nullptr;                ///< server-lifetime
};

/// Builds one SessionHandler per accepted connection, so the same event
/// loop + scheduler serves different request executors: the engine worker
/// (built-in; see the engine-reference NetServer constructor) or the
/// router tier (cluster::RouterSessionFactory). The factory must outlive
/// the server; NewSession runs on the event-loop thread.
class SessionFactory {
 public:
  virtual ~SessionFactory() = default;

  virtual std::shared_ptr<SessionHandler> NewSession(
      const SessionContext& ctx) = 0;

  /// The engine behind the sessions, when there is one: Start() points
  /// the slow-query log at it and registers its metric sources. Null for
  /// engineless tiers (the router).
  virtual ClusteringEngine* engine() { return nullptr; }

  /// Hook for extra metric sources (e.g. per-upstream counters),
  /// registered once during Start().
  virtual void RegisterMetrics(obs::Observability& obs) { (void)obs; }
};

struct NetServerOptions {
  std::string bind_addr = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = pick an ephemeral port (see NetServer::port)
  int workers = 4;
  size_t max_queued = 1024;    ///< global bound -> `err busy` load-shed
  size_t max_pipelined = 128;  ///< per-conn bound -> pause reads (TCP
                               ///< pushback)
  int idle_timeout_ms = 300000;  ///< <= 0 disables idle closing
  int drain_timeout_ms = 5000;   ///< shutdown flush deadline
  bool use_poll = false;         ///< force the poll(2) backend
  bool show_timing = true;       ///< secs= field on query responses
  bool install_signal_handlers = false;  ///< SIGINT/SIGTERM → Shutdown()
  uint64_t slow_query_us = 10000;  ///< slow-query log threshold
  bool trace = false;              ///< enable request tracing at Start()
};

class NetServer final : public ServerStatsSource {
 public:
  /// The engine must outlive the server. Serving starts at Start().
  NetServer(ClusteringEngine& engine, NetServerOptions opts);

  /// Serves sessions built by `factory` (which must outlive the server)
  /// instead of the built-in engine-backed ProtocolSession.
  NetServer(SessionFactory& factory, NetServerOptions opts);

  ~NetServer() override;

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and starts the worker pool. Returns "" on success,
  /// else an error message. port() is valid afterwards.
  std::string Start();

  /// Runs the event loop on the calling thread until Shutdown() (or a
  /// handled signal) completes the graceful drain. Call after Start().
  void Run();

  /// Initiates graceful drain from any thread (idempotent). Run()
  /// returns once the drain finishes.
  void Shutdown();

  /// The bound port (resolves option port = 0).
  uint16_t port() const { return port_; }

  /// Server counters for the `stats` verb (ServerStatsSource).
  ServerStatsSnapshot Stats() const override;

  /// The server's metrics registry + slow-query log (behind the `metrics`
  /// and `slowlog` verbs). Sources are registered during Start(); valid
  /// for the server's lifetime.
  obs::Observability& observability();

  /// Per-verb request counters (sum equals served at quiescence).
  const obs::VerbCounters& verb_counters() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace parhc
