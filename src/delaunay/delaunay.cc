#include "delaunay/delaunay.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <unordered_map>

#include "util/check.h"

namespace parhc {
namespace {

using P2 = Point<2>;

/// > 0 if (a, b, c) is counter-clockwise.
long double Orient(const P2& a, const P2& b, const P2& c) {
  long double abx = static_cast<long double>(b[0]) - a[0];
  long double aby = static_cast<long double>(b[1]) - a[1];
  long double acx = static_cast<long double>(c[0]) - a[0];
  long double acy = static_cast<long double>(c[1]) - a[1];
  return abx * acy - aby * acx;
}

/// > 0 if d lies strictly inside the circumcircle of ccw triangle (a, b, c).
long double InCircle(const P2& a, const P2& b, const P2& c, const P2& d) {
  long double adx = static_cast<long double>(a[0]) - d[0];
  long double ady = static_cast<long double>(a[1]) - d[1];
  long double bdx = static_cast<long double>(b[0]) - d[0];
  long double bdy = static_cast<long double>(b[1]) - d[1];
  long double cdx = static_cast<long double>(c[0]) - d[0];
  long double cdy = static_cast<long double>(c[1]) - d[1];
  long double ad2 = adx * adx + ady * ady;
  long double bd2 = bdx * bdx + bdy * bdy;
  long double cd2 = cdx * cdx + cdy * cdy;
  return adx * (bdy * cd2 - cdy * bd2) - ady * (bdx * cd2 - cdx * bd2) +
         ad2 * (bdx * cdy - cdx * bdy);
}

struct Tri {
  std::array<uint32_t, 3> v;    // vertices, counter-clockwise
  std::array<int32_t, 3> nbr;   // nbr[i] faces the edge opposite v[i]
  bool alive = true;
};

uint64_t EdgeKey(uint32_t u, uint32_t v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

class BowyerWatson {
 public:
  explicit BowyerWatson(const std::vector<P2>& pts) : pts_(pts), n_(pts.size()) {
    // Super-triangle comfortably containing the bounding box.
    double lo_x = pts[0][0], hi_x = pts[0][0];
    double lo_y = pts[0][1], hi_y = pts[0][1];
    for (const auto& p : pts) {
      lo_x = std::min(lo_x, p[0]);
      hi_x = std::max(hi_x, p[0]);
      lo_y = std::min(lo_y, p[1]);
      hi_y = std::max(hi_y, p[1]);
    }
    double cx = 0.5 * (lo_x + hi_x), cy = 0.5 * (lo_y + hi_y);
    double r = std::max({hi_x - lo_x, hi_y - lo_y, 1.0}) * 16.0;
    pts_.push_back(P2{{cx - 3 * r, cy - r}});
    pts_.push_back(P2{{cx + 3 * r, cy - r}});
    pts_.push_back(P2{{cx, cy + 3 * r}});
    uint32_t s0 = static_cast<uint32_t>(n_), s1 = s0 + 1, s2 = s0 + 2;
    PARHC_CHECK(Orient(pts_[s0], pts_[s1], pts_[s2]) > 0);
    tris_.push_back(Tri{{s0, s1, s2}, {-1, -1, -1}, true});
    hint_ = 0;
  }

  void InsertAll(uint64_t seed) {
    std::vector<uint32_t> order(n_);
    for (uint32_t i = 0; i < n_; ++i) order[i] = i;
    std::mt19937_64 rng(seed);
    std::shuffle(order.begin(), order.end(), rng);
    for (uint32_t id : order) Insert(id);
  }

  Triangulation Extract() const {
    Triangulation out;
    std::vector<uint64_t> keys;
    for (const Tri& t : tris_) {
      if (!t.alive) continue;
      bool all_real = t.v[0] < n_ && t.v[1] < n_ && t.v[2] < n_;
      if (all_real) out.triangles.push_back(t.v);
      for (int i = 0; i < 3; ++i) {
        uint32_t u = t.v[i], v = t.v[(i + 1) % 3];
        if (u < n_ && v < n_) keys.push_back(EdgeKey(u, v));
      }
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    out.edges.reserve(keys.size());
    for (uint64_t k : keys) {
      out.edges.push_back({static_cast<uint32_t>(k >> 32),
                           static_cast<uint32_t>(k & 0xffffffffu)});
    }
    return out;
  }

 private:
  int32_t Locate(const P2& p) const {
    int32_t t = hint_;
    PARHC_DCHECK(tris_[t].alive);
    size_t steps = 0, cap = 4 * tris_.size() + 64;
    while (steps++ < cap) {
      const Tri& tri = tris_[t];
      int32_t next = -1;
      for (int i = 0; i < 3; ++i) {
        const P2& a = pts_[tri.v[(i + 1) % 3]];
        const P2& b = pts_[tri.v[(i + 2) % 3]];
        if (Orient(a, b, p) < 0) {
          next = tri.nbr[i];
          break;
        }
      }
      if (next < 0) return t;  // inside (or on an edge of) t
      t = next;
    }
    // Fallback for (numerically) cyclic walks: exhaustive scan.
    for (size_t i = 0; i < tris_.size(); ++i) {
      const Tri& tri = tris_[i];
      if (!tri.alive) continue;
      bool inside = true;
      for (int e = 0; e < 3 && inside; ++e) {
        inside = Orient(pts_[tri.v[(e + 1) % 3]], pts_[tri.v[(e + 2) % 3]],
                        p) >= 0;
      }
      if (inside) return static_cast<int32_t>(i);
    }
    PARHC_CHECK_MSG(false, "Delaunay point location failed");
    return -1;
  }

  void Insert(uint32_t pid) {
    const P2& p = pts_[pid];
    int32_t t0 = Locate(p);
    // Conflict cavity: BFS over triangles whose circumcircle contains p.
    // Membership is tracked with a version-stamped array so each insertion
    // costs O(cavity), not O(total triangles).
    std::vector<int32_t> bad{t0};
    std::vector<int32_t> queue{t0};
    cavity_stamp_.resize(tris_.size(), 0);
    ++cavity_version_;
    auto in_cavity = [&](int32_t t) {
      return cavity_stamp_[t] == cavity_version_;
    };
    cavity_stamp_[t0] = cavity_version_;
    struct Boundary {
      uint32_t u, v;     // ccw edge of the cavity
      int32_t outer;     // triangle across the edge (-1 at the hull)
    };
    std::vector<Boundary> boundary;
    while (!queue.empty()) {
      int32_t t = queue.back();
      queue.pop_back();
      const Tri tri = tris_[t];
      for (int i = 0; i < 3; ++i) {
        int32_t nb = tri.nbr[i];
        uint32_t eu = tri.v[(i + 1) % 3], ev = tri.v[(i + 2) % 3];
        if (nb >= 0 && !in_cavity(nb)) {
          const Tri& o = tris_[nb];
          if (InCircle(pts_[o.v[0]], pts_[o.v[1]], pts_[o.v[2]], p) > 0) {
            cavity_stamp_[nb] = cavity_version_;
            bad.push_back(nb);
            queue.push_back(nb);
            continue;
          }
        }
        if (nb < 0 || !in_cavity(nb)) boundary.push_back({eu, ev, nb});
      }
    }
    for (int32_t t : bad) tris_[t].alive = false;
    // Fan re-triangulation around p; wire adjacency through an edge map.
    std::unordered_map<uint64_t, std::pair<int32_t, int>> open_edge;
    int32_t first_new = -1;
    for (const Boundary& bd : boundary) {
      int32_t id = static_cast<int32_t>(tris_.size());
      // (u, v, p) is ccw: p lies strictly on the interior side of (u, v).
      Tri nt{{bd.u, bd.v, pid}, {-1, -1, -1}, true};
      nt.nbr[2] = bd.outer;  // edge (u, v) is opposite vertex p (slot 2)
      if (bd.outer >= 0) {
        Tri& o = tris_[bd.outer];
        for (int i = 0; i < 3; ++i) {
          uint32_t ou = o.v[(i + 1) % 3], ov = o.v[(i + 2) % 3];
          if (EdgeKey(ou, ov) == EdgeKey(bd.u, bd.v)) {
            o.nbr[i] = id;
            break;
          }
        }
      }
      // Spoke edges (v, p) opposite slot 0 (vertex u) and (p, u) opposite
      // slot 1 (vertex v) pair up with neighboring fan triangles.
      for (int slot : {0, 1}) {
        uint32_t a = (slot == 0) ? bd.v : bd.u;
        uint64_t key = EdgeKey(a, pid);
        auto it = open_edge.find(key);
        if (it == open_edge.end()) {
          open_edge.emplace(key, std::make_pair(id, slot));
        } else {
          nt.nbr[slot] = it->second.first;
          tris_[it->second.first].nbr[it->second.second] = id;
          open_edge.erase(it);
        }
      }
      tris_.push_back(nt);
      cavity_stamp_.push_back(0);
      if (first_new < 0) first_new = id;
    }
    PARHC_CHECK_MSG(open_edge.empty(), "Delaunay cavity boundary not closed");
    hint_ = first_new;
  }

  std::vector<P2> pts_;
  size_t n_;
  std::vector<Tri> tris_;
  std::vector<uint32_t> cavity_stamp_;
  uint32_t cavity_version_ = 0;
  int32_t hint_ = 0;
};

}  // namespace

Triangulation DelaunayTriangulate(const std::vector<Point<2>>& pts) {
  PARHC_CHECK_MSG(pts.size() >= 2, "need at least two points");
  BowyerWatson bw(pts);
  bw.InsertAll(/*seed=*/0x5eed5eedull);
  return bw.Extract();
}

}  // namespace parhc
