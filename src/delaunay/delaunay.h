// 2D Delaunay triangulation (substrate for EMST-Delaunay, Appendix A.1).
//
// Randomized incremental Bowyer–Watson: locate the triangle containing the
// next point by a visibility walk, grow the conflict cavity by breadth-first
// search over circumcircle tests, and re-triangulate the cavity as a fan
// around the new point. Expected O(n log n) with randomized insertion order.
//
// Geometric predicates use long double arithmetic — adequate for the
// non-degenerate (random / jittered) inputs this library targets; see
// DESIGN.md for the substitution note versus exact predicates.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "geometry/point.h"

namespace parhc {

/// Result of a Delaunay triangulation.
struct Triangulation {
  /// Vertex index triples of the triangles (counter-clockwise).
  std::vector<std::array<uint32_t, 3>> triangles;
  /// Unique undirected edges (u < v).
  std::vector<std::pair<uint32_t, uint32_t>> edges;
};

/// Triangulates `pts` (which must be pairwise distinct; at least 2 points).
/// For collinear inputs the triangle list is empty but `edges` still
/// contains the hull edges needed for the MST.
Triangulation DelaunayTriangulate(const std::vector<Point<2>>& pts);

}  // namespace parhc
