// Wall-clock timers used by the benchmark harness and the phase-decomposition
// instrumentation (Figure 8 of the paper).
#pragma once

#include <chrono>
#include <string>

namespace parhc {

/// A simple wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace parhc
