// Internal invariant checking, in the style of database-engine assert macros.
//
// PARHC_CHECK is active in all build types (cheap invariants on cold paths);
// PARHC_DCHECK compiles out in NDEBUG builds (hot-path invariants).
#pragma once

#include <cstdio>
#include <cstdlib>

#define PARHC_CHECK(cond)                                                     \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "PARHC_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                       \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define PARHC_CHECK_MSG(cond, msg)                                            \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "PARHC_CHECK failed: %s (%s) at %s:%d\n", #cond,   \
                   msg, __FILE__, __LINE__);                                  \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#ifdef NDEBUG
#define PARHC_DCHECK(cond) ((void)0)
#else
#define PARHC_DCHECK(cond) PARHC_CHECK(cond)
#endif
