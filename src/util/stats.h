// Global instrumentation counters.
//
// Used to reproduce the paper's memory claims (Section 5, "MemoGFK Memory
// Usage": up to 10x fewer materialized WSPD pairs) without relying on OS
// RSS, which is noisy. Counters are atomics; Reset() between runs.
#pragma once

#include <atomic>
#include <cstdint>

namespace parhc {

/// Library-wide counters (all monotone within a run).
struct Stats {
  /// WSPD pairs actually materialized (stored in memory at once, peak).
  std::atomic<uint64_t> wspd_pairs_materialized{0};
  /// Peak simultaneously-live materialized pairs.
  std::atomic<uint64_t> wspd_pairs_peak{0};
  /// Node pairs visited during WSPD / MemoGFK tree traversals.
  std::atomic<uint64_t> wspd_pairs_visited{0};
  /// Exact BCCP / BCCP* computations performed.
  std::atomic<uint64_t> bccp_computed{0};
  /// Point-distance evaluations inside BCCP computations.
  std::atomic<uint64_t> bccp_point_distances{0};

  static Stats& Get();

  void Reset() {
    wspd_pairs_materialized.store(0);
    wspd_pairs_peak.store(0);
    wspd_pairs_visited.store(0);
    bccp_computed.store(0);
    bccp_point_distances.store(0);
  }
};

}  // namespace parhc
