// Global instrumentation counters.
//
// Used to reproduce the paper's memory claims (Section 5, "MemoGFK Memory
// Usage": up to 10x fewer materialized WSPD pairs) without relying on OS
// RSS, which is noisy.
//
// Concurrency contract: every counter is a *monotone* relaxed atomic —
// there is deliberately no Reset(). Concurrent artifact builds under the
// engine's BuildExecutor all increment the same counters, so a global
// zeroing from one bench/test would race with (and corrupt) another
// build's accounting. Scoped measurement uses StatsEpoch instead: capture
// a baseline, run, read Delta(). The metrics registry (obs/sources.h)
// exports the raw monotone values, which Prometheus-style scrapers rate()
// over.
//
// The one non-monotone field is wspd_pairs_peak, a global high-water mark
// (deltas are meaningless for a max). StatsEpoch(kResetPeak) zeroes just
// that field for callers that own the whole process — the single-threaded
// bench tables and examples — and documents the exclusivity requirement;
// the serving stack never resets anything.
#pragma once

#include <atomic>
#include <cstdint>

namespace parhc {

/// Point-in-time copy of the counters (see StatsEpoch for scoped deltas).
struct AlgoCounterSnapshot {
  uint64_t wspd_pairs_materialized = 0;
  uint64_t wspd_pairs_peak = 0;
  uint64_t wspd_pairs_visited = 0;
  uint64_t bccp_computed = 0;
  uint64_t bccp_point_distances = 0;
};

/// Library-wide counters (all monotone; wspd_pairs_peak is a high-water
/// mark).
struct Stats {
  /// WSPD pairs actually materialized (stored in memory at once, peak).
  std::atomic<uint64_t> wspd_pairs_materialized{0};
  /// Peak simultaneously-live materialized pairs (global high-water).
  std::atomic<uint64_t> wspd_pairs_peak{0};
  /// Node pairs visited during WSPD / MemoGFK tree traversals.
  std::atomic<uint64_t> wspd_pairs_visited{0};
  /// Exact BCCP / BCCP* computations performed.
  std::atomic<uint64_t> bccp_computed{0};
  /// Point-distance evaluations inside BCCP computations.
  std::atomic<uint64_t> bccp_point_distances{0};

  static Stats& Get();

  AlgoCounterSnapshot Snapshot() const {
    AlgoCounterSnapshot s;
    s.wspd_pairs_materialized =
        wspd_pairs_materialized.load(std::memory_order_relaxed);
    s.wspd_pairs_peak = wspd_pairs_peak.load(std::memory_order_relaxed);
    s.wspd_pairs_visited =
        wspd_pairs_visited.load(std::memory_order_relaxed);
    s.bccp_computed = bccp_computed.load(std::memory_order_relaxed);
    s.bccp_point_distances =
        bccp_point_distances.load(std::memory_order_relaxed);
    return s;
  }
};

/// RAII measurement epoch over the global counters: captures a baseline at
/// construction; Delta() is "what this scope's work added" for the
/// monotone counters. Safe under concurrent builds — nothing is zeroed.
///
/// wspd_pairs_peak cannot be scoped by subtraction; Delta() reports the
/// current global high-water. Callers that own the whole process (bench
/// tables, examples) pass kResetPeak to zero the mark at epoch start so
/// the reported peak is theirs alone — never do this while other builds
/// may run.
class StatsEpoch {
 public:
  enum Peak { kKeepPeak, kResetPeak };

  explicit StatsEpoch(Peak peak = kKeepPeak) {
    if (peak == kResetPeak) {
      Stats::Get().wspd_pairs_peak.store(0, std::memory_order_relaxed);
    }
    base_ = Stats::Get().Snapshot();
  }

  AlgoCounterSnapshot Delta() const {
    AlgoCounterSnapshot now = Stats::Get().Snapshot();
    AlgoCounterSnapshot d;
    d.wspd_pairs_materialized =
        now.wspd_pairs_materialized - base_.wspd_pairs_materialized;
    d.wspd_pairs_peak = now.wspd_pairs_peak;  // high-water, not a delta
    d.wspd_pairs_visited =
        now.wspd_pairs_visited - base_.wspd_pairs_visited;
    d.bccp_computed = now.bccp_computed - base_.bccp_computed;
    d.bccp_point_distances =
        now.bccp_point_distances - base_.bccp_point_distances;
    return d;
  }

 private:
  AlgoCounterSnapshot base_;
};

}  // namespace parhc
