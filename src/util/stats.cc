#include "util/stats.h"

namespace parhc {

Stats& Stats::Get() {
  static Stats stats;
  return stats;
}

}  // namespace parhc
