// Bichromatic closest pair (BCCP) and its mutual-reachability variant BCCP*
// (paper Section 2.3).
//
// BCCP(A, B) returns the closest pair of points across two k-d tree nodes.
// BCCP*(A, B) minimizes the mutual reachability distance
//   d_m(p, q) = max(d(p, q), cd(p), cd(q))
// and requires the tree to be annotated with core distances. Both use a
// pruned dual recursion: a node pair is skipped when a lower bound on its
// best achievable value is no better than the best found so far.
#pragma once

#include <cstdint>
#include <limits>

#include "spatial/kdtree.h"
#include "util/stats.h"

namespace parhc {

/// Result of a closest-pair computation. `u` and `v` are original point
/// ids; `dist` is the (mutual-reachability, for BCCP*) distance.
struct ClosestPair {
  uint32_t u = 0;
  uint32_t v = 0;
  double dist = std::numeric_limits<double>::infinity();
};

namespace internal {

template <int D>
void BccpRec(const KdTree<D>& tree, const typename KdTree<D>::Node* a,
             const typename KdTree<D>::Node* b, ClosestPair& best) {
  if (a->box.MinSquaredDistance(b->box) >= best.dist * best.dist) return;
  if (a->IsLeaf() && b->IsLeaf()) {
    for (uint32_t i = a->begin; i < a->end; ++i) {
      for (uint32_t j = b->begin; j < b->end; ++j) {
        double d = Distance(tree.point(i), tree.point(j));
        uint32_t u = tree.id(i), v = tree.id(j);
        // Deterministic tie-breaking on (dist, min id, max id).
        if (d < best.dist ||
            (d == best.dist &&
             std::minmax(u, v) < std::minmax(best.u, best.v))) {
          best = {u, v, d};
        }
      }
    }
    return;
  }
  // Split the node with the larger diameter (leaves cannot split).
  bool split_a = !a->IsLeaf() &&
                 (b->IsLeaf() || a->diameter >= b->diameter);
  const typename KdTree<D>::Node* l = split_a ? a->left : b->left;
  const typename KdTree<D>::Node* r = split_a ? a->right : b->right;
  const typename KdTree<D>::Node* other = split_a ? b : a;
  double dl = l->box.MinSquaredDistance(other->box);
  double dr = r->box.MinSquaredDistance(other->box);
  if (dr < dl) {
    std::swap(l, r);
  }
  BccpRec(tree, l, other, best);
  BccpRec(tree, r, other, best);
}

template <int D>
void BccpStarRec(const KdTree<D>& tree, const typename KdTree<D>::Node* a,
                 const typename KdTree<D>::Node* b, ClosestPair& best) {
  double lb = std::max({std::sqrt(a->box.MinSquaredDistance(b->box)),
                        a->cd_min, b->cd_min});
  if (lb >= best.dist) return;
  if (a->IsLeaf() && b->IsLeaf()) {
    for (uint32_t i = a->begin; i < a->end; ++i) {
      for (uint32_t j = b->begin; j < b->end; ++j) {
        double d = std::max({Distance(tree.point(i), tree.point(j)),
                             tree.core_dist(i), tree.core_dist(j)});
        uint32_t u = tree.id(i), v = tree.id(j);
        if (d < best.dist ||
            (d == best.dist &&
             std::minmax(u, v) < std::minmax(best.u, best.v))) {
          best = {u, v, d};
        }
      }
    }
    return;
  }
  bool split_a = !a->IsLeaf() &&
                 (b->IsLeaf() || a->diameter >= b->diameter);
  const typename KdTree<D>::Node* l = split_a ? a->left : b->left;
  const typename KdTree<D>::Node* r = split_a ? a->right : b->right;
  const typename KdTree<D>::Node* other = split_a ? b : a;
  BccpStarRec(tree, l, other, best);
  BccpStarRec(tree, r, other, best);
}

}  // namespace internal

/// Exact closest pair between the point sets of nodes `a` and `b`.
template <int D>
ClosestPair Bccp(const KdTree<D>& tree, const typename KdTree<D>::Node* a,
                 const typename KdTree<D>::Node* b) {
  ClosestPair best;
  internal::BccpRec(tree, a, b, best);
  Stats::Get().bccp_computed.fetch_add(1, std::memory_order_relaxed);
  return best;
}

/// Exact closest pair under mutual reachability distance (BCCP*). The tree
/// must have core distances annotated.
template <int D>
ClosestPair BccpStar(const KdTree<D>& tree, const typename KdTree<D>::Node* a,
                     const typename KdTree<D>::Node* b) {
  PARHC_DCHECK(tree.has_core_dists());
  ClosestPair best;
  internal::BccpStarRec(tree, a, b, best);
  Stats::Get().bccp_computed.fetch_add(1, std::memory_order_relaxed);
  return best;
}

}  // namespace parhc
