// Bichromatic closest pair (BCCP) and its mutual-reachability variant BCCP*
// (paper Section 2.3), as instantiations of the shared dual-min engine.
//
// BCCP(A, B) returns the closest pair of points across two k-d tree nodes.
// BCCP*(A, B) minimizes the mutual reachability distance
//   d_m(p, q) = max(d(p, q), cd(p), cd(q))
// and requires the tree to be annotated with core distances. Both use a
// pruned dual descent (spatial/traverse.h DualMinTraverse): a node pair is
// skipped when a lower bound on its best achievable value is no better than
// the best found so far, and children are visited closest-first.
#pragma once

#include <cstdint>
#include <limits>

#include "geometry/distance.h"
#include "spatial/traverse.h"
#include "util/stats.h"

namespace parhc {

/// Result of a closest-pair computation. `u` and `v` are original point
/// ids; `dist` is the (mutual-reachability, for BCCP*) distance.
struct ClosestPair {
  uint32_t u = 0;
  uint32_t v = 0;
  double dist = std::numeric_limits<double>::infinity();
};

namespace internal {

// Deterministic tie-breaking on (dist, min id, max id).
template <int D, typename PairDist>
void BccpLeafScan(const KdTree<D>& tree, uint32_t a, uint32_t b,
                  const PairDist& pair_dist, ClosestPair& best) {
  for (uint32_t i = tree.NodeBegin(a); i < tree.NodeEnd(a); ++i) {
    for (uint32_t j = tree.NodeBegin(b); j < tree.NodeEnd(b); ++j) {
      double d = pair_dist(i, j);
      uint32_t u = tree.id(i), v = tree.id(j);
      if (d < best.dist ||
          (d == best.dist &&
           std::minmax(u, v) < std::minmax(best.u, best.v))) {
        best = {u, v, d};
      }
    }
  }
}

/// Batched Euclidean leaf scan: both leaves' points are contiguous in tree
/// order, so each outer point issues chunked point-to-block kernel calls
/// (geometry/distance.h). `gida` / `gidb` map the two trees' point indices
/// to the caller's id space; tie-breaking matches BccpLeafScan on
/// (dist, min id, max id) in that space. Works for the single-tree case
/// (ta == tb) and the cross-tree case alike.
template <int D, typename GidA, typename GidB>
void EuclideanLeafScanBatched(const KdTree<D>& ta, const KdTree<D>& tb,
                              uint32_t a, uint32_t b, const GidA& gida,
                              const GidB& gidb, ClosestPair& best) {
  double sq[kDistanceBatch];
  for (uint32_t i = ta.NodeBegin(a); i < ta.NodeEnd(a); ++i) {
    const Point<D>& p = ta.point(i);
    for (uint32_t j0 = tb.NodeBegin(b); j0 < tb.NodeEnd(b);
         j0 += static_cast<uint32_t>(kDistanceBatch)) {
      size_t cnt = std::min<size_t>(kDistanceBatch, tb.NodeEnd(b) - j0);
      BatchSquaredDistances(p, &tb.point(j0), cnt, sq);
      for (size_t c = 0; c < cnt; ++c) {
        double d = std::sqrt(sq[c]);
        uint32_t u = gida(i), v = gidb(j0 + static_cast<uint32_t>(c));
        if (d < best.dist ||
            (d == best.dist &&
             std::minmax(u, v) < std::minmax(best.u, best.v))) {
          best = {u, v, d};
        }
      }
    }
  }
}

}  // namespace internal

/// Exact closest pair between the point sets of nodes `a` and `b`.
template <int D>
ClosestPair Bccp(const KdTree<D>& tree, uint32_t a, uint32_t b) {
  ClosestPair best;
  auto boxdist = [&](uint32_t x, uint32_t y) {
    return tree.NodeBox(x).MinSquaredDistance(tree.NodeBox(y));
  };
  DualMinTraverse(
      tree, a, b,
      [&](uint32_t x, uint32_t y) {
        return boxdist(x, y) >= best.dist * best.dist;
      },
      boxdist,
      [&](uint32_t x, uint32_t y) {
        auto gid = [&](uint32_t i) { return tree.id(i); };
        internal::EuclideanLeafScanBatched(tree, tree, x, y, gid, gid, best);
      });
  Stats::Get().bccp_computed.fetch_add(1, std::memory_order_relaxed);
  return best;
}

/// Exact closest pair under mutual reachability distance (BCCP*). The tree
/// must have core distances annotated.
template <int D>
ClosestPair BccpStar(const KdTree<D>& tree, uint32_t a, uint32_t b) {
  PARHC_DCHECK(tree.has_core_dists());
  ClosestPair best;
  DualMinTraverse(
      tree, a, b,
      [&](uint32_t x, uint32_t y) {
        double lb = std::max(
            {std::sqrt(tree.NodeBox(x).MinSquaredDistance(tree.NodeBox(y))),
             tree.CdMin(x), tree.CdMin(y)});
        return lb >= best.dist;
      },
      [&](uint32_t x, uint32_t y) {
        return tree.NodeBox(x).MinSquaredDistance(tree.NodeBox(y));
      },
      [&](uint32_t x, uint32_t y) {
        internal::BccpLeafScan(
            tree, x, y,
            [&](uint32_t i, uint32_t j) {
              return std::max(
                  {DistanceDispatch(tree.point(i), tree.point(j)),
                   tree.core_dist(i), tree.core_dist(j)});
            },
            best);
      });
  Stats::Get().bccp_computed.fetch_add(1, std::memory_order_relaxed);
  return best;
}

}  // namespace parhc
