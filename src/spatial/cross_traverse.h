// Cross-tree dual traversals: the two-tree counterparts of the single-tree
// engines in spatial/traverse.h, used by the batch-dynamic shard forest
// (src/dynamic/) to compute cross-shard candidate edges.
//
// The distance-decomposition result (Lettich, arXiv:2406.01739) states that
// the EMST of a union of parts is contained in the union of the parts'
// EMSTs plus cross-part candidate edges; the cross candidates are exactly
// the BCCP edges of a well-separated decomposition *between* the two trees
// (s = 2, the classical GFK argument applied pairwise). The same cycle-rule
// argument works for any strictly totally ordered weight function, which is
// how the mutual-reachability variant (CrossBccpStar with globally computed
// core distances) keeps HDBSCAN* exact over the shard forest.
//
// Both engines keep the two arenas positionally distinct — the first index
// always addresses `ta`, the second `tb` — and split the node with the
// larger bounding-sphere diameter, exactly like their single-tree
// counterparts. Leaf base cases tie-break in a caller-supplied id space
// (`ida` / `idb` map tree indices to global point ids) so that cross-shard
// closest pairs are deterministic in the *global* id order, matching the
// tie-breaks a from-scratch build over the union would make.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

#include "spatial/bccp.h"
#include "spatial/traverse.h"

namespace parhc {

namespace internal {

/// Pruned dual descent over (node of ta, node of tb). Mirrors
/// DualTraversePair but never swaps sides: `a` stays in `ta`, `b` in `tb`.
template <int D, typename Prune, typename Sep, typename Base>
void CrossDualTraverseRec(const KdTree<D>& ta, const KdTree<D>& tb,
                          uint32_t a, uint32_t b, const Prune& prune,
                          const Sep& sep, const Base& base) {
  if (prune(a, b)) return;
  if (sep(a, b)) {
    base(a, b, /*separated=*/true);
    return;
  }
  bool split_a =
      !ta.IsLeaf(a) && (tb.IsLeaf(b) || ta.Diameter(a) >= tb.Diameter(b));
  if (!split_a && tb.IsLeaf(b)) {
    // Two unsplittable leaves that are not separated (coincident duplicate
    // groups with zero diameters are separated by every criterion, so this
    // is the overlapping-leaf base case).
    base(a, b, /*separated=*/false);
    return;
  }
  uint32_t l = split_a ? ta.Left(a) : tb.Left(b);
  uint32_t r = l + 1;
  bool fork = ta.NodeSize(a) + tb.NodeSize(b) >= kDualSeqCutoff;
  auto recurse = [&](uint32_t child) {
    if (split_a) {
      CrossDualTraverseRec(ta, tb, child, b, prune, sep, base);
    } else {
      CrossDualTraverseRec(ta, tb, a, child, prune, sep, base);
    }
  };
  if (fork) {
    ParDo([&] { recurse(l); }, [&] { recurse(r); });
  } else {
    recurse(l);
    recurse(r);
  }
}

}  // namespace internal

/// Parallel pruned dual traversal between the roots of two trees:
///   prune(a, b) -> bool     skip this cross pair and everything below it;
///   sep(a, b)   -> bool     the pair is well-separated — stop and report;
///   base(a, b, separated)   consume a finished cross pair.
/// Callbacks may run concurrently and must be thread-safe.
template <int D, typename Prune, typename Sep, typename Base>
void CrossDualTraverse(const KdTree<D>& ta, const KdTree<D>& tb,
                       const Prune& prune, const Sep& sep, const Base& base) {
  internal::CrossDualTraverseRec(ta, tb, ta.root(), tb.root(), prune, sep,
                                 base);
}

/// Sequential pruned dual descent toward a minimum between two trees — the
/// cross-tree BCCP engine. `pairkey(a, b)` orders child visits (lower
/// first); `prune` and `leaf_pair` as in DualMinTraverse.
template <int D, typename Prune, typename PairKey, typename LeafPair>
void CrossDualMinTraverse(const KdTree<D>& ta, const KdTree<D>& tb,
                          uint32_t a, uint32_t b, const Prune& prune,
                          const PairKey& pairkey, const LeafPair& leaf_pair) {
  if (prune(a, b)) return;
  if (ta.IsLeaf(a) && tb.IsLeaf(b)) {
    leaf_pair(a, b);
    return;
  }
  bool split_a =
      !ta.IsLeaf(a) && (tb.IsLeaf(b) || ta.Diameter(a) >= tb.Diameter(b));
  uint32_t l = split_a ? ta.Left(a) : tb.Left(b);
  uint32_t r = l + 1;
  double kl = split_a ? pairkey(l, b) : pairkey(a, l);
  double kr = split_a ? pairkey(r, b) : pairkey(a, r);
  if (kr < kl) std::swap(l, r);
  if (split_a) {
    CrossDualMinTraverse(ta, tb, l, b, prune, pairkey, leaf_pair);
    CrossDualMinTraverse(ta, tb, r, b, prune, pairkey, leaf_pair);
  } else {
    CrossDualMinTraverse(ta, tb, a, l, prune, pairkey, leaf_pair);
    CrossDualMinTraverse(ta, tb, a, r, prune, pairkey, leaf_pair);
  }
}

namespace internal {

// Deterministic tie-breaking on (dist, min global id, max global id): ids
// come from the caller's mapping so cross-shard ties resolve exactly as a
// from-scratch build over the union would.
template <int D, typename PairDist, typename IdA, typename IdB>
void CrossBccpLeafScan(const KdTree<D>& ta, const KdTree<D>& tb, uint32_t a,
                       uint32_t b, const PairDist& pair_dist, const IdA& ida,
                       const IdB& idb, ClosestPair& best) {
  for (uint32_t i = ta.NodeBegin(a); i < ta.NodeEnd(a); ++i) {
    for (uint32_t j = tb.NodeBegin(b); j < tb.NodeEnd(b); ++j) {
      double d = pair_dist(i, j);
      uint32_t u = ida(ta.id(i)), v = idb(tb.id(j));
      if (d < best.dist ||
          (d == best.dist &&
           std::minmax(u, v) < std::minmax(best.u, best.v))) {
        best = {u, v, d};
      }
    }
  }
}

}  // namespace internal

/// Exact closest pair between the point sets of node `a` of `ta` and node
/// `b` of `tb`. `ida` / `idb` map each tree's point ids to global ids; the
/// returned pair carries global ids.
template <int D, typename IdA, typename IdB>
ClosestPair CrossBccp(const KdTree<D>& ta, const KdTree<D>& tb, uint32_t a,
                      uint32_t b, const IdA& ida, const IdB& idb) {
  ClosestPair best;
  auto boxdist = [&](uint32_t x, uint32_t y) {
    return ta.NodeBox(x).MinSquaredDistance(tb.NodeBox(y));
  };
  CrossDualMinTraverse(
      ta, tb, a, b,
      [&](uint32_t x, uint32_t y) {
        return boxdist(x, y) >= best.dist * best.dist;
      },
      boxdist,
      [&](uint32_t x, uint32_t y) {
        internal::EuclideanLeafScanBatched(
            ta, tb, x, y, [&](uint32_t i) { return ida(ta.id(i)); },
            [&](uint32_t j) { return idb(tb.id(j)); }, best);
      });
  Stats::Get().bccp_computed.fetch_add(1, std::memory_order_relaxed);
  return best;
}

/// Exact closest pair under mutual reachability distance between two trees
/// (cross-shard BCCP*). Both trees must have core distances annotated — with
/// *globally* computed core distances for shard-forest exactness.
template <int D, typename IdA, typename IdB>
ClosestPair CrossBccpStar(const KdTree<D>& ta, const KdTree<D>& tb,
                          uint32_t a, uint32_t b, const IdA& ida,
                          const IdB& idb) {
  PARHC_DCHECK(ta.has_core_dists() && tb.has_core_dists());
  ClosestPair best;
  CrossDualMinTraverse(
      ta, tb, a, b,
      [&](uint32_t x, uint32_t y) {
        double lb = std::max(
            {std::sqrt(ta.NodeBox(x).MinSquaredDistance(tb.NodeBox(y))),
             ta.CdMin(x), tb.CdMin(y)});
        return lb >= best.dist;
      },
      [&](uint32_t x, uint32_t y) {
        return ta.NodeBox(x).MinSquaredDistance(tb.NodeBox(y));
      },
      [&](uint32_t x, uint32_t y) {
        internal::CrossBccpLeafScan(
            ta, tb, x, y,
            [&](uint32_t i, uint32_t j) {
              return std::max({DistanceDispatch(ta.point(i), tb.point(j)),
                               ta.core_dist(i), tb.core_dist(j)});
            },
            ida, idb, best);
      });
  Stats::Get().bccp_computed.fetch_add(1, std::memory_order_relaxed);
  return best;
}

}  // namespace parhc
