// Parallel spatial-median k-d tree over a flat, index-based node arena
// (paper Sections 2.3, 3.1.1).
//
// The tree is built by recursively splitting the widest dimension of each
// node's bounding box at its midpoint ("spatial median"), processing the two
// children in parallel. Nodes cache the bounding box, bounding-sphere
// diameter, and — for HDBSCAN* — the min/max core distance of contained
// points (cdmin/cdmax of Table 1) and a component id used by MemoGFK's
// connectivity pruning (Section 3.1.3).
//
// Layout: nodes are addressed by `uint32_t` index into structure-of-arrays
// storage, so traversals branch over contiguous memory instead of chasing
// pointers. Sibling nodes are allocated adjacently (right = left + 1), and a
// child's index is always greater than its parent's, which makes bottom-up
// annotation passes simple reverse sweeps over the arena (see
// spatial/traverse.h for the generic traversal engine built on top).
//
// Leaves hold at most `leaf_size` points; ranges of fully-identical points
// become leaves regardless of size (they cannot be split), which callers
// must handle (see emst/hdbscan duplicate handling).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "geometry/box.h"
#include "geometry/distance.h"
#include "geometry/point.h"
#include "parallel/primitives.h"
#include "parallel/scheduler.h"
#include "util/check.h"

namespace parhc {

namespace internal {

/// Fixed-capacity array of trivially-copyable elements that, unlike
/// std::vector, performs no value-initialization: allocating the k-d tree
/// arena must not zero-fill O(n) nodes on the build's critical path.
///
/// An array can instead *adopt* external storage (AdoptExternal) — the
/// zero-copy path of the snapshot store, where the arena fields are views
/// straight into an mmapped file. Adopted storage is read-only by
/// contract: the only writers of the core arena fields are the build-time
/// passes, which snapshot-loaded trees never run (the lazily-annotated
/// arrays — components, core distances — are always owned).
template <typename T>
class NodeArray {
  static_assert(std::is_trivially_copyable<T>::value,
                "NodeArray requires trivially copyable elements");

 public:
  void Allocate(size_t n) {
    owned_.reset(new T[n]);  // default-init: no zero-fill for trivial T
    data_ = owned_.get();
    size_ = n;
  }

  /// Points this array at caller-owned read-only storage (the caller
  /// keeps it alive; see KdTree's mapping keepalive).
  void AdoptExternal(const T* data, size_t n) {
    owned_.reset();
    data_ = const_cast<T*>(data);
    size_ = n;
  }

  /// Reallocates down to exactly `n` elements, preserving the prefix.
  /// Owned storage only (build-path use).
  void ShrinkTo(size_t n) {
    PARHC_DCHECK(n <= size_);
    PARHC_DCHECK(owned_ != nullptr);
    if (n == size_) return;
    std::unique_ptr<T[]> next(new T[n]);
    std::copy(data_, data_ + n, next.get());
    owned_ = std::move(next);
    data_ = owned_.get();
    size_ = n;
  }

  void Clear() {
    owned_.reset();
    data_ = nullptr;
    size_ = 0;
  }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  const T* data() const { return data_; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }

 private:
  std::unique_ptr<T[]> owned_;
  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace internal

template <int D>
class KdTree {
 public:
  /// Index of a node in the arena. The root is node 0.
  using NodeId = uint32_t;
  static constexpr NodeId kRootNode = 0;
  /// Stored as a node's left-child index to mark it as a leaf.
  static constexpr NodeId kNullNode = 0xffffffffu;

  /// A node's [begin, end) slice of the tree-ordered point array. Public
  /// (and packed-free by layout) because the snapshot store serializes the
  /// range arena verbatim.
  struct PointRange {
    uint32_t begin;
    uint32_t end;
  };

  /// The deserialized parts a snapshot-loaded tree is assembled from: the
  /// tree-order points/ids are owned copies, while the four node-arena
  /// arrays are *views* (typically into an mmapped snapshot file) kept
  /// alive by `keepalive`. The caller (store/artifact_io.h) validates
  /// structural invariants before constructing; the constructor only
  /// adopts.
  struct ArenaParts {
    uint32_t leaf_size = 1;
    uint32_t node_count = 0;
    std::vector<Point<D>> pts;          ///< tree order
    std::vector<uint32_t> ids;          ///< tree order -> original id
    const uint32_t* left = nullptr;     ///< [node_count]
    const PointRange* range = nullptr;  ///< [node_count]
    const Box<D>* box = nullptr;        ///< [node_count]
    const double* diameter = nullptr;   ///< [node_count]
    std::shared_ptr<const void> keepalive;
  };

  /// Reassembles a tree from snapshot parts: no build pass runs, the
  /// node arena adopts the provided (read-only) views zero-copy.
  explicit KdTree(ArenaParts parts)
      : leaf_size_(parts.leaf_size),
        pts_(std::move(parts.pts)),
        ids_(std::move(parts.ids)),
        mapping_(std::move(parts.keepalive)) {
    PARHC_CHECK(parts.node_count >= 1 && !pts_.empty());
    left_.AdoptExternal(parts.left, parts.node_count);
    range_.AdoptExternal(parts.range, parts.node_count);
    box_.AdoptExternal(parts.box, parts.node_count);
    diameter_.AdoptExternal(parts.diameter, parts.node_count);
    node_count_.store(parts.node_count, std::memory_order_relaxed);
  }

  /// Builds the tree over `points` (copied and reordered internally).
  explicit KdTree(const std::vector<Point<D>>& points, uint32_t leaf_size = 1)
      : leaf_size_(leaf_size), pts_(points), ids_(points.size()) {
    PARHC_CHECK(leaf_size >= 1);
    size_t n = points.size();
    PARHC_CHECK(n >= 1);
    ParallelFor(0, n, [&](size_t i) { ids_[i] = static_cast<uint32_t>(i); });
    // A binary tree over n points has at most 2n-1 nodes (every split is
    // non-trivial). Allocation is uninitialized; fields are written exactly
    // once by Build, and the arena shrinks to the actual node count after.
    size_t cap = 2 * n;
    left_.Allocate(cap);
    range_.Allocate(cap);
    box_.Allocate(cap);
    diameter_.Allocate(cap);
    scratch_pts_.resize(n);
    scratch_ids_.resize(n);
    node_count_.store(1, std::memory_order_relaxed);  // root = node 0
    Build(kRootNode, 0, static_cast<uint32_t>(n));
    // Reallocate the arena down to the actual node count when the savings
    // are worthwhile (multi-point leaves). With unit leaves the tree is
    // within one node of the bound and the copy would be pure overhead.
    uint32_t count = node_count_.load(std::memory_order_relaxed);
    if (count < cap - cap / 8) {
      left_.ShrinkTo(count);
      range_.ShrinkTo(count);
      box_.ShrinkTo(count);
      diameter_.ShrinkTo(count);
    }
    scratch_pts_.clear();
    scratch_pts_.shrink_to_fit();
    scratch_ids_.clear();
    scratch_ids_.shrink_to_fit();
  }

  NodeId root() const { return kRootNode; }
  size_t size() const { return pts_.size(); }
  /// Number of nodes in the arena; valid node ids are [0, node_count()).
  uint32_t node_count() const {
    return node_count_.load(std::memory_order_relaxed);
  }

  // --- Per-node accessors (hot traversal fields, SoA) ---
  bool IsLeaf(NodeId v) const { return left_[v] == kNullNode; }
  NodeId Left(NodeId v) const { return left_[v]; }
  NodeId Right(NodeId v) const { return left_[v] + 1; }  // siblings adjacent
  /// First point index of the node's range (tree order).
  uint32_t NodeBegin(NodeId v) const { return range_[v].begin; }
  /// One past the last point index of the node's range.
  uint32_t NodeEnd(NodeId v) const { return range_[v].end; }
  uint32_t NodeSize(NodeId v) const {
    return range_[v].end - range_[v].begin;
  }
  const Box<D>& NodeBox(NodeId v) const { return box_[v]; }
  /// Bounding-sphere diameter (Table 1).
  double Diameter(NodeId v) const { return diameter_[v]; }
  /// Min core distance in the subtree (after AnnotateCoreDistances).
  double CdMin(NodeId v) const { return cd_min_[v]; }
  /// Max core distance in the subtree (after AnnotateCoreDistances).
  double CdMax(NodeId v) const { return cd_max_[v]; }
  /// Union-find component if all points share one, else -1. Before the
  /// first RefreshComponents call no node has a component.
  int64_t Component(NodeId v) const {
    return component_.empty() ? -1 : component_[v];
  }

  /// Points in tree order.
  const std::vector<Point<D>>& points() const { return pts_; }
  /// ids()[i] is the original index of points()[i].
  const std::vector<uint32_t>& ids() const { return ids_; }
  const Point<D>& point(uint32_t tree_idx) const { return pts_[tree_idx]; }
  uint32_t id(uint32_t tree_idx) const { return ids_[tree_idx]; }

  /// Core distance of the point at tree index i (after AnnotateCoreDistances).
  double core_dist(uint32_t tree_idx) const { return cd_[tree_idx]; }
  bool has_core_dists() const { return !cd_.empty(); }

  /// Stores core distances (indexed by *original* point id) and fills each
  /// node's cd_min / cd_max with a flat bottom-up sweep over the arena.
  void AnnotateCoreDistances(const std::vector<double>& core_by_id) {
    PARHC_CHECK(core_by_id.size() == pts_.size());
    cd_.resize(pts_.size());
    ParallelFor(0, pts_.size(),
                [&](size_t i) { cd_[i] = core_by_id[ids_[i]]; });
    uint32_t count = node_count();
    if (cd_min_.size() != count) {
      cd_min_.Allocate(count);
      cd_max_.Allocate(count);
    }
    BottomUp(
        [&](NodeId v) {
          double mn = cd_[range_[v].begin], mx = mn;
          for (uint32_t i = range_[v].begin + 1; i < range_[v].end; ++i) {
            mn = std::min(mn, cd_[i]);
            mx = std::max(mx, cd_[i]);
          }
          cd_min_[v] = mn;
          cd_max_[v] = mx;
        },
        [&](NodeId v, NodeId l, NodeId r) {
          cd_min_[v] = std::min(cd_min_[l], cd_min_[r]);
          cd_max_[v] = std::max(cd_max_[l], cd_max_[r]);
        });
  }

  /// Refreshes every node's component from a union-find `find` functor over
  /// *original* point ids: a node gets the component id if all its points
  /// share it, else -1. Flat bottom-up sweep; phase-separated from
  /// traversals.
  template <typename FindFn>
  void RefreshComponents(FindFn find) {
    if (component_.size() != node_count()) {
      component_.Allocate(node_count());
    }
    BottomUp(
        [&](NodeId v) {
          int64_t c = static_cast<int64_t>(find(ids_[range_[v].begin]));
          for (uint32_t i = range_[v].begin + 1; i < range_[v].end; ++i) {
            if (static_cast<int64_t>(find(ids_[i])) != c) {
              c = -1;
              break;
            }
          }
          component_[v] = c;
        },
        [&](NodeId v, NodeId l, NodeId r) {
          component_[v] =
              (component_[l] == component_[r]) ? component_[l] : -1;
        });
  }

  // --- Raw arena access (snapshot store) ---
  uint32_t leaf_size() const { return leaf_size_; }
  const uint32_t* left_data() const { return left_.data(); }
  const PointRange* range_data() const { return range_.data(); }
  const Box<D>* box_data() const { return box_.data(); }
  const double* diameter_data() const { return diameter_.data(); }

  /// Bottom-up arena sweep: `leaf(v)` runs for every leaf in parallel (the
  /// per-point work dominates), then `combine(v, left, right)` runs for
  /// every internal node in reverse allocation order — children always have
  /// larger indices than their parent, so a reverse scan sees both children
  /// before the parent. The combine pass is a cache-friendly linear scan.
  template <typename LeafFn, typename CombineFn>
  void BottomUp(LeafFn leaf, CombineFn combine) const {
    uint32_t count = node_count();
    ParallelFor(0, count, [&](size_t v) {
      if (IsLeaf(static_cast<NodeId>(v))) leaf(static_cast<NodeId>(v));
    });
    for (uint32_t v = count; v-- > 0;) {
      if (!IsLeaf(v)) combine(v, Left(v), Right(v));
    }
  }

  KdTree(const KdTree&) = delete;
  KdTree& operator=(const KdTree&) = delete;

 private:
  static constexpr uint32_t kSeqBuildCutoff = 2048;

  // The widest-dimension sweep of the build: a min/max block kernel
  // (geometry/distance.h), bitwise identical across ISA levels.
  Box<D> RangeBox(uint32_t begin, uint32_t end) const {
    Box<D> box = Box<D>::Empty();
    if (end - begin < kSeqBuildCutoff) {
      BoxExtendBlock(box, &pts_[begin], end - begin);
      return box;
    }
    size_t nb = internal::NumBlocks(end - begin);
    size_t block = (end - begin + nb - 1) / nb;
    std::vector<Box<D>> boxes(nb, Box<D>::Empty());
    ParallelFor(
        0, nb,
        [&](size_t b) {
          uint32_t lo = begin + static_cast<uint32_t>(b * block);
          uint32_t hi = std::min<uint32_t>(end, lo + block);
          BoxExtendBlock(boxes[b], &pts_[lo], hi - lo);
        },
        1);
    for (size_t b = 0; b < nb; ++b) box.Extend(boxes[b]);
    return box;
  }

  void Build(NodeId node, uint32_t begin, uint32_t end) {
    range_[node] = {begin, end};
    Box<D> box = RangeBox(begin, end);
    box_[node] = box;
    double diameter = 2.0 * box.SphereRadius();
    diameter_[node] = diameter;
    uint32_t n = end - begin;
    if (n <= leaf_size_ || diameter == 0.0) {
      left_[node] = kNullNode;  // leaf (identical-point ranges stop here)
      return;
    }
    int axis = box.WidestDim();
    double split = 0.5 * (box.lo[axis] + box.hi[axis]);
    uint32_t mid = Partition(begin, end, axis, split);
    if (mid == begin || mid == end) {
      // Degenerate spatial split (heavy duplication near the midpoint):
      // fall back to an object-median split, which always makes progress
      // because the range has positive extent along `axis`.
      mid = begin + n / 2;
      MedianSplit(begin, end, mid, axis);
    }
    NodeId kids = node_count_.fetch_add(2, std::memory_order_relaxed);
    PARHC_DCHECK(kids + 1 < left_.size());
    left_[node] = kids;
    if (n >= kSeqBuildCutoff) {
      ParDo([&] { Build(kids, begin, mid); },
            [&] { Build(kids + 1, mid, end); });
    } else {
      Build(kids, begin, mid);
      Build(kids + 1, mid, end);
    }
  }

  /// Partitions [begin, end) so points with coord < split come first;
  /// returns the boundary. Parallel out-of-place pass for large ranges.
  uint32_t Partition(uint32_t begin, uint32_t end, int axis, double split) {
    uint32_t n = end - begin;
    if (n < kSeqBuildCutoff) {
      uint32_t i = begin;
      for (uint32_t j = begin; j < end; ++j) {
        if (pts_[j][axis] < split) {
          std::swap(pts_[i], pts_[j]);
          std::swap(ids_[i], ids_[j]);
          ++i;
        }
      }
      return i;
    }
    size_t nb = internal::NumBlocks(n);
    size_t block = (n + nb - 1) / nb;
    std::vector<uint32_t> left_counts(nb, 0);
    ParallelFor(
        0, nb,
        [&](size_t b) {
          uint32_t lo = begin + static_cast<uint32_t>(b * block);
          uint32_t hi = std::min<uint32_t>(end, lo + block);
          uint32_t c = 0;
          for (uint32_t i = lo; i < hi; ++i) c += pts_[i][axis] < split;
          left_counts[b] = c;
        },
        1);
    std::vector<uint32_t> left_off(left_counts);
    uint32_t total_left = ScanExclusive(
        left_off.data(), nb, uint32_t{0},
        [](uint32_t x, uint32_t y) { return x + y; });
    ParallelFor(
        0, nb,
        [&](size_t b) {
          uint32_t lo = begin + static_cast<uint32_t>(b * block);
          uint32_t hi = std::min<uint32_t>(end, lo + block);
          uint32_t l = begin + left_off[b];
          uint32_t r = begin + total_left +
                       (static_cast<uint32_t>(b * block) - left_off[b]);
          for (uint32_t i = lo; i < hi; ++i) {
            uint32_t dst = (pts_[i][axis] < split) ? l++ : r++;
            scratch_pts_[dst] = pts_[i];
            scratch_ids_[dst] = ids_[i];
          }
        },
        1);
    ParallelFor(begin, end, [&](size_t i) {
      pts_[i] = scratch_pts_[i];
      ids_[i] = scratch_ids_[i];
    });
    return begin + total_left;
  }

  void MedianSplit(uint32_t begin, uint32_t end, uint32_t mid, int axis) {
    // Sequential nth_element keyed by (coord, id) so equal coordinates
    // split deterministically. Rare path; cost is acceptable.
    std::vector<uint32_t> perm(end - begin);
    for (uint32_t i = 0; i < end - begin; ++i) perm[i] = begin + i;
    std::nth_element(perm.begin(), perm.begin() + (mid - begin), perm.end(),
                     [&](uint32_t a, uint32_t b) {
                       if (pts_[a][axis] != pts_[b][axis]) {
                         return pts_[a][axis] < pts_[b][axis];
                       }
                       return ids_[a] < ids_[b];
                     });
    std::vector<Point<D>> tmp_pts(end - begin);
    std::vector<uint32_t> tmp_ids(end - begin);
    for (uint32_t i = 0; i < end - begin; ++i) {
      tmp_pts[i] = pts_[perm[i]];
      tmp_ids[i] = ids_[perm[i]];
    }
    std::copy(tmp_pts.begin(), tmp_pts.end(), pts_.begin() + begin);
    std::copy(tmp_ids.begin(), tmp_ids.end(), ids_.begin() + begin);
  }

  uint32_t leaf_size_;
  std::vector<Point<D>> pts_;
  std::vector<uint32_t> ids_;
  std::vector<double> cd_;
  std::vector<Point<D>> scratch_pts_;
  std::vector<uint32_t> scratch_ids_;
  /// Keeps a snapshot mapping alive while the arena views point into it.
  std::shared_ptr<const void> mapping_;

  // Node arena (SoA). left_[v] == kNullNode marks a leaf; otherwise the
  // children are left_[v] and left_[v] + 1. The component and core-distance
  // annotations are allocated lazily by their refresh/annotate passes.
  internal::NodeArray<uint32_t> left_;
  internal::NodeArray<PointRange> range_;
  internal::NodeArray<Box<D>> box_;
  internal::NodeArray<double> diameter_;
  internal::NodeArray<int64_t> component_;  // RefreshComponents
  internal::NodeArray<double> cd_min_;      // AnnotateCoreDistances
  internal::NodeArray<double> cd_max_;
  std::atomic<uint32_t> node_count_{0};
};

}  // namespace parhc
