// Parallel spatial-median k-d tree (paper Sections 2.3, 3.1.1).
//
// The tree is built by recursively splitting the widest dimension of each
// node's bounding box at its midpoint ("spatial median"), processing the two
// children in parallel. Nodes cache the bounding box, bounding-sphere
// diameter, and — for HDBSCAN* — the min/max core distance of contained
// points (cdmin/cdmax of Table 1) and a component id used by MemoGFK's
// connectivity pruning (Section 3.1.3).
//
// Leaves hold at most `leaf_size` points; ranges of fully-identical points
// become leaves regardless of size (they cannot be split), which callers
// must handle (see emst/hdbscan duplicate handling).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "parallel/primitives.h"
#include "parallel/scheduler.h"
#include "util/check.h"

namespace parhc {

template <int D>
class KdTree {
 public:
  struct Node {
    Box<D> box;
    uint32_t begin = 0;            ///< first point index (tree order)
    uint32_t end = 0;              ///< one past last point index
    Node* left = nullptr;
    Node* right = nullptr;
    double diameter = 0;           ///< bounding-sphere diameter (Table 1)
    double cd_min = 0;             ///< min core distance in subtree
    double cd_max = 0;             ///< max core distance in subtree
    int64_t component = -1;        ///< union-find component if uniform, else -1

    bool IsLeaf() const { return left == nullptr; }
    uint32_t size() const { return end - begin; }
  };

  /// Builds the tree over `points` (copied and reordered internally).
  explicit KdTree(const std::vector<Point<D>>& points, uint32_t leaf_size = 1)
      : leaf_size_(leaf_size), pts_(points), ids_(points.size()) {
    PARHC_CHECK(leaf_size >= 1);
    size_t n = points.size();
    PARHC_CHECK(n >= 1);
    ParallelFor(0, n, [&](size_t i) { ids_[i] = static_cast<uint32_t>(i); });
    nodes_.resize(2 * n);  // a binary tree over n points has < 2n nodes
    scratch_pts_.resize(n);
    scratch_ids_.resize(n);
    root_ = Build(0, static_cast<uint32_t>(n));
    scratch_pts_.clear();
    scratch_pts_.shrink_to_fit();
    scratch_ids_.clear();
    scratch_ids_.shrink_to_fit();
  }

  Node* root() { return root_; }
  const Node* root() const { return root_; }
  size_t size() const { return pts_.size(); }

  /// Points in tree order.
  const std::vector<Point<D>>& points() const { return pts_; }
  /// ids()[i] is the original index of points()[i].
  const std::vector<uint32_t>& ids() const { return ids_; }
  const Point<D>& point(uint32_t tree_idx) const { return pts_[tree_idx]; }
  uint32_t id(uint32_t tree_idx) const { return ids_[tree_idx]; }

  /// Core distance of the point at tree index i (after AnnotateCoreDistances).
  double core_dist(uint32_t tree_idx) const { return cd_[tree_idx]; }
  bool has_core_dists() const { return !cd_.empty(); }

  /// Stores core distances (indexed by *original* point id) and fills each
  /// node's cd_min / cd_max bottom-up.
  void AnnotateCoreDistances(const std::vector<double>& core_by_id) {
    PARHC_CHECK(core_by_id.size() == pts_.size());
    cd_.resize(pts_.size());
    ParallelFor(0, pts_.size(),
                [&](size_t i) { cd_[i] = core_by_id[ids_[i]]; });
    AnnotateCdRec(root_);
  }

  /// Refreshes every node's `component` from a union-find `find` functor
  /// over *original* point ids: a node gets the component id if all its
  /// points share it, else -1. Phase-separated from traversals.
  template <typename FindFn>
  void RefreshComponents(FindFn find) {
    RefreshComponentsRec(root_, find);
  }

  KdTree(const KdTree&) = delete;
  KdTree& operator=(const KdTree&) = delete;

 private:
  static constexpr uint32_t kSeqBuildCutoff = 2048;

  Node* AllocNode() {
    uint32_t idx = node_count_.fetch_add(1, std::memory_order_relaxed);
    PARHC_DCHECK(idx < nodes_.size());
    return &nodes_[idx];
  }

  Box<D> RangeBox(uint32_t begin, uint32_t end) const {
    Box<D> box = Box<D>::Empty();
    if (end - begin < kSeqBuildCutoff) {
      for (uint32_t i = begin; i < end; ++i) box.Extend(pts_[i]);
      return box;
    }
    size_t nb = internal::NumBlocks(end - begin);
    size_t block = (end - begin + nb - 1) / nb;
    std::vector<Box<D>> boxes(nb, Box<D>::Empty());
    ParallelFor(
        0, nb,
        [&](size_t b) {
          uint32_t lo = begin + static_cast<uint32_t>(b * block);
          uint32_t hi = std::min<uint32_t>(end, lo + block);
          for (uint32_t i = lo; i < hi; ++i) boxes[b].Extend(pts_[i]);
        },
        1);
    for (size_t b = 0; b < nb; ++b) box.Extend(boxes[b]);
    return box;
  }

  Node* Build(uint32_t begin, uint32_t end) {
    Node* node = AllocNode();
    node->begin = begin;
    node->end = end;
    node->box = RangeBox(begin, end);
    node->diameter = 2.0 * node->box.SphereRadius();
    uint32_t n = end - begin;
    if (n <= leaf_size_ || node->diameter == 0.0) {
      return node;  // leaf (identical-point ranges always stop here)
    }
    int axis = node->box.WidestDim();
    double split = 0.5 * (node->box.lo[axis] + node->box.hi[axis]);
    uint32_t mid = Partition(begin, end, axis, split);
    if (mid == begin || mid == end) {
      // Degenerate spatial split (heavy duplication near the midpoint):
      // fall back to an object-median split, which always makes progress
      // because the range has positive extent along `axis`.
      mid = begin + n / 2;
      MedianSplit(begin, end, mid, axis);
    }
    if (n >= kSeqBuildCutoff) {
      ParDo([&] { node->left = Build(begin, mid); },
            [&] { node->right = Build(mid, end); });
    } else {
      node->left = Build(begin, mid);
      node->right = Build(mid, end);
    }
    return node;
  }

  /// Partitions [begin, end) so points with coord < split come first;
  /// returns the boundary. Parallel out-of-place pass for large ranges.
  uint32_t Partition(uint32_t begin, uint32_t end, int axis, double split) {
    uint32_t n = end - begin;
    if (n < kSeqBuildCutoff) {
      uint32_t i = begin;
      for (uint32_t j = begin; j < end; ++j) {
        if (pts_[j][axis] < split) {
          std::swap(pts_[i], pts_[j]);
          std::swap(ids_[i], ids_[j]);
          ++i;
        }
      }
      return i;
    }
    size_t nb = internal::NumBlocks(n);
    size_t block = (n + nb - 1) / nb;
    std::vector<uint32_t> left_counts(nb, 0);
    ParallelFor(
        0, nb,
        [&](size_t b) {
          uint32_t lo = begin + static_cast<uint32_t>(b * block);
          uint32_t hi = std::min<uint32_t>(end, lo + block);
          uint32_t c = 0;
          for (uint32_t i = lo; i < hi; ++i) c += pts_[i][axis] < split;
          left_counts[b] = c;
        },
        1);
    std::vector<uint32_t> left_off(left_counts);
    uint32_t total_left = ScanExclusive(
        left_off.data(), nb, uint32_t{0},
        [](uint32_t x, uint32_t y) { return x + y; });
    ParallelFor(
        0, nb,
        [&](size_t b) {
          uint32_t lo = begin + static_cast<uint32_t>(b * block);
          uint32_t hi = std::min<uint32_t>(end, lo + block);
          uint32_t l = begin + left_off[b];
          uint32_t r = begin + total_left +
                       (static_cast<uint32_t>(b * block) - left_off[b]);
          for (uint32_t i = lo; i < hi; ++i) {
            uint32_t dst = (pts_[i][axis] < split) ? l++ : r++;
            scratch_pts_[dst] = pts_[i];
            scratch_ids_[dst] = ids_[i];
          }
        },
        1);
    ParallelFor(begin, end, [&](size_t i) {
      pts_[i] = scratch_pts_[i];
      ids_[i] = scratch_ids_[i];
    });
    return begin + total_left;
  }

  void MedianSplit(uint32_t begin, uint32_t end, uint32_t mid, int axis) {
    // Sequential nth_element keyed by (coord, id) so equal coordinates
    // split deterministically. Rare path; cost is acceptable.
    std::vector<uint32_t> perm(end - begin);
    for (uint32_t i = 0; i < end - begin; ++i) perm[i] = begin + i;
    std::nth_element(perm.begin(), perm.begin() + (mid - begin), perm.end(),
                     [&](uint32_t a, uint32_t b) {
                       if (pts_[a][axis] != pts_[b][axis]) {
                         return pts_[a][axis] < pts_[b][axis];
                       }
                       return ids_[a] < ids_[b];
                     });
    std::vector<Point<D>> tmp_pts(end - begin);
    std::vector<uint32_t> tmp_ids(end - begin);
    for (uint32_t i = 0; i < end - begin; ++i) {
      tmp_pts[i] = pts_[perm[i]];
      tmp_ids[i] = ids_[perm[i]];
    }
    std::copy(tmp_pts.begin(), tmp_pts.end(), pts_.begin() + begin);
    std::copy(tmp_ids.begin(), tmp_ids.end(), ids_.begin() + begin);
  }

  void AnnotateCdRec(Node* node) {
    if (node->IsLeaf()) {
      double mn = cd_[node->begin], mx = cd_[node->begin];
      for (uint32_t i = node->begin + 1; i < node->end; ++i) {
        mn = std::min(mn, cd_[i]);
        mx = std::max(mx, cd_[i]);
      }
      node->cd_min = mn;
      node->cd_max = mx;
      return;
    }
    if (node->size() >= kSeqBuildCutoff) {
      ParDo([&] { AnnotateCdRec(node->left); },
            [&] { AnnotateCdRec(node->right); });
    } else {
      AnnotateCdRec(node->left);
      AnnotateCdRec(node->right);
    }
    node->cd_min = std::min(node->left->cd_min, node->right->cd_min);
    node->cd_max = std::max(node->left->cd_max, node->right->cd_max);
  }

  template <typename FindFn>
  void RefreshComponentsRec(Node* node, FindFn& find) {
    if (node->IsLeaf()) {
      int64_t c = static_cast<int64_t>(find(ids_[node->begin]));
      for (uint32_t i = node->begin + 1; i < node->end; ++i) {
        if (static_cast<int64_t>(find(ids_[i])) != c) {
          c = -1;
          break;
        }
      }
      node->component = c;
      return;
    }
    if (node->size() >= kSeqBuildCutoff) {
      ParDo([&] { RefreshComponentsRec(node->left, find); },
            [&] { RefreshComponentsRec(node->right, find); });
    } else {
      RefreshComponentsRec(node->left, find);
      RefreshComponentsRec(node->right, find);
    }
    node->component = (node->left->component == node->right->component)
                          ? node->left->component
                          : -1;
  }

  uint32_t leaf_size_;
  std::vector<Point<D>> pts_;
  std::vector<uint32_t> ids_;
  std::vector<double> cd_;
  std::vector<Point<D>> scratch_pts_;
  std::vector<uint32_t> scratch_ids_;
  std::vector<Node> nodes_;
  std::atomic<uint32_t> node_count_{0};
  Node* root_ = nullptr;
};

}  // namespace parhc
