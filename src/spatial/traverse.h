// Generic traversal engine over the flat k-d tree arena.
//
// Every tree walk in the system — WSPD enumeration (Algorithm 1), MemoGFK's
// GetRho / GetPairs (Algorithm 3), BCCP / BCCP*, kNN, and Boruvka's
// nearest-other-component queries — is an instantiation of one of three
// engines below, so the split / prune / parallelization logic lives in
// exactly one place and every visit branches over the arena's contiguous
// structure-of-arrays storage:
//
//  * DualTraverse      — parallel dual-tree visitor over all sibling pairs
//                        (prune / separation / base-case callbacks);
//  * DualMinTraverse   — sequential pruned dual descent toward a minimum,
//                        visiting child pairs closest-first (BCCP family);
//  * SingleTraverse    — sequential pruned single-tree descent, visiting
//                        children closest-first (kNN family).
//
// ForEachLeaf and KdTree::BottomUp complete the set with flat, recursion-free
// sweeps over the arena.
#pragma once

#include <cstdint>
#include <utility>

#include "parallel/scheduler.h"
#include "spatial/kdtree.h"
#include "util/stats.h"

namespace parhc {

namespace internal {

/// Below this combined node size dual traversals stop forking (task grain).
constexpr uint32_t kDualSeqCutoff = 1024;

// Pruned dual descent from one node pair. `prune`, `sep` decide; `base`
// consumes a finished pair: separated (second arg true) or a pair of
// unsplittable leaves (false) — with unit leaves the latter only occurs for
// degenerate duplicate groups. The node with the larger bounding-sphere
// diameter is split (Algorithm 1 lines 8-9); a leaf cannot split, so the
// traversal falls through to the other node.
//
// `count_visits` selects whether node-pair visits feed the
// wspd_pairs_visited counter — pair-enumerating traversals (WSPD,
// GetPairs) count, bound-only sweeps (GetRho) don't, matching how the
// memory-ablation benchmarks have always defined the metric.
template <int D, typename Prune, typename Sep, typename Base>
void DualTraversePair(const KdTree<D>& t, uint32_t a, uint32_t b,
                      const Prune& prune, const Sep& sep, const Base& base,
                      bool count_visits) {
  if (count_visits) {
    Stats::Get().wspd_pairs_visited.fetch_add(1, std::memory_order_relaxed);
  }
  if (prune(a, b)) return;
  if (sep(a, b)) {
    base(a, b, /*separated=*/true);
    return;
  }
  uint32_t x = a, y = b;
  if (t.Diameter(x) < t.Diameter(y)) std::swap(x, y);
  if (t.IsLeaf(x)) std::swap(x, y);
  if (t.IsLeaf(x)) {
    base(a, b, /*separated=*/false);
    return;
  }
  if (t.NodeSize(x) + t.NodeSize(y) >= kDualSeqCutoff) {
    ParDo(
        [&] {
          DualTraversePair(t, t.Left(x), y, prune, sep, base, count_visits);
        },
        [&] {
          DualTraversePair(t, t.Right(x), y, prune, sep, base, count_visits);
        });
  } else {
    DualTraversePair(t, t.Left(x), y, prune, sep, base, count_visits);
    DualTraversePair(t, t.Right(x), y, prune, sep, base, count_visits);
  }
}

template <int D, typename Prune, typename Sep, typename Base>
void DualTraverseRec(const KdTree<D>& t, uint32_t node, const Prune& prune,
                     const Sep& sep, const Base& base, bool count_visits) {
  if (t.IsLeaf(node)) return;
  if (t.NodeSize(node) >= kDualSeqCutoff) {
    ParDo(
        [&] {
          DualTraverseRec(t, t.Left(node), prune, sep, base, count_visits);
        },
        [&] {
          DualTraverseRec(t, t.Right(node), prune, sep, base, count_visits);
        });
  } else {
    DualTraverseRec(t, t.Left(node), prune, sep, base, count_visits);
    DualTraverseRec(t, t.Right(node), prune, sep, base, count_visits);
  }
  DualTraversePair(t, t.Left(node), t.Right(node), prune, sep, base,
                   count_visits);
}

}  // namespace internal

/// Parallel dual-tree traversal of the whole tree against itself: runs the
/// pruned dual descent on the two children of every internal node, which
/// considers every unordered pair of disjoint subtrees exactly once (the
/// WSPD recursion of Algorithm 1). Callbacks may run concurrently from
/// several workers and must be thread-safe:
///   prune(a, b) -> bool     skip this node pair and everything below it;
///   sep(a, b)   -> bool     the pair is well-separated — stop and report;
///   base(a, b, separated)   consume a finished pair (separated, or a pair
///                           of unsplittable duplicate leaves).
/// `count_visits` feeds Stats wspd_pairs_visited (off for bound-only sweeps
/// like GetRho so the metric keeps meaning "pairs enumerated").
template <int D, typename Prune, typename Sep, typename Base>
void DualTraverse(const KdTree<D>& t, const Prune& prune, const Sep& sep,
                  const Base& base, bool count_visits = true) {
  internal::DualTraverseRec(t, t.root(), prune, sep, base, count_visits);
}

/// Pruned dual descent from one node pair (same callbacks as DualTraverse).
template <int D, typename Prune, typename Sep, typename Base>
void DualTraverseFrom(const KdTree<D>& t, uint32_t a, uint32_t b,
                      const Prune& prune, const Sep& sep, const Base& base,
                      bool count_visits = true) {
  internal::DualTraversePair(t, a, b, prune, sep, base, count_visits);
}

/// Sequential pruned dual descent toward a minimum (the BCCP family):
///   prune(a, b) -> bool        subtree pair cannot improve the best;
///   priority(x, other) -> double   child visit order, lower first;
///   leaf_pair(a, b)            scan base case (both nodes are leaves).
/// The node with the larger diameter is split; its children are visited
/// closest-first so the best value tightens early and prunes the rest.
template <int D, typename Prune, typename Priority, typename LeafPair>
void DualMinTraverse(const KdTree<D>& t, uint32_t a, uint32_t b,
                     const Prune& prune, const Priority& priority,
                     const LeafPair& leaf_pair) {
  if (prune(a, b)) return;
  if (t.IsLeaf(a) && t.IsLeaf(b)) {
    leaf_pair(a, b);
    return;
  }
  bool split_a =
      !t.IsLeaf(a) && (t.IsLeaf(b) || t.Diameter(a) >= t.Diameter(b));
  uint32_t other = split_a ? b : a;
  uint32_t l = t.Left(split_a ? a : b);
  uint32_t r = l + 1;
  if (priority(r, other) < priority(l, other)) std::swap(l, r);
  DualMinTraverse(t, l, other, prune, priority, leaf_pair);
  DualMinTraverse(t, r, other, prune, priority, leaf_pair);
}

namespace internal {

template <int D, typename Priority, typename Prune, typename Leaf>
void SingleTraverseRec(const KdTree<D>& t, uint32_t node, double pri,
                       const Priority& priority, const Prune& prune,
                       const Leaf& leaf) {
  if (prune(node, pri)) return;
  if (t.IsLeaf(node)) {
    leaf(node);
    return;
  }
  uint32_t l = t.Left(node), r = t.Right(node);
  double pl = priority(l), pr = priority(r);
  if (pr < pl) {
    std::swap(l, r);
    std::swap(pl, pr);
  }
  SingleTraverseRec(t, l, pl, priority, prune, leaf);
  SingleTraverseRec(t, r, pr, priority, prune, leaf);
}

}  // namespace internal

/// Sequential pruned single-tree descent (the kNN family):
///   priority(v) -> double    visit order, lower first (e.g. min box dist);
///   prune(v, pri) -> bool    subtree cannot contribute (pri = priority(v));
///   leaf(v)                  scan base case.
/// Children are visited closest-first so the pruning bound tightens early.
/// Per-query traversals are sequential; callers parallelize across queries.
template <int D, typename Priority, typename Prune, typename Leaf>
void SingleTraverse(const KdTree<D>& t, const Priority& priority,
                    const Prune& prune, const Leaf& leaf,
                    uint32_t node = KdTree<D>::kRootNode) {
  internal::SingleTraverseRec(t, node, priority(node), priority, prune, leaf);
}

/// Invokes `fn(v)` on every leaf node — a flat scan over the arena, no
/// recursion. Leaves are visited in allocation order, not point order.
template <int D, typename Fn>
void ForEachLeaf(const KdTree<D>& t, Fn&& fn) {
  uint32_t count = t.node_count();
  for (uint32_t v = 0; v < count; ++v) {
    if (t.IsLeaf(v)) fn(v);
  }
}

}  // namespace parhc
