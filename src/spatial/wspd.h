// Well-separated pair decomposition (paper Section 2.3, Algorithm 1).
//
// The traversal follows Algorithm 1 exactly: WSPD(A) recurses on both
// children in parallel and calls FindPair on them; FindPair splits the node
// with the larger bounding-sphere diameter until the pair satisfies the
// separation criterion.
//
// Two separation criteria are provided:
//  * GeometricSeparation — the standard criterion with separation constant
//    s (s = 2 throughout the paper; Appendix C uses s = sqrt(8/rho)).
//  * HdbscanSeparation — the paper's new criterion (Section 3.2.2):
//    geometrically-separated OR mutually-unreachable, which terminates the
//    recursion earlier and yields asymptotically fewer pairs. Requires core
//    distances annotated on the tree.
#pragma once

#include <cstdint>
#include <vector>

#include "parallel/primitives.h"
#include "spatial/kdtree.h"
#include "util/stats.h"

namespace parhc {

/// Standard well-separation with separation constant `s` (Section 2.3).
template <int D>
struct GeometricSeparation {
  double s = 2.0;
  bool operator()(const typename KdTree<D>::Node& a,
                  const typename KdTree<D>::Node& b) const {
    return WellSeparated(a.box, b.box, s);
  }
};

/// HDBSCAN* well-separation (Section 3.2.2): the disjunction of
/// geometric separation   d(A,B) >= max(Adiam, Bdiam)
/// and mutual unreachability
///   max(d(A,B), cdmin(A), cdmin(B)) >= max(Adiam, Bdiam, cdmax(A), cdmax(B)).
template <int D>
struct HdbscanSeparation {
  bool operator()(const typename KdTree<D>::Node& a,
                  const typename KdTree<D>::Node& b) const {
    double d = SphereDistance(a.box, b.box);
    double max_diam = std::max(a.diameter, b.diameter);
    if (d >= max_diam) return true;  // geometrically separated
    double lhs = std::max({d, a.cd_min, b.cd_min});
    double rhs = std::max({max_diam, a.cd_max, b.cd_max});
    return lhs >= rhs;  // mutually unreachable
  }
};

/// A pair of k-d tree nodes produced by the decomposition.
template <int D>
struct WspdPair {
  typename KdTree<D>::Node* a;
  typename KdTree<D>::Node* b;
};

namespace internal {

constexpr uint32_t kWspdSeqCutoff = 1024;

template <int D, typename Sep, typename Visit>
void FindPair(typename KdTree<D>::Node* p, typename KdTree<D>::Node* pp,
              const Sep& sep, Visit& visit) {
  Stats::Get().wspd_pairs_visited.fetch_add(1, std::memory_order_relaxed);
  if (sep(*p, *pp)) {
    visit(p, pp);
    return;
  }
  // Split the node with the larger diameter (Algorithm 1 lines 8-9); a leaf
  // cannot split, so fall through to the other node.
  typename KdTree<D>::Node* a = p;
  typename KdTree<D>::Node* b = pp;
  if (a->diameter < b->diameter) std::swap(a, b);
  if (a->IsLeaf()) std::swap(a, b);
  if (a->IsLeaf()) {
    // Both leaves and unsplittable. With unit leaves this only occurs for
    // degenerate duplicate groups, which satisfy every separation criterion
    // (zero diameters); record the pair to keep the realization complete.
    visit(p, pp);
    return;
  }
  if (a->size() + b->size() >= kWspdSeqCutoff) {
    ParDo([&] { FindPair<D>(a->left, b, sep, visit); },
          [&] { FindPair<D>(a->right, b, sep, visit); });
  } else {
    FindPair<D>(a->left, b, sep, visit);
    FindPair<D>(a->right, b, sep, visit);
  }
}

template <int D, typename Sep, typename Visit>
void WspdRec(typename KdTree<D>::Node* node, const Sep& sep, Visit& visit) {
  if (node->IsLeaf()) return;
  if (node->size() >= kWspdSeqCutoff) {
    ParDo([&] { WspdRec<D>(node->left, sep, visit); },
          [&] { WspdRec<D>(node->right, sep, visit); });
  } else {
    WspdRec<D>(node->left, sep, visit);
    WspdRec<D>(node->right, sep, visit);
  }
  FindPair<D>(node->left, node->right, sep, visit);
}

}  // namespace internal

/// Runs the WSPD traversal, invoking `visit(Node* a, Node* b)` on every
/// well-separated pair. `visit` may run concurrently from several workers
/// and must be thread-safe.
template <int D, typename Sep, typename Visit>
void WspdTraverse(KdTree<D>& tree, const Sep& sep, Visit visit) {
  internal::WspdRec<D>(tree.root(), sep, visit);
}

/// Materializes the full decomposition as a vector of node pairs.
template <int D, typename Sep>
std::vector<WspdPair<D>> MaterializeWspd(KdTree<D>& tree, const Sep& sep) {
  std::vector<std::vector<WspdPair<D>>> local(NumWorkers());
  WspdTraverse(tree, sep,
               [&](typename KdTree<D>::Node* a, typename KdTree<D>::Node* b) {
                 local[Scheduler::Get().MyId()].push_back({a, b});
               });
  std::vector<WspdPair<D>> pairs = Flatten(local);
  auto& stats = Stats::Get();
  stats.wspd_pairs_materialized.fetch_add(pairs.size(),
                                          std::memory_order_relaxed);
  WriteMax(&stats.wspd_pairs_peak, static_cast<uint64_t>(pairs.size()));
  return pairs;
}

}  // namespace parhc
