// Well-separated pair decomposition (paper Section 2.3, Algorithm 1).
//
// The traversal is an instantiation of the shared dual-tree engine
// (spatial/traverse.h), which follows Algorithm 1 exactly: both children of
// every internal node are processed in parallel, and the pruned dual descent
// splits the node with the larger bounding-sphere diameter until the pair
// satisfies the separation criterion.
//
// Two separation criteria are provided:
//  * GeometricSeparation — the standard criterion with separation constant
//    s (s = 2 throughout the paper; Appendix C uses s = sqrt(8/rho)).
//  * HdbscanSeparation — the paper's new criterion (Section 3.2.2):
//    geometrically-separated OR mutually-unreachable, which terminates the
//    recursion earlier and yields asymptotically fewer pairs. Requires core
//    distances annotated on the tree.
#pragma once

#include <cstdint>
#include <vector>

#include "parallel/primitives.h"
#include "spatial/traverse.h"
#include "util/stats.h"

namespace parhc {

/// Standard well-separation with separation constant `s` (Section 2.3).
template <int D>
struct GeometricSeparation {
  double s = 2.0;
  bool operator()(const KdTree<D>& t, uint32_t a, uint32_t b) const {
    return WellSeparated(t.NodeBox(a), t.NodeBox(b), s);
  }
};

/// HDBSCAN* well-separation (Section 3.2.2): the disjunction of
/// geometric separation   d(A,B) >= max(Adiam, Bdiam)
/// and mutual unreachability
///   max(d(A,B), cdmin(A), cdmin(B)) >= max(Adiam, Bdiam, cdmax(A), cdmax(B)).
template <int D>
struct HdbscanSeparation {
  bool operator()(const KdTree<D>& t, uint32_t a, uint32_t b) const {
    double d = SphereDistance(t.NodeBox(a), t.NodeBox(b));
    double max_diam = std::max(t.Diameter(a), t.Diameter(b));
    if (d >= max_diam) return true;  // geometrically separated
    double lhs = std::max({d, t.CdMin(a), t.CdMin(b)});
    double rhs = std::max({max_diam, t.CdMax(a), t.CdMax(b)});
    return lhs >= rhs;  // mutually unreachable
  }
};

/// A pair of k-d tree nodes (arena indices) produced by the decomposition.
struct WspdPair {
  uint32_t a;
  uint32_t b;
};

/// Runs the WSPD traversal, invoking `visit(a, b)` on every well-separated
/// node pair. `visit` may run concurrently from several workers and must be
/// thread-safe. Degenerate pairs of unsplittable duplicate leaves are also
/// reported (they satisfy every criterion — zero diameters) to keep the
/// realization complete.
template <int D, typename Sep, typename Visit>
void WspdTraverse(const KdTree<D>& tree, const Sep& sep, Visit visit) {
  DualTraverse(
      tree, [](uint32_t, uint32_t) { return false; },
      [&](uint32_t a, uint32_t b) { return sep(tree, a, b); },
      [&](uint32_t a, uint32_t b, bool /*separated*/) { visit(a, b); });
}

/// Materializes the full decomposition as a vector of node pairs.
template <int D, typename Sep>
std::vector<WspdPair> MaterializeWspd(const KdTree<D>& tree, const Sep& sep) {
  std::vector<std::vector<WspdPair>> local(NumWorkers());
  WspdTraverse(tree, sep, [&](uint32_t a, uint32_t b) {
    local[Scheduler::Get().MyId()].push_back({a, b});
  });
  std::vector<WspdPair> pairs = Flatten(local);
  auto& stats = Stats::Get();
  stats.wspd_pairs_materialized.fetch_add(pairs.size(),
                                          std::memory_order_relaxed);
  WriteMax(&stats.wspd_pairs_peak, static_cast<uint64_t>(pairs.size()));
  return pairs;
}

}  // namespace parhc
