// k-nearest-neighbor queries over the k-d tree arena (paper Section 2.3).
//
// All-points kNN runs the per-point queries in parallel; each query keeps a
// bounded max-heap of the k best squared distances and descends through the
// shared single-tree engine, which prunes subtrees whose box cannot beat the
// current k-th best. Following the paper, a point is one of its own k
// nearest neighbors.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "geometry/distance.h"
#include "parallel/scheduler.h"
#include "spatial/traverse.h"

namespace parhc {

namespace internal {

/// Fixed-capacity max-heap of (squared distance, id) used by kNN queries.
class KnnHeap {
 public:
  KnnHeap(size_t k, std::pair<double, uint32_t>* storage)
      : k_(k), heap_(storage) {}

  double Worst() const {
    return size_ < k_ ? std::numeric_limits<double>::infinity()
                      : heap_[0].first;
  }

  void Offer(double sqdist, uint32_t id) {
    if (size_ < k_) {
      heap_[size_++] = {sqdist, id};
      std::push_heap(heap_, heap_ + size_);
    } else if (sqdist < heap_[0].first) {
      std::pop_heap(heap_, heap_ + size_);
      heap_[size_ - 1] = {sqdist, id};
      std::push_heap(heap_, heap_ + size_);
    }
  }

  size_t size() const { return size_; }
  const std::pair<double, uint32_t>* data() const { return heap_; }
  std::pair<double, uint32_t>* data() { return heap_; }

 private:
  size_t k_;
  size_t size_ = 0;
  std::pair<double, uint32_t>* heap_;
};

template <int D>
void KnnQueryInto(const KdTree<D>& tree, const Point<D>& q, KnnHeap& heap) {
  SingleTraverse(
      tree,
      [&](uint32_t v) {
        return BoxMinSquaredDistanceDispatch(tree.NodeBox(v), q);
      },
      [&](uint32_t, double pri) { return pri >= heap.Worst(); },
      [&](uint32_t v) {
        // Leaf points are contiguous in tree order, so the scan is a
        // point-to-block kernel call staged through a stack buffer
        // (chunked: duplicate leaves can exceed leaf_size).
        double sq[kDistanceBatch];
        for (uint32_t j0 = tree.NodeBegin(v); j0 < tree.NodeEnd(v);
             j0 += static_cast<uint32_t>(kDistanceBatch)) {
          size_t cnt = std::min<size_t>(kDistanceBatch, tree.NodeEnd(v) - j0);
          BatchSquaredDistances(q, &tree.point(j0), cnt, sq);
          for (size_t c = 0; c < cnt; ++c) {
            heap.Offer(sq[c], tree.id(j0 + static_cast<uint32_t>(c)));
          }
        }
      });
}

}  // namespace internal

/// k nearest neighbors of `q` (by original point id), sorted by distance.
/// Includes the query point itself if `q` is in the tree.
template <int D>
std::vector<std::pair<double, uint32_t>> KnnQuery(const KdTree<D>& tree,
                                                  const Point<D>& q,
                                                  size_t k) {
  std::vector<std::pair<double, uint32_t>> buf(k);
  internal::KnnHeap heap(k, buf.data());
  internal::KnnQueryInto(tree, q, heap);
  buf.resize(heap.size());
  std::sort(buf.begin(), buf.end());
  for (auto& e : buf) e.first = std::sqrt(e.first);
  return buf;
}

namespace internal {

/// Runs the all-points kNN queries in parallel, handing each query a
/// per-worker scratch heap (allocated once per worker, not per point) and
/// the filled heap to `consume(tree_idx, heap)`. The query body issues no
/// nested parallel work, so one scratch buffer per worker is race-free.
template <int D, typename ConsumeFn>
void AllKnnQueries(const KdTree<D>& tree, size_t k, ConsumeFn consume) {
  size_t n = tree.size();
  PARHC_CHECK_MSG(k >= 1 && k <= n, "k out of range");
  std::vector<std::vector<std::pair<double, uint32_t>>> scratch(NumWorkers());
  ParallelFor(0, n, [&](size_t i) {
    auto& buf = scratch[Scheduler::Get().MyId()];
    if (buf.size() < k) buf.resize(k);
    KnnHeap heap(k, buf.data());
    KnnQueryInto(tree, tree.point(static_cast<uint32_t>(i)), heap);
    PARHC_DCHECK(heap.size() == k);
    consume(static_cast<uint32_t>(i), heap);
  });
}

}  // namespace internal

/// Distance from every point to its k-th nearest neighbor (including
/// itself), indexed by original point id — the core distance cd(p) for
/// k = minPts (Section 2.1). O(k n log n) work, O(log n) depth.
template <int D>
std::vector<double> KthNeighborDistances(const KdTree<D>& tree, size_t k) {
  std::vector<double> out(tree.size());
  internal::AllKnnQueries(tree, k, [&](uint32_t ti, internal::KnnHeap& heap) {
    out[tree.id(ti)] = std::sqrt(heap.Worst());
  });
  return out;
}

/// Sorted distances from every point to each of its k nearest neighbors
/// (including itself): row p — `out[p*k .. p*k+k)`, indexed by original
/// point id — holds the 1st..k-th neighbor distances in ascending order.
/// Row prefix j of this matrix is exactly KthNeighborDistances(tree, j) for
/// every j <= k (bit-identical: both take the square root of the exact
/// j-th smallest squared distance), which is what lets the clustering
/// engine derive core distances for any minPts <= k from one kNN pass.
template <int D>
std::vector<double> AllKnnDistances(const KdTree<D>& tree, size_t k) {
  std::vector<double> out(tree.size() * k);
  internal::AllKnnQueries(tree, k, [&](uint32_t ti, internal::KnnHeap& heap) {
    std::pair<double, uint32_t>* row = heap.data();
    std::sort(row, row + k);
    double* dst = out.data() + static_cast<size_t>(tree.id(ti)) * k;
    for (size_t j = 0; j < k; ++j) dst[j] = std::sqrt(row[j].first);
  });
  return out;
}

}  // namespace parhc
