// k-nearest-neighbor queries over the k-d tree arena (paper Section 2.3).
//
// All-points kNN runs the per-point queries in parallel; each query keeps a
// bounded max-heap of the k best squared distances and descends through the
// shared single-tree engine, which prunes subtrees whose box cannot beat the
// current k-th best. Following the paper, a point is one of its own k
// nearest neighbors.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "spatial/traverse.h"

namespace parhc {

namespace internal {

/// Fixed-capacity max-heap of (squared distance, id) used by kNN queries.
class KnnHeap {
 public:
  KnnHeap(size_t k, std::pair<double, uint32_t>* storage)
      : k_(k), heap_(storage) {}

  double Worst() const {
    return size_ < k_ ? std::numeric_limits<double>::infinity()
                      : heap_[0].first;
  }

  void Offer(double sqdist, uint32_t id) {
    if (size_ < k_) {
      heap_[size_++] = {sqdist, id};
      std::push_heap(heap_, heap_ + size_);
    } else if (sqdist < heap_[0].first) {
      std::pop_heap(heap_, heap_ + size_);
      heap_[size_ - 1] = {sqdist, id};
      std::push_heap(heap_, heap_ + size_);
    }
  }

  size_t size() const { return size_; }
  const std::pair<double, uint32_t>* data() const { return heap_; }

 private:
  size_t k_;
  size_t size_ = 0;
  std::pair<double, uint32_t>* heap_;
};

template <int D>
void KnnQueryInto(const KdTree<D>& tree, const Point<D>& q, KnnHeap& heap) {
  SingleTraverse(
      tree,
      [&](uint32_t v) { return tree.NodeBox(v).MinSquaredDistance(q); },
      [&](uint32_t, double pri) { return pri >= heap.Worst(); },
      [&](uint32_t v) {
        for (uint32_t i = tree.NodeBegin(v); i < tree.NodeEnd(v); ++i) {
          heap.Offer(SquaredDistance(q, tree.point(i)), tree.id(i));
        }
      });
}

}  // namespace internal

/// k nearest neighbors of `q` (by original point id), sorted by distance.
/// Includes the query point itself if `q` is in the tree.
template <int D>
std::vector<std::pair<double, uint32_t>> KnnQuery(const KdTree<D>& tree,
                                                  const Point<D>& q,
                                                  size_t k) {
  std::vector<std::pair<double, uint32_t>> buf(k);
  internal::KnnHeap heap(k, buf.data());
  internal::KnnQueryInto(tree, q, heap);
  buf.resize(heap.size());
  std::sort(buf.begin(), buf.end());
  for (auto& e : buf) e.first = std::sqrt(e.first);
  return buf;
}

/// Distance from every point to its k-th nearest neighbor (including
/// itself), indexed by original point id — the core distance cd(p) for
/// k = minPts (Section 2.1). O(k n log n) work, O(log n) depth.
template <int D>
std::vector<double> KthNeighborDistances(const KdTree<D>& tree, size_t k) {
  size_t n = tree.size();
  PARHC_CHECK_MSG(k >= 1 && k <= n, "k out of range");
  std::vector<double> out(n);
  ParallelFor(0, n, [&](size_t i) {
    uint32_t ti = static_cast<uint32_t>(i);
    std::pair<double, uint32_t> buf_small[64];
    std::vector<std::pair<double, uint32_t>> buf_big;
    std::pair<double, uint32_t>* storage = buf_small;
    if (k > 64) {
      buf_big.resize(k);
      storage = buf_big.data();
    }
    internal::KnnHeap heap(k, storage);
    internal::KnnQueryInto(tree, tree.point(ti), heap);
    PARHC_DCHECK(heap.size() == k);
    out[tree.id(ti)] = std::sqrt(heap.Worst());
  });
  return out;
}

}  // namespace parhc
