// BuildExecutor: the engine's parallel artifact-build admission layer.
//
// Every artifact build, mutation, snapshot task, and external parallel job
// (the server's `gen` verb) runs through RunBuild, which (1) bounds how
// many builds run concurrently, and (2) runs each admitted build inside a
// TaskArena worker group sized total_workers / active_builds, so one cold
// build uses the whole machine while N concurrent builds split it fairly.
// Group isolation keeps each build's ParallelFor semantics — and therefore
// its results — bit-identical to a dedicated scheduler of the group size,
// and identical across group sizes (the library's algorithms are
// deterministic per input; see README "Determinism").
//
// The concurrency bound is max(2, total workers): at least two builds may
// always overlap (so independent datasets make progress side by side even
// on small machines), and never more groups than workers exist.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>

#include "obs/trace.h"
#include "parallel/scheduler.h"

namespace parhc {

/// What one RunBuild call observed at admission: how long it waited for a
/// build slot and the worker-group size it was granted. Feeds the
/// slow-query log's build-profiler records (obs/slowlog.h).
struct BuildAdmission {
  uint64_t wait_us = 0;
  int group = 0;
};

/// Point-in-time copy of the executor's gauges and counters. Gauges
/// (active/queued) are instantaneous; counters are cumulative.
struct ExecutorStatsSnapshot {
  int workers = 1;                ///< scheduler pool size
  uint64_t concurrent_builds = 0; ///< builds running right now
  uint64_t build_queue_depth = 0; ///< builds waiting for admission
  uint64_t builds_total = 0;      ///< RunBuild calls admitted so far
  uint64_t peak_concurrent = 0;   ///< max concurrent_builds ever observed
  int last_group_size = 0;        ///< worker-group size of the last build

  /// Space-separated key=value rendering (stable field order) used by the
  /// serving layer's `stats` verb.
  std::string Format() const {
    std::string s;
    auto kv = [&s](const char* k, uint64_t v) {
      s += ' ';
      s += k;
      s += '=';
      s += std::to_string(v);
    };
    kv("workers", static_cast<uint64_t>(workers));
    kv("concurrent_builds", concurrent_builds);
    kv("build_queue_depth", build_queue_depth);
    kv("builds_total", builds_total);
    kv("peak_builds", peak_concurrent);
    kv("last_group_size", static_cast<uint64_t>(last_group_size));
    return s.substr(1);
  }
};

class BuildExecutor {
 public:
  /// Runs `fn` inside a worker group and returns its result. Blocks for
  /// admission while max-concurrency is reached; exceptions propagate to
  /// the caller (the slot is released either way). When `admission` is
  /// non-null it receives the observed admission wait and group size
  /// (build-profiler input). `fn` executes on the *calling* thread inside
  /// the arena, so the caller's thread-local trace context propagates into
  /// the build's spans.
  template <typename F>
  auto RunBuild(F&& fn, BuildAdmission* admission = nullptr)
      -> decltype(fn()) {
    int total = Scheduler::Get().total_workers();
    int max_concurrent = std::max(2, total);
    int group;
    {
      obs::Span admit_span("executor:admit", "engine");
      auto wait_begin = std::chrono::steady_clock::now();
      std::unique_lock<std::mutex> lk(mu_);
      ++queued_;
      cv_.wait(lk, [&] { return active_ < max_concurrent; });
      --queued_;
      ++active_;
      peak_ = std::max(peak_, active_);
      ++builds_total_;
      // Split the pool fairly among the builds currently running; a lone
      // build gets every worker.
      group = std::clamp(total / active_, 1, total);
      last_group_ = group;
      if (admission != nullptr) {
        admission->wait_us = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - wait_begin)
                .count());
        admission->group = group;
      }
    }
    struct Release {
      BuildExecutor* e;
      ~Release() {
        {
          std::lock_guard<std::mutex> lk(e->mu_);
          --e->active_;
        }
        e->cv_.notify_one();
      }
    } release{this};
    obs::Span run_span("executor:run", "engine");
    TaskArena arena(group);
    using R = decltype(fn());
    if constexpr (std::is_void_v<R>) {
      arena.Execute([&] { fn(); });
    } else {
      std::optional<R> result;
      arena.Execute([&] { result.emplace(fn()); });
      return std::move(*result);
    }
  }

  ExecutorStatsSnapshot stats() const {
    ExecutorStatsSnapshot s;
    s.workers = Scheduler::Get().total_workers();
    std::lock_guard<std::mutex> lk(mu_);
    s.concurrent_builds = static_cast<uint64_t>(active_);
    s.build_queue_depth = static_cast<uint64_t>(queued_);
    s.builds_total = builds_total_;
    s.peak_concurrent = static_cast<uint64_t>(peak_);
    s.last_group_size = last_group_;
    return s;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int active_ = 0;
  int queued_ = 0;
  int peak_ = 0;
  int last_group_ = 0;
  uint64_t builds_total_ = 0;
};

}  // namespace parhc
