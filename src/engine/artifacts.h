// Per-dataset artifact cache: the memoized pipeline DAG of the clustering
// engine.
//
//              points
//                |
//              kd-tree ------------------+
//                |                       |
//          kNN prefixes @K             EMST  -->  single-linkage dendrogram
//                |                       |              |
//         core distances @m           weight        k-clusters labels
//                |
//     mutual-reachability MST @m
//                |
//          dendrogram @m
//           /    |     \
//   DBSCAN*@eps  reach  stable clusters
//
// Every node is built at most once per parameterization and reused by later
// queries. The key reuse rule (the engine's algorithmic win): the kNN
// prefix matrix is kept at K = the largest minPts seen, and the core
// distances for any m <= K are the m-th column of that matrix —
// bit-identical to a direct CoreDistances(tree, m) pass, because both are
// the square root of the exact m-th smallest squared neighbor distance. A
// minPts sweep therefore costs one kNN pass plus per-m MST + dendrogram
// rebuilds, and eps / min-cluster-size / reachability queries at an
// already-seen minPts touch only the cached dendrogram.
//
// Invalidation (two backends, one model):
//  * This file is the *immutable* backend: datasets never change, so
//    artifacts never go stale. Growing K rebuilds only the prefix matrix;
//    derived artifacts keep their values (prefixes of a longer sorted
//    neighbor list are unchanged). Per-minPts clusterings are LRU-capped
//    (kMaxCachedClusterings) to bound memory; eviction is safe because
//    responses hold shared_ptr snapshots. Removing or replacing a dataset
//    drops the whole cache.
//  * The *mutable* backend (dynamic/artifacts.h) stores points as an LSM
//    shard forest and splits every artifact into a shard-local part (keyed
//    by shard content id: per-shard trees and EMSTs survive any mutation
//    that leaves their shard untouched), a cross-shard part (per shard
//    pair, invalidated exactly when either side's content changes), and a
//    forest-global part (keyed by the forest mutation epoch: the merged
//    kNN rows, the global Kruskal result, dendrograms). An insert
//    therefore dirties only the new shard's artifacts, the cross edges
//    that mention it, and the global tier — never surviving shard
//    artifacts.
//
// Thread safety: none here. The engine front-end (engine.h) serializes
// builders and lets read-only answers run concurrently; Answer(allow_build
// = false) is the read-only path and touches no mutable state except the
// atomic LRU clock.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dendrogram/cluster_extraction.h"
#include "dendrogram/reachability.h"
#include "emst/emst_memogfk.h"
#include "engine/artifact_util.h"
#include "engine/request.h"
#include "hdbscan/hdbscan_mst.h"
#include "hdbscan/stability.h"
#include "spatial/knn.h"
#include "store/artifact_io.h"
#include "store/manifest.h"
#include "store/mapped_array.h"

namespace parhc {

template <int D>
class DatasetArtifacts {
 public:
  explicit DatasetArtifacts(std::vector<Point<D>> pts)
      : pts_(std::move(pts)) {}

  /// Empty shell for LoadFrom (the snapshot store's two-phase
  /// construction); not a valid dataset until LoadFrom succeeds.
  DatasetArtifacts() = default;

  size_t num_points() const { return pts_.size(); }
  /// K of the cached kNN prefix matrix (0 when no kNN pass has run).
  size_t knn_k() const { return knn_k_; }
  size_t num_cached_clusterings() const { return hdbscan_.size(); }

  /// Answers `req` into `out`, building missing artifacts when
  /// `allow_build`. Returns false iff an artifact was missing and building
  /// was not allowed (the caller should retry holding the build lock);
  /// invalid requests return true with out->ok == false.
  bool Answer(const EngineRequest& req, bool allow_build,
              EngineResponse* out) {
    switch (req.type) {
      case QueryType::kEmst:
      case QueryType::kSingleLinkage:
        return AnswerEmstFamily(req, allow_build, out);
      case QueryType::kHdbscan:
      case QueryType::kDbscanStarAt:
      case QueryType::kReachability:
      case QueryType::kStableClusters:
        return AnswerHdbscanFamily(req, allow_build, out);
    }
    out->error = "unknown query type";
    return true;
  }

  /// Writes every cached artifact plus the manifest into `dir` (created
  /// if needed). Read-only: safe under the engine's shared (reader) lock,
  /// concurrently with cache-hit queries. Raises SnapshotError subtypes.
  void SaveTo(const std::string& dir) const {
    EnsureDatasetDir(dir);
    StaticManifest m;
    m.dim = D;
    m.n = pts_.size();
    m.points_file = PointsFileName();
    SavePointsSnapshot<D>(dir + "/" + m.points_file, pts_);
    if (tree_) {
      m.tree_file = TreeFileName();
      SaveKdTreeSnapshot<D>(dir + "/" + m.tree_file, *tree_);
    }
    if (knn_k_ > 0) {
      m.knn_file = KnnFileName();
      m.knn_k = knn_k_;
      SaveMatrixSnapshot(dir + "/" + m.knn_file, D, pts_.size(), knn_k_,
                         knn_prefix_.data());
    }
    if (emst_.mst) {
      m.emst_file = EmstFileName();
      SaveEdgesSnapshot(dir + "/" + m.emst_file, *emst_.mst, /*param=*/0);
      if (emst_.dendrogram) {
        m.sl_dendro_file = SlDendroFileName();
        SaveDendrogramSnapshot(dir + "/" + m.sl_dendro_file,
                               *emst_.dendrogram, /*param=*/0);
      }
    }
    for (const auto& [min_pts, entry] : hdbscan_) {
      ClusteringManifestEntry c;
      c.min_pts = static_cast<uint32_t>(min_pts);
      c.mst_file = MstFileName(min_pts);
      SaveEdgesSnapshot(dir + "/" + c.mst_file, *entry->mst, min_pts);
      if (entry->dendrogram) {
        c.has_dendrogram = true;
        c.dendro_file = DendroFileName(min_pts);
        SaveDendrogramSnapshot(dir + "/" + c.dendro_file, *entry->dendrogram,
                               min_pts);
      }
      m.clusterings.push_back(std::move(c));
    }
    WriteStaticManifest(dir + "/" + kManifestFileName, m);
  }

  /// Populates this default-constructed instance from a directory written
  /// by SaveTo: the kd-tree arena and kNN prefix matrix come back as
  /// zero-copy views of the mapped files; per-minPts core distances
  /// re-derive from the prefix columns (bit-identical, see the DAG notes
  /// above). Raises SnapshotError subtypes; discard the instance on throw.
  void LoadFrom(const std::string& dir) {
    StaticManifest m = ReadStaticManifest(dir + "/" + kManifestFileName);
    if (m.dim != D) {
      throw SnapshotSchemaError(dir + ": manifest dimension " +
                                std::to_string(m.dim) + ", expected " +
                                std::to_string(D));
    }
    if (m.n < 1) throw SnapshotSchemaError(dir + ": empty dataset");
    pts_ = LoadPointsSnapshot<D>(dir + "/" + m.points_file);
    if (pts_.size() != m.n) {
      throw SnapshotSchemaError(dir + ": point count disagrees with manifest");
    }
    if (!m.tree_file.empty()) {
      tree_ = LoadKdTreeSnapshot<D>(dir + "/" + m.tree_file);
      if (tree_->size() != pts_.size()) {
        throw SnapshotSchemaError(dir + ": tree size disagrees with manifest");
      }
    }
    if (!m.knn_file.empty()) {
      LoadedMatrix mat = LoadMatrixSnapshot(dir + "/" + m.knn_file, D);
      if (mat.n != m.n || mat.k != m.knn_k) {
        throw SnapshotSchemaError(dir +
                                  ": kNN matrix disagrees with manifest");
      }
      knn_prefix_ = MappedArray<double>(mat.data, mat.keepalive);
      knn_k_ = mat.k;
    }
    if (!m.emst_file.empty()) {
      std::vector<WeightedEdge> edges =
          LoadEdgesSnapshot(dir + "/" + m.emst_file, /*param=*/0, m.n);
      if (edges.size() + 1 != m.n) {
        throw SnapshotSchemaError(dir + ": EMST edge count mismatch");
      }
      emst_.mst_weight = TotalWeight(edges);
      emst_.mst = std::make_shared<const std::vector<WeightedEdge>>(
          std::move(edges));
      if (!m.sl_dendro_file.empty()) {
        emst_.dendrogram = LoadDendrogramSnapshot(
            dir + "/" + m.sl_dendro_file, /*param=*/0, m.n);
      }
    }
    EngineResponse scratch;  // loads do not report artifact traces
    for (const ClusteringManifestEntry& c : m.clusterings) {
      if (c.min_pts < 1 || c.min_pts > knn_k_) {
        // Core distances re-derive from the prefix matrix, so a cached
        // clustering without kNN coverage cannot have been written by
        // SaveTo.
        throw SnapshotSchemaError(dir + ": clustering@" +
                                  std::to_string(c.min_pts) +
                                  " lacks kNN prefix coverage");
      }
      auto entry = std::make_unique<HdbscanEntry>();
      entry->core_dist =
          CoreDist(static_cast<int>(c.min_pts), /*allow_build=*/true,
                   &scratch);
      std::vector<WeightedEdge> edges = LoadEdgesSnapshot(
          dir + "/" + c.mst_file, c.min_pts, m.n);
      if (edges.size() + 1 != m.n) {
        throw SnapshotSchemaError(dir + ": MR-MST edge count mismatch at " +
                                  std::to_string(c.min_pts));
      }
      entry->mst_weight = TotalWeight(edges);
      entry->mst = std::make_shared<const std::vector<WeightedEdge>>(
          std::move(edges));
      if (c.has_dendrogram) {
        entry->dendrogram = LoadDendrogramSnapshot(
            dir + "/" + c.dendro_file, c.min_pts, m.n);
      }
      TouchClusteringEntry(*entry, clock_);
      hdbscan_.emplace(static_cast<int>(c.min_pts), std::move(entry));
    }
  }

 private:
  using HdbscanEntry = ClusteringEntry;

  struct EmstEntry {
    std::shared_ptr<const std::vector<WeightedEdge>> mst;
    double mst_weight = 0;
    std::shared_ptr<const Dendrogram> dendrogram;  ///< single-linkage
  };

  void Touch(HdbscanEntry& e) { TouchClusteringEntry(e, clock_); }

  static void Trace(EngineResponse* out, bool built, const std::string& key) {
    TraceArtifact(out, built, key);
  }

  static double TotalWeight(const std::vector<WeightedEdge>& edges) {
    return TotalEdgeWeight(edges);
  }

  std::shared_ptr<const Dendrogram> BuildDendro(
      const std::vector<WeightedEdge>& edges) const {
    return BuildDendrogramArtifact(pts_.size(), edges);
  }

  KdTree<D>* Tree(bool allow_build, EngineResponse* out) {
    if (!tree_) {
      if (!allow_build) return nullptr;
      tree_ = std::make_unique<KdTree<D>>(pts_, /*leaf_size=*/1);
      Trace(out, /*built=*/true, "tree");
    } else {
      Trace(out, /*built=*/false, "tree");
    }
    return tree_.get();
  }

  /// kNN prefix matrix covering at least k columns (grows to the max
  /// seen). Owned when built in RAM, a zero-copy mapped view after a
  /// snapshot load; growing K past a loaded width rebuilds an owned copy.
  const MappedArray<double>* Prefixes(size_t k, bool allow_build,
                                      EngineResponse* out) {
    if (knn_k_ < k) {
      if (!allow_build) return nullptr;
      KdTree<D>* tree = Tree(allow_build, out);
      knn_prefix_ = AllKnnDistances(*tree, k);
      knn_k_ = k;
      Trace(out, /*built=*/true, "knn@" + std::to_string(k));
    } else {
      Trace(out, /*built=*/false, "knn@" + std::to_string(knn_k_));
    }
    return &knn_prefix_;
  }

  /// Core distances for min_pts, derived from the prefix matrix column.
  std::shared_ptr<const std::vector<double>> CoreDist(int min_pts,
                                                      bool allow_build,
                                                      EngineResponse* out) {
    const std::string key = "cd@" + std::to_string(min_pts);
    auto it = core_.find(min_pts);
    if (it != core_.end()) {
      Trace(out, /*built=*/false, key);
      return it->second;
    }
    if (!allow_build) return nullptr;
    const MappedArray<double>* prefix =
        Prefixes(static_cast<size_t>(min_pts), allow_build, out);
    size_t n = pts_.size();
    size_t stride = knn_k_;
    auto cd = std::make_shared<std::vector<double>>(n);
    ParallelFor(0, n, [&](size_t i) {
      (*cd)[i] = (*prefix)[i * stride + (min_pts - 1)];
    });
    core_.emplace(min_pts, cd);
    Trace(out, /*built=*/true, key);
    return cd;
  }

  /// The per-minPts clustering entry, with the MST (always) and the
  /// dendrogram / reachability plot (on demand) filled in.
  HdbscanEntry* Hdbscan(int min_pts, bool need_dendro, bool need_plot,
                        bool allow_build, EngineResponse* out) {
    const std::string suffix = "@" + std::to_string(min_pts);
    auto it = hdbscan_.find(min_pts);
    if (it == hdbscan_.end()) {
      if (!allow_build) return nullptr;
      auto cd = CoreDist(min_pts, allow_build, out);
      KdTree<D>* tree = Tree(allow_build, out);
      auto entry = std::make_unique<HdbscanEntry>();
      entry->core_dist = cd;
      entry->mst = std::make_shared<const std::vector<WeightedEdge>>(
          HdbscanMstOnTree(*tree, *cd));
      entry->mst_weight = TotalWeight(*entry->mst);
      Trace(out, /*built=*/true, "mst" + suffix);
      it = hdbscan_.emplace(min_pts, std::move(entry)).first;
      EvictLru(min_pts);
    } else {
      Trace(out, /*built=*/false, "mst" + suffix);
    }
    HdbscanEntry& e = *it->second;
    if (need_dendro || need_plot) {
      if (!e.dendrogram) {
        if (!allow_build) return nullptr;
        e.dendrogram = BuildDendro(*e.mst);
        Trace(out, /*built=*/true, "dendro" + suffix);
      } else {
        Trace(out, /*built=*/false, "dendro" + suffix);
      }
    }
    if (need_plot) {
      if (!e.plot) {
        if (!allow_build) return nullptr;
        e.plot = std::make_shared<const ReachabilityPlot>(
            ComputeReachability(*e.dendrogram));
        Trace(out, /*built=*/true, "reach" + suffix);
      } else {
        Trace(out, /*built=*/false, "reach" + suffix);
      }
    }
    Touch(e);
    return &e;
  }

  void EvictLru(int keep_min_pts) {
    EvictLruClusterings(hdbscan_, core_, keep_min_pts);
  }

  EmstEntry* Emst(bool need_dendro, bool allow_build, EngineResponse* out) {
    if (!emst_.mst) {
      if (!allow_build) return nullptr;
      KdTree<D>* tree = Tree(allow_build, out);
      emst_.mst = std::make_shared<const std::vector<WeightedEdge>>(
          EmstMemoGfkOnTree(*tree));
      emst_.mst_weight = TotalWeight(*emst_.mst);
      Trace(out, /*built=*/true, "emst");
    } else {
      Trace(out, /*built=*/false, "emst");
    }
    if (need_dendro) {
      if (!emst_.dendrogram) {
        if (!allow_build) return nullptr;
        emst_.dendrogram = BuildDendro(*emst_.mst);
        Trace(out, /*built=*/true, "sl-dendro");
      } else {
        Trace(out, /*built=*/false, "sl-dendro");
      }
    }
    return &emst_;
  }

  bool AnswerEmstFamily(const EngineRequest& req, bool allow_build,
                        EngineResponse* out) {
    bool need_dendro = req.type == QueryType::kSingleLinkage;
    if (need_dendro && (req.k < 1 || req.k > pts_.size())) {
      out->error = "k must be in [1, n]";
      return true;
    }
    EmstEntry* e = Emst(need_dendro, allow_build, out);
    if (!e) return false;
    out->mst = e->mst;
    out->mst_weight = e->mst_weight;
    if (need_dendro) {
      out->dendrogram = e->dendrogram;
      out->labels = KClusters(*e->dendrogram, req.k);
      SummarizeLabels(out->labels, out);
    }
    out->ok = true;
    return true;
  }

  bool AnswerHdbscanFamily(const EngineRequest& req, bool allow_build,
                           EngineResponse* out) {
    if (req.min_pts < 1 ||
        static_cast<size_t>(req.min_pts) > pts_.size()) {
      out->error = "min_pts must be in [1, n]";
      return true;
    }
    if (req.type == QueryType::kStableClusters && req.min_cluster_size < 2) {
      out->error = "min_cluster_size must be >= 2";
      return true;
    }
    bool need_plot = req.type == QueryType::kReachability;
    bool need_dendro = true;
    HdbscanEntry* e =
        Hdbscan(req.min_pts, need_dendro, need_plot, allow_build, out);
    if (!e) return false;
    out->core_dist = e->core_dist;
    switch (req.type) {
      case QueryType::kHdbscan:
        out->mst = e->mst;
        out->mst_weight = e->mst_weight;
        out->dendrogram = e->dendrogram;
        break;
      case QueryType::kDbscanStarAt:
        out->labels = DbscanStarLabels(*e->dendrogram, *e->core_dist, req.eps);
        SummarizeLabels(out->labels, out);
        break;
      case QueryType::kReachability:
        out->plot = e->plot;
        break;
      case QueryType::kStableClusters: {
        StabilityClusters sc =
            ExtractStableClusters(*e->dendrogram, req.min_cluster_size);
        out->labels = std::move(sc.label);
        out->stability = std::move(sc.stability);
        SummarizeLabels(out->labels, out);
        break;
      }
      default:
        break;
    }
    out->ok = true;
    return true;
  }

  std::vector<Point<D>> pts_;
  std::unique_ptr<KdTree<D>> tree_;
  size_t knn_k_ = 0;
  MappedArray<double> knn_prefix_;  ///< n x knn_k_, row-major by point id
  std::map<int, std::shared_ptr<const std::vector<double>>> core_;
  std::map<int, std::unique_ptr<HdbscanEntry>> hdbscan_;
  EmstEntry emst_;
  std::atomic<uint64_t> clock_{0};
};

}  // namespace parhc
