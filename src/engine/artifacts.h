// Per-dataset artifact cache: the memoized pipeline DAG of the clustering
// engine.
//
//              points
//                |
//              kd-tree ------------------+
//                |                       |
//          kNN prefixes @K             EMST  -->  single-linkage dendrogram
//                |                       |              |
//         core distances @m           weight        k-clusters labels
//                |
//     mutual-reachability MST @m
//                |
//          dendrogram @m
//           /    |     \
//   DBSCAN*@eps  reach  stable clusters
//
// Every node is built at most once per parameterization and reused by later
// queries. The key reuse rule (the engine's algorithmic win): the kNN
// prefix matrix is kept at K = the largest minPts seen, and the core
// distances for any m <= K are the m-th column of that matrix —
// bit-identical to a direct CoreDistances(tree, m) pass, because both are
// the square root of the exact m-th smallest squared neighbor distance. A
// minPts sweep therefore costs one kNN pass plus per-m MST + dendrogram
// rebuilds, and eps / min-cluster-size / reachability queries at an
// already-seen minPts touch only the cached dendrogram.
//
// Invalidation (two backends, one model):
//  * This file is the *immutable* backend: datasets never change, so
//    artifacts never go stale. Growing K installs a wider prefix matrix
//    (versioned behind a shared_ptr; readers of the old width finish on
//    their snapshot); derived artifacts keep their values (prefixes of a
//    longer sorted neighbor list are unchanged). Per-minPts clusterings
//    are LRU-capped (kMaxCachedClusterings) to bound memory; eviction is
//    safe because responses hold shared_ptr snapshots. Removing or
//    replacing a dataset drops the whole cache.
//  * The *mutable* backend (dynamic/artifacts.h) stores points as an LSM
//    shard forest and splits every artifact into a shard-local part (keyed
//    by shard content id: per-shard trees and EMSTs survive any mutation
//    that leaves their shard untouched), a cross-shard part (per shard
//    pair, invalidated exactly when either side's content changes), and a
//    forest-global part (keyed by the forest mutation epoch: the merged
//    kNN rows, the global Kruskal result, dendrograms). An insert
//    therefore dirties only the new shard's artifacts, the cross edges
//    that mention it, and the global tier — never surviving shard
//    artifacts.
//
// Thread safety (this backend only; the dynamic backend relies on the
// engine's exclusive lock): every DAG node is a monitor-guarded state
// machine absent -> building -> ready. A builder claims the node's
// building flag under `state_mu_`, runs the (possibly long, parallel)
// build OUTSIDE the lock, installs the result, and broadcasts
// `state_cv_`. Duplicate requests for the same node wait on the condition
// variable and come back with the builder's shared_ptr — exactly one
// build ever runs per node. Independent nodes (different datasets'
// artifacts trivially, and e.g. dendro@3 vs mst@5 of one dataset) build
// concurrently. The one cross-node constraint: MST-family builds
// (HdbscanMstOnTree / EmstMemoGfkOnTree) rewrite the kd-tree's annotation
// arrays (core-distance + component fields), so they serialize on
// `tree_annot_mu_`; kNN search and snapshot writes read only the tree's
// geometry and proceed concurrently. Answer(allow_build = false) is the
// read-only path: it never blocks on a build (a node mid-build reads as
// absent) and touches no mutable state beyond brief `state_mu_` critical
// sections and the atomic LRU clock.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dendrogram/cluster_extraction.h"
#include "dendrogram/reachability.h"
#include "emst/emst_highdim.h"
#include "emst/emst_memogfk.h"
#include "engine/artifact_util.h"
#include "engine/request.h"
#include "hdbscan/hdbscan_mst.h"
#include "hdbscan/stability.h"
#include "obs/trace.h"
#include "spatial/knn.h"
#include "store/artifact_io.h"
#include "store/manifest.h"
#include "store/mapped_array.h"

namespace parhc {

template <int D>
class DatasetArtifacts {
 public:
  explicit DatasetArtifacts(std::vector<Point<D>> pts)
      : pts_(std::move(pts)) {}

  /// Empty shell for LoadFrom (the snapshot store's two-phase
  /// construction); not a valid dataset until LoadFrom succeeds.
  DatasetArtifacts() = default;

  size_t num_points() const { return pts_.size(); }
  const std::vector<Point<D>>& points() const { return pts_; }
  /// K of the cached kNN prefix matrix (0 when no kNN pass has run).
  size_t knn_k() const {
    std::lock_guard<std::mutex> lk(state_mu_);
    return knn_ ? knn_->k : 0;
  }
  size_t num_cached_clusterings() const {
    std::lock_guard<std::mutex> lk(state_mu_);
    return hdbscan_.size();
  }

  /// Answers `req` into `out`, building missing artifacts when
  /// `allow_build`. Returns false iff an artifact was missing (or mid-
  /// build) and building was not allowed — the caller should retry on the
  /// build path; invalid requests return true with out->ok == false.
  bool Answer(const EngineRequest& req, bool allow_build,
              EngineResponse* out) {
    switch (req.type) {
      case QueryType::kEmst:
      case QueryType::kSingleLinkage:
        return AnswerEmstFamily(req, allow_build, out);
      case QueryType::kHdbscan:
      case QueryType::kDbscanStarAt:
      case QueryType::kReachability:
      case QueryType::kStableClusters:
        return AnswerHdbscanFamily(req, allow_build, out);
    }
    out->error = "unknown query type";
    return true;
  }

  /// Writes every cached artifact plus the manifest into `dir` (created
  /// if needed). Takes a consistent shared_ptr snapshot of the DAG under
  /// `state_mu_`, then streams files with no lock held — concurrent
  /// queries and builds keep going (tree snapshots store only geometry,
  /// never the annotation arrays MST builds rewrite). Raises
  /// SnapshotError subtypes.
  void SaveTo(const std::string& dir) const {
    std::shared_ptr<KdTree<D>> tree;
    std::shared_ptr<const KnnMatrix> knn;
    EmstEntry emst;
    std::vector<std::pair<int, ClusteringView>> clusterings;
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      tree = tree_;
      knn = knn_;
      emst = emst_;
      clusterings.reserve(hdbscan_.size());
      for (const auto& [min_pts, e] : hdbscan_) {
        ClusteringView v;
        v.mst = e->mst;
        v.mst_weight = e->mst_weight;
        v.dendrogram = e->dendrogram;
        clusterings.emplace_back(min_pts, std::move(v));
      }
    }
    EnsureDatasetDir(dir);
    StaticManifest m;
    m.dim = D;
    m.n = pts_.size();
    m.points_file = PointsFileName();
    SavePointsSnapshot<D>(dir + "/" + m.points_file, pts_);
    if (tree) {
      m.tree_file = TreeFileName();
      SaveKdTreeSnapshot<D>(dir + "/" + m.tree_file, *tree);
    }
    if (knn) {
      m.knn_file = KnnFileName();
      m.knn_k = knn->k;
      SaveMatrixSnapshot(dir + "/" + m.knn_file, D, pts_.size(), knn->k,
                         knn->data.data());
    }
    if (emst.mst) {
      m.emst_file = EmstFileName();
      SaveEdgesSnapshot(dir + "/" + m.emst_file, *emst.mst, /*param=*/0);
      if (emst.dendrogram) {
        m.sl_dendro_file = SlDendroFileName();
        SaveDendrogramSnapshot(dir + "/" + m.sl_dendro_file,
                               *emst.dendrogram, /*param=*/0);
      }
    }
    for (const auto& [min_pts, v] : clusterings) {
      ClusteringManifestEntry c;
      c.min_pts = static_cast<uint32_t>(min_pts);
      c.mst_file = MstFileName(min_pts);
      SaveEdgesSnapshot(dir + "/" + c.mst_file, *v.mst, min_pts);
      if (v.dendrogram) {
        c.has_dendrogram = true;
        c.dendro_file = DendroFileName(min_pts);
        SaveDendrogramSnapshot(dir + "/" + c.dendro_file, *v.dendrogram,
                               min_pts);
      }
      m.clusterings.push_back(std::move(c));
    }
    WriteStaticManifest(dir + "/" + kManifestFileName, m);
  }

  /// Populates this default-constructed instance from a directory written
  /// by SaveTo: the kd-tree arena and kNN prefix matrix come back as
  /// zero-copy views of the mapped files; per-minPts core distances
  /// re-derive from the prefix columns (bit-identical, see the DAG notes
  /// above). Runs pre-publication on a fresh instance (no concurrent
  /// access). Raises SnapshotError subtypes; discard the instance on
  /// throw.
  void LoadFrom(const std::string& dir) {
    StaticManifest m = ReadStaticManifest(dir + "/" + kManifestFileName);
    if (m.dim != D) {
      throw SnapshotSchemaError(dir + ": manifest dimension " +
                                std::to_string(m.dim) + ", expected " +
                                std::to_string(D));
    }
    if (m.n < 1) throw SnapshotSchemaError(dir + ": empty dataset");
    pts_ = LoadPointsSnapshot<D>(dir + "/" + m.points_file);
    if (pts_.size() != m.n) {
      throw SnapshotSchemaError(dir + ": point count disagrees with manifest");
    }
    if (!m.tree_file.empty()) {
      tree_ = LoadKdTreeSnapshot<D>(dir + "/" + m.tree_file);
      if (tree_->size() != pts_.size()) {
        throw SnapshotSchemaError(dir + ": tree size disagrees with manifest");
      }
    }
    if (!m.knn_file.empty()) {
      LoadedMatrix mat = LoadMatrixSnapshot(dir + "/" + m.knn_file, D);
      if (mat.n != m.n || mat.k != m.knn_k) {
        throw SnapshotSchemaError(dir +
                                  ": kNN matrix disagrees with manifest");
      }
      auto knn = std::make_shared<KnnMatrix>();
      knn->data = MappedArray<double>(mat.data, mat.keepalive);
      knn->k = mat.k;
      knn_ = std::move(knn);
    }
    if (!m.emst_file.empty()) {
      std::vector<WeightedEdge> edges =
          LoadEdgesSnapshot(dir + "/" + m.emst_file, /*param=*/0, m.n);
      if (edges.size() + 1 != m.n) {
        throw SnapshotSchemaError(dir + ": EMST edge count mismatch");
      }
      emst_.mst_weight = TotalWeight(edges);
      emst_.mst = std::make_shared<const std::vector<WeightedEdge>>(
          std::move(edges));
      if (!m.sl_dendro_file.empty()) {
        emst_.dendrogram = LoadDendrogramSnapshot(
            dir + "/" + m.sl_dendro_file, /*param=*/0, m.n);
      }
    }
    EngineResponse scratch;  // loads do not report artifact traces
    size_t loaded_k = knn_ ? knn_->k : 0;
    for (const ClusteringManifestEntry& c : m.clusterings) {
      if (c.min_pts < 1 || c.min_pts > loaded_k) {
        // Core distances re-derive from the prefix matrix, so a cached
        // clustering without kNN coverage cannot have been written by
        // SaveTo.
        throw SnapshotSchemaError(dir + ": clustering@" +
                                  std::to_string(c.min_pts) +
                                  " lacks kNN prefix coverage");
      }
      auto entry = std::make_shared<HdbscanEntry>();
      entry->core_dist =
          CoreDist(static_cast<int>(c.min_pts), /*allow_build=*/true,
                   &scratch);
      std::vector<WeightedEdge> edges = LoadEdgesSnapshot(
          dir + "/" + c.mst_file, c.min_pts, m.n);
      if (edges.size() + 1 != m.n) {
        throw SnapshotSchemaError(dir + ": MR-MST edge count mismatch at " +
                                  std::to_string(c.min_pts));
      }
      entry->mst_weight = TotalWeight(edges);
      entry->mst = std::make_shared<const std::vector<WeightedEdge>>(
          std::move(edges));
      if (c.has_dendrogram) {
        entry->dendrogram = LoadDendrogramSnapshot(
            dir + "/" + c.dendro_file, c.min_pts, m.n);
      }
      TouchClusteringEntry(*entry, clock_);
      hdbscan_.emplace(static_cast<int>(c.min_pts), std::move(entry));
    }
  }

 private:
  using HdbscanEntry = ClusteringEntry;

  /// Versioned kNN prefix matrix: installed whole, never mutated, only
  /// replaced by a wider one. Readers keep their snapshot's stride.
  struct KnnMatrix {
    MappedArray<double> data;  ///< n x k, row-major by point id
    size_t k = 0;
  };

  struct EmstEntry {
    std::shared_ptr<const std::vector<WeightedEdge>> mst;
    double mst_weight = 0;
    std::shared_ptr<const Dendrogram> dendrogram;  ///< single-linkage
  };

  /// One high-dimensional (partitioned) EMST build, keyed by its eps
  /// bound. Immutable once published; rebuilt on demand after a snapshot
  /// warm start (derived cache, deliberately not persisted by SaveTo).
  struct HighDimEntry {
    std::shared_ptr<const std::vector<WeightedEdge>> mst;
    double mst_weight = 0;
    HighDimEmstInfo info;
  };

  /// Consistent copy of one clustering's shared_ptrs, taken under
  /// `state_mu_` (entry fields may be extended concurrently).
  struct ClusteringView {
    std::shared_ptr<const std::vector<double>> core_dist;
    std::shared_ptr<const std::vector<WeightedEdge>> mst;
    double mst_weight = 0;
    std::shared_ptr<const Dendrogram> dendrogram;
    std::shared_ptr<const ReachabilityPlot> plot;
  };

  /// Clears a node's building flag and broadcasts at scope exit, so a
  /// throwing build never wedges its waiters.
  template <typename F>
  struct BuildScope {
    F fn;
    ~BuildScope() { fn(); }
  };
  template <typename F>
  BuildScope<F> OnBuildExit(F fn) {
    return BuildScope<F>{std::move(fn)};
  }

  void Touch(HdbscanEntry& e) { TouchClusteringEntry(e, clock_); }

  static void Trace(EngineResponse* out, bool built, const std::string& key) {
    TraceArtifact(out, built, key);
  }

  /// Interned span name for a cold build of artifact `key` (nullptr when
  /// tracing is off, which makes the obs::Span a no-op). Builds are rare,
  /// so the intern mutex never touches the request fast path.
  static const char* BuildSpanName(const std::string& key) {
    if (!obs::Tracer::Get().enabled()) return nullptr;
    return obs::Tracer::Get().Intern("build:" + key);
  }

  static double TotalWeight(const std::vector<WeightedEdge>& edges) {
    return TotalEdgeWeight(edges);
  }

  std::shared_ptr<const Dendrogram> BuildDendro(
      const std::vector<WeightedEdge>& edges) const {
    return BuildDendrogramArtifact(pts_.size(), edges);
  }

  std::shared_ptr<KdTree<D>> Tree(bool allow_build, EngineResponse* out) {
    {
      std::unique_lock<std::mutex> lk(state_mu_);
      for (;;) {
        if (tree_) {
          Trace(out, /*built=*/false, "tree");
          return tree_;
        }
        if (!allow_build) return nullptr;
        if (!tree_building_) break;
        state_cv_.wait(lk);
      }
      tree_building_ = true;
    }
    auto done = OnBuildExit([this] {
      std::lock_guard<std::mutex> lk(state_mu_);
      tree_building_ = false;
      state_cv_.notify_all();
    });
    obs::Span span("build:tree", "engine");
    auto t = std::make_shared<KdTree<D>>(pts_, /*leaf_size=*/1);
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      tree_ = t;
    }
    Trace(out, /*built=*/true, "tree");
    return t;
  }

  /// kNN prefix matrix covering at least k columns (grows to the max
  /// seen). Owned when built in RAM, a zero-copy mapped view after a
  /// snapshot load; growing K past a loaded width rebuilds an owned copy.
  std::shared_ptr<const KnnMatrix> Prefixes(size_t k, bool allow_build,
                                            EngineResponse* out) {
    {
      std::unique_lock<std::mutex> lk(state_mu_);
      for (;;) {
        if (knn_ && knn_->k >= k) {
          Trace(out, /*built=*/false, "knn@" + std::to_string(knn_->k));
          return knn_;
        }
        if (!allow_build) return nullptr;
        if (knn_building_k_ == 0) break;
        // A build is running; wait it out. If it is too narrow for us we
        // re-enter the loop and become the next (wider) builder.
        state_cv_.wait(lk);
      }
      knn_building_k_ = k;
    }
    auto done = OnBuildExit([this] {
      std::lock_guard<std::mutex> lk(state_mu_);
      knn_building_k_ = 0;
      state_cv_.notify_all();
    });
    obs::Span span(BuildSpanName("knn@" + std::to_string(k)), "engine");
    std::shared_ptr<KdTree<D>> tree = Tree(allow_build, out);
    auto mat = std::make_shared<KnnMatrix>();
    mat->data = AllKnnDistances(*tree, k);
    mat->k = k;
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      knn_ = mat;
    }
    Trace(out, /*built=*/true, "knn@" + std::to_string(k));
    return mat;
  }

  /// Core distances for min_pts, derived from the prefix matrix column.
  std::shared_ptr<const std::vector<double>> CoreDist(int min_pts,
                                                      bool allow_build,
                                                      EngineResponse* out) {
    const std::string key = "cd@" + std::to_string(min_pts);
    {
      std::unique_lock<std::mutex> lk(state_mu_);
      for (;;) {
        auto it = core_.find(min_pts);
        if (it != core_.end()) {
          Trace(out, /*built=*/false, key);
          return it->second;
        }
        if (!allow_build) return nullptr;
        if (core_building_.count(min_pts) == 0) break;
        state_cv_.wait(lk);
      }
      core_building_.insert(min_pts);
    }
    auto done = OnBuildExit([this, min_pts] {
      std::lock_guard<std::mutex> lk(state_mu_);
      core_building_.erase(min_pts);
      state_cv_.notify_all();
    });
    obs::Span span(BuildSpanName(key), "engine");
    std::shared_ptr<const KnnMatrix> prefix =
        Prefixes(static_cast<size_t>(min_pts), allow_build, out);
    size_t n = pts_.size();
    size_t stride = prefix->k;
    auto cd = std::make_shared<std::vector<double>>(n);
    ParallelFor(0, n, [&](size_t i) {
      (*cd)[i] = prefix->data[i * stride + (min_pts - 1)];
    });
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      core_.emplace(min_pts, cd);
    }
    Trace(out, /*built=*/true, key);
    return cd;
  }

  /// The per-minPts clustering, with the MST (always) and the dendrogram /
  /// reachability plot (on demand) filled into *view. Returns false iff
  /// something was missing and !allow_build.
  bool Hdbscan(int min_pts, bool need_dendro, bool need_plot,
               bool allow_build, EngineResponse* out, ClusteringView* view) {
    const std::string suffix = "@" + std::to_string(min_pts);
    std::shared_ptr<HdbscanEntry> e;
    {
      std::unique_lock<std::mutex> lk(state_mu_);
      for (;;) {
        auto it = hdbscan_.find(min_pts);
        if (it != hdbscan_.end()) {
          e = it->second;
          break;
        }
        if (!allow_build) return false;
        if (mst_building_.count(min_pts) == 0) break;
        state_cv_.wait(lk);
      }
      if (!e) mst_building_.insert(min_pts);
    }
    if (e) {
      Trace(out, /*built=*/false, "mst" + suffix);
    } else {
      auto done = OnBuildExit([this, min_pts] {
        std::lock_guard<std::mutex> lk(state_mu_);
        mst_building_.erase(min_pts);
        state_cv_.notify_all();
      });
      obs::Span span(BuildSpanName("mst" + suffix), "engine");
      auto cd = CoreDist(min_pts, allow_build, out);
      std::shared_ptr<KdTree<D>> tree = Tree(allow_build, out);
      e = std::make_shared<HdbscanEntry>();
      e->core_dist = cd;
      {
        // MST builds rewrite the shared tree's annotation arrays.
        std::lock_guard<std::mutex> annot(tree_annot_mu_);
        e->mst = std::make_shared<const std::vector<WeightedEdge>>(
            HdbscanMstOnTree(*tree, *cd));
      }
      e->mst_weight = TotalWeight(*e->mst);
      Trace(out, /*built=*/true, "mst" + suffix);
      {
        std::lock_guard<std::mutex> lk(state_mu_);
        hdbscan_.emplace(min_pts, e);
        EvictLruLocked(min_pts);
      }
    }
    if (need_dendro || need_plot) {
      std::shared_ptr<const Dendrogram> dendro;
      bool build_it = false;
      {
        std::unique_lock<std::mutex> lk(state_mu_);
        for (;;) {
          if (e->dendrogram) {
            dendro = e->dendrogram;
            break;
          }
          if (!allow_build) return false;
          if (dendro_building_.count(min_pts) == 0) {
            build_it = true;
            break;
          }
          state_cv_.wait(lk);
        }
        if (build_it) dendro_building_.insert(min_pts);
      }
      if (!build_it) {
        Trace(out, /*built=*/false, "dendro" + suffix);
      } else {
        auto done = OnBuildExit([this, min_pts] {
          std::lock_guard<std::mutex> lk(state_mu_);
          dendro_building_.erase(min_pts);
          state_cv_.notify_all();
        });
        obs::Span span(BuildSpanName("dendro" + suffix), "engine");
        dendro = BuildDendro(*e->mst);
        {
          std::lock_guard<std::mutex> lk(state_mu_);
          e->dendrogram = dendro;
        }
        Trace(out, /*built=*/true, "dendro" + suffix);
      }
    }
    if (need_plot) {
      std::shared_ptr<const ReachabilityPlot> plot;
      bool build_it = false;
      {
        std::unique_lock<std::mutex> lk(state_mu_);
        for (;;) {
          if (e->plot) {
            plot = e->plot;
            break;
          }
          if (!allow_build) return false;
          if (plot_building_.count(min_pts) == 0) {
            build_it = true;
            break;
          }
          state_cv_.wait(lk);
        }
        if (build_it) plot_building_.insert(min_pts);
      }
      if (!build_it) {
        Trace(out, /*built=*/false, "reach" + suffix);
      } else {
        auto done = OnBuildExit([this, min_pts] {
          std::lock_guard<std::mutex> lk(state_mu_);
          plot_building_.erase(min_pts);
          state_cv_.notify_all();
        });
        obs::Span span(BuildSpanName("reach" + suffix), "engine");
        std::shared_ptr<const Dendrogram> dendro;
        {
          std::lock_guard<std::mutex> lk(state_mu_);
          dendro = e->dendrogram;
        }
        plot = std::make_shared<const ReachabilityPlot>(
            ComputeReachability(*dendro));
        {
          std::lock_guard<std::mutex> lk(state_mu_);
          e->plot = plot;
        }
        Trace(out, /*built=*/true, "reach" + suffix);
      }
    }
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      view->core_dist = e->core_dist;
      view->mst = e->mst;
      view->mst_weight = e->mst_weight;
      view->dendrogram = e->dendrogram;
      view->plot = e->plot;
      Touch(*e);
    }
    return true;
  }

  /// Drops least-recently-used clustering entries beyond the cache cap
  /// (never the one just touched, never one currently being extended by a
  /// dendrogram/plot builder). Call with `state_mu_` held. Snapshots held
  /// by responses — and by in-flight builders — stay valid through their
  /// shared_ptrs.
  void EvictLruLocked(int keep_min_pts) {
    while (hdbscan_.size() > kMaxCachedClusterings) {
      auto victim = hdbscan_.end();
      uint64_t oldest = std::numeric_limits<uint64_t>::max();
      for (auto it = hdbscan_.begin(); it != hdbscan_.end(); ++it) {
        int m = it->first;
        if (m == keep_min_pts || dendro_building_.count(m) != 0 ||
            plot_building_.count(m) != 0) {
          continue;
        }
        uint64_t used = it->second->last_used.load(std::memory_order_relaxed);
        if (used < oldest) {
          oldest = used;
          victim = it;
        }
      }
      if (victim == hdbscan_.end()) return;
      core_.erase(victim->first);
      hdbscan_.erase(victim);
    }
  }

  /// EMST + optional single-linkage dendrogram into *view. Returns false
  /// iff something was missing and !allow_build.
  bool Emst(bool need_dendro, bool allow_build, EngineResponse* out,
            EmstEntry* view) {
    std::shared_ptr<const std::vector<WeightedEdge>> mst;
    {
      std::unique_lock<std::mutex> lk(state_mu_);
      for (;;) {
        if (emst_.mst) {
          mst = emst_.mst;
          break;
        }
        if (!allow_build) return false;
        if (!emst_building_) break;
        state_cv_.wait(lk);
      }
      if (!mst) emst_building_ = true;
    }
    if (mst) {
      Trace(out, /*built=*/false, "emst");
    } else {
      auto done = OnBuildExit([this] {
        std::lock_guard<std::mutex> lk(state_mu_);
        emst_building_ = false;
        state_cv_.notify_all();
      });
      obs::Span span("build:emst", "engine");
      std::shared_ptr<KdTree<D>> tree = Tree(allow_build, out);
      {
        // EMST builds rewrite the shared tree's annotation arrays.
        std::lock_guard<std::mutex> annot(tree_annot_mu_);
        mst = std::make_shared<const std::vector<WeightedEdge>>(
            EmstMemoGfkOnTree(*tree));
      }
      {
        std::lock_guard<std::mutex> lk(state_mu_);
        emst_.mst = mst;
        emst_.mst_weight = TotalWeight(*mst);
      }
      Trace(out, /*built=*/true, "emst");
    }
    if (need_dendro) {
      std::shared_ptr<const Dendrogram> dendro;
      bool build_it = false;
      {
        std::unique_lock<std::mutex> lk(state_mu_);
        for (;;) {
          if (emst_.dendrogram) {
            dendro = emst_.dendrogram;
            break;
          }
          if (!allow_build) return false;
          if (!sl_building_) {
            build_it = true;
            break;
          }
          state_cv_.wait(lk);
        }
        if (build_it) sl_building_ = true;
      }
      if (!build_it) {
        Trace(out, /*built=*/false, "sl-dendro");
      } else {
        auto done = OnBuildExit([this] {
          std::lock_guard<std::mutex> lk(state_mu_);
          sl_building_ = false;
          state_cv_.notify_all();
        });
        obs::Span span("build:sl-dendro", "engine");
        dendro = BuildDendro(*mst);
        {
          std::lock_guard<std::mutex> lk(state_mu_);
          emst_.dendrogram = dendro;
        }
        Trace(out, /*built=*/true, "sl-dendro");
      }
    }
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      *view = emst_;
    }
    return true;
  }

  /// Artifact key of the high-dim EMST at `eps` (e.g. "emst-hd@0.1").
  static std::string HighDimKey(double eps) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "emst-hd@%g", eps);
    return buf;
  }

  /// Partitioned high-dimensional EMST at `eps` (exact decomposition when
  /// eps == 0; see emst/emst_highdim.h) into *view. Same monitor protocol
  /// as the other DAG nodes: absent -> building -> ready, waiters block on
  /// `state_cv_`. Returns false iff missing and !allow_build.
  bool HighDimEmstAt(double eps, bool allow_build, EngineResponse* out,
                     std::shared_ptr<const HighDimEntry>* view) {
    const std::string key = HighDimKey(eps);
    {
      std::unique_lock<std::mutex> lk(state_mu_);
      for (;;) {
        auto it = highdim_.find(eps);
        if (it != highdim_.end()) {
          *view = it->second;
          lk.unlock();
          Trace(out, /*built=*/false, key);
          return true;
        }
        if (!allow_build) return false;
        if (highdim_building_.count(eps) == 0) break;
        state_cv_.wait(lk);
      }
      highdim_building_.insert(eps);
    }
    auto done = OnBuildExit([this, eps] {
      std::lock_guard<std::mutex> lk(state_mu_);
      highdim_building_.erase(eps);
      state_cv_.notify_all();
    });
    obs::Span span(BuildSpanName(key), "engine");
    auto entry = std::make_shared<HighDimEntry>();
    HighDimEmstOptions opts;
    opts.eps = eps;
    // Builds private partition trees (never the shared annotated tree_),
    // so no tree_annot_mu_ — eps builds run concurrently with everything.
    entry->mst = std::make_shared<const std::vector<WeightedEdge>>(
        HighDimEmst(pts_, opts, &entry->info));
    entry->mst_weight = TotalWeight(*entry->mst);
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      highdim_[eps] = entry;
    }
    Trace(out, /*built=*/true, key);
    *view = std::move(entry);
    return true;
  }

  bool AnswerEmstFamily(const EngineRequest& req, bool allow_build,
                        EngineResponse* out) {
    if (req.type == QueryType::kEmst && req.emst_eps >= 0) {
      std::shared_ptr<const HighDimEntry> e;
      if (!HighDimEmstAt(req.emst_eps, allow_build, out, &e)) return false;
      out->mst = e->mst;
      out->mst_weight = e->mst_weight;
      out->approx_eps = req.emst_eps;
      out->partitions = e->info.partitions;
      out->cross_pruned = e->info.cross_pruned;
      out->ok = true;
      return true;
    }
    bool need_dendro = req.type == QueryType::kSingleLinkage;
    if (need_dendro && (req.k < 1 || req.k > pts_.size())) {
      out->error = "k must be in [1, n]";
      return true;
    }
    EmstEntry e;
    if (!Emst(need_dendro, allow_build, out, &e)) return false;
    out->mst = e.mst;
    out->mst_weight = e.mst_weight;
    if (need_dendro) {
      out->dendrogram = e.dendrogram;
      out->labels = KClusters(*e.dendrogram, req.k);
      SummarizeLabels(out->labels, out);
    }
    out->ok = true;
    return true;
  }

  bool AnswerHdbscanFamily(const EngineRequest& req, bool allow_build,
                           EngineResponse* out) {
    if (req.min_pts < 1 ||
        static_cast<size_t>(req.min_pts) > pts_.size()) {
      out->error = "min_pts must be in [1, n]";
      return true;
    }
    if (req.type == QueryType::kStableClusters && req.min_cluster_size < 2) {
      out->error = "min_cluster_size must be >= 2";
      return true;
    }
    bool need_plot = req.type == QueryType::kReachability;
    bool need_dendro = true;
    ClusteringView e;
    if (!Hdbscan(req.min_pts, need_dendro, need_plot, allow_build, out, &e)) {
      return false;
    }
    out->core_dist = e.core_dist;
    switch (req.type) {
      case QueryType::kHdbscan:
        out->mst = e.mst;
        out->mst_weight = e.mst_weight;
        out->dendrogram = e.dendrogram;
        break;
      case QueryType::kDbscanStarAt:
        out->labels = DbscanStarLabels(*e.dendrogram, *e.core_dist, req.eps);
        SummarizeLabels(out->labels, out);
        break;
      case QueryType::kReachability:
        out->plot = e.plot;
        break;
      case QueryType::kStableClusters: {
        StabilityClusters sc =
            ExtractStableClusters(*e.dendrogram, req.min_cluster_size);
        out->labels = std::move(sc.label);
        out->stability = std::move(sc.stability);
        SummarizeLabels(out->labels, out);
        break;
      }
      default:
        break;
    }
    out->ok = true;
    return true;
  }

  std::vector<Point<D>> pts_;

  // DAG node storage. Every field below is read/written only under
  // `state_mu_` (builds run outside it; see the file comment's monitor
  // protocol). `tree_annot_mu_` additionally serializes the MST-family
  // builds that rewrite the kd-tree's annotation arrays.
  mutable std::mutex state_mu_;
  mutable std::condition_variable state_cv_;
  std::mutex tree_annot_mu_;

  std::shared_ptr<KdTree<D>> tree_;
  std::shared_ptr<const KnnMatrix> knn_;
  std::map<int, std::shared_ptr<const std::vector<double>>> core_;
  std::map<int, std::shared_ptr<HdbscanEntry>> hdbscan_;
  EmstEntry emst_;
  std::map<double, std::shared_ptr<const HighDimEntry>> highdim_;

  bool tree_building_ = false;
  size_t knn_building_k_ = 0;  ///< 0 = idle, else the width being built
  std::set<int> core_building_;
  std::set<int> mst_building_;
  std::set<int> dendro_building_;
  std::set<int> plot_building_;
  bool emst_building_ = false;
  bool sl_building_ = false;
  std::set<double> highdim_building_;

  std::atomic<uint64_t> clock_{0};
};

}  // namespace parhc
