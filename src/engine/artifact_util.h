// Helpers shared by the engine's two artifact backends: the immutable
// per-dataset cache (engine/artifacts.h) and the batch-dynamic shard-forest
// cache (dynamic/artifacts.h). Factored out so both paths report the same
// build/reuse traces and construct dendrograms identically.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dendrogram/builder.h"
#include "dendrogram/reachability.h"
#include "engine/request.h"
#include "graph/edge.h"

namespace parhc {

/// Upper bound on simultaneously cached per-minPts clusterings (MST +
/// dendrogram + plot) per dataset; least-recently-used entries are evicted.
inline constexpr size_t kMaxCachedClusterings = 8;

/// Worker count at or above which artifact dendrograms use the parallel
/// builder; below it the sequential builder wins (no Euler-tour overhead).
inline constexpr int kParallelDendrogramWorkers = 8;

/// Records `key` in the response's built or reused artifact trace (first
/// mention wins; later stages touching the same artifact are not repeated).
inline void TraceArtifact(EngineResponse* out, bool built,
                          const std::string& key) {
  auto contains = [&](const std::vector<std::string>& v) {
    return std::find(v.begin(), v.end(), key) != v.end();
  };
  if (contains(out->built) || contains(out->reused)) return;
  (built ? out->built : out->reused).push_back(key);
}

inline double TotalEdgeWeight(const std::vector<WeightedEdge>& edges) {
  double w = 0;
  for (const auto& e : edges) w += e.w;
  return w;
}

/// Ordered dendrogram of `edges` over `n` points anchored at source 0, via
/// whichever builder fits the current worker count (both produce the same
/// ordered dendrogram).
inline std::shared_ptr<const Dendrogram> BuildDendrogramArtifact(
    size_t n, const std::vector<WeightedEdge>& edges) {
  if (n == 1) {
    auto d = std::make_shared<Dendrogram>(1);
    d->set_root(0);
    return d;
  }
  if (NumWorkers() >= kParallelDendrogramWorkers) {
    return std::make_shared<const Dendrogram>(
        BuildDendrogramParallel(n, edges, /*source=*/0));
  }
  return std::make_shared<const Dendrogram>(
      BuildDendrogramSequential(n, edges, /*source=*/0));
}

/// One cached per-minPts clustering: the MR-MST (always) plus the
/// dendrogram and reachability plot (built on demand). Shared by both
/// artifact backends so the LRU machinery exists once.
struct ClusteringEntry {
  std::shared_ptr<const std::vector<double>> core_dist;
  std::shared_ptr<const std::vector<WeightedEdge>> mst;
  double mst_weight = 0;
  std::shared_ptr<const Dendrogram> dendrogram;
  std::shared_ptr<const ReachabilityPlot> plot;
  std::atomic<uint64_t> last_used{0};
};

/// Stamps `e` as most recently used against the backend's LRU clock. Safe
/// on the read-only query path (atomics only).
inline void TouchClusteringEntry(ClusteringEntry& e,
                                 std::atomic<uint64_t>& clock) {
  e.last_used.store(clock.fetch_add(1, std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
}

/// Drops least-recently-used clustering entries beyond the cache cap,
/// never the one just touched. Snapshots held by responses stay valid.
/// The matching derived core distances go too — they re-derive from the
/// kNN rows in O(n) — so per-minPts memory really is bounded.
inline void EvictLruClusterings(
    std::map<int, std::unique_ptr<ClusteringEntry>>& entries,
    std::map<int, std::shared_ptr<const std::vector<double>>>& core,
    int keep_min_pts) {
  while (entries.size() > kMaxCachedClusterings) {
    auto victim = entries.end();
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    for (auto it = entries.begin(); it != entries.end(); ++it) {
      if (it->first == keep_min_pts) continue;
      uint64_t used = it->second->last_used.load(std::memory_order_relaxed);
      if (used < oldest) {
        oldest = used;
        victim = it;
      }
    }
    if (victim == entries.end()) return;
    core.erase(victim->first);
    entries.erase(victim);
  }
}

}  // namespace parhc
