// Partial-artifact export helpers behind the worker-side frame verbs
// (net/protocol.cc: kOpExportPoints / kOpKnnQuery / kOpShardMrMst) that
// the router tier (src/cluster/) fans out to.
//
// Exactness contracts (what makes the router's merged answers
// bit-identical to a single-node engine):
//  * KnnRows returns *squared* distances — the same values every backend's
//    kNN heap accumulates — so the router can merge per-worker rows (the k
//    smallest of a union is the merge of the parts' k smallest) and take
//    sqrt once, exactly like CoreDist does locally.
//  * MrMst runs the same HdbscanMstOnTree kernel the single-node HDBSCAN*
//    path runs, under externally supplied *global* core distances; by the
//    distance-decomposition rule the union of per-part MR-MSTs plus
//    cross-part BCCP* edges contains the MR-MST of the union.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "graph/edge.h"
#include "hdbscan/hdbscan_mst.h"
#include "parallel/scheduler.h"
#include "spatial/knn.h"

namespace parhc {
namespace engine_export {

template <int D>
void FlattenInto(const std::vector<Point<D>>& pts,
                 std::vector<double>* out) {
  out->resize(pts.size() * static_cast<size_t>(D));
  for (size_t i = 0; i < pts.size(); ++i) {
    for (int d = 0; d < D; ++d) {
      (*out)[i * static_cast<size_t>(D) + d] = pts[i][d];
    }
  }
}

template <int D>
std::vector<Point<D>> UnflattenRows(const std::vector<double>& coords,
                                    size_t count) {
  std::vector<Point<D>> pts(count);
  for (size_t i = 0; i < count; ++i) {
    for (int d = 0; d < D; ++d) {
      pts[i][d] = coords[i * static_cast<size_t>(D) + d];
    }
  }
  return pts;
}

/// kNN rows of `queries` against `data`: row i holds the sorted squared
/// distances from queries[i] to its k nearest data points (self included
/// when the query is in the data), +inf-padded past data.size(). Issues
/// parallel work — run inside a worker group (engine build executor).
template <int D>
std::vector<double> KnnRows(const std::vector<Point<D>>& data,
                            const std::vector<Point<D>>& queries, size_t k) {
  std::vector<double> rows(queries.size() * k,
                           std::numeric_limits<double>::infinity());
  if (data.empty() || queries.empty()) return rows;
  KdTree<D> tree(data, /*leaf_size=*/1);
  size_t cap = std::min(k, data.size());
  std::vector<std::vector<std::pair<double, uint32_t>>> scratch(NumWorkers());
  ParallelFor(0, queries.size(), [&](size_t i) {
    auto& buf = scratch[Scheduler::Get().MyId()];
    if (buf.size() < cap) buf.resize(cap);
    internal::KnnHeap heap(cap, buf.data());
    internal::KnnQueryInto(tree, queries[i], heap);
    std::sort(buf.data(), buf.data() + heap.size());
    double* row = rows.data() + i * k;
    for (size_t t = 0; t < heap.size(); ++t) row[t] = buf[t].first;
  });
  return rows;
}

/// MR-MST of one immutable point set under externally supplied core
/// distances (indexed like `pts`). Endpoints are point indices. Issues
/// parallel work — run inside a worker group.
template <int D>
std::vector<WeightedEdge> MrMst(const std::vector<Point<D>>& pts,
                                const std::vector<double>& core) {
  if (pts.size() < 2) return {};
  KdTree<D> tree(pts, /*leaf_size=*/1);
  return HdbscanMstOnTree(tree, core);
}

}  // namespace engine_export
}  // namespace parhc
