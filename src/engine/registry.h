// Dataset registry: named, type-erased datasets behind one handle.
//
// Point dimensionality is a compile-time template parameter everywhere in
// the library; the serving layer needs to hold datasets of several
// dimensions in one table and route requests by name at runtime. Each
// registered dataset owns a DatasetArtifacts<D> behind a virtual interface
// (DatasetEntryBase) carrying the per-dataset readers-writer lock that the
// engine's query path uses. Supported dimensions are the paper's evaluation
// set {2, 3, 4, 5, 7, 10, 16}; loading another dimension fails with a
// clear error rather than instantiating unboundedly.
//
// Datasets are immutable once added. Re-adding a name atomically replaces
// the entry: in-flight queries keep answering from the old shared_ptr and
// new queries see the new data (documented in README "Serving layer").
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "data/io.h"
#include "engine/artifacts.h"
#include "engine/request.h"

namespace parhc {

/// Type-erased registered dataset. `mu` is the readers-writer lock the
/// engine front-end takes around Answer (shared for read-only cache hits,
/// exclusive for artifact builds).
class DatasetEntryBase {
 public:
  virtual ~DatasetEntryBase() = default;
  virtual int dim() const = 0;
  virtual size_t num_points() const = 0;
  virtual size_t knn_k() const = 0;
  virtual size_t num_cached_clusterings() const = 0;
  /// See DatasetArtifacts::Answer.
  virtual bool Answer(const EngineRequest& req, bool allow_build,
                      EngineResponse* out) = 0;

  std::shared_mutex mu;
};

template <int D>
class DatasetEntry final : public DatasetEntryBase {
 public:
  explicit DatasetEntry(std::vector<Point<D>> pts)
      : artifacts_(std::move(pts)) {}

  int dim() const override { return D; }
  size_t num_points() const override { return artifacts_.num_points(); }
  size_t knn_k() const override { return artifacts_.knn_k(); }
  size_t num_cached_clusterings() const override {
    return artifacts_.num_cached_clusterings();
  }
  bool Answer(const EngineRequest& req, bool allow_build,
              EngineResponse* out) override {
    return artifacts_.Answer(req, allow_build, out);
  }

 private:
  DatasetArtifacts<D> artifacts_;
};

/// Cache-state summary of one registered dataset.
struct DatasetInfo {
  std::string name;
  int dim = 0;
  size_t num_points = 0;
  size_t knn_k = 0;                 ///< cached kNN prefix width (0 = none)
  size_t cached_clusterings = 0;    ///< per-minPts entries currently held
};

class DatasetRegistry {
 public:
  /// Dimensions the registry can host (one template instantiation each).
  static bool SupportedDim(int dim) {
    switch (dim) {
      case 2: case 3: case 4: case 5: case 7: case 10: case 16:
        return true;
      default:
        return false;
    }
  }

  /// Registers (or atomically replaces) `name` with typed points.
  template <int D>
  void Add(const std::string& name, std::vector<Point<D>> pts) {
    PARHC_CHECK_MSG(!pts.empty(), "dataset must be non-empty");
    Insert(name, std::make_shared<DatasetEntry<D>>(std::move(pts)));
  }

  /// Registers `name` from runtime-dimension rows (all rows one
  /// dimension). Returns an empty string on success, else an error message
  /// — runtime data problems are query-path errors, not invariants, so
  /// this never aborts.
  std::string TryAddRows(const std::string& name,
                         const std::vector<std::vector<double>>& rows) {
    if (rows.empty()) return "dataset must be non-empty";
    int dim = static_cast<int>(rows[0].size());
    if (!SupportedDim(dim)) {
      return "unsupported dataset dimension " + std::to_string(dim);
    }
    for (const auto& row : rows) {
      if (row.size() != static_cast<size_t>(dim)) {
        return "rows must share one dimension";
      }
    }
    switch (dim) {
      case 2: Add(name, RowsToPoints<2>(rows)); break;
      case 3: Add(name, RowsToPoints<3>(rows)); break;
      case 4: Add(name, RowsToPoints<4>(rows)); break;
      case 5: Add(name, RowsToPoints<5>(rows)); break;
      case 7: Add(name, RowsToPoints<7>(rows)); break;
      case 10: Add(name, RowsToPoints<10>(rows)); break;
      case 16: Add(name, RowsToPoints<16>(rows)); break;
      default: break;  // unreachable: SupportedDim checked above
    }
    return "";
  }

  /// TryAddRows that treats failure as a programmer error.
  void AddRows(const std::string& name,
               const std::vector<std::vector<double>>& rows) {
    std::string err = TryAddRows(name, rows);
    PARHC_CHECK_MSG(err.empty(), err.c_str());
  }

  /// Loads a CSV (dimension inferred from the first row).
  void AddCsv(const std::string& name, const std::string& path) {
    AddRows(name, ReadPointsCsv(path));
  }

  /// Loads the binary point format, dispatching on the header's dimension
  /// and bulk-reading straight into typed points (no parsing, no per-row
  /// allocation). Returns an empty string on success or an error message
  /// for unsupported dimensions / empty files; propagates the readers'
  /// std::runtime_error for unreadable or malformed files.
  std::string TryAddBin(const std::string& name, const std::string& path) {
    PointsBinHeader h = ReadPointsBinHeader(path);
    if (!SupportedDim(static_cast<int>(h.dim))) {
      return "unsupported dataset dimension " + std::to_string(h.dim);
    }
    if (h.count == 0) return "dataset must be non-empty";
    switch (h.dim) {
      case 2: Add(name, ReadPointsBinAs<2>(path)); break;
      case 3: Add(name, ReadPointsBinAs<3>(path)); break;
      case 4: Add(name, ReadPointsBinAs<4>(path)); break;
      case 5: Add(name, ReadPointsBinAs<5>(path)); break;
      case 7: Add(name, ReadPointsBinAs<7>(path)); break;
      case 10: Add(name, ReadPointsBinAs<10>(path)); break;
      case 16: Add(name, ReadPointsBinAs<16>(path)); break;
      default: break;  // unreachable: SupportedDim checked above
    }
    return "";
  }

  /// TryAddBin that treats recoverable failure as a programmer error.
  void AddBin(const std::string& name, const std::string& path) {
    std::string err = TryAddBin(name, path);
    PARHC_CHECK_MSG(err.empty(), err.c_str());
  }

  /// Drops `name` and its whole artifact cache. In-flight queries holding
  /// the entry finish normally. Returns false when absent.
  bool Remove(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.erase(name) > 0;
  }

  /// The entry for `name`, or nullptr.
  std::shared_ptr<DatasetEntryBase> Find(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : it->second;
  }

  /// Snapshot of all registered datasets, sorted by name. Cache-state
  /// fields are read under each entry's reader lock, so listing is safe
  /// concurrently with builds.
  std::vector<DatasetInfo> List() const {
    std::vector<std::pair<std::string, std::shared_ptr<DatasetEntryBase>>>
        snapshot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      snapshot.assign(entries_.begin(), entries_.end());
    }
    std::vector<DatasetInfo> out;
    out.reserve(snapshot.size());
    for (const auto& [name, entry] : snapshot) {
      std::shared_lock<std::shared_mutex> read(entry->mu);
      out.push_back({name, entry->dim(), entry->num_points(), entry->knn_k(),
                     entry->num_cached_clusterings()});
    }
    return out;
  }

 private:
  template <int D>
  static std::vector<Point<D>> RowsToPoints(
      const std::vector<std::vector<double>>& rows) {
    std::vector<Point<D>> pts(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      PARHC_CHECK_MSG(rows[i].size() == static_cast<size_t>(D),
                      "rows must share one dimension");
      for (int d = 0; d < D; ++d) pts[i][d] = rows[i][d];
    }
    return pts;
  }

  void Insert(const std::string& name,
              std::shared_ptr<DatasetEntryBase> entry) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_[name] = std::move(entry);
  }

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<DatasetEntryBase>> entries_;
};

}  // namespace parhc
