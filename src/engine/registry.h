// Dataset registry: named, type-erased datasets behind one handle.
//
// Point dimensionality is a compile-time template parameter everywhere in
// the library; the serving layer needs to hold datasets of several
// dimensions in one table and route requests by name at runtime. Each
// registered dataset owns a DatasetArtifacts<D> behind a virtual interface
// (DatasetEntryBase) carrying the per-dataset readers-writer lock that the
// engine's query path uses. Supported dimensions are the paper's evaluation
// set {2, 3, 4, 5, 7, 10, 16} plus the embedding widths {64, 256} served by
// the high-dimensional EMST path (emst/emst_highdim.h); loading another
// dimension fails with a clear error rather than instantiating unboundedly.
//
// Static datasets are immutable once added; re-adding a name atomically
// replaces the entry: in-flight queries keep answering from the old
// shared_ptr and new queries see the new data (documented in README
// "Serving layer"). Batch-dynamic datasets (AddDynamic) instead accept
// InsertRows / DeleteIds mutations, backed by the LSM shard forest
// (dynamic/artifacts.h); the engine front-end serializes mutations with
// artifact builds.
//
// Lifetime audit (Remove vs concurrent Run): Find hands each query its own
// shared_ptr copy, so Remove only drops the registry's reference — the
// entry (and the shared_mutex inside it) outlives every in-flight query,
// and a query that loses the race keeps answering from the orphaned entry.
// Regression-tested by EngineConcurrency.RemoveWhileQueriesInFlight.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "data/io.h"
#include "dynamic/artifacts.h"
#include "engine/artifacts.h"
#include "engine/export.h"
#include "engine/request.h"
#include "store/errors.h"
#include "store/manifest.h"

namespace parhc {

/// Type-erased registered dataset. `mu` is the readers-writer lock the
/// engine front-end takes around Answer (shared for read-only cache hits,
/// exclusive for artifact builds and mutations).
class DatasetEntryBase {
 public:
  virtual ~DatasetEntryBase() = default;
  virtual int dim() const = 0;
  virtual size_t num_points() const = 0;
  virtual size_t knn_k() const = 0;
  virtual size_t num_cached_clusterings() const = 0;
  /// See DatasetArtifacts::Answer.
  virtual bool Answer(const EngineRequest& req, bool allow_build,
                      EngineResponse* out) = 0;

  /// Writes every cached artifact plus the dataset manifest into `dir`.
  /// Read-only (no lazy builds run), so the engine calls it under the
  /// *shared* lock — snapshots are taken while cache-hit queries keep
  /// serving. Raises SnapshotError subtypes.
  virtual void SaveTo(const std::string& dir) const = 0;

  // Partial-artifact export surface for the router tier (src/cluster/),
  // behind the kOpExportPoints / kOpKnnQuery / kOpShardMrMst frame verbs.
  // All three may lazily build caches (the dynamic backend's shard
  // accessors mutate), so the engine calls them under the *exclusive*
  // lock; the latter two issue parallel work and run on the build
  // executor.

  /// Live points in ascending-global-id order: gids[i] and the matching
  /// dim() doubles at coords[i*dim()]. For immutable datasets gid == point
  /// index.
  virtual void ExportLive(std::vector<uint32_t>* gids,
                          std::vector<double>* coords) = 0;

  /// kNN rows of `count` query points (flattened coords, dim() doubles
  /// each) against the live points: row i = sorted squared distances to
  /// the k nearest (self included when resident), +inf-padded.
  virtual std::vector<double> KnnForQueries(const std::vector<double>& coords,
                                            size_t count, size_t k) = 0;

  /// MR-MST of the live points under externally supplied global core
  /// distances (core[i] = i-th live gid ascending), gid endpoints.
  virtual std::vector<WeightedEdge> MutualReachMst(
      const std::vector<double>& core) = 0;

  // Batch-dynamic interface; the immutable backend rejects mutations.
  virtual bool is_dynamic() const { return false; }
  virtual size_t num_shards() const { return 1; }
  /// Tombstoned points (dynamic backend only; 0 for immutable datasets).
  virtual size_t num_tombstones() const { return 0; }
  /// Inserts one batch; on success returns "" and sets *first_gid to the
  /// first assigned global id (the batch gets [first, first + n)).
  virtual std::string InsertRows(
      const std::vector<std::vector<double>>& /*rows*/,
      uint32_t* /*first_gid*/) {
    return "dataset is immutable (create with AddDynamic for ingestion)";
  }
  /// Tombstones global ids; on success returns "" and sets *deleted to the
  /// number of points actually removed (unknown ids are skipped).
  virtual std::string DeleteIds(const std::vector<uint32_t>& /*gids*/,
                                size_t* /*deleted*/) {
    return "dataset is immutable (create with AddDynamic for ingestion)";
  }

  // Snapshot bookkeeping, written by the engine's save/load paths and
  // exported as per-dataset gauges (obs/sources.h). `snapshot_unix_ms` is
  // the wall-clock time of the last successful save or warm-start load
  // (-1 = never); `snapshot_bytes` the on-disk size of that snapshot.
  std::atomic<uint64_t> snapshot_bytes{0};
  std::atomic<int64_t> snapshot_unix_ms{-1};

  std::shared_mutex mu;
};

template <int D>
class DatasetEntry final : public DatasetEntryBase {
 public:
  explicit DatasetEntry(std::vector<Point<D>> pts)
      : artifacts_(std::move(pts)) {}

  /// Warm-starts from a snapshot directory (see DatasetArtifacts::LoadFrom).
  explicit DatasetEntry(const std::string& snapshot_dir) {
    artifacts_.LoadFrom(snapshot_dir);
  }

  int dim() const override { return D; }
  size_t num_points() const override { return artifacts_.num_points(); }
  size_t knn_k() const override { return artifacts_.knn_k(); }
  size_t num_cached_clusterings() const override {
    return artifacts_.num_cached_clusterings();
  }
  bool Answer(const EngineRequest& req, bool allow_build,
              EngineResponse* out) override {
    return artifacts_.Answer(req, allow_build, out);
  }
  void SaveTo(const std::string& dir) const override {
    artifacts_.SaveTo(dir);
  }

  void ExportLive(std::vector<uint32_t>* gids,
                  std::vector<double>* coords) override {
    size_t n = artifacts_.num_points();
    gids->resize(n);
    for (size_t i = 0; i < n; ++i) (*gids)[i] = static_cast<uint32_t>(i);
    engine_export::FlattenInto<D>(artifacts_.points(), coords);
  }

  std::vector<double> KnnForQueries(const std::vector<double>& coords,
                                    size_t count, size_t k) override {
    return engine_export::KnnRows<D>(
        artifacts_.points(), engine_export::UnflattenRows<D>(coords, count),
        k);
  }

  std::vector<WeightedEdge> MutualReachMst(
      const std::vector<double>& core) override {
    return engine_export::MrMst<D>(artifacts_.points(), core);
  }

 private:
  DatasetArtifacts<D> artifacts_;
};

/// A batch-dynamic dataset over the LSM shard forest. Starts empty; points
/// arrive through InsertRows and leave through DeleteIds.
template <int D>
class DynamicDatasetEntry final : public DatasetEntryBase {
 public:
  DynamicDatasetEntry() = default;

  /// Warm-starts from a snapshot directory (see DynamicArtifacts::LoadFrom).
  explicit DynamicDatasetEntry(const std::string& snapshot_dir) {
    artifacts_.LoadFrom(snapshot_dir);
  }

  int dim() const override { return D; }
  size_t num_points() const override { return artifacts_.num_points(); }
  size_t knn_k() const override { return artifacts_.knn_k(); }
  size_t num_cached_clusterings() const override {
    return artifacts_.num_cached_clusterings();
  }
  bool Answer(const EngineRequest& req, bool allow_build,
              EngineResponse* out) override {
    return artifacts_.Answer(req, allow_build, out);
  }

  bool is_dynamic() const override { return true; }
  size_t num_shards() const override { return artifacts_.num_shards(); }
  size_t num_tombstones() const override {
    return artifacts_.num_tombstones();
  }

  std::string InsertRows(const std::vector<std::vector<double>>& rows,
                         uint32_t* first_gid) override {
    if (rows.empty()) return "insert batch must be non-empty";
    std::vector<Point<D>> pts(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].size() != static_cast<size_t>(D)) {
        return "rows must match the dataset dimension " + std::to_string(D);
      }
      for (int d = 0; d < D; ++d) pts[i][d] = rows[i][d];
    }
    uint32_t first = artifacts_.InsertBatch(std::move(pts));
    if (first_gid) *first_gid = first;
    return "";
  }

  std::string DeleteIds(const std::vector<uint32_t>& gids,
                        size_t* deleted) override {
    size_t n = artifacts_.DeleteBatch(gids);
    if (deleted) *deleted = n;
    return "";
  }

  void SaveTo(const std::string& dir) const override {
    artifacts_.SaveTo(dir);
  }

  void ExportLive(std::vector<uint32_t>* gids,
                  std::vector<double>* coords) override {
    std::vector<Point<D>> pts;
    artifacts_.ExportLive(gids, &pts);
    engine_export::FlattenInto<D>(pts, coords);
  }

  std::vector<double> KnnForQueries(const std::vector<double>& coords,
                                    size_t count, size_t k) override {
    return artifacts_.KnnForQueries(
        engine_export::UnflattenRows<D>(coords, count), k);
  }

  std::vector<WeightedEdge> MutualReachMst(
      const std::vector<double>& core) override {
    return artifacts_.MutualReachMst(core);
  }

 private:
  DynamicArtifacts<D> artifacts_;
};

/// Cache-state summary of one registered dataset.
struct DatasetInfo {
  std::string name;
  int dim = 0;
  size_t num_points = 0;
  size_t knn_k = 0;                 ///< cached kNN prefix width (0 = none)
  size_t cached_clusterings = 0;    ///< per-minPts entries currently held
  bool dynamic = false;             ///< batch-dynamic (shard forest) backend
  size_t num_shards = 1;            ///< shard count (1 for immutable)
  size_t tombstones = 0;            ///< deleted-but-uncompacted points
  uint64_t snapshot_bytes = 0;      ///< last snapshot size (0 = never)
  int64_t snapshot_unix_ms = -1;    ///< last snapshot save/load wall time
};

/// X-macro over every registry-hosted dimension: each X(D) instantiates the
/// full engine stack (static + dynamic entries, artifact DAG, snapshot
/// loaders) at that width. The wide dims (64, 256) serve the
/// high-dimensional embedding workload (see emst/emst_highdim.h).
#define PARHC_FOR_EACH_DIM(X) X(2) X(3) X(4) X(5) X(7) X(10) X(16) X(64) X(256)

class DatasetRegistry {
 public:
  /// Dimensions the registry can host (one template instantiation each).
  static bool SupportedDim(int dim) {
    switch (dim) {
#define PARHC_DIM_CASE(D) case D:
      PARHC_FOR_EACH_DIM(PARHC_DIM_CASE)
#undef PARHC_DIM_CASE
      return true;
      default:
        return false;
    }
  }

  /// Registers (or atomically replaces) `name` with typed points.
  template <int D>
  void Add(const std::string& name, std::vector<Point<D>> pts) {
    PARHC_CHECK_MSG(!pts.empty(), "dataset must be non-empty");
    Insert(name, std::make_shared<DatasetEntry<D>>(std::move(pts)));
  }

  /// Registers `name` from runtime-dimension rows (all rows one
  /// dimension). Returns an empty string on success, else an error message
  /// — runtime data problems are query-path errors, not invariants, so
  /// this never aborts.
  std::string TryAddRows(const std::string& name,
                         const std::vector<std::vector<double>>& rows) {
    if (rows.empty()) return "dataset must be non-empty";
    int dim = static_cast<int>(rows[0].size());
    if (!SupportedDim(dim)) {
      return "unsupported dataset dimension " + std::to_string(dim);
    }
    for (const auto& row : rows) {
      if (row.size() != static_cast<size_t>(dim)) {
        return "rows must share one dimension";
      }
    }
    switch (dim) {
#define PARHC_DIM_CASE(D)              \
  case D:                              \
    Add(name, RowsToPoints<D>(rows)); \
    break;
      PARHC_FOR_EACH_DIM(PARHC_DIM_CASE)
#undef PARHC_DIM_CASE
      default: break;  // unreachable: SupportedDim checked above
    }
    return "";
  }

  /// TryAddRows that treats failure as a programmer error.
  void AddRows(const std::string& name,
               const std::vector<std::vector<double>>& rows) {
    std::string err = TryAddRows(name, rows);
    PARHC_CHECK_MSG(err.empty(), err.c_str());
  }

  /// Loads a CSV (dimension inferred from the first row).
  void AddCsv(const std::string& name, const std::string& path) {
    AddRows(name, ReadPointsCsv(path));
  }

  /// Loads the binary point format, dispatching on the header's dimension
  /// and bulk-reading straight into typed points (no parsing, no per-row
  /// allocation). Returns an empty string on success or an error message
  /// for unsupported dimensions / empty files; propagates the readers'
  /// std::runtime_error for unreadable or malformed files.
  std::string TryAddBin(const std::string& name, const std::string& path) {
    PointsBinHeader h = ReadPointsBinHeader(path);
    if (!SupportedDim(static_cast<int>(h.dim))) {
      return "unsupported dataset dimension " + std::to_string(h.dim);
    }
    if (h.count == 0) return "dataset must be non-empty";
    switch (h.dim) {
#define PARHC_DIM_CASE(D)                  \
  case D:                                  \
    Add(name, ReadPointsBinAs<D>(path)); \
    break;
      PARHC_FOR_EACH_DIM(PARHC_DIM_CASE)
#undef PARHC_DIM_CASE
      default: break;  // unreachable: SupportedDim checked above
    }
    return "";
  }

  /// TryAddBin that treats recoverable failure as a programmer error.
  void AddBin(const std::string& name, const std::string& path) {
    std::string err = TryAddBin(name, path);
    PARHC_CHECK_MSG(err.empty(), err.c_str());
  }

  /// Registers (or atomically replaces) `name` as an empty batch-dynamic
  /// dataset of the given dimension. Returns "" on success.
  std::string TryAddDynamic(const std::string& name, int dim) {
    if (!SupportedDim(dim)) {
      return "unsupported dataset dimension " + std::to_string(dim);
    }
    switch (dim) {
#define PARHC_DIM_CASE(D)                                       \
  case D:                                                       \
    Insert(name, std::make_shared<DynamicDatasetEntry<D>>()); \
    break;
      PARHC_FOR_EACH_DIM(PARHC_DIM_CASE)
#undef PARHC_DIM_CASE
      default: break;  // unreachable: SupportedDim checked above
    }
    return "";
  }

  /// TryAddDynamic that treats failure as a programmer error.
  void AddDynamic(const std::string& name, int dim) {
    std::string err = TryAddDynamic(name, dim);
    PARHC_CHECK_MSG(err.empty(), err.c_str());
  }

  /// Registers (or atomically replaces) `name` from a snapshot directory
  /// written by SaveTo, dispatching on the manifest's backend kind and
  /// dimension. Returns "" on success; snapshot problems (missing,
  /// truncated, corrupt, version-mismatched, wrong-dimension files) come
  /// back as error strings — they raise typed SnapshotError subtypes
  /// internally and never abort.
  std::string TryLoadSnapshot(const std::string& name,
                              const std::string& dir) {
    try {
      ManifestInfo info = ReadManifestInfo(dir + "/" + kManifestFileName);
      if (!SupportedDim(static_cast<int>(info.dim))) {
        return "unsupported dataset dimension " + std::to_string(info.dim);
      }
      std::shared_ptr<DatasetEntryBase> entry;
      switch (info.dim) {
#define PARHC_DIM_CASE(D)                        \
  case D:                                        \
    entry = LoadEntry<D>(dir, info.dynamic); \
    break;
        PARHC_FOR_EACH_DIM(PARHC_DIM_CASE)
#undef PARHC_DIM_CASE
        default: break;  // unreachable: SupportedDim checked above
      }
      Insert(name, std::move(entry));
    } catch (const SnapshotError& e) {
      return e.what();
    }
    return "";
  }

  /// Drops `name` and its whole artifact cache. In-flight queries holding
  /// the entry finish normally. Returns false when absent.
  bool Remove(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.erase(name) > 0;
  }

  /// The entry for `name`, or nullptr.
  std::shared_ptr<DatasetEntryBase> Find(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : it->second;
  }

  /// Snapshot of all registered datasets, sorted by name. Cache-state
  /// fields are read under each entry's reader lock, so listing is safe
  /// concurrently with builds.
  std::vector<DatasetInfo> List() const {
    std::vector<std::pair<std::string, std::shared_ptr<DatasetEntryBase>>>
        snapshot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      snapshot.assign(entries_.begin(), entries_.end());
    }
    std::vector<DatasetInfo> out;
    out.reserve(snapshot.size());
    for (const auto& [name, entry] : snapshot) {
      std::shared_lock<std::shared_mutex> read(entry->mu);
      out.push_back({name, entry->dim(), entry->num_points(), entry->knn_k(),
                     entry->num_cached_clusterings(), entry->is_dynamic(),
                     entry->num_shards(), entry->num_tombstones(),
                     entry->snapshot_bytes.load(std::memory_order_relaxed),
                     entry->snapshot_unix_ms.load(std::memory_order_relaxed)});
    }
    return out;
  }

 private:
  template <int D>
  static std::shared_ptr<DatasetEntryBase> LoadEntry(const std::string& dir,
                                                     bool dynamic) {
    if (dynamic) return std::make_shared<DynamicDatasetEntry<D>>(dir);
    return std::make_shared<DatasetEntry<D>>(dir);
  }

  template <int D>
  static std::vector<Point<D>> RowsToPoints(
      const std::vector<std::vector<double>>& rows) {
    std::vector<Point<D>> pts(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      PARHC_CHECK_MSG(rows[i].size() == static_cast<size_t>(D),
                      "rows must share one dimension");
      for (int d = 0; d < D; ++d) pts[i][d] = rows[i][d];
    }
    return pts;
  }

  void Insert(const std::string& name,
              std::shared_ptr<DatasetEntryBase> entry) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_[name] = std::move(entry);
  }

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<DatasetEntryBase>> entries_;
};

}  // namespace parhc
