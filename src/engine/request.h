// Query and response types of the multi-query clustering engine.
//
// A request names a registered dataset and one parameterized query over it;
// the response carries shared, immutable views of the cached artifacts that
// answered it (no O(n) copies per request) plus a trace of which artifacts
// were built versus reused — the observable face of the engine's
// memoization (see engine.h for the artifact DAG).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dendrogram/dendrogram.h"
#include "dendrogram/reachability.h"
#include "graph/edge.h"

namespace parhc {

enum class QueryType {
  kEmst,            ///< Euclidean MST edges + total weight
  kSingleLinkage,   ///< exactly k flat clusters from the EMST dendrogram
  kHdbscan,         ///< full HDBSCAN* hierarchy at min_pts
  kDbscanStarAt,    ///< DBSCAN* labels at (min_pts, eps)
  kReachability,    ///< OPTICS reachability plot at min_pts
  kStableClusters,  ///< excess-of-mass extraction at (min_pts,
                    ///< min_cluster_size)
};

/// One query against a registered dataset. Fields beyond `type` and
/// `dataset` are read only by the query types annotated above.
struct EngineRequest {
  QueryType type = QueryType::kHdbscan;
  std::string dataset;
  int min_pts = 16;            ///< HDBSCAN*-family density parameter
  double eps = 0;              ///< kDbscanStarAt cut height
  size_t k = 1;                ///< kSingleLinkage cluster count
  size_t min_cluster_size = 5; ///< kStableClusters
  /// kEmst only: < 0 (default) answers with the classic exact MemoGFK
  /// path; >= 0 routes to the partitioned high-dimensional path
  /// (emst/emst_highdim.h) with that (1+eps) pruning bound — eps 0 is the
  /// exact distance decomposition.
  double emst_eps = -1;
};

/// Result of one engine query. Artifact fields are shared immutable
/// snapshots: they stay valid (and unchanged) however the cache evolves
/// after the call. Only the fields relevant to the query type are set.
struct EngineResponse {
  bool ok = false;
  std::string error;

  std::shared_ptr<const std::vector<WeightedEdge>> mst;  ///< kEmst, kHdbscan
  std::shared_ptr<const std::vector<double>> core_dist;  ///< kHdbscan
  std::shared_ptr<const Dendrogram> dendrogram;  ///< kHdbscan, kSingleLinkage
  std::shared_ptr<const ReachabilityPlot> plot;  ///< kReachability
  std::vector<int32_t> labels;      ///< flat clusterings (kNoise = -1)
  std::vector<double> stability;    ///< kStableClusters scores
  /// For batch-dynamic datasets: maps the dense point index used by every
  /// per-point field above (labels, core_dist, dendrogram leaves, MST edge
  /// endpoints) to the point's stable global id — dense index i is the
  /// i-th live global id in ascending order. Null for immutable datasets,
  /// whose points are already indexed 0..n-1.
  std::shared_ptr<const std::vector<uint32_t>> point_ids;
  double mst_weight = 0;            ///< kEmst, kHdbscan
  int32_t num_clusters = 0;         ///< label summary
  size_t num_noise = 0;             ///< label summary
  /// Approximation surface of the high-dimensional EMST path: `approx_eps`
  /// echoes the request's bound (-1 = classic exact path answered),
  /// `partitions` the k-means decomposition width, `cross_pruned` how many
  /// well-separated cross pairs were settled by an eps representative
  /// instead of an exact BCCP descent (always 0 when approx_eps <= 0).
  double approx_eps = -1;
  int partitions = 0;
  size_t cross_pruned = 0;

  /// Artifact keys (e.g. "tree", "knn@50", "cd@10", "mst@10") this query
  /// built versus served from cache, in build/use order.
  std::vector<std::string> built;
  std::vector<std::string> reused;
  double seconds = 0;  ///< wall-clock time answering the query
  /// True iff the engine answered on the concurrent shared-lock fast path
  /// (every needed artifact was already cached).
  bool from_cache = false;
};

/// Summarizes `labels` into the response's cluster/noise counters.
inline void SummarizeLabels(const std::vector<int32_t>& labels,
                            EngineResponse* out) {
  int32_t k = 0;
  size_t noise = 0;
  for (int32_t l : labels) {
    if (l < 0) {
      ++noise;
    } else if (l + 1 > k) {
      k = l + 1;
    }
  }
  out->num_clusters = k;
  out->num_noise = noise;
}

}  // namespace parhc
