// ClusteringEngine: the multi-query serving front-end.
//
// One engine hosts many named datasets (DatasetRegistry) and answers
// EMST / single-linkage / HDBSCAN* / DBSCAN*-at-eps / reachability /
// stable-cluster requests against them, memoizing every pipeline artifact
// (see artifacts.h for the DAG and reuse guarantees).
//
// Concurrency discipline (artifact-DAG executor):
//  * Per dataset, a readers-writer lock: queries against the *immutable*
//    backend always take it shared — the artifact cache itself is a
//    thread-safe DAG of absent/building/ready nodes (artifacts.h), so any
//    number of readers and builders of one dataset coexist, duplicate
//    builds of the same artifact coalesce onto one builder, and
//    independent artifacts build concurrently. Batch-dynamic datasets keep
//    the classic split: shared for cache-only answers, exclusive for
//    builds and mutations (the shard forest is not internally
//    synchronized), which is also what excludes a dataset's builds while
//    it is being mutated.
//  * The BuildExecutor (executor.h) replaces the old engine-wide build
//    mutex: each build is admitted into a bounded set of concurrent
//    builds and runs inside its own TaskArena worker group, so builds for
//    different datasets — and independent artifacts of one dataset —
//    proceed in parallel, each with fork-join semantics identical to a
//    dedicated scheduler of the group's size.
//
// Run() is therefore safe to call from any number of threads; a cache hit
// never waits on a concurrent build, and cold builds of independent
// datasets overlap instead of queueing behind one mutex.
//
// Batch-dynamic datasets add two mutation entry points, InsertBatch and
// DeleteBatch. Mutations are writes end to end: they run as executor tasks
// holding the dataset's exclusive lock, so they serialize with that
// dataset's artifact builds and exclude concurrent readers of the same
// dataset for their duration — queries against other datasets are
// unaffected.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>

#include "engine/executor.h"
#include "engine/registry.h"
#include "engine/request.h"
#include "obs/slowlog.h"
#include "obs/trace.h"
#include "store/errors.h"
#include "util/timer.h"

namespace parhc {

/// Point-in-time copy of the engine's cumulative counters (see
/// ClusteringEngine::counters). Fields are individually exact but not
/// mutually consistent — they are read with relaxed atomics while the
/// engine keeps serving.
struct EngineCounterSnapshot {
  uint64_t queries = 0;      ///< Run() calls
  uint64_t cache_hits = 0;   ///< queries answered on the shared-lock path
  uint64_t builds = 0;       ///< queries that built >= 1 artifact
  uint64_t mutations = 0;    ///< successful InsertBatch/DeleteBatch calls
  uint64_t errors = 0;       ///< failed queries + failed mutations

  /// Space-separated key=value rendering (stable field order) used by the
  /// serving layer's `stats` verb.
  std::string Format() const {
    std::string s;
    auto kv = [&s](const char* k, uint64_t v) {
      s += ' ';
      s += k;
      s += '=';
      s += std::to_string(v);
    };
    kv("engine_queries", queries);
    kv("engine_cache_hits", cache_hits);
    kv("engine_builds", builds);
    kv("engine_mutations", mutations);
    kv("engine_errors", errors);
    return s.substr(1);
  }
};

class ClusteringEngine {
 public:
  /// The dataset table. Register/load/remove datasets through this; safe
  /// to use concurrently with Run().
  DatasetRegistry& registry() { return registry_; }
  const DatasetRegistry& registry() const { return registry_; }

  /// The build admission layer; exposed for its stats snapshot.
  const BuildExecutor& executor() const { return executor_; }

  /// Answers one request, building and caching whatever artifacts it
  /// needs. Thread-safe. Errors (unknown dataset, invalid parameters) come
  /// back as ok == false with `error` set; they never throw.
  EngineResponse Run(const EngineRequest& req) {
    Timer timer;
    EngineResponse out;
    std::shared_ptr<DatasetEntryBase> entry = registry_.Find(req.dataset);
    if (!entry) {
      out.error = "unknown dataset: " + req.dataset;
      out.seconds = timer.Seconds();
      return out;
    }
    {
      // Fast path: answer purely from cached artifacts under a shared
      // lock, concurrently with other readers.
      std::shared_lock<std::shared_mutex> read(entry->mu);
      if (entry->Answer(req, /*allow_build=*/false, &out)) {
        out.seconds = timer.Seconds();
        out.from_cache = true;
        counters_.queries.fetch_add(1, std::memory_order_relaxed);
        counters_.cache_hits.fetch_add(1, std::memory_order_relaxed);
        if (!out.ok) counters_.errors.fetch_add(1, std::memory_order_relaxed);
        return out;
      }
    }
    // Build path: run as an executor task inside a worker group. The
    // immutable backend's artifact DAG is internally synchronized, so a
    // shared lock suffices and same-dataset builds of independent
    // artifacts overlap (duplicates coalesce inside artifacts.h). The
    // dynamic backend mutates unsynchronized shard state, so its builds
    // take the exclusive lock — which is also what serializes them with
    // InsertBatch/DeleteBatch. Either way, re-answer from scratch: another
    // thread may have built the missing artifacts while we waited.
    out = EngineResponse();
    BuildAdmission adm;
    executor_.RunBuild(
        [&] {
          if (entry->is_dynamic()) {
            std::unique_lock<std::shared_mutex> write(entry->mu);
            entry->Answer(req, /*allow_build=*/true, &out);
          } else {
            std::shared_lock<std::shared_mutex> read(entry->mu);
            entry->Answer(req, /*allow_build=*/true, &out);
          }
        },
        &adm);
    out.seconds = timer.Seconds();
    counters_.queries.fetch_add(1, std::memory_order_relaxed);
    if (out.built.empty()) {
      // Lost the race to another builder: everything was cached (or
      // coalesced onto that builder) by the time we ran.
      counters_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      counters_.builds.fetch_add(1, std::memory_order_relaxed);
      RecordBuildProfile(req, out, adm);
    }
    if (!out.ok) counters_.errors.fetch_add(1, std::memory_order_relaxed);
    return out;
  }

  /// Non-blocking cache-only variant of Run: answers iff the dataset's
  /// shared lock is free right now AND every needed artifact is cached
  /// (never builds, never waits on a build). Returns false when the
  /// caller should fall back to Run() — used by the TCP server's event
  /// loop to answer warm reads inline without a worker handoff, which it
  /// may only attempt when no earlier request of the same connection is
  /// still queued (response ordering). Counter effects mirror Run's
  /// fast path exactly.
  bool TryRunCached(const EngineRequest& req, EngineResponse* out) {
    Timer timer;
    *out = EngineResponse();
    std::shared_ptr<DatasetEntryBase> entry = registry_.Find(req.dataset);
    if (!entry) {
      // Same terminal answer Run() gives; no build could change it now.
      out->error = "unknown dataset: " + req.dataset;
      out->seconds = timer.Seconds();
      return true;
    }
    std::shared_lock<std::shared_mutex> read(entry->mu, std::try_to_lock);
    if (!read.owns_lock()) return false;  // a build/mutation holds it
    if (!entry->Answer(req, /*allow_build=*/false, out)) return false;
    out->seconds = timer.Seconds();
    out->from_cache = true;
    counters_.queries.fetch_add(1, std::memory_order_relaxed);
    counters_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    if (!out->ok) counters_.errors.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Inserts one batch of rows into the batch-dynamic dataset `name`.
  /// Returns "" on success (setting *first_gid to the batch's first global
  /// id), else an error message. Thread-safe.
  std::string InsertBatch(const std::string& name,
                          const std::vector<std::vector<double>>& rows,
                          uint32_t* first_gid = nullptr) {
    std::shared_ptr<DatasetEntryBase> entry = registry_.Find(name);
    if (!entry) return "unknown dataset: " + name;
    std::string err = executor_.RunBuild([&] {
      std::unique_lock<std::shared_mutex> write(entry->mu);
      return entry->InsertRows(rows, first_gid);
    });
    CountMutation(err);
    return err;
  }

  /// Tombstones global ids in the batch-dynamic dataset `name`. Returns ""
  /// on success (setting *deleted to the number of points removed; unknown
  /// ids are skipped), else an error message. Thread-safe.
  std::string DeleteBatch(const std::string& name,
                          const std::vector<uint32_t>& gids,
                          size_t* deleted = nullptr) {
    std::shared_ptr<DatasetEntryBase> entry = registry_.Find(name);
    if (!entry) return "unknown dataset: " + name;
    std::string err = executor_.RunBuild([&] {
      std::unique_lock<std::shared_mutex> write(entry->mu);
      return entry->DeleteIds(gids, deleted);
    });
    CountMutation(err);
    return err;
  }

  /// Runs `fn` as an executor task inside a worker group and returns its
  /// result. Serving front-ends use this for work that issues parallel
  /// scheduler tasks *outside* the engine (e.g. the `gen` verb's data
  /// generators): the executor bounds build concurrency and sizes the
  /// group, exactly as for artifact builds.
  template <typename F>
  auto RunExternal(F&& fn) -> decltype(fn()) {
    return executor_.RunBuild(std::forward<F>(fn));
  }

  /// Cumulative serving counters; cheap and safe to read while serving.
  EngineCounterSnapshot counters() const {
    EngineCounterSnapshot s;
    s.queries = counters_.queries.load(std::memory_order_relaxed);
    s.cache_hits = counters_.cache_hits.load(std::memory_order_relaxed);
    s.builds = counters_.builds.load(std::memory_order_relaxed);
    s.mutations = counters_.mutations.load(std::memory_order_relaxed);
    s.errors = counters_.errors.load(std::memory_order_relaxed);
    return s;
  }

  /// Snapshots dataset `name` (points + every cached artifact + manifest)
  /// into directory `dir`. Returns "" on success, else an error message;
  /// filesystem and format problems never throw past this call.
  /// Thread-safe. Runs as an executor task under the dataset's *shared*
  /// lock: saving is read-only, so cache-hit queries keep serving while
  /// the snapshot streams out, and the save overlaps other datasets'
  /// builds like any DAG task.
  std::string SaveDataset(const std::string& name, const std::string& dir) {
    std::shared_ptr<DatasetEntryBase> entry = registry_.Find(name);
    if (!entry) return "unknown dataset: " + name;
    std::string err = executor_.RunBuild([&]() -> std::string {
      std::shared_lock<std::shared_mutex> read(entry->mu);
      try {
        entry->SaveTo(dir);
      } catch (const SnapshotError& e) {
        return e.what();
      }
      return "";
    });
    if (err.empty()) StampSnapshot(*entry, dir);
    return err;
  }

  /// Warm-starts dataset `name` from a snapshot directory written by
  /// SaveDataset, registering (or atomically replacing) it with every
  /// saved artifact already cached — the kd-tree arena and kNN prefix
  /// matrix as zero-copy views of the mapped files. Returns "" on
  /// success, else an error message (corrupt, truncated, or
  /// version-mismatched snapshots are rejected with typed errors
  /// internally; they never abort). Thread-safe: loading happens off to
  /// the side and in-flight queries against a replaced dataset finish on
  /// the old entry. Runs as an executor task because restoring derived
  /// artifacts issues parallel work.
  std::string LoadDataset(const std::string& name, const std::string& dir) {
    std::string err = executor_.RunBuild(
        [&] { return registry_.TryLoadSnapshot(name, dir); });
    if (err.empty()) {
      if (std::shared_ptr<DatasetEntryBase> entry = registry_.Find(name)) {
        StampSnapshot(*entry, dir);
      }
    }
    return err;
  }

  /// Exports dataset `name` as flat rows for the router tier: live global
  /// ids in ascending order plus their coordinates (dim doubles per
  /// point). Returns "" on success, else an error message. Thread-safe.
  /// Runs under the *exclusive* lock — the dynamic backend's shard
  /// accessors lazily rebuild caches while exporting.
  std::string ExportDataset(const std::string& name, int* dim,
                            std::vector<uint32_t>* gids,
                            std::vector<double>* coords) {
    std::shared_ptr<DatasetEntryBase> entry = registry_.Find(name);
    if (!entry) return "unknown dataset: " + name;
    *dim = entry->dim();
    std::unique_lock<std::shared_mutex> write(entry->mu);
    entry->ExportLive(gids, coords);
    return "";
  }

  /// kNN rows of `count` external query points (flattened coords) against
  /// dataset `name`'s live points: row i = sorted *squared* distances to
  /// the k nearest, +inf-padded past the live count. Returns "" on
  /// success. Thread-safe; runs as an executor task (issues parallel
  /// scheduler work) under the exclusive lock.
  std::string KnnForQueries(const std::string& name, size_t k,
                            const std::vector<double>& coords, size_t count,
                            std::vector<double>* rows) {
    std::shared_ptr<DatasetEntryBase> entry = registry_.Find(name);
    if (!entry) return "unknown dataset: " + name;
    if (k == 0) return "k must be in [1, n]";
    if (coords.size() != count * entry->dim()) {
      return "query coordinate count does not match dim";
    }
    return executor_.RunBuild([&]() -> std::string {
      std::unique_lock<std::shared_mutex> write(entry->mu);
      try {
        *rows = entry->KnnForQueries(coords, count, k);
      } catch (const std::exception& e) {
        return e.what();
      }
      return "";
    });
  }

  /// MR-MST of dataset `name`'s live points under externally supplied
  /// *global* core distances (core[i] pairs with the i-th live gid,
  /// ascending); edge endpoints are global ids. Returns "" on success.
  /// Thread-safe; runs as an executor task under the exclusive lock.
  std::string ShardMrMst(const std::string& name,
                         const std::vector<double>& core,
                         std::vector<WeightedEdge>* edges) {
    std::shared_ptr<DatasetEntryBase> entry = registry_.Find(name);
    if (!entry) return "unknown dataset: " + name;
    if (core.size() != entry->num_points()) {
      return "core distance count does not match live point count";
    }
    return executor_.RunBuild([&]() -> std::string {
      std::unique_lock<std::shared_mutex> write(entry->mu);
      try {
        *edges = entry->MutualReachMst(core);
      } catch (const std::exception& e) {
        return e.what();
      }
      return "";
    });
  }

  /// Wires the slow-query log that receives one build-profiler record per
  /// cold artifact build (obs/slowlog.h). Call before serving starts; the
  /// engine never owns the log.
  void set_slowlog(obs::SlowLog* slowlog) { slowlog_ = slowlog; }

 private:
  /// Wire verb naming a query type in slow-log records; matches the
  /// protocol verbs of src/net/protocol.h.
  static const char* VerbName(QueryType type) {
    switch (type) {
      case QueryType::kEmst:
        return "emst";
      case QueryType::kSingleLinkage:
        return "slink";
      case QueryType::kHdbscan:
        return "hdbscan";
      case QueryType::kDbscanStarAt:
        return "dbscan";
      case QueryType::kReachability:
        return "reach";
      case QueryType::kStableClusters:
        return "clusters";
    }
    return "other";
  }

  void RecordBuildProfile(const EngineRequest& req, const EngineResponse& out,
                          const BuildAdmission& adm) {
    obs::SlowLog* log = slowlog_;
    if (log == nullptr) return;
    obs::SlowLogRecord rec;
    rec.kind = obs::SlowLogRecord::Kind::kBuild;
    rec.verb = VerbName(req.type);
    rec.dataset = req.dataset;
    for (const std::string& key : out.built) {
      if (!rec.artifact.empty()) rec.artifact += ',';
      rec.artifact += key;
    }
    rec.queue_us = adm.wait_us;
    rec.total_us = static_cast<uint64_t>(out.seconds * 1e6);
    rec.build_us =
        rec.total_us > rec.queue_us ? rec.total_us - rec.queue_us : 0;
    rec.group = adm.group;
    rec.cache_hit = false;
    rec.trace_id = obs::CurrentTraceId();
    log->RecordBuild(rec);
  }

  /// Records the on-disk size and wall-clock timestamp of the snapshot a
  /// dataset was just saved to (or loaded from) — the per-dataset
  /// snapshot_bytes / snapshot_age metrics read these.
  static void StampSnapshot(DatasetEntryBase& entry, const std::string& dir) {
    uint64_t bytes = 0;
    std::error_code ec;
    std::filesystem::recursive_directory_iterator it(dir, ec), end;
    if (!ec) {
      for (; it != end; it.increment(ec)) {
        if (ec) break;
        std::error_code fec;
        if (it->is_regular_file(fec) && !fec) {
          uintmax_t sz = it->file_size(fec);
          if (!fec) bytes += static_cast<uint64_t>(sz);
        }
      }
    }
    entry.snapshot_bytes.store(bytes, std::memory_order_relaxed);
    entry.snapshot_unix_ms.store(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count(),
        std::memory_order_relaxed);
  }

  void CountMutation(const std::string& err) {
    if (err.empty()) {
      counters_.mutations.fetch_add(1, std::memory_order_relaxed);
    } else {
      counters_.errors.fetch_add(1, std::memory_order_relaxed);
    }
  }

  struct Counters {
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> builds{0};
    std::atomic<uint64_t> mutations{0};
    std::atomic<uint64_t> errors{0};
  };

  DatasetRegistry registry_;
  mutable BuildExecutor executor_;
  Counters counters_;
  obs::SlowLog* slowlog_ = nullptr;
};

}  // namespace parhc
