// ClusteringEngine: the multi-query serving front-end.
//
// One engine hosts many named datasets (DatasetRegistry) and answers
// EMST / single-linkage / HDBSCAN* / DBSCAN*-at-eps / reachability /
// stable-cluster requests against them, memoizing every pipeline artifact
// (see artifacts.h for the DAG and reuse guarantees).
//
// Concurrency discipline (two-level):
//  * Per dataset, a readers-writer lock: queries fully answerable from
//    cache take it shared and run concurrently; queries that must build an
//    artifact take it exclusive. The read-only path issues no parallel
//    work, so any number of client threads may be inside it at once.
//  * One engine-wide build mutex serializes all artifact builds. This both
//    matches the fork-join scheduler's threading model (a single external
//    thread issues parallel work at a time — the build then uses all
//    workers) and serializes mutation of the shared kd-tree annotations
//    (core-distance and component arrays) that MST builds rewrite.
//
// Run() is therefore safe to call from any number of threads; a cache hit
// never waits on a concurrent build of a *different* dataset's artifacts
// (the build holds only its own dataset's lock exclusively).
//
// Batch-dynamic datasets add two mutation entry points, InsertBatch and
// DeleteBatch. Mutations are writes end to end: they take the engine-wide
// build mutex plus the dataset's exclusive lock (mutating the shard forest
// issues parallel work and rewrites shard artifacts), so they serialize
// with artifact builds and exclude concurrent readers of the same dataset
// for their duration — queries against other datasets are unaffected.
#pragma once

#include <mutex>
#include <shared_mutex>
#include <string>

#include "engine/registry.h"
#include "engine/request.h"
#include "store/errors.h"
#include "util/timer.h"

namespace parhc {

class ClusteringEngine {
 public:
  /// The dataset table. Register/load/remove datasets through this; safe
  /// to use concurrently with Run().
  DatasetRegistry& registry() { return registry_; }
  const DatasetRegistry& registry() const { return registry_; }

  /// Answers one request, building and caching whatever artifacts it
  /// needs. Thread-safe. Errors (unknown dataset, invalid parameters) come
  /// back as ok == false with `error` set; they never throw.
  EngineResponse Run(const EngineRequest& req) {
    Timer timer;
    EngineResponse out;
    std::shared_ptr<DatasetEntryBase> entry = registry_.Find(req.dataset);
    if (!entry) {
      out.error = "unknown dataset: " + req.dataset;
      out.seconds = timer.Seconds();
      return out;
    }
    {
      // Fast path: answer purely from cached artifacts under a shared
      // lock, concurrently with other readers.
      std::shared_lock<std::shared_mutex> read(entry->mu);
      if (entry->Answer(req, /*allow_build=*/false, &out)) {
        out.seconds = timer.Seconds();
        return out;
      }
    }
    // Build path: one build at a time engine-wide, exclusive on this
    // dataset. Re-answer from scratch — another thread may have built the
    // missing artifacts while we waited for the locks.
    std::lock_guard<std::mutex> build(build_mu_);
    std::unique_lock<std::shared_mutex> write(entry->mu);
    out = EngineResponse();
    entry->Answer(req, /*allow_build=*/true, &out);
    out.seconds = timer.Seconds();
    return out;
  }

  /// Inserts one batch of rows into the batch-dynamic dataset `name`.
  /// Returns "" on success (setting *first_gid to the batch's first global
  /// id), else an error message. Thread-safe.
  std::string InsertBatch(const std::string& name,
                          const std::vector<std::vector<double>>& rows,
                          uint32_t* first_gid = nullptr) {
    std::shared_ptr<DatasetEntryBase> entry = registry_.Find(name);
    if (!entry) return "unknown dataset: " + name;
    std::lock_guard<std::mutex> build(build_mu_);
    std::unique_lock<std::shared_mutex> write(entry->mu);
    return entry->InsertRows(rows, first_gid);
  }

  /// Tombstones global ids in the batch-dynamic dataset `name`. Returns ""
  /// on success (setting *deleted to the number of points removed; unknown
  /// ids are skipped), else an error message. Thread-safe.
  std::string DeleteBatch(const std::string& name,
                          const std::vector<uint32_t>& gids,
                          size_t* deleted = nullptr) {
    std::shared_ptr<DatasetEntryBase> entry = registry_.Find(name);
    if (!entry) return "unknown dataset: " + name;
    std::lock_guard<std::mutex> build(build_mu_);
    std::unique_lock<std::shared_mutex> write(entry->mu);
    return entry->DeleteIds(gids, deleted);
  }

  /// Snapshots dataset `name` (points + every cached artifact + manifest)
  /// into directory `dir`. Returns "" on success, else an error message;
  /// filesystem and format problems never throw past this call.
  /// Thread-safe, and runs under the dataset's *shared* lock: saving is
  /// read-only, so cache-hit queries keep serving while the snapshot
  /// streams out (only builds and mutations, which take the exclusive
  /// lock, wait).
  std::string SaveDataset(const std::string& name, const std::string& dir) {
    std::shared_ptr<DatasetEntryBase> entry = registry_.Find(name);
    if (!entry) return "unknown dataset: " + name;
    std::shared_lock<std::shared_mutex> read(entry->mu);
    try {
      entry->SaveTo(dir);
    } catch (const SnapshotError& e) {
      return e.what();
    }
    return "";
  }

  /// Warm-starts dataset `name` from a snapshot directory written by
  /// SaveDataset, registering (or atomically replacing) it with every
  /// saved artifact already cached — the kd-tree arena and kNN prefix
  /// matrix as zero-copy views of the mapped files. Returns "" on
  /// success, else an error message (corrupt, truncated, or
  /// version-mismatched snapshots are rejected with typed errors
  /// internally; they never abort). Thread-safe: loading happens off to
  /// the side and in-flight queries against a replaced dataset finish on
  /// the old entry. Takes the engine-wide build mutex because restoring
  /// derived artifacts issues parallel work (the scheduler's
  /// single-external-caller model).
  std::string LoadDataset(const std::string& name, const std::string& dir) {
    std::lock_guard<std::mutex> build(build_mu_);
    return registry_.TryLoadSnapshot(name, dir);
  }

 private:
  DatasetRegistry registry_;
  std::mutex build_mu_;
};

}  // namespace parhc
