// parhc — parallel Euclidean MST and hierarchical spatial clustering.
//
// Umbrella header for the public API:
//   Emst()            — Euclidean minimum spanning tree (4 algorithms)
//   EmstDelaunay()    — 2D-only Delaunay-based EMST
//   Hdbscan()         — HDBSCAN* hierarchy (MST + ordered dendrogram)
//   SingleLinkage()   — single-linkage clustering via the EMST
//   OpticsApproxMst() — approximate OPTICS base-graph MST
//   BuildDendrogram{Sequential,Parallel}(), ComputeReachability(),
//   CutClusters(), KClusters(), DbscanStarLabels()
//   UniformFill(), SeedSpreaderVarden(), ... — dataset generators
//   ClusteringEngine — multi-query serving layer with a memoized
//   artifact cache and dataset registry (src/engine/); batch-dynamic
//   datasets (INSERT/DELETE) over the LSM shard forest (src/dynamic/);
//   SaveDataset/LoadDataset — persistent artifact snapshots with
//   mmap-backed zero-copy warm starts (src/store/)
//
// Reproduction of Wang, Yu, Gu, Shun, "Fast Parallel Algorithms for
// Euclidean Minimum Spanning Tree and Hierarchical Spatial Clustering",
// SIGMOD 2021. See DESIGN.md for the system inventory.
#pragma once

#include "data/generators.h"
#include "data/io.h"
#include "dendrogram/single_linkage.h"
#include "emst/emst.h"
#include "emst/emst_delaunay.h"
#include "emst/emst_highdim.h"
#include "engine/engine.h"
#include "hdbscan/hdbscan.h"
#include "hdbscan/optics_approx.h"
#include "hdbscan/stability.h"
#include "parallel/scheduler.h"
