// Dendrogram representation (paper Section 4).
//
// A dendrogram over n points has 2n-1 nodes: ids 0..n-1 are the point
// leaves; ids n..2n-2 are internal merge nodes, each corresponding to one
// input tree edge. In an *ordered* dendrogram (Section 4.1) the in-order
// traversal of the leaves is the Prim visit order from the source vertex,
// and the in-order internal nodes give the reachability plot.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.h"

namespace parhc {

class Dendrogram {
 public:
  static constexpr uint32_t kNone = 0xffffffffu;

  explicit Dendrogram(size_t n)
      : n_(n),
        parent_(2 * n - 1, kNone),
        left_(n - 1, kNone),
        right_(n - 1, kNone),
        height_(n - 1, 0),
        root_(kNone) {
    PARHC_CHECK(n >= 1);
  }

  size_t num_points() const { return n_; }
  size_t num_nodes() const { return 2 * n_ - 1; }
  uint32_t root() const { return root_; }
  void set_root(uint32_t r) { root_ = r; }

  bool IsLeaf(uint32_t id) const { return id < n_; }

  uint32_t Parent(uint32_t id) const { return parent_[id]; }
  uint32_t Left(uint32_t internal) const { return left_[internal - n_]; }
  uint32_t Right(uint32_t internal) const { return right_[internal - n_]; }
  /// Merge height of an internal node (the removed edge's weight).
  double Height(uint32_t internal) const { return height_[internal - n_]; }

  /// Wires internal node `id` with children `l`, `r` at height `h`.
  void SetInternal(uint32_t id, uint32_t l, uint32_t r, double h) {
    PARHC_DCHECK(id >= n_ && id < 2 * n_ - 1);
    left_[id - n_] = l;
    right_[id - n_] = r;
    height_[id - n_] = h;
    parent_[l] = id;
    parent_[r] = id;
  }

  /// Leaves in in-order (the Prim order for an ordered dendrogram).
  std::vector<uint32_t> InOrderLeaves() const {
    std::vector<uint32_t> out;
    out.reserve(n_);
    InOrder([&](uint32_t id) {
      if (IsLeaf(id)) out.push_back(id);
    });
    return out;
  }

  /// In-order traversal over all nodes (iterative; leaves and internals
  /// alternate: leaf, internal, leaf, internal, ..., leaf).
  template <typename Fn>
  void InOrder(Fn fn) const {
    std::vector<std::pair<uint32_t, bool>> stack;  // (node, expanded)
    stack.push_back({root_, false});
    while (!stack.empty()) {
      auto [id, expanded] = stack.back();
      stack.pop_back();
      if (IsLeaf(id) || expanded) {
        fn(id);
        continue;
      }
      stack.push_back({Right(id), false});
      stack.push_back({id, true});
      stack.push_back({Left(id), false});
    }
  }

  /// Checks structural invariants; used by tests and PARHC_DCHECK callers.
  bool Validate() const {
    if (root_ == kNone) return false;
    std::vector<int> child_count(num_nodes(), 0);
    for (size_t i = 0; i < n_ - 1; ++i) {
      uint32_t id = static_cast<uint32_t>(n_ + i);
      if (left_[i] == kNone || right_[i] == kNone) return false;
      child_count[left_[i]]++;
      child_count[right_[i]]++;
      // Heights are non-decreasing from children to parent.
      if (!IsLeaf(left_[i]) && Height(left_[i]) > height_[i] + 1e-12) {
        return false;
      }
      if (!IsLeaf(right_[i]) && Height(right_[i]) > height_[i] + 1e-12) {
        return false;
      }
      if (parent_[left_[i]] != id || parent_[right_[i]] != id) return false;
    }
    for (uint32_t id = 0; id < num_nodes(); ++id) {
      if (id == root_) {
        if (child_count[id] != 0 || parent_[id] != kNone) return false;
      } else if (child_count[id] != 1) {
        return false;
      }
    }
    return true;
  }

 private:
  size_t n_;
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> left_;
  std::vector<uint32_t> right_;
  std::vector<double> height_;
  uint32_t root_;
};

}  // namespace parhc
