// Flat cluster extraction from dendrograms.
//
//  * CutClusters: single-linkage clustering at distance threshold eps
//    (remove merges above eps; paper Section 2.1's horizontal cut).
//  * KClusters: exactly k clusters by undoing the k-1 heaviest merges.
//  * DbscanStarLabels: DBSCAN* clusters at (eps, minPts) from the HDBSCAN*
//    dendrogram plus core distances — points with cd(p) > eps are noise
//    (the self-edge rule of Section 2.1).
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "dendrogram/dendrogram.h"

namespace parhc {

/// Noise label used by DbscanStarLabels.
inline constexpr int32_t kNoise = -1;

/// Connected components after removing all merges with height > eps.
/// Returns one label in [0, k) per point; labels are dense but arbitrary.
inline std::vector<int32_t> CutClusters(const Dendrogram& d, double eps) {
  std::vector<int32_t> label(d.num_points(), kNoise);
  int32_t next = 0;
  // DFS from the root; a fresh cluster starts at the highest node whose
  // height is <= eps (or at a leaf whose parent merge is above eps).
  std::vector<std::pair<uint32_t, int32_t>> stack;
  stack.push_back({d.root(), -1});
  while (!stack.empty()) {
    auto [id, cluster] = stack.back();
    stack.pop_back();
    if (cluster < 0 && (d.IsLeaf(id) || d.Height(id) <= eps)) {
      cluster = next++;
    }
    if (d.IsLeaf(id)) {
      label[id] = cluster;
      continue;
    }
    stack.push_back({d.Left(id), cluster});
    stack.push_back({d.Right(id), cluster});
  }
  return label;
}

/// Exactly `k` clusters by splitting the k-1 heaviest merges (standard
/// single-linkage flat clustering). k must be in [1, n].
inline std::vector<int32_t> KClusters(const Dendrogram& d, size_t k) {
  PARHC_CHECK(k >= 1 && k <= d.num_points());
  // Greedily split the cluster whose root merge is heaviest.
  auto heavier = [&](uint32_t a, uint32_t b) {
    return d.Height(a) < d.Height(b);  // max-heap on height
  };
  std::priority_queue<uint32_t, std::vector<uint32_t>, decltype(heavier)>
      frontier(heavier);
  std::vector<uint32_t> roots;
  if (d.IsLeaf(d.root())) {
    roots.push_back(d.root());
  } else {
    frontier.push(d.root());
  }
  while (roots.size() + frontier.size() < k) {
    uint32_t top = frontier.top();
    frontier.pop();
    for (uint32_t c : {d.Left(top), d.Right(top)}) {
      if (d.IsLeaf(c)) {
        roots.push_back(c);
      } else {
        frontier.push(c);
      }
    }
  }
  while (!frontier.empty()) {
    roots.push_back(frontier.top());
    frontier.pop();
  }
  // Label each cluster's leaves.
  std::vector<int32_t> label(d.num_points(), kNoise);
  std::vector<uint32_t> stack;
  for (size_t c = 0; c < roots.size(); ++c) {
    stack.push_back(roots[c]);
    while (!stack.empty()) {
      uint32_t id = stack.back();
      stack.pop_back();
      if (d.IsLeaf(id)) {
        label[id] = static_cast<int32_t>(c);
        continue;
      }
      stack.push_back(d.Left(id));
      stack.push_back(d.Right(id));
    }
  }
  return label;
}

/// DBSCAN* clustering at a given eps from the HDBSCAN* dendrogram: cut the
/// dendrogram at eps, then mark every point with core distance > eps as
/// noise (its self-edge was removed). Core points isolated by the cut form
/// singleton clusters, as DBSCAN* prescribes.
inline std::vector<int32_t> DbscanStarLabels(const Dendrogram& d,
                                             const std::vector<double>& core_dist,
                                             double eps) {
  PARHC_CHECK(core_dist.size() == d.num_points());
  std::vector<int32_t> label = CutClusters(d, eps);
  for (size_t i = 0; i < core_dist.size(); ++i) {
    if (core_dist[i] > eps) label[i] = kNoise;
  }
  return label;
}

}  // namespace parhc
