// Reachability plot extraction (paper Sections 2.1, 4.1).
//
// For an ordered dendrogram, the in-order traversal alternates
// leaf, internal, leaf, internal, ..., leaf; the leaves are the Prim visit
// order and the internal node between two consecutive leaves is their merge
// — its height is exactly min_{j<i} d_m(p_i, p_j), the reachability value
// (the Cartesian-tree correspondence of Section 4.1).
#pragma once

#include <limits>
#include <vector>

#include "dendrogram/dendrogram.h"
#include "parallel/list_ranking.h"
#include "parallel/scheduler.h"

namespace parhc {

/// A reachability plot: points in Prim visit order with their reachability
/// values (infinity for the start point).
struct ReachabilityPlot {
  std::vector<uint32_t> order;  ///< original point ids, visit order
  std::vector<double> value;    ///< bar heights
};

/// Extracts the reachability plot from an ordered dendrogram with the
/// work-efficient parallel method of Theorem 4.2: the in-order event list
/// is threaded through the tree (next[last(left(v))] = v,
/// next[v] = first(right(v)), where first/last are the left/right spine
/// feet found by pointer jumping), ranked with parallel list ranking, and
/// the plot read off positionally. O(n log n) work, O(log n) depth beyond
/// the ranking. Tolerates dendrograms of linear depth (sorted-chain trees),
/// where the recursive traversal would overflow no stack but run serially.
inline ReachabilityPlot ComputeReachabilityParallel(const Dendrogram& d) {
  size_t nodes = d.num_nodes();
  size_t n = d.num_points();
  ReachabilityPlot plot;
  if (n == 1) {
    plot.order = {0};
    plot.value = {std::numeric_limits<double>::infinity()};
    return plot;
  }
  // first[v]: leftmost leaf of v's subtree; last[v]: rightmost leaf.
  // Pointer jumping on the child pointers (a leaf is its own fixpoint).
  std::vector<uint32_t> first(nodes), last(nodes);
  ParallelFor(0, nodes, [&](size_t v) {
    uint32_t id = static_cast<uint32_t>(v);
    first[v] = d.IsLeaf(id) ? id : d.Left(id);
    last[v] = d.IsLeaf(id) ? id : d.Right(id);
  });
  size_t rounds = 1;
  while ((size_t{1} << rounds) < nodes + 1) ++rounds;
  std::vector<uint32_t> first2(nodes), last2(nodes);
  for (size_t r = 0; r < rounds; ++r) {
    ParallelFor(0, nodes, [&](size_t v) {
      first2[v] = first[first[v]];
      last2[v] = last[last[v]];
    });
    first.swap(first2);
    last.swap(last2);
  }
  // Thread the in-order event list.
  std::vector<uint32_t> next(nodes, kNil);
  ParallelFor(0, nodes, [&](size_t v) {
    uint32_t id = static_cast<uint32_t>(v);
    if (d.IsLeaf(id)) return;
    next[last[d.Left(id)]] = id;
    next[id] = first[d.Right(id)];
  });
  // Rank: suffix counts give positions from the in-order head.
  std::vector<uint32_t> ones(nodes, 1);
  std::vector<uint32_t> suffix = ListRank(next, ones);
  std::vector<uint32_t> node_at_pos(nodes);
  ParallelFor(0, nodes, [&](size_t v) {
    node_at_pos[nodes - suffix[v]] = static_cast<uint32_t>(v);
  });
  // Leaves occupy the even positions 0, 2, 4, ...; the internal node at
  // position 2i-1 is the merge defining leaf i's reachability value.
  plot.order.resize(n);
  plot.value.resize(n);
  ParallelFor(0, n, [&](size_t i) {
    uint32_t leaf = node_at_pos[2 * i];
    PARHC_DCHECK(d.IsLeaf(leaf));
    plot.order[i] = leaf;
    plot.value[i] = i == 0 ? std::numeric_limits<double>::infinity()
                           : d.Height(node_at_pos[2 * i - 1]);
  });
  return plot;
}

/// Extracts the reachability plot from an ordered dendrogram (sequential
/// in-order traversal; reference implementation).
inline ReachabilityPlot ComputeReachability(const Dendrogram& d) {
  ReachabilityPlot plot;
  plot.order.reserve(d.num_points());
  plot.value.reserve(d.num_points());
  double pending = std::numeric_limits<double>::infinity();
  d.InOrder([&](uint32_t id) {
    if (d.IsLeaf(id)) {
      plot.order.push_back(id);
      plot.value.push_back(pending);
    } else {
      pending = d.Height(id);
    }
  });
  return plot;
}

}  // namespace parhc
