// Single-linkage clustering (paper Sections 1, 4): the ordered dendrogram of
// the EMST solves single-linkage hierarchical clustering.
#pragma once

#include "dendrogram/builder.h"
#include "dendrogram/cluster_extraction.h"
#include "dendrogram/reachability.h"
#include "emst/emst.h"

namespace parhc {

/// EMST plus its ordered dendrogram.
struct SingleLinkageResult {
  std::vector<WeightedEdge> emst;
  Dendrogram dendrogram;

  /// Flat clustering with exactly k clusters.
  std::vector<int32_t> Clusters(size_t k) const {
    return KClusters(dendrogram, k);
  }
  /// Flat clustering at a distance threshold.
  std::vector<int32_t> ClustersAt(double eps) const {
    return CutClusters(dendrogram, eps);
  }
};

/// Runs single-linkage clustering over `pts`.
template <int D>
SingleLinkageResult SingleLinkage(const std::vector<Point<D>>& pts,
                                  EmstAlgorithm algo = EmstAlgorithm::kMemoGfk,
                                  PhaseBreakdown* phases = nullptr,
                                  uint32_t source = 0) {
  std::vector<WeightedEdge> mst = Emst(pts, algo, phases);
  Timer t;
  Dendrogram dendro(1);
  {
    PhaseTimer phase(phases, &PhaseBreakdown::dendrogram, "phase:dendrogram");
    if (pts.size() == 1) {
      dendro.set_root(0);
    } else {
      dendro = BuildDendrogramParallel(pts.size(), mst, source);
    }
  }
  if (phases) phases->total += t.Seconds();
  return SingleLinkageResult{std::move(mst), std::move(dendro)};
}

}  // namespace parhc
