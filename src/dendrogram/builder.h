// Ordered dendrogram construction (paper Section 4).
//
// Sequential algorithm: process tree edges in increasing weight order with a
// union-find; each edge's internal node takes the current cluster of the
// endpoint closer (in unweighted hop distance) to the source as its left
// child — this yields the *ordered* dendrogram whose in-order leaf
// traversal is the Prim visit order (Theorem 4.2's ordering rule).
//
// Parallel algorithm (Section 4.2, with the paper's implementation
// simplifications): recursively split the edges into the ~m/10 heaviest
// ("heavy") and the rest; the light edges decompose into vertex-disjoint
// subproblems (components of the light forest over the *current* contracted
// clusters), which are built in parallel; the heavy subproblem is then
// built on top, its leaves resolving to the light subproblem roots through
// the shared union-find. Subproblem finding is sequential per level (the
// paper's choice), and small subproblems switch to the sequential builder.
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "dendrogram/dendrogram.h"
#include "graph/edge.h"
#include "graph/union_find.h"
#include "parallel/euler_tour.h"
#include "parallel/scheduler.h"
#include "parallel/sort.h"
#include "util/check.h"

namespace parhc {
namespace internal {

/// Shared state for one dendrogram construction.
struct DendroState {
  Dendrogram* dendro;
  UnionFind uf;
  std::vector<uint32_t> cur_node;   ///< UF representative -> cluster node
  std::vector<uint32_t> hop;        ///< vertex -> hop distance from source
  std::atomic<uint32_t> next_internal;
  size_t seq_cutoff;

  DendroState(Dendrogram* d, size_t n)
      : dendro(d), uf(n), cur_node(n), next_internal(static_cast<uint32_t>(n)) {
    for (size_t i = 0; i < n; ++i) cur_node[i] = static_cast<uint32_t>(i);
  }
};

/// Bottom-up ordered build of one subproblem. Edges in a subproblem span
/// vertices disjoint from concurrently running subproblems, so the shared
/// union-find and cur_node accesses never race.
inline void DendroSeqBuild(DendroState& st, std::vector<WeightedEdge> edges) {
  std::sort(edges.begin(), edges.end());
  for (const WeightedEdge& e : edges) {
    uint32_t ru = st.uf.Find(e.u);
    uint32_t rv = st.uf.Find(e.v);
    PARHC_CHECK_MSG(ru != rv, "input edges contain a cycle");
    uint32_t cu = st.cur_node[ru];
    uint32_t cv = st.cur_node[rv];
    uint32_t id = st.next_internal.fetch_add(1, std::memory_order_relaxed);
    // Ordering rule: the endpoint nearer the source goes left. Adjacent
    // tree vertices differ by exactly one hop, so there are no ties.
    if (st.hop[e.u] < st.hop[e.v]) {
      st.dendro->SetInternal(id, cu, cv, e.w);
    } else {
      st.dendro->SetInternal(id, cv, cu, e.w);
    }
    st.uf.Union(ru, rv);
    st.cur_node[st.uf.Find(ru)] = id;
  }
}

inline void DendroBuildRec(DendroState& st, std::vector<WeightedEdge> edges) {
  if (edges.size() <= st.seq_cutoff) {
    DendroSeqBuild(st, std::move(edges));
    return;
  }
  size_t m = edges.size();
  size_t heavy_count = std::max<size_t>(1, m / 10);  // paper uses m/10
  std::nth_element(edges.begin(), edges.begin() + (m - heavy_count),
                   edges.end());
  std::vector<WeightedEdge> heavy(edges.begin() + (m - heavy_count),
                                  edges.end());
  edges.resize(m - heavy_count);  // the light edges

  // Light-edge subproblems: components of the light forest over the current
  // contracted clusters (union-find representatives). Sequential per level,
  // as in the paper's implementation.
  std::unordered_map<uint32_t, uint32_t> local_of_rep;
  std::vector<uint32_t> lparent;
  auto local_idx = [&](uint32_t rep) {
    auto [it, inserted] = local_of_rep.try_emplace(
        rep, static_cast<uint32_t>(lparent.size()));
    if (inserted) lparent.push_back(it->second);
    return it->second;
  };
  std::function<uint32_t(uint32_t)> lfind = [&](uint32_t x) {
    while (lparent[x] != x) {
      lparent[x] = lparent[lparent[x]];
      x = lparent[x];
    }
    return x;
  };
  std::vector<std::pair<uint32_t, uint32_t>> ends(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    uint32_t a = local_idx(st.uf.Find(edges[i].u));
    uint32_t b = local_idx(st.uf.Find(edges[i].v));
    ends[i] = {a, b};
    uint32_t ra = lfind(a), rb = lfind(b);
    if (ra != rb) lparent[ra] = rb;
  }
  std::unordered_map<uint32_t, uint32_t> group_of_root;
  std::vector<std::vector<WeightedEdge>> groups;
  for (size_t i = 0; i < edges.size(); ++i) {
    uint32_t r = lfind(ends[i].first);
    auto [it, inserted] =
        group_of_root.try_emplace(r, static_cast<uint32_t>(groups.size()));
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(edges[i]);
  }
  edges.clear();
  edges.shrink_to_fit();

  // Light subproblems are vertex-disjoint: build them in parallel.
  ParallelFor(
      0, groups.size(),
      [&](size_t g) { DendroBuildRec(st, std::move(groups[g])); }, 1);
  // The heavy subproblem sits on top of the light roots.
  DendroBuildRec(st, std::move(heavy));
}

}  // namespace internal

/// Builds the ordered dendrogram of the weighted tree `edges` (n vertices,
/// n-1 edges) with Prim order anchored at `source`. Sequential bottom-up
/// algorithm (the paper's baseline).
inline Dendrogram BuildDendrogramSequential(size_t n,
                                            const std::vector<WeightedEdge>& edges,
                                            uint32_t source) {
  PARHC_CHECK(edges.size() + 1 == n);
  Dendrogram d(n);
  internal::DendroState st(&d, n);
  // Hop distances by BFS over a CSR adjacency (two counting passes instead
  // of 2(n-1) vector push_backs — this builder is also the clustering
  // engine's fast dendrogram path at low worker counts, so constant factors
  // matter). Values equal the Euler-tour distances used by the parallel
  // builder.
  st.hop.assign(n, kNil);
  std::vector<uint32_t> offset(n + 1, 0);
  for (const auto& e : edges) {
    ++offset[e.u + 1];
    ++offset[e.v + 1];
  }
  for (size_t i = 0; i < n; ++i) offset[i + 1] += offset[i];
  std::vector<uint32_t> nbr(2 * edges.size());
  {
    std::vector<uint32_t> fill(offset.begin(), offset.end() - 1);
    for (const auto& e : edges) {
      nbr[fill[e.u]++] = e.v;
      nbr[fill[e.v]++] = e.u;
    }
  }
  std::vector<uint32_t> queue;
  queue.reserve(n);
  queue.push_back(source);
  st.hop[source] = 0;
  for (size_t head = 0; head < queue.size(); ++head) {
    uint32_t u = queue[head];
    for (uint32_t i = offset[u]; i < offset[u + 1]; ++i) {
      uint32_t v = nbr[i];
      if (st.hop[v] == kNil) {
        st.hop[v] = st.hop[u] + 1;
        queue.push_back(v);
      }
    }
  }
  st.seq_cutoff = edges.size();  // everything in one sequential pass
  internal::DendroSeqBuild(st, edges);
  if (n == 1) {
    d.set_root(0);
  } else {
    d.set_root(st.cur_node[st.uf.Find(0)]);
  }
  PARHC_DCHECK(d.Validate());
  return d;
}

/// Builds the same ordered dendrogram with the parallel top-down
/// divide-and-conquer algorithm of Section 4.2. `seq_cutoff` = 0 selects
/// the automatic threshold (max(2048, n/10), mirroring the paper's
/// switch-to-sequential heuristic).
inline Dendrogram BuildDendrogramParallel(size_t n,
                                          const std::vector<WeightedEdge>& edges,
                                          uint32_t source,
                                          size_t seq_cutoff = 0) {
  PARHC_CHECK(edges.size() + 1 == n);
  Dendrogram d(n);
  internal::DendroState st(&d, n);
  // Vertex distances via Euler tour + list ranking (Section 4.2).
  std::vector<TreeEdge> tree_edges(edges.size());
  ParallelFor(0, edges.size(), [&](size_t i) {
    tree_edges[i] = {edges[i].u, edges[i].v};
  });
  st.hop = TreeHopDistances(n, tree_edges, source);
  st.seq_cutoff =
      seq_cutoff == 0 ? std::max<size_t>(2048, n / 10) : seq_cutoff;
  internal::DendroBuildRec(st, edges);
  if (n == 1) {
    d.set_root(0);
  } else {
    d.set_root(st.cur_node[st.uf.Find(0)]);
  }
  PARHC_DCHECK(d.Validate());
  return d;
}

}  // namespace parhc
