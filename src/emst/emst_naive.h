// EMST-Naive (paper Section 5 baseline): materialize the full WSPD, compute
// the BCCP edge of every pair, and run one MST pass over all edges.
#pragma once

#include <optional>
#include <vector>

#include "emst/duplicates.h"
#include "emst/phase_breakdown.h"
#include "graph/kruskal.h"
#include "spatial/bccp.h"
#include "spatial/wspd.h"
#include "util/timer.h"

namespace parhc {

/// Computes the Euclidean MST of `pts` with the naive WSPD + all-BCCP
/// method. O(n^2) work in the worst case, O(log^2 n) depth.
template <int D>
std::vector<WeightedEdge> EmstNaive(const std::vector<Point<D>>& pts,
                                    PhaseBreakdown* phases = nullptr) {
  Timer total;
  std::optional<KdTree<D>> tree;
  {
    PhaseTimer phase(phases, &PhaseBreakdown::build_tree, "phase:build_tree");
    tree.emplace(pts, /*leaf_size=*/1);
  }

  std::vector<WspdPair> pairs;
  {
    PhaseTimer phase(phases, &PhaseBreakdown::wspd, "phase:wspd");
    GeometricSeparation<D> sep{2.0};
    pairs = MaterializeWspd(*tree, sep);
  }

  std::vector<WeightedEdge> mst;
  {
    PhaseTimer phase(phases, &PhaseBreakdown::kruskal, "phase:kruskal");
    std::vector<WeightedEdge> edges(pairs.size());
    ParallelFor(0, pairs.size(), [&](size_t i) {
      ClosestPair cp = Bccp(*tree, pairs[i].a, pairs[i].b);
      edges[i] = {cp.u, cp.v, cp.dist};
    });
    std::vector<WeightedEdge> dup =
        internal::DuplicateLeafEdges(*tree, /*use_core_dist=*/false);
    edges.insert(edges.end(), dup.begin(), dup.end());
    mst = KruskalMst(pts.size(), std::move(edges));
  }
  if (phases) phases->total += total.Seconds();
  return mst;
}

}  // namespace parhc
