// EMST-Naive (paper Section 5 baseline): materialize the full WSPD, compute
// the BCCP edge of every pair, and run one MST pass over all edges.
#pragma once

#include <vector>

#include "emst/duplicates.h"
#include "emst/phase_breakdown.h"
#include "graph/kruskal.h"
#include "spatial/bccp.h"
#include "spatial/wspd.h"
#include "util/timer.h"

namespace parhc {

/// Computes the Euclidean MST of `pts` with the naive WSPD + all-BCCP
/// method. O(n^2) work in the worst case, O(log^2 n) depth.
template <int D>
std::vector<WeightedEdge> EmstNaive(const std::vector<Point<D>>& pts,
                                    PhaseBreakdown* phases = nullptr) {
  Timer total;
  Timer t;
  KdTree<D> tree(pts, /*leaf_size=*/1);
  if (phases) phases->build_tree += t.Seconds();

  t.Reset();
  GeometricSeparation<D> sep{2.0};
  std::vector<WspdPair> pairs = MaterializeWspd(tree, sep);
  if (phases) phases->wspd += t.Seconds();

  t.Reset();
  std::vector<WeightedEdge> edges(pairs.size());
  ParallelFor(0, pairs.size(), [&](size_t i) {
    ClosestPair cp = Bccp(tree, pairs[i].a, pairs[i].b);
    edges[i] = {cp.u, cp.v, cp.dist};
  });
  std::vector<WeightedEdge> dup =
      internal::DuplicateLeafEdges(tree, /*use_core_dist=*/false);
  edges.insert(edges.end(), dup.begin(), dup.end());
  std::vector<WeightedEdge> mst = KruskalMst(pts.size(), std::move(edges));
  if (phases) {
    phases->kruskal += t.Seconds();
    phases->total += total.Seconds();
  }
  return mst;
}

}  // namespace parhc
