// High-dimensional EMST via distance decomposition over k-means partitions.
//
// Low-dimensional EMST methods rely on kd-tree pruning, which degrades at
// embedding dimensions (d = 64..768). This path instead applies the
// distance-decomposition result (Lettich, arXiv:2406.01739 — the same rule
// the batch-dynamic shard forest in src/dynamic/ uses): for any disjoint
// partition of the input,
//
//   EMST(union)  ⊆  ∪ partition EMSTs  ∪  cross-partition BCCP candidates,
//
// where the cross candidates are the BCCP edges of an s=2 well-separated
// decomposition between each pair of partition trees. Kruskal over that
// candidate set reproduces the exact EMST for *any* partition, so the
// k-means partitioning is purely a performance choice: it groups nearby
// points so the per-partition MemoGFK runs see compact trees and the cross
// passes see mostly far-apart (cheaply separable) node pairs.
//
// The `eps` knob (Jayaram et al. 2023-style pruning, arXiv:2304.01434): a
// well-separated cross pair whose box bounds already agree to within
// (1+eps) — max box distance <= (1+eps) * min box distance — is settled by
// a representative pair instead of an exact BCCP descent. Every candidate
// edge kept this way is within (1+eps) of that pair's exact BCCP, every
// dropped descent is replaced (never removed), and the output is still a
// spanning tree measured with true edge weights, so
//
//   exact weight  <=  eps-path weight,
//
// and the eps-path weight tracks (1+eps) * exact; the CI bench gate
// (BENCH_highdim_emst.json) enforces the ratio on every run. eps = 0
// requests the exact decomposition.
//
// Partitioning is deterministic at any worker count: k-means seeds from
// evenly spaced input indices and accumulates center updates over fixed
// index blocks combined in block order, so the candidate set — and with
// the deterministic Kruskal edge order, the output MST — is reproducible.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "emst/emst_memogfk.h"
#include "geometry/distance.h"
#include "graph/kruskal.h"
#include "parallel/primitives.h"
#include "parallel/scheduler.h"
#include "spatial/cross_traverse.h"

namespace parhc {

struct HighDimEmstOptions {
  /// 0 = exact decomposition; > 0 = (1+eps)-bounded cross-pair pruning.
  double eps = 0.0;
  /// Number of k-means partitions; 0 picks automatically from n.
  int partitions = 0;
  /// Lloyd refinement rounds (seeding is deterministic regardless).
  int kmeans_iters = 4;
};

/// Build statistics surfaced through the engine response.
struct HighDimEmstInfo {
  int partitions = 1;
  size_t cross_pairs = 0;    ///< cross pairs settled by an exact BCCP
  size_t cross_pruned = 0;   ///< cross pairs settled by an eps representative
  size_t candidate_edges = 0;
};

namespace internal {

/// Deterministic Lloyd k-means assignment: centers seed from evenly spaced
/// input indices; each round reassigns via the batched distance kernel
/// (lowest center index wins ties) and recomputes centers over fixed index
/// blocks combined in block order, so the result is independent of the
/// worker count and of scheduling.
template <int D>
std::vector<uint32_t> KmeansAssign(const std::vector<Point<D>>& pts, int k,
                                   int iters) {
  const size_t n = pts.size();
  std::vector<Point<D>> centers(k);
  for (int c = 0; c < k; ++c) {
    centers[c] = pts[(static_cast<size_t>(c) * n) / static_cast<size_t>(k)];
  }
  std::vector<uint32_t> assign(n, 0);
  // Fixed blocking (depends only on n) keeps the center accumulation
  // deterministic: workers fill disjoint per-block partials, the combine
  // runs sequentially in block order.
  const size_t nb = std::min<size_t>((n + 4095) / 4096, 64);
  const size_t block = (n + nb - 1) / nb;
  for (int it = 0; it < iters; ++it) {
    ParallelFor(0, n, [&](size_t i) {
      double sq[kDistanceBatch];
      double best = std::numeric_limits<double>::infinity();
      uint32_t bc = 0;
      for (int c0 = 0; c0 < k; c0 += static_cast<int>(kDistanceBatch)) {
        size_t cnt = std::min<size_t>(kDistanceBatch, k - c0);
        BatchSquaredDistances(pts[i], centers.data() + c0, cnt, sq);
        for (size_t c = 0; c < cnt; ++c) {
          if (sq[c] < best) {
            best = sq[c];
            bc = static_cast<uint32_t>(c0 + c);
          }
        }
      }
      assign[i] = bc;
    });
    if (it + 1 == iters) break;
    std::vector<std::vector<Point<D>>> sums(nb);
    std::vector<std::vector<size_t>> counts(nb);
    ParallelFor(
        0, nb,
        [&](size_t b) {
          sums[b].assign(k, Point<D>{});
          counts[b].assign(k, 0);
          size_t lo = b * block, hi = std::min(n, lo + block);
          for (size_t i = lo; i < hi; ++i) {
            Point<D>& s = sums[b][assign[i]];
            for (int d = 0; d < D; ++d) s[d] += pts[i][d];
            ++counts[b][assign[i]];
          }
        },
        1);
    for (int c = 0; c < k; ++c) {
      Point<D> total{};
      size_t cnt = 0;
      for (size_t b = 0; b < nb; ++b) {
        for (int d = 0; d < D; ++d) total[d] += sums[b][c][d];
        cnt += counts[b][c];
      }
      if (cnt == 0) continue;  // empty cluster keeps its previous center
      for (int d = 0; d < D; ++d) {
        centers[c][d] = total[d] / static_cast<double>(cnt);
      }
    }
  }
  return assign;
}

/// Cross-partition candidate edges between two partition trees, in global
/// id space: one edge per s=2 well-separated cross pair — the pair's exact
/// BCCP, or (eps path) a representative pair when the pair's box bounds
/// are already (1+eps)-tight. Appends to `out`.
template <int D>
void CrossPartitionCandidates(const KdTree<D>& ta, const KdTree<D>& tb,
                              const std::vector<uint32_t>& ga,
                              const std::vector<uint32_t>& gb, double eps,
                              HighDimEmstInfo* info,
                              std::vector<WeightedEdge>& out) {
  auto ida = [&](uint32_t i) { return ga[i]; };
  auto idb = [&](uint32_t j) { return gb[j]; };
  std::vector<std::vector<WeightedEdge>> local(NumWorkers());
  std::atomic<size_t> exact{0}, pruned{0};
  const double tight = (1.0 + eps) * (1.0 + eps);
  CrossDualTraverse(
      ta, tb, [](uint32_t, uint32_t) { return false; },
      [&](uint32_t a, uint32_t b) {
        return WellSeparated(ta.NodeBox(a), tb.NodeBox(b), 2.0);
      },
      [&](uint32_t a, uint32_t b, bool separated) {
        auto& sink = local[Scheduler::Get().MyId()];
        if (separated && eps > 0) {
          double lb2 = ta.NodeBox(a).MinSquaredDistance(tb.NodeBox(b));
          double ub2 = ta.NodeBox(a).MaxSquaredDistance(tb.NodeBox(b));
          if (ub2 <= tight * lb2) {
            uint32_t i = ta.NodeBegin(a), j = tb.NodeBegin(b);
            sink.push_back({ida(ta.id(i)), idb(tb.id(j)),
                            DistanceDispatch(ta.point(i), tb.point(j))});
            pruned.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        }
        ClosestPair cp = CrossBccp(ta, tb, a, b, ida, idb);
        sink.push_back({cp.u, cp.v, cp.dist});
        exact.fetch_add(1, std::memory_order_relaxed);
      });
  std::vector<WeightedEdge> edges = Flatten(local);
  out.insert(out.end(), edges.begin(), edges.end());
  if (info != nullptr) {
    info->cross_pairs += exact.load();
    info->cross_pruned += pruned.load();
  }
}

}  // namespace internal

/// EMST (exact for eps = 0, (1+eps)-weight otherwise) over the k-means
/// distance decomposition. Point ids in the returned edges are input
/// indices. Small inputs fall back to a single MemoGFK tree.
template <int D>
std::vector<WeightedEdge> HighDimEmst(const std::vector<Point<D>>& pts,
                                      const HighDimEmstOptions& opts = {},
                                      HighDimEmstInfo* info = nullptr) {
  const size_t n = pts.size();
  HighDimEmstInfo local_info;
  if (info == nullptr) info = &local_info;
  *info = HighDimEmstInfo{};
  if (n < 2) return {};
  int parts = opts.partitions;
  if (parts <= 0) {
    parts = n < 2048 ? 1
                     : static_cast<int>(std::min<size_t>(16, n / 1024));
  }
  parts = static_cast<int>(std::min<size_t>(parts, n));
  if (parts <= 1) {
    info->partitions = 1;
    KdTree<D> tree(pts, /*leaf_size=*/1);
    std::vector<WeightedEdge> mst = EmstMemoGfkOnTree(tree);
    info->candidate_edges = mst.size();
    return mst;
  }

  std::vector<uint32_t> assign =
      internal::KmeansAssign(pts, parts, opts.kmeans_iters);
  std::vector<std::vector<Point<D>>> ppts(parts);
  std::vector<std::vector<uint32_t>> gids(parts);
  for (size_t i = 0; i < n; ++i) {
    ppts[assign[i]].push_back(pts[i]);
    gids[assign[i]].push_back(static_cast<uint32_t>(i));
  }
  // Drop empty partitions (possible when k-means collapses clusters).
  size_t np = 0;
  for (int p = 0; p < parts; ++p) {
    if (ppts[p].empty()) continue;
    if (static_cast<size_t>(p) != np) {
      ppts[np] = std::move(ppts[p]);
      gids[np] = std::move(gids[p]);
    }
    ++np;
  }
  ppts.resize(np);
  gids.resize(np);
  info->partitions = static_cast<int>(np);

  // Per-partition exact MSTs (MemoGFK; inner algorithms parallelize).
  std::vector<WeightedEdge> candidates;
  std::vector<std::unique_ptr<KdTree<D>>> trees(np);
  for (size_t p = 0; p < np; ++p) {
    trees[p] = std::make_unique<KdTree<D>>(ppts[p], /*leaf_size=*/1);
    std::vector<WeightedEdge> mst = EmstMemoGfkOnTree(*trees[p]);
    for (const WeightedEdge& e : mst) {
      candidates.push_back({gids[p][e.u], gids[p][e.v], e.w});
    }
  }
  // Cross-partition candidates for every partition pair.
  for (size_t a = 0; a < np; ++a) {
    for (size_t b = a + 1; b < np; ++b) {
      internal::CrossPartitionCandidates(*trees[a], *trees[b], gids[a],
                                         gids[b], opts.eps, info, candidates);
    }
  }
  info->candidate_edges = candidates.size();
  return KruskalMst(n, std::move(candidates));
}

}  // namespace parhc
