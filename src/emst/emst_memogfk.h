// EMST-MemoGFK (paper Algorithm 3): GeoFilterKruskal with the memory
// optimization — the paper's fastest EMST method.
#pragma once

#include <optional>
#include <vector>

#include "emst/duplicates.h"
#include "emst/memogfk_driver.h"

namespace parhc {

/// MemoGFK over a prebuilt tree (leaf_size must be 1). Mutates the tree's
/// component annotations; concurrent callers must serialize on the tree.
/// Used by the clustering engine to reuse one cached tree across queries.
template <int D>
std::vector<WeightedEdge> EmstMemoGfkOnTree(KdTree<D>& tree,
                                            PhaseBreakdown* phases = nullptr,
                                            const MemoGfkOptions& opts = {}) {
  GeometricSeparation<D> sep{2.0};
  auto lb = [&tree](uint32_t a, uint32_t b) {
    return std::sqrt(tree.NodeBox(a).MinSquaredDistance(tree.NodeBox(b)));
  };
  auto ub = [&tree](uint32_t a, uint32_t b) {
    return std::sqrt(tree.NodeBox(a).MaxSquaredDistance(tree.NodeBox(b)));
  };
  auto bccp = [&tree](uint32_t a, uint32_t b) { return Bccp(tree, a, b); };
  return internal::MemoGfkMst(
      tree, sep, lb, ub, bccp,
      internal::DuplicateLeafEdges(tree, /*use_core_dist=*/false), phases,
      opts);
}

/// Computes the Euclidean MST with MemoGFK. O(n^2) work, O(log^2 n) depth,
/// and only the per-round window of WSPD pairs is ever materialized.
template <int D>
std::vector<WeightedEdge> EmstMemoGfk(const std::vector<Point<D>>& pts,
                                      PhaseBreakdown* phases = nullptr,
                                      const MemoGfkOptions& opts = {}) {
  Timer total;
  std::optional<KdTree<D>> tree;
  {
    PhaseTimer phase(phases, &PhaseBreakdown::build_tree, "phase:build_tree");
    tree.emplace(pts, /*leaf_size=*/1);
  }
  std::vector<WeightedEdge> mst = EmstMemoGfkOnTree(*tree, phases, opts);
  if (phases) phases->total += total.Seconds();
  return mst;
}

}  // namespace parhc
