// EMST-MemoGFK (paper Algorithm 3): GeoFilterKruskal with the memory
// optimization — the paper's fastest EMST method.
#pragma once

#include <vector>

#include "emst/duplicates.h"
#include "emst/memogfk_driver.h"

namespace parhc {

/// Computes the Euclidean MST with MemoGFK. O(n^2) work, O(log^2 n) depth,
/// and only the per-round window of WSPD pairs is ever materialized.
template <int D>
std::vector<WeightedEdge> EmstMemoGfk(const std::vector<Point<D>>& pts,
                                      PhaseBreakdown* phases = nullptr,
                                      const MemoGfkOptions& opts = {}) {
  Timer total;
  Timer t;
  KdTree<D> tree(pts, /*leaf_size=*/1);
  if (phases) phases->build_tree += t.Seconds();

  using Node = typename KdTree<D>::Node;
  GeometricSeparation<D> sep{2.0};
  auto lb = [](const Node* a, const Node* b) {
    return std::sqrt(a->box.MinSquaredDistance(b->box));
  };
  auto ub = [](const Node* a, const Node* b) {
    return std::sqrt(a->box.MaxSquaredDistance(b->box));
  };
  auto bccp = [&tree](const Node* a, const Node* b) {
    return Bccp(tree, a, b);
  };
  std::vector<WeightedEdge> mst = internal::MemoGfkMst(
      tree, sep, lb, ub, bccp,
      internal::DuplicateLeafEdges(tree, /*use_core_dist=*/false), phases,
      opts);
  if (phases) phases->total += total.Seconds();
  return mst;
}

}  // namespace parhc
