// Per-phase timing breakdown (Figure 8 of the paper).
#pragma once

namespace parhc {

/// Seconds spent in each phase of an EMST / HDBSCAN* run. Drivers fill the
/// phases they execute; unused phases stay 0.
struct PhaseBreakdown {
  double build_tree = 0;   ///< k-d tree construction
  double core_dist = 0;    ///< kNN core distances (HDBSCAN* only)
  double wspd = 0;         ///< WSPD construction / MemoGFK tree traversals
  double kruskal = 0;      ///< Kruskal MST batches (incl. BCCP on pairs)
  double delaunay = 0;     ///< Delaunay triangulation (2D method only)
  double dendrogram = 0;   ///< ordered dendrogram construction
  double total = 0;

  PhaseBreakdown& operator+=(const PhaseBreakdown& o) {
    build_tree += o.build_tree;
    core_dist += o.core_dist;
    wspd += o.wspd;
    kruskal += o.kruskal;
    delaunay += o.delaunay;
    dendrogram += o.dendrogram;
    total += o.total;
    return *this;
  }
};

}  // namespace parhc
