// Per-phase timing breakdown (Figure 8 of the paper), with trace-span
// emission: every timed phase is also an obs::Span, so a traced request's
// dump shows phase:wspd / phase:kruskal / ... nested under the artifact
// build that ran them (see obs/trace.h for the hierarchy).
#pragma once

#include "obs/trace.h"
#include "util/timer.h"

namespace parhc {

/// Seconds spent in each phase of an EMST / HDBSCAN* run. Drivers fill the
/// phases they execute; unused phases stay 0.
struct PhaseBreakdown {
  double build_tree = 0;   ///< k-d tree construction
  double core_dist = 0;    ///< kNN core distances (HDBSCAN* only)
  double wspd = 0;         ///< WSPD construction / MemoGFK tree traversals
  double kruskal = 0;      ///< Kruskal MST batches (incl. BCCP on pairs)
  double delaunay = 0;     ///< Delaunay triangulation (2D method only)
  double dendrogram = 0;   ///< ordered dendrogram construction
  double total = 0;

  PhaseBreakdown& operator+=(const PhaseBreakdown& o) {
    build_tree += o.build_tree;
    core_dist += o.core_dist;
    wspd += o.wspd;
    kruskal += o.kruskal;
    delaunay += o.delaunay;
    dendrogram += o.dendrogram;
    total += o.total;
    return *this;
  }
};

/// RAII phase measurement: times its scope into `phases->*field` (no-op
/// accumulation when `phases` is null) and emits `span_name` as a trace
/// span either way. This replaces the old Timer-and-manual-add pattern so
/// a phase cannot be timed without also being traceable; when tracing is
/// off the span costs one relaxed load (obs/trace.h).
class PhaseTimer {
 public:
  PhaseTimer(PhaseBreakdown* phases, double PhaseBreakdown::*field,
             const char* span_name)
      : phases_(phases), field_(field), span_(span_name, "algo") {}
  ~PhaseTimer() { Stop(); }

  /// Ends the phase now (idempotent): accumulates the elapsed time and
  /// closes the span, for phases whose scope outlives the timed work.
  void Stop() {
    if (stopped_) return;
    stopped_ = true;
    if (phases_ != nullptr) phases_->*field_ += timer_.Seconds();
    span_.End();
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  PhaseBreakdown* phases_;
  double PhaseBreakdown::*field_;
  obs::Span span_;
  Timer timer_;
  bool stopped_ = false;
};

}  // namespace parhc
