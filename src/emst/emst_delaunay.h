// EMST-Delaunay (paper Appendix A.1): in 2D the EMST is a subgraph of the
// Delaunay triangulation (Shamos & Hoey), so an MST over the O(n) Delaunay
// edges suffices. Only applicable to 2D inputs.
#pragma once

#include <algorithm>
#include <vector>

#include "delaunay/delaunay.h"
#include "emst/phase_breakdown.h"
#include "graph/kruskal.h"
#include "util/timer.h"

namespace parhc {

/// Computes the 2D Euclidean MST via Delaunay triangulation + Kruskal.
inline std::vector<WeightedEdge> EmstDelaunay(const std::vector<Point<2>>& pts,
                                              PhaseBreakdown* phases = nullptr) {
  size_t n = pts.size();
  if (n <= 1) return {};
  Timer total;
  PhaseTimer delaunay_phase(phases, &PhaseBreakdown::delaunay,
                            "phase:delaunay");
  // The triangulation requires distinct sites: dedupe, triangulate the
  // unique sites, and chain duplicates to their representative at weight 0.
  std::vector<uint32_t> order(n);
  for (uint32_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (pts[a][0] != pts[b][0]) return pts[a][0] < pts[b][0];
    if (pts[a][1] != pts[b][1]) return pts[a][1] < pts[b][1];
    return a < b;
  });
  std::vector<uint32_t> rep_of(n);   // point -> unique-site representative
  std::vector<uint32_t> site_id;     // unique-site index -> point id
  std::vector<Point<2>> sites;
  std::vector<WeightedEdge> edges;
  for (size_t k = 0; k < n; ++k) {
    uint32_t i = order[k];
    if (k > 0 && pts[i] == pts[order[k - 1]]) {
      rep_of[i] = rep_of[order[k - 1]];
      edges.push_back({i, rep_of[i], 0.0});
    } else {
      rep_of[i] = i;
      site_id.push_back(i);
      sites.push_back(pts[i]);
    }
  }

  if (sites.size() == 1) {
    delaunay_phase.Stop();
    if (phases) phases->total += total.Seconds();
    return KruskalMst(n, std::move(edges));
  }
  Triangulation tri = DelaunayTriangulate(sites);
  delaunay_phase.Stop();

  std::vector<WeightedEdge> mst;
  {
    PhaseTimer phase(phases, &PhaseBreakdown::kruskal, "phase:kruskal");
    edges.reserve(edges.size() + tri.edges.size());
    for (auto [a, b] : tri.edges) {
      uint32_t u = site_id[a], v = site_id[b];
      edges.push_back({u, v, Distance(pts[u], pts[v])});
    }
    mst = KruskalMst(n, std::move(edges));
  }
  if (phases) phases->total += total.Seconds();
  return mst;
}

}  // namespace parhc
