// Public EMST entry point dispatching over the paper's four methods.
#pragma once

#include "emst/emst_boruvka.h"
#include "emst/emst_gfk.h"
#include "emst/emst_memogfk.h"
#include "emst/emst_naive.h"
#include "util/check.h"

namespace parhc {

enum class EmstAlgorithm {
  kNaive,     ///< full WSPD, BCCP per pair, one MST pass (Section 5 baseline)
  kGfk,       ///< parallel GeoFilterKruskal (Algorithm 2)
  kMemoGfk,   ///< memory-optimized GFK (Algorithm 3) — the fastest method
  kBoruvka,   ///< kd-tree Boruvka (March et al. style; the mlpack stand-in)
};

/// Computes the Euclidean minimum spanning tree of `pts`.
template <int D>
std::vector<WeightedEdge> Emst(const std::vector<Point<D>>& pts,
                               EmstAlgorithm algo = EmstAlgorithm::kMemoGfk,
                               PhaseBreakdown* phases = nullptr) {
  switch (algo) {
    case EmstAlgorithm::kNaive:
      return EmstNaive(pts, phases);
    case EmstAlgorithm::kGfk:
      return EmstGfk(pts, phases);
    case EmstAlgorithm::kMemoGfk:
      return EmstMemoGfk(pts, phases);
    case EmstAlgorithm::kBoruvka:
      return EmstBoruvka(pts, phases);
  }
  PARHC_CHECK_MSG(false, "unknown EMST algorithm");
  return {};
}

}  // namespace parhc
