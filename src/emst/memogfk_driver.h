// MemoGFK: memory-optimized GeoFilterKruskal (paper Algorithm 3).
//
// Instead of materializing the WSPD, every round performs two pruned k-d
// tree traversals:
//   GetRho   — computes rho_hi, a lower bound on the BCCP of every
//              remaining pair with cardinality > beta (WRITE_MIN over the
//              separated pairs encountered; pruned by cardinality,
//              connectivity, and the current rho_hi);
//   GetPairs — retrieves exactly the separated pairs whose closest-pair
//              value lies in the window [rho_lo, rho_hi), materializing
//              only those (Figure 3's interval pruning).
// The retrieved edges feed a Kruskal batch sharing one union-find; then
// beta doubles and rho_lo advances to rho_hi. Rounds are non-overlapping,
// increasing weight windows, so the result is an exact MST.
//
// The driver is generic over the separation criterion and the value bounds
// so the same code implements EMST (Euclidean BCCP), HDBSCAN*-GanTao
// (standard separation, BCCP*), and HDBSCAN*-MemoGFK (the paper's new
// separation, BCCP*) — see Section 3.2.3.
#pragma once

#include <atomic>
#include <limits>
#include <vector>

#include "emst/phase_breakdown.h"
#include "graph/kruskal.h"
#include "spatial/bccp.h"
#include "spatial/wspd.h"
#include "util/timer.h"

namespace parhc {

/// Tuning knobs for the MemoGFK round loop. The paper doubles beta every
/// round (crucial for the O(log n) round bound — Section 3.1.2); the
/// sequential GFK of Chatterjee et al. increments it instead. Exposed for
/// the ablation benchmark.
struct MemoGfkOptions {
  double beta_factor = 2.0;  ///< multiplicative growth (paper)
  uint32_t beta_add = 0;     ///< if nonzero, additive growth instead
};

namespace internal {

constexpr double kInf = std::numeric_limits<double>::infinity();

template <int D, typename Sep, typename LbFn>
void GetRhoRec(typename KdTree<D>::Node* a, typename KdTree<D>::Node* b,
               const Sep& sep, const LbFn& lb, uint32_t beta,
               std::atomic<double>& rho) {
  if (a->size() + b->size() <= beta) return;  // descendants all small
  if (a->component >= 0 && a->component == b->component) return;
  double l = lb(a, b);
  if (l >= rho.load(std::memory_order_relaxed)) return;  // cannot lower rho
  if (sep(*a, *b)) {
    WriteMin(&rho, l);
    return;
  }
  typename KdTree<D>::Node* x = a;
  typename KdTree<D>::Node* y = b;
  if (x->diameter < y->diameter) std::swap(x, y);
  if (x->IsLeaf()) std::swap(x, y);
  if (x->IsLeaf()) return;  // both unsplittable (degenerate duplicates)
  if (x->size() + y->size() >= kWspdSeqCutoff) {
    ParDo([&] { GetRhoRec<D>(x->left, y, sep, lb, beta, rho); },
          [&] { GetRhoRec<D>(x->right, y, sep, lb, beta, rho); });
  } else {
    GetRhoRec<D>(x->left, y, sep, lb, beta, rho);
    GetRhoRec<D>(x->right, y, sep, lb, beta, rho);
  }
}

template <int D, typename Sep, typename LbFn>
void GetRhoTop(typename KdTree<D>::Node* node, const Sep& sep, const LbFn& lb,
               uint32_t beta, std::atomic<double>& rho) {
  if (node->IsLeaf()) return;
  if (node->size() >= kWspdSeqCutoff) {
    ParDo([&] { GetRhoTop<D>(node->left, sep, lb, beta, rho); },
          [&] { GetRhoTop<D>(node->right, sep, lb, beta, rho); });
  } else {
    GetRhoTop<D>(node->left, sep, lb, beta, rho);
    GetRhoTop<D>(node->right, sep, lb, beta, rho);
  }
  GetRhoRec<D>(node->left, node->right, sep, lb, beta, rho);
}

template <int D, typename Sep, typename LbFn, typename UbFn, typename BccpFn,
          typename Emit>
void GetPairsRec(typename KdTree<D>::Node* a, typename KdTree<D>::Node* b,
                 const Sep& sep, const LbFn& lb, const UbFn& ub,
                 const BccpFn& bccp, double rho_lo, double rho_hi,
                 Emit& emit) {
  Stats::Get().wspd_pairs_visited.fetch_add(1, std::memory_order_relaxed);
  if (a->component >= 0 && a->component == b->component) return;
  if (lb(a, b) >= rho_hi) return;   // whole subtree above the window
  if (ub(a, b) < rho_lo) return;    // whole subtree below the window
  auto handle_pair = [&] {
    ClosestPair cp = bccp(a, b);
    if (cp.dist >= rho_lo && cp.dist < rho_hi) emit(cp);
  };
  if (sep(*a, *b)) {
    handle_pair();
    return;
  }
  typename KdTree<D>::Node* x = a;
  typename KdTree<D>::Node* y = b;
  if (x->diameter < y->diameter) std::swap(x, y);
  if (x->IsLeaf()) std::swap(x, y);
  if (x->IsLeaf()) {
    handle_pair();  // both unsplittable (degenerate duplicates)
    return;
  }
  if (x->size() + y->size() >= kWspdSeqCutoff) {
    ParDo([&] {
      GetPairsRec<D>(x->left, y, sep, lb, ub, bccp, rho_lo, rho_hi, emit);
    }, [&] {
      GetPairsRec<D>(x->right, y, sep, lb, ub, bccp, rho_lo, rho_hi, emit);
    });
  } else {
    GetPairsRec<D>(x->left, y, sep, lb, ub, bccp, rho_lo, rho_hi, emit);
    GetPairsRec<D>(x->right, y, sep, lb, ub, bccp, rho_lo, rho_hi, emit);
  }
}

template <int D, typename Sep, typename LbFn, typename UbFn, typename BccpFn,
          typename Emit>
void GetPairsTop(typename KdTree<D>::Node* node, const Sep& sep,
                 const LbFn& lb, const UbFn& ub, const BccpFn& bccp,
                 double rho_lo, double rho_hi, Emit& emit) {
  if (node->IsLeaf()) return;
  if (node->size() >= kWspdSeqCutoff) {
    ParDo([&] {
      GetPairsTop<D>(node->left, sep, lb, ub, bccp, rho_lo, rho_hi, emit);
    }, [&] {
      GetPairsTop<D>(node->right, sep, lb, ub, bccp, rho_lo, rho_hi, emit);
    });
  } else {
    GetPairsTop<D>(node->left, sep, lb, ub, bccp, rho_lo, rho_hi, emit);
    GetPairsTop<D>(node->right, sep, lb, ub, bccp, rho_lo, rho_hi, emit);
  }
  GetPairsRec<D>(node->left, node->right, sep, lb, ub, bccp, rho_lo, rho_hi,
                 emit);
}

/// Runs the MemoGFK round loop over `tree` and returns the MST edges.
/// `initial_edges` (duplicate-leaf edges) are union'd in first.
template <int D, typename Sep, typename LbFn, typename UbFn, typename BccpFn>
std::vector<WeightedEdge> MemoGfkMst(KdTree<D>& tree, const Sep& sep,
                                     const LbFn& lb, const UbFn& ub,
                                     const BccpFn& bccp,
                                     std::vector<WeightedEdge> initial_edges,
                                     PhaseBreakdown* phases = nullptr,
                                     const MemoGfkOptions& opts = {}) {
  size_t n = tree.size();
  UnionFind uf(n);
  std::vector<WeightedEdge> out;
  out.reserve(n - 1);
  KruskalBatch(initial_edges, uf, out);

  uint32_t beta = 2;
  double rho_lo = 0;
  Timer t;
  while (out.size() + 1 < n) {
    t.Reset();
    tree.RefreshComponents([&](uint32_t id) { return uf.Find(id); });
    // GetRho: rho_hi = min lower bound over separated pairs with |A|+|B|
    // > beta that are not yet connected (Algorithm 3 line 4).
    std::atomic<double> rho{kInf};
    GetRhoTop<D>(tree.root(), sep, lb, beta, rho);
    // Remaining edges are all >= rho_lo by the round invariant, so the
    // window stays well-formed even if the bound dips below rho_lo.
    double rho_hi = std::max(rho.load(), rho_lo);

    // GetPairs: materialize only the pairs whose value lies in
    // [rho_lo, rho_hi) (Algorithm 3 line 5).
    std::vector<std::vector<WeightedEdge>> local(NumWorkers());
    auto emit = [&](const ClosestPair& cp) {
      local[Scheduler::Get().MyId()].push_back({cp.u, cp.v, cp.dist});
    };
    GetPairsTop<D>(tree.root(), sep, lb, ub, bccp, rho_lo, rho_hi, emit);
    std::vector<WeightedEdge> batch = Flatten(local);
    {
      auto& stats = Stats::Get();
      stats.wspd_pairs_materialized.fetch_add(batch.size(),
                                              std::memory_order_relaxed);
      WriteMax(&stats.wspd_pairs_peak, static_cast<uint64_t>(batch.size()));
    }
    if (phases) phases->wspd += t.Seconds();

    t.Reset();
    KruskalBatch(batch, uf, out);
    if (phases) phases->kruskal += t.Seconds();

    if (opts.beta_add > 0) {
      beta += opts.beta_add;
    } else {
      beta = static_cast<uint32_t>(beta * opts.beta_factor);
    }
    rho_lo = rho_hi;
    if (rho_hi == kInf) break;  // final sweep retrieved everything left
  }
  PARHC_CHECK_MSG(out.size() + 1 == n, "MemoGFK did not span all points");
  return out;
}

}  // namespace internal
}  // namespace parhc
