// MemoGFK: memory-optimized GeoFilterKruskal (paper Algorithm 3).
//
// Instead of materializing the WSPD, every round performs two pruned dual
// traversals — both instantiations of the shared dual-tree engine
// (spatial/traverse.h DualTraverse), differing only in their prune and
// base-case callbacks:
//   GetRho   — computes rho_hi, a lower bound on the BCCP of every
//              remaining pair with cardinality > beta (WRITE_MIN over the
//              separated pairs encountered; pruned by cardinality,
//              connectivity, and the current rho_hi);
//   GetPairs — retrieves exactly the separated pairs whose closest-pair
//              value lies in the window [rho_lo, rho_hi), materializing
//              only those (Figure 3's interval pruning).
// The retrieved edges feed a Kruskal batch sharing one union-find; then
// beta doubles and rho_lo advances to rho_hi. Rounds are non-overlapping,
// increasing weight windows, so the result is an exact MST.
//
// The driver is generic over the separation criterion and the value bounds
// so the same code implements EMST (Euclidean BCCP), HDBSCAN*-GanTao
// (standard separation, BCCP*), and HDBSCAN*-MemoGFK (the paper's new
// separation, BCCP*) — see Section 3.2.3. The bound callbacks `lb`, `ub`
// and the closest-pair callback `bccp` take arena node indices.
#pragma once

#include <atomic>
#include <limits>
#include <vector>

#include "emst/phase_breakdown.h"
#include "graph/kruskal.h"
#include "spatial/bccp.h"
#include "spatial/wspd.h"
#include "util/timer.h"

namespace parhc {

/// Tuning knobs for the MemoGFK round loop. The paper doubles beta every
/// round (crucial for the O(log n) round bound — Section 3.1.2); the
/// sequential GFK of Chatterjee et al. increments it instead. Exposed for
/// the ablation benchmark.
struct MemoGfkOptions {
  double beta_factor = 2.0;  ///< multiplicative growth (paper)
  uint32_t beta_add = 0;     ///< if nonzero, additive growth instead
};

namespace internal {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// GetRho (Algorithm 3 line 4): WRITE_MIN of lb over separated pairs still
/// spanning more than beta points and more than one component.
template <int D, typename Sep, typename LbFn>
void GetRho(const KdTree<D>& t, const Sep& sep, const LbFn& lb, uint32_t beta,
            std::atomic<double>& rho) {
  DualTraverse(
      t,
      [&](uint32_t a, uint32_t b) {
        if (t.NodeSize(a) + t.NodeSize(b) <= beta) return true;
        int64_t ca = t.Component(a);
        if (ca >= 0 && ca == t.Component(b)) return true;
        // Cannot lower rho below the already-found bound.
        return lb(a, b) >= rho.load(std::memory_order_relaxed);
      },
      [&](uint32_t a, uint32_t b) { return sep(t, a, b); },
      [&](uint32_t a, uint32_t b, bool separated) {
        // Unsplittable duplicate-leaf pairs carry no bound information.
        if (separated) WriteMin(&rho, lb(a, b));
      },
      /*count_visits=*/false);  // bound-only sweep: not a pair enumeration
}

/// GetPairs (Algorithm 3 line 5): emit the BCCP of every separated pair
/// whose value can lie in [rho_lo, rho_hi), pruning whole subtrees outside
/// the window (Figure 3).
template <int D, typename Sep, typename LbFn, typename UbFn, typename BccpFn,
          typename Emit>
void GetPairs(const KdTree<D>& t, const Sep& sep, const LbFn& lb,
              const UbFn& ub, const BccpFn& bccp, double rho_lo,
              double rho_hi, const Emit& emit) {
  DualTraverse(
      t,
      [&](uint32_t a, uint32_t b) {
        int64_t ca = t.Component(a);
        if (ca >= 0 && ca == t.Component(b)) return true;
        if (lb(a, b) >= rho_hi) return true;  // subtree above the window
        return ub(a, b) < rho_lo;             // subtree below the window
      },
      [&](uint32_t a, uint32_t b) { return sep(t, a, b); },
      [&](uint32_t a, uint32_t b, bool /*separated*/) {
        // Both separated pairs and unsplittable duplicate-leaf pairs are
        // realized through their closest pair.
        ClosestPair cp = bccp(a, b);
        if (cp.dist >= rho_lo && cp.dist < rho_hi) emit(cp);
      });
}

/// Runs the MemoGFK round loop over `tree` and returns the MST edges.
/// `initial_edges` (duplicate-leaf edges) are union'd in first.
template <int D, typename Sep, typename LbFn, typename UbFn, typename BccpFn>
std::vector<WeightedEdge> MemoGfkMst(KdTree<D>& tree, const Sep& sep,
                                     const LbFn& lb, const UbFn& ub,
                                     const BccpFn& bccp,
                                     std::vector<WeightedEdge> initial_edges,
                                     PhaseBreakdown* phases = nullptr,
                                     const MemoGfkOptions& opts = {}) {
  size_t n = tree.size();
  UnionFind uf(n);
  std::vector<WeightedEdge> out;
  out.reserve(n - 1);
  KruskalBatch(initial_edges, uf, out);

  uint32_t beta = 2;
  double rho_lo = 0;
  while (out.size() + 1 < n) {
    double rho_hi;
    std::vector<WeightedEdge> batch;
    {
      PhaseTimer phase(phases, &PhaseBreakdown::wspd, "phase:wspd");
      tree.RefreshComponents([&](uint32_t id) { return uf.Find(id); });
      // GetRho: rho_hi = min lower bound over separated pairs with |A|+|B|
      // > beta that are not yet connected (Algorithm 3 line 4).
      std::atomic<double> rho{kInf};
      GetRho(tree, sep, lb, beta, rho);
      // Remaining edges are all >= rho_lo by the round invariant, so the
      // window stays well-formed even if the bound dips below rho_lo.
      rho_hi = std::max(rho.load(), rho_lo);

      // GetPairs: materialize only the pairs whose value lies in
      // [rho_lo, rho_hi) (Algorithm 3 line 5).
      std::vector<std::vector<WeightedEdge>> local(NumWorkers());
      auto emit = [&](const ClosestPair& cp) {
        local[Scheduler::Get().MyId()].push_back({cp.u, cp.v, cp.dist});
      };
      GetPairs(tree, sep, lb, ub, bccp, rho_lo, rho_hi, emit);
      batch = Flatten(local);
      auto& stats = Stats::Get();
      stats.wspd_pairs_materialized.fetch_add(batch.size(),
                                              std::memory_order_relaxed);
      WriteMax(&stats.wspd_pairs_peak, static_cast<uint64_t>(batch.size()));
    }

    {
      PhaseTimer phase(phases, &PhaseBreakdown::kruskal, "phase:kruskal");
      KruskalBatch(batch, uf, out);
    }

    if (opts.beta_add > 0) {
      beta += opts.beta_add;
    } else {
      beta = static_cast<uint32_t>(beta * opts.beta_factor);
    }
    rho_lo = rho_hi;
    if (rho_hi == kInf) break;  // final sweep retrieved everything left
  }
  PARHC_CHECK_MSG(out.size() + 1 == n, "MemoGFK did not span all points");
  return out;
}

}  // namespace internal
}  // namespace parhc
