// kd-tree Boruvka EMST — the baseline standing in for mlpack's Dual-Tree
// Boruvka (March et al. [43]), which the paper compares against in Table 3.
//
// Each Boruvka round finds, for every point in parallel, its nearest point
// in a different component (a kd-tree query pruning subtrees that lie
// entirely inside the query's component — the component cache the tree
// already maintains for MemoGFK), reduces candidates to one minimum
// outgoing edge per component, and merges. O(log n) rounds.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "emst/phase_breakdown.h"
#include "graph/edge.h"
#include "graph/union_find.h"
#include "spatial/bccp.h"
#include "spatial/traverse.h"
#include "util/timer.h"

namespace parhc {

/// Sentinel for "no neighbor found yet" in Boruvka candidate searches.
inline constexpr uint32_t kNoNeighbor = 0xffffffffu;

namespace internal {

/// Nearest point to `q` in a different union-find component, through the
/// shared single-tree engine: subtrees lying entirely inside the query's
/// component (the component cache RefreshComponents maintains) or farther
/// than the current best are pruned. `best.dist` holds a *squared* distance
/// during the search.
template <int D>
void NearestOtherComponent(const KdTree<D>& tree, const Point<D>& q,
                           int64_t my_comp, const UnionFind& uf,
                           ClosestPair& best) {
  SingleTraverse(
      tree,
      [&](uint32_t v) { return tree.NodeBox(v).MinSquaredDistance(q); },
      [&](uint32_t v, double pri) {
        if (tree.Component(v) >= 0 && tree.Component(v) == my_comp) {
          return true;
        }
        return pri >= best.dist;
      },
      [&](uint32_t v) {
        for (uint32_t i = tree.NodeBegin(v); i < tree.NodeEnd(v); ++i) {
          uint32_t id = tree.id(i);
          if (static_cast<int64_t>(uf.Find(id)) == my_comp) continue;
          double d2 = SquaredDistance(q, tree.point(i));
          if (d2 < best.dist || (d2 == best.dist && id < best.v)) {
            best.v = id;
            best.dist = d2;
          }
        }
      });
}

}  // namespace internal

/// Computes the Euclidean MST with kd-tree Boruvka.
template <int D>
std::vector<WeightedEdge> EmstBoruvka(const std::vector<Point<D>>& pts,
                                      PhaseBreakdown* phases = nullptr) {
  size_t n = pts.size();
  Timer total;
  std::optional<KdTree<D>> tree_storage;
  {
    PhaseTimer phase(phases, &PhaseBreakdown::build_tree, "phase:build_tree");
    tree_storage.emplace(pts, /*leaf_size=*/8);
  }
  KdTree<D>& tree = *tree_storage;

  PhaseTimer boruvka_phase(phases, &PhaseBreakdown::kruskal, "phase:kruskal");
  UnionFind uf(n);
  std::vector<WeightedEdge> out;
  out.reserve(n - 1);
  std::vector<ClosestPair> cand(n);
  while (uf.num_components() > 1) {
    tree.RefreshComponents([&](uint32_t id) { return uf.Find(id); });
    ParallelFor(0, n, [&](size_t i) {
      uint32_t ti = static_cast<uint32_t>(i);
      uint32_t id = tree.id(ti);
      ClosestPair best;  // dist holds *squared* distance during the search
      best.u = id;
      best.v = kNoNeighbor;
      int64_t my_comp = static_cast<int64_t>(uf.Find(id));
      internal::NearestOtherComponent(tree, tree.point(ti), my_comp, uf,
                                      best);
      cand[i] = best;
    });
    // Minimum outgoing edge per component (sequential reduce; the per-point
    // queries above dominate).
    std::unordered_map<uint32_t, WeightedEdge> best_per_comp;
    for (size_t i = 0; i < n; ++i) {
      if (cand[i].v == kNoNeighbor) continue;
      WeightedEdge e{cand[i].u, cand[i].v, cand[i].dist};
      uint32_t comp = uf.Find(e.u);
      auto [it, inserted] = best_per_comp.try_emplace(comp, e);
      if (!inserted && e < it->second) it->second = e;
    }
    PARHC_CHECK_MSG(!best_per_comp.empty(), "Boruvka made no progress");
    for (auto& [comp, e] : best_per_comp) {
      if (uf.Union(e.u, e.v)) {
        out.push_back({e.u, e.v, std::sqrt(e.w)});  // store real distance
      }
    }
  }
  boruvka_phase.Stop();
  if (phases) phases->total += total.Seconds();
  PARHC_CHECK_MSG(out.size() + 1 == n, "Boruvka did not span all points");
  return out;
}

}  // namespace parhc
