// EMST-GFK: parallel GeoFilterKruskal (paper Algorithm 2).
//
// The WSPD is materialized once; each round processes the pairs with
// cardinality at most beta whose BCCP is no heavier than rho_hi (the
// minimum node distance among the remaining larger pairs), passes those
// edges to a Kruskal batch sharing one union-find, filters out pairs whose
// two sides became fully connected, and doubles beta. BCCP results are
// cached in the pair records across rounds.
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "emst/duplicates.h"
#include "emst/phase_breakdown.h"
#include "graph/kruskal.h"
#include "spatial/bccp.h"
#include "spatial/wspd.h"
#include "util/timer.h"

namespace parhc {

namespace internal {

struct GfkPair {
  uint32_t a;         ///< arena node indices
  uint32_t b;
  double node_dist;   ///< lower bound on the pair's BCCP (box distance)
  double bccp = -1;   ///< cached BCCP distance (-1 = not yet computed)
  uint32_t u = 0;     ///< cached BCCP endpoints (original ids)
  uint32_t v = 0;
  uint32_t card;      ///< |A| + |B|

  bool HasBccp() const { return bccp >= 0; }
};

}  // namespace internal

/// Computes the Euclidean MST with the parallel GeoFilterKruskal algorithm
/// (Algorithm 2). O(n^2) work, O(log^2 n) depth.
template <int D>
std::vector<WeightedEdge> EmstGfk(const std::vector<Point<D>>& pts,
                                  PhaseBreakdown* phases = nullptr) {
  using Pair = internal::GfkPair;
  size_t n = pts.size();
  Timer total;
  std::optional<KdTree<D>> tree_storage;
  {
    PhaseTimer phase(phases, &PhaseBreakdown::build_tree, "phase:build_tree");
    tree_storage.emplace(pts, /*leaf_size=*/1);
  }
  KdTree<D>& tree = *tree_storage;

  std::vector<Pair> s;
  {
    PhaseTimer phase(phases, &PhaseBreakdown::wspd, "phase:wspd");
    GeometricSeparation<D> sep{2.0};
    std::vector<std::vector<Pair>> local(NumWorkers());
    WspdTraverse(tree, sep, [&](uint32_t a, uint32_t b) {
      double nd =
          std::sqrt(tree.NodeBox(a).MinSquaredDistance(tree.NodeBox(b)));
      local[Scheduler::Get().MyId()].push_back(
          Pair{a, b, nd, -1, 0, 0, tree.NodeSize(a) + tree.NodeSize(b)});
    });
    s = Flatten(local);
    auto& stats = Stats::Get();
    stats.wspd_pairs_materialized.fetch_add(s.size(),
                                            std::memory_order_relaxed);
    WriteMax(&stats.wspd_pairs_peak, static_cast<uint64_t>(s.size()));
  }

  PhaseTimer kruskal_phase(phases, &PhaseBreakdown::kruskal, "phase:kruskal");
  UnionFind uf(n);
  std::vector<WeightedEdge> out;
  out.reserve(n - 1);
  {
    std::vector<WeightedEdge> dup =
        internal::DuplicateLeafEdges(tree, /*use_core_dist=*/false);
    KruskalBatch(dup, uf, out);
  }

  uint32_t beta = 2;
  while (out.size() + 1 < n && !s.empty()) {
    // (S_l, S_u) = Split(S, |A| + |B| <= beta).
    auto [sl, su] =
        Split(s, [&](const Pair& p) { return p.card <= beta; });
    // rho_hi = min node distance among larger pairs.
    double rho_hi = std::numeric_limits<double>::infinity();
    if (!su.empty()) {
      std::vector<double> dists =
          Tabulate(su.size(), [&](size_t i) { return su[i].node_dist; });
      rho_hi = Reduce(dists, rho_hi,
                      [](double x, double y) { return std::min(x, y); });
    }
    // Compute (and cache) BCCPs of the small pairs.
    ParallelFor(0, sl.size(), [&](size_t i) {
      if (!sl[i].HasBccp()) {
        ClosestPair cp = Bccp(tree, sl[i].a, sl[i].b);
        sl[i].bccp = cp.dist;
        sl[i].u = cp.u;
        sl[i].v = cp.v;
      }
    });
    auto [sl1, sl2] =
        Split(sl, [&](const Pair& p) { return p.bccp <= rho_hi; });
    std::vector<WeightedEdge> batch(sl1.size());
    ParallelFor(0, sl1.size(), [&](size_t i) {
      batch[i] = {sl1[i].u, sl1[i].v, sl1[i].bccp};
    });
    KruskalBatch(batch, uf, out);
    // Filter: keep pairs whose sides are not yet in one component.
    tree.RefreshComponents([&](uint32_t id) { return uf.Find(id); });
    sl2.insert(sl2.end(), su.begin(), su.end());
    s = Filter(sl2, [&](const Pair& p) {
      return tree.Component(p.a) < 0 ||
             tree.Component(p.a) != tree.Component(p.b);
    });
    beta *= 2;
  }
  kruskal_phase.Stop();
  if (phases) phases->total += total.Seconds();
  PARHC_CHECK_MSG(out.size() + 1 == n, "EMST-GFK did not span all points");
  return out;
}

}  // namespace parhc
