// Handling of degenerate duplicate-point leaves.
//
// With unit leaf size, a multi-point leaf can only arise from a group of
// identical points (zero-diameter range): the WSPD never looks inside a
// leaf, so intra-leaf point pairs must be connected explicitly.
//
//  * EMST: a chain of zero-weight edges is exact (pairwise distance 0).
//  * HDBSCAN*: identical points share the same core distance cd (their kNN
//    multisets coincide), so every intra-group mutual reachability distance
//    equals cd; a star achieves the unavoidable (k-1)*cd cost.
//
// These edges are minimum-weight edges across each singleton cut, so
// force-adding them before Kruskal preserves MST optimality (standard
// exchange argument); the integration tests validate total weight against
// dense Prim on inputs with duplicates.
//
// Duplicates arriving across batches (batch-dynamic shard forest): a group
// of identical points can be split over several shards, so its members are
// never in one leaf and the intra-leaf handling above cannot connect them.
// The cross-shard candidate pass covers this case without special-casing:
// two coincident duplicate leaves have zero-radius bounding spheres, which
// satisfy every separation criterion (0 >= s * 0), so the cross
// decomposition reports the pair and its cross BCCP contributes the
// zero-weight (for HDBSCAN*: shared-core-distance-weight) edge that stitches
// the group's shard-local chains/stars together. Kruskal then keeps exactly
// (group size - 1) of these minimum-cut edges, so the forest MST weight
// matches a from-scratch build (validated by DynamicDuplicates tests).
#pragma once

#include <vector>

#include "graph/edge.h"
#include "spatial/traverse.h"

namespace parhc {
namespace internal {

/// Edges connecting points inside multi-point (duplicate) leaves, gathered
/// by a flat scan over the arena's leaves.
/// `use_core_dist` selects mutual-reachability weights (HDBSCAN*).
template <int D>
std::vector<WeightedEdge> DuplicateLeafEdges(const KdTree<D>& tree,
                                             bool use_core_dist) {
  std::vector<WeightedEdge> out;
  ForEachLeaf(tree, [&](uint32_t leaf) {
    uint32_t begin = tree.NodeBegin(leaf), end = tree.NodeEnd(leaf);
    if (end - begin < 2) return;
    if (!use_core_dist) {
      for (uint32_t i = begin; i + 1 < end; ++i) {
        out.push_back({tree.id(i), tree.id(i + 1), 0.0});
      }
      return;
    }
    // Star around the minimum-core-distance member.
    uint32_t center = begin;
    for (uint32_t i = begin + 1; i < end; ++i) {
      if (tree.core_dist(i) < tree.core_dist(center)) center = i;
    }
    for (uint32_t i = begin; i < end; ++i) {
      if (i == center) continue;
      double w = std::max(tree.core_dist(i), tree.core_dist(center));
      out.push_back({tree.id(i), tree.id(center), w});
    }
  });
  return out;
}

}  // namespace internal
}  // namespace parhc
