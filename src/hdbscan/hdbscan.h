// Full HDBSCAN* pipeline (paper Sections 3.2 + 4): mutual-reachability MST,
// ordered dendrogram, and reachability plot. This is what the paper's
// HDBSCAN* running times measure ("constructing an MST of the mutual
// reachability graph and computing the ordered dendrogram").
#pragma once

#include "dendrogram/builder.h"
#include "dendrogram/cluster_extraction.h"
#include "dendrogram/reachability.h"
#include "hdbscan/hdbscan_mst.h"

namespace parhc {

/// Complete HDBSCAN* result.
struct HdbscanResult {
  std::vector<WeightedEdge> mst;   ///< MST of the mutual reachability graph
  std::vector<double> core_dist;   ///< per-point core distances
  Dendrogram dendrogram;           ///< ordered dendrogram (source = 0)
  /// DBSCAN* clustering at a given eps (kNoise = -1 for noise points).
  std::vector<int32_t> ClustersAt(double eps) const {
    return DbscanStarLabels(dendrogram, core_dist, eps);
  }
  /// Reachability plot (OPTICS sequence) starting at the dendrogram source.
  ReachabilityPlot Reachability() const {
    return ComputeReachability(dendrogram);
  }
};

/// Runs HDBSCAN* on `pts` with the given `min_pts`.
template <int D>
HdbscanResult Hdbscan(const std::vector<Point<D>>& pts, int min_pts,
                      HdbscanVariant variant = HdbscanVariant::kMemoGfk,
                      PhaseBreakdown* phases = nullptr, uint32_t source = 0) {
  HdbscanMstResult mst = HdbscanMst(pts, min_pts, variant, phases);
  Timer t;
  Dendrogram dendro(1);
  {
    PhaseTimer phase(phases, &PhaseBreakdown::dendrogram, "phase:dendrogram");
    if (pts.size() == 1) {
      dendro.set_root(0);
    } else {
      dendro = BuildDendrogramParallel(pts.size(), mst.mst, source);
    }
  }
  if (phases) phases->total += t.Seconds();
  return HdbscanResult{std::move(mst.mst), std::move(mst.core_dist),
                       std::move(dendro)};
}

}  // namespace parhc
