// Stability-based flat cluster extraction from the HDBSCAN* dendrogram —
// the "excess of mass" selection of Campello et al. [16] (the paper's
// reference [16]). This is the standard way HDBSCAN* users obtain a flat
// clustering without choosing an eps.
//
// Condensed-tree semantics: walking down from the root in density
// lambda = 1/height, a merge node splits a cluster only when both sides
// hold at least `min_cluster_size` points; otherwise the small side's
// points *depart* the cluster at that lambda (they remain members of the
// cluster, with no cluster structure of their own) and the cluster
// continues into the large side. A cluster born at lambda_birth with
// departures at lambdas l_p has stability
//     sigma(C) = sum_p (l_p - lambda_birth).
// Excess-of-mass selection keeps C iff sigma(C) >= sum of the selected
// stabilities inside C, giving non-overlapping clusters. A point's label is
// the selected cluster containing its departure cluster; points departing
// above every selected cluster (e.g. from the root) are noise.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "dendrogram/cluster_extraction.h"
#include "dendrogram/dendrogram.h"
#include "util/check.h"

namespace parhc {

/// Result of stability-based extraction.
struct StabilityClusters {
  /// Per-point labels; kNoise (-1) for noise. Labels are dense in [0, k).
  std::vector<int32_t> label;
  /// Stability score of each selected cluster.
  std::vector<double> stability;
};

namespace internal {

inline double Lambda(double height) {
  return height <= 0 ? std::numeric_limits<double>::infinity() : 1.0 / height;
}

}  // namespace internal

/// Excess-of-mass cluster extraction. `min_cluster_size` >= 2.
inline StabilityClusters ExtractStableClusters(const Dendrogram& d,
                                               size_t min_cluster_size = 5) {
  PARHC_CHECK(min_cluster_size >= 2);
  size_t n = d.num_points();
  size_t nodes = d.num_nodes();
  StabilityClusters out;
  out.label.assign(n, kNoise);
  if (n == 1) return out;

  // Post-order over internal nodes (children first) + subtree sizes.
  std::vector<uint32_t> size(nodes, 1);
  std::vector<uint32_t> order;
  order.reserve(n - 1);
  {
    std::vector<std::pair<uint32_t, bool>> stack{{d.root(), false}};
    while (!stack.empty()) {
      auto [id, expanded] = stack.back();
      stack.pop_back();
      if (d.IsLeaf(id)) continue;
      if (expanded) {
        order.push_back(id);
        size[id] = size[d.Left(id)] + size[d.Right(id)];
        continue;
      }
      stack.push_back({id, true});
      stack.push_back({d.Left(id), false});
      stack.push_back({d.Right(id), false});
    }
  }

  constexpr uint32_t kNone = Dendrogram::kNone;
  // anchor[x]: topmost dendrogram node of the condensed cluster whose
  // subtree contains x (departed points keep the cluster they left).
  // active[x]: x's points have not yet departed their cluster.
  std::vector<uint32_t> anchor(nodes, kNone);
  std::vector<uint8_t> active(nodes, 0);
  std::vector<double> stability(nodes, 0.0);
  std::vector<double> birth_lambda(nodes, 0.0);

  anchor[d.root()] = d.root();
  active[d.root()] = 1;
  birth_lambda[d.root()] = 0.0;

  // Top-down (reverse post-order: parents first).
  for (size_t i = order.size(); i-- > 0;) {
    uint32_t id = order[i];
    uint32_t cl = anchor[id];
    uint32_t l = d.Left(id), r = d.Right(id);
    if (!active[id]) {
      // Already-departed region: propagate the owning cluster for labels.
      anchor[l] = cl;
      anchor[r] = cl;
      continue;
    }
    double split_lambda = internal::Lambda(d.Height(id));
    bool l_big = size[l] >= min_cluster_size;
    bool r_big = size[r] >= min_cluster_size;
    if (l_big && r_big) {
      // True split: all points leave cl here; both sides are born as new
      // candidate clusters.
      stability[cl] += static_cast<double>(size[l] + size[r]) *
                       (split_lambda - birth_lambda[cl]);
      for (uint32_t c : {l, r}) {
        anchor[c] = c;
        active[c] = 1;
        birth_lambda[c] = split_lambda;
      }
    } else {
      // Small sides depart cl at this lambda; the cluster continues into a
      // large side if there is one.
      if (!l_big) {
        stability[cl] += static_cast<double>(size[l]) *
                         (split_lambda - birth_lambda[cl]);
      }
      if (!r_big) {
        stability[cl] += static_cast<double>(size[r]) *
                         (split_lambda - birth_lambda[cl]);
      }
      anchor[l] = cl;
      anchor[r] = cl;
      active[l] = l_big ? 1 : 0;
      active[r] = r_big ? 1 : 0;
    }
  }
  // Active leaves depart as singletons at their final merge's lambda.
  for (uint32_t leaf = 0; leaf < n; ++leaf) {
    if (active[leaf]) {
      uint32_t cl = anchor[leaf];
      stability[cl] += internal::Lambda(d.Height(d.Parent(leaf))) -
                       birth_lambda[cl];
    }
  }

  // Bottom-up excess-of-mass selection. The root cluster (= everything) is
  // conventionally not selectable.
  std::vector<double> best_below(nodes, 0.0);
  std::vector<uint8_t> selected(nodes, 0);
  for (uint32_t id : order) {  // children before parents
    double child_sum = best_below[d.Left(id)] + best_below[d.Right(id)];
    bool is_anchor = anchor[id] == id && id != d.root();
    if (is_anchor && stability[id] >= child_sum) {
      selected[id] = 1;
      best_below[id] = stability[id];
    } else {
      best_below[id] = child_sum;
    }
  }

  // Labels: a point belongs to the (unique) selected cluster on its
  // root-path at or above its departure cluster. Deeper selected anchors
  // were deselected by construction, so the first selected node on the way
  // down wins.
  int32_t next = 0;
  std::vector<std::pair<uint32_t, int32_t>> stack;
  stack.push_back({d.root(), kNoise});
  while (!stack.empty()) {
    auto [id, cur] = stack.back();
    stack.pop_back();
    if (cur == kNoise && selected[id]) {
      cur = next++;
      out.stability.push_back(stability[id]);
    }
    if (d.IsLeaf(id)) {
      out.label[id] = cur;
      continue;
    }
    stack.push_back({d.Left(id), cur});
    stack.push_back({d.Right(id), cur});
  }
  return out;
}

}  // namespace parhc
