// Parallel approximate OPTICS (paper Appendix C), after Gan & Tao [28].
//
// A WSPD with separation constant s = sqrt(8/rho) is built; each pair
// contributes edges between "representative" points following the four
// cardinality cases (a)-(d) with weights
//     w(u, v) = max(cd(u), cd(v), d(u, v) / (1 + rho)),
// and the MST of the resulting O(n * minPts^2)-edge base graph approximates
// the mutual reachability MST within the rho-dependent bound. As in the
// paper's implementation, the representative of a node is a fixed
// (pseudo-random) member point.
#pragma once

#include <optional>
#include <vector>

#include "emst/duplicates.h"
#include "graph/kruskal.h"
#include "hdbscan/core_distance.h"
#include "parallel/semisort.h"
#include "spatial/wspd.h"
#include "util/timer.h"

namespace parhc {

/// Result of approximate OPTICS MST construction.
struct OpticsApproxResult {
  std::vector<WeightedEdge> mst;
  std::vector<double> core_dist;
  uint64_t base_graph_edges = 0;  ///< edges generated before the MST pass
};

/// Builds the approximate-OPTICS MST for `pts` with parameters `min_pts`
/// and `rho` (> 0; the paper's experiments use rho = 0.125, i.e. s = 8).
template <int D>
OpticsApproxResult OpticsApproxMst(const std::vector<Point<D>>& pts,
                                   int min_pts, double rho,
                                   PhaseBreakdown* phases = nullptr) {
  PARHC_CHECK(rho > 0);
  size_t n = pts.size();
  Timer total;
  std::optional<KdTree<D>> tree_storage;
  {
    PhaseTimer phase(phases, &PhaseBreakdown::build_tree, "phase:build_tree");
    tree_storage.emplace(pts, /*leaf_size=*/1);
  }
  KdTree<D>& tree = *tree_storage;

  OpticsApproxResult result;
  {
    PhaseTimer phase(phases, &PhaseBreakdown::core_dist, "phase:core_dist");
    result.core_dist = CoreDistances(tree, min_pts);
    tree.AnnotateCoreDistances(result.core_dist);
  }

  PhaseTimer wspd_phase(phases, &PhaseBreakdown::wspd, "phase:wspd");
  const double s = std::sqrt(8.0 / rho);
  GeometricSeparation<D> sep{s};
  const auto& cd = result.core_dist;
  const size_t mp = static_cast<size_t>(min_pts);
  // Per-worker edge buffers; each pair contributes its case (a)-(d) edges.
  std::vector<std::vector<WeightedEdge>> local(NumWorkers());
  auto weight = [&](uint32_t u, uint32_t v) {
    return std::max({cd[u], cd[v], Distance(pts[u], pts[v]) / (1.0 + rho)});
  };
  WspdTraverse(tree, sep, [&](uint32_t a, uint32_t b) {
    auto& buf = local[Scheduler::Get().MyId()];
    // Fixed pseudo-random representative per node (paper's simplification
    // of the approximate BCCP).
    auto rep = [&](uint32_t nd) {
      uint32_t span = tree.NodeSize(nd);
      uint32_t off = static_cast<uint32_t>(
          HashU64(tree.NodeBegin(nd) * 0x9e3779b9ull + tree.NodeEnd(nd)) %
          span);
      return tree.id(tree.NodeBegin(nd) + off);
    };
    bool small_a = tree.NodeSize(a) < mp, small_b = tree.NodeSize(b) < mp;
    if (small_a && small_b) {  // case (a): all cross pairs
      for (uint32_t i = tree.NodeBegin(a); i < tree.NodeEnd(a); ++i) {
        for (uint32_t j = tree.NodeBegin(b); j < tree.NodeEnd(b); ++j) {
          uint32_t u = tree.id(i), v = tree.id(j);
          buf.push_back({u, v, weight(u, v)});
        }
      }
    } else if (!small_a && small_b) {  // case (b)
      uint32_t u = rep(a);
      for (uint32_t j = tree.NodeBegin(b); j < tree.NodeEnd(b); ++j) {
        uint32_t v = tree.id(j);
        buf.push_back({u, v, weight(u, v)});
      }
    } else if (small_a && !small_b) {  // case (c)
      uint32_t v = rep(b);
      for (uint32_t i = tree.NodeBegin(a); i < tree.NodeEnd(a); ++i) {
        uint32_t u = tree.id(i);
        buf.push_back({u, v, weight(u, v)});
      }
    } else {  // case (d): representatives only
      uint32_t u = rep(a), v = rep(b);
      buf.push_back({u, v, weight(u, v)});
    }
  });
  std::vector<WeightedEdge> edges = Flatten(local);
  {
    auto& stats = Stats::Get();
    stats.wspd_pairs_materialized.fetch_add(edges.size(),
                                            std::memory_order_relaxed);
    WriteMax(&stats.wspd_pairs_peak, static_cast<uint64_t>(edges.size()));
  }
  result.base_graph_edges = edges.size();
  std::vector<WeightedEdge> dup =
      internal::DuplicateLeafEdges(tree, /*use_core_dist=*/true);
  edges.insert(edges.end(), dup.begin(), dup.end());
  wspd_phase.Stop();

  {
    PhaseTimer phase(phases, &PhaseBreakdown::kruskal, "phase:kruskal");
    result.mst = KruskalMst(n, std::move(edges));
  }
  if (phases) phases->total += total.Seconds();
  PARHC_CHECK_MSG(result.mst.size() + 1 == n,
                  "approximate OPTICS base graph is disconnected");
  return result;
}

}  // namespace parhc
