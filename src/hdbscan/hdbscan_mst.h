// MST of the mutual reachability graph — the core of HDBSCAN* (Section 3.2).
//
// Two exact variants, both running the MemoGFK round loop with BCCP*
// (mutual-reachability closest pair) values:
//  * kGanTao  — the parallelized exact Gan–Tao baseline (Section 3.2.1):
//    standard geometric well-separation (s = 2), one BCCP* edge per pair.
//  * kMemoGfk — the paper's improved algorithm (Section 3.2.2): the new
//    well-separation (geometric separation OR mutual unreachability), which
//    terminates the WSPD recursion earlier and materializes fewer pairs
//    (Theorem 3.2 proves the MST is still exact; Theorem 3.3 gives
//    O(n*minPts) space).
#pragma once

#include <optional>
#include <vector>

#include "emst/duplicates.h"
#include "emst/memogfk_driver.h"
#include "hdbscan/core_distance.h"

namespace parhc {

enum class HdbscanVariant {
  kGanTao,   ///< exact parallel Gan-Tao baseline (Section 3.2.1)
  kMemoGfk,  ///< new well-separation (Section 3.2.2) — the fast method
};

/// Result of the HDBSCAN* MST stage.
struct HdbscanMstResult {
  /// MST of the mutual reachability graph (n-1 edges).
  std::vector<WeightedEdge> mst;
  /// Core distance of every point, indexed by original id (the self-edge
  /// weights of Section 2.1).
  std::vector<double> core_dist;
};

/// Computes the exact MST of the mutual reachability graph over a prebuilt
/// tree (leaf_size must be 1) and precomputed core distances (indexed by
/// original point id). Mutates the tree's core-distance and component
/// annotations, so concurrent callers must serialize on the tree. This is
/// the reuse entry point of the clustering engine: the tree and the core
/// distances (derived from a cached kNN prefix matrix) survive across
/// minPts values, and only this MST stage reruns.
template <int D>
std::vector<WeightedEdge> HdbscanMstOnTree(
    KdTree<D>& tree, const std::vector<double>& core_dist,
    HdbscanVariant variant = HdbscanVariant::kMemoGfk,
    PhaseBreakdown* phases = nullptr) {
  {
    PhaseTimer phase(phases, &PhaseBreakdown::core_dist, "phase:core_dist");
    tree.AnnotateCoreDistances(core_dist);
  }

  auto lb = [&tree](uint32_t a, uint32_t b) {
    return std::max(
        {std::sqrt(tree.NodeBox(a).MinSquaredDistance(tree.NodeBox(b))),
         tree.CdMin(a), tree.CdMin(b)});
  };
  auto ub = [&tree](uint32_t a, uint32_t b) {
    return std::max(
        {std::sqrt(tree.NodeBox(a).MaxSquaredDistance(tree.NodeBox(b))),
         tree.CdMax(a), tree.CdMax(b)});
  };
  auto bccp = [&tree](uint32_t a, uint32_t b) {
    return BccpStar(tree, a, b);
  };
  std::vector<WeightedEdge> dup =
      internal::DuplicateLeafEdges(tree, /*use_core_dist=*/true);
  if (variant == HdbscanVariant::kGanTao) {
    GeometricSeparation<D> sep{2.0};
    return internal::MemoGfkMst(tree, sep, lb, ub, bccp, std::move(dup),
                                phases);
  }
  HdbscanSeparation<D> sep;
  return internal::MemoGfkMst(tree, sep, lb, ub, bccp, std::move(dup),
                              phases);
}

/// Computes the exact MST of the mutual reachability graph of `pts` for
/// the given `min_pts`. O(n^2) work, O(log^2 n) depth.
template <int D>
HdbscanMstResult HdbscanMst(const std::vector<Point<D>>& pts, int min_pts,
                            HdbscanVariant variant = HdbscanVariant::kMemoGfk,
                            PhaseBreakdown* phases = nullptr) {
  PARHC_CHECK_MSG(min_pts >= 1, "minPts must be positive");
  PARHC_CHECK_MSG(static_cast<size_t>(min_pts) <= pts.size(),
                  "minPts exceeds number of points");
  Timer total;
  std::optional<KdTree<D>> tree;
  {
    PhaseTimer phase(phases, &PhaseBreakdown::build_tree, "phase:build_tree");
    tree.emplace(pts, /*leaf_size=*/1);
  }
  HdbscanMstResult result;
  {
    PhaseTimer phase(phases, &PhaseBreakdown::core_dist, "phase:core_dist");
    result.core_dist = CoreDistances(*tree, min_pts);
  }
  result.mst = HdbscanMstOnTree(*tree, result.core_dist, variant, phases);
  if (phases) phases->total += total.Seconds();
  return result;
}

}  // namespace parhc
