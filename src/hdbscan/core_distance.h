// Core distances (paper Section 2.1): cd(p) is the distance from p to its
// minPts-nearest neighbor, including p itself.
#pragma once

#include <vector>

#include "spatial/kdtree.h"
#include "spatial/knn.h"

namespace parhc {

/// Core distances for all points (indexed by original point id), via
/// parallel all-points kNN with k = minPts. O(minPts * n log n) work.
template <int D>
std::vector<double> CoreDistances(const KdTree<D>& tree, int min_pts) {
  return KthNeighborDistances(tree, static_cast<size_t>(min_pts));
}

/// Mutual reachability distance d_m(p, q) given point coordinates and core
/// distances (Section 2.1).
template <int D>
double MutualReachability(const Point<D>& p, const Point<D>& q, double cd_p,
                          double cd_q) {
  return std::max({Distance(p, q), cd_p, cd_q});
}

}  // namespace parhc
