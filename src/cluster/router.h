// Multi-node sharded serving: the router tier.
//
// A Router fronts N parhc_netserver workers and speaks the same wire
// protocol (net/protocol.h + net/frame.h) on both sides, so any client of
// a single-node server can point at a router unchanged. Datasets live in
// one of two modes:
//
//  * Replicated (created by `gen` / `load`): the creation line is
//    broadcast to every worker — generators and loaders are deterministic,
//    so all replicas hold identical data — and reads round-robin across
//    healthy workers, scaling read throughput with the replica count.
//
//  * Sharded (created by `dyn` / `geninsert`): each ingested point gets a
//    global id from the router's watermark (the same contiguous sequence a
//    single-node dynamic dataset would assign) and is placed on worker
//    SplitMix64(gid) % N (cluster/placement.h). Queries run a distributed
//    build: per-worker partial artifacts (points / kNN rows / per-slice
//    MSTs via the kOp* frame verbs) fan out with bounded concurrency and
//    merge under the distance-decomposition rule (cluster/merge.h), so
//    EMST / HDBSCAN* / kNN answers are bit-identical to a single-node
//    engine over the union — same MST edge set, same Kruskal edge order,
//    same dendrogram, same labels (tests/cluster_test.cc holds this).
//    Response lines differ only in the built=/reused= introspection keys
//    (the router traces its own artifact scheme; a single-node dynamic
//    backend's keys embed LSM content ids no other process can know).
//
// Failure semantics: health checks eject dead upstreams (reads skip them;
// sharded operations whose owners are down fail loudly). A recovered
// worker is re-seeded: replicated datasets replay their creation lines
// (idempotent — the registry replaces by name); sharded slices are
// verified against the placement map via a point export and, when lost,
// restored from the last `save` snapshot if no mutation happened since,
// else the dataset is marked degraded until an operator restores it.
// Partial mutations (a worker failing mid-insert) also degrade the
// dataset rather than serving silently wrong answers.
//
// Trace ids propagate across hops: the router appends " trace=<id>" to
// forwarded lines and wraps every upstream round trip in a "hop:<addr>"
// span, so one client request yields a single trace spanning router and
// workers.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/merge.h"
#include "cluster/placement.h"
#include "cluster/upstream.h"
#include "engine/artifact_util.h"
#include "engine/executor.h"
#include "net/protocol.h"
#include "net/server.h"

namespace parhc {
namespace cluster {

struct RouterOptions {
  int upstream_timeout_ms = 30000;
  /// Bound on concurrent upstream round trips per fan-out (0 = all
  /// workers at once).
  size_t fanout = 0;
  int health_interval_ms = 1000;
  /// Tests drive HealthPass deterministically instead.
  bool start_health_thread = true;
};

class Router {
 public:
  Router(std::vector<std::string> upstream_addrs, RouterOptions opts = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Connects and handshakes every upstream (strict: all must be up and
  /// speak net::kProtocolVersion with role "engine"), then starts the
  /// health thread. Returns "" on success.
  std::string Start();
  void Stop();

  /// Executes one wire message with the given front-end options (the
  /// session's show_timing / stats_source / obs).
  net::ProtocolResult Handle(const net::WireMessage& msg,
                             const net::ProtocolOptions& opts);

  UpstreamPool& pool() { return pool_; }

  /// Registers the router's metric sources (per-upstream counters,
  /// dataset gauge) — RouterSessionFactory::RegisterMetrics.
  void RegisterMetrics(obs::Observability& obs);

  /// One health pass at `now_ms` (test hook; the health thread calls this
  /// periodically): retries dead upstreams with doubling backoff and
  /// re-seeds recovered ones.
  void HealthPassNow(uint64_t now_ms);

 private:
  /// Merged-artifact cache of one sharded dataset — the router-tier mirror
  /// of the dynamic backend's global tier, invalidated wholesale when the
  /// dataset's epoch moves.
  struct Merged {
    uint64_t epoch = 0;
    bool mirror_ok = false;
    std::shared_ptr<const std::vector<uint32_t>> dense_gids;  ///< dense->gid
    std::vector<double> coords;  ///< dense-order rows
    std::vector<std::vector<uint32_t>> worker_dense;  ///< worker->dense ids
    /// Worker->ascending live worker-local gids, parallel to worker_dense
    /// (remaps worker MST edge endpoints to dense indices).
    std::vector<std::vector<uint32_t>> worker_local;
    std::unique_ptr<MergerBase> merger;
    bool knn_ok = false;
    size_t knn_k = 0;
    std::vector<double> knn_sq;  ///< n x knn_k sorted squared distances
    std::map<int, std::shared_ptr<const std::vector<double>>> core;
    std::map<int, std::unique_ptr<ClusteringEntry>> hdbscan;
    std::atomic<uint64_t> clock{0};
    bool emst_ok = false;
    std::shared_ptr<const std::vector<WeightedEdge>> emst_mst;
    double emst_weight = 0;
    std::shared_ptr<const Dendrogram> emst_dendro;
  };

  struct Dataset {
    enum class Mode { kReplicated, kSharded };
    Mode mode = Mode::kReplicated;
    std::string name;  ///< registry name (fan-out payloads need it)
    int dim = 0;
    uint64_t order = 0;       ///< creation order (re-seed replay order)
    std::string seed_line;    ///< replicated: the creating gen/load line
    /// Replicated datasets loaded from snapshots may be batch-dynamic on
    /// the workers; the router refuses to forward mutations to them (a
    /// single replica would diverge).
    bool mutable_on_workers = false;
    size_t static_n = 0;      ///< replicated: n reported at creation

    // Sharded state (guarded by mu).
    std::mutex mu;            ///< serializes sharded operations
    ShardMap map;
    size_t live_n = 0;
    uint64_t epoch = 0;       ///< bumped by every successful mutation
    std::string last_save_dir;
    bool dirty_since_save = true;
    std::string degraded;     ///< non-empty: every sharded op errs with this
    std::unique_ptr<Merged> merged;
  };

  // -- verb handlers (router.cc) --
  net::ProtocolResult DispatchLine(const std::string& line,
                                   const net::ProtocolOptions& opts);
  net::ProtocolResult HandleFrame(uint8_t opcode, const std::string& payload,
                                  const net::ProtocolOptions& opts);
  /// Sends `line` to every healthy upstream; replies[i] holds worker i's
  /// raw reply bytes ("" for skipped or failed workers).
  std::vector<std::string> FanLine(const std::string& line);
  std::string Broadcast(const std::string& line, const std::string& verb);
  std::string ForwardRead(const std::string& line, const std::string& verb);
  std::string ForwardFrame(const net::WireMessage& req,
                           const std::string& verb);
  std::string ShardedInsert(Dataset& ds, const std::string& name,
                            const std::vector<std::vector<double>>& rows,
                            const char* verb);
  std::string ShardedDelete(Dataset& ds, const std::string& name,
                            const std::vector<uint32_t>& gids);
  std::string ShardedSave(Dataset& ds, const std::string& name,
                          const std::string& dir);
  std::string ShardedLoad(const std::string& name, const std::string& dir);
  bool AnswerSharded(Dataset& ds, const EngineRequest& req,
                     EngineResponse* out);
  bool EnsureMirror(Dataset& ds, EngineResponse* out, std::string* fail);
  bool EnsureKnn(Dataset& ds, size_t k, EngineResponse* out,
                 std::string* fail);
  std::shared_ptr<const std::vector<double>> CoreDist(Dataset& ds,
                                                      int min_pts,
                                                      EngineResponse* out,
                                                      std::string* fail);
  ClusteringEntry* Hdbscan(Dataset& ds, int min_pts, bool need_plot,
                           EngineResponse* out, std::string* fail);
  bool EnsureEmst(Dataset& ds, EngineResponse* out, std::string* fail);
  void Reseed(size_t worker);
  void ReseedSharded(size_t worker, Dataset& ds);
  std::string ClusterStatsText() const;
  std::string RouterCountersText() const;

  std::shared_ptr<Dataset> FindDataset(const std::string& name);

  RouterOptions opts_;
  UpstreamPool pool_;
  BuildExecutor executor_;

  mutable std::shared_mutex mu_;  ///< guards datasets_ (brief lookups only)
  std::map<std::string, std::shared_ptr<Dataset>> datasets_;
  uint64_t next_order_ = 0;

  std::thread health_;
  std::atomic<bool> stop_{false};

  std::atomic<uint64_t> forwards_{0};  ///< verbatim round-robin forwards
  std::atomic<uint64_t> fanouts_{0};   ///< broadcast / sharded fan-outs
  std::atomic<uint64_t> merges_{0};    ///< merged artifact builds
};

/// One accepted connection on the router's NetServer.
class RouterSession : public net::SessionHandler {
 public:
  RouterSession(Router& router, net::ProtocolOptions opts)
      : router_(router), opts_(opts) {}

  net::ProtocolResult Handle(const net::WireMessage& msg) override;

 private:
  Router& router_;
  net::ProtocolOptions opts_;
};

class RouterSessionFactory : public net::SessionFactory {
 public:
  explicit RouterSessionFactory(Router& router) : router_(router) {}

  std::shared_ptr<net::SessionHandler> NewSession(
      const net::SessionContext& ctx) override {
    net::ProtocolOptions opts;
    opts.show_timing = ctx.show_timing;
    opts.stats_source = ctx.stats_source;
    opts.obs = ctx.obs;
    return std::make_shared<RouterSession>(router_, opts);
  }

  void RegisterMetrics(obs::Observability& obs) override {
    router_.RegisterMetrics(obs);
  }

 private:
  Router& router_;
};

}  // namespace cluster
}  // namespace parhc
