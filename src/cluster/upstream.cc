#include "cluster/upstream.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

#include "net/protocol.h"
#include "obs/trace.h"

namespace parhc {
namespace cluster {

namespace {

/// Splits "host:port"; returns false on a malformed address.
bool SplitAddr(const std::string& addr, std::string* host, uint16_t* port) {
  size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == addr.size()) {
    return false;
  }
  *host = addr.substr(0, colon);
  char* end = nullptr;
  long p = std::strtol(addr.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || p <= 0 || p > 65535) return false;
  *port = static_cast<uint16_t>(p);
  return true;
}

/// Non-blocking connect bounded by `timeout_ms`, then restores blocking
/// mode with SO_RCVTIMEO/SO_SNDTIMEO so every later send/recv is bounded
/// too. Returns the fd or -1.
int ConnectWithTimeout(const std::string& host, uint16_t port,
                       int timeout_ms) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) return -1;
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return -1;
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa);
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, timeout_ms) != 1) {
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return -1;
    }
  } else if (rc != 0) {
    ::close(fd);
    return -1;
  }
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

}  // namespace

Upstream::Upstream(std::string addr, int timeout_ms)
    : addr_(std::move(addr)),
      timeout_ms_(timeout_ms),
      hop_span_name_(obs::Tracer::Get().Intern("hop:" + addr_)) {
  SplitAddr(addr_, &host_, &port_);
}

Upstream::~Upstream() { Close(); }

std::string Upstream::Connect() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (host_.empty() || port_ == 0) return "malformed upstream address " + addr_;
  fd_ = ConnectWithTimeout(host_, port_, timeout_ms_);
  if (fd_ < 0) return "cannot connect to upstream " + addr_;
  splitter_.reset(new net::FrameSplitter(/*allow_binary=*/true));

  net::WireMessage req;
  req.text = "hello";
  net::WireMessage reply;
  if (!RoundtripLocked(req, &reply, nullptr)) {
    return "hello handshake with " + addr_ + " failed";
  }
  // "ok hello proto=<v> role=<role> dims=<d1,d2,...>"
  std::istringstream ss(reply.text);
  std::string ok, verb, proto_kv, role_kv, dims_kv;
  ss >> ok >> verb >> proto_kv >> role_kv >> dims_kv;
  if (ok != "ok" || verb != "hello" || proto_kv.rfind("proto=", 0) != 0 ||
      role_kv.rfind("role=", 0) != 0 || dims_kv.rfind("dims=", 0) != 0) {
    MarkDown();
    return "upstream " + addr_ + " sent a malformed hello reply: " +
           reply.text;
  }
  int proto = std::atoi(proto_kv.c_str() + 6);
  if (proto != net::kProtocolVersion) {
    MarkDown();
    return "upstream " + addr_ + " speaks protocol " + std::to_string(proto) +
           ", need " + std::to_string(net::kProtocolVersion);
  }
  std::string role = role_kv.substr(5);
  if (role != "engine") {
    MarkDown();
    return "upstream " + addr_ + " has role " + role + ", need engine";
  }
  dims_.clear();
  std::istringstream ds(dims_kv.substr(5));
  std::string tok;
  while (std::getline(ds, tok, ',')) {
    if (!tok.empty()) dims_.push_back(std::atoi(tok.c_str()));
  }
  healthy_.store(true, std::memory_order_release);
  return "";
}

void Upstream::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  MarkDown();
}

void Upstream::MarkDown() {
  healthy_.store(false, std::memory_order_release);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Upstream::WriteAll(const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  counters_.bytes_out.fetch_add(bytes.size(), std::memory_order_relaxed);
  return true;
}

bool Upstream::ReadReply(net::WireMessage* msg) {
  char buf[64 * 1024];
  while (true) {
    if (splitter_->Next(msg)) return true;
    if (!splitter_->error().empty()) return false;
    ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n <= 0) return false;  // EOF, timeout, or error
    counters_.bytes_in.fetch_add(static_cast<size_t>(n),
                                 std::memory_order_relaxed);
    splitter_->Feed(buf, static_cast<size_t>(n));
  }
}

bool Upstream::RoundtripLocked(const net::WireMessage& req,
                               net::WireMessage* reply,
                               std::string* raw_reply) {
  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  if (fd_ < 0) {
    counters_.errors.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  obs::Span hop(hop_span_name_, "net");
  std::string wire;
  if (req.binary) {
    wire = net::EncodeFrame(req.opcode, req.payload);
  } else {
    wire = req.text;
    uint64_t trace_id = obs::CurrentTraceId();
    if (trace_id != 0) wire += " trace=" + std::to_string(trace_id);
    wire += '\n';
  }
  if (!WriteAll(wire) || !ReadReply(reply)) {
    counters_.errors.fetch_add(1, std::memory_order_relaxed);
    MarkDown();
    return false;
  }
  if (raw_reply != nullptr) {
    *raw_reply = reply->binary ? net::EncodeFrame(reply->opcode, reply->payload)
                               : reply->text + '\n';
  }
  return true;
}

bool Upstream::Roundtrip(const net::WireMessage& req, net::WireMessage* reply,
                         std::string* raw_reply) {
  std::lock_guard<std::mutex> lock(mu_);
  return RoundtripLocked(req, reply, raw_reply);
}

bool Upstream::SendLine(const std::string& line, std::string* reply_line) {
  net::WireMessage req;
  req.text = line;
  net::WireMessage reply;
  if (!Roundtrip(req, &reply, nullptr)) return false;
  *reply_line = reply.text;
  return true;
}

bool Upstream::TryPing() {
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) return true;  // request in flight: provably alive
  net::WireMessage req;
  req.text = "hello";
  net::WireMessage reply;
  return RoundtripLocked(req, &reply, nullptr);
}

UpstreamPool::UpstreamPool(std::vector<std::string> addrs, int timeout_ms,
                           size_t fanout)
    : fanout_(fanout) {
  for (auto& a : addrs) {
    ups_.emplace_back(new Upstream(std::move(a), timeout_ms));
  }
  next_retry_ms_.assign(ups_.size(), 0);
  backoff_ms_.assign(ups_.size(), 100);
}

std::string UpstreamPool::ConnectAll() {
  for (auto& up : ups_) {
    std::string err = up->Connect();
    if (!err.empty()) return err;
  }
  return "";
}

size_t UpstreamPool::HealthyCount() const {
  size_t n = 0;
  for (const auto& up : ups_) n += up->healthy() ? 1 : 0;
  return n;
}

Upstream* UpstreamPool::NextHealthy() {
  for (size_t i = 0; i < ups_.size(); ++i) {
    Upstream* up =
        ups_[rr_.fetch_add(1, std::memory_order_relaxed) % ups_.size()].get();
    if (up->healthy()) return up;
  }
  return nullptr;
}

void UpstreamPool::ForEach(const std::function<void(size_t, Upstream&)>& fn) {
  size_t n = ups_.size();
  if (n == 0) return;
  size_t threads = std::min(fanout_ == 0 ? n : fanout_, n);
  uint64_t trace_id = obs::CurrentTraceId();
  std::atomic<size_t> next{0};
  auto work = [&] {
    obs::TraceContext trace(trace_id);
    for (size_t i; (i = next.fetch_add(1, std::memory_order_relaxed)) < n;) {
      fn(i, *ups_[i]);
    }
  };
  if (threads <= 1) {
    work();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (size_t t = 0; t + 1 < threads; ++t) pool.emplace_back(work);
  work();
  for (auto& t : pool) t.join();
}

std::vector<size_t> UpstreamPool::HealthPass(uint64_t now_ms) {
  std::vector<size_t> recovered;
  for (size_t i = 0; i < ups_.size(); ++i) {
    Upstream& up = *ups_[i];
    if (up.healthy()) {
      if (!up.TryPing()) {
        next_retry_ms_[i] = now_ms + backoff_ms_[i];
      }
      continue;
    }
    if (now_ms < next_retry_ms_[i]) continue;
    if (up.Connect().empty()) {
      up.counters().reconnects.fetch_add(1, std::memory_order_relaxed);
      backoff_ms_[i] = 100;
      recovered.push_back(i);
    } else {
      backoff_ms_[i] = std::min<uint64_t>(backoff_ms_[i] * 2, 3200);
      next_retry_ms_[i] = now_ms + backoff_ms_[i];
    }
  }
  return recovered;
}

}  // namespace cluster
}  // namespace parhc
