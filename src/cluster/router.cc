// Router-tier verb implementations (see router.h for the architecture and
// exactness/failure contracts).
//
// Response formatting deliberately reuses the single-node format strings
// (net/protocol.cc): a client sees the same bytes whether it talks to one
// worker or to a router fronting many — except the built=/reused= keys,
// which name the router's own merged artifacts.
#include "cluster/router.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string_view>

#include "dendrogram/cluster_extraction.h"
#include "dendrogram/reachability.h"
#include "graph/kruskal.h"
#include "hdbscan/stability.h"
#include "obs/trace.h"
#include "obs/verb_counters.h"
#include "store/manifest.h"
#include "util/check.h"

namespace parhc {
namespace cluster {

namespace {

std::string StrPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  char buf[512];
  int n = vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n < 0) return {};
  if (static_cast<size_t>(n) < sizeof buf) return std::string(buf, n);
  std::string big(static_cast<size_t>(n) + 1, '\0');
  va_start(ap, fmt);
  vsnprintf(&big[0], big.size(), fmt, ap);
  va_end(ap);
  big.resize(static_cast<size_t>(n));
  return big;
}

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Worker subdirectory for worker `w` under a sharded save/load dir.
std::string WorkerDir(const std::string& dir, size_t w) {
  return dir + "/w" + std::to_string(w);
}

/// Dense index of a worker-local gid via the slice's ascending-local
/// array (edge endpoints arrive as worker-local gids; slices are small
/// enough that a binary search per endpoint is in the noise next to the
/// network round trip).
bool DenseOfLocal(const std::vector<uint32_t>& worker_local,
                  const std::vector<uint32_t>& worker_dense, uint32_t local,
                  uint32_t* dense) {
  auto it = std::lower_bound(worker_local.begin(), worker_local.end(), local);
  if (it == worker_local.end() || *it != local) return false;
  *dense = worker_dense[static_cast<size_t>(it - worker_local.begin())];
  return true;
}

}  // namespace

Router::Router(std::vector<std::string> upstream_addrs, RouterOptions opts)
    : opts_(opts),
      pool_(std::move(upstream_addrs), opts.upstream_timeout_ms, opts.fanout) {}

Router::~Router() { Stop(); }

std::string Router::Start() {
  std::string err = pool_.ConnectAll();
  if (!err.empty()) return err;
  if (opts_.start_health_thread) {
    stop_.store(false, std::memory_order_release);
    health_ = std::thread([this] {
      while (!stop_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts_.health_interval_ms));
        if (stop_.load(std::memory_order_acquire)) break;
        HealthPassNow(NowMs());
      }
    });
  }
  return "";
}

void Router::Stop() {
  stop_.store(true, std::memory_order_release);
  if (health_.joinable()) health_.join();
}

void Router::HealthPassNow(uint64_t now_ms) {
  for (size_t w : pool_.HealthPass(now_ms)) Reseed(w);
}

std::shared_ptr<Router::Dataset> Router::FindDataset(const std::string& name) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : it->second;
}

// ---- upstream fan-out / forwarding primitives ---------------------------

std::vector<std::string> Router::FanLine(const std::string& line) {
  fanouts_.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::string> replies(pool_.size());
  pool_.ForEach([&](size_t i, Upstream& up) {
    if (!up.healthy()) return;
    net::WireMessage req;
    req.text = line;
    net::WireMessage reply;
    std::string raw;
    if (up.Roundtrip(req, &reply, &raw)) replies[i] = raw;
  });
  return replies;
}

std::string Router::Broadcast(const std::string& line,
                              const std::string& verb) {
  for (const std::string& r : FanLine(line)) {
    if (!r.empty()) return r;
  }
  return StrPrintf("err %s: no healthy upstream\n", verb.c_str());
}

std::string Router::ForwardRead(const std::string& line,
                                const std::string& verb) {
  forwards_.fetch_add(1, std::memory_order_relaxed);
  net::WireMessage req;
  req.text = line;
  for (size_t attempt = 0; attempt < pool_.size(); ++attempt) {
    Upstream* up = pool_.NextHealthy();
    if (up == nullptr) break;
    net::WireMessage reply;
    std::string raw;
    if (up->Roundtrip(req, &reply, &raw)) return raw;
  }
  return StrPrintf("err %s: no healthy upstream\n", verb.c_str());
}

std::string Router::ForwardFrame(const net::WireMessage& req,
                                 const std::string& verb) {
  forwards_.fetch_add(1, std::memory_order_relaxed);
  for (size_t attempt = 0; attempt < pool_.size(); ++attempt) {
    Upstream* up = pool_.NextHealthy();
    if (up == nullptr) break;
    net::WireMessage reply;
    std::string raw;
    if (up->Roundtrip(req, &reply, &raw)) return raw;
  }
  return StrPrintf("err %s: no healthy upstream\n", verb.c_str());
}

// ---- sharded mutations --------------------------------------------------

std::string Router::ShardedInsert(Dataset& ds, const std::string& name,
                                  const std::vector<std::vector<double>>& rows,
                                  const char* verb) {
  if (!ds.degraded.empty()) {
    return StrPrintf("err %s %s: %s\n", verb, name.c_str(),
                     ds.degraded.c_str());
  }
  size_t w_count = pool_.size();
  uint32_t first = ds.map.next_gid;
  // Owners are derived from the un-advanced watermark; the map only
  // mutates after every owner acknowledged its sub-batch.
  std::vector<std::vector<double>> flat(w_count);
  std::vector<size_t> counts(w_count, 0);
  for (size_t i = 0; i < rows.size(); ++i) {
    size_t w = OwnerOfGid(first + static_cast<uint32_t>(i), w_count);
    ++counts[w];
    flat[w].insert(flat[w].end(), rows[i].begin(), rows[i].end());
  }
  for (size_t w = 0; w < w_count; ++w) {
    if (counts[w] != 0 && !pool_.at(w).healthy()) {
      return StrPrintf("err %s %s: worker %s is unhealthy\n", verb,
                       name.c_str(), pool_.at(w).addr().c_str());
    }
  }
  std::vector<uint32_t> wfirst(w_count, 0);
  std::vector<uint8_t> ok(w_count, 1);
  std::vector<std::string> errs(w_count);
  std::atomic<bool> io_fail{false};
  pool_.ForEach([&](size_t w, Upstream& up) {
    if (counts[w] == 0) return;
    std::string payload;
    net::PutU16(&payload, static_cast<uint16_t>(name.size()));
    payload += name;
    net::PutU16(&payload, static_cast<uint16_t>(ds.dim));
    net::PutU32(&payload, static_cast<uint32_t>(counts[w]));
    for (double v : flat[w]) net::PutF64(&payload, v);
    net::WireMessage req;
    req.binary = true;
    req.opcode = net::kOpInsertPoints;
    req.payload = std::move(payload);
    net::WireMessage reply;
    if (!up.Roundtrip(req, &reply, nullptr)) {
      ok[w] = 0;
      io_fail.store(true, std::memory_order_relaxed);
      errs[w] = "worker " + up.addr() + " failed mid-insert";
      return;
    }
    unsigned long n = 0;
    unsigned a = 0, b = 0;
    if (reply.binary ||
        sscanf(reply.text.c_str(), "ok insert %*s n=%lu gids=[%u,%u)", &n, &a,
               &b) != 3 ||
        n != counts[w]) {
      ok[w] = 0;
      errs[w] = reply.binary ? "unexpected frame reply" : reply.text;
      return;
    }
    wfirst[w] = a;
  });
  size_t mutated = 0, failed = 0;
  std::string first_err;
  for (size_t w = 0; w < w_count; ++w) {
    if (counts[w] == 0) continue;
    if (ok[w]) {
      ++mutated;
    } else {
      ++failed;
      if (first_err.empty()) first_err = errs[w];
    }
  }
  if (failed != 0) {
    // A clean refusal with no other worker mutated leaves the cluster
    // consistent; anything else (I/O loss mid-batch, mixed outcomes)
    // leaves worker state unknowable — stop serving wrong answers.
    if (mutated != 0 || io_fail.load(std::memory_order_relaxed)) {
      ds.degraded = "partial insert failure (" + first_err +
                    "); restore from a snapshot";
      ds.epoch++;
    }
    return StrPrintf("err %s %s: %s\n", verb, name.c_str(), first_err.c_str());
  }
  ds.map.Allocate(rows.size());
  std::vector<uint32_t> next_local = wfirst;
  for (uint32_t g = first; g < first + static_cast<uint32_t>(rows.size());
       ++g) {
    ds.map.local[g] = next_local[ds.map.owner[g]]++;
  }
  ds.live_n += rows.size();
  ds.epoch++;
  ds.dirty_since_save = true;
  return StrPrintf("ok %s %s n=%zu gids=[%u,%u)\n", verb, name.c_str(),
                   rows.size(), first,
                   first + static_cast<uint32_t>(rows.size()));
}

std::string Router::ShardedDelete(Dataset& ds, const std::string& name,
                                  const std::vector<uint32_t>& gids) {
  if (!ds.degraded.empty()) {
    return StrPrintf("err delete %s: %s\n", name.c_str(), ds.degraded.c_str());
  }
  size_t w_count = pool_.size();
  std::vector<std::vector<uint32_t>> locals(w_count);
  std::set<uint32_t> pending;
  for (uint32_t g : gids) {
    if (g >= ds.map.next_gid || ds.map.dead[g]) continue;
    if (!pending.insert(g).second) continue;  // duplicate in this request
    locals[ds.map.owner[g]].push_back(ds.map.local[g]);
  }
  // Unknown or already-dead ids are skipped, like the single-node
  // DeleteIds contract.
  if (pending.empty()) {
    return StrPrintf("ok delete %s deleted=0\n", name.c_str());
  }
  for (size_t w = 0; w < w_count; ++w) {
    if (!locals[w].empty() && !pool_.at(w).healthy()) {
      return StrPrintf("err delete %s: worker %s is unhealthy\n", name.c_str(),
                       pool_.at(w).addr().c_str());
    }
  }
  std::vector<uint8_t> ok(w_count, 1);
  std::vector<std::string> errs(w_count);
  std::atomic<bool> io_fail{false};
  pool_.ForEach([&](size_t w, Upstream& up) {
    if (locals[w].empty()) return;
    std::string line = "delete " + name;
    for (uint32_t l : locals[w]) line += ' ' + std::to_string(l);
    std::string reply;
    if (!up.SendLine(line, &reply)) {
      ok[w] = 0;
      io_fail.store(true, std::memory_order_relaxed);
      errs[w] = "worker " + up.addr() + " failed mid-delete";
      return;
    }
    unsigned long deleted = 0;
    if (sscanf(reply.c_str(), "ok delete %*s deleted=%lu", &deleted) != 1 ||
        deleted != locals[w].size()) {
      ok[w] = 0;
      errs[w] = reply;
    }
  });
  size_t mutated = 0, failed = 0;
  std::string first_err;
  for (size_t w = 0; w < w_count; ++w) {
    if (locals[w].empty()) continue;
    if (ok[w]) {
      ++mutated;
    } else {
      ++failed;
      if (first_err.empty()) first_err = errs[w];
    }
  }
  if (failed != 0) {
    if (mutated != 0 || io_fail.load(std::memory_order_relaxed)) {
      ds.degraded = "partial delete failure (" + first_err +
                    "); restore from a snapshot";
      ds.epoch++;
    }
    return StrPrintf("err delete %s: %s\n", name.c_str(), first_err.c_str());
  }
  for (uint32_t g : pending) ds.map.dead[g] = 1;
  ds.live_n -= pending.size();
  ds.epoch++;
  ds.dirty_since_save = true;
  return StrPrintf("ok delete %s deleted=%zu\n", name.c_str(), pending.size());
}

std::string Router::ShardedSave(Dataset& ds, const std::string& name,
                                const std::string& dir) {
  if (!ds.degraded.empty()) {
    return StrPrintf("err save %s: %s\n", name.c_str(), ds.degraded.c_str());
  }
  if (pool_.HealthyCount() != pool_.size()) {
    return StrPrintf("err save %s: need all %zu workers healthy\n",
                     name.c_str(), pool_.size());
  }
  std::vector<uint8_t> ok(pool_.size(), 0);
  std::vector<std::string> errs(pool_.size());
  pool_.ForEach([&](size_t w, Upstream& up) {
    std::string reply;
    if (!up.SendLine("save " + name + ' ' + WorkerDir(dir, w), &reply)) {
      errs[w] = "worker " + up.addr() + " failed during save";
      return;
    }
    if (reply.rfind("ok save ", 0) != 0) {
      errs[w] = reply;
      return;
    }
    ok[w] = 1;
  });
  for (size_t w = 0; w < pool_.size(); ++w) {
    if (!ok[w]) {
      return StrPrintf("err save %s: %s\n", name.c_str(), errs[w].c_str());
    }
  }
  EnsureDatasetDir(dir);
  SaveShardMap(dir + "/cluster.map", static_cast<uint32_t>(ds.dim), ds.map);
  ds.last_save_dir = dir;
  ds.dirty_since_save = false;
  return StrPrintf("ok save %s dir=%s\n", name.c_str(), dir.c_str());
}

std::string Router::ShardedLoad(const std::string& name,
                                const std::string& dir) {
  uint32_t dim = 0;
  ShardMap map;
  try {
    map = LoadShardMap(dir + "/cluster.map", &dim);
  } catch (const std::exception& e) {
    return StrPrintf("err load %s: %s\n", name.c_str(), e.what());
  }
  if (map.workers != pool_.size()) {
    return StrPrintf("err load %s: cluster map expects %u workers, have %zu\n",
                     name.c_str(), map.workers, pool_.size());
  }
  if (pool_.HealthyCount() != pool_.size()) {
    return StrPrintf("err load %s: need all %zu workers healthy\n",
                     name.c_str(), pool_.size());
  }
  std::vector<uint8_t> ok(pool_.size(), 0);
  std::vector<std::string> errs(pool_.size());
  pool_.ForEach([&](size_t w, Upstream& up) {
    std::string reply;
    if (!up.SendLine("load " + name + " snap " + WorkerDir(dir, w), &reply)) {
      errs[w] = "worker " + up.addr() + " failed during load";
      return;
    }
    if (reply.rfind("ok load ", 0) != 0) {
      errs[w] = reply;
      return;
    }
    ok[w] = 1;
  });
  for (size_t w = 0; w < pool_.size(); ++w) {
    if (!ok[w]) {
      return StrPrintf("err load %s: %s\n", name.c_str(), errs[w].c_str());
    }
  }
  auto ds = std::make_shared<Dataset>();
  ds->mode = Dataset::Mode::kSharded;
  ds->name = name;
  ds->dim = static_cast<int>(dim);
  ds->map = std::move(map);
  ds->live_n = ds->map.LiveCount();
  ds->epoch = 1;
  ds->last_save_dir = dir;
  ds->dirty_since_save = false;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    ds->order = next_order_++;
    datasets_[name] = ds;
  }
  return StrPrintf("ok load %s dim=%d n=%zu warm\n", name.c_str(), ds->dim,
                   ds->live_n);
}

// ---- merged query pipeline (sharded datasets) ---------------------------

bool Router::EnsureMirror(Dataset& ds, EngineResponse* out,
                          std::string* fail) {
  if (ds.merged && ds.merged->epoch == ds.epoch && ds.merged->mirror_ok) {
    TraceArtifact(out, /*built=*/false, "mirror");
    return true;
  }
  auto merged = std::make_unique<Merged>();
  merged->epoch = ds.epoch;
  size_t w_count = pool_.size();
  size_t n = ds.live_n;
  int dim = ds.dim;

  // Expected slice of every worker, straight from the placement map: pairs
  // (worker-local gid, global gid) pushed in ascending-global order. Local
  // gids grow monotonically with global gids per worker, so this is also
  // ascending-local — the order ExportLive replies in.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> expect(w_count);
  std::vector<uint32_t> dense_of(ds.map.next_gid, 0);
  auto dense_gids = std::make_shared<std::vector<uint32_t>>();
  dense_gids->reserve(n);
  for (uint32_t g = 0; g < ds.map.next_gid; ++g) {
    if (ds.map.dead[g]) continue;
    dense_of[g] = static_cast<uint32_t>(dense_gids->size());
    dense_gids->push_back(g);
    expect[ds.map.owner[g]].push_back({ds.map.local[g], g});
  }
  for (size_t w = 0; w < w_count; ++w) {
    if (!expect[w].empty() && !pool_.at(w).healthy()) {
      *fail = "worker " + pool_.at(w).addr() + " is unhealthy";
      return false;
    }
  }

  merged->coords.assign(n * static_cast<size_t>(dim), 0.0);
  merged->worker_dense.assign(w_count, {});
  merged->worker_local.assign(w_count, {});
  std::vector<WorkerSlice> slices(w_count);
  std::vector<std::string> errs(w_count);
  pool_.ForEach([&](size_t w, Upstream& up) {
    if (expect[w].empty()) return;
    std::string payload;
    net::PutU16(&payload, static_cast<uint16_t>(ds.name.size()));
    payload += ds.name;
    net::WireMessage req;
    req.binary = true;
    req.opcode = net::kOpExportPoints;
    req.payload = std::move(payload);
    net::WireMessage reply;
    if (!up.Roundtrip(req, &reply, nullptr)) {
      errs[w] = "worker " + up.addr() + " failed during point export";
      return;
    }
    if (!reply.binary || reply.opcode != net::kOpPointsReply) {
      errs[w] = reply.binary ? "unexpected frame reply" : reply.text;
      return;
    }
    net::PayloadReader rd(reply.payload);
    int rdim = static_cast<int>(rd.GetU16());
    uint32_t count = rd.GetU32();
    if (!rd.ok() || rdim != dim || count != expect[w].size()) {
      errs[w] = "worker " + up.addr() +
                " slice does not match the placement map";
      return;
    }
    std::vector<uint32_t>& wl = merged->worker_local[w];
    std::vector<uint32_t>& wd = merged->worker_dense[w];
    wl.resize(count);
    wd.resize(count);
    for (uint32_t l = 0; l < count; ++l) {
      uint32_t local = rd.GetU32();
      if (local != expect[w][l].first) {
        errs[w] = "worker " + up.addr() +
                  " slice does not match the placement map";
        return;
      }
      wl[l] = local;
      wd[l] = dense_of[expect[w][l].second];
    }
    WorkerSlice& s = slices[w];
    s.dense = wd;
    s.coords.resize(static_cast<size_t>(count) * dim);
    for (double& v : s.coords) v = rd.GetF64();
    if (!rd.ok() || rd.remaining() != 0) {
      errs[w] = "worker " + up.addr() + " sent a malformed points reply";
      return;
    }
    for (uint32_t l = 0; l < count; ++l) {
      std::memcpy(&merged->coords[static_cast<size_t>(wd[l]) * dim],
                  &s.coords[static_cast<size_t>(l) * dim],
                  sizeof(double) * static_cast<size_t>(dim));
    }
  });
  for (size_t w = 0; w < w_count; ++w) {
    if (!errs[w].empty()) {
      *fail = errs[w];
      return false;
    }
  }
  merged->dense_gids = std::move(dense_gids);
  merged->merger = MakeMerger(dim);
  if (!merged->merger) {
    *fail = "unsupported dataset dimension " + std::to_string(dim);
    return false;
  }
  merged->merger->SetWorkers(slices);
  merged->mirror_ok = true;
  ds.merged = std::move(merged);
  TraceArtifact(out, /*built=*/true, "mirror");
  return true;
}

bool Router::EnsureKnn(Dataset& ds, size_t k, EngineResponse* out,
                       std::string* fail) {
  Merged& m = *ds.merged;
  if (m.knn_ok && m.knn_k >= k) {
    TraceArtifact(out, /*built=*/false, "knn@" + std::to_string(m.knn_k));
    return true;
  }
  size_t n = ds.live_n;
  size_t K = std::min(std::max(k, m.knn_k), n);
  std::vector<std::vector<double>> worker_rows;
  std::vector<std::string> errs(pool_.size());
  std::mutex rows_mu;
  pool_.ForEach([&](size_t w, Upstream& up) {
    if (m.worker_dense[w].empty()) return;
    std::string payload;
    net::PutU16(&payload, static_cast<uint16_t>(ds.name.size()));
    payload += ds.name;
    net::PutU32(&payload, static_cast<uint32_t>(K));
    net::PutU16(&payload, static_cast<uint16_t>(ds.dim));
    net::PutU32(&payload, static_cast<uint32_t>(n));
    for (double v : m.coords) net::PutF64(&payload, v);
    net::WireMessage req;
    req.binary = true;
    req.opcode = net::kOpKnnQuery;
    req.payload = std::move(payload);
    net::WireMessage reply;
    if (!up.Roundtrip(req, &reply, nullptr)) {
      errs[w] = "worker " + up.addr() + " failed during kNN fan-out";
      return;
    }
    if (!reply.binary || reply.opcode != net::kOpKnnReply) {
      errs[w] = reply.binary ? "unexpected frame reply" : reply.text;
      return;
    }
    net::PayloadReader rd(reply.payload);
    uint32_t count = rd.GetU32();
    uint32_t rk = rd.GetU32();
    if (!rd.ok() || count != n || rk != K ||
        rd.remaining() != static_cast<size_t>(n) * K * sizeof(double)) {
      errs[w] = "worker " + up.addr() + " sent a malformed kNN reply";
      return;
    }
    std::vector<double> rows(static_cast<size_t>(n) * K);
    for (double& v : rows) v = rd.GetF64();
    std::lock_guard<std::mutex> lock(rows_mu);
    worker_rows.push_back(std::move(rows));
  });
  for (const std::string& e : errs) {
    if (!e.empty()) {
      *fail = e;
      return false;
    }
  }
  m.knn_sq = MergeKnnRows(n, K, worker_rows);
  m.knn_k = K;
  m.knn_ok = true;
  TraceArtifact(out, /*built=*/true, "knn@" + std::to_string(K));
  return true;
}

std::shared_ptr<const std::vector<double>> Router::CoreDist(
    Dataset& ds, int min_pts, EngineResponse* out, std::string* fail) {
  Merged& m = *ds.merged;
  const std::string key = "cd@" + std::to_string(min_pts);
  auto it = m.core.find(min_pts);
  if (it != m.core.end()) {
    TraceArtifact(out, /*built=*/false, key);
    return it->second;
  }
  if (!EnsureKnn(ds, static_cast<size_t>(min_pts), out, fail)) return nullptr;
  size_t n = ds.live_n;
  size_t stride = m.knn_k;
  auto cd = std::make_shared<std::vector<double>>(n);
  for (size_t i = 0; i < n; ++i) {
    (*cd)[i] = std::sqrt(m.knn_sq[i * stride + (min_pts - 1)]);
  }
  m.core.emplace(min_pts, cd);
  TraceArtifact(out, /*built=*/true, key);
  return cd;
}

ClusteringEntry* Router::Hdbscan(Dataset& ds, int min_pts, bool need_plot,
                                 EngineResponse* out, std::string* fail) {
  Merged& m = *ds.merged;
  const std::string suffix = "@" + std::to_string(min_pts);
  auto it = m.hdbscan.find(min_pts);
  if (it == m.hdbscan.end()) {
    auto cd = CoreDist(ds, min_pts, out, fail);
    if (!cd) return nullptr;
    size_t n = ds.live_n;
    std::vector<WeightedEdge> candidates;
    std::vector<std::string> errs(pool_.size());
    std::mutex cand_mu;
    pool_.ForEach([&](size_t w, Upstream& up) {
      if (m.worker_dense[w].empty()) return;
      // Per-worker MR-MST under the *globally* merged core distances, in
      // the worker's ascending-gid order.
      std::string payload;
      net::PutU16(&payload, static_cast<uint16_t>(ds.name.size()));
      payload += ds.name;
      net::PutU32(&payload,
                  static_cast<uint32_t>(m.worker_dense[w].size()));
      for (uint32_t dense : m.worker_dense[w]) {
        net::PutF64(&payload, (*cd)[dense]);
      }
      net::WireMessage req;
      req.binary = true;
      req.opcode = net::kOpShardMrMst;
      req.payload = std::move(payload);
      net::WireMessage reply;
      if (!up.Roundtrip(req, &reply, nullptr)) {
        errs[w] = "worker " + up.addr() + " failed during MR-MST fan-out";
        return;
      }
      if (!reply.binary || reply.opcode != net::kOpEdgesReply) {
        errs[w] = reply.binary ? "unexpected frame reply" : reply.text;
        return;
      }
      net::PayloadReader rd(reply.payload);
      uint32_t count = rd.GetU32();
      if (!rd.ok() || rd.remaining() != static_cast<size_t>(count) * 16) {
        errs[w] = "worker " + up.addr() + " sent a malformed edges reply";
        return;
      }
      std::vector<WeightedEdge> edges(count);
      for (WeightedEdge& e : edges) {
        uint32_t lu = rd.GetU32();
        uint32_t lv = rd.GetU32();
        double wgt = rd.GetF64();
        uint32_t du = 0, dv = 0;
        if (!DenseOfLocal(m.worker_local[w], m.worker_dense[w], lu, &du) ||
            !DenseOfLocal(m.worker_local[w], m.worker_dense[w], lv, &dv)) {
          errs[w] = "worker " + up.addr() + " returned an unknown edge id";
          return;
        }
        e = {du, dv, wgt};
      }
      std::lock_guard<std::mutex> lock(cand_mu);
      candidates.insert(candidates.end(), edges.begin(), edges.end());
    });
    for (const std::string& e : errs) {
      if (!e.empty()) {
        *fail = e;
        return nullptr;
      }
    }
    std::vector<WeightedEdge> cross = m.merger->CrossMrEdges(*cd);
    candidates.insert(candidates.end(), cross.begin(), cross.end());
    std::vector<WeightedEdge> mst = KruskalMst(n, std::move(candidates));
    PARHC_CHECK_MSG(mst.size() + 1 == n,
                    "cluster MR-MST candidates did not span");
    auto entry = std::make_unique<ClusteringEntry>();
    entry->core_dist = cd;
    entry->mst_weight = TotalEdgeWeight(mst);
    entry->mst =
        std::make_shared<const std::vector<WeightedEdge>>(std::move(mst));
    TraceArtifact(out, /*built=*/true, "mst" + suffix);
    it = m.hdbscan.emplace(min_pts, std::move(entry)).first;
    EvictLruClusterings(m.hdbscan, m.core, min_pts);
  } else {
    TraceArtifact(out, /*built=*/false, "mst" + suffix);
  }
  ClusteringEntry& e = *it->second;
  if (!e.dendrogram) {
    e.dendrogram = BuildDendrogramArtifact(ds.live_n, *e.mst);
    TraceArtifact(out, /*built=*/true, "dendro" + suffix);
  } else {
    TraceArtifact(out, /*built=*/false, "dendro" + suffix);
  }
  if (need_plot) {
    if (!e.plot) {
      e.plot = std::make_shared<const ReachabilityPlot>(
          ComputeReachability(*e.dendrogram));
      TraceArtifact(out, /*built=*/true, "reach" + suffix);
    } else {
      TraceArtifact(out, /*built=*/false, "reach" + suffix);
    }
  }
  TouchClusteringEntry(e, m.clock);
  return &e;
}

bool Router::EnsureEmst(Dataset& ds, EngineResponse* out, std::string* fail) {
  Merged& m = *ds.merged;
  if (m.emst_ok) {
    TraceArtifact(out, /*built=*/false, "forest-emst");
    return true;
  }
  size_t n = ds.live_n;
  std::vector<WeightedEdge> candidates;
  std::vector<std::string> errs(pool_.size());
  std::mutex cand_mu;
  pool_.ForEach([&](size_t w, Upstream& up) {
    if (m.worker_dense[w].empty()) return;
    std::string payload;
    net::PutU16(&payload, static_cast<uint16_t>(ds.name.size()));
    payload += ds.name;
    net::WireMessage req;
    req.binary = true;
    req.opcode = net::kOpExportMst;
    req.payload = std::move(payload);
    net::WireMessage reply;
    if (!up.Roundtrip(req, &reply, nullptr)) {
      errs[w] = "worker " + up.addr() + " failed during EMST fan-out";
      return;
    }
    if (!reply.binary || reply.opcode != net::kOpEdgesReply) {
      errs[w] = reply.binary ? "unexpected frame reply" : reply.text;
      return;
    }
    net::PayloadReader rd(reply.payload);
    uint32_t count = rd.GetU32();
    if (!rd.ok() || rd.remaining() != static_cast<size_t>(count) * 16) {
      errs[w] = "worker " + up.addr() + " sent a malformed edges reply";
      return;
    }
    std::vector<WeightedEdge> edges(count);
    for (WeightedEdge& e : edges) {
      uint32_t lu = rd.GetU32();
      uint32_t lv = rd.GetU32();
      double wgt = rd.GetF64();
      uint32_t du = 0, dv = 0;
      if (!DenseOfLocal(m.worker_local[w], m.worker_dense[w], lu, &du) ||
          !DenseOfLocal(m.worker_local[w], m.worker_dense[w], lv, &dv)) {
        errs[w] = "worker " + up.addr() + " returned an unknown edge id";
        return;
      }
      e = {du, dv, wgt};
    }
    std::lock_guard<std::mutex> lock(cand_mu);
    candidates.insert(candidates.end(), edges.begin(), edges.end());
  });
  for (const std::string& e : errs) {
    if (!e.empty()) {
      *fail = e;
      return false;
    }
  }
  std::vector<WeightedEdge> cross = m.merger->CrossEmstEdges();
  candidates.insert(candidates.end(), cross.begin(), cross.end());
  std::vector<WeightedEdge> mst = KruskalMst(n, std::move(candidates));
  PARHC_CHECK_MSG(mst.size() + 1 == n,
                  "cluster EMST candidates did not span all points");
  m.emst_weight = TotalEdgeWeight(mst);
  m.emst_mst =
      std::make_shared<const std::vector<WeightedEdge>>(std::move(mst));
  m.emst_dendro.reset();
  m.emst_ok = true;
  TraceArtifact(out, /*built=*/true, "forest-emst");
  return true;
}

bool Router::AnswerSharded(Dataset& ds, const EngineRequest& req,
                           EngineResponse* out) {
  if (!ds.degraded.empty()) {
    out->error = ds.degraded;
    return true;
  }
  if (ds.live_n == 0) {
    out->error = "dataset is empty";
    return true;
  }
  // Same validation order (and strings) as the single-node dynamic
  // backend, so error responses match byte for byte.
  bool emst_family = req.type == QueryType::kEmst ||
                     req.type == QueryType::kSingleLinkage;
  if (req.type == QueryType::kEmst && req.emst_eps >= 0) {
    out->error = "eps EMST is supported on static datasets only";
    return true;
  }
  bool need_dendro = req.type == QueryType::kSingleLinkage;
  if (need_dendro && (req.k < 1 || req.k > ds.live_n)) {
    out->error = "k must be in [1, n]";
    return true;
  }
  if (!emst_family) {
    if (req.min_pts < 1 || static_cast<size_t>(req.min_pts) > ds.live_n) {
      out->error = "min_pts must be in [1, n]";
      return true;
    }
    if (req.type == QueryType::kStableClusters && req.min_cluster_size < 2) {
      out->error = "min_cluster_size must be >= 2";
      return true;
    }
  }
  std::string fail;
  if (!EnsureMirror(ds, out, &fail)) {
    out->error = fail;
    return true;
  }
  Merged& m = *ds.merged;
  if (emst_family) {
    if (!EnsureEmst(ds, out, &fail)) {
      out->error = fail;
      return true;
    }
    if (need_dendro) {
      if (!m.emst_dendro) {
        m.emst_dendro = BuildDendrogramArtifact(ds.live_n, *m.emst_mst);
        TraceArtifact(out, /*built=*/true, "sl-dendro");
      } else {
        TraceArtifact(out, /*built=*/false, "sl-dendro");
      }
    }
    out->mst = m.emst_mst;
    out->mst_weight = m.emst_weight;
    out->point_ids = m.dense_gids;
    if (need_dendro) {
      out->dendrogram = m.emst_dendro;
      out->labels = KClusters(*m.emst_dendro, req.k);
      SummarizeLabels(out->labels, out);
    }
    out->ok = true;
    return true;
  }
  bool need_plot = req.type == QueryType::kReachability;
  ClusteringEntry* e = Hdbscan(ds, req.min_pts, need_plot, out, &fail);
  if (e == nullptr) {
    out->error = fail;
    return true;
  }
  out->core_dist = e->core_dist;
  out->point_ids = m.dense_gids;
  switch (req.type) {
    case QueryType::kHdbscan:
      out->mst = e->mst;
      out->mst_weight = e->mst_weight;
      out->dendrogram = e->dendrogram;
      break;
    case QueryType::kDbscanStarAt:
      out->labels = DbscanStarLabels(*e->dendrogram, *e->core_dist, req.eps);
      SummarizeLabels(out->labels, out);
      break;
    case QueryType::kReachability:
      out->plot = e->plot;
      break;
    case QueryType::kStableClusters: {
      StabilityClusters sc =
          ExtractStableClusters(*e->dendrogram, req.min_cluster_size);
      out->labels = std::move(sc.label);
      out->stability = std::move(sc.stability);
      SummarizeLabels(out->labels, out);
      break;
    }
    default:
      break;
  }
  out->ok = true;
  return true;
}

// ---- recovery -----------------------------------------------------------

void Router::Reseed(size_t worker) {
  // Replay order is creation order: later seed lines may reference
  // datasets earlier ones created.
  std::vector<std::pair<uint64_t, std::pair<std::string,
                                            std::shared_ptr<Dataset>>>> all;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (auto& kv : datasets_) {
      all.push_back({kv.second->order, {kv.first, kv.second}});
    }
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  Upstream& up = pool_.at(worker);
  for (auto& item : all) {
    Dataset& ds = *item.second.second;
    if (ds.mode == Dataset::Mode::kReplicated) {
      // The registry replaces by name, so replay is idempotent whether the
      // worker lost the dataset (process restart) or kept it (transient
      // network failure).
      std::string reply;
      up.SendLine(ds.seed_line, &reply);
    } else {
      std::lock_guard<std::mutex> lock(ds.mu);
      ReseedSharded(worker, ds);
    }
  }
}

void Router::ReseedSharded(size_t worker, Dataset& ds) {
  Upstream& up = pool_.at(worker);
  const std::string& name = ds.name;
  std::vector<uint32_t> expected;
  for (uint32_t g = 0; g < ds.map.next_gid; ++g) {
    if (!ds.map.dead[g] && ds.map.owner[g] == worker) {
      expected.push_back(ds.map.local[g]);
    }
  }
  // Read-only probe: never recreate a sharded dataset with `dyn` while it
  // may still hold points — the registry would atomically replace it.
  std::string payload;
  net::PutU16(&payload, static_cast<uint16_t>(name.size()));
  payload += name;
  net::WireMessage req;
  req.binary = true;
  req.opcode = net::kOpExportPoints;
  req.payload = std::move(payload);
  net::WireMessage reply;
  if (!up.Roundtrip(req, &reply, nullptr)) return;  // next pass retries
  if (reply.binary && reply.opcode == net::kOpPointsReply) {
    net::PayloadReader rd(reply.payload);
    rd.GetU16();  // dim
    uint32_t count = rd.GetU32();
    bool intact = rd.ok() && count == expected.size();
    for (uint32_t l = 0; intact && l < count; ++l) {
      intact = rd.GetU32() == expected[l];
    }
    if (intact) return;  // transient outage; the slice survived
    ds.degraded = "worker " + up.addr() + " slice diverged from the " +
                  "placement map; restore from a snapshot";
    return;
  }
  // The worker lost the dataset (restart). Restore what we can prove.
  if (expected.empty()) {
    std::string ignored;
    up.SendLine("dyn " + name + ' ' + std::to_string(ds.dim), &ignored);
    return;
  }
  if (!ds.dirty_since_save && !ds.last_save_dir.empty()) {
    std::string r1, r2;
    up.SendLine("drop " + name, &r1);
    if (up.SendLine(
            "load " + name + " snap " + WorkerDir(ds.last_save_dir, worker),
            &r2) &&
        r2.rfind("ok load ", 0) == 0) {
      return;
    }
  }
  ds.degraded = "worker " + up.addr() + " lost its slice of " + name +
                " with unsynced mutations; restore from a snapshot";
}

// ---- observability ------------------------------------------------------

std::string Router::RouterCountersText() const {
  return StrPrintf(
      "router_forwards=%llu router_fanouts=%llu router_merges=%llu "
      "upstreams=%zu upstreams_healthy=%zu",
      static_cast<unsigned long long>(
          forwards_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          fanouts_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(merges_.load(std::memory_order_relaxed)),
      pool_.size(), pool_.HealthyCount());
}

std::string Router::ClusterStatsText() const {
  std::string out;
  for (size_t i = 0; i < pool_.size(); ++i) {
    const Upstream& up = pool_.at(i);
    const UpstreamCounters& c = up.counters();
    out += StrPrintf(
        "upstream %s healthy=%d requests=%llu errors=%llu reconnects=%llu "
        "bytes_out=%llu bytes_in=%llu\n",
        up.addr().c_str(), up.healthy() ? 1 : 0,
        static_cast<unsigned long long>(
            c.requests.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            c.errors.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            c.reconnects.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            c.bytes_out.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            c.bytes_in.load(std::memory_order_relaxed)));
  }
  size_t n_datasets;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    n_datasets = datasets_.size();
  }
  out += StrPrintf("ok cluster workers=%zu healthy=%zu datasets=%zu\n",
                   pool_.size(), pool_.HealthyCount(), n_datasets);
  return out;
}

void Router::RegisterMetrics(obs::Observability& obs) {
  obs.metrics.AddSource([this](obs::MetricsBuilder& b) {
    b.Gauge("parhc_router_upstreams", "Configured upstream workers.",
            static_cast<double>(pool_.size()));
    b.Gauge("parhc_router_upstreams_healthy",
            "Upstream workers currently passing health checks.",
            static_cast<double>(pool_.HealthyCount()));
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      b.Gauge("parhc_router_datasets", "Datasets tracked by the router.",
              static_cast<double>(datasets_.size()));
    }
    b.Counter("parhc_router_forwards_total",
              "Requests forwarded verbatim to one upstream.",
              static_cast<double>(forwards_.load(std::memory_order_relaxed)));
    b.Counter("parhc_router_fanouts_total",
              "Requests fanned out to multiple upstreams.",
              static_cast<double>(fanouts_.load(std::memory_order_relaxed)));
    b.Counter("parhc_router_merges_total",
              "Distributed artifact merges executed.",
              static_cast<double>(merges_.load(std::memory_order_relaxed)));
    for (size_t i = 0; i < pool_.size(); ++i) {
      const Upstream& up = pool_.at(i);
      const UpstreamCounters& c = up.counters();
      obs::MetricsBuilder::Labels labels{{"upstream", up.addr()}};
      b.Counter("parhc_router_upstream_requests_total",
                "Round trips attempted per upstream.",
                static_cast<double>(
                    c.requests.load(std::memory_order_relaxed)),
                labels);
      b.Counter("parhc_router_upstream_errors_total",
                "Failed round trips per upstream.",
                static_cast<double>(c.errors.load(std::memory_order_relaxed)),
                labels);
      b.Counter(
          "parhc_router_upstream_reconnects_total",
          "Successful reconnects per upstream.",
          static_cast<double>(c.reconnects.load(std::memory_order_relaxed)),
          labels);
    }
  });
}

// ---- dispatch -----------------------------------------------------------

net::ProtocolResult Router::Handle(const net::WireMessage& msg,
                                   const net::ProtocolOptions& opts) {
  if (msg.binary) return HandleFrame(msg.opcode, msg.payload, opts);
  // Same trace bookkeeping as ProtocolSession::HandleLine: standalone
  // front-ends (tests driving the router in-process) mint ids here; the
  // TCP server installs a context before dispatch, making this a no-op.
  obs::Tracer& tracer = obs::Tracer::Get();
  if (obs::CurrentTraceId() != 0) return DispatchLine(msg.text, opts);
  std::string stripped = msg.text;
  uint64_t propagated = net::ExtractTraceSuffix(&stripped);
  if (propagated == 0 && !tracer.enabled()) return DispatchLine(stripped, opts);
  obs::TraceContext ctx(propagated ? propagated : tracer.MintTraceId());
  size_t b = stripped.find_first_not_of(" \t");
  size_t e = stripped.find_first_of(" \t", b);
  std::string_view verb =
      b == std::string::npos
          ? std::string_view()
          : std::string_view(stripped.data() + b,
                             (e == std::string::npos ? stripped.size() : e) -
                                 b);
  obs::Span span(
      obs::VerbCounters::kRequestSpanNames[obs::VerbCounters::IndexOf(verb)],
      "net");
  return DispatchLine(stripped, opts);
}

net::ProtocolResult Router::DispatchLine(const std::string& line,
                                         const net::ProtocolOptions& opts) {
  net::ProtocolResult res;
  if (line.empty() || line[0] == '#') return res;
  std::istringstream ss(line);
  std::string cmd;
  ss >> cmd;
  try {
    if (cmd == "quit" || cmd == "exit") {
      res.quit = true;
    } else if (cmd == "help") {
      res.out = net::ProtocolHelpText();
    } else if (cmd == "hello") {
      res.out = net::HelloLine("router");
    } else if (cmd == "stats") {
      res.out = "ok stats ";
      if (opts.stats_source) {
        res.out += opts.stats_source->Stats().Format();
        res.out += ' ';
      }
      res.out += RouterCountersText();
      res.out += ' ';
      res.out += executor_.stats().Format();
      res.out += '\n';
    } else if (cmd == "cluster") {
      res.out = ClusterStatsText();
    } else if (cmd == "list") {
      std::shared_lock<std::shared_mutex> lock(mu_);
      for (const auto& kv : datasets_) {
        const Dataset& ds = *kv.second;
        bool sharded = ds.mode == Dataset::Mode::kSharded;
        res.out += StrPrintf("dataset %s dim=%d n=%zu mode=%s\n",
                             kv.first.c_str(), ds.dim,
                             sharded ? ds.live_n : ds.static_n,
                             sharded ? "sharded" : "replicated");
      }
      res.out += "ok list\n";
    } else if (cmd == "gen") {
      std::string name, kind;
      int dim = 0;
      size_t n = 0;
      ss >> name >> dim >> kind >> n;
      std::string reply = Broadcast(line, cmd);
      if (reply.rfind("ok gen ", 0) == 0 && !name.empty()) {
        auto ds = std::make_shared<Dataset>();
        ds->mode = Dataset::Mode::kReplicated;
        ds->name = name;
        ds->dim = dim;
        ds->static_n = n;
        ds->seed_line = line;
        std::unique_lock<std::shared_mutex> lock(mu_);
        ds->order = next_order_++;
        datasets_[name] = ds;
      }
      res.out = reply;
    } else if (cmd == "load") {
      std::string name, fmt, path;
      ss >> name >> fmt >> path;
      if (fmt == "snap" &&
          std::ifstream(path + "/cluster.map").good()) {
        res.out = ShardedLoad(name, path);
        return res;
      }
      std::string reply = Broadcast(line, cmd);
      int dim = 0;
      unsigned long n = 0;
      if (sscanf(reply.c_str(), "ok load %*s dim=%d n=%lu", &dim, &n) == 2 &&
          !name.empty()) {
        auto ds = std::make_shared<Dataset>();
        ds->mode = Dataset::Mode::kReplicated;
        ds->name = name;
        ds->dim = dim;
        ds->static_n = n;
        ds->seed_line = line;
        // A snapshot may hold a batch-dynamic dataset; forwarding a
        // mutation to one replica would silently desynchronize the rest,
        // so such datasets are read-only through the router.
        ds->mutable_on_workers = fmt == "snap";
        std::unique_lock<std::shared_mutex> lock(mu_);
        ds->order = next_order_++;
        datasets_[name] = ds;
      }
      res.out = reply;
    } else if (cmd == "dyn") {
      std::string name;
      int dim = 0;
      ss >> name >> dim;
      if (ss.fail() || name.empty()) {
        res.out = "err dyn: usage: dyn <name> <dim>\n";
        return res;
      }
      if (pool_.HealthyCount() != pool_.size()) {
        res.out = StrPrintf(
            "err dyn %s: need all %zu workers healthy to create a sharded "
            "dataset\n",
            name.c_str(), pool_.size());
        return res;
      }
      std::vector<std::string> replies = FanLine(line);
      for (const std::string& r : replies) {
        if (r.rfind("ok dyn ", 0) != 0) {
          res.out = r.empty()
                        ? StrPrintf("err dyn %s: a worker dropped out during "
                                    "creation\n",
                                    name.c_str())
                        : r;
          return res;
        }
      }
      auto ds = std::make_shared<Dataset>();
      ds->mode = Dataset::Mode::kSharded;
      ds->name = name;
      ds->dim = dim;
      ds->map.workers = static_cast<uint32_t>(pool_.size());
      {
        std::unique_lock<std::shared_mutex> lock(mu_);
        ds->order = next_order_++;
        datasets_[name] = ds;
      }
      res.out = StrPrintf("ok dyn %s dim=%d\n", name.c_str(), dim);
    } else if (cmd == "save") {
      std::string name, dir;
      ss >> name >> dir;
      if (name.empty() || dir.empty()) {
        res.out = "err save: usage: save <name> <dir>\n";
        return res;
      }
      auto ds = FindDataset(name);
      if (ds && ds->mode == Dataset::Mode::kSharded) {
        std::lock_guard<std::mutex> lock(ds->mu);
        res.out = ShardedSave(*ds, name, dir);
      } else {
        // Replicated (or unknown — the worker answers with the exact
        // single-node error): any one replica holds the full dataset.
        res.out = ForwardRead(line, cmd);
      }
    } else if (cmd == "insert") {
      std::string name;
      ss >> name;
      auto ds = FindDataset(name);
      if (!ds) {
        res.out = ForwardRead(line, cmd);
        return res;
      }
      if (ds->mode == Dataset::Mode::kReplicated) {
        if (ds->mutable_on_workers) {
          res.out = StrPrintf(
              "err insert %s: replicated dataset is read-only via the "
              "router\n",
              name.c_str());
        } else {
          // Static replicas refuse mutations with the single-node
          // immutable-dataset error and stay unchanged — forward for the
          // exact bytes.
          res.out = ForwardRead(line, cmd);
        }
        return res;
      }
      int dim = ds->dim;
      std::vector<double> vals;
      double v;
      while (ss >> v) vals.push_back(v);
      if (!ss.eof()) {
        res.out = StrPrintf("err insert %s: malformed coordinate\n",
                            name.c_str());
        return res;
      }
      if (vals.empty() || vals.size() % static_cast<size_t>(dim) != 0) {
        res.out = StrPrintf(
            "err insert %s: need a multiple of %d coordinates\n", name.c_str(),
            dim);
        return res;
      }
      std::vector<std::vector<double>> rows(vals.size() / dim);
      for (size_t i = 0; i < rows.size(); ++i) {
        rows[i].assign(vals.begin() + i * dim, vals.begin() + (i + 1) * dim);
      }
      std::lock_guard<std::mutex> lock(ds->mu);
      res.out = ShardedInsert(*ds, name, rows, "insert");
    } else if (cmd == "geninsert") {
      std::string name, kind;
      int dim = 0;
      size_t n = 0;
      uint64_t seed = 1;
      ss >> name >> dim >> kind >> n;
      if (!(ss >> seed)) seed = 1;
      if (name.empty() || n == 0 || !DatasetRegistry::SupportedDim(dim)) {
        res.out = "err geninsert: usage/unsupported dim\n";
        return res;
      }
      auto ds = FindDataset(name);
      if (ds && ds->mode == Dataset::Mode::kReplicated) {
        res.out = ds->mutable_on_workers
                      ? StrPrintf("err geninsert %s: replicated dataset is "
                                  "read-only via the router\n",
                                  name.c_str())
                      : ForwardRead(line, cmd);
        return res;
      }
      if (ds && ds->dim != dim) {
        res.out = StrPrintf("err geninsert %s: dim %d != dataset dim %d\n",
                            name.c_str(), dim, ds->dim);
        return res;
      }
      // The generators are seed-deterministic, so running them on the
      // router yields bit-identical rows to a single-node `geninsert`;
      // shipping them as binary frames preserves every double exactly.
      std::vector<std::vector<double>> rows = executor_.RunBuild(
          [&] { return net::GenerateRows(dim, kind, n, seed); });
      if (rows.empty()) {
        res.out = StrPrintf("err geninsert: unknown kind %s\n", kind.c_str());
        return res;
      }
      if (!ds) {
        net::ProtocolResult create =
            DispatchLine("dyn " + name + ' ' + std::to_string(dim), opts);
        if (create.out.rfind("ok dyn ", 0) != 0) {
          res.out = create.out;
          return res;
        }
        ds = FindDataset(name);
        if (!ds) {
          res.out = StrPrintf("err geninsert %s: creation raced with a "
                              "drop\n",
                              name.c_str());
          return res;
        }
      }
      std::lock_guard<std::mutex> lock(ds->mu);
      res.out = ShardedInsert(*ds, name, rows, "geninsert");
    } else if (cmd == "delete") {
      std::string name;
      ss >> name;
      std::vector<uint32_t> gids;
      uint32_t gid;
      while (ss >> gid) gids.push_back(gid);
      if (!ss.eof()) {
        res.out = StrPrintf("err delete %s: malformed gid\n", name.c_str());
        return res;
      }
      if (name.empty() || gids.empty()) {
        res.out = "err delete: usage: delete <name> <gid> [gid ...]\n";
        return res;
      }
      auto ds = FindDataset(name);
      if (!ds) {
        res.out = ForwardRead(line, cmd);
      } else if (ds->mode == Dataset::Mode::kReplicated) {
        res.out = ds->mutable_on_workers
                      ? StrPrintf("err delete %s: replicated dataset is "
                                  "read-only via the router\n",
                                  name.c_str())
                      : ForwardRead(line, cmd);
      } else {
        std::lock_guard<std::mutex> lock(ds->mu);
        res.out = ShardedDelete(*ds, name, gids);
      }
    } else if (cmd == "drop") {
      std::string name;
      ss >> name;
      std::string reply = Broadcast(line, cmd);
      {
        std::unique_lock<std::shared_mutex> lock(mu_);
        datasets_.erase(name);
      }
      res.out = reply;
    } else if (cmd == "emst" || cmd == "slink" || cmd == "hdbscan" ||
               cmd == "dbscan" || cmd == "reach" || cmd == "clusters") {
      EngineRequest req;
      ss >> req.dataset;
      if (cmd == "emst") {
        req.type = QueryType::kEmst;
        std::string sub;
        if (ss >> sub) {
          if (sub != "eps" || !(ss >> req.emst_eps) || req.emst_eps < 0) {
            res.out = "err emst: usage: emst <name> [eps <e>]\n";
            return res;
          }
        } else {
          ss.clear();
        }
      } else if (cmd == "slink") {
        req.type = QueryType::kSingleLinkage;
        ss >> req.k;
      } else if (cmd == "hdbscan") {
        req.type = QueryType::kHdbscan;
        ss >> req.min_pts;
      } else if (cmd == "dbscan") {
        req.type = QueryType::kDbscanStarAt;
        ss >> req.min_pts >> req.eps;
      } else if (cmd == "reach") {
        req.type = QueryType::kReachability;
        ss >> req.min_pts;
      } else {
        req.type = QueryType::kStableClusters;
        ss >> req.min_pts >> req.min_cluster_size;
      }
      if (ss.fail() || req.dataset.empty()) {
        res.out = StrPrintf(
            "err %s: missing or malformed arguments (try help)\n",
            cmd.c_str());
        return res;
      }
      auto ds = FindDataset(req.dataset);
      if (ds && ds->mode == Dataset::Mode::kSharded) {
        merges_.fetch_add(1, std::memory_order_relaxed);
        uint64_t t0 = obs::NowNs();
        EngineResponse r;
        {
          std::lock_guard<std::mutex> lock(ds->mu);
          // The whole merged pipeline (kd-tree builds, cross traversals,
          // Kruskal, dendrograms) issues parallel scheduler work, so it
          // runs inside a worker group like any engine build.
          executor_.RunBuild([&] {
            AnswerSharded(*ds, req, &r);
            return 0;
          });
        }
        r.seconds = static_cast<double>(obs::NowNs() - t0) * 1e-9;
        res.out = net::FormatQueryResponse(cmd, req.dataset, r,
                                           opts.show_timing);
      } else {
        // Replicated (round-robin across replicas) or unknown (the worker
        // answers with the exact single-node unknown-dataset error).
        res.out = ForwardRead(line, cmd);
      }
    } else if (cmd == "metrics") {
      std::string mode;
      ss >> mode;
      if (opts.obs == nullptr) {
        res.out = "err metrics: no metrics registry in this front-end\n";
      } else if (mode == "json") {
        res.out = opts.obs->metrics.Json();
        res.out += '\n';
      } else if (!mode.empty()) {
        res.out = "err metrics: usage: metrics [json]\n";
      } else {
        res.out = opts.obs->metrics.PrometheusText();
        res.out += "ok metrics\n";
      }
    } else if (cmd == "trace") {
      std::string sub;
      ss >> sub;
      obs::Tracer& tracer = obs::Tracer::Get();
      if (sub == "on") {
        tracer.Enable();
        res.out = "ok trace on\n";
      } else if (sub == "off") {
        tracer.Disable();
        res.out = "ok trace off\n";
      } else if (sub == "status") {
        res.out = StrPrintf(
            "ok trace status enabled=%d spans=%llu dropped=%llu\n",
            tracer.enabled() ? 1 : 0,
            static_cast<unsigned long long>(tracer.spans_recorded()),
            static_cast<unsigned long long>(tracer.spans_dropped()));
      } else if (sub == "clear") {
        tracer.Clear();
        res.out = "ok trace clear\n";
      } else if (sub == "dump") {
        std::string path;
        ss >> path;
        if (path.empty()) {
          res.out = "err trace: usage: trace dump <file>\n";
        } else {
          size_t spans = 0;
          if (tracer.DumpJsonToFile(path, &spans)) {
            res.out = StrPrintf("ok trace dump %s spans=%zu\n", path.c_str(),
                                spans);
          } else {
            res.out = StrPrintf("err trace dump %s: cannot write\n",
                                path.c_str());
          }
        }
      } else {
        res.out = "err trace: usage: trace on|off|status|clear|dump <file>\n";
      }
    } else if (cmd == "slowlog") {
      std::string sub;
      ss >> sub;
      if (opts.obs == nullptr) {
        res.out = "err slowlog: no slow-query log in this front-end\n";
      } else if (sub == "clear") {
        opts.obs->slowlog.Clear();
        res.out = "ok slowlog clear\n";
      } else if (sub == "threshold") {
        uint64_t us = 0;
        if (!(ss >> us)) {
          res.out = "err slowlog: usage: slowlog threshold <us>\n";
        } else {
          opts.obs->slowlog.set_threshold_us(us);
          res.out = StrPrintf("ok slowlog threshold_us=%llu\n",
                              static_cast<unsigned long long>(us));
        }
      } else if (!sub.empty()) {
        res.out = "err slowlog: usage: slowlog [clear|threshold <us>]\n";
      } else {
        std::vector<obs::SlowLogRecord> entries = opts.obs->slowlog.Entries();
        for (const obs::SlowLogRecord& e : entries) {
          res.out += e.Format();
          res.out += '\n';
        }
        res.out += StrPrintf(
            "ok slowlog n=%zu threshold_us=%llu\n", entries.size(),
            static_cast<unsigned long long>(
                opts.obs->slowlog.threshold_us()));
      }
    } else {
      res.out = StrPrintf("err unknown command: %s (try help)\n", cmd.c_str());
    }
  } catch (const std::exception& e) {
    res.out = StrPrintf("err %s: %s\n", cmd.c_str(), e.what());
  }
  return res;
}

net::ProtocolResult Router::HandleFrame(uint8_t opcode,
                                        const std::string& payload,
                                        const net::ProtocolOptions& opts) {
  net::ProtocolResult res;
  try {
    net::PayloadReader rd(payload);
    net::WireMessage fwd;
    fwd.binary = true;
    fwd.opcode = opcode;
    fwd.payload = payload;
    if (opcode == net::kOpInsertPoints) {
      std::string name = rd.GetBytes(rd.GetU16());
      int dim = static_cast<int>(rd.GetU16());
      uint32_t count = rd.GetU32();
      if (!rd.ok() || name.empty() || dim <= 0 || count == 0 ||
          rd.remaining() !=
              static_cast<size_t>(count) * dim * sizeof(double)) {
        res.out = "err insert: malformed frame payload\n";
        return res;
      }
      auto ds = FindDataset(name);
      if (!ds) {
        res.out = ForwardFrame(fwd, "insert");
        return res;
      }
      if (ds->mode == Dataset::Mode::kReplicated) {
        res.out = ds->mutable_on_workers
                      ? StrPrintf("err insert %s: replicated dataset is "
                                  "read-only via the router\n",
                                  name.c_str())
                      : ForwardFrame(fwd, "insert");
        return res;
      }
      if (ds->dim != dim) {
        res.out = StrPrintf("err insert %s: frame dim %d != dataset dim %d\n",
                            name.c_str(), dim, ds->dim);
        return res;
      }
      std::vector<std::vector<double>> rows(count, std::vector<double>(dim));
      for (auto& row : rows) {
        for (double& v : row) v = rd.GetF64();
      }
      std::lock_guard<std::mutex> lock(ds->mu);
      res.out = ShardedInsert(*ds, name, rows, "insert");
    } else if (opcode == net::kOpGetLabels) {
      std::string name = rd.GetBytes(rd.GetU16());
      uint8_t kind = rd.GetU8();
      EngineRequest req;
      req.dataset = name;
      req.min_pts = static_cast<int>(rd.GetU32());
      if (kind == 0) {
        req.type = QueryType::kDbscanStarAt;
        req.eps = rd.GetF64();
      } else {
        req.type = QueryType::kStableClusters;
        req.min_cluster_size = static_cast<size_t>(rd.GetU64());
      }
      if (!rd.ok() || name.empty() || kind > 1 || rd.remaining() != 0) {
        res.out = "err labels: malformed frame payload\n";
        return res;
      }
      auto ds = FindDataset(name);
      if (!ds || ds->mode == Dataset::Mode::kReplicated) {
        res.out = ForwardFrame(fwd, "labels");
        return res;
      }
      merges_.fetch_add(1, std::memory_order_relaxed);
      EngineResponse r;
      {
        std::lock_guard<std::mutex> lock(ds->mu);
        executor_.RunBuild([&] {
          AnswerSharded(*ds, req, &r);
          return 0;
        });
      }
      if (!r.ok) {
        res.out = StrPrintf("err labels %s: %s\n", name.c_str(),
                            r.error.c_str());
        return res;
      }
      std::string reply;
      reply.reserve(4 + r.labels.size() * 4);
      net::PutU32(&reply, static_cast<uint32_t>(r.labels.size()));
      for (int32_t l : r.labels) {
        net::PutU32(&reply, static_cast<uint32_t>(l));
      }
      res.out = net::EncodeFrame(net::kOpLabelsReply, reply);
    } else if (opcode == net::kOpKnnQuery) {
      std::string name = rd.GetBytes(rd.GetU16());
      uint32_t k = rd.GetU32();
      int qdim = static_cast<int>(rd.GetU16());
      uint32_t count = rd.GetU32();
      bool well_formed =
          rd.ok() && !name.empty() &&
          rd.remaining() ==
              static_cast<size_t>(count) * qdim * sizeof(double);
      auto ds = well_formed ? FindDataset(name) : nullptr;
      if (!ds || ds->mode == Dataset::Mode::kReplicated) {
        res.out = ForwardFrame(fwd, "knn");
        return res;
      }
      std::lock_guard<std::mutex> lock(ds->mu);
      if (!ds->degraded.empty()) {
        res.out = StrPrintf("err knn %s: %s\n", name.c_str(),
                            ds->degraded.c_str());
        return res;
      }
      if (ds->live_n == 0) {
        // Every worker holds the (empty) dataset; any one answers exactly
        // what a single node would.
        res.out = ForwardFrame(fwd, "knn");
        return res;
      }
      // The client payload is already in worker form, so the identical
      // frame fans out to every worker holding a live slice; each answers
      // with its k nearest per query point (rows sorted, +inf padded) and
      // the k-way merge of those rows is exactly the k nearest over the
      // union — no mirror needed for client-facing kNN.
      std::vector<uint32_t> live_per(pool_.size(), 0);
      for (uint32_t g = 0; g < ds->map.next_gid; ++g) {
        if (!ds->map.dead[g]) ++live_per[ds->map.owner[g]];
      }
      for (size_t w = 0; w < pool_.size(); ++w) {
        if (live_per[w] != 0 && !pool_.at(w).healthy()) {
          res.out = StrPrintf("err knn %s: worker %s is unhealthy\n",
                              name.c_str(), pool_.at(w).addr().c_str());
          return res;
        }
      }
      fanouts_.fetch_add(1, std::memory_order_relaxed);
      merges_.fetch_add(1, std::memory_order_relaxed);
      std::vector<std::vector<double>> worker_rows;
      std::mutex rows_mu;
      std::vector<std::string> errs(pool_.size());
      pool_.ForEach([&](size_t w, Upstream& up) {
        if (live_per[w] == 0) return;
        net::WireMessage reply;
        if (!up.Roundtrip(fwd, &reply, nullptr)) {
          errs[w] =
              StrPrintf("err knn %s: worker %s failed during kNN fan-out\n",
                        name.c_str(), up.addr().c_str());
          return;
        }
        if (!reply.binary || reply.opcode != net::kOpKnnReply) {
          // Worker-side text errors (k out of range, dim mismatch) pass
          // through verbatim so the router matches single-node bytes.
          errs[w] = reply.binary ? StrPrintf("err knn %s: unexpected frame "
                                             "reply\n",
                                             name.c_str())
                                 : reply.text;
          return;
        }
        net::PayloadReader rr(reply.payload);
        uint32_t rcount = rr.GetU32();
        uint32_t rk = rr.GetU32();
        if (!rr.ok() || rcount != count || rk != k ||
            rr.remaining() !=
                static_cast<size_t>(count) * k * sizeof(double)) {
          errs[w] =
              StrPrintf("err knn %s: worker %s sent a malformed kNN reply\n",
                        name.c_str(), up.addr().c_str());
          return;
        }
        std::vector<double> rows(static_cast<size_t>(count) * k);
        for (double& v : rows) v = rr.GetF64();
        std::lock_guard<std::mutex> rl(rows_mu);
        worker_rows.push_back(std::move(rows));
      });
      for (const std::string& e : errs) {
        if (!e.empty()) {
          res.out = e;
          return res;
        }
      }
      std::vector<double> merged_rows;
      executor_.RunBuild([&] {
        merged_rows = MergeKnnRows(count, k, worker_rows);
        return 0;
      });
      std::string reply;
      reply.reserve(8 + merged_rows.size() * sizeof(double));
      net::PutU32(&reply, count);
      net::PutU32(&reply, k);
      for (double v : merged_rows) net::PutF64(&reply, v);
      res.out = net::EncodeFrame(net::kOpKnnReply, reply);
    } else if (opcode == net::kOpExportPoints || opcode == net::kOpExportMst ||
               opcode == net::kOpShardMrMst) {
      std::string name = rd.GetBytes(rd.GetU16());
      const char* what = opcode == net::kOpShardMrMst ? "mrmst" : "export";
      auto ds = rd.ok() && !name.empty() ? FindDataset(name) : nullptr;
      if (ds && ds->mode == Dataset::Mode::kSharded) {
        // The export surface exists for router→worker fan-out; a sharded
        // dataset has no single worker that could answer it.
        res.out = StrPrintf(
            "err %s %s: not supported on sharded datasets via the router\n",
            what, name.c_str());
      } else {
        res.out = ForwardFrame(fwd, what);
      }
    } else {
      res.out = StrPrintf("err frame: unknown opcode 0x%02x\n", opcode);
    }
  } catch (const std::exception& e) {
    res.out = StrPrintf("err frame: %s\n", e.what());
  }
  (void)opts;
  return res;
}

net::ProtocolResult RouterSession::Handle(const net::WireMessage& msg) {
  return router_.Handle(msg, opts_);
}

}  // namespace cluster
}  // namespace parhc
