// Distributed merge kernels for the router's sharded query pipeline.
//
// The router treats each worker's slice of a sharded dataset exactly like
// the batch-dynamic backend (src/dynamic/) treats one of its LSM shards:
// by the distance-decomposition rule, the MST of the union is contained in
// the union of the per-slice MSTs (computed worker-side by the
// kOpExportMst / kOpShardMrMst frame verbs) plus one closest-pair edge per
// well-separated cross pair (s = 2) *between* slices — computed here over
// router-built kd-trees with the same CrossBccp / CrossBccpStar engines
// and the same global-id tie-breaks, so the Kruskal run over the merged
// candidates reproduces the single-node MST bit for bit. The
// mutual-reachability variant stays exact because the router annotates
// every slice tree with *globally* merged core distances before the
// cross traversal (see MergeKnnRows: the k smallest of a union is the
// merge of the parts' k smallest).
//
// All entry points issue parallel scheduler work — run them inside a
// worker group (the router wraps them in its BuildExecutor).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "engine/export.h"
#include "engine/registry.h"  // PARHC_FOR_EACH_DIM
#include "graph/edge.h"
#include "parallel/primitives.h"
#include "parallel/scheduler.h"
#include "spatial/cross_traverse.h"

namespace parhc {
namespace cluster {

/// One worker's slice of a sharded dataset, in the worker's ascending-gid
/// order. `dense[l]` is the dense union index (ascending global gid over
/// live points) of the worker's l-th live point.
struct WorkerSlice {
  std::vector<uint32_t> dense;
  std::vector<double> coords;  ///< flattened row-major, same order
};

/// Type-erased per-dimension merge state: kd-trees over each worker's
/// slice, reused across the cross traversals of one merged build.
class MergerBase {
 public:
  virtual ~MergerBase() = default;

  /// (Re)builds the per-slice trees. Slices may be empty.
  virtual void SetWorkers(const std::vector<WorkerSlice>& slices) = 0;

  /// Cross-slice Euclidean BCCP candidate edges, dense-index endpoints.
  virtual std::vector<WeightedEdge> CrossEmstEdges() = 0;

  /// Cross-slice BCCP* candidate edges under globally merged core
  /// distances (indexed by dense union index), dense-index endpoints.
  virtual std::vector<WeightedEdge> CrossMrEdges(
      const std::vector<double>& core_dense) = 0;
};

template <int D>
class Merger : public MergerBase {
 public:
  void SetWorkers(const std::vector<WorkerSlice>& slices) override {
    trees_.clear();
    dense_.clear();
    for (const WorkerSlice& s : slices) {
      dense_.push_back(s.dense);
      if (s.dense.empty()) {
        trees_.emplace_back(nullptr);
      } else {
        std::vector<Point<D>> pts =
            engine_export::UnflattenRows<D>(s.coords, s.dense.size());
        trees_.emplace_back(new KdTree<D>(pts, /*leaf_size=*/1));
      }
    }
  }

  std::vector<WeightedEdge> CrossEmstEdges() override {
    return CrossPairs([](KdTree<D>& ta, KdTree<D>& tb, uint32_t a, uint32_t b,
                         const auto& ida, const auto& idb) {
      return CrossBccp(ta, tb, a, b, ida, idb);
    });
  }

  std::vector<WeightedEdge> CrossMrEdges(
      const std::vector<double>& core_dense) override {
    for (size_t w = 0; w < trees_.size(); ++w) {
      if (trees_[w] == nullptr) continue;
      // AnnotateCoreDistances indexes by the tree's original point order,
      // which is the slice's ascending-gid order.
      std::vector<double> core_local(dense_[w].size());
      for (size_t l = 0; l < dense_[w].size(); ++l) {
        core_local[l] = core_dense[dense_[w][l]];
      }
      trees_[w]->AnnotateCoreDistances(core_local);
    }
    return CrossPairs([](KdTree<D>& ta, KdTree<D>& tb, uint32_t a, uint32_t b,
                         const auto& ida, const auto& idb) {
      return CrossBccpStar(ta, tb, a, b, ida, idb);
    });
  }

 private:
  /// One closest-pair edge per well-separated cross pair (s = 2) between
  /// every pair of non-empty slices — the same decomposition
  /// DynamicArtifacts::CrossCandidates runs shard-pairwise.
  template <typename BccpFn>
  std::vector<WeightedEdge> CrossPairs(const BccpFn& bccp) {
    std::vector<std::vector<WeightedEdge>> local(NumWorkers());
    for (size_t i = 0; i < trees_.size(); ++i) {
      if (trees_[i] == nullptr) continue;
      for (size_t j = i + 1; j < trees_.size(); ++j) {
        if (trees_[j] == nullptr) continue;
        KdTree<D>& ta = *trees_[i];
        KdTree<D>& tb = *trees_[j];
        const std::vector<uint32_t>& da = dense_[i];
        const std::vector<uint32_t>& db = dense_[j];
        auto ida = [&](uint32_t t) { return da[t]; };
        auto idb = [&](uint32_t t) { return db[t]; };
        CrossDualTraverse(
            ta, tb, [](uint32_t, uint32_t) { return false; },
            [&](uint32_t a, uint32_t b) {
              return WellSeparated(ta.NodeBox(a), tb.NodeBox(b), 2.0);
            },
            [&](uint32_t a, uint32_t b, bool /*separated*/) {
              ClosestPair cp = bccp(ta, tb, a, b, ida, idb);
              local[Scheduler::Get().MyId()].push_back({cp.u, cp.v, cp.dist});
            });
      }
    }
    return Flatten(local);
  }

  std::vector<std::unique_ptr<KdTree<D>>> trees_;
  std::vector<std::vector<uint32_t>> dense_;
};

inline std::unique_ptr<MergerBase> MakeMerger(int dim) {
  switch (dim) {
#define PARHC_CLUSTER_MERGER_CASE(D) \
  case D:                            \
    return std::unique_ptr<MergerBase>(new Merger<D>());
    PARHC_FOR_EACH_DIM(PARHC_CLUSTER_MERGER_CASE)
#undef PARHC_CLUSTER_MERGER_CASE
    default:
      return nullptr;
  }
}

/// Merges per-worker kNN rows: each worker_rows[w] holds count*k sorted
/// squared distances of the same `count` queries against that worker's
/// slice (+inf-padded; see engine_export::KnnRows). Row i of the result is
/// the k smallest of the union — exactly the row a single-node kNN over
/// the union computes, because every worker already contributed its k
/// smallest. Issues parallel work.
inline std::vector<double> MergeKnnRows(
    size_t count, size_t k,
    const std::vector<std::vector<double>>& worker_rows) {
  size_t w_count = worker_rows.size();
  std::vector<double> out(count * k,
                          std::numeric_limits<double>::infinity());
  ParallelFor(0, count, [&](size_t i) {
    std::vector<size_t> idx(w_count, 0);
    for (size_t t = 0; t < k; ++t) {
      size_t best_w = w_count;
      double best = std::numeric_limits<double>::infinity();
      for (size_t w = 0; w < w_count; ++w) {
        if (idx[w] >= k) continue;
        double d = worker_rows[w][i * k + idx[w]];
        if (d < best) {
          best = d;
          best_w = w;
        }
      }
      if (best_w == w_count) break;  // all remaining are +inf
      out[i * k + t] = best;
      ++idx[best_w];
    }
  });
  return out;
}

}  // namespace cluster
}  // namespace parhc
