// Router-side client connections to parhc_netserver workers.
//
// One Upstream wraps one TCP connection speaking the serving protocol
// (net/protocol.h text lines + net/frame.h binary frames) in strict
// request/reply lockstep: a per-upstream mutex serializes round trips, so
// any router thread may use any upstream. Connecting performs the `hello`
// handshake and refuses workers whose protocol version differs from
// net::kProtocolVersion or whose role is not "engine".
//
// Replies are framed with the same FrameSplitter the servers use: one
// round trip reads exactly one wire message (a text line or one binary
// frame). The router therefore only forwards verbs with single-line text
// replies — multi-line verbs (list, metrics, slowlog, help) are answered
// by the router itself.
//
// Failure semantics: any I/O error (connect refused, send/recv timeout,
// peer EOF, framing violation) marks the upstream unhealthy and closes the
// socket. UpstreamPool's health pass retries unhealthy upstreams with
// doubling backoff and reports recoveries so the router can re-seed
// datasets (see router.h).
//
// Tracing: every round trip runs under a "hop:<host>:<port>" span, and
// text requests carry the current trace id as a " trace=<id>" suffix, so a
// worker's request spans join the client's trace across the hop.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/frame.h"

namespace parhc {
namespace cluster {

/// Per-upstream monotonic counters (surfaced by the `cluster` verb and the
/// router's metrics source).
struct UpstreamCounters {
  std::atomic<uint64_t> requests{0};    ///< round trips attempted
  std::atomic<uint64_t> errors{0};      ///< round trips failed (I/O)
  std::atomic<uint64_t> reconnects{0};  ///< successful re-connects
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> bytes_in{0};
};

class Upstream {
 public:
  /// `addr` is "host:port" with a numeric IPv4 host (the router's upstream
  /// flags and tests use loopback addresses).
  Upstream(std::string addr, int timeout_ms);
  ~Upstream();

  Upstream(const Upstream&) = delete;
  Upstream& operator=(const Upstream&) = delete;

  /// Connects and runs the `hello` handshake. Returns "" on success, else
  /// a diagnostic; the upstream is healthy afterwards.
  std::string Connect();
  void Close();

  bool healthy() const { return healthy_.load(std::memory_order_acquire); }
  const std::string& addr() const { return addr_; }
  /// Dimension caps the worker reported in its hello reply.
  const std::vector<int>& dims() const { return dims_; }

  /// One request/reply round trip. Appends " trace=<id>" to text requests
  /// when the calling thread carries a trace id. On success fills *reply
  /// (and *raw_reply with the exact bytes to forward — the text line with
  /// its '\n', or the re-encoded frame) and returns true. On I/O failure
  /// returns false and marks the upstream unhealthy.
  bool Roundtrip(const net::WireMessage& req, net::WireMessage* reply,
                 std::string* raw_reply);

  /// Text-line convenience wrapper; *reply_line gets the reply without its
  /// terminator.
  bool SendLine(const std::string& line, std::string* reply_line);

  UpstreamCounters& counters() { return counters_; }
  const UpstreamCounters& counters() const { return counters_; }

  /// Liveness probe for the health pass: a `hello` round trip, except that
  /// a busy upstream (round-trip mutex held by a request in flight) counts
  /// as alive without waiting. Returns false only on a failed probe.
  bool TryPing();

 private:
  bool RoundtripLocked(const net::WireMessage& req, net::WireMessage* reply,
                       std::string* raw_reply);
  bool WriteAll(const std::string& bytes);
  bool ReadReply(net::WireMessage* msg);
  void MarkDown();

  std::string addr_;
  std::string host_;
  uint16_t port_ = 0;
  int timeout_ms_;
  const char* hop_span_name_;  ///< interned "hop:<addr>", process-lifetime

  std::mutex mu_;  ///< serializes round trips (and connect/close)
  int fd_ = -1;
  std::unique_ptr<net::FrameSplitter> splitter_;
  std::atomic<bool> healthy_{false};
  std::vector<int> dims_;
  UpstreamCounters counters_;
};

/// The router's set of worker connections: round-robin read selection,
/// bounded-concurrency fan-out, and the health/backoff loop body.
class UpstreamPool {
 public:
  /// `fanout` bounds concurrent upstream round trips per ForEach (0 = all
  /// upstreams at once).
  UpstreamPool(std::vector<std::string> addrs, int timeout_ms, size_t fanout);

  /// Connects every upstream; returns "" or the first failure (startup is
  /// strict — a router must begin with its full worker set).
  std::string ConnectAll();

  size_t size() const { return ups_.size(); }
  Upstream& at(size_t i) { return *ups_[i]; }
  const Upstream& at(size_t i) const { return *ups_[i]; }
  size_t HealthyCount() const;

  /// Next healthy upstream in round-robin order (replica read fan-out);
  /// null when none are healthy.
  Upstream* NextHealthy();

  /// Runs fn(worker_index, upstream) once per upstream, at most `fanout`
  /// concurrently (std::thread fan-out: upstream round trips block on
  /// socket I/O, so scheduler workers are the wrong vehicle). The calling
  /// thread's trace id is propagated into the fan-out threads. Blocks
  /// until every call returns.
  void ForEach(const std::function<void(size_t, Upstream&)>& fn);

  /// One health pass: pings healthy upstreams (skipping any that are busy
  /// serving — a held round-trip mutex proves liveness) and re-connects
  /// unhealthy ones whose backoff expired (100 ms doubling to 3.2 s).
  /// Returns the indices that just recovered so the router can re-seed
  /// them.
  std::vector<size_t> HealthPass(uint64_t now_ms);

 private:
  std::vector<std::unique_ptr<Upstream>> ups_;
  std::vector<uint64_t> next_retry_ms_;
  std::vector<uint64_t> backoff_ms_;
  std::atomic<size_t> rr_{0};
  size_t fanout_;
};

}  // namespace cluster
}  // namespace parhc
