// Deterministic shard placement for the router tier (src/cluster/).
//
// The router assigns every ingested point a *global* id (its own contiguous
// watermark, matching the gid sequence a single-node dynamic dataset would
// hand out) and places it on worker SplitMix64(gid) % W. Placement is pure —
// any router restarted over the same worker list re-derives the same owner
// for every gid — but the per-worker *local* gid a worker assigned at insert
// time is worker state, so the full map is persisted alongside dataset
// snapshots as a kClusterMap snapshot (store/format.h sections
// kClusterOwner / kClusterLocal / kClusterDead).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "store/snapshot.h"
#include "util/check.h"

namespace parhc {
namespace cluster {

/// SplitMix64 finalizer: the standard 64-bit mix (Steele et al.); full
/// avalanche, so consecutive gids spread uniformly across workers.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline size_t OwnerOfGid(uint32_t gid, size_t workers) {
  PARHC_CHECK(workers > 0);
  return static_cast<size_t>(SplitMix64(gid) % workers);
}

/// Router-side placement state for one sharded dataset. Indexed by global
/// id; `next_gid` is the watermark (gids in [0, next_gid) are allocated,
/// dead ones tombstoned).
struct ShardMap {
  uint32_t next_gid = 0;
  uint32_t workers = 0;
  std::vector<uint32_t> owner;  ///< gid -> owning worker index
  std::vector<uint32_t> local;  ///< gid -> worker-local gid
  std::vector<uint8_t> dead;    ///< gid -> tombstone

  size_t LiveCount() const {
    size_t n = 0;
    for (uint32_t g = 0; g < next_gid; ++g) n += dead[g] ? 0 : 1;
    return n;
  }

  /// Allocates `count` fresh gids on the watermark and places each one.
  /// Returns the first allocated gid.
  uint32_t Allocate(size_t count) {
    uint32_t first = next_gid;
    owner.resize(next_gid + count);
    local.resize(next_gid + count);
    dead.resize(next_gid + count, 0);
    for (size_t i = 0; i < count; ++i) {
      owner[first + i] =
          static_cast<uint32_t>(OwnerOfGid(first + static_cast<uint32_t>(i),
                                           workers));
    }
    next_gid += static_cast<uint32_t>(count);
    return first;
  }
};

/// Persists `map` as one kClusterMap snapshot (atomic temp + rename).
/// Raises SnapshotIoError on filesystem failure.
inline void SaveShardMap(const std::string& path, uint32_t dim,
                         const ShardMap& map) {
  SnapshotWriter w(SnapshotKind::kClusterMap, dim, map.next_gid, map.workers);
  w.AddSection(SectionId::kClusterOwner, map.owner.data(), map.owner.size());
  w.AddSection(SectionId::kClusterLocal, map.local.data(), map.local.size());
  w.AddSection(SectionId::kClusterDead, map.dead.data(), map.dead.size());
  w.Write(path);
}

/// Loads a kClusterMap snapshot. Raises the typed store errors on a
/// missing / corrupt / wrong-kind file. `*dim` receives the dataset
/// dimensionality recorded at save time.
inline ShardMap LoadShardMap(const std::string& path, uint32_t* dim) {
  SnapshotFile f(path);
  f.ExpectKind(SnapshotKind::kClusterMap);
  ShardMap map;
  map.next_gid = static_cast<uint32_t>(f.count());
  map.workers = static_cast<uint32_t>(f.param());
  auto owner = f.section<uint32_t>(SectionId::kClusterOwner);
  auto local = f.section<uint32_t>(SectionId::kClusterLocal);
  auto dead = f.section<uint8_t>(SectionId::kClusterDead);
  map.owner.assign(owner.begin(), owner.end());
  map.local.assign(local.begin(), local.end());
  map.dead.assign(dead.begin(), dead.end());
  PARHC_CHECK_MSG(map.owner.size() == map.next_gid &&
                      map.local.size() == map.next_gid &&
                      map.dead.size() == map.next_gid,
                  "cluster map sections do not match gid watermark");
  if (dim != nullptr) *dim = f.dim();
  return map;
}

}  // namespace cluster
}  // namespace parhc
