// Slow-query log and build profiler: a bounded in-memory ring of
// structured one-line records, readable via the `slowlog` protocol verb.
//
// Two record kinds share the ring:
//  * kQuery — a request whose total latency (queue wait + execution)
//    crossed the configurable threshold (`slowlog threshold <us>`, or
//    NetServerOptions::slow_query_us). Recorded by the scheduler worker
//    (and by the server's inline fast path, where cache_hit is true).
//  * kBuild — every cold artifact build the engine runs, regardless of
//    threshold (the build profiler half): dataset, the artifact keys
//    built, executor admission wait, build time, and the worker-group
//    size the executor granted.
//
// The ring is mutex-protected: records are rare by construction (slow
// requests and cold builds), so a lock here never touches the hot path —
// the *decision* to record is a relaxed threshold load.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace parhc {
namespace obs {

struct SlowLogRecord {
  enum class Kind { kQuery, kBuild };
  Kind kind = Kind::kQuery;
  std::string verb;      ///< request verb ("hdbscan", "insert", ...)
  std::string dataset;   ///< dataset name ("" when unknown, e.g. frames)
  std::string artifact;  ///< built artifact keys, comma-joined (builds only)
  uint64_t queue_us = 0;  ///< scheduler queue / executor admission wait
  uint64_t build_us = 0;  ///< execution (build) time
  uint64_t total_us = 0;  ///< queue_us + build_us
  int group = 0;          ///< executor worker-group size (builds only)
  bool cache_hit = false;
  uint64_t trace_id = 0;  ///< 0 when tracing was off

  /// The one-line rendering the `slowlog` verb prints.
  std::string Format() const {
    std::string s = "slow kind=";
    s += kind == Kind::kQuery ? "query" : "build";
    s += " verb=" + (verb.empty() ? "-" : verb);
    s += " dataset=" + (dataset.empty() ? "-" : dataset);
    s += " artifact=" + (artifact.empty() ? "-" : artifact);
    s += " queue_us=" + std::to_string(queue_us);
    s += " build_us=" + std::to_string(build_us);
    s += " total_us=" + std::to_string(total_us);
    s += " group=" + std::to_string(group);
    s += " cache_hit=" + std::to_string(cache_hit ? 1 : 0);
    s += " trace=" + std::to_string(trace_id);
    return s;
  }
};

class SlowLog {
 public:
  static constexpr size_t kDefaultCapacity = 128;

  explicit SlowLog(size_t capacity = kDefaultCapacity,
                   uint64_t threshold_us = 10000)
      : capacity_(capacity == 0 ? 1 : capacity), threshold_us_(threshold_us) {}

  uint64_t threshold_us() const {
    return threshold_us_.load(std::memory_order_relaxed);
  }
  void set_threshold_us(uint64_t us) {
    threshold_us_.store(us, std::memory_order_relaxed);
  }

  /// Appends a query record iff it crossed the threshold. The cheap
  /// no-record path is one relaxed load and a compare.
  void RecordQuery(SlowLogRecord rec) {
    if (rec.total_us < threshold_us()) return;
    rec.kind = SlowLogRecord::Kind::kQuery;
    Push(std::move(rec));
  }

  /// Appends a build-profile record unconditionally.
  void RecordBuild(SlowLogRecord rec) {
    rec.kind = SlowLogRecord::Kind::kBuild;
    Push(std::move(rec));
  }

  /// Buffered records, oldest first.
  std::vector<SlowLogRecord> Entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return std::vector<SlowLogRecord>(ring_.begin(), ring_.end());
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    ring_.clear();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
  }

  /// Records ever appended (monotone; survives ring eviction and Clear).
  uint64_t total_recorded() const {
    return total_.load(std::memory_order_relaxed);
  }

 private:
  void Push(SlowLogRecord rec) {
    total_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() >= capacity_) ring_.pop_front();
    ring_.push_back(std::move(rec));
  }

  const size_t capacity_;
  std::atomic<uint64_t> threshold_us_;
  std::atomic<uint64_t> total_{0};
  mutable std::mutex mu_;
  std::deque<SlowLogRecord> ring_;
};

}  // namespace obs
}  // namespace parhc
