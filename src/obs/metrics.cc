#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace parhc {
namespace obs {
namespace {

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

/// Escapes a Prometheus label value / JSON string (same escape set works
/// for both: backslash, quote, newline).
std::string EscapeValue(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '\\' || ch == '"') {
      out += '\\';
      out += ch;
    } else if (ch == '\n') {
      out += "\\n";
    } else {
      out += ch;
    }
  }
  return out;
}

std::string PromLabels(const MetricSample& sample,
                       const std::string& extra_key = "",
                       const std::string& extra_val = "") {
  if (sample.labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : sample.labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + EscapeValue(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + extra_val + "\"";
  }
  out += '}';
  return out;
}

}  // namespace

std::string FormatMetricValue(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(value));
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%g", value);
  return buf;
}

MetricFamily& MetricsBuilder::FamilyFor(const std::string& name,
                                        const std::string& help,
                                        MetricKind kind) {
  auto [it, inserted] = families_.try_emplace(name);
  MetricFamily& fam = it->second;
  if (inserted) {
    fam.name = name;
    fam.help = help;
    fam.kind = kind;
  }
  return fam;
}

void MetricsBuilder::Add(const std::string& name, const std::string& help,
                         MetricKind kind, double value, Labels labels) {
  MetricSample sample;
  sample.labels = std::move(labels);
  std::sort(sample.labels.begin(), sample.labels.end());
  sample.value = value;
  FamilyFor(name, help, kind).samples.push_back(std::move(sample));
}

void MetricsBuilder::Histogram(
    const std::string& name, const std::string& help,
    std::vector<std::pair<double, uint64_t>> cumulative_buckets, double sum,
    uint64_t count, Labels labels) {
  MetricSample sample;
  sample.labels = std::move(labels);
  std::sort(sample.labels.begin(), sample.labels.end());
  sample.buckets = std::move(cumulative_buckets);
  sample.sum = sum;
  sample.count = count;
  FamilyFor(name, help, MetricKind::kHistogram)
      .samples.push_back(std::move(sample));
}

std::vector<MetricFamily> MetricsBuilder::TakeFamilies() {
  std::vector<MetricFamily> out;
  out.reserve(families_.size());
  for (auto& [name, fam] : families_) out.push_back(std::move(fam));
  families_.clear();
  return out;  // std::map iteration order == sorted by name
}

std::string MetricsRegistry::PrometheusText() const {
  std::string out;
  for (const MetricFamily& fam : Collect()) {
    out += "# HELP " + fam.name + " " + fam.help + "\n";
    out += "# TYPE " + fam.name + " " + std::string(KindName(fam.kind)) +
           "\n";
    for (const MetricSample& s : fam.samples) {
      if (fam.kind == MetricKind::kHistogram) {
        for (const auto& [le, cum] : s.buckets) {
          out += fam.name + "_bucket" +
                 PromLabels(s, "le", FormatMetricValue(le)) + " " +
                 std::to_string(cum) + "\n";
        }
        out += fam.name + "_bucket" + PromLabels(s, "le", "+Inf") + " " +
               std::to_string(s.count) + "\n";
        out += fam.name + "_sum" + PromLabels(s) + " " +
               FormatMetricValue(s.sum) + "\n";
        out += fam.name + "_count" + PromLabels(s) + " " +
               std::to_string(s.count) + "\n";
      } else {
        out += fam.name + PromLabels(s) + " " + FormatMetricValue(s.value) +
               "\n";
      }
    }
  }
  return out;
}

std::string MetricsRegistry::Json() const {
  std::string out = "{\"metrics\":[";
  bool first_fam = true;
  for (const MetricFamily& fam : Collect()) {
    if (!first_fam) out += ',';
    first_fam = false;
    out += "{\"name\":\"" + EscapeValue(fam.name) + "\",\"type\":\"" +
           KindName(fam.kind) + "\",\"help\":\"" + EscapeValue(fam.help) +
           "\",\"samples\":[";
    bool first_sample = true;
    for (const MetricSample& s : fam.samples) {
      if (!first_sample) out += ',';
      first_sample = false;
      out += "{\"labels\":{";
      bool first_label = true;
      for (const auto& [k, v] : s.labels) {
        if (!first_label) out += ',';
        first_label = false;
        out += "\"" + EscapeValue(k) + "\":\"" + EscapeValue(v) + "\"";
      }
      out += "}";
      if (fam.kind == MetricKind::kHistogram) {
        out += ",\"buckets\":[";
        bool first_bucket = true;
        for (const auto& [le, cum] : s.buckets) {
          if (!first_bucket) out += ',';
          first_bucket = false;
          out += "{\"le\":" + FormatMetricValue(le) +
                 ",\"count\":" + std::to_string(cum) + "}";
        }
        out += "],\"sum\":" + FormatMetricValue(s.sum) +
               ",\"count\":" + std::to_string(s.count);
      } else {
        out += ",\"value\":" + FormatMetricValue(s.value);
      }
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace parhc
