// Metrics registry: one scrapeable surface over the serving stack's
// lock-free counters, gauges, and histograms.
//
// The underlying instruments stay where they live today — relaxed atomics
// in the server, scheduler, executor, engine, and algorithm layers — so
// the request path pays nothing new. What the registry adds is the *read*
// side: each subsystem registers a collection source once at startup (see
// obs/sources.h), and Collect() runs every source in one pass to produce a
// single consistent snapshot, rendered as Prometheus text exposition
// (PrometheusText) or JSON (Json) by the `metrics` protocol verb.
//
// Conventions (documented in README "Observability"):
//  * every metric name is prefixed `parhc_`; counters end in `_total`;
//  * labels are sorted into the sample at registration time;
//  * families render sorted by name, samples in registration order, so the
//    exposition layout is deterministic and golden-pinnable;
//  * histograms render with cumulative `le` buckets, `+Inf`, `_sum`, and
//    `_count`, matching the Prometheus histogram convention.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace parhc {
namespace obs {

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One labeled sample of a family. For histograms, `buckets` holds
/// (upper_bound_us, cumulative_count) pairs in increasing bound order and
/// `value` is unused.
struct MetricSample {
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0;
  std::vector<std::pair<double, uint64_t>> buckets;
  double sum = 0;
  uint64_t count = 0;
};

struct MetricFamily {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kGauge;
  std::vector<MetricSample> samples;
};

/// Passed to each source during Collect; merges same-name samples into one
/// family (several sources may contribute samples to one family, e.g. the
/// per-dataset gauges).
class MetricsBuilder {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  void Counter(const std::string& name, const std::string& help,
               double value, Labels labels = {}) {
    Add(name, help, MetricKind::kCounter, value, std::move(labels));
  }
  void Gauge(const std::string& name, const std::string& help, double value,
             Labels labels = {}) {
    Add(name, help, MetricKind::kGauge, value, std::move(labels));
  }
  void Histogram(const std::string& name, const std::string& help,
                 std::vector<std::pair<double, uint64_t>> cumulative_buckets,
                 double sum, uint64_t count, Labels labels = {});

  /// Families sorted by name (moves them out of the builder).
  std::vector<MetricFamily> TakeFamilies();

 private:
  void Add(const std::string& name, const std::string& help, MetricKind kind,
           double value, Labels labels);
  MetricFamily& FamilyFor(const std::string& name, const std::string& help,
                          MetricKind kind);

  std::map<std::string, MetricFamily> families_;
};

/// Source registry + snapshot renderer. AddSource is called once per
/// subsystem at startup; Collect may be called concurrently from any
/// thread (the verb runs on scheduler workers).
class MetricsRegistry {
 public:
  using Source = std::function<void(MetricsBuilder&)>;

  void AddSource(Source source) {
    std::lock_guard<std::mutex> lock(mu_);
    sources_.push_back(std::move(source));
  }

  /// Runs every source once; one consistent snapshot.
  std::vector<MetricFamily> Collect() const {
    MetricsBuilder b;
    std::lock_guard<std::mutex> lock(mu_);
    for (const Source& s : sources_) s(b);
    return b.TakeFamilies();
  }

  /// Prometheus text exposition ('\n'-terminated lines, trailing newline).
  std::string PrometheusText() const;

  /// One-line JSON rendering:
  /// {"metrics":[{"name":...,"type":...,"help":...,"samples":[...]}]}
  std::string Json() const;

 private:
  mutable std::mutex mu_;
  std::vector<Source> sources_;
};

/// Renders `value` the way both exporters print sample values: integers
/// without a decimal point, everything else with %g.
std::string FormatMetricValue(double value);

}  // namespace obs
}  // namespace parhc
