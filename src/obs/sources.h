// Metric sources: the glue that registers every subsystem's counters with
// a MetricsRegistry (obs/metrics.h).
//
// This is a leaf header — it includes the engine and the net-layer stats
// types, so only composition roots (the TCP server, the REPL mains, tests)
// include it; the instrumented subsystems themselves depend only on the
// small obs headers. Each Register* function adds one collection source
// closing over a reference the caller guarantees outlives the registry.
//
// Exported families (all `parhc_`-prefixed; counters end `_total`):
//   server     parhc_server_connections / _connections_total / _served_total
//              / _inline_hits_total / _shed_total / _dropped_total
//              / _protocol_errors_total / _idle_closed_total / _queued
//              / _inflight / _bytes_total{dir} / _request_latency_us (hist)
//              / _requests_total{verb}
//   engine     parhc_engine_{queries,cache_hits,builds,mutations,errors}_total
//   executor   parhc_executor_workers / _builds_active / _build_queue_depth
//              / _builds_total / _peak_builds / _last_group_size
//   dataset    parhc_dataset_{points,knn_width,cached_clusterings,dynamic,
//              shards,tombstone_ratio,snapshot_bytes,snapshot_age_seconds}
//              all labeled {dataset="<name>"}
//   algorithm  parhc_algo_{wspd_pairs_materialized,wspd_pairs_visited,
//              bccp_computed,bccp_point_distances}_total
//              + parhc_algo_wspd_pairs_peak
//   obs        parhc_trace_enabled / _trace_spans_total
//              / _trace_spans_dropped_total / parhc_slowlog_entries
//              / _slowlog_records_total / _slowlog_threshold_us
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "net/stats.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "obs/trace.h"
#include "obs/verb_counters.h"
#include "util/stats.h"

namespace parhc {
namespace obs {

/// Engine counters, executor gauges, and one gauge set per registered
/// dataset. `engine` must outlive the registry.
inline void RegisterEngineMetrics(MetricsRegistry& registry,
                                  const ClusteringEngine& engine) {
  registry.AddSource([&engine](MetricsBuilder& b) {
    EngineCounterSnapshot c = engine.counters();
    b.Counter("parhc_engine_queries_total", "Engine Run() calls.",
              static_cast<double>(c.queries));
    b.Counter("parhc_engine_cache_hits_total",
              "Queries answered entirely from cached artifacts.",
              static_cast<double>(c.cache_hits));
    b.Counter("parhc_engine_builds_total",
              "Queries that built at least one artifact.",
              static_cast<double>(c.builds));
    b.Counter("parhc_engine_mutations_total",
              "Successful insert/delete batches.",
              static_cast<double>(c.mutations));
    b.Counter("parhc_engine_errors_total",
              "Failed queries plus failed mutations.",
              static_cast<double>(c.errors));

    ExecutorStatsSnapshot e = engine.executor().stats();
    b.Gauge("parhc_executor_workers", "Scheduler pool size.",
            static_cast<double>(e.workers));
    b.Gauge("parhc_executor_builds_active", "Builds running right now.",
            static_cast<double>(e.concurrent_builds));
    b.Gauge("parhc_executor_build_queue_depth",
            "Builds waiting for admission.",
            static_cast<double>(e.build_queue_depth));
    b.Counter("parhc_executor_builds_total", "Builds admitted so far.",
              static_cast<double>(e.builds_total));
    b.Gauge("parhc_executor_peak_builds",
            "Max concurrent builds ever observed.",
            static_cast<double>(e.peak_concurrent));
    b.Gauge("parhc_executor_last_group_size",
            "Worker-group size of the most recent build.",
            static_cast<double>(e.last_group_size));

    for (const DatasetInfo& d : engine.registry().List()) {
      MetricsBuilder::Labels ds{{"dataset", d.name}};
      b.Gauge("parhc_dataset_points", "Live points in the dataset.",
              static_cast<double>(d.num_points), ds);
      b.Gauge("parhc_dataset_knn_width",
              "Cached kNN prefix width (0 = none).",
              static_cast<double>(d.knn_k), ds);
      b.Gauge("parhc_dataset_cached_clusterings",
              "Per-minPts clustering entries currently cached.",
              static_cast<double>(d.cached_clusterings), ds);
      b.Gauge("parhc_dataset_dynamic",
              "1 for the batch-dynamic backend, 0 for immutable.",
              d.dynamic ? 1 : 0, ds);
      b.Gauge("parhc_dataset_shards", "Shard count (1 for immutable).",
              static_cast<double>(d.num_shards), ds);
      double denom = static_cast<double>(d.num_points + d.tombstones);
      b.Gauge("parhc_dataset_tombstone_ratio",
              "Deleted-but-uncompacted fraction of stored points.",
              denom > 0 ? static_cast<double>(d.tombstones) / denom : 0, ds);
      b.Gauge("parhc_dataset_snapshot_bytes",
              "On-disk size of the last snapshot (0 = never saved).",
              static_cast<double>(d.snapshot_bytes), ds);
      double age = -1;
      if (d.snapshot_unix_ms >= 0) {
        int64_t now_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count();
        age = static_cast<double>(now_ms - d.snapshot_unix_ms) / 1e3;
        if (age < 0) age = 0;
      }
      b.Gauge("parhc_dataset_snapshot_age_seconds",
              "Seconds since the last snapshot save/load (-1 = never).", age,
              ds);
    }
  });
}

/// TCP-server counters, the request-latency histogram, and per-verb
/// request counts. `latency` and `verbs` may be null (REPL front-end);
/// non-null arguments must outlive the registry. The histogram always
/// exports all 48 log2 buckets so the exposition line count is fixed
/// (golden-pinnable); the verb family only emits verbs seen at least once.
inline void RegisterServerMetrics(MetricsRegistry& registry,
                                  const net::ServerStatsSource& stats,
                                  const net::LatencyHistogram* latency,
                                  const VerbCounters* verbs) {
  registry.AddSource([&stats, latency, verbs](MetricsBuilder& b) {
    net::ServerStatsSnapshot s = stats.Stats();
    b.Gauge("parhc_server_connections", "Open client connections.",
            static_cast<double>(s.connections_now));
    b.Counter("parhc_server_connections_total",
              "Connections accepted since start.",
              static_cast<double>(s.connections_total));
    b.Counter("parhc_server_served_total",
              "Responses delivered (excluding load-shed busy replies).",
              static_cast<double>(s.served));
    b.Counter("parhc_server_inline_hits_total",
              "Responses answered on the event loop's inline cache path.",
              static_cast<double>(s.inline_hits));
    b.Counter("parhc_server_shed_total",
              "Requests answered 'err busy' by load shedding.",
              static_cast<double>(s.shed));
    b.Counter("parhc_server_dropped_total",
              "Responses whose connection died before delivery.",
              static_cast<double>(s.dropped));
    b.Counter("parhc_server_protocol_errors_total",
              "Lines rejected by the protocol parser.",
              static_cast<double>(s.protocol_errors));
    b.Counter("parhc_server_idle_closed_total",
              "Connections closed by the idle timeout.",
              static_cast<double>(s.idle_closed));
    b.Gauge("parhc_server_queued", "Requests waiting in the scheduler.",
            static_cast<double>(s.queued_now));
    b.Gauge("parhc_server_inflight", "Requests running on a worker.",
            static_cast<double>(s.inflight_now));
    b.Counter("parhc_server_bytes_total", "Bytes moved on client sockets.",
              static_cast<double>(s.bytes_in), {{"dir", "in"}});
    b.Counter("parhc_server_bytes_total", "Bytes moved on client sockets.",
              static_cast<double>(s.bytes_out), {{"dir", "out"}});
    if (latency != nullptr) {
      std::vector<std::pair<double, uint64_t>> buckets;
      buckets.reserve(net::LatencyHistogram::kBuckets);
      uint64_t cum = 0;
      for (int i = 0; i < net::LatencyHistogram::kBuckets; ++i) {
        cum += latency->bucket_count(i);
        buckets.emplace_back(
            static_cast<double>(net::LatencyHistogram::BucketUpperUs(i)),
            cum);
      }
      b.Histogram("parhc_server_request_latency_us",
                  "Scheduler-measured request latency (enqueue to done).",
                  std::move(buckets), static_cast<double>(latency->sum_us()),
                  latency->count());
    }
    if (verbs != nullptr) {
      for (int i = 0; i < VerbCounters::kNumVerbs; ++i) {
        uint64_t n = verbs->Count(i);
        if (n == 0) continue;
        b.Counter("parhc_server_requests_total",
                  "Responses delivered, by protocol verb.",
                  static_cast<double>(n),
                  {{"verb", VerbCounters::kVerbs[i]}});
      }
    }
  });
}

/// Process-global algorithm work counters (util/stats.h) — WSPD pair and
/// BCCP distance totals across every EMST/HDBSCAN* build in the process.
inline void RegisterAlgorithmMetrics(MetricsRegistry& registry) {
  registry.AddSource([](MetricsBuilder& b) {
    AlgoCounterSnapshot s = Stats::Get().Snapshot();
    b.Counter("parhc_algo_wspd_pairs_materialized_total",
              "WSPD pairs materialized across all builds.",
              static_cast<double>(s.wspd_pairs_materialized));
    b.Counter("parhc_algo_wspd_pairs_visited_total",
              "WSPD pairs visited across all builds.",
              static_cast<double>(s.wspd_pairs_visited));
    b.Counter("parhc_algo_bccp_computed_total",
              "Bichromatic closest-pair computations across all builds.",
              static_cast<double>(s.bccp_computed));
    b.Counter("parhc_algo_bccp_point_distances_total",
              "Point-distance evaluations inside BCCP across all builds.",
              static_cast<double>(s.bccp_point_distances));
    b.Gauge("parhc_algo_wspd_pairs_peak",
            "High-water mark of simultaneously materialized WSPD pairs.",
            static_cast<double>(s.wspd_pairs_peak));
  });
}

/// The observability layer's own health: tracer state and slow-log fill.
/// `slowlog` must outlive the registry.
inline void RegisterObsMetrics(MetricsRegistry& registry,
                               const SlowLog& slowlog) {
  registry.AddSource([&slowlog](MetricsBuilder& b) {
    Tracer& t = Tracer::Get();
    b.Gauge("parhc_trace_enabled", "1 while span recording is on.",
            t.enabled() ? 1 : 0);
    b.Counter("parhc_trace_spans_total", "Spans recorded since start.",
              static_cast<double>(t.spans_recorded()));
    b.Counter("parhc_trace_spans_dropped_total",
              "Spans overwritten by ring wrap before any dump.",
              static_cast<double>(t.spans_dropped()));
    b.Gauge("parhc_slowlog_entries", "Records currently held in the ring.",
            static_cast<double>(slowlog.size()));
    b.Counter("parhc_slowlog_records_total",
              "Slow-query and build records ever accepted.",
              static_cast<double>(slowlog.total_recorded()));
    b.Gauge("parhc_slowlog_threshold_us",
            "Slow-query latency threshold in microseconds.",
            static_cast<double>(slowlog.threshold_us()));
  });
}

}  // namespace obs
}  // namespace parhc
