// Per-verb request counters for the serving front-ends.
//
// One relaxed atomic per protocol verb, bumped when a request's response
// has been produced (after Handle returns / after the inline fast path
// answers) — so at quiescence the sum over verbs equals the server's
// `served` counter, which ci/check_metrics.py asserts. Load-shed busy
// replies are deliberately *not* bumped (they are counted by `shed`, and
// `served` excludes them on the scheduler side... see net/server.cc).
//
// The verb -> index dispatch is a first-character switch with at most four
// short compares, so the inline cache-hit path pays a few nanoseconds.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

namespace parhc {
namespace obs {

class VerbCounters {
 public:
  /// Sorted, fixed verb set; unknown verbs land on "other". Keep in sync
  /// with the protocol's verb table (net/protocol.cc).
  static constexpr const char* kVerbs[] = {
      "clusters", "dbscan",  "delete",    "drop",    "dyn",   "emst",
      "frame",    "gen",     "geninsert", "hdbscan", "help",  "insert",
      "list",     "load",    "metrics",   "other",   "reach", "save",
      "slink",    "slowlog", "stats",     "trace"};
  static constexpr int kNumVerbs =
      static_cast<int>(sizeof(kVerbs) / sizeof(kVerbs[0]));
  static constexpr int kOther = 15;  // index of "other" above

  /// Front-end span names ("request:<verb>"), indexed like kVerbs — static
  /// literals so the hot path records spans without interning.
  static constexpr const char* kRequestSpanNames[] = {
      "request:clusters", "request:dbscan",  "request:delete",
      "request:drop",     "request:dyn",     "request:emst",
      "request:frame",    "request:gen",     "request:geninsert",
      "request:hdbscan",  "request:help",    "request:insert",
      "request:list",     "request:load",    "request:metrics",
      "request:other",    "request:reach",   "request:save",
      "request:slink",    "request:slowlog", "request:stats",
      "request:trace"};

  static int IndexOf(std::string_view verb) {
    if (verb.empty()) return kOther;
    switch (verb[0]) {
      case 'c': return verb == "clusters" ? 0 : kOther;
      case 'd':
        if (verb == "dbscan") return 1;
        if (verb == "delete") return 2;
        if (verb == "drop") return 3;
        if (verb == "dyn") return 4;
        return kOther;
      case 'e': return verb == "emst" ? 5 : kOther;
      case 'f': return verb == "frame" ? 6 : kOther;
      case 'g':
        if (verb == "gen") return 7;
        if (verb == "geninsert") return 8;
        return kOther;
      case 'h':
        if (verb == "hdbscan") return 9;
        if (verb == "help") return 10;
        return kOther;
      case 'i': return verb == "insert" ? 11 : kOther;
      case 'l':
        if (verb == "list") return 12;
        if (verb == "load") return 13;
        return kOther;
      case 'm': return verb == "metrics" ? 14 : kOther;
      case 'r': return verb == "reach" ? 16 : kOther;
      case 's':
        if (verb == "save") return 17;
        if (verb == "slink") return 18;
        if (verb == "slowlog") return 19;
        if (verb == "stats") return 20;
        return kOther;
      case 't': return verb == "trace" ? 21 : kOther;
      default: return kOther;
    }
  }

  void Bump(std::string_view verb) {
    counts_[IndexOf(verb)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Bump by a precomputed IndexOf result (callers that already resolved
  /// the verb for a RequestTag).
  void BumpIndex(int index) {
    counts_[index].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t Count(int index) const {
    return counts_[index].load(std::memory_order_relaxed);
  }

  uint64_t Total() const {
    uint64_t total = 0;
    for (int i = 0; i < kNumVerbs; ++i) total += Count(i);
    return total;
  }

 private:
  std::atomic<uint64_t> counts_[kNumVerbs] = {};
};

}  // namespace obs
}  // namespace parhc
