#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

namespace parhc {
namespace obs {
namespace {

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

/// Pins the epoch at load time: scheduler/server timestamps taken before
/// the first NowNs() call must not land before the epoch (a negative
/// duration would wrap the unsigned nanosecond count).
const std::chrono::steady_clock::time_point kEpochAnchor = TraceEpoch();

thread_local uint64_t t_current_trace = 0;

/// JSON string escaping for span names/categories (controlled inputs, but
/// artifact keys could in principle carry anything a dataset name does).
std::string JsonEscape(const char* s) {
  std::string out;
  for (; *s; ++s) {
    char ch = *s;
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", ch);
      out += buf;
    } else {
      out += ch;
    }
  }
  return out;
}

}  // namespace

uint64_t ToTraceNs(std::chrono::steady_clock::time_point tp) {
  int64_t ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(tp - TraceEpoch())
          .count();
  return ns > 0 ? static_cast<uint64_t>(ns) : 0;  // pre-epoch stamps clamp
}

uint64_t NowNs() { return ToTraceNs(std::chrono::steady_clock::now()); }

uint64_t CurrentTraceId() { return t_current_trace; }

TraceContext::TraceContext(uint64_t trace_id) : prev_(t_current_trace) {
  t_current_trace = trace_id;
}

TraceContext::~TraceContext() { t_current_trace = prev_; }

/// One recording thread's bounded span buffer. Slots are relaxed atomics
/// and `head` is released on publish, so concurrent dumps are
/// data-race-free; see the header for the torn-wrap caveat.
struct Tracer::Ring {
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<const char*> cat{nullptr};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> begin_ns{0};
    std::atomic<uint64_t> dur_ns{0};
  };
  Slot slots[kRingCapacity];
  std::atomic<uint64_t> head{0};  ///< next write position (monotone)
  int tid = 0;                    ///< stable small id for the dump
};

namespace {

/// Ring registry: rings are owned here (shared_ptr) so a ring outlives its
/// thread — a dump after worker threads exited still sees their spans, and
/// everything stays reachable (no leak reports). The thread_local caches
/// the raw pointer for the recording fast path.
struct RingRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<Tracer::Ring>> rings;
};

RingRegistry& Rings() {
  static RingRegistry* r = new RingRegistry;  // never destroyed: recording
  return *r;                                  // threads may outlive statics
}

thread_local Tracer::Ring* t_ring = nullptr;

}  // namespace

Tracer::Ring* Tracer::ThisThreadRing() {
  if (t_ring == nullptr) {
    auto ring = std::make_shared<Ring>();
    RingRegistry& reg = Rings();
    std::lock_guard<std::mutex> lock(reg.mu);
    ring->tid = static_cast<int>(reg.rings.size()) + 1;
    reg.rings.push_back(ring);
    t_ring = ring.get();
  }
  return t_ring;
}

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer;  // never destroyed (see Rings())
  return *tracer;
}

void Tracer::RecordSpan(const char* name, const char* cat, uint64_t trace_id,
                        uint64_t begin_ns, uint64_t end_ns) {
  if (!enabled()) return;
  Ring* ring = ThisThreadRing();
  uint64_t h = ring->head.load(std::memory_order_relaxed);
  Ring::Slot& slot = ring->slots[h % kRingCapacity];
  slot.name.store(name, std::memory_order_relaxed);
  slot.cat.store(cat, std::memory_order_relaxed);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.begin_ns.store(begin_ns, std::memory_order_relaxed);
  slot.dur_ns.store(end_ns >= begin_ns ? end_ns - begin_ns : 0,
                    std::memory_order_relaxed);
  ring->head.store(h + 1, std::memory_order_release);
}

const char* Tracer::Intern(const std::string& name) {
  static std::mutex* mu = new std::mutex;
  static std::unordered_set<std::string>* table =
      new std::unordered_set<std::string>;
  std::lock_guard<std::mutex> lock(*mu);
  return table->insert(name).first->c_str();
}

std::string Tracer::DumpJson() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    RingRegistry& reg = Rings();
    std::lock_guard<std::mutex> lock(reg.mu);
    rings = reg.rings;
  }
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  char buf[160];
  for (const auto& ring : rings) {
    uint64_t head = ring->head.load(std::memory_order_acquire);
    uint64_t kept = std::min<uint64_t>(head, kRingCapacity);
    for (uint64_t i = head - kept; i < head; ++i) {
      const Ring::Slot& slot = ring->slots[i % kRingCapacity];
      const char* name = slot.name.load(std::memory_order_relaxed);
      if (name == nullptr) continue;  // wrap raced with the writer
      const char* cat = slot.cat.load(std::memory_order_relaxed);
      uint64_t begin = slot.begin_ns.load(std::memory_order_relaxed);
      uint64_t dur = slot.dur_ns.load(std::memory_order_relaxed);
      uint64_t trace = slot.trace_id.load(std::memory_order_relaxed);
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"";
      out += JsonEscape(name);
      out += "\",\"cat\":\"";
      out += JsonEscape(cat != nullptr ? cat : "app");
      std::snprintf(buf, sizeof buf,
                    "\",\"ph\":\"X\",\"ts\":%llu.%03llu,\"dur\":%llu.%03llu,"
                    "\"pid\":1,\"tid\":%d,\"args\":{\"trace\":%llu}}",
                    static_cast<unsigned long long>(begin / 1000),
                    static_cast<unsigned long long>(begin % 1000),
                    static_cast<unsigned long long>(dur / 1000),
                    static_cast<unsigned long long>(dur % 1000), ring->tid,
                    static_cast<unsigned long long>(trace));
      out += buf;
    }
  }
  out += "]}";
  return out;
}

bool Tracer::DumpJsonToFile(const std::string& path,
                            size_t* spans_out) const {
  std::string json = DumpJson();
  if (spans_out != nullptr) {
    size_t n = 0;
    for (size_t pos = 0; (pos = json.find("\"ph\"", pos)) != std::string::npos;
         ++pos) {
      ++n;
    }
    *spans_out = n;
  }
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f.good()) return false;
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  f.flush();
  return f.good();
}

void Tracer::Clear() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    RingRegistry& reg = Rings();
    std::lock_guard<std::mutex> lock(reg.mu);
    rings = reg.rings;
  }
  for (const auto& ring : rings) {
    uint64_t head = ring->head.load(std::memory_order_acquire);
    for (auto& slot : ring->slots) {
      slot.name.store(nullptr, std::memory_order_relaxed);
    }
    // Preserve the monotone recorded count; only the buffered spans go.
    ring->head.store(head, std::memory_order_release);
  }
}

uint64_t Tracer::spans_recorded() const {
  RingRegistry& reg = Rings();
  std::lock_guard<std::mutex> lock(reg.mu);
  uint64_t total = 0;
  for (const auto& ring : reg.rings) {
    total += ring->head.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Tracer::spans_dropped() const {
  RingRegistry& reg = Rings();
  std::lock_guard<std::mutex> lock(reg.mu);
  uint64_t total = 0;
  for (const auto& ring : reg.rings) {
    uint64_t head = ring->head.load(std::memory_order_relaxed);
    if (head > kRingCapacity) total += head - kRingCapacity;
  }
  return total;
}

}  // namespace obs
}  // namespace parhc
