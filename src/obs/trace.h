// Request tracing: per-request trace IDs and bounded lock-free per-thread
// span ring buffers, dumped as Chrome trace_event JSON (loadable in
// chrome://tracing or https://ui.perfetto.dev).
//
// Design:
//  * One process-wide Tracer. Tracing is off by default; when off, a Span
//    costs one relaxed atomic load and records nothing — cheap enough to
//    leave compiled into every hot path (the `trace:on/off` rows of
//    bench_server_throughput measure the enabled cost end to end).
//  * Each recording thread owns a fixed-capacity ring of span slots. Every
//    slot field is a relaxed atomic and the ring head is published with a
//    release store, so a dump taken while other threads keep recording is
//    data-race-free (TSan-clean) without any lock on the recording path.
//    The ring overwrites oldest spans when full (spans_dropped counts
//    them); a span overwritten *during* a concurrent dump can surface as a
//    single torn record, which the monitoring use tolerates by design.
//  * Span names must be pointers with static storage duration: string
//    literals on hot paths, or strings interned once through
//    Tracer::Intern (used for dynamic artifact keys like "build:mst@16" —
//    builds are rare, so the intern mutex is off the request path).
//  * Trace IDs are minted at the front-end (TCP server / protocol session)
//    and threaded to worker threads via the thread-local TraceContext;
//    every span records the current thread's trace id, so a dump can be
//    filtered per request. All timestamps come from one steady-clock
//    epoch, so spans of one request nest by time containment across
//    threads.
//
// The span hierarchy the serving stack emits (see README "Observability"):
//   request:<verb>  (net)     front-end, minted at parse time
//     queue         (net)     scheduler wait, enqueue -> worker pickup
//     executor:admit (engine) build-slot admission wait
//     executor:run   (engine) worker-group execution
//       build:<artifact> (engine) one per artifact built
//         phase:<name>   (algo)   PhaseBreakdown phases (Figure 8)
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace parhc {
namespace obs {

/// Nanoseconds since the process-wide trace epoch (steady clock).
uint64_t NowNs();

/// Converts a steady_clock time point (e.g. a scheduler enqueue stamp)
/// into the same epoch NowNs uses.
uint64_t ToTraceNs(std::chrono::steady_clock::time_point tp);

class Tracer {
 public:
  static constexpr size_t kRingCapacity = 4096;  ///< spans kept per thread

  static Tracer& Get();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Fresh nonzero request trace id.
  uint64_t MintTraceId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records one complete span. `name` and `cat` must have static storage
  /// duration (literal or Intern result). Lock-free; callable from any
  /// thread. No-op when tracing is disabled.
  void RecordSpan(const char* name, const char* cat, uint64_t trace_id,
                  uint64_t begin_ns, uint64_t end_ns);

  /// Returns a stable pointer for a dynamic span name (mutex-protected
  /// insert-only table; keep off hot paths).
  const char* Intern(const std::string& name);

  /// Chrome trace_event JSON of every buffered span:
  /// {"displayTimeUnit":"ns","traceEvents":[{"name":...,"cat":...,
  ///  "ph":"X","ts":<us>,"dur":<us>,"pid":1,"tid":<ring>,
  ///  "args":{"trace":<id>}}, ...]}
  std::string DumpJson() const;

  /// DumpJson straight to `path`; returns false on I/O failure. Sets
  /// *spans_out (if non-null) to the number of events written.
  bool DumpJsonToFile(const std::string& path,
                      size_t* spans_out = nullptr) const;

  /// Drops every buffered span (rings stay registered).
  void Clear();

  uint64_t spans_recorded() const;  ///< RecordSpan calls, cumulative
  uint64_t spans_dropped() const;   ///< of those, overwritten by ring wrap

  /// One thread's span buffer; defined (and only used) in trace.cc, public
  /// so the file-local ring registry there can own the instances.
  struct Ring;

 private:
  Tracer() = default;
  Ring* ThisThreadRing();

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
};

/// The calling thread's current request trace id (0 = none).
uint64_t CurrentTraceId();

/// RAII: sets the calling thread's trace id for its scope (workers install
/// the request's id before running its work), restoring the previous one.
class TraceContext {
 public:
  explicit TraceContext(uint64_t trace_id);
  ~TraceContext();
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

 private:
  uint64_t prev_;
};

/// RAII span over its scope, tagged with CurrentTraceId(). When tracing is
/// disabled the constructor is one relaxed load and the destructor one
/// branch (no clock reads, no stores).
class Span {
 public:
  explicit Span(const char* name, const char* cat = "app") {
    if (Tracer::Get().enabled()) {
      name_ = name;
      cat_ = cat;
      begin_ns_ = NowNs();
    }
  }
  ~Span() { End(); }

  /// Records the span now (idempotent); the destructor becomes a no-op.
  void End() {
    if (name_ != nullptr) {
      Tracer::Get().RecordSpan(name_, cat_, CurrentTraceId(), begin_ns_,
                               NowNs());
      name_ = nullptr;
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  uint64_t begin_ns_ = 0;
};

}  // namespace obs
}  // namespace parhc
