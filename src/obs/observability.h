// The observability bundle a serving front-end owns: metrics registry +
// slow-query log. (The span tracer is process-global — see obs/trace.h —
// because trace IDs cross thread and subsystem boundaries.)
//
// The TCP server (net/server.cc) owns one per server; the stdin REPL
// (examples/parhc_server.cpp) owns one per process. The protocol core
// receives a pointer through ProtocolOptions and answers the `metrics` and
// `slowlog` verbs from it.
#pragma once

#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "obs/trace.h"

namespace parhc {
namespace obs {

struct Observability {
  MetricsRegistry metrics;
  SlowLog slowlog;
};

}  // namespace obs
}  // namespace parhc
