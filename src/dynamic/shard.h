// One immutable shard of the batch-dynamic LSM forest (src/dynamic/).
//
// A shard owns one batch of points (plus their stable global ids) and a
// tombstone bitmap. Its *live* subset — the points not yet tombstoned — is
// what every derived artifact is defined over: a flat kd-tree arena built
// with the existing arena builder, and the shard's Euclidean MST edge list
// in global-id space. Both are built lazily and cached until the live set
// changes (a tombstone drops them; the GPU single-tree EMST line of work,
// Prokopenko et al. arXiv:2207.00514, motivates keeping each shard a static
// flat arena rather than mutating the tree in place).
//
// Identity is two-level:
//  * `uid`        — stable for the lifetime of the shard object; the
//                   forest's gid locator refers to shards by uid, so
//                   tombstoning (which moves no points) leaves it valid.
//  * `content_id` — identifies the live *content*; the forest bumps it on
//                   every tombstone. Cross-shard artifact caches key on
//                   content ids, so any live-set change invalidates exactly
//                   the cached cross edges that mention this shard.
//
// Invariant: local point order is ascending in global id (batches arrive
// gid-ascending and merges are gid-ordered merges), so per-shard tie-breaks
// on local ids agree with global-id tie-breaks — required for the shard
// forest's MSTs to match a from-scratch build edge-for-edge.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "emst/emst_memogfk.h"
#include "graph/edge.h"
#include "spatial/kdtree.h"
#include "util/check.h"

namespace parhc {

template <int D>
class Shard {
 public:
  Shard(uint64_t uid, uint64_t content_id, std::vector<Point<D>> pts,
        std::vector<uint32_t> gids)
      : uid_(uid),
        content_id_(content_id),
        pts_(std::move(pts)),
        gids_(std::move(gids)),
        dead_(pts_.size(), 0) {
    PARHC_CHECK_MSG(!pts_.empty(), "shard must be non-empty");
    PARHC_CHECK(pts_.size() == gids_.size());
    for (size_t i = 1; i < gids_.size(); ++i) {
      PARHC_DCHECK(gids_[i - 1] < gids_[i]);
    }
  }

  /// Snapshot-restore constructor: rebuilds a shard with its tombstone
  /// bitmap (and, when the snapshot carried one, its cached EMST edge
  /// list) exactly as saved. The caller (store load path) has already
  /// validated sizes, gid order, and that at least one point is live.
  Shard(uint64_t uid, uint64_t content_id, std::vector<Point<D>> pts,
        std::vector<uint32_t> gids, std::vector<uint8_t> dead,
        std::vector<WeightedEdge> emst, bool has_emst)
      : uid_(uid),
        content_id_(content_id),
        pts_(std::move(pts)),
        gids_(std::move(gids)),
        dead_(std::move(dead)),
        emst_(std::move(emst)),
        has_emst_(has_emst) {
    PARHC_CHECK_MSG(!pts_.empty(), "shard must be non-empty");
    PARHC_CHECK(pts_.size() == gids_.size() && pts_.size() == dead_.size());
    for (uint8_t d : dead_) dead_count_ += d != 0;
    PARHC_CHECK_MSG(dead_count_ < pts_.size(),
                    "restored shard must have a live point");
  }

  uint64_t uid() const { return uid_; }
  uint64_t content_id() const { return content_id_; }

  size_t total_count() const { return pts_.size(); }
  size_t live_count() const { return pts_.size() - dead_count_; }
  size_t dead_count() const { return dead_count_; }
  double dead_fraction() const {
    return static_cast<double>(dead_count_) / static_cast<double>(pts_.size());
  }
  /// LSM size class: floor(log2(live_count)).
  int size_class() const {
    int c = 0;
    for (size_t n = live_count(); n > 1; n >>= 1) ++c;
    return c;
  }

  /// All points / gids, including tombstoned entries (stable local order).
  const std::vector<Point<D>>& points() const { return pts_; }
  const std::vector<uint32_t>& gids() const { return gids_; }
  bool dead(uint32_t local) const { return dead_[local] != 0; }
  /// The tombstone bitmap (1 byte per point), for snapshot saves.
  const std::vector<uint8_t>& dead_bitmap() const { return dead_; }
  /// The cached EMST edges without triggering a build (valid only when
  /// has_emst()); read-only, for snapshot saves.
  const std::vector<WeightedEdge>& cached_emst() const { return emst_; }

  /// Tombstones one local index, dropping the live-set artifacts. The
  /// forest bumps `content_id` alongside. Returns false if already dead.
  bool Tombstone(uint32_t local, uint64_t new_content_id) {
    PARHC_CHECK(local < pts_.size());
    if (dead_[local]) return false;
    dead_[local] = 1;
    ++dead_count_;
    content_id_ = new_content_id;
    tree_.reset();
    emst_.clear();
    has_emst_ = false;
    live_pts_.clear();
    live_gids_.clear();
    return true;
  }

  /// Live points / gids in local (= gid-ascending) order. Aliases the full
  /// arrays when nothing is tombstoned.
  const std::vector<Point<D>>& live_points() {
    EnsureLive();
    return dead_count_ == 0 ? pts_ : live_pts_;
  }
  const std::vector<uint32_t>& live_gids() {
    EnsureLive();
    return dead_count_ == 0 ? gids_ : live_gids_;
  }

  bool has_tree() const { return tree_ != nullptr; }
  bool has_emst() const { return has_emst_; }

  /// The shard's kd-tree over its live points (arena builder, unit leaves),
  /// built on first use. Tree point ids index live_points()/live_gids().
  KdTree<D>& tree() {
    if (!tree_) {
      tree_ = std::make_unique<KdTree<D>>(live_points(), /*leaf_size=*/1);
    }
    return *tree_;
  }

  /// The shard's exact EMST over its live points, edges in global-id space,
  /// built on first use via MemoGFK on the shard tree.
  const std::vector<WeightedEdge>& EmstEdges() {
    if (!has_emst_) {
      emst_ = EmstMemoGfkOnTree(tree());
      const std::vector<uint32_t>& lg = live_gids();
      for (WeightedEdge& e : emst_) {
        e.u = lg[e.u];
        e.v = lg[e.v];
      }
      has_emst_ = true;
    }
    return emst_;
  }

  /// Releases the live points and gids of this shard (for merging or
  /// compaction); the shard must be discarded afterwards.
  std::pair<std::vector<Point<D>>, std::vector<uint32_t>> TakeLive() {
    EnsureLive();
    if (dead_count_ == 0) {
      return {std::move(pts_), std::move(gids_)};
    }
    return {std::move(live_pts_), std::move(live_gids_)};
  }

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

 private:
  void EnsureLive() {
    if (dead_count_ == 0 || !live_pts_.empty()) return;
    live_pts_.reserve(live_count());
    live_gids_.reserve(live_count());
    for (size_t i = 0; i < pts_.size(); ++i) {
      if (!dead_[i]) {
        live_pts_.push_back(pts_[i]);
        live_gids_.push_back(gids_[i]);
      }
    }
  }

  uint64_t uid_;
  uint64_t content_id_;
  std::vector<Point<D>> pts_;
  std::vector<uint32_t> gids_;
  std::vector<uint8_t> dead_;  ///< tombstone bitmap (1 byte per point)
  size_t dead_count_ = 0;

  // Live-set artifacts, dropped on every tombstone.
  std::vector<Point<D>> live_pts_;
  std::vector<uint32_t> live_gids_;
  std::unique_ptr<KdTree<D>> tree_;
  std::vector<WeightedEdge> emst_;
  bool has_emst_ = false;
};

}  // namespace parhc
