// Batch-dynamic artifact cache: the mutable-dataset backend of the
// clustering engine (the immutable backend is engine/artifacts.h).
//
// Points live in an LSM shard forest (forest.h). Every pipeline artifact is
// assigned to one of three invalidation tiers:
//
//   shard tier    per-shard kd-tree and EMST edge list, cached inside the
//                 shard object; survive any mutation that leaves the shard
//                 untouched (keyed implicitly by shard content id).
//   cross tier    per shard *pair*: the Euclidean cross candidate edges
//                 (well-separated cross decomposition + cross BCCP, s = 2),
//                 cached by content-id pair — stale exactly when either
//                 side's live content changes.
//   global tier   everything derived from the whole forest: the merged kNN
//                 rows, the global EMST / MR-MST Kruskal results,
//                 dendrograms and clusterings; keyed by the forest mutation
//                 epoch.
//
// Exactness comes from the distance-decomposition rule (Lettich,
// arXiv:2406.01739): the MST of a union of parts is contained in the union
// of the parts' MSTs plus cross-part candidate edges — valid for any
// strictly totally ordered weight function, so it covers both the
// Euclidean and the mutual-reachability graph. A small insert therefore
// pays its own shard build + EMST, one cross pass against each surviving
// shard, and a Kruskal over ~n cached edges — not an O(n) tree + kNN + MST
// rebuild.
//
// HDBSCAN* stays exact through the multi-shard kNN merge: each point's
// global K nearest neighbors are accumulated by querying every shard's
// tree into one bounded heap, so core distances at any minPts <= K are the
// square roots of the exact minPts-th smallest squared distances —
// bit-identical to a from-scratch AllKnnDistances pass over the union. On
// insert the cached rows are updated incrementally (merge each old row
// with the K best candidates from the new batch's tree; new points query
// every shard once); a delete invalidates the rows wholesale, since a
// vanished neighbor cannot be repaired locally.
//
// Per-point outputs (core distances, labels, dendrograms, MST endpoints)
// use *dense* indices: position i corresponds to the i-th live global id in
// ascending order (EngineResponse::point_ids carries the mapping). Because
// the dense map is monotone in gid, all tie-breaks agree with a
// from-scratch build over the live points in gid order.
//
// Thread safety: none here; the engine front-end serializes mutations and
// builds (engine.h). Answer(allow_build = false) is the read-only path and
// touches no mutable state except the LRU clock.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "dendrogram/cluster_extraction.h"
#include "dendrogram/reachability.h"
#include "dynamic/forest.h"
#include "engine/artifact_util.h"
#include "engine/request.h"
#include "graph/kruskal.h"
#include "hdbscan/hdbscan_mst.h"
#include "hdbscan/stability.h"
#include "spatial/cross_traverse.h"
#include "spatial/knn.h"
#include "spatial/wspd.h"
#include "store/artifact_io.h"
#include "store/manifest.h"

namespace parhc {

template <int D>
class DynamicArtifacts {
 public:
  size_t num_points() const { return forest_.live_count(); }
  size_t num_shards() const { return forest_.num_shards(); }
  size_t num_tombstones() const { return forest_.dead_count(); }
  size_t knn_k() const { return knn_valid_ ? knn_k_ : 0; }
  size_t num_cached_clusterings() const { return hdbscan_.size(); }
  uint32_t next_gid() const { return forest_.next_gid(); }
  /// Entries in the dense gid map — O(live points) by construction;
  /// regression-tested against churn alongside the forest locator.
  size_t dense_map_size() const { return dense_of_gid_.size(); }
  const ShardForest<D>& forest() const { return forest_; }

  /// Inserts one batch; returns the first assigned global id. Maintains
  /// the kNN rows incrementally when they are warm, then invalidates the
  /// global tier (cached cross edges and shard artifacts survive).
  uint32_t InsertBatch(std::vector<Point<D>> pts) {
    if (knn_valid_) UpdateKnnRowsForInsert(pts);
    uint32_t first = forest_.InsertBatch(std::move(pts));
    InvalidateGlobalTier();
    return first;
  }

  /// Tombstones the given global ids; returns the number deleted. The kNN
  /// rows cannot be repaired locally (a deleted point may have been inside
  /// another point's neighborhood), so they are invalidated wholesale.
  size_t DeleteBatch(const std::vector<uint32_t>& gids) {
    size_t deleted = forest_.DeleteBatch(gids);
    if (deleted > 0) {
      knn_valid_ = false;
      InvalidateGlobalTier();
    }
    return deleted;
  }

  /// Live points in ascending-gid order — the router tier's export/mirror
  /// surface (net kOpExportPoints). Lazily builds the gid list; the engine
  /// calls it under the entry's exclusive lock.
  void ExportLive(std::vector<uint32_t>* gids, std::vector<Point<D>>* pts) {
    *gids = forest_.LiveGids();
    pts->resize(gids->size());
    for (size_t i = 0; i < gids->size(); ++i) {
      (*pts)[i] = forest_.PointOf((*gids)[i]);
    }
  }

  /// kNN rows of arbitrary query points against the live forest: row i
  /// holds the sorted squared distances from queries[i] to its k nearest
  /// live points, +inf-padded past the live count — value-identical to
  /// the rows EnsureKnn builds for resident points (same heaps, same
  /// kernels). Issues parallel work; shard tree accessors mutate caches,
  /// so the engine runs this on the build executor under the exclusive
  /// lock.
  std::vector<double> KnnForQueries(const std::vector<Point<D>>& queries,
                                    size_t k) {
    std::vector<double> rows(queries.size() * k,
                             std::numeric_limits<double>::infinity());
    size_t n = forest_.live_count();
    if (n == 0 || queries.empty()) return rows;
    size_t cap = std::min(k, n);
    for (size_t s = 0; s < forest_.num_shards(); ++s) {
      forest_.shard(s).tree();  // build outside the parallel loop
    }
    std::vector<std::vector<std::pair<double, uint32_t>>> scratch(
        NumWorkers());
    ParallelFor(0, queries.size(), [&](size_t i) {
      auto& buf = scratch[Scheduler::Get().MyId()];
      if (buf.size() < cap) buf.resize(cap);
      internal::KnnHeap heap(cap, buf.data());
      for (size_t s = 0; s < forest_.num_shards(); ++s) {
        internal::KnnQueryInto(forest_.shard(s).tree(), queries[i], heap);
      }
      std::sort(buf.data(), buf.data() + heap.size());
      double* row = rows.data() + i * k;
      for (size_t t = 0; t < heap.size(); ++t) row[t] = buf[t].first;
    });
    return rows;
  }

  /// The forest's MR-MST under externally supplied *global* core
  /// distances (`core[i]` = core distance of the i-th live gid ascending),
  /// with gid endpoints — the per-worker part of the router's distributed
  /// HDBSCAN* merge (net kOpShardMrMst). Built exactly like the local
  /// HDBSCAN* path: per-shard MR-MSTs (annotating each shard tree) plus
  /// cross BCCP* candidates, Kruskal'd down to live_count - 1 edges.
  /// Issues parallel work; engine runs it on the build executor under the
  /// exclusive lock.
  std::vector<WeightedEdge> MutualReachMst(const std::vector<double>& core) {
    size_t n = forest_.live_count();
    if (n < 2) return {};
    EnsureDense();
    std::vector<WeightedEdge> candidates;
    for (size_t i = 0; i < forest_.num_shards(); ++i) {
      Shard<D>& s = forest_.shard(i);
      const std::vector<uint32_t>& lg = s.live_gids();
      std::vector<double> cd_local(lg.size());
      for (size_t l = 0; l < lg.size(); ++l) {
        cd_local[l] = core[DenseOf(lg[l])];
      }
      std::vector<WeightedEdge> edges = HdbscanMstOnTree(s.tree(), cd_local);
      for (WeightedEdge& e : edges) {
        e.u = lg[e.u];
        e.v = lg[e.v];
      }
      candidates.insert(candidates.end(), edges.begin(), edges.end());
    }
    for (size_t i = 0; i < forest_.num_shards(); ++i) {
      for (size_t j = i + 1; j < forest_.num_shards(); ++j) {
        std::vector<WeightedEdge> edges =
            CrossHdbscanCandidates(forest_.shard(i), forest_.shard(j));
        candidates.insert(candidates.end(), edges.begin(), edges.end());
      }
    }
    ToDense(candidates);
    std::vector<WeightedEdge> mst = KruskalMst(n, std::move(candidates));
    PARHC_CHECK_MSG(mst.size() + 1 == n,
                    "shard MR-MST candidates did not span all points");
    for (WeightedEdge& e : mst) {
      e.u = (*ids_dense_)[e.u];
      e.v = (*ids_dense_)[e.v];
    }
    return mst;
  }

  /// Same contract as DatasetArtifacts::Answer.
  bool Answer(const EngineRequest& req, bool allow_build,
              EngineResponse* out) {
    if (forest_.live_count() == 0) {
      out->error = "dataset is empty";
      return true;
    }
    switch (req.type) {
      case QueryType::kEmst:
      case QueryType::kSingleLinkage:
        return AnswerEmstFamily(req, allow_build, out);
      case QueryType::kHdbscan:
      case QueryType::kDbscanStarAt:
      case QueryType::kReachability:
      case QueryType::kStableClusters:
        return AnswerHdbscanFamily(req, allow_build, out);
    }
    out->error = "unknown query type";
    return true;
  }

  /// Writes the forest (per-shard files: full point batches + tombstone
  /// bitmaps + cached shard EMSTs) plus the cached cross-edge tier and the
  /// manifest into `dir`. Read-only — no lazy artifact builds run — so it
  /// is safe under the engine's shared lock, concurrently with cache-hit
  /// queries. Raises SnapshotError subtypes.
  void SaveTo(const std::string& dir) const {
    EnsureDatasetDir(dir);
    DynamicManifest m;
    m.dim = D;
    m.live_count = forest_.live_count();
    m.next_gid = forest_.next_gid();
    m.next_uid = forest_.next_uid();
    m.next_content_id = forest_.next_content_id();
    for (size_t i = 0; i < forest_.num_shards(); ++i) {
      const Shard<D>& s = forest_.shard(i);
      ShardManifestEntry e;
      e.uid = s.uid();
      e.content_id = s.content_id();
      e.has_emst = s.has_emst();
      e.file = ShardFileName(i);
      SaveShardSnapshot(dir + "/" + e.file, s);
      m.shards.push_back(std::move(e));
    }
    // The cross cache may hold entries keyed by content ids that a
    // delete/merge has since retired (PurgeStaleCrossEdges only runs
    // inside EMST builds, and SaveTo is const). Snapshot only the live
    // pairs: a stale entry can reference tombstoned endpoints, which
    // LoadFrom would (rightly) reject.
    std::vector<uint64_t> live_cids;
    live_cids.reserve(m.shards.size());
    for (const ShardManifestEntry& e : m.shards) {
      live_cids.push_back(e.content_id);
    }
    std::sort(live_cids.begin(), live_cids.end());
    auto alive = [&](uint64_t cid) {
      return std::binary_search(live_cids.begin(), live_cids.end(), cid);
    };
    for (const auto& [key, edges] : cross_) {
      if (!alive(key.first) || !alive(key.second)) continue;
      CrossManifestEntry c;
      c.cid_a = key.first;
      c.cid_b = key.second;
      c.file = CrossFileName(key.first, key.second);
      SaveEdgesSnapshot(dir + "/" + c.file, edges, /*param=*/0);
      m.cross.push_back(std::move(c));
    }
    WriteDynamicManifest(dir + "/" + kManifestFileName, m);
  }

  /// Restores a default-constructed instance from a directory written by
  /// SaveTo: shard structure, tombstones, cached shard EMSTs and the
  /// cross-edge tier come back warm; the global tier (merged kNN rows,
  /// Kruskal results, dendrograms) rebuilds on first use. Raises
  /// SnapshotError subtypes; discard the instance on throw.
  void LoadFrom(const std::string& dir) {
    DynamicManifest m = ReadDynamicManifest(dir + "/" + kManifestFileName);
    if (m.dim != D) {
      throw SnapshotSchemaError(dir + ": manifest dimension " +
                                std::to_string(m.dim) + ", expected " +
                                std::to_string(D));
    }
    std::vector<std::unique_ptr<Shard<D>>> shards;
    std::unordered_set<uint64_t> uids;
    std::unordered_set<uint32_t> live_gids;
    uint64_t live = 0;
    for (const ShardManifestEntry& e : m.shards) {
      // Everything the forest's Restore CHECKs must be validated here
      // first: untrusted files raise, they never abort.
      if (e.uid >= m.next_uid || e.content_id >= m.next_content_id ||
          !uids.insert(e.uid).second) {
        throw SnapshotSchemaError(dir + ": shard identity out of range or " +
                                  "duplicated in manifest");
      }
      std::unique_ptr<Shard<D>> s =
          LoadShardSnapshot(dir + "/" + e.file, e, m.next_gid);
      for (uint32_t i = 0; i < s->gids().size(); ++i) {
        if (!s->dead(i) && !live_gids.insert(s->gids()[i]).second) {
          throw SnapshotFormatError(dir + ": live gid " +
                                    std::to_string(s->gids()[i]) +
                                    " appears in two shards");
        }
      }
      live += s->live_count();
      shards.push_back(std::move(s));
    }
    if (live != m.live_count) {
      throw SnapshotSchemaError(dir + ": live count disagrees with manifest");
    }
    forest_.Restore(std::move(shards), m.next_gid, m.next_uid,
                    m.next_content_id);
    for (const CrossManifestEntry& c : m.cross) {
      if (c.cid_a >= c.cid_b) {
        throw SnapshotSchemaError(dir +
                                  ": cross entry not in canonical order");
      }
      std::vector<WeightedEdge> edges =
          LoadEdgesSnapshot(dir + "/" + c.file, /*param=*/0, m.next_gid);
      for (const WeightedEdge& e : edges) {
        if (!forest_.IsLive(e.u) || !forest_.IsLive(e.v)) {
          throw SnapshotFormatError(dir + "/" + c.file +
                                    ": cross edge endpoint is not live");
        }
      }
      cross_.emplace(std::make_pair(c.cid_a, c.cid_b), std::move(edges));
    }
  }

 private:
  static constexpr uint64_t kNoEpoch = std::numeric_limits<uint64_t>::max();

  using HdbscanEntry = ClusteringEntry;

  void Touch(HdbscanEntry& e) { TouchClusteringEntry(e, clock_); }

  // --- shard snapshot IO (store) -----------------------------------------

  static void SaveShardSnapshot(const std::string& path, const Shard<D>& s) {
    SnapshotWriter w(SnapshotKind::kShard, D, s.total_count(), s.uid(),
                     s.content_id());
    w.AddSection(SectionId::kPointData, s.points().data(),
                 s.points().size());
    w.AddSection(SectionId::kShardGids, s.gids().data(), s.gids().size());
    w.AddSection(SectionId::kShardDead, s.dead_bitmap().data(),
                 s.dead_bitmap().size());
    if (s.has_emst()) {
      w.AddSection(SectionId::kEdgeData, s.cached_emst().data(),
                   s.cached_emst().size());
    }
    w.Write(path);
  }

  static std::unique_ptr<Shard<D>> LoadShardSnapshot(
      const std::string& path, const ShardManifestEntry& me,
      uint32_t next_gid) {
    SnapshotFile f(path);
    f.ExpectKind(SnapshotKind::kShard, D);
    if (f.param() != me.uid || f.aux() != me.content_id) {
      throw SnapshotSchemaError(path +
                                ": shard identity disagrees with manifest");
    }
    uint64_t n = f.count();
    if (n < 1) throw SnapshotSchemaError(path + ": empty shard");
    Span<const Point<D>> pts = f.section<Point<D>>(SectionId::kPointData);
    Span<const uint32_t> gids = f.section<uint32_t>(SectionId::kShardGids);
    Span<const uint8_t> dead = f.section<uint8_t>(SectionId::kShardDead);
    store_internal::RequireSectionSize(f, pts.size(), n, "shard points");
    store_internal::RequireSectionSize(f, gids.size(), n, "shard gids");
    store_internal::RequireSectionSize(f, dead.size(), n, "shard tombstones");
    size_t live = 0;
    for (uint64_t i = 0; i < n; ++i) {
      if (gids[i] >= next_gid || (i > 0 && gids[i - 1] >= gids[i])) {
        throw SnapshotFormatError(path +
                                  ": shard gids not ascending below next_gid");
      }
      live += dead[i] == 0;
    }
    if (live == 0) {
      throw SnapshotSchemaError(path + ": shard has no live points");
    }
    std::vector<WeightedEdge> emst;
    if (me.has_emst) {
      // The shard's cached EMST is an embedded section, in gid space over
      // the live points; reject endpoints this shard does not own (a
      // crafted or misfiled snapshot), which downstream candidate merging
      // would index by.
      Span<const WeightedEdge> edata =
          f.section<WeightedEdge>(SectionId::kEdgeData);
      emst.assign(edata.begin(), edata.end());
      auto owns_live = [&](uint32_t gid) {
        const uint32_t* it =
            std::lower_bound(gids.begin(), gids.end(), gid);
        return it != gids.end() && *it == gid &&
               dead[it - gids.begin()] == 0;
      };
      for (const WeightedEdge& e : emst) {
        if (!owns_live(e.u) || !owns_live(e.v)) {
          throw SnapshotFormatError(path +
                                    ": shard EMST endpoint not live here");
        }
      }
    }
    return std::make_unique<Shard<D>>(
        me.uid, me.content_id, std::vector<Point<D>>(pts.begin(), pts.end()),
        std::vector<uint32_t>(gids.begin(), gids.end()),
        std::vector<uint8_t>(dead.begin(), dead.end()), std::move(emst),
        me.has_emst);
  }

  void InvalidateGlobalTier() {
    emst_epoch_ = kNoEpoch;
    emst_mst_.reset();
    emst_dendro_.reset();
    hdbscan_.clear();
    core_.clear();
    ids_dense_.reset();
    dense_of_gid_.clear();
  }

  // --- dense <-> gid mapping (global tier) -------------------------------

  void EnsureDense() {
    if (ids_dense_ && dense_epoch_ == forest_.epoch()) return;
    auto ids =
        std::make_shared<const std::vector<uint32_t>>(forest_.LiveGids());
    // Hash map keyed by live gid only: like the forest's locator, the
    // dense mapping is O(live points), not O(historical gid space).
    dense_of_gid_.clear();
    dense_of_gid_.reserve(ids->size());
    for (uint32_t i = 0; i < ids->size(); ++i) {
      dense_of_gid_.emplace((*ids)[i], i);
    }
    ids_dense_ = std::move(ids);
    dense_epoch_ = forest_.epoch();
  }

  /// Dense index of a live gid (EnsureDense must be current).
  uint32_t DenseOf(uint32_t gid) const {
    auto it = dense_of_gid_.find(gid);
    PARHC_DCHECK(it != dense_of_gid_.end());
    return it->second;
  }

  /// Remaps gid-space edges to dense indices in place. Concurrent
  /// const-only hash lookups are safe.
  void ToDense(std::vector<WeightedEdge>& edges) const {
    ParallelFor(0, edges.size(), [&](size_t i) {
      edges[i].u = DenseOf(edges[i].u);
      edges[i].v = DenseOf(edges[i].v);
    });
  }

  // --- cross candidate edges (cross tier) --------------------------------

  /// Cross candidates between two shards: one closest-pair edge (from
  /// `bccp(ta, tb, a, b, ida, idb)`) per well-separated cross pair
  /// (s = 2), in gid space.
  template <typename BccpFn>
  static std::vector<WeightedEdge> CrossCandidates(Shard<D>& sa,
                                                   Shard<D>& sb,
                                                   const BccpFn& bccp) {
    KdTree<D>& ta = sa.tree();
    KdTree<D>& tb = sb.tree();
    const std::vector<uint32_t>& ga = sa.live_gids();
    const std::vector<uint32_t>& gb = sb.live_gids();
    auto ida = [&](uint32_t i) { return ga[i]; };
    auto idb = [&](uint32_t j) { return gb[j]; };
    std::vector<std::vector<WeightedEdge>> local(NumWorkers());
    CrossDualTraverse(
        ta, tb, [](uint32_t, uint32_t) { return false; },
        [&](uint32_t a, uint32_t b) {
          return WellSeparated(ta.NodeBox(a), tb.NodeBox(b), 2.0);
        },
        [&](uint32_t a, uint32_t b, bool /*separated*/) {
          ClosestPair cp = bccp(ta, tb, a, b, ida, idb);
          local[Scheduler::Get().MyId()].push_back({cp.u, cp.v, cp.dist});
        });
    return Flatten(local);
  }

  /// Euclidean cross candidates (cross BCCP).
  static std::vector<WeightedEdge> CrossEmstCandidates(Shard<D>& sa,
                                                       Shard<D>& sb) {
    return CrossCandidates(
        sa, sb,
        [](KdTree<D>& ta, KdTree<D>& tb, uint32_t a, uint32_t b,
           const auto& ida, const auto& idb) {
          return CrossBccp(ta, tb, a, b, ida, idb);
        });
  }

  /// Mutual-reachability cross candidates (cross BCCP*). Both shard trees
  /// must already be annotated with the current global core distances. Not
  /// cached: the weights change with every core-distance epoch, unlike the
  /// Euclidean cross tier.
  static std::vector<WeightedEdge> CrossHdbscanCandidates(Shard<D>& sa,
                                                          Shard<D>& sb) {
    return CrossCandidates(
        sa, sb,
        [](KdTree<D>& ta, KdTree<D>& tb, uint32_t a, uint32_t b,
           const auto& ida, const auto& idb) {
          return CrossBccpStar(ta, tb, a, b, ida, idb);
        });
  }

  /// Drops cross-tier cache entries that mention a content id no longer in
  /// the forest (the shard was merged, compacted, or tombstoned).
  void PurgeStaleCrossEdges() {
    std::vector<uint64_t> cids;
    cids.reserve(forest_.num_shards());
    for (size_t i = 0; i < forest_.num_shards(); ++i) {
      cids.push_back(forest_.shard(i).content_id());
    }
    std::sort(cids.begin(), cids.end());
    auto alive = [&](uint64_t c) {
      return std::binary_search(cids.begin(), cids.end(), c);
    };
    for (auto it = cross_.begin(); it != cross_.end();) {
      if (!alive(it->first.first) || !alive(it->first.second)) {
        it = cross_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // --- EMST family -------------------------------------------------------

  bool EnsureEmst(bool allow_build, EngineResponse* out) {
    if (emst_mst_ && emst_epoch_ == forest_.epoch()) {
      TraceArtifact(out, /*built=*/false, "forest-emst");
      return true;
    }
    if (!allow_build) return false;
    EnsureDense();
    PurgeStaleCrossEdges();
    std::vector<WeightedEdge> candidates;
    for (size_t i = 0; i < forest_.num_shards(); ++i) {
      Shard<D>& s = forest_.shard(i);
      bool had = s.has_emst();
      const std::vector<WeightedEdge>& edges = s.EmstEdges();
      TraceArtifact(out, !had, "semst@" + std::to_string(s.content_id()));
      candidates.insert(candidates.end(), edges.begin(), edges.end());
    }
    for (size_t i = 0; i < forest_.num_shards(); ++i) {
      for (size_t j = i + 1; j < forest_.num_shards(); ++j) {
        Shard<D>& sa = forest_.shard(i);
        Shard<D>& sb = forest_.shard(j);
        // Materialize into a value pair: std::minmax over the returned
        // temporaries would yield a pair of dangling references.
        std::pair<uint64_t, uint64_t> key{
            std::min(sa.content_id(), sb.content_id()),
            std::max(sa.content_id(), sb.content_id())};
        std::string trace_key = "xemst@" + std::to_string(key.first) + "-" +
                                std::to_string(key.second);
        auto it = cross_.find(key);
        if (it == cross_.end()) {
          it = cross_.emplace(key, CrossEmstCandidates(sa, sb)).first;
          TraceArtifact(out, /*built=*/true, trace_key);
        } else {
          TraceArtifact(out, /*built=*/false, trace_key);
        }
        candidates.insert(candidates.end(), it->second.begin(),
                          it->second.end());
      }
    }
    ToDense(candidates);
    size_t n = forest_.live_count();
    std::vector<WeightedEdge> mst = KruskalMst(n, std::move(candidates));
    PARHC_CHECK_MSG(mst.size() + 1 == n,
                    "shard-forest EMST candidates did not span all points");
    emst_weight_ = TotalEdgeWeight(mst);
    emst_mst_ =
        std::make_shared<const std::vector<WeightedEdge>>(std::move(mst));
    emst_dendro_.reset();
    emst_epoch_ = forest_.epoch();
    TraceArtifact(out, /*built=*/true, "forest-emst");
    return true;
  }

  bool AnswerEmstFamily(const EngineRequest& req, bool allow_build,
                        EngineResponse* out) {
    if (req.type == QueryType::kEmst && req.emst_eps >= 0) {
      // The eps path builds private k-means partition trees over an
      // immutable point set; the shard forest already maintains its own
      // incremental decomposition, so the knob applies to static datasets.
      out->error = "eps EMST is supported on static datasets only";
      return true;
    }
    bool need_dendro = req.type == QueryType::kSingleLinkage;
    if (need_dendro && (req.k < 1 || req.k > forest_.live_count())) {
      out->error = "k must be in [1, n]";
      return true;
    }
    if (!EnsureEmst(allow_build, out)) return false;
    if (need_dendro) {
      if (!emst_dendro_) {
        if (!allow_build) return false;
        emst_dendro_ = BuildDendrogramArtifact(forest_.live_count(),
                                               *emst_mst_);
        TraceArtifact(out, /*built=*/true, "sl-dendro");
      } else {
        TraceArtifact(out, /*built=*/false, "sl-dendro");
      }
    }
    out->mst = emst_mst_;
    out->mst_weight = emst_weight_;
    out->point_ids = ids_dense_;
    if (need_dendro) {
      out->dendrogram = emst_dendro_;
      out->labels = KClusters(*emst_dendro_, req.k);
      SummarizeLabels(out->labels, out);
    }
    out->ok = true;
    return true;
  }

  // --- HDBSCAN* family ---------------------------------------------------

  /// Multi-shard kNN merge: rebuilds the global rows at width K (>= the
  /// requested k, clamped to n) by querying every shard's tree into one
  /// bounded heap per point. Rows are indexed *densely* (position i = the
  /// i-th live gid ascending) and hold the sorted squared distances to the
  /// K global nearest neighbors (self included), so memory tracks the live
  /// count, not the ever-growing gid space. Dense row indices stay valid
  /// across inserts — new gids always sort after every existing one — and
  /// deletes invalidate the rows wholesale.
  bool EnsureKnn(size_t k, bool allow_build, EngineResponse* out) {
    if (knn_valid_ && knn_k_ >= k) {
      TraceArtifact(out, /*built=*/false, "knn@" + std::to_string(knn_k_));
      return true;
    }
    if (!allow_build) return false;
    size_t n = forest_.live_count();
    size_t K = std::min(std::max(k, knn_k_), n);
    for (size_t s = 0; s < forest_.num_shards(); ++s) {
      forest_.shard(s).tree();  // build outside the parallel loop
    }
    std::vector<uint32_t> gids = forest_.LiveGids();
    knn_sq_.assign(n * K, 0.0);
    std::vector<std::vector<std::pair<double, uint32_t>>> scratch(
        NumWorkers());
    ParallelFor(0, gids.size(), [&](size_t idx) {
      auto& buf = scratch[Scheduler::Get().MyId()];
      if (buf.size() < K) buf.resize(K);
      internal::KnnHeap heap(K, buf.data());
      const Point<D>& q = forest_.PointOf(gids[idx]);
      for (size_t s = 0; s < forest_.num_shards(); ++s) {
        internal::KnnQueryInto(forest_.shard(s).tree(), q, heap);
      }
      PARHC_DCHECK(heap.size() == K);
      std::sort(buf.data(), buf.data() + K);
      double* row = knn_sq_.data() + idx * K;
      for (size_t t = 0; t < K; ++t) row[t] = buf[t].first;
    });
    knn_k_ = K;
    knn_valid_ = true;
    TraceArtifact(out, /*built=*/true, "knn@" + std::to_string(K));
    return true;
  }

  /// Incremental row maintenance for one insert batch, run *before* the
  /// forest mutation (so the shard set is the pre-insert one): every
  /// existing row merges the K best candidates from the batch's tree, and
  /// each batch point gets a fresh row by querying every shard plus the
  /// batch itself. Exact because the K smallest of (old forest U batch) is
  /// the K smallest of (old row U batch candidates).
  void UpdateKnnRowsForInsert(const std::vector<Point<D>>& batch) {
    const size_t K = knn_k_;
    KdTree<D> batch_tree(batch, /*leaf_size=*/1);
    for (size_t s = 0; s < forest_.num_shards(); ++s) {
      forest_.shard(s).tree();  // build outside the parallel loop
    }
    std::vector<uint32_t> old_gids = forest_.LiveGids();
    size_t old_n = old_gids.size();
    // New points extend the dense row range: their gids exceed every
    // existing gid, so existing rows keep their dense positions.
    knn_sq_.resize((old_n + batch.size()) * K, 0.0);
    struct Scratch {
      std::vector<std::pair<double, uint32_t>> heap;
      std::vector<double> merged;
    };
    std::vector<Scratch> scratch(NumWorkers());
    ParallelFor(0, old_n, [&](size_t idx) {
      Scratch& sc = scratch[Scheduler::Get().MyId()];
      if (sc.heap.size() < K) sc.heap.resize(K);
      if (sc.merged.size() < K) sc.merged.resize(K);
      internal::KnnHeap heap(K, sc.heap.data());
      internal::KnnQueryInto(batch_tree, forest_.PointOf(old_gids[idx]),
                             heap);
      size_t c = heap.size();
      std::sort(sc.heap.data(), sc.heap.data() + c);
      double* row = knn_sq_.data() + idx * K;
      size_t i = 0, j = 0;
      for (size_t t = 0; t < K; ++t) {
        sc.merged[t] = (j >= c || (i < K && row[i] <= sc.heap[j].first))
                           ? row[i++]
                           : sc.heap[j++].first;
      }
      std::copy(sc.merged.data(), sc.merged.data() + K, row);
    });
    ParallelFor(0, batch.size(), [&](size_t idx) {
      Scratch& sc = scratch[Scheduler::Get().MyId()];
      if (sc.heap.size() < K) sc.heap.resize(K);
      internal::KnnHeap heap(K, sc.heap.data());
      for (size_t s = 0; s < forest_.num_shards(); ++s) {
        internal::KnnQueryInto(forest_.shard(s).tree(), batch[idx], heap);
      }
      internal::KnnQueryInto(batch_tree, batch[idx], heap);
      PARHC_DCHECK(heap.size() == K);
      std::sort(sc.heap.data(), sc.heap.data() + K);
      double* row = knn_sq_.data() + (old_n + idx) * K;
      for (size_t t = 0; t < K; ++t) row[t] = sc.heap[t].first;
    });
  }

  /// Dense core distances for min_pts, derived from the kNN row columns.
  std::shared_ptr<const std::vector<double>> CoreDist(int min_pts,
                                                      bool allow_build,
                                                      EngineResponse* out) {
    const std::string key = "cd@" + std::to_string(min_pts);
    auto it = core_.find(min_pts);
    if (it != core_.end()) {
      TraceArtifact(out, /*built=*/false, key);
      return it->second;
    }
    if (!allow_build) return nullptr;
    if (!EnsureKnn(static_cast<size_t>(min_pts), allow_build, out)) {
      return nullptr;
    }
    EnsureDense();
    size_t n = forest_.live_count();
    size_t stride = knn_k_;
    auto cd = std::make_shared<std::vector<double>>(n);
    ParallelFor(0, n, [&](size_t i) {
      (*cd)[i] = std::sqrt(knn_sq_[i * stride + (min_pts - 1)]);
    });
    core_.emplace(min_pts, cd);
    TraceArtifact(out, /*built=*/true, key);
    return cd;
  }

  /// The per-minPts clustering entry: the exact MR-MST over the shard
  /// forest (per-shard MR-MSTs with global core distances + cross BCCP*
  /// candidates), plus dendrogram / reachability plot on demand.
  HdbscanEntry* Hdbscan(int min_pts, bool need_dendro, bool need_plot,
                        bool allow_build, EngineResponse* out) {
    const std::string suffix = "@" + std::to_string(min_pts);
    auto it = hdbscan_.find(min_pts);
    if (it == hdbscan_.end()) {
      if (!allow_build) return nullptr;
      auto cd = CoreDist(min_pts, allow_build, out);
      if (!cd) return nullptr;
      size_t n = forest_.live_count();
      std::vector<WeightedEdge> candidates;
      // Per-shard MR-MSTs, annotating every shard tree with the global
      // core distances (the annotations then serve the cross BCCP* pass).
      for (size_t i = 0; i < forest_.num_shards(); ++i) {
        Shard<D>& s = forest_.shard(i);
        const std::vector<uint32_t>& lg = s.live_gids();
        std::vector<double> cd_local(lg.size());
        for (size_t l = 0; l < lg.size(); ++l) {
          cd_local[l] = (*cd)[DenseOf(lg[l])];
        }
        std::vector<WeightedEdge> edges =
            HdbscanMstOnTree(s.tree(), cd_local);
        for (WeightedEdge& e : edges) {
          e.u = lg[e.u];
          e.v = lg[e.v];
        }
        candidates.insert(candidates.end(), edges.begin(), edges.end());
      }
      for (size_t i = 0; i < forest_.num_shards(); ++i) {
        for (size_t j = i + 1; j < forest_.num_shards(); ++j) {
          std::vector<WeightedEdge> edges = CrossHdbscanCandidates(
              forest_.shard(i), forest_.shard(j));
          candidates.insert(candidates.end(), edges.begin(), edges.end());
        }
      }
      ToDense(candidates);
      std::vector<WeightedEdge> mst = KruskalMst(n, std::move(candidates));
      PARHC_CHECK_MSG(mst.size() + 1 == n,
                      "shard-forest MR-MST candidates did not span");
      auto entry = std::make_unique<HdbscanEntry>();
      entry->core_dist = cd;
      entry->mst_weight = TotalEdgeWeight(mst);
      entry->mst =
          std::make_shared<const std::vector<WeightedEdge>>(std::move(mst));
      TraceArtifact(out, /*built=*/true, "mst" + suffix);
      it = hdbscan_.emplace(min_pts, std::move(entry)).first;
      EvictLru(min_pts);
    } else {
      TraceArtifact(out, /*built=*/false, "mst" + suffix);
    }
    HdbscanEntry& e = *it->second;
    if (need_dendro || need_plot) {
      if (!e.dendrogram) {
        if (!allow_build) return nullptr;
        e.dendrogram = BuildDendrogramArtifact(forest_.live_count(), *e.mst);
        TraceArtifact(out, /*built=*/true, "dendro" + suffix);
      } else {
        TraceArtifact(out, /*built=*/false, "dendro" + suffix);
      }
    }
    if (need_plot) {
      if (!e.plot) {
        if (!allow_build) return nullptr;
        e.plot = std::make_shared<const ReachabilityPlot>(
            ComputeReachability(*e.dendrogram));
        TraceArtifact(out, /*built=*/true, "reach" + suffix);
      } else {
        TraceArtifact(out, /*built=*/false, "reach" + suffix);
      }
    }
    Touch(e);
    return &e;
  }

  void EvictLru(int keep_min_pts) {
    EvictLruClusterings(hdbscan_, core_, keep_min_pts);
  }

  bool AnswerHdbscanFamily(const EngineRequest& req, bool allow_build,
                           EngineResponse* out) {
    if (req.min_pts < 1 ||
        static_cast<size_t>(req.min_pts) > forest_.live_count()) {
      out->error = "min_pts must be in [1, n]";
      return true;
    }
    if (req.type == QueryType::kStableClusters && req.min_cluster_size < 2) {
      out->error = "min_cluster_size must be >= 2";
      return true;
    }
    bool need_plot = req.type == QueryType::kReachability;
    HdbscanEntry* e =
        Hdbscan(req.min_pts, /*need_dendro=*/true, need_plot, allow_build,
                out);
    if (!e) return false;
    out->core_dist = e->core_dist;
    out->point_ids = ids_dense_;
    switch (req.type) {
      case QueryType::kHdbscan:
        out->mst = e->mst;
        out->mst_weight = e->mst_weight;
        out->dendrogram = e->dendrogram;
        break;
      case QueryType::kDbscanStarAt:
        out->labels = DbscanStarLabels(*e->dendrogram, *e->core_dist, req.eps);
        SummarizeLabels(out->labels, out);
        break;
      case QueryType::kReachability:
        out->plot = e->plot;
        break;
      case QueryType::kStableClusters: {
        StabilityClusters sc =
            ExtractStableClusters(*e->dendrogram, req.min_cluster_size);
        out->labels = std::move(sc.label);
        out->stability = std::move(sc.stability);
        SummarizeLabels(out->labels, out);
        break;
      }
      default:
        break;
    }
    out->ok = true;
    return true;
  }

  ShardForest<D> forest_;

  // Global tier: dense mapping (compacting: keyed by live gids only).
  std::shared_ptr<const std::vector<uint32_t>> ids_dense_;
  std::unordered_map<uint32_t, uint32_t> dense_of_gid_;
  uint64_t dense_epoch_ = kNoEpoch;

  // Cross tier: Euclidean candidates per content-id pair.
  std::map<std::pair<uint64_t, uint64_t>, std::vector<WeightedEdge>> cross_;

  // Global tier: EMST.
  std::shared_ptr<const std::vector<WeightedEdge>> emst_mst_;
  double emst_weight_ = 0;
  std::shared_ptr<const Dendrogram> emst_dendro_;
  uint64_t emst_epoch_ = kNoEpoch;

  // Global tier: merged kNN rows (squared distances, row i = i-th live gid
  // ascending — see EnsureKnn for why dense indices survive inserts).
  std::vector<double> knn_sq_;
  size_t knn_k_ = 0;
  bool knn_valid_ = false;

  std::map<int, std::shared_ptr<const std::vector<double>>> core_;
  std::map<int, std::unique_ptr<HdbscanEntry>> hdbscan_;
  std::atomic<uint64_t> clock_{0};
};

}  // namespace parhc
