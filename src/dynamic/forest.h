// LSM/Bkd-style logarithmic shard forest: the point store of the
// batch-dynamic dataset backend (src/dynamic/).
//
// Points live in immutable shards (shard.h). InsertBatch creates one new
// shard from the batch and then runs the geometric merge cascade: whenever
// two shards fall in the same size class (floor log2 of live count), they
// are merged into one — the classical Bentley–Saxe logarithmic method, so
// at most O(log n) shards exist and every point is re-merged O(log n)
// times over its lifetime. DeleteBatch tombstones points in place through a
// gid locator; a shard whose dead fraction passes kCompactDeadFraction is
// compacted (its survivors re-enter the forest as a fresh shard, which may
// itself cascade into merges).
//
// Global ids are assigned sequentially at insertion and never reused. The
// locator maps gid -> (shard uid, local index); tombstoning moves no
// points, so locator entries stay valid until a merge or compaction
// relocates the survivors.
//
// `epoch()` counts mutations: any artifact derived from the whole forest
// (the global EMST, merged kNN rows, per-minPts clusterings) is tagged with
// the epoch it was built at and is stale whenever the tags differ. Per-
// shard and per-shard-pair artifacts instead key on shard content ids,
// which survive mutations that leave the shard untouched — this is the
// shard-aware half of the invalidation model (engine/artifacts.h).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dynamic/shard.h"

namespace parhc {

/// Dead fraction beyond which DeleteBatch compacts a shard.
inline constexpr double kCompactDeadFraction = 0.25;

template <int D>
class ShardForest {
 public:
  size_t live_count() const { return live_count_; }
  size_t num_shards() const { return shards_.size(); }
  /// Mutation counter: bumped by every effective InsertBatch / DeleteBatch.
  uint64_t epoch() const { return epoch_; }
  /// One past the largest assigned gid.
  uint32_t next_gid() const { return static_cast<uint32_t>(loc_.size()); }

  Shard<D>& shard(size_t i) { return *shards_[i]; }
  const Shard<D>& shard(size_t i) const { return *shards_[i]; }

  /// Inserts one batch as a new shard and runs the merge cascade. Returns
  /// the first assigned gid (the batch gets [first, first + n)).
  uint32_t InsertBatch(std::vector<Point<D>> pts) {
    PARHC_CHECK_MSG(!pts.empty(), "insert batch must be non-empty");
    uint32_t first = next_gid();
    PARHC_CHECK_MSG(loc_.size() + pts.size() <=
                        std::numeric_limits<uint32_t>::max(),
                    "global id space exhausted");
    std::vector<uint32_t> gids(pts.size());
    for (size_t i = 0; i < gids.size(); ++i) {
      gids[i] = first + static_cast<uint32_t>(i);
    }
    loc_.resize(loc_.size() + pts.size());
    live_count_ += pts.size();
    AddShard(std::move(pts), std::move(gids));
    MergeCascade();
    ++epoch_;
    return first;
  }

  /// Tombstones the given gids (unknown or already-dead gids are skipped),
  /// compacting any shard that passes the dead-fraction threshold. Returns
  /// the number of points actually deleted.
  size_t DeleteBatch(const std::vector<uint32_t>& gids) {
    size_t deleted = 0;
    std::vector<size_t> dirty;  // slots whose live set changed
    for (uint32_t gid : gids) {
      if (gid >= loc_.size()) continue;
      Loc loc = loc_[gid];
      if (loc.uid == kNoShard) continue;
      auto it = slot_of_uid_.find(loc.uid);
      PARHC_DCHECK(it != slot_of_uid_.end());
      Shard<D>& s = *shards_[it->second];
      if (s.Tombstone(loc.local, next_content_id_++)) {
        loc_[gid].uid = kNoShard;
        --live_count_;
        ++deleted;
        dirty.push_back(it->second);
      }
    }
    if (deleted == 0) return 0;
    // Compact dirty shards past the threshold, highest slot first so the
    // swap-removes in RemoveShard don't disturb pending slots.
    std::sort(dirty.begin(), dirty.end());
    dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
    bool structural = false;
    for (size_t i = dirty.size(); i-- > 0;) {
      size_t slot = dirty[i];
      Shard<D>& s = *shards_[slot];
      if (s.dead_fraction() <= kCompactDeadFraction && s.live_count() > 0) {
        continue;
      }
      auto live = shards_[slot]->TakeLive();
      RemoveShard(slot);
      if (!live.first.empty()) {
        AddShard(std::move(live.first), std::move(live.second));
      }
      structural = true;
    }
    if (structural) MergeCascade();
    ++epoch_;
    return deleted;
  }

  bool IsLive(uint32_t gid) const {
    return gid < loc_.size() && loc_[gid].uid != kNoShard;
  }

  /// The point with global id `gid` (must be live).
  const Point<D>& PointOf(uint32_t gid) const {
    PARHC_CHECK(IsLive(gid));
    const Loc& loc = loc_[gid];
    return shards_[slot_of_uid_.at(loc.uid)]->points()[loc.local];
  }

  /// All live gids, ascending.
  std::vector<uint32_t> LiveGids() const {
    std::vector<uint32_t> out;
    out.reserve(live_count_);
    for (uint32_t gid = 0; gid < loc_.size(); ++gid) {
      if (loc_[gid].uid != kNoShard) out.push_back(gid);
    }
    return out;
  }

 private:
  static constexpr uint64_t kNoShard = std::numeric_limits<uint64_t>::max();

  struct Loc {
    uint64_t uid = kNoShard;
    uint32_t local = 0;
  };

  void AddShard(std::vector<Point<D>> pts, std::vector<uint32_t> gids) {
    uint64_t uid = next_uid_++;
    auto s = std::make_unique<Shard<D>>(uid, next_content_id_++,
                                        std::move(pts), std::move(gids));
    for (uint32_t i = 0; i < s->gids().size(); ++i) {
      loc_[s->gids()[i]] = {uid, i};
    }
    slot_of_uid_[uid] = shards_.size();
    shards_.push_back(std::move(s));
  }

  void RemoveShard(size_t slot) {
    slot_of_uid_.erase(shards_[slot]->uid());
    if (slot + 1 != shards_.size()) {
      shards_[slot] = std::move(shards_.back());
      slot_of_uid_[shards_[slot]->uid()] = slot;
    }
    shards_.pop_back();
  }

  /// Bentley–Saxe: while two shards share a size class, merge them (a
  /// gid-ordered merge, preserving the ascending-gid shard invariant).
  void MergeCascade() {
    for (;;) {
      std::unordered_map<int, size_t> by_class;
      size_t a = shards_.size(), b = shards_.size();
      for (size_t i = 0; i < shards_.size(); ++i) {
        int cls = shards_[i]->size_class();
        auto [it, inserted] = by_class.emplace(cls, i);
        if (!inserted) {
          a = it->second;
          b = i;
          break;
        }
      }
      if (b == shards_.size()) return;
      auto la = shards_[a]->TakeLive();
      auto lb = shards_[b]->TakeLive();
      // Remove the higher slot first so the lower slot index stays valid.
      RemoveShard(std::max(a, b));
      RemoveShard(std::min(a, b));
      std::vector<Point<D>> pts;
      std::vector<uint32_t> gids;
      pts.reserve(la.first.size() + lb.first.size());
      gids.reserve(la.second.size() + lb.second.size());
      size_t i = 0, j = 0;
      while (i < la.second.size() || j < lb.second.size()) {
        bool take_a = j == lb.second.size() ||
                      (i < la.second.size() && la.second[i] < lb.second[j]);
        if (take_a) {
          pts.push_back(la.first[i]);
          gids.push_back(la.second[i]);
          ++i;
        } else {
          pts.push_back(lb.first[j]);
          gids.push_back(lb.second[j]);
          ++j;
        }
      }
      AddShard(std::move(pts), std::move(gids));
    }
  }

  std::vector<std::unique_ptr<Shard<D>>> shards_;
  std::unordered_map<uint64_t, size_t> slot_of_uid_;
  std::vector<Loc> loc_;  ///< indexed by gid
  size_t live_count_ = 0;
  uint64_t next_uid_ = 0;
  uint64_t next_content_id_ = 0;
  uint64_t epoch_ = 0;
};

}  // namespace parhc
