// LSM/Bkd-style logarithmic shard forest: the point store of the
// batch-dynamic dataset backend (src/dynamic/).
//
// Points live in immutable shards (shard.h). InsertBatch creates one new
// shard from the batch and then runs the geometric merge cascade: whenever
// two shards fall in the same size class (floor log2 of live count), they
// are merged into one — the classical Bentley–Saxe logarithmic method, so
// at most O(log n) shards exist and every point is re-merged O(log n)
// times over its lifetime. DeleteBatch tombstones points in place through a
// gid locator; a shard whose dead fraction passes kCompactDeadFraction is
// compacted (its survivors re-enter the forest as a fresh shard, which may
// itself cascade into merges).
//
// Global ids are assigned sequentially at insertion and never reused. The
// locator is a *compacting* hash map gid -> (shard uid, local index):
// tombstoning erases the entry, so the map (and every per-epoch scan over
// it, e.g. LiveGids) is O(live points), not O(historical gid space) — a
// churn-heavy long-running dataset stays bounded however many gids it has
// burned through. Tombstoning moves no points, so surviving entries stay
// valid until a merge or compaction relocates the survivors.
//
// `epoch()` counts mutations: any artifact derived from the whole forest
// (the global EMST, merged kNN rows, per-minPts clusterings) is tagged with
// the epoch it was built at and is stale whenever the tags differ. Per-
// shard and per-shard-pair artifacts instead key on shard content ids,
// which survive mutations that leave the shard untouched — this is the
// shard-aware half of the invalidation model (engine/artifacts.h).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dynamic/shard.h"

namespace parhc {

/// Dead fraction beyond which DeleteBatch compacts a shard.
inline constexpr double kCompactDeadFraction = 0.25;

template <int D>
class ShardForest {
 public:
  size_t live_count() const { return live_count_; }
  size_t num_shards() const { return shards_.size(); }
  /// Tombstoned (deleted but not yet compacted) points across all shards.
  size_t dead_count() const {
    size_t n = 0;
    for (const auto& s : shards_) n += s->dead_count();
    return n;
  }
  /// Mutation counter: bumped by every effective InsertBatch / DeleteBatch.
  uint64_t epoch() const { return epoch_; }
  /// One past the largest assigned gid.
  uint32_t next_gid() const { return next_gid_; }
  /// Gid-allocation cursors, persisted by the snapshot store so restored
  /// forests keep minting fresh uids / content ids.
  uint64_t next_uid() const { return next_uid_; }
  uint64_t next_content_id() const { return next_content_id_; }
  /// Live entries in the gid locator — O(live points) by construction
  /// (tombstones erase their entry); regression-tested against churn.
  size_t locator_size() const { return loc_.size(); }

  Shard<D>& shard(size_t i) { return *shards_[i]; }
  const Shard<D>& shard(size_t i) const { return *shards_[i]; }

  /// Inserts one batch as a new shard and runs the merge cascade. Returns
  /// the first assigned gid (the batch gets [first, first + n)).
  uint32_t InsertBatch(std::vector<Point<D>> pts) {
    PARHC_CHECK_MSG(!pts.empty(), "insert batch must be non-empty");
    uint32_t first = next_gid_;
    PARHC_CHECK_MSG(static_cast<uint64_t>(next_gid_) + pts.size() <=
                        std::numeric_limits<uint32_t>::max(),
                    "global id space exhausted");
    std::vector<uint32_t> gids(pts.size());
    for (size_t i = 0; i < gids.size(); ++i) {
      gids[i] = first + static_cast<uint32_t>(i);
    }
    next_gid_ += static_cast<uint32_t>(pts.size());
    live_count_ += pts.size();
    AddShard(std::move(pts), std::move(gids));
    MergeCascade();
    ++epoch_;
    return first;
  }

  /// Snapshot restore: replaces this (empty) forest with the given shards
  /// and allocation cursors, rebuilding the locator and live count. The
  /// store load path has already validated shard invariants (ascending
  /// unique gids below `next_gid`, unique uids below `next_uid`). No merge
  /// cascade runs — the saved shard structure is restored as-is.
  void Restore(std::vector<std::unique_ptr<Shard<D>>> shards,
               uint32_t next_gid, uint64_t next_uid,
               uint64_t next_content_id) {
    PARHC_CHECK_MSG(shards_.empty(), "Restore requires an empty forest");
    next_gid_ = next_gid;
    next_uid_ = next_uid;
    next_content_id_ = next_content_id;
    for (auto& s : shards) {
      PARHC_CHECK(s->uid() < next_uid_ && s->content_id() < next_content_id_);
      slot_of_uid_[s->uid()] = shards_.size();
      for (uint32_t i = 0; i < s->gids().size(); ++i) {
        if (s->dead(i)) continue;
        uint32_t gid = s->gids()[i];
        PARHC_CHECK(gid < next_gid_);
        auto [it, inserted] = loc_.emplace(gid, Loc{s->uid(), i});
        PARHC_CHECK_MSG(inserted, "duplicate live gid across shards");
        ++live_count_;
      }
      shards_.push_back(std::move(s));
    }
  }

  /// Tombstones the given gids (unknown or already-dead gids are skipped),
  /// compacting any shard that passes the dead-fraction threshold. Returns
  /// the number of points actually deleted.
  size_t DeleteBatch(const std::vector<uint32_t>& gids) {
    size_t deleted = 0;
    std::vector<size_t> dirty;  // slots whose live set changed
    for (uint32_t gid : gids) {
      auto lit = loc_.find(gid);  // absent = unknown or already dead
      if (lit == loc_.end()) continue;
      Loc loc = lit->second;
      auto it = slot_of_uid_.find(loc.uid);
      PARHC_DCHECK(it != slot_of_uid_.end());
      Shard<D>& s = *shards_[it->second];
      if (s.Tombstone(loc.local, next_content_id_++)) {
        loc_.erase(lit);  // compacting: dead gids leave the locator
        --live_count_;
        ++deleted;
        dirty.push_back(it->second);
      }
    }
    if (deleted == 0) return 0;
    // Compact dirty shards past the threshold, highest slot first so the
    // swap-removes in RemoveShard don't disturb pending slots.
    std::sort(dirty.begin(), dirty.end());
    dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
    bool structural = false;
    for (size_t i = dirty.size(); i-- > 0;) {
      size_t slot = dirty[i];
      Shard<D>& s = *shards_[slot];
      if (s.dead_fraction() <= kCompactDeadFraction && s.live_count() > 0) {
        continue;
      }
      auto live = shards_[slot]->TakeLive();
      RemoveShard(slot);
      if (!live.first.empty()) {
        AddShard(std::move(live.first), std::move(live.second));
      }
      structural = true;
    }
    if (structural) MergeCascade();
    ++epoch_;
    return deleted;
  }

  bool IsLive(uint32_t gid) const { return loc_.count(gid) != 0; }

  /// The point with global id `gid` (must be live).
  const Point<D>& PointOf(uint32_t gid) const {
    auto it = loc_.find(gid);
    PARHC_CHECK(it != loc_.end());
    const Loc& loc = it->second;
    return shards_[slot_of_uid_.at(loc.uid)]->points()[loc.local];
  }

  /// All live gids, ascending. O(live log live): the compacting locator
  /// holds exactly the live entries, independent of how many gids history
  /// has burned through.
  std::vector<uint32_t> LiveGids() const {
    std::vector<uint32_t> out;
    out.reserve(live_count_);
    for (const auto& [gid, loc] : loc_) out.push_back(gid);
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  struct Loc {
    uint64_t uid = 0;
    uint32_t local = 0;
  };

  void AddShard(std::vector<Point<D>> pts, std::vector<uint32_t> gids) {
    uint64_t uid = next_uid_++;
    auto s = std::make_unique<Shard<D>>(uid, next_content_id_++,
                                        std::move(pts), std::move(gids));
    for (uint32_t i = 0; i < s->gids().size(); ++i) {
      loc_[s->gids()[i]] = {uid, i};
    }
    slot_of_uid_[uid] = shards_.size();
    shards_.push_back(std::move(s));
  }

  void RemoveShard(size_t slot) {
    slot_of_uid_.erase(shards_[slot]->uid());
    if (slot + 1 != shards_.size()) {
      shards_[slot] = std::move(shards_.back());
      slot_of_uid_[shards_[slot]->uid()] = slot;
    }
    shards_.pop_back();
  }

  /// Bentley–Saxe: while two shards share a size class, merge them (a
  /// gid-ordered merge, preserving the ascending-gid shard invariant).
  void MergeCascade() {
    for (;;) {
      std::unordered_map<int, size_t> by_class;
      size_t a = shards_.size(), b = shards_.size();
      for (size_t i = 0; i < shards_.size(); ++i) {
        int cls = shards_[i]->size_class();
        auto [it, inserted] = by_class.emplace(cls, i);
        if (!inserted) {
          a = it->second;
          b = i;
          break;
        }
      }
      if (b == shards_.size()) return;
      auto la = shards_[a]->TakeLive();
      auto lb = shards_[b]->TakeLive();
      // Remove the higher slot first so the lower slot index stays valid.
      RemoveShard(std::max(a, b));
      RemoveShard(std::min(a, b));
      std::vector<Point<D>> pts;
      std::vector<uint32_t> gids;
      pts.reserve(la.first.size() + lb.first.size());
      gids.reserve(la.second.size() + lb.second.size());
      size_t i = 0, j = 0;
      while (i < la.second.size() || j < lb.second.size()) {
        bool take_a = j == lb.second.size() ||
                      (i < la.second.size() && la.second[i] < lb.second[j]);
        if (take_a) {
          pts.push_back(la.first[i]);
          gids.push_back(la.second[i]);
          ++i;
        } else {
          pts.push_back(lb.first[j]);
          gids.push_back(lb.second[j]);
          ++j;
        }
      }
      AddShard(std::move(pts), std::move(gids));
    }
  }

  std::vector<std::unique_ptr<Shard<D>>> shards_;
  std::unordered_map<uint64_t, size_t> slot_of_uid_;
  /// Compacting gid locator: holds exactly the live gids (tombstones
  /// erase), so per-epoch work over it is O(live points).
  std::unordered_map<uint32_t, Loc> loc_;
  uint32_t next_gid_ = 0;
  size_t live_count_ = 0;
  uint64_t next_uid_ = 0;
  uint64_t next_content_id_ = 0;
  uint64_t epoch_ = 0;
};

}  // namespace parhc
