// Whole-dataset manifests of the persistent artifact store.
//
// A saved dataset is a directory: one canonical-named snapshot file per
// artifact (points.phcs, tree.phcs, knn.phcs, mst@10.phcs, shard-0.phcs,
// ...) plus manifest.phcs, itself a snapshot file (kind = kManifest) whose
// single section is the byte stream serialized here. The manifest records
// which artifacts exist and the parameters tying them together — the kNN
// prefix width, the cached minPts set, the dynamic forest's shard table
// (uid / content id / cached-EMST flag per shard), gid-allocation cursors,
// and the cached cross-edge tier. Serialization is fully deterministic
// (sorted map iteration upstream, no timestamps), so save -> load -> save
// produces byte-identical manifests — the round-trip invariant the store
// tests pin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "store/snapshot.h"

namespace parhc {

inline constexpr char kManifestFileName[] = "manifest.phcs";

/// Canonical artifact file names inside a dataset directory.
inline std::string PointsFileName() { return "points.phcs"; }
inline std::string TreeFileName() { return "tree.phcs"; }
inline std::string KnnFileName() { return "knn.phcs"; }
inline std::string EmstFileName() { return "emst.phcs"; }
inline std::string SlDendroFileName() { return "sl-dendro.phcs"; }
inline std::string MstFileName(int min_pts) {
  return "mst@" + std::to_string(min_pts) + ".phcs";
}
inline std::string DendroFileName(int min_pts) {
  return "dendro@" + std::to_string(min_pts) + ".phcs";
}
inline std::string ShardFileName(size_t slot) {
  return "shard-" + std::to_string(slot) + ".phcs";
}
inline std::string CrossFileName(uint64_t cid_a, uint64_t cid_b) {
  return "cross-" + std::to_string(cid_a) + "-" + std::to_string(cid_b) +
         ".phcs";
}

/// Cheap probe of a manifest: enough to dispatch on backend and dimension
/// without parsing the payload.
struct ManifestInfo {
  bool dynamic = false;
  uint32_t dim = 0;
  uint64_t num_points = 0;  ///< live count for dynamic datasets
};

/// One cached per-minPts clustering in a static manifest.
struct ClusteringManifestEntry {
  uint32_t min_pts = 0;
  bool has_dendrogram = false;
  std::string mst_file;
  std::string dendro_file;  ///< empty when absent
};

/// Manifest of an immutable (static) dataset.
struct StaticManifest {
  uint32_t dim = 0;
  uint64_t n = 0;
  std::string points_file;
  std::string tree_file;       ///< empty when the tree was never built
  std::string knn_file;        ///< empty when no kNN pass ran
  uint64_t knn_k = 0;
  std::string emst_file;       ///< empty when the EMST was never built
  std::string sl_dendro_file;  ///< empty when absent
  std::vector<ClusteringManifestEntry> clusterings;  ///< ascending minPts
};

/// One shard of a dynamic manifest (saved in slot order).
struct ShardManifestEntry {
  uint64_t uid = 0;
  uint64_t content_id = 0;
  bool has_emst = false;  ///< shard file carries its cached EMST edges
  std::string file;
};

/// One cached cross-edge tier entry (content-id pair, ascending).
struct CrossManifestEntry {
  uint64_t cid_a = 0;
  uint64_t cid_b = 0;
  std::string file;
};

/// Manifest of a batch-dynamic (LSM shard forest) dataset.
struct DynamicManifest {
  uint32_t dim = 0;
  uint64_t live_count = 0;
  uint32_t next_gid = 0;
  uint64_t next_uid = 0;
  uint64_t next_content_id = 0;
  std::vector<ShardManifestEntry> shards;
  std::vector<CrossManifestEntry> cross;
};

/// Creates `dir` (and parents) if needed; raises SnapshotIoError when the
/// filesystem refuses.
void EnsureDatasetDir(const std::string& dir);

void WriteStaticManifest(const std::string& path, const StaticManifest& m);
void WriteDynamicManifest(const std::string& path, const DynamicManifest& m);

/// Reads only the manifest header (kind/dim/count), for dispatch.
ManifestInfo ReadManifestInfo(const std::string& path);

/// Full parses; raise SnapshotSchemaError when the manifest is for the
/// other backend kind.
StaticManifest ReadStaticManifest(const std::string& path);
DynamicManifest ReadDynamicManifest(const std::string& path);

}  // namespace parhc
