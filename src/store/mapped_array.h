// A read-only array that is either owned (a std::vector built in RAM) or
// a zero-copy view into a mapped snapshot file (plus the keepalive that
// pins the mapping). The engine's kNN sorted-prefix matrix uses this so a
// warm-started dataset serves core-distance derivations straight out of
// the page cache without materializing an n x K copy.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "store/span.h"

namespace parhc {

template <typename T>
class MappedArray {
 public:
  MappedArray() = default;

  /// Owned storage.
  MappedArray(std::vector<T> v)  // NOLINT — implicit by design
      : owned_(std::move(v)), view_(owned_.data(), owned_.size()) {}

  /// Zero-copy view; `keepalive` pins the backing mapping.
  MappedArray(Span<const T> view, std::shared_ptr<const void> keepalive)
      : view_(view), keepalive_(std::move(keepalive)) {}

  // Moves keep the view valid (a vector move transfers its heap buffer);
  // copies are deleted — they would alias or dangle the view.
  MappedArray(MappedArray&&) = default;
  MappedArray& operator=(MappedArray&&) = default;
  MappedArray(const MappedArray&) = delete;
  MappedArray& operator=(const MappedArray&) = delete;

  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  const T* data() const { return view_.data(); }
  const T& operator[](size_t i) const { return view_[i]; }

 private:
  std::vector<T> owned_;
  Span<const T> view_;
  std::shared_ptr<const void> keepalive_;
};

}  // namespace parhc
