// Minimal non-owning contiguous view, used by the persistent artifact
// store (src/store/) for zero-copy access to mmap-backed snapshot
// sections. Intentionally tiny (no std::span in C++17): just enough to
// iterate, index, and size-check a typed region of a mapped file.
#pragma once

#include <cstddef>

namespace parhc {

template <typename T>
class Span {
 public:
  Span() = default;
  Span(const T* data, size_t size) : data_(data), size_(size) {}

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace parhc
