// On-disk layout of the persistent artifact store (src/store/).
//
// Every artifact node of the engine's pipeline DAG — point sets, the flat
// uint32 SoA kd-tree arena, kNN sorted-prefix matrices, EMST / MR-MST edge
// lists, dendrograms, shard payloads, whole-dataset manifests — is one
// snapshot file:
//
//   SnapshotHeader           (56 bytes, little-endian)
//   SectionEntry[sections]   (32 bytes each)
//   payload sections         (each 8-byte aligned, in table order)
//
// The header carries magic, format version, artifact kind, dimension, and
// two kind-specific scalars (count / param, e.g. n and K for a kNN prefix
// matrix). `table_checksum` covers the header (with the checksum field
// zeroed) plus the whole section table; every section carries its own
// checksum over its payload bytes. Readers validate magic -> version ->
// table checksum -> bounds -> per-section checksums, raising the typed
// errors in errors.h — a corrupt, truncated, or version-skewed file can
// never abort the process or be silently served.
//
// All integers are little-endian; the store targets the little-endian
// hosts the rest of the system assumes (the same native-byte-order stance
// as data/io.h's point format, now made explicit in the header so a
// foreign byte order fails loudly instead of decoding garbage:
// kSnapshotMagic read on a big-endian host would not match).
#pragma once

#include <cstddef>
#include <cstdint>

namespace parhc {

/// "PHCS" little-endian.
inline constexpr uint32_t kSnapshotMagic = 0x53434850u;
/// Bumped on any incompatible layout change.
inline constexpr uint16_t kSnapshotVersion = 1;
/// Section payloads start on 8-byte boundaries (doubles stay aligned when
/// the file is mmapped).
inline constexpr size_t kSectionAlign = 8;

/// What one snapshot file stores (header `kind`).
enum class SnapshotKind : uint16_t {
  kPoints = 1,      ///< point set, original id order; count = n
  kKdTree = 2,      ///< flat arena + tree-order points; count = n,
                    ///< param = node count, aux = leaf size
  kKnnPrefix = 3,   ///< sorted-prefix distance matrix; count = n, param = K
  kEdgeList = 4,    ///< EMST / MR-MST edges; count = #edges, param = minPts
                    ///< (0 for the Euclidean MST)
  kDendrogram = 5,  ///< ordered dendrogram; count = n, param = minPts
                    ///< (0 for single-linkage)
  kShard = 6,       ///< dynamic shard payload; count = total points,
                    ///< param = shard uid, aux = content id
  kManifest = 7,    ///< whole-dataset manifest; count = live points
  kClusterMap = 8,  ///< router sharding map (cluster/placement.h);
                    ///< count = gid watermark, param = worker count
};

/// Section ids within a snapshot file (header table `id`).
enum class SectionId : uint32_t {
  kPointData = 1,    ///< Point<D>[count]
  kPointIds = 2,     ///< uint32[count] (tree order -> original id)
  kTreeLeft = 3,     ///< uint32[node_count] left child / leaf marker
  kTreeRange = 4,    ///< {uint32 begin, uint32 end}[node_count]
  kTreeBox = 5,      ///< Box<D>[node_count]
  kTreeDiameter = 6, ///< double[node_count]
  kMatrixData = 7,   ///< double[n * K] row-major
  kEdgeData = 8,     ///< WeightedEdge[count]
  kDendroLeft = 9,   ///< uint32[n - 1]
  kDendroRight = 10, ///< uint32[n - 1]
  kDendroHeight = 11,///< double[n - 1]
  kDendroRoot = 12,  ///< uint32[1]
  kShardGids = 13,   ///< uint32[count] global ids, ascending
  kShardDead = 14,   ///< uint8[count] tombstone bitmap
  kManifestData = 15,///< manifest byte stream (see manifest.h)
  kClusterOwner = 16,///< uint32[count] gid -> owning worker index
  kClusterLocal = 17,///< uint32[count] gid -> per-worker local gid
  kClusterDead = 18, ///< uint8[count] gid tombstone bitmap
};

#pragma pack(push, 1)
/// Fixed file header. Packed: the layout *is* the format, padding would
/// leak indeterminate bytes into files and checksums.
struct SnapshotHeader {
  uint32_t magic = kSnapshotMagic;
  uint16_t version = kSnapshotVersion;
  uint16_t kind = 0;      ///< SnapshotKind
  uint32_t dim = 0;       ///< point dimensionality (0 = not applicable)
  uint32_t sections = 0;  ///< section table length
  uint64_t count = 0;     ///< primary element count (kind-specific)
  uint64_t param = 0;     ///< kind-specific parameter (K, minPts, uid, ...)
  uint64_t aux = 0;       ///< second kind-specific parameter
  /// Exact file size in bytes. Makes *any* size deviation fatal —
  /// including truncation that only eats trailing alignment padding,
  /// which section bounds alone would not notice.
  uint64_t file_size = 0;
  uint64_t table_checksum = 0;  ///< header (this field zeroed) + table
};

/// One section table entry. `offset` is from the file start and 8-byte
/// aligned; `checksum` covers exactly [offset, offset + bytes).
struct SectionEntry {
  uint32_t id = 0;         ///< SectionId
  uint32_t elem_size = 0;  ///< bytes per element (sanity/versioning aid)
  uint64_t offset = 0;
  uint64_t bytes = 0;
  uint64_t checksum = 0;
};
#pragma pack(pop)

static_assert(sizeof(SnapshotHeader) == 56, "snapshot header layout");
static_assert(sizeof(SectionEntry) == 32, "section entry layout");

/// 64-bit content checksum over arbitrary bytes: an FNV-style multiply-xor
/// over 8-byte words with a byte-serial tail — not cryptographic, but it
/// reliably catches the store's failure modes (truncation, bit rot, torn
/// writes) at near-memcpy speed, unlike byte-serial FNV-1a.
uint64_t Checksum64(const void* data, size_t bytes);

}  // namespace parhc
