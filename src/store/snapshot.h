// Snapshot file reader/writer of the persistent artifact store.
//
// SnapshotWriter assembles a file from typed sections and writes it
// atomically (temp file + rename), computing the per-section and table
// checksums of format.h. SnapshotFile opens a file, validates it fully
// (magic, version, table checksum, section bounds, per-section checksums),
// and serves zero-copy typed Spans into the mmapped bytes; artifacts that
// adopt those spans keep the SnapshotFile alive through a shared_ptr. On
// platforms without mmap (or when mapping fails) the file is read into an
// anonymous buffer instead — same interface, one extra copy.
//
// ByteWriter/ByteReader build and parse the manifest's variable-length
// payload (length-prefixed strings, fixed-width little-endian integers);
// the reader raises SnapshotFormatError on any overrun instead of
// trusting the producer.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "store/errors.h"
#include "store/format.h"
#include "store/span.h"

namespace parhc {

/// A file mapped read-only into memory (or buffered when mmap is
/// unavailable). Movable handle; unmaps on destruction.
class MappedFile {
 public:
  /// Maps `path`; raises SnapshotIoError when it cannot be opened or
  /// mapped-or-read.
  static std::shared_ptr<const MappedFile> Open(const std::string& path);
  ~MappedFile();

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

 private:
  MappedFile() = default;

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;               ///< true: munmap; false: delete[]
};

/// One opened, fully-validated snapshot file.
class SnapshotFile {
 public:
  /// Opens and validates `path` end to end. Raises the typed errors of
  /// errors.h; on return every section checksum has been verified.
  explicit SnapshotFile(const std::string& path);

  const std::string& path() const { return path_; }
  SnapshotKind kind() const { return static_cast<SnapshotKind>(header_.kind); }
  uint32_t dim() const { return header_.dim; }
  uint64_t count() const { return header_.count; }
  uint64_t param() const { return header_.param; }
  uint64_t aux() const { return header_.aux; }

  /// Raises SnapshotSchemaError unless the header matches `kind` (and
  /// `dim`, when non-zero).
  void ExpectKind(SnapshotKind kind, uint32_t dim = 0) const;

  bool HasSection(SectionId id) const;

  /// Typed view of a section's payload. Raises SnapshotFormatError when
  /// the section is absent or its byte size is not a multiple of
  /// sizeof(T), SnapshotSchemaError when the recorded element size
  /// disagrees with T.
  template <typename T>
  Span<const T> section(SectionId id) const {
    const SectionEntry* e = FindSection(id);
    if (e == nullptr) {
      RaiseMissingSection(static_cast<uint32_t>(id));
    }
    if (e->elem_size != sizeof(T) || e->bytes % sizeof(T) != 0) {
      RaiseElemSizeMismatch(static_cast<uint32_t>(id), e->elem_size,
                            sizeof(T));
    }
    return Span<const T>(
        reinterpret_cast<const T*>(file_->data() + e->offset),
        e->bytes / sizeof(T));
  }

  /// The mapping backing every Span this file hands out; adopters hold it.
  std::shared_ptr<const MappedFile> mapping() const { return file_; }

 private:
  const SectionEntry* FindSection(SectionId id) const;
  [[noreturn]] void RaiseMissingSection(uint32_t id) const;
  [[noreturn]] void RaiseElemSizeMismatch(uint32_t id, uint32_t stored,
                                          size_t expected) const;

  std::string path_;
  std::shared_ptr<const MappedFile> file_;
  SnapshotHeader header_;
  std::vector<SectionEntry> table_;
};

/// Assembles one snapshot file. Section payloads must stay alive until
/// Write(); the writer copies nothing up front.
class SnapshotWriter {
 public:
  SnapshotWriter(SnapshotKind kind, uint32_t dim, uint64_t count,
                 uint64_t param = 0, uint64_t aux = 0);

  /// Adds one typed section (elem_size = sizeof(T)).
  template <typename T>
  void AddSection(SectionId id, const T* data, size_t n) {
    AddRawSection(id, data, n * sizeof(T), sizeof(T));
  }

  void AddRawSection(SectionId id, const void* data, size_t bytes,
                     uint32_t elem_size);

  /// Writes the file atomically (temp + rename). Raises SnapshotIoError
  /// on any filesystem failure.
  void Write(const std::string& path);

 private:
  SnapshotHeader header_;
  struct Pending {
    SectionEntry entry;
    const void* data;
  };
  std::vector<Pending> sections_;
};

/// Little-endian byte-stream builder for manifest payloads.
class ByteWriter {
 public:
  void U8(uint8_t v) { bytes_.push_back(v); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }

  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  void Raw(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    bytes_.insert(bytes_.end(), b, b + n);
  }

  std::vector<uint8_t> bytes_;
};

/// Bounds-checked reader over a manifest payload; raises
/// SnapshotFormatError on overrun instead of reading past the section.
class ByteReader {
 public:
  ByteReader(Span<const uint8_t> bytes, std::string context)
      : bytes_(bytes), context_(std::move(context)) {}

  uint8_t U8() {
    Need(1);
    return bytes_[pos_++];
  }
  uint32_t U32() {
    uint32_t v;
    Fixed(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v;
    Fixed(&v, sizeof(v));
    return v;
  }
  std::string Str() {
    uint32_t n = U32();
    Need(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  void Need(size_t n) {
    if (bytes_.size() - pos_ < n) {
      throw SnapshotFormatError(context_ + ": manifest payload truncated");
    }
  }
  void Fixed(void* out, size_t n) {
    Need(n);
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
  }

  Span<const uint8_t> bytes_;
  size_t pos_ = 0;
  std::string context_;
};

}  // namespace parhc
