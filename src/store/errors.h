// Typed errors of the persistent artifact store (src/store/).
//
// Everything a snapshot load can reject — unreadable files, truncation,
// foreign or corrupt bytes, format-version skew, schema mismatches (wrong
// artifact kind, unsupported dimension) — raises one of these, never a
// PARHC_CHECK abort: on the serving path a bad file on disk is an input
// error the caller reports, not a program invariant. All of them derive
// from SnapshotError, so callers that do not care about the distinction
// catch one type (the engine front-end turns them into error-string
// responses this way).
#pragma once

#include <stdexcept>
#include <string>

namespace parhc {

/// Base class of every snapshot load/save failure.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error(what) {}
};

/// The file cannot be opened, read, mapped, or written.
class SnapshotIoError : public SnapshotError {
 public:
  explicit SnapshotIoError(const std::string& what) : SnapshotError(what) {}
};

/// The bytes are not a well-formed snapshot: bad magic, truncated file,
/// section table out of bounds, malformed manifest payload.
class SnapshotFormatError : public SnapshotError {
 public:
  explicit SnapshotFormatError(const std::string& what)
      : SnapshotError(what) {}
};

/// The snapshot was written by an incompatible format version.
class SnapshotVersionError : public SnapshotError {
 public:
  explicit SnapshotVersionError(const std::string& what)
      : SnapshotError(what) {}
};

/// A section (or the header/table) checksum does not match its bytes.
class SnapshotChecksumError : public SnapshotError {
 public:
  explicit SnapshotChecksumError(const std::string& what)
      : SnapshotError(what) {}
};

/// The snapshot is well-formed but does not describe what the caller
/// asked for: wrong artifact kind, wrong or unsupported dimension, a
/// manifest referencing artifacts that violate the pipeline's invariants.
class SnapshotSchemaError : public SnapshotError {
 public:
  explicit SnapshotSchemaError(const std::string& what)
      : SnapshotError(what) {}
};

}  // namespace parhc
