#include "store/snapshot.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "store/manifest.h"

#if defined(__unix__) || defined(__APPLE__)
#define PARHC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace parhc {

uint64_t Checksum64(const void* data, size_t bytes) {
  // Word-at-a-time multiply-xor mix (FNV-1a's prime over uint64 lanes): a
  // flipped bit anywhere changes the result with overwhelming probability,
  // and the loop runs near memory bandwidth.
  constexpr uint64_t kPrime = 0x100000001b3ull;
  uint64_t h = 0xcbf29ce484222325ull ^ (static_cast<uint64_t>(bytes) * kPrime);
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t words = bytes / 8;
  for (size_t i = 0; i < words; ++i) {
    uint64_t w;
    std::memcpy(&w, p + i * 8, 8);
    h = (h ^ w) * kPrime;
    h ^= h >> 29;
  }
  for (size_t i = words * 8; i < bytes; ++i) {
    h = (h ^ p[i]) * kPrime;
  }
  h ^= h >> 32;
  return h;
}

// ---- MappedFile -----------------------------------------------------------

std::shared_ptr<const MappedFile> MappedFile::Open(const std::string& path) {
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
#if PARHC_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw SnapshotIoError(path + ": cannot open: " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    throw SnapshotIoError(path + ": cannot stat: " + std::strerror(err));
  }
  size_t size = static_cast<size_t>(st.st_size);
  if (size > 0) {
    void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p != MAP_FAILED) {
      file->data_ = static_cast<const uint8_t*>(p);
      file->size_ = size;
      file->mapped_ = true;
      ::close(fd);
      return file;
    }
  }
  ::close(fd);
  // Empty file, or mmap refused (e.g. an exotic filesystem): fall through
  // to the buffered path below — same interface, one extra copy.
#endif
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.good()) {
    throw SnapshotIoError(path + ": cannot open");
  }
  std::streamoff size2 = in.tellg();
  in.seekg(0);
  uint8_t* buf = new uint8_t[static_cast<size_t>(size2) + 1];  // +1: size 0
  in.read(reinterpret_cast<char*>(buf), size2);
  if (!in.good() && size2 > 0) {
    delete[] buf;
    throw SnapshotIoError(path + ": short read");
  }
  file->data_ = buf;
  file->size_ = static_cast<size_t>(size2);
  file->mapped_ = false;
  return file;
}

MappedFile::~MappedFile() {
#if PARHC_HAVE_MMAP
  if (mapped_) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
    return;
  }
#endif
  delete[] data_;
}

// ---- SnapshotFile ---------------------------------------------------------

namespace {

/// The header bytes with table_checksum zeroed, followed by the table —
/// what `table_checksum` is computed over (by writer and reader alike).
uint64_t TableChecksum(const SnapshotHeader& header,
                       const SectionEntry* table, size_t sections) {
  SnapshotHeader h = header;
  h.table_checksum = 0;
  std::vector<uint8_t> buf(sizeof(h) + sections * sizeof(SectionEntry));
  std::memcpy(buf.data(), &h, sizeof(h));
  if (sections > 0) {
    std::memcpy(buf.data() + sizeof(h), table,
                sections * sizeof(SectionEntry));
  }
  return Checksum64(buf.data(), buf.size());
}

}  // namespace

SnapshotFile::SnapshotFile(const std::string& path) : path_(path) {
  file_ = MappedFile::Open(path);
  if (file_->size() < sizeof(SnapshotHeader)) {
    throw SnapshotFormatError(path + ": truncated (no snapshot header)");
  }
  std::memcpy(&header_, file_->data(), sizeof(header_));
  if (header_.magic != kSnapshotMagic) {
    throw SnapshotFormatError(path + ": not a parhc snapshot file");
  }
  if (header_.version != kSnapshotVersion) {
    throw SnapshotVersionError(
        path + ": snapshot format version " +
        std::to_string(header_.version) + ", this build reads version " +
        std::to_string(kSnapshotVersion));
  }
  if (file_->size() != header_.file_size) {
    throw SnapshotFormatError(
        path + ": file is " + std::to_string(file_->size()) +
        " bytes, header says " + std::to_string(header_.file_size) +
        " (truncated or padded)");
  }
  size_t table_bytes =
      static_cast<size_t>(header_.sections) * sizeof(SectionEntry);
  if (file_->size() - sizeof(header_) < table_bytes) {
    throw SnapshotFormatError(path + ": truncated (section table)");
  }
  table_.resize(header_.sections);
  if (header_.sections > 0) {
    std::memcpy(table_.data(), file_->data() + sizeof(header_), table_bytes);
  }
  if (TableChecksum(header_, table_.data(), table_.size()) !=
      header_.table_checksum) {
    throw SnapshotChecksumError(path + ": header/table checksum mismatch");
  }
  // The table checksum vouches for the entries; bounds still need the
  // actual file size, and payload checksums need the payload bytes.
  for (const SectionEntry& e : table_) {
    if (e.offset % kSectionAlign != 0 || e.offset > file_->size() ||
        file_->size() - e.offset < e.bytes) {
      throw SnapshotFormatError(path + ": truncated (section " +
                                std::to_string(e.id) +
                                " exceeds file size)");
    }
    if (Checksum64(file_->data() + e.offset, e.bytes) != e.checksum) {
      throw SnapshotChecksumError(path + ": section " +
                                  std::to_string(e.id) +
                                  " checksum mismatch");
    }
  }
}

void SnapshotFile::ExpectKind(SnapshotKind kind, uint32_t dim) const {
  if (this->kind() != kind) {
    throw SnapshotSchemaError(
        path_ + ": snapshot kind " + std::to_string(header_.kind) +
        ", expected " + std::to_string(static_cast<uint16_t>(kind)));
  }
  if (dim != 0 && header_.dim != dim) {
    throw SnapshotSchemaError(path_ + ": snapshot dimension " +
                              std::to_string(header_.dim) + ", expected " +
                              std::to_string(dim));
  }
}

bool SnapshotFile::HasSection(SectionId id) const {
  return FindSection(id) != nullptr;
}

const SectionEntry* SnapshotFile::FindSection(SectionId id) const {
  for (const SectionEntry& e : table_) {
    if (e.id == static_cast<uint32_t>(id)) return &e;
  }
  return nullptr;
}

void SnapshotFile::RaiseMissingSection(uint32_t id) const {
  throw SnapshotFormatError(path_ + ": missing section " +
                            std::to_string(id));
}

void SnapshotFile::RaiseElemSizeMismatch(uint32_t id, uint32_t stored,
                                         size_t expected) const {
  throw SnapshotSchemaError(path_ + ": section " + std::to_string(id) +
                            " element size " + std::to_string(stored) +
                            ", expected " + std::to_string(expected));
}

// ---- SnapshotWriter -------------------------------------------------------

SnapshotWriter::SnapshotWriter(SnapshotKind kind, uint32_t dim,
                               uint64_t count, uint64_t param, uint64_t aux) {
  header_.kind = static_cast<uint16_t>(kind);
  header_.dim = dim;
  header_.count = count;
  header_.param = param;
  header_.aux = aux;
}

void SnapshotWriter::AddRawSection(SectionId id, const void* data,
                                   size_t bytes, uint32_t elem_size) {
  Pending p;
  p.entry.id = static_cast<uint32_t>(id);
  p.entry.elem_size = elem_size;
  p.entry.bytes = bytes;
  p.entry.checksum = Checksum64(data, bytes);
  p.data = data;
  sections_.push_back(p);
}

void SnapshotWriter::Write(const std::string& path) {
  header_.sections = static_cast<uint32_t>(sections_.size());
  uint64_t offset = sizeof(SnapshotHeader) +
                    sections_.size() * sizeof(SectionEntry);
  offset = (offset + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
  std::vector<SectionEntry> table;
  table.reserve(sections_.size());
  for (Pending& p : sections_) {
    p.entry.offset = offset;
    table.push_back(p.entry);
    offset += p.entry.bytes;
    offset = (offset + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
  }
  header_.file_size = offset;
  header_.table_checksum = TableChecksum(header_, table.data(), table.size());

  // Temp-then-rename so a crash mid-write never leaves a half snapshot
  // under the final name (loads would reject it anyway, but the rename
  // keeps any previous complete snapshot intact).
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      throw SnapshotIoError(tmp + ": cannot open for writing");
    }
    out.write(reinterpret_cast<const char*>(&header_), sizeof(header_));
    out.write(reinterpret_cast<const char*>(table.data()),
              static_cast<std::streamsize>(table.size() *
                                           sizeof(SectionEntry)));
    uint64_t pos = sizeof(SnapshotHeader) +
                   table.size() * sizeof(SectionEntry);
    static const char kZeros[kSectionAlign] = {0};
    for (size_t i = 0; i < sections_.size(); ++i) {
      uint64_t pad = table[i].offset - pos;
      out.write(kZeros, static_cast<std::streamsize>(pad));
      if (table[i].bytes > 0) {  // empty sections may carry a null pointer
        out.write(static_cast<const char*>(sections_[i].data),
                  static_cast<std::streamsize>(table[i].bytes));
      }
      pos = table[i].offset + table[i].bytes;
    }
    uint64_t tail = (pos + kSectionAlign - 1) / kSectionAlign *
                        kSectionAlign - pos;
    out.write(kZeros, static_cast<std::streamsize>(tail));
    // Close (flushing the filebuf) and re-check *before* the rename: a
    // flush error at close (e.g. disk full on the last buffered chunk)
    // must fail the save while the previous complete snapshot still sits
    // untouched under the final name.
    out.close();
    if (out.fail()) {
      std::remove(tmp.c_str());
      throw SnapshotIoError(tmp + ": write failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotIoError(path + ": rename failed: " + std::strerror(errno));
  }
}

// ---- Manifests ------------------------------------------------------------

namespace {

/// Manifest payload discriminator (header `param` and first payload byte).
constexpr uint8_t kManifestStatic = 0;
constexpr uint8_t kManifestDynamic = 1;

void WriteManifestPayload(const std::string& path, uint8_t backend,
                          uint32_t dim, uint64_t count,
                          const std::vector<uint8_t>& payload) {
  SnapshotWriter w(SnapshotKind::kManifest, dim, count, backend);
  w.AddRawSection(SectionId::kManifestData, payload.data(), payload.size(),
                  /*elem_size=*/1);
  w.Write(path);
}

/// Opens a manifest file and returns (reader over payload, backend kind).
/// The SnapshotFile is returned through `file` so the payload span stays
/// mapped while parsing.
/// Validates a manifest file-name field — the one untrusted string the
/// loaders join onto a filesystem path. Path separators and dot
/// components would let a crafted manifest read outside its snapshot
/// directory, so they are rejected outright.
std::string SafeFileName(const std::string& path, std::string name,
                         bool allow_empty) {
  if (name.empty()) {
    if (allow_empty) return name;
    throw SnapshotFormatError(path + ": empty artifact file name");
  }
  if (name.find('/') != std::string::npos ||
      name.find('\\') != std::string::npos || name == "." || name == "..") {
    throw SnapshotFormatError(path + ": unsafe artifact file name '" +
                              name + "'");
  }
  return name;
}

ByteReader OpenManifest(const std::string& path,
                        std::unique_ptr<SnapshotFile>* file,
                        uint8_t* backend) {
  file->reset(new SnapshotFile(path));
  (*file)->ExpectKind(SnapshotKind::kManifest);
  *backend = static_cast<uint8_t>((*file)->param());
  if (*backend != kManifestStatic && *backend != kManifestDynamic) {
    throw SnapshotSchemaError(path + ": unknown manifest backend kind " +
                              std::to_string((*file)->param()));
  }
  return ByteReader((*file)->section<uint8_t>(SectionId::kManifestData),
                    path);
}

}  // namespace

void EnsureDatasetDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw SnapshotIoError(dir + ": cannot create directory: " +
                          ec.message());
  }
}

void WriteStaticManifest(const std::string& path, const StaticManifest& m) {
  ByteWriter w;
  w.U8(kManifestStatic);
  w.U32(m.dim);
  w.U64(m.n);
  w.Str(m.points_file);
  w.Str(m.tree_file);
  w.Str(m.knn_file);
  w.U64(m.knn_k);
  w.Str(m.emst_file);
  w.Str(m.sl_dendro_file);
  w.U32(static_cast<uint32_t>(m.clusterings.size()));
  for (const ClusteringManifestEntry& c : m.clusterings) {
    w.U32(c.min_pts);
    w.U8(c.has_dendrogram ? 1 : 0);
    w.Str(c.mst_file);
    w.Str(c.dendro_file);
  }
  WriteManifestPayload(path, kManifestStatic, m.dim, m.n, w.bytes());
}

void WriteDynamicManifest(const std::string& path, const DynamicManifest& m) {
  ByteWriter w;
  w.U8(kManifestDynamic);
  w.U32(m.dim);
  w.U64(m.live_count);
  w.U32(m.next_gid);
  w.U64(m.next_uid);
  w.U64(m.next_content_id);
  w.U32(static_cast<uint32_t>(m.shards.size()));
  for (const ShardManifestEntry& s : m.shards) {
    w.U64(s.uid);
    w.U64(s.content_id);
    w.U8(s.has_emst ? 1 : 0);
    w.Str(s.file);
  }
  w.U32(static_cast<uint32_t>(m.cross.size()));
  for (const CrossManifestEntry& c : m.cross) {
    w.U64(c.cid_a);
    w.U64(c.cid_b);
    w.Str(c.file);
  }
  WriteManifestPayload(path, kManifestDynamic, m.dim, m.live_count,
                       w.bytes());
}

ManifestInfo ReadManifestInfo(const std::string& path) {
  SnapshotFile f(path);
  f.ExpectKind(SnapshotKind::kManifest);
  if (f.param() != kManifestStatic && f.param() != kManifestDynamic) {
    throw SnapshotSchemaError(path + ": unknown manifest backend kind " +
                              std::to_string(f.param()));
  }
  ManifestInfo info;
  info.dynamic = f.param() == kManifestDynamic;
  info.dim = f.dim();
  info.num_points = f.count();
  return info;
}

StaticManifest ReadStaticManifest(const std::string& path) {
  std::unique_ptr<SnapshotFile> file;
  uint8_t backend = 0;
  ByteReader r = OpenManifest(path, &file, &backend);
  if (backend != kManifestStatic || r.U8() != kManifestStatic) {
    throw SnapshotSchemaError(path +
                              ": not a static (immutable) dataset manifest");
  }
  StaticManifest m;
  m.dim = r.U32();
  m.n = r.U64();
  m.points_file = SafeFileName(path, r.Str(), /*allow_empty=*/false);
  m.tree_file = SafeFileName(path, r.Str(), /*allow_empty=*/true);
  m.knn_file = SafeFileName(path, r.Str(), /*allow_empty=*/true);
  m.knn_k = r.U64();
  m.emst_file = SafeFileName(path, r.Str(), /*allow_empty=*/true);
  m.sl_dendro_file = SafeFileName(path, r.Str(), /*allow_empty=*/true);
  uint32_t clusterings = r.U32();
  // Grow per parsed entry (not resize(count)): a corrupt count must hit
  // the reader's truncation error, not a giant allocation.
  for (uint32_t i = 0; i < clusterings; ++i) {
    ClusteringManifestEntry c;
    c.min_pts = r.U32();
    c.has_dendrogram = r.U8() != 0;
    c.mst_file = SafeFileName(path, r.Str(), /*allow_empty=*/false);
    c.dendro_file = SafeFileName(path, r.Str(), /*allow_empty=*/true);
    m.clusterings.push_back(std::move(c));
  }
  if (!r.AtEnd()) {
    throw SnapshotFormatError(path + ": trailing bytes after manifest");
  }
  return m;
}

DynamicManifest ReadDynamicManifest(const std::string& path) {
  std::unique_ptr<SnapshotFile> file;
  uint8_t backend = 0;
  ByteReader r = OpenManifest(path, &file, &backend);
  if (backend != kManifestDynamic || r.U8() != kManifestDynamic) {
    throw SnapshotSchemaError(path + ": not a dynamic dataset manifest");
  }
  DynamicManifest m;
  m.dim = r.U32();
  m.live_count = r.U64();
  m.next_gid = r.U32();
  m.next_uid = r.U64();
  m.next_content_id = r.U64();
  uint32_t shards = r.U32();
  // Grow per parsed entry (not resize(count)): see ReadStaticManifest.
  for (uint32_t i = 0; i < shards; ++i) {
    ShardManifestEntry s;
    s.uid = r.U64();
    s.content_id = r.U64();
    s.has_emst = r.U8() != 0;
    s.file = SafeFileName(path, r.Str(), /*allow_empty=*/false);
    m.shards.push_back(std::move(s));
  }
  uint32_t cross = r.U32();
  for (uint32_t i = 0; i < cross; ++i) {
    CrossManifestEntry c;
    c.cid_a = r.U64();
    c.cid_b = r.U64();
    c.file = SafeFileName(path, r.Str(), /*allow_empty=*/false);
    m.cross.push_back(std::move(c));
  }
  if (!r.AtEnd()) {
    throw SnapshotFormatError(path + ": trailing bytes after manifest");
  }
  return m;
}

}  // namespace parhc
