// Typed snapshot save/load for each artifact node of the engine pipeline:
// point sets, the flat kd-tree arena, kNN sorted-prefix matrices, EMST /
// MR-MST edge lists, and dendrograms (format.h describes the bytes).
//
// Loads validate everything they cannot afford to trust — header kind and
// dimension, section sizes against the header counts, and the structural
// invariants that downstream traversals index by (child links in bounds
// and forward-pointing, point ranges inside [0, n), dendrogram children in
// bounds) — raising the typed errors of errors.h. Checksums (verified by
// SnapshotFile) already rule out silent corruption; the structural checks
// rule out crafted or stale files crashing the process.
//
// Zero-copy contract: the kd-tree node arena and the kNN prefix matrix are
// adopted as views into the mapped file (the dominant bytes of a warm
// start); point sets, edge lists, and dendrograms are small or need
// mutation-adjacent ownership and are copied out.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dendrogram/dendrogram.h"
#include "graph/edge.h"
#include "spatial/kdtree.h"
#include "store/snapshot.h"

namespace parhc {

namespace store_internal {

inline void RequireSectionSize(const SnapshotFile& f, size_t got,
                               uint64_t want, const char* what) {
  if (got != want) {
    throw SnapshotFormatError(f.path() + ": " + what + " has " +
                              std::to_string(got) + " elements, header says " +
                              std::to_string(want));
  }
}

}  // namespace store_internal

// ---- Point sets -----------------------------------------------------------

template <int D>
void SavePointsSnapshot(const std::string& path,
                        const std::vector<Point<D>>& pts) {
  SnapshotWriter w(SnapshotKind::kPoints, D, pts.size());
  w.AddSection(SectionId::kPointData, pts.data(), pts.size());
  w.Write(path);
}

template <int D>
std::vector<Point<D>> LoadPointsSnapshot(const std::string& path) {
  SnapshotFile f(path);
  f.ExpectKind(SnapshotKind::kPoints, D);
  if (f.count() < 1) {
    throw SnapshotSchemaError(path + ": empty point set");
  }
  Span<const Point<D>> data = f.section<Point<D>>(SectionId::kPointData);
  store_internal::RequireSectionSize(f, data.size(), f.count(), "point data");
  return std::vector<Point<D>>(data.begin(), data.end());
}

// ---- kd-tree arena --------------------------------------------------------

template <int D>
void SaveKdTreeSnapshot(const std::string& path, const KdTree<D>& tree) {
  uint32_t nc = tree.node_count();
  SnapshotWriter w(SnapshotKind::kKdTree, D, tree.size(), nc,
                   tree.leaf_size());
  w.AddSection(SectionId::kPointData, tree.points().data(),
               tree.points().size());
  w.AddSection(SectionId::kPointIds, tree.ids().data(), tree.ids().size());
  w.AddSection(SectionId::kTreeLeft, tree.left_data(), nc);
  w.AddSection(SectionId::kTreeRange, tree.range_data(), nc);
  w.AddSection(SectionId::kTreeBox, tree.box_data(), nc);
  w.AddSection(SectionId::kTreeDiameter, tree.diameter_data(), nc);
  w.Write(path);
}

/// Loads a tree zero-copy: the four node-arena arrays stay views into the
/// mapped snapshot (kept alive by the tree); tree-order points and ids are
/// copied out (they are the mutation-adjacent arrays downstream annotation
/// passes index against).
template <int D>
std::unique_ptr<KdTree<D>> LoadKdTreeSnapshot(const std::string& path) {
  SnapshotFile f(path);
  f.ExpectKind(SnapshotKind::kKdTree, D);
  uint64_t n = f.count();
  uint64_t nc = f.param();
  uint64_t leaf_size = f.aux();
  if (n < 1 || nc < 1 || nc > 2 * n || leaf_size < 1) {
    throw SnapshotSchemaError(path + ": implausible kd-tree header (n=" +
                              std::to_string(n) + ", nodes=" +
                              std::to_string(nc) + ")");
  }
  using Range = typename KdTree<D>::PointRange;
  Span<const Point<D>> pts = f.section<Point<D>>(SectionId::kPointData);
  Span<const uint32_t> ids = f.section<uint32_t>(SectionId::kPointIds);
  Span<const uint32_t> left = f.section<uint32_t>(SectionId::kTreeLeft);
  Span<const Range> range = f.section<Range>(SectionId::kTreeRange);
  Span<const Box<D>> box = f.section<Box<D>>(SectionId::kTreeBox);
  Span<const double> diameter = f.section<double>(SectionId::kTreeDiameter);
  store_internal::RequireSectionSize(f, pts.size(), n, "tree points");
  store_internal::RequireSectionSize(f, ids.size(), n, "tree ids");
  store_internal::RequireSectionSize(f, left.size(), nc, "left links");
  store_internal::RequireSectionSize(f, range.size(), nc, "node ranges");
  store_internal::RequireSectionSize(f, box.size(), nc, "node boxes");
  store_internal::RequireSectionSize(f, diameter.size(), nc,
                                     "node diameters");
  // Structural validation: everything traversals index by must be in
  // bounds, and child links must point forward (the bottom-up sweeps'
  // reverse-scan invariant).
  for (uint64_t v = 0; v < nc; ++v) {
    uint32_t l = left[v];
    if (l != KdTree<D>::kNullNode && (l <= v || l + 1 >= nc)) {
      throw SnapshotFormatError(path + ": node " + std::to_string(v) +
                                " has out-of-range child link");
    }
    if (range[v].begin >= range[v].end || range[v].end > n) {
      throw SnapshotFormatError(path + ": node " + std::to_string(v) +
                                " has invalid point range");
    }
  }
  for (uint64_t i = 0; i < n; ++i) {
    if (ids[i] >= n) {
      throw SnapshotFormatError(path + ": tree id out of range");
    }
  }
  typename KdTree<D>::ArenaParts parts;
  parts.leaf_size = static_cast<uint32_t>(leaf_size);
  parts.node_count = static_cast<uint32_t>(nc);
  parts.pts.assign(pts.begin(), pts.end());
  parts.ids.assign(ids.begin(), ids.end());
  parts.left = left.data();
  parts.range = range.data();
  parts.box = box.data();
  parts.diameter = diameter.data();
  parts.keepalive = f.mapping();
  return std::make_unique<KdTree<D>>(std::move(parts));
}

// ---- kNN sorted-prefix matrix ---------------------------------------------

inline void SaveMatrixSnapshot(const std::string& path, uint32_t dim,
                               uint64_t n, uint64_t k, const double* data) {
  SnapshotWriter w(SnapshotKind::kKnnPrefix, dim, n, k);
  w.AddSection(SectionId::kMatrixData, data, n * k);
  w.Write(path);
}

/// A loaded n x k matrix: a zero-copy view plus the mapping keeping it
/// alive.
struct LoadedMatrix {
  uint64_t n = 0;
  uint64_t k = 0;
  Span<const double> data;
  std::shared_ptr<const MappedFile> keepalive;
};

inline LoadedMatrix LoadMatrixSnapshot(const std::string& path,
                                       uint32_t dim) {
  SnapshotFile f(path);
  f.ExpectKind(SnapshotKind::kKnnPrefix, dim);
  LoadedMatrix m;
  m.n = f.count();
  m.k = f.param();
  if (m.k < 1 || m.k > m.n) {
    throw SnapshotSchemaError(path + ": implausible kNN prefix width " +
                              std::to_string(m.k));
  }
  m.data = f.section<double>(SectionId::kMatrixData);
  store_internal::RequireSectionSize(f, m.data.size(), m.n * m.k,
                                     "matrix data");
  m.keepalive = f.mapping();
  return m;
}

// ---- Edge lists -----------------------------------------------------------

inline void SaveEdgesSnapshot(const std::string& path,
                              const std::vector<WeightedEdge>& edges,
                              uint64_t param) {
  static_assert(sizeof(WeightedEdge) == 16,
                "WeightedEdge must serialize without padding");
  SnapshotWriter w(SnapshotKind::kEdgeList, 0, edges.size(), param);
  w.AddSection(SectionId::kEdgeData, edges.data(), edges.size());
  w.Write(path);
}

/// Loads an edge list saved with `param` whose endpoints must lie in
/// [0, num_vertices).
inline std::vector<WeightedEdge> LoadEdgesSnapshot(const std::string& path,
                                                   uint64_t param,
                                                   uint64_t num_vertices) {
  SnapshotFile f(path);
  f.ExpectKind(SnapshotKind::kEdgeList);
  if (f.param() != param) {
    throw SnapshotSchemaError(path + ": edge list parameter " +
                              std::to_string(f.param()) + ", expected " +
                              std::to_string(param));
  }
  Span<const WeightedEdge> data =
      f.section<WeightedEdge>(SectionId::kEdgeData);
  store_internal::RequireSectionSize(f, data.size(), f.count(), "edge data");
  for (const WeightedEdge& e : data) {
    if (e.u >= num_vertices || e.v >= num_vertices) {
      throw SnapshotFormatError(path + ": edge endpoint out of range");
    }
  }
  return std::vector<WeightedEdge>(data.begin(), data.end());
}

// ---- Dendrograms ----------------------------------------------------------

inline void SaveDendrogramSnapshot(const std::string& path,
                                   const Dendrogram& d, uint64_t param) {
  size_t n = d.num_points();
  std::vector<uint32_t> left(n - 1), right(n - 1);
  std::vector<double> height(n - 1);
  for (size_t i = 0; i < n - 1; ++i) {
    uint32_t id = static_cast<uint32_t>(n + i);
    left[i] = d.Left(id);
    right[i] = d.Right(id);
    height[i] = d.Height(id);
  }
  uint32_t root = d.root();
  SnapshotWriter w(SnapshotKind::kDendrogram, 0, n, param);
  w.AddSection(SectionId::kDendroLeft, left.data(), left.size());
  w.AddSection(SectionId::kDendroRight, right.data(), right.size());
  w.AddSection(SectionId::kDendroHeight, height.data(), height.size());
  w.AddSection(SectionId::kDendroRoot, &root, 1);
  w.Write(path);
}

inline std::shared_ptr<const Dendrogram> LoadDendrogramSnapshot(
    const std::string& path, uint64_t param, uint64_t num_points) {
  SnapshotFile f(path);
  f.ExpectKind(SnapshotKind::kDendrogram);
  if (f.param() != param || f.count() != num_points || num_points < 1) {
    throw SnapshotSchemaError(path + ": dendrogram is over " +
                              std::to_string(f.count()) +
                              " points at parameter " +
                              std::to_string(f.param()) + ", expected " +
                              std::to_string(num_points) + " at " +
                              std::to_string(param));
  }
  uint64_t n = num_points;
  Span<const uint32_t> left = f.section<uint32_t>(SectionId::kDendroLeft);
  Span<const uint32_t> right = f.section<uint32_t>(SectionId::kDendroRight);
  Span<const double> height = f.section<double>(SectionId::kDendroHeight);
  Span<const uint32_t> root = f.section<uint32_t>(SectionId::kDendroRoot);
  store_internal::RequireSectionSize(f, left.size(), n - 1, "left children");
  store_internal::RequireSectionSize(f, right.size(), n - 1,
                                     "right children");
  store_internal::RequireSectionSize(f, height.size(), n - 1, "heights");
  store_internal::RequireSectionSize(f, root.size(), 1, "root");
  auto d = std::make_shared<Dendrogram>(n);
  uint64_t num_nodes = 2 * n - 1;
  if (root[0] >= num_nodes) {
    throw SnapshotFormatError(path + ": dendrogram root out of range");
  }
  for (uint64_t i = 0; i < n - 1; ++i) {
    if (left[i] >= num_nodes || right[i] >= num_nodes) {
      throw SnapshotFormatError(path + ": dendrogram child out of range");
    }
    d->SetInternal(static_cast<uint32_t>(n + i), left[i], right[i],
                   height[i]);
  }
  d->set_root(root[0]);
  // The bounds checks above make the wiring memory-safe; Validate rejects
  // the remaining structurally-broken cases (cycles, shared children,
  // height inversions) a crafted file could encode.
  if (!d->Validate()) {
    throw SnapshotFormatError(path + ": dendrogram fails validation");
  }
  return d;
}

}  // namespace parhc
