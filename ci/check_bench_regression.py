#!/usr/bin/env python3
"""Bench-regression gate: compare emitted BENCH_*.json against baselines.

Each benchmark smoke target emits a google-benchmark JSON file
(BENCH_emst_scaling.json, BENCH_minpts_sweep.json, ...). This script
compares every emitted file against the committed baseline of the same
name under bench/baselines/ and fails (exit 1) when:

  * a benchmark's real_time regressed beyond the tolerance, or
  * a gated counter left its allowed range (see gate.json), or
  * a benchmark present in the baseline disappeared from the results.

Tolerances: the default is --tolerance (20%). Shared-CI wall clocks are
noisy, so bench/baselines/gate.json can override per file/benchmark and
declare counter gates — machine-independent ratios like `speedup` or
correctness flags like `identical` are the strong signals; wall-time
tolerances there are deliberately loose.

gate.json schema (all fields optional):
  {
    "BENCH_foo.json": {
      "time_tolerance": 0.75,              # file-wide override
      "benchmarks": {
        "Bench/Name": {
          "time_tolerance": 0.5,           # per-benchmark override
          # Skip the real_time check entirely when the measuring machine's
          # cpu_features level is < N — for rows whose baseline wall time
          # was captured with SIMD kernels that a scalar-fallback leg
          # cannot match (the counter gates still document the ISA floor
          # via requires_cpu_features below).
          "time_requires_cpu_features": 1,
          "counters": {
            "speedup":   {"min": 1.5},     # lower bound (higher = better)
            "identical": {"equals": 1.0},  # exact gate
            "warm_secs": {"max": 2.0},     # upper bound (lower = better)
            # A bound with requires_cpu_features: N only applies when the
            # measuring machine's cpu_features level (the row's counter,
            # falling back to the file's context block — benches emit
            # both) is >= N; below that the bound is skipped with a note,
            # so ISA-dependent floors don't fail scalar-fallback CI legs.
            "simd_speedup": {"min": 3.0, "requires_cpu_features": 1}
          }
        }
      },
      "monotone_groups": [
        { # Each later row must not regress vs the previous one: with
          # direction "higher" (default) val >= slack * prev; with
          # "lower" val <= slack * prev. "real_time" reads the wall time;
          # anything else reads that counter. Rows absent from the
          # results are skipped (presence is the baseline check's job) —
          # used for the 1/4/all-hw worker matrices, where only the rows
          # the smoke machine can produce exist.
          "counter": "qps_multi",
          "slack": 0.7,
          "direction": "higher",
          "benchmarks": ["Bench/workers:1", "Bench/workers:4"]
        }
      ]
    }
  }

Usage:
  ci/check_bench_regression.py --results build [--baselines bench/baselines]
      [--tolerance 0.20] [--update]

--update rewrites the baselines from the current results (run locally,
commit the diff) instead of checking.
"""

import argparse
import glob
import json
import os
import shutil
import sys


def load_benchmarks(path):
    """(name -> benchmark record, context dict) from a google-benchmark
    JSON file."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = bench
    return out, data.get("context", {})


def machine_cpu_features(bench, context):
    """The measuring machine's cpu_features level for one result row: the
    per-row counter when the bench emits it, else the file-wide context
    value AddMachineContext stamps, else 0 (assume the least capable
    machine rather than failing an inapplicable gate)."""
    val = bench.get("cpu_features")
    if val is None:
        val = context.get("cpu_features", 0)
    try:
        return float(val)
    except (TypeError, ValueError):
        return 0.0


def fmt_time(value, unit):
    return f"{value:.3f}{unit}"


def check_file(name, result_path, baseline_path, default_tol, gate):
    """Returns a list of failure strings for one BENCH_*.json pair."""
    failures = []
    results, result_ctx = load_benchmarks(result_path)
    baselines, _ = load_benchmarks(baseline_path)
    file_gate = gate.get(name, {})
    file_tol = file_gate.get("time_tolerance", default_tol)

    for bench_name, base in baselines.items():
        cur = results.get(bench_name)
        if cur is None:
            failures.append(f"{name}: benchmark '{bench_name}' is in the "
                            "baseline but missing from the results")
            continue
        bench_gate = file_gate.get("benchmarks", {}).get(bench_name, {})
        tol = bench_gate.get("time_tolerance", file_tol)

        base_t, cur_t = base["real_time"], cur["real_time"]
        unit = base.get("time_unit", "ns")
        time_required = bench_gate.get("time_requires_cpu_features")
        if cur.get("time_unit", "ns") != unit:
            # Still fall through to the counter gates below: a unit change
            # must not mask an `identical`/ratio violation in the same row.
            failures.append(f"{name}/{bench_name}: time unit changed "
                            f"({unit} -> {cur.get('time_unit')})")
        elif (time_required is not None
                and machine_cpu_features(cur, result_ctx) < time_required):
            print(f"note: {name}/{bench_name}: skipping real_time check "
                  f"(requires cpu_features>={time_required}, machine has "
                  f"{machine_cpu_features(cur, result_ctx):g})")
        elif base_t > 0 and cur_t > base_t * (1.0 + tol):
            failures.append(
                f"{name}/{bench_name}: real_time {fmt_time(cur_t, unit)} "
                f"regressed past baseline {fmt_time(base_t, unit)} "
                f"+{tol:.0%}")

        for counter, bounds in bench_gate.get("counters", {}).items():
            val = cur.get(counter)
            if val is None:
                failures.append(
                    f"{name}/{bench_name}: gated counter '{counter}' "
                    "missing from results")
                continue
            required = bounds.get("requires_cpu_features")
            if required is not None:
                have = machine_cpu_features(cur, result_ctx)
                if have < required:
                    print(f"note: {name}/{bench_name}: skipping "
                          f"'{counter}' gate (requires cpu_features>="
                          f"{required}, machine has {have:g})")
                    continue
            if "min" in bounds and val < bounds["min"]:
                failures.append(
                    f"{name}/{bench_name}: counter {counter}={val:.4g} "
                    f"below required min {bounds['min']:.4g}")
            if "max" in bounds and val > bounds["max"]:
                failures.append(
                    f"{name}/{bench_name}: counter {counter}={val:.4g} "
                    f"above allowed max {bounds['max']:.4g}")
            if "equals" in bounds and val != bounds["equals"]:
                failures.append(
                    f"{name}/{bench_name}: counter {counter}={val:.4g} "
                    f"!= required {bounds['equals']:.4g}")

    for group in file_gate.get("monotone_groups", []):
        counter = group["counter"]
        slack = group.get("slack", 1.0)
        direction = group.get("direction", "higher")
        prev_name, prev_val = None, None
        for bench_name in group["benchmarks"]:
            cur = results.get(bench_name)
            if cur is None:
                continue
            val = cur.get(counter)
            if val is None:
                failures.append(
                    f"{name}/{bench_name}: monotone-gated counter "
                    f"'{counter}' missing from results")
                continue
            if prev_val is not None:
                if direction == "higher" and val < prev_val * slack:
                    failures.append(
                        f"{name}: monotone gate on '{counter}': "
                        f"'{bench_name}'={val:.4g} fell below "
                        f"{slack:.2f}x '{prev_name}'={prev_val:.4g}")
                elif direction == "lower" and val > prev_val * slack:
                    failures.append(
                        f"{name}: monotone gate on '{counter}': "
                        f"'{bench_name}'={val:.4g} exceeded "
                        f"{slack:.2f}x '{prev_name}'={prev_val:.4g}")
            prev_name, prev_val = bench_name, val
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--results", default="build",
                    help="directory containing the emitted BENCH_*.json")
    ap.add_argument("--baselines", default="bench/baselines",
                    help="directory of committed baseline BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="default relative real_time tolerance (0.20 = 20%%)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite baselines from the current results")
    args = ap.parse_args()

    result_files = sorted(glob.glob(os.path.join(args.results,
                                                 "BENCH_*.json")))
    if not result_files:
        print(f"error: no BENCH_*.json under {args.results}", file=sys.stderr)
        return 1

    if args.update:
        os.makedirs(args.baselines, exist_ok=True)
        for path in result_files:
            dst = os.path.join(args.baselines, os.path.basename(path))
            shutil.copyfile(path, dst)
            print(f"baseline updated: {dst}")
        return 0

    gate_path = os.path.join(args.baselines, "gate.json")
    gate = {}
    if os.path.exists(gate_path):
        with open(gate_path) as f:
            gate = json.load(f)

    failures = []
    checked = 0
    for path in result_files:
        name = os.path.basename(path)
        baseline_path = os.path.join(args.baselines, name)
        if not os.path.exists(baseline_path):
            print(f"warn: no baseline for {name} (new benchmark?); run "
                  f"--update and commit it")
            continue
        # One malformed results file must not abort the sweep: report it as
        # a failure and keep checking the remaining files, so a CI run
        # surfaces every broken gate at once.
        try:
            failures += check_file(name, path, baseline_path, args.tolerance,
                                   gate)
        except Exception as e:
            failures.append(f"{name}: check aborted: {e!r}")
        checked += 1

    if checked == 0:
        print("error: no result file matched any baseline", file=sys.stderr)
        return 1
    if failures:
        print(f"\nbench-regression gate FAILED ({len(failures)} problem(s)):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"bench-regression gate passed ({checked} file(s) within "
          f"tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
