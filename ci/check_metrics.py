#!/usr/bin/env python3
"""Observability scrape smoke: drive a live parhc_netserver and validate
the `metrics`, `slowlog`, and `trace` verbs end to end.

Launches the server on an ephemeral port with tracing on and a zero
slow-query threshold, runs a short query workload over TCP, then checks:

  * the Prometheus exposition is well-formed (every sample line belongs
    to a family with # HELP and # TYPE headers) and every required
    family is present;
  * accounting closes: sum(parhc_server_requests_total{verb=...}) equals
    parhc_server_served_total, and parhc_server_protocol_errors_total
    is 0 (the per-verb counters are bumped only after a response is
    produced, so the two views must agree at quiescence);
  * the latency histogram is internally consistent (cumulative buckets
    monotone, +Inf bucket == _count > 0);
  * `metrics json` is valid JSON mirroring the same families;
  * `slowlog` holds records (threshold 0 makes every query slow);
  * `trace dump` writes valid Chrome trace_event JSON whose events carry
    the full schema (name/cat/ph/ts/dur/pid/tid/args.trace).

Usage: ci/check_metrics.py [--binary build/parhc_netserver]
"""

import argparse
import json
import os
import re
import socket
import subprocess
import sys
import tempfile

REQUIRED_FAMILIES = [
    "parhc_server_connections",
    "parhc_server_served_total",
    "parhc_server_requests_total",
    "parhc_server_request_latency_us",
    "parhc_server_protocol_errors_total",
    "parhc_engine_queries_total",
    "parhc_engine_builds_total",
    "parhc_executor_workers",
    "parhc_dataset_points",
    "parhc_algo_wspd_pairs_materialized_total",
    "parhc_trace_enabled",
    "parhc_slowlog_records_total",
]


class Client:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        self.buf = b""

    def read_line(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise EOFError("server closed the connection")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return line.decode() + "\n"

    def cmd(self, line):
        """One strict request/response round trip."""
        self.sock.sendall((line + "\n").encode())
        return self.read_line()

    def cmd_multiline(self, line, terminator):
        """Request whose reply is many lines ending with `terminator`."""
        self.sock.sendall((line + "\n").encode())
        lines = []
        while True:
            got = self.read_line()
            lines.append(got)
            if got.startswith(terminator):
                return lines


def fail(msg):
    print(f"check_metrics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_exposition(lines):
    """Returns (samples, types): samples maps a full sample line's name
    part (with labels) to float value; types maps family -> TYPE."""
    samples, types, helps = {}, {}, {}
    for line in lines:
        line = line.rstrip("\n")
        if not line:
            fail("blank line in exposition")
        if line.startswith("# HELP "):
            helps[line.split(" ", 3)[2]] = True
            continue
        if line.startswith("# TYPE "):
            _, _, fam, kind = line.split(" ", 3)
            types[fam] = kind
            continue
        if line.startswith("#"):
            fail(f"unknown comment line: {line}")
        m = re.fullmatch(r"(\S+?)(\{[^}]*\})? (-?[0-9.eE+naif]+)", line)
        if not m:
            fail(f"unparsable sample line: {line}")
        name = m.group(1) + (m.group(2) or "")
        samples[name] = float(m.group(3))
        fam = re.sub(r"_(bucket|sum|count)$", "", m.group(1))
        if fam not in types and m.group(1) not in types:
            fail(f"sample '{line}' has no # TYPE header")
        if fam not in helps and m.group(1) not in helps:
            fail(f"sample '{line}' has no # HELP header")
    return samples, types


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--binary", default="build/parhc_netserver")
    args = ap.parse_args()

    proc = subprocess.Popen(
        [args.binary, "--port", "0", "--workers", "2", "--no-timing",
         "--slow-us", "0", "--trace"],
        stdout=subprocess.PIPE, text=True)
    try:
        banner = proc.stdout.readline()
        m = re.search(r"listening on \S+?:(\d+)", banner)
        if not m:
            fail(f"cannot parse port from banner: {banner!r}")
        c = Client(int(m.group(1)))

        # Workload: a build, cache hits, a mutation stream, one error.
        for line, want in [
            ("gen d 2 uniform 400 1", "ok gen d"),
            ("hdbscan d 8", "ok hdbscan d"),
            ("hdbscan d 8", "ok hdbscan d"),
            ("emst d", "ok emst d"),
            ("dyn s 2", "ok dyn s"),
            ("insert s 0.5 0.5 1.5 1.5", "ok insert s"),
            ("emst nosuch", "err emst"),
            ("stats", "ok stats"),
        ]:
            got = c.cmd(line)
            if not got.startswith(want):
                fail(f"'{line}' answered {got!r}, expected {want}...")

        # ---- text exposition ----
        reply = c.cmd_multiline("metrics", "ok metrics")
        exposition = reply[:-1]
        samples, types = parse_exposition(exposition)
        for fam in REQUIRED_FAMILIES:
            if fam not in types:
                fail(f"required family missing from exposition: {fam}")

        served = samples.get("parhc_server_served_total")
        if served is None or served < 8:
            fail(f"parhc_server_served_total={served}, expected >= 8")
        by_verb = sum(v for k, v in samples.items()
                      if k.startswith("parhc_server_requests_total{"))
        if by_verb != served:
            fail(f"per-verb sum {by_verb} != served {served}")
        if samples.get("parhc_server_protocol_errors_total") != 0:
            fail("protocol_errors_total != 0")

        # ---- latency histogram consistency ----
        buckets = [(k, v) for k, v in samples.items()
                   if k.startswith("parhc_server_request_latency_us_bucket")]
        if not buckets:
            fail("latency histogram has no buckets")
        counts = [v for _, v in buckets]
        if counts != sorted(counts):
            fail("histogram cumulative buckets are not monotone")
        hist_count = samples.get("parhc_server_request_latency_us_count")
        inf_key = 'parhc_server_request_latency_us_bucket{le="+Inf"}'
        if samples.get(inf_key) != hist_count or not hist_count:
            fail(f"+Inf bucket {samples.get(inf_key)} != _count {hist_count}")

        # ---- JSON exposition ----
        doc = json.loads(c.cmd("metrics json"))
        json_fams = {mfam["name"] for mfam in doc["metrics"]}
        for fam in REQUIRED_FAMILIES:
            if fam not in json_fams:
                fail(f"family missing from metrics json: {fam}")

        # ---- slowlog (threshold 0: every query is slow) ----
        slow = c.cmd_multiline("slowlog", "ok slowlog")
        m = re.search(r"ok slowlog n=(\d+)", slow[-1])
        if not m or int(m.group(1)) == 0:
            fail(f"slowlog empty under --slow-us 0: {slow[-1]!r}")
        for line in slow[:-1]:
            if not line.startswith("slow kind="):
                fail(f"malformed slowlog line: {line!r}")

        # ---- trace dump ----
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "trace.json")
            got = c.cmd(f"trace dump {path}")
            if not got.startswith("ok trace dump"):
                fail(f"trace dump failed: {got!r}")
            with open(path) as f:
                trace = json.load(f)
            events = trace.get("traceEvents")
            if not events:
                fail("trace dump has no events")
            for e in events:
                for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid",
                            "args"):
                    if key not in e:
                        fail(f"trace event missing '{key}': {e}")
                if e["ph"] != "X" or "trace" not in e["args"]:
                    fail(f"malformed trace event: {e}")
            if not any(e["name"].startswith("request:") for e in events):
                fail("no request:<verb> spans in trace dump")

        # quit answers nothing: the server stops parsing, flushes pending
        # replies, and closes the connection.
        c.sock.sendall(b"quit\n")
        print(f"check_metrics: OK ({len(types)} families, served={served:g}, "
              f"{len(events)} trace events)")
        return 0
    finally:
        proc.terminate()
        proc.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
