#!/usr/bin/env python3
"""Multi-process router smoke: replay one script through the router tier
and a single-node reference server, require answer-identical replies.

CI starts two parhc_netserver workers, a parhc_router fronting them, and
one extra parhc_netserver as the single-node reference (all with
--no-timing on ephemeral ports), then runs this script. It drives the
same verb sequence over both TCP endpoints — a replicated dataset (gen +
read fan-out), then a sharded one (dyn/geninsert/insert/delete with
distributed EMST/HDBSCAN* merges) — and asserts every reply matches the
reference byte-for-byte after dropping the built=/reused= introspection
tokens (the router's merged-artifact cache keys legitimately differ from
a single-node engine's; see README "Multi-node serving").

Usage: check_router_smoke.py --router PORT --reference PORT
"""

import argparse
import socket
import struct
import sys

FRAME_MAGIC = 0x01
OP_KNN_QUERY = 0x14
OP_KNN_REPLY = 0x94


class LineClient:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), 10)
        self.file = self.sock.makefile("rwb")

    def ask(self, line):
        self.file.write((line + "\n").encode())
        self.file.flush()
        reply = self.file.readline()
        if not reply.endswith(b"\n"):
            raise RuntimeError(f"connection closed mid-reply to {line!r}")
        return reply.decode().rstrip("\n")

    def ask_frame(self, opcode, payload):
        """Send one binary frame; return (opcode, payload) or a text err."""
        self.file.write(struct.pack("<BBI", FRAME_MAGIC, opcode,
                                    len(payload)) + payload)
        self.file.flush()
        first = self.file.read(1)
        if first != bytes([FRAME_MAGIC]):  # text error line instead
            return None, (first + self.file.readline()).decode().rstrip("\n")
        op, length = struct.unpack("<BI", self.file.read(5))
        body = self.file.read(length)
        if len(body) != length:
            raise RuntimeError("connection closed mid-frame")
        return op, body


def strip_artifacts(line):
    """Drop built=/reused= tokens; everything else must match exactly."""
    return " ".join(tok for tok in line.split(" ")
                    if not tok.startswith(("built=", "reused=")))


# One flow exercising both dataset modes end to end. Every line is sent
# to the router and the reference; `ok` entries must start with "ok ".
SCRIPT = [
    "gen rep 2 varden 4000 42",     # replicated: broadcast to all workers
    "hdbscan rep 10",               # cold on one worker
    "hdbscan rep 10",               # round-robin: cold on the other
    "hdbscan rep 10",               # warm everywhere from here on
    "emst rep",
    "slink rep 3",
    "dbscan rep 10 0.1",
    "clusters rep 10 25",
    "dyn s 2",                      # sharded: split across the workers
    "geninsert s 2 varden 3000 7",
    "hdbscan s 10",                 # distributed MR-MST merge
    "emst s",                       # distributed EMST merge
    "insert s 0.1 0.2 0.9 0.8",
    "emst s",
    "delete s 0 5 17",
    "hdbscan s 10",
    "dbscan s 10 0.1",
    "reach s 10",
    "slink s 4",
]


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--router", type=int, required=True)
    ap.add_argument("--reference", type=int, required=True)
    args = ap.parse_args()

    router = LineClient(args.router)
    ref = LineClient(args.reference)

    hello = router.ask("hello")
    print(f"router hello: {hello!r}")
    if not hello.startswith("ok hello proto=") or "role=router" not in hello:
        print("FAIL: router handshake did not identify the router tier",
              file=sys.stderr)
        return 1

    failures = 0
    for line in SCRIPT:
        got = router.ask(line)
        want = ref.ask(line)
        match = strip_artifacts(got) == strip_artifacts(want)
        print(f"{line!r}\n  router: {got!r}\n  single: {want!r}")
        if not match or not got.startswith("ok "):
            print("  ^^^ MISMATCH", file=sys.stderr)
            failures += 1

    # Client-facing kNN rides the binary frame path: the router fans the
    # frame to both shard owners and k-way merges the rows; the reply must
    # byte-match the reference (same count, k, and every squared distance).
    name = b"s"
    queries = [0.1, 0.2, 0.55, 0.4, 0.9, 0.95]
    payload = (struct.pack("<H", len(name)) + name +
               struct.pack("<IHI", 10, 2, len(queries) // 2) +
               struct.pack(f"<{len(queries)}d", *queries))
    got_op, got_body = router.ask_frame(OP_KNN_QUERY, payload)
    want_op, want_body = ref.ask_frame(OP_KNN_QUERY, payload)
    print(f"knn frame: router op={got_op} len="
          f"{len(got_body) if got_op else got_body!r}, "
          f"reference op={want_op}")
    if got_op != OP_KNN_REPLY or (got_op, got_body) != (want_op, want_body):
        print("FAIL: merged kNN frame reply differs from the reference",
              file=sys.stderr)
        failures += 1

    cl = router.ask("cluster")
    # Multi-line reply: drain the per-upstream lines until the summary.
    lines = [cl]
    while not lines[-1].startswith(("ok cluster", "err ")):
        lines.append(router.file.readline().decode().rstrip("\n"))
    print("cluster:", lines)
    if not lines[-1].startswith("ok cluster workers=2 healthy=2"):
        print("FAIL: cluster stats did not report 2 healthy workers",
              file=sys.stderr)
        failures += 1

    if failures:
        print(f"\nrouter smoke FAILED ({failures} mismatch(es))",
              file=sys.stderr)
        return 1
    print(f"\nrouter smoke passed ({len(SCRIPT)} replies identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
