// Batch-dynamic ingestion: cross-tree traversals (spatial/cross_traverse.h),
// the LSM shard forest (src/dynamic/), and its exact incremental
// EMST / HDBSCAN* maintenance, cross-checked against from-scratch builds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "data/generators.h"
#include "dynamic/artifacts.h"
#include "dynamic/forest.h"
#include "emst/emst_memogfk.h"
#include "engine/engine.h"
#include "hdbscan/hdbscan.h"
#include "spatial/cross_traverse.h"
#include "test_util.h"

namespace parhc {
namespace {

using test::RowsFrom;
using test::SortedWeights;

std::vector<WeightedEdge> Sorted(std::vector<WeightedEdge> edges) {
  std::sort(edges.begin(), edges.end());
  return edges;
}

/// Renumbers cluster labels by first occurrence so two labelings of the
/// same partition compare equal (label ids are "dense but arbitrary").
std::vector<int32_t> NormalizedLabels(const std::vector<int32_t>& in) {
  std::vector<int32_t> out(in.size());
  std::map<int32_t, int32_t> remap;
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] < 0) {
      out[i] = in[i];
      continue;
    }
    out[i] =
        remap.emplace(in[i], static_cast<int32_t>(remap.size())).first->second;
  }
  return out;
}

// --- Cross-tree traversals ----------------------------------------------

TEST(CrossTraverse, CrossBccpMatchesBruteForce) {
  auto a = test::RandomPoints<2>(300, 7);
  auto b = test::RandomPoints<2>(211, 8);
  KdTree<2> ta(a, 1), tb(b, 1);
  auto ida = [&](uint32_t i) { return i; };
  auto idb = [&](uint32_t j) { return j + 1000; };
  ClosestPair got = CrossBccp(ta, tb, ta.root(), tb.root(), ida, idb);
  ClosestPair want;
  for (uint32_t i = 0; i < a.size(); ++i) {
    for (uint32_t j = 0; j < b.size(); ++j) {
      double d = Distance(a[i], b[j]);
      if (d < want.dist) want = {i, j + 1000, d};
    }
  }
  EXPECT_EQ(got.dist, want.dist);
  EXPECT_EQ(std::minmax(got.u, got.v), std::minmax(want.u, want.v));
}

TEST(CrossTraverse, CrossBccpStarMatchesBruteForce) {
  auto a = test::RandomPoints<3>(150, 11);
  auto b = test::RandomPoints<3>(180, 12);
  // Global core distances over the union, as the shard forest computes them.
  std::vector<Point<3>> all(a);
  all.insert(all.end(), b.begin(), b.end());
  auto cd = test::BruteCoreDistances(all, 5);
  KdTree<3> ta(a, 1), tb(b, 1);
  std::vector<double> cda(cd.begin(), cd.begin() + a.size());
  std::vector<double> cdb(cd.begin() + a.size(), cd.end());
  // Annotate in each tree's local id space (tree ids index a / b).
  ta.AnnotateCoreDistances(cda);
  tb.AnnotateCoreDistances(cdb);
  auto ida = [&](uint32_t i) { return i; };
  auto idb = [&](uint32_t j) { return j + static_cast<uint32_t>(a.size()); };
  ClosestPair got = CrossBccpStar(ta, tb, ta.root(), tb.root(), ida, idb);
  ClosestPair want;
  for (uint32_t i = 0; i < a.size(); ++i) {
    for (uint32_t j = 0; j < b.size(); ++j) {
      double d = std::max({Distance(a[i], b[j]), cda[i], cdb[j]});
      uint32_t v = j + static_cast<uint32_t>(a.size());
      if (d < want.dist ||
          (d == want.dist &&
           std::minmax(i, v) < std::minmax(want.u, want.v))) {
        want = {i, v, d};
      }
    }
  }
  EXPECT_EQ(got.dist, want.dist);
  EXPECT_EQ(std::minmax(got.u, got.v), std::minmax(want.u, want.v));
}

// --- Shard forest mechanics ---------------------------------------------

TEST(ShardForest, GeometricMergeBoundsShardCount) {
  ShardForest<2> forest;
  auto pts = test::RandomPoints<2>(500, 3);
  for (size_t i = 0; i < pts.size(); ++i) {
    forest.InsertBatch({pts[i]});
    // Bentley-Saxe: all shards have distinct size classes, so the count is
    // logarithmic in the live total.
    size_t n = forest.live_count();
    size_t bound = 1;
    while ((size_t{1} << bound) <= n) ++bound;
    EXPECT_LE(forest.num_shards(), bound) << "after " << i + 1 << " inserts";
  }
  EXPECT_EQ(forest.live_count(), pts.size());
}

TEST(ShardForest, TombstonesAndCompaction) {
  ShardForest<2> forest;
  auto pts = test::RandomPoints<2>(256, 5);
  forest.InsertBatch(pts);
  ASSERT_EQ(forest.num_shards(), size_t{1});
  uint64_t cid_before = forest.shard(0).content_id();

  // A small delete tombstones in place: same shard object, bumped content
  // id, no compaction below the threshold.
  EXPECT_EQ(forest.DeleteBatch({0, 1, 2, 3}), size_t{4});
  ASSERT_EQ(forest.num_shards(), size_t{1});
  EXPECT_EQ(forest.live_count(), size_t{252});
  EXPECT_EQ(forest.shard(0).dead_count(), size_t{4});
  EXPECT_NE(forest.shard(0).content_id(), cid_before);
  EXPECT_FALSE(forest.IsLive(2));
  EXPECT_TRUE(forest.IsLive(100));
  // Deleting the same ids again is a no-op.
  EXPECT_EQ(forest.DeleteBatch({0, 1, 2, 3}), size_t{0});

  // Push the shard past kCompactDeadFraction: survivors are compacted into
  // a fresh shard with no tombstones.
  std::vector<uint32_t> more;
  for (uint32_t g = 4; g < 80; ++g) more.push_back(g);
  EXPECT_EQ(forest.DeleteBatch(more), size_t{76});
  ASSERT_EQ(forest.num_shards(), size_t{1});
  EXPECT_EQ(forest.live_count(), size_t{176});
  EXPECT_EQ(forest.shard(0).dead_count(), size_t{0});

  // Locator still resolves surviving points after relocation.
  std::vector<uint32_t> live = forest.LiveGids();
  ASSERT_EQ(live.size(), size_t{176});
  EXPECT_TRUE(std::is_sorted(live.begin(), live.end()));
  for (uint32_t gid : live) {
    const Point<2>& p = forest.PointOf(gid);
    EXPECT_EQ(p[0], pts[gid][0]);
    EXPECT_EQ(p[1], pts[gid][1]);
  }
}

// The gid locator and dense map compact: after many insert/delete epochs
// their sizes track the *live* count, never the historical gid space —
// the ROADMAP churn-scaling fix (per-epoch work stays O(live points)).
TEST(ShardForest, LocatorStaysBoundedUnderChurn) {
  constexpr size_t kBatch = 200;
  constexpr int kEpochs = 50;
  DynamicArtifacts<2> artifacts;
  EngineRequest req;
  req.type = QueryType::kEmst;
  std::mt19937_64 rng(99);
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    uint32_t first =
        artifacts.InsertBatch(test::RandomPoints<2>(kBatch, rng()));
    // Query so the dense gid map actually materializes each epoch.
    EngineResponse r;
    ASSERT_TRUE(artifacts.Answer(req, /*allow_build=*/true, &r));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(artifacts.dense_map_size(), artifacts.num_points());
    // Delete most of the batch, keeping a small resident remainder.
    std::vector<uint32_t> doomed;
    for (uint32_t g = first; g < first + kBatch - 10; ++g) {
      doomed.push_back(g);
    }
    EXPECT_EQ(artifacts.DeleteBatch(doomed), doomed.size());
    // The locator holds exactly the live gids — deleted history leaves no
    // residue, however many gids have been burned through.
    EXPECT_EQ(artifacts.forest().locator_size(), artifacts.num_points());
    EXPECT_EQ(artifacts.num_points(), size_t{10} * (epoch + 1));
  }
  // 50 epochs burned ~10k gids; live structures stay at the ~500 live
  // points (the old dense-array scheme would have grown 20x larger).
  EXPECT_EQ(artifacts.forest().next_gid(), kBatch * kEpochs);
  EXPECT_EQ(artifacts.forest().locator_size(), size_t{10} * kEpochs);
  EngineResponse r;
  ASSERT_TRUE(artifacts.Answer(req, /*allow_build=*/true, &r));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(artifacts.dense_map_size(), size_t{10} * kEpochs);
  EXPECT_EQ(r.point_ids->size(), size_t{10} * kEpochs);
  EXPECT_TRUE(std::is_sorted(r.point_ids->begin(), r.point_ids->end()));
}

// --- Randomized oracle: exactness after every insert/delete batch --------

/// Mirror of the forest contents by gid, for from-scratch rebuilds.
template <int D>
struct Mirror {
  std::vector<Point<D>> pts;  // indexed by gid
  std::vector<bool> live;

  void Insert(const std::vector<Point<D>>& batch) {
    for (const auto& p : batch) {
      pts.push_back(p);
      live.push_back(true);
    }
  }
  std::vector<Point<D>> LivePoints() const {
    std::vector<Point<D>> out;
    for (size_t i = 0; i < pts.size(); ++i) {
      if (live[i]) out.push_back(pts[i]);
    }
    return out;
  }
};

/// Asserts the shard-forest EMST bit-matches a from-scratch MemoGFK build
/// over the live points in gid order (same dense id space).
template <int D>
void ExpectEmstMatchesScratch(DynamicArtifacts<D>& dyn,
                              const Mirror<D>& mirror) {
  EngineRequest req;
  req.type = QueryType::kEmst;
  EngineResponse r;
  ASSERT_TRUE(dyn.Answer(req, /*allow_build=*/true, &r));
  ASSERT_TRUE(r.ok) << r.error;
  std::vector<Point<D>> live = mirror.LivePoints();
  std::vector<WeightedEdge> scratch = EmstMemoGfk(live);
  ASSERT_EQ(r.mst->size(), scratch.size());
  EXPECT_EQ(Sorted(*r.mst), Sorted(scratch));
  EXPECT_EQ(r.mst_weight, test::TotalWeight(scratch));
  ASSERT_NE(r.point_ids, nullptr);
  EXPECT_EQ(r.point_ids->size(), live.size());
}

/// Asserts the shard-forest HDBSCAN* pipeline is exact against a
/// from-scratch Hdbscan over the live points in gid order: core distances
/// bit-match, the MR-MST weight multiset and total weight bit-match, and
/// the dendrograms induce identical flat clusterings at every tested cut.
/// (Edge *identity* is not compared: mutual-reachability weights tie
/// whenever two edges share their max core distance, and under ties the
/// from-scratch MemoGFK baseline itself materializes one BCCP* per WSP —
/// not necessarily the id-order-minimal tied edge — so two exact MSTs can
/// legitimately differ in which tied edges they carry. All MSTs of a graph
/// share the weight multiset and the same connectivity at every threshold,
/// which is what these assertions pin down.)
template <int D>
void ExpectHdbscanMatchesScratch(DynamicArtifacts<D>& dyn,
                                 const Mirror<D>& mirror, int min_pts) {
  EngineRequest req;
  req.type = QueryType::kHdbscan;
  req.min_pts = min_pts;
  EngineResponse r;
  ASSERT_TRUE(dyn.Answer(req, /*allow_build=*/true, &r));
  ASSERT_TRUE(r.ok) << r.error;
  std::vector<Point<D>> live = mirror.LivePoints();
  HdbscanResult direct = Hdbscan(live, min_pts);
  for (size_t i = 0; i < live.size(); ++i) {
    ASSERT_EQ((*r.core_dist)[i], direct.core_dist[i]) << "point " << i;
  }
  ASSERT_EQ(r.mst->size(), direct.mst.size());
  EXPECT_EQ(SortedWeights(*r.mst), SortedWeights(direct.mst));
  EXPECT_EQ(r.mst_weight, test::TotalWeight(Sorted(direct.mst)));
  double root_h = direct.dendrogram.Height(direct.dendrogram.root());
  for (double frac : {0.02, 0.1, 0.4}) {
    EXPECT_EQ(NormalizedLabels(DbscanStarLabels(*r.dendrogram, *r.core_dist,
                                                root_h * frac)),
              NormalizedLabels(direct.ClustersAt(root_h * frac)))
        << "frac=" << frac;
  }
}

TEST(DynamicOracle, EmstExactAfterEveryInsertAndDeleteBatch) {
  std::mt19937_64 rng(17);
  DynamicArtifacts<2> dyn;
  Mirror<2> mirror;

  auto base = test::RandomPoints<2>(700, 31);
  mirror.Insert(base);
  dyn.InsertBatch(base);
  ExpectEmstMatchesScratch(dyn, mirror);

  for (int round = 0; round < 6; ++round) {
    if (round % 3 == 2) {
      // Delete a random live batch.
      std::vector<uint32_t> victims;
      for (uint32_t gid = 0; gid < mirror.pts.size(); ++gid) {
        if (mirror.live[gid] && rng() % 10 == 0) victims.push_back(gid);
      }
      ASSERT_EQ(dyn.DeleteBatch(victims), victims.size());
      for (uint32_t gid : victims) mirror.live[gid] = false;
    } else {
      auto batch =
          test::RandomPoints<2>(60 + round * 13, 100 + round);
      mirror.Insert(batch);
      dyn.InsertBatch(batch);
    }
    ExpectEmstMatchesScratch(dyn, mirror);
  }
}

TEST(DynamicOracle, HdbscanExactAfterEveryInsertAndDeleteBatch) {
  std::mt19937_64 rng(23);
  DynamicArtifacts<2> dyn;
  Mirror<2> mirror;

  auto base = SeedSpreaderVarden<2>(600, 41, 3);
  mirror.Insert(base);
  dyn.InsertBatch(base);
  ExpectHdbscanMatchesScratch(dyn, mirror, 8);

  for (int round = 0; round < 4; ++round) {
    if (round == 2) {
      std::vector<uint32_t> victims;
      for (uint32_t gid = 0; gid < mirror.pts.size(); ++gid) {
        if (mirror.live[gid] && rng() % 8 == 0) victims.push_back(gid);
      }
      ASSERT_EQ(dyn.DeleteBatch(victims), victims.size());
      for (uint32_t gid : victims) mirror.live[gid] = false;
    } else {
      auto batch = SeedSpreaderVarden<2>(90, 200 + round, 2);
      mirror.Insert(batch);
      dyn.InsertBatch(batch);
    }
    ExpectHdbscanMatchesScratch(dyn, mirror, 8);
    // A second minPts exercises the kNN prefix reuse (m < K) path.
    ExpectHdbscanMatchesScratch(dyn, mirror, 4);
  }
}

TEST(DynamicOracle, HigherDimensionalForest) {
  DynamicArtifacts<3> dyn;
  Mirror<3> mirror;
  for (int b = 0; b < 4; ++b) {
    auto batch = test::RandomPoints<3>(120, 300 + b);
    mirror.Insert(batch);
    dyn.InsertBatch(batch);
  }
  ExpectEmstMatchesScratch(dyn, mirror);
  ExpectHdbscanMatchesScratch(dyn, mirror, 6);
}

// --- Duplicates arriving across batches (zero-weight cross edges) --------

TEST(DynamicDuplicates, SplitAcrossBatchesEmstWeightMatches) {
  // Heavy duplication (~n/4 distinct locations) split over several batches,
  // so identical points land in different shards and must be connected by
  // zero-weight cross edges from the cross BCCP pass.
  auto pts = test::DuplicatedPoints<2>(400, 77);
  DynamicArtifacts<2> dyn;
  Mirror<2> mirror;
  for (size_t off = 0; off < pts.size(); off += 100) {
    std::vector<Point<2>> batch(pts.begin() + off, pts.begin() + off + 100);
    mirror.Insert(batch);
    dyn.InsertBatch(batch);
  }
  EngineRequest req;
  req.type = QueryType::kEmst;
  EngineResponse r;
  ASSERT_TRUE(dyn.Answer(req, /*allow_build=*/true, &r));
  ASSERT_TRUE(r.ok) << r.error;
  // Zero-weight edge *identity* depends on the shard partition (any
  // spanning set of a duplicate group is exchangeable), so compare the
  // weight multiset, not edge ids.
  std::vector<WeightedEdge> scratch = EmstMemoGfk(mirror.LivePoints());
  EXPECT_EQ(SortedWeights(*r.mst), SortedWeights(scratch));
  double prim = test::PrimEmstWeight(mirror.LivePoints());
  EXPECT_NEAR(r.mst_weight, prim, 1e-9 * (1 + prim));
}

TEST(DynamicDuplicates, SplitAcrossBatchesHdbscanMatches) {
  auto pts = test::DuplicatedPoints<2>(300, 99);
  DynamicArtifacts<2> dyn;
  Mirror<2> mirror;
  for (size_t off = 0; off < pts.size(); off += 75) {
    std::vector<Point<2>> batch(pts.begin() + off, pts.begin() + off + 75);
    mirror.Insert(batch);
    dyn.InsertBatch(batch);
  }
  EngineRequest req;
  req.type = QueryType::kHdbscan;
  req.min_pts = 5;
  EngineResponse r;
  ASSERT_TRUE(dyn.Answer(req, /*allow_build=*/true, &r));
  ASSERT_TRUE(r.ok) << r.error;
  std::vector<Point<2>> live = mirror.LivePoints();
  HdbscanResult direct = Hdbscan(live, 5);
  for (size_t i = 0; i < live.size(); ++i) {
    ASSERT_EQ((*r.core_dist)[i], direct.core_dist[i]) << "point " << i;
  }
  EXPECT_EQ(SortedWeights(*r.mst), SortedWeights(direct.mst));
  double prim = test::PrimMutualReachabilityWeight(live, 5);
  EXPECT_NEAR(r.mst_weight, prim, 1e-9 * (1 + prim));
}

// --- Engine integration: shard-aware invalidation ------------------------

bool HasKeyWithPrefix(const std::vector<std::string>& keys,
                      const std::string& prefix) {
  return std::any_of(keys.begin(), keys.end(), [&](const std::string& k) {
    return k.rfind(prefix, 0) == 0;
  });
}

TEST(DynamicEngine, InsertDirtiesOnlyCrossAndDownstreamArtifacts) {
  ClusteringEngine engine;
  engine.registry().AddDynamic("d", 2);
  auto base = test::RandomPoints<2>(900, 51);
  ASSERT_EQ(engine.InsertBatch("d", RowsFrom(base)), "");

  EngineRequest req;
  req.type = QueryType::kEmst;
  req.dataset = "d";
  EngineResponse warm = engine.Run(req);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(HasKeyWithPrefix(warm.built, "semst@"));
  EXPECT_TRUE(HasKeyWithPrefix(warm.built, "forest-emst"));

  // Identical query: pure cache hit.
  EngineResponse hit = engine.Run(req);
  ASSERT_TRUE(hit.ok);
  EXPECT_TRUE(hit.built.empty()) << "second query rebuilt artifacts";
  EXPECT_EQ(hit.mst.get(), warm.mst.get());

  // A small insert must reuse the surviving shard's EMST (shard tier),
  // building only the new shard's artifacts, the cross edges, and the
  // global Kruskal.
  auto batch = test::RandomPoints<2>(50, 52);
  uint32_t first = 0;
  ASSERT_EQ(engine.InsertBatch("d", RowsFrom(batch), &first), "");
  EXPECT_EQ(first, 900u);
  EngineResponse after = engine.Run(req);
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_TRUE(HasKeyWithPrefix(after.reused, "semst@"))
      << "surviving shard EMST was rebuilt";
  EXPECT_TRUE(HasKeyWithPrefix(after.built, "semst@"));
  EXPECT_TRUE(HasKeyWithPrefix(after.built, "xemst@"));
  EXPECT_TRUE(HasKeyWithPrefix(after.built, "forest-emst"));

  // A further insert that leaves the first two shards untouched must reuse
  // their cached *cross* edges too (regression: the cross cache was once
  // keyed by dangling minmax references, so it never hit).
  auto tiny = test::RandomPoints<2>(9, 53);
  ASSERT_EQ(engine.InsertBatch("d", RowsFrom(tiny)), "");
  EngineResponse third = engine.Run(req);
  ASSERT_TRUE(third.ok) << third.error;
  EXPECT_TRUE(HasKeyWithPrefix(third.reused, "xemst@"))
      << "surviving shard-pair cross edges were recomputed";

  // Registry surfaces the dynamic backend.
  auto infos = engine.registry().List();
  ASSERT_EQ(infos.size(), size_t{1});
  EXPECT_TRUE(infos[0].dynamic);
  EXPECT_EQ(infos[0].num_points, size_t{959});
  EXPECT_GE(infos[0].num_shards, size_t{1});
}

TEST(DynamicEngine, DeleteAndPointIdsStayConsistent) {
  ClusteringEngine engine;
  engine.registry().AddDynamic("d", 2);
  auto base = SeedSpreaderVarden<2>(500, 61, 3);
  ASSERT_EQ(engine.InsertBatch("d", RowsFrom(base)), "");

  size_t deleted = 0;
  ASSERT_EQ(engine.DeleteBatch("d", {5, 6, 7, 99999}, &deleted), "");
  EXPECT_EQ(deleted, size_t{3});

  EngineRequest req;
  req.type = QueryType::kHdbscan;
  req.dataset = "d";
  req.min_pts = 6;
  EngineResponse r = engine.Run(req);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_NE(r.point_ids, nullptr);
  EXPECT_EQ(r.point_ids->size(), size_t{497});
  EXPECT_TRUE(std::is_sorted(r.point_ids->begin(), r.point_ids->end()));
  EXPECT_EQ(std::count(r.point_ids->begin(), r.point_ids->end(), 6u), 0);
  EXPECT_EQ(r.mst->size(), size_t{496});

  // Mutating an immutable dataset fails cleanly.
  engine.registry().Add("static", test::RandomPoints<2>(50, 1));
  EXPECT_NE(engine.InsertBatch("static", RowsFrom(base)), "");
  EXPECT_NE(engine.DeleteBatch("static", {1}), "");

  // Dimension mismatch and empty-dataset queries fail cleanly.
  EXPECT_NE(engine.InsertBatch("d", {{1.0, 2.0, 3.0}}), "");
  engine.registry().AddDynamic("empty", 2);
  req.dataset = "empty";
  EngineResponse empty = engine.Run(req);
  EXPECT_FALSE(empty.ok);
}

}  // namespace
}  // namespace parhc
