// Dispatch-correctness tests for the SIMD distance kernels
// (geometry/distance.h): on every supported width the dispatched kernel
// must equal the scalar reference — exactly where the kernel is
// bit-reproducible (scalar dispatch, min/max-only kernels), and within a
// tight relative epsilon where AVX2+FMA reassociation legitimately changes
// fp64 rounding. Also pins the PARHC_FORCE_SCALAR=1 contract: the CI ISA
// matrix re-runs this binary under that env and the detection test flips
// its expectation accordingly.

#include "geometry/distance.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "data/generators.h"

namespace parhc {
namespace {

// Every dispatch-relevant width: below/at/above kSimdMinDim, the engine's
// registry dims, the new embedding dims, plus odd tails for the vector
// remainder loops.
const int kWidths[] = {1, 2, 3, 4, 5, 7, 8, 9, 10, 13, 16, 31, 64, 255, 256};

std::vector<double> RandomVec(int n, uint64_t seed) {
  std::vector<double> v(n);
  for (int i = 0; i < n; ++i) {
    v[i] = 200.0 * internal::U01(seed, static_cast<uint64_t>(i), 0) - 100.0;
  }
  return v;
}

bool ForcedScalarEnv() {
  const char* env = std::getenv("PARHC_FORCE_SCALAR");
  return env != nullptr && env[0] == '1';
}

TEST(SimdDispatch, DetectionHonorsEnvAndCpuid) {
  EXPECT_EQ(simd::DetectLevel(/*force_scalar=*/true),
            simd::IsaLevel::kScalar);
  EXPECT_EQ(simd::DetectLevel(/*force_scalar=*/false),
            simd::CpuSupportsAvx2Fma() ? simd::IsaLevel::kAvx2Fma
                                       : simd::IsaLevel::kScalar);
  // The cached process-wide level obeys the environment: the CI matrix
  // re-runs this test with PARHC_FORCE_SCALAR=1 to pin the fallback.
  if (ForcedScalarEnv()) {
    EXPECT_EQ(simd::ActiveLevel(), simd::IsaLevel::kScalar);
  } else {
    EXPECT_EQ(simd::ActiveLevel(), simd::DetectLevel(false));
  }
}

TEST(SimdDispatch, SquaredDistanceMatchesScalarOnEveryWidth) {
  for (int d : kWidths) {
    std::vector<double> a = RandomVec(d, 7), b = RandomVec(d, 13);
    double ref =
        simd::SquaredDistanceAt(simd::IsaLevel::kScalar, a.data(), b.data(), d);
    double got = simd::SquaredDistanceN(a.data(), b.data(), d);
    if (simd::ActiveLevel() == simd::IsaLevel::kScalar) {
      EXPECT_EQ(got, ref) << "d=" << d;  // bit-reproducible path
    } else {
      EXPECT_NEAR(got, ref, 1e-12 * (std::abs(ref) + 1.0)) << "d=" << d;
    }
    if (simd::CpuSupportsAvx2Fma()) {
      double v = simd::SquaredDistanceAt(simd::IsaLevel::kAvx2Fma, a.data(),
                                         b.data(), d);
      EXPECT_NEAR(v, ref, 1e-12 * (std::abs(ref) + 1.0)) << "d=" << d;
    }
  }
}

TEST(SimdDispatch, BatchMatchesPairwiseKernel) {
  for (int d : kWidths) {
    const size_t n = 37;  // odd count exercises every chunk remainder
    std::vector<double> q = RandomVec(d, 3);
    std::vector<double> block = RandomVec(d * static_cast<int>(n), 5);
    std::vector<double> out(n);
    simd::BatchSquaredDistancesN(q.data(), block.data(), n,
                                 static_cast<size_t>(d), d, out.data());
    for (size_t i = 0; i < n; ++i) {
      // The batch kernel must agree with the pairwise kernel of the same
      // level bit-for-bit: it is the same accumulation, just blocked.
      EXPECT_EQ(out[i], simd::SquaredDistanceN(
                            q.data(), block.data() + i * d, d))
          << "d=" << d << " i=" << i;
    }
  }
}

TEST(SimdDispatch, BoxMinSquaredDistanceMatchesScalar) {
  for (int d : kWidths) {
    std::vector<double> lo = RandomVec(d, 11), hi(lo), p = RandomVec(d, 17);
    for (int i = 0; i < d; ++i) hi[i] = lo[i] + std::abs(p[i]) * 0.5;
    double ref = simd::BoxMinSquaredDistanceAt(simd::IsaLevel::kScalar,
                                               lo.data(), hi.data(), p.data(),
                                               d);
    double got =
        simd::BoxMinSquaredDistanceN(lo.data(), hi.data(), p.data(), d);
    if (simd::ActiveLevel() == simd::IsaLevel::kScalar) {
      EXPECT_EQ(got, ref) << "d=" << d;
    } else {
      EXPECT_NEAR(got, ref, 1e-12 * (std::abs(ref) + 1.0)) << "d=" << d;
    }
  }
}

TEST(SimdDispatch, BoxExtendIsBitwiseIdenticalOnEveryLevel) {
  for (int d : kWidths) {
    const size_t n = 29;
    std::vector<double> block = RandomVec(d * static_cast<int>(n), 23);
    std::vector<double> lo_ref(d, 1e300), hi_ref(d, -1e300);
    std::vector<double> lo(lo_ref), hi(hi_ref);
    simd::BoxExtendBlockAt(simd::IsaLevel::kScalar, lo_ref.data(),
                           hi_ref.data(), block.data(), n,
                           static_cast<size_t>(d), d);
    simd::BoxExtendBlockN(lo.data(), hi.data(), block.data(), n,
                          static_cast<size_t>(d), d);
    // min/max never round: every level must agree exactly.
    EXPECT_EQ(lo, lo_ref) << "d=" << d;
    EXPECT_EQ(hi, hi_ref) << "d=" << d;
  }
}

TEST(SimdDispatch, DimTemplatedWrappersAgreeWithKernels) {
  auto check = [](auto dim_tag) {
    constexpr int D = decltype(dim_tag)::value;
    Point<D> a, b;
    for (int i = 0; i < D; ++i) {
      a[i] = internal::U01(41, static_cast<uint64_t>(i), 1);
      b[i] = internal::U01(43, static_cast<uint64_t>(i), 2);
    }
    double got = SquaredDistanceDispatch(a, b);
    if (D >= kSimdMinDim) {
      EXPECT_EQ(got, simd::SquaredDistanceN(a.x.data(), b.x.data(), D));
    } else {
      EXPECT_EQ(got, SquaredDistance(a, b));  // low dims bypass dispatch
    }
    Box<D> box = Box<D>::Empty();
    box.Extend(a);
    EXPECT_EQ(BoxMinSquaredDistanceDispatch(box, b),
              D >= kSimdMinDim
                  ? simd::BoxMinSquaredDistanceN(box.lo.x.data(),
                                                 box.hi.x.data(), b.x.data(),
                                                 D)
                  : box.MinSquaredDistance(b));
  };
  check(std::integral_constant<int, 2>{});
  check(std::integral_constant<int, 7>{});
  check(std::integral_constant<int, 10>{});
  check(std::integral_constant<int, 16>{});
  check(std::integral_constant<int, 64>{});
  check(std::integral_constant<int, 256>{});
}

}  // namespace
}  // namespace parhc
