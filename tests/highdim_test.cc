// High-dimensional embedding workloads: the partitioned (1+eps) EMST path
// (emst/emst_highdim.h), its engine routing, and wide-row (d = 64 / 256)
// coverage of the kNN and snapshot layers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "data/generators.h"
#include "emst/emst_highdim.h"
#include "emst/emst_memogfk.h"
#include "engine/engine.h"
#include "spatial/kdtree.h"
#include "spatial/knn.h"
#include "test_util.h"

namespace parhc {
namespace {

namespace fs = std::filesystem;

/// Edges normalized (u <= v) and sorted: MST identity comparison that
/// ignores edge order and endpoint orientation.
std::vector<WeightedEdge> Normalized(std::vector<WeightedEdge> edges) {
  for (auto& e : edges) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

// --- HighDimEmst: exactness ----------------------------------------------

TEST(HighDimEmst, ExactDecompositionMatchesMemoGfkAtD64) {
  auto pts = GaussianEmbeddings<64>(1500, 7);
  HighDimEmstOptions opts;
  opts.partitions = 4;  // force the decomposition even at this small n
  HighDimEmstInfo info;
  auto decomposed = HighDimEmst(pts, opts, &info);
  EXPECT_EQ(info.partitions, 4);
  EXPECT_GT(info.cross_pairs, 0u);
  EXPECT_EQ(info.cross_pruned, 0u);  // eps = 0: every cross pair exact

  auto classic = EmstMemoGfk(pts);
  ASSERT_EQ(decomposed.size(), pts.size() - 1);
  // Random embeddings have distinct pair distances, so the EMST is unique
  // and both paths (which compute weights through the same dispatched
  // kernels) must produce the identical edge set.
  EXPECT_EQ(Normalized(decomposed), Normalized(classic));
}

TEST(HighDimEmst, TinyInputsMatchBruteForceOracle) {
  for (size_t n : {size_t{2}, size_t{3}, size_t{17}, size_t{64}}) {
    auto pts = GaussianEmbeddings<64>(n, 11 + n);
    HighDimEmstOptions opts;
    opts.partitions = 3;
    auto mst = HighDimEmst(pts, opts);
    ASSERT_EQ(mst.size(), n - 1) << "n=" << n;
    double brute = test::PrimEmstWeight(pts);
    EXPECT_NEAR(test::TotalWeight(mst), brute, 1e-9 * (brute + 1.0))
        << "n=" << n;
  }
  EXPECT_TRUE(HighDimEmst(std::vector<Point<64>>{}).empty());
  EXPECT_TRUE(HighDimEmst(GaussianEmbeddings<64>(1, 5)).empty());
}

TEST(HighDimEmst, AutoPartitioningStaysExact) {
  auto pts = GaussianEmbeddings<64>(2600, 3);
  HighDimEmstInfo info;
  auto mst = HighDimEmst(pts, {}, &info);
  EXPECT_GT(info.partitions, 1);
  auto classic = EmstMemoGfk(pts);
  EXPECT_EQ(Normalized(mst), Normalized(classic));
}

// --- HighDimEmst: (1+eps) path -------------------------------------------

TEST(HighDimEmst, EpsWeightWithinBound) {
  auto pts = GaussianEmbeddings<64>(2000, 13);
  HighDimEmstOptions exact_opts;
  exact_opts.partitions = 5;
  auto exact = HighDimEmst(pts, exact_opts);
  double exact_w = test::TotalWeight(exact);

  for (double eps : {0.1, 0.5}) {
    HighDimEmstOptions opts = exact_opts;
    opts.eps = eps;
    HighDimEmstInfo info;
    auto approx = HighDimEmst(pts, opts, &info);
    ASSERT_EQ(approx.size(), pts.size() - 1);
    double w = test::TotalWeight(approx);
    // The eps path replaces cross BCCP descents, never removes candidates:
    // its output is a real spanning tree measured with true edge weights,
    // so exact <= w, and every substitution is within (1+eps).
    EXPECT_GE(w, exact_w * (1.0 - 1e-12)) << "eps=" << eps;
    EXPECT_LE(w, exact_w * (1.0 + eps) + 1e-9) << "eps=" << eps;
  }

  // At a generous bound the clustered embedding data must actually prune.
  HighDimEmstOptions loose = exact_opts;
  loose.eps = 0.5;
  HighDimEmstInfo info;
  HighDimEmst(pts, loose, &info);
  EXPECT_GT(info.cross_pruned, 0u);
}

TEST(HighDimEmst, DeterministicAcrossWorkerCounts) {
  auto pts = GaussianEmbeddings<64>(2000, 17);
  HighDimEmstOptions opts;
  opts.partitions = 5;
  opts.eps = 0.2;
  SetNumWorkers(1);
  auto seq = HighDimEmst(pts, opts);
  SetNumWorkers(4);
  auto par = HighDimEmst(pts, opts);
  EXPECT_EQ(Normalized(seq), Normalized(par));
}

// --- Engine routing -------------------------------------------------------

TEST(HighDimEngine, EpsQueryRoutesToPartitionedPath) {
  ClusteringEngine engine;
  engine.registry().Add("emb", GaussianEmbeddings<64>(2200, 19));

  EngineRequest req;
  req.dataset = "emb";
  req.type = QueryType::kEmst;
  EngineResponse classic = engine.Run(req);
  ASSERT_TRUE(classic.ok) << classic.error;
  EXPECT_EQ(classic.approx_eps, -1);  // classic path answered
  EXPECT_EQ(classic.partitions, 0);

  req.emst_eps = 0;
  EngineResponse exact = engine.Run(req);
  ASSERT_TRUE(exact.ok) << exact.error;
  EXPECT_EQ(exact.approx_eps, 0);
  EXPECT_GT(exact.partitions, 1);
  EXPECT_EQ(exact.cross_pruned, 0u);
  ASSERT_NE(exact.mst, nullptr);
  EXPECT_EQ(exact.mst->size(), 2199u);
  // Exact decomposition: same weight as the classic MemoGFK artifact.
  EXPECT_NEAR(exact.mst_weight, classic.mst_weight,
              1e-9 * (classic.mst_weight + 1.0));

  // Each eps keys its own artifact; repeats are cache hits.
  EngineResponse again = engine.Run(req);
  ASSERT_TRUE(again.ok);
  EXPECT_TRUE(again.from_cache);
  ASSERT_FALSE(again.reused.empty());
  EXPECT_EQ(again.reused.back(), "emst-hd@0");

  req.emst_eps = 0.25;
  EngineResponse approx = engine.Run(req);
  ASSERT_TRUE(approx.ok) << approx.error;
  EXPECT_EQ(approx.approx_eps, 0.25);
  EXPECT_FALSE(approx.from_cache);  // distinct eps -> distinct build
  EXPECT_GE(approx.mst_weight, exact.mst_weight * (1.0 - 1e-12));
  EXPECT_LE(approx.mst_weight, exact.mst_weight * 1.25 + 1e-9);
}

TEST(HighDimEngine, DynamicDatasetsRejectEps) {
  ClusteringEngine engine;
  ASSERT_EQ(engine.registry().TryAddDynamic("dyn", 64), "");
  auto rows = test::RowsFrom(GaussianEmbeddings<64>(600, 23));
  uint32_t first = 0;
  ASSERT_EQ(engine.registry().Find("dyn")->InsertRows(rows, &first), "");

  EngineRequest req;
  req.dataset = "dyn";
  req.type = QueryType::kEmst;
  req.emst_eps = 0.1;
  EngineResponse r = engine.Run(req);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("static"), std::string::npos) << r.error;

  req.emst_eps = -1;  // classic path still serves dynamic datasets
  EXPECT_TRUE(engine.Run(req).ok);
}

// --- Wide rows: kNN sorted-prefix exactness ------------------------------

template <int D>
void CheckKnnSortedPrefixExact(size_t n, size_t k, uint64_t seed) {
  auto pts = GaussianEmbeddings<D>(n, seed);
  KdTree<D> tree(pts);
  for (size_t i = 0; i < n; i += 7) {  // sampled queries keep runtime sane
    auto got = KnnQuery(tree, pts[i], k);
    ASSERT_EQ(got.size(), std::min(k, n));
    std::vector<double> brute(n);
    for (size_t j = 0; j < n; ++j) brute[j] = Distance(pts[i], pts[j]);
    std::sort(brute.begin(), brute.end());
    for (size_t j = 0; j < got.size(); ++j) {
      // Sorted prefix must match the brute-force order exactly; both sides
      // are sqrt of the same dispatched squared-distance kernel.
      EXPECT_DOUBLE_EQ(got[j].first, brute[j])
          << "D=" << D << " query=" << i << " rank=" << j;
    }
  }
}

TEST(WideRows, KnnSortedPrefixExactD64) {
  CheckKnnSortedPrefixExact<64>(500, 10, 29);
}

TEST(WideRows, KnnSortedPrefixExactD256) {
  CheckKnnSortedPrefixExact<256>(300, 8, 31);
}

// --- Wide rows: snapshot round trip + corruption -------------------------

struct TempDir {
  explicit TempDir(const std::string& tag)
      : path(fs::path(::testing::TempDir()) /
             ("parhc_highdim_" + tag + "_" +
              std::to_string(reinterpret_cast<uintptr_t>(this)))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
  fs::path path;
};

std::vector<uint8_t> ReadAll(const fs::path& p) {
  std::ifstream in(p, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in.good()) << p;
  std::vector<uint8_t> bytes(static_cast<size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void WriteAll(const fs::path& p, const std::vector<uint8_t>& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << p;
}

std::vector<std::string> DirFiles(const fs::path& dir) {
  std::vector<std::string> names;
  for (const auto& e : fs::directory_iterator(dir)) {
    names.push_back(e.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

/// Warms tree + kNN + EMST + a clustering so the snapshot carries every
/// artifact class at the wide dimension.
void WarmWide(ClusteringEngine& engine, const std::string& name) {
  EngineRequest req;
  req.dataset = name;
  req.type = QueryType::kHdbscan;
  req.min_pts = 8;
  ASSERT_TRUE(engine.Run(req).ok);
  req.type = QueryType::kEmst;
  ASSERT_TRUE(engine.Run(req).ok);
}

template <int D>
void CheckSaveLoadSaveByteIdentical(size_t n, uint64_t seed) {
  ClusteringEngine cold;
  cold.registry().Add("emb", GaussianEmbeddings<D>(n, seed));
  WarmWide(cold, "emb");
  TempDir first("first");
  ASSERT_EQ(cold.SaveDataset("emb", first.str()), "");

  ClusteringEngine warm;
  ASSERT_EQ(warm.LoadDataset("emb", first.str()), "");
  auto infos = warm.registry().List();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].dim, D);
  EXPECT_EQ(infos[0].num_points, n);

  TempDir second("second");
  ASSERT_EQ(warm.SaveDataset("emb", second.str()), "");
  auto names = DirFiles(first.path);
  ASSERT_EQ(names, DirFiles(second.path));
  for (const auto& name : names) {
    EXPECT_EQ(ReadAll(first.path / name), ReadAll(second.path / name))
        << "D=" << D << " file=" << name;
  }
}

TEST(WideRows, SnapshotSaveLoadSaveByteIdenticalD64) {
  CheckSaveLoadSaveByteIdentical<64>(400, 37);
}

TEST(WideRows, SnapshotSaveLoadSaveByteIdenticalD256) {
  CheckSaveLoadSaveByteIdentical<256>(200, 41);
}

TEST(WideRows, CorruptAndTruncatedSnapshotsRaiseD64) {
  TempDir dir("fuzz");
  {
    ClusteringEngine engine;
    engine.registry().Add("emb", GaussianEmbeddings<64>(300, 43));
    WarmWide(engine, "emb");
    ASSERT_EQ(engine.SaveDataset("emb", dir.str()), "");
  }
  auto expect_load_fails = [&](const std::string& what) {
    ClusteringEngine engine;
    EXPECT_NE(engine.LoadDataset("emb", dir.str()), "")
        << what << ": corrupt snapshot was accepted";
  };
  for (const std::string& name : DirFiles(dir.path)) {
    std::vector<uint8_t> orig = ReadAll(dir.path / name);
    for (double f : {0.0, 0.4, 0.9}) {
      size_t cut = static_cast<size_t>(orig.size() * f);
      WriteAll(dir.path / name, {orig.begin(), orig.begin() + cut});
      expect_load_fails(name + " truncated to " + std::to_string(cut));
    }
    WriteAll(dir.path / name, {orig.begin(), orig.end() - 1});
    expect_load_fails(name + " missing last byte");
    WriteAll(dir.path / name, orig);
  }
  ClusteringEngine engine;
  EXPECT_EQ(engine.LoadDataset("emb", dir.str()), "");  // intact again
}

}  // namespace
}  // namespace parhc
