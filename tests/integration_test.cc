// End-to-end integration and stress tests: whole pipelines on larger,
// adversarial, and mixed workloads; cross-algorithm agreement at scale;
// worker-count robustness.
#include <gtest/gtest.h>

#include <random>

#include "parhc.h"
#include "test_util.h"

namespace parhc {
namespace {

using test::TotalWeight;

// All EMST algorithms agree on every dataset family at a size where the
// WSPD and round structure are deep, across worker counts.
class EmstAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(EmstAgreementTest, AllMethodsAllDatasets) {
  SetNumWorkers(GetParam());
  constexpr size_t kN = 3000;
  auto check = [&](const auto& pts, const std::string& what) {
    double w_memo = TotalWeight(EmstMemoGfk(pts));
    EXPECT_NEAR(TotalWeight(EmstNaive(pts)), w_memo, 1e-9 * (1 + w_memo))
        << what;
    EXPECT_NEAR(TotalWeight(EmstGfk(pts)), w_memo, 1e-9 * (1 + w_memo))
        << what;
    EXPECT_NEAR(TotalWeight(EmstBoruvka(pts)), w_memo, 1e-9 * (1 + w_memo))
        << what;
  };
  check(UniformFill<2>(kN, 1), "2D uniform");
  check(UniformFill<5>(kN, 2), "5D uniform");
  check(SeedSpreaderVarden<3>(kN, 3), "3D varden");
  check(SkewedLevy<3>(kN, 4), "3D levy");
  check(ClusteredGaussians<7>(kN, 5), "7D gauss");
  SetNumWorkers(4);
}

INSTANTIATE_TEST_SUITE_P(Workers, EmstAgreementTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(Integration, HdbscanVariantsAgreeEverywhere) {
  constexpr size_t kN = 2500;
  for (int min_pts : {2, 10, 25}) {
    auto check = [&](const auto& pts, const std::string& what) {
      auto gan = HdbscanMst(pts, min_pts, HdbscanVariant::kGanTao);
      auto memo = HdbscanMst(pts, min_pts, HdbscanVariant::kMemoGfk);
      double wg = TotalWeight(gan.mst);
      EXPECT_NEAR(TotalWeight(memo.mst), wg, 1e-9 * (1 + wg))
          << what << " minPts=" << min_pts;
    };
    check(UniformFill<2>(kN, 10), "2D uniform");
    check(SeedSpreaderVarden<3>(kN, 11), "3D varden");
    check(ClusteredGaussians<10>(kN, 12), "10D gauss");
  }
}

TEST(Integration, EmstScalesTo100kAndStaysConsistent) {
  // A larger run exercising deep WSPD recursion, many MemoGFK rounds, and
  // the parallel dendrogram; cross-checks two independent algorithms.
  constexpr size_t kN = 100000;
  auto pts = SeedSpreaderVarden<2>(kN, 99, 10);
  auto memo = EmstMemoGfk(pts);
  auto delaunay = EmstDelaunay(pts);
  ASSERT_EQ(memo.size(), kN - 1);
  double wm = TotalWeight(memo);
  EXPECT_NEAR(TotalWeight(delaunay), wm, 1e-9 * wm);
  // Dendrogram over the 100k-edge tree, parallel vs sequential.
  Dendrogram dp = BuildDendrogramParallel(kN, memo, 0);
  Dendrogram ds = BuildDendrogramSequential(kN, memo, 0);
  auto pp = ComputeReachability(dp);
  auto ps = ComputeReachability(ds);
  ASSERT_EQ(pp.order, ps.order);
}

TEST(Integration, MixedDuplicateAndCollinearStress) {
  // A hostile input: axis-aligned collinear runs, exact duplicates, and a
  // dense cluster, shuffled together.
  std::vector<Point<2>> pts;
  for (int i = 0; i < 200; ++i) pts.push_back({{double(i), 0.0}});
  for (int i = 0; i < 200; ++i) pts.push_back({{0.0, double(i)}});
  for (int i = 0; i < 100; ++i) pts.push_back({{50.0, 50.0}});  // duplicates
  for (int i = 0; i < 200; ++i) {
    pts.push_back({{10.0 + 0.001 * i, 10.0 + 0.001 * ((i * 7) % 200)}});
  }
  std::mt19937_64 rng(1);
  std::shuffle(pts.begin(), pts.end(), rng);
  double expect = test::PrimEmstWeight(pts);
  for (auto algo : {EmstAlgorithm::kNaive, EmstAlgorithm::kGfk,
                    EmstAlgorithm::kMemoGfk, EmstAlgorithm::kBoruvka}) {
    auto mst = Emst(pts, algo);
    ASSERT_EQ(mst.size(), pts.size() - 1);
    EXPECT_NEAR(TotalWeight(mst), expect, 1e-7 * (1 + expect));
  }
  // HDBSCAN* on the same data.
  double mr_expect = test::PrimMutualReachabilityWeight(pts, 5);
  auto h = HdbscanMst(pts, 5, HdbscanVariant::kMemoGfk);
  EXPECT_NEAR(TotalWeight(h.mst), mr_expect, 1e-7 * (1 + mr_expect));
}

TEST(Integration, HighMinPtsNearN) {
  // minPts close to n makes every core distance huge: all mutual
  // reachability distances collapse toward the global scale.
  auto pts = test::RandomPoints<2>(60, 3);
  for (int min_pts : {55, 59, 60}) {
    double expect = test::PrimMutualReachabilityWeight(pts, min_pts);
    auto h = HdbscanMst(pts, min_pts, HdbscanVariant::kMemoGfk);
    EXPECT_NEAR(TotalWeight(h.mst), expect, 1e-9 * (1 + expect))
        << "minPts=" << min_pts;
  }
}

TEST(Integration, SingleLinkagePipelineAcrossWorkerCounts) {
  auto pts = SeedSpreaderVarden<3>(5000, 21, 5);
  std::vector<double> weights;
  std::vector<std::vector<uint32_t>> orders;
  for (int workers : {1, 3, 8}) {
    SetNumWorkers(workers);
    SingleLinkageResult sl = SingleLinkage(pts);
    weights.push_back(TotalWeight(sl.emst));
    orders.push_back(ComputeReachability(sl.dendrogram).order);
  }
  SetNumWorkers(4);
  for (size_t i = 1; i < weights.size(); ++i) {
    EXPECT_NEAR(weights[i], weights[0], 1e-9 * weights[0]);
    EXPECT_EQ(orders[i], orders[0]) << "nondeterminism across worker counts";
  }
}

TEST(Integration, PhaseBreakdownAccountsForMostOfTotal) {
  auto pts = UniformFill<3>(20000, 4);
  PhaseBreakdown ph;
  auto r = Hdbscan(pts, 10, HdbscanVariant::kMemoGfk, &ph);
  ASSERT_EQ(r.mst.size(), pts.size() - 1);
  double phases_sum = ph.build_tree + ph.core_dist + ph.wspd + ph.kruskal +
                      ph.dendrogram;
  EXPECT_GT(ph.total, 0);
  EXPECT_LE(phases_sum, ph.total * 1.001);
  EXPECT_GT(phases_sum, ph.total * 0.5);  // phases dominate the run
}

TEST(Integration, MemoGfkBetaGrowthVariantsAgree) {
  auto pts = UniformFill<2>(2000, 8);
  double base = TotalWeight(EmstMemoGfk(pts));
  for (MemoGfkOptions opts : {MemoGfkOptions{4.0, 0}, MemoGfkOptions{1.0, 1},
                              MemoGfkOptions{1.0, 8}}) {
    EXPECT_NEAR(TotalWeight(EmstMemoGfk(pts, nullptr, opts)), base,
                1e-9 * base);
  }
}

TEST(Integration, StatsCountersMoveSensibly) {
  auto pts = UniformFill<2>(4000, 13);
  StatsEpoch naive_epoch(StatsEpoch::kResetPeak);
  EmstNaive(pts);
  AlgoCounterSnapshot naive = naive_epoch.Delta();
  EXPECT_GT(naive.wspd_pairs_materialized, pts.size() / 2)
      << "WSPD produces O(n) pairs";
  EXPECT_GE(naive.bccp_computed, naive.wspd_pairs_materialized)
      << "one BCCP per pair";
  StatsEpoch memo_epoch(StatsEpoch::kResetPeak);
  EmstMemoGfk(pts);
  EXPECT_LT(memo_epoch.Delta().wspd_pairs_peak, naive.wspd_pairs_materialized)
      << "MemoGFK must materialize fewer pairs at once";
}

}  // namespace
}  // namespace parhc
