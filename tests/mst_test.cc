// MST correctness: union-find, Kruskal, and the three EMST algorithms plus
// the two HDBSCAN* variants, validated against dense Prim oracles.
#include <gtest/gtest.h>

#include <random>

#include "emst/emst_gfk.h"
#include "emst/emst_memogfk.h"
#include "emst/emst_naive.h"
#include "graph/kruskal.h"
#include "graph/prim.h"
#include "graph/union_find.h"
#include "hdbscan/hdbscan_mst.h"
#include "test_util.h"

namespace parhc {
namespace {

using test::DuplicatedPoints;
using test::RandomPoints;
using test::TotalWeight;

TEST(UnionFind, BasicMerging) {
  UnionFind uf(10);
  EXPECT_EQ(uf.num_components(), 10u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_TRUE(uf.Union(1, 3));
  EXPECT_EQ(uf.num_components(), 7u);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(0, 4));
}

TEST(UnionFind, ConcurrentFindsDuringTraversalPhase) {
  constexpr size_t kN = 10000;
  UnionFind uf(kN);
  for (size_t i = 0; i + 1 < kN; i += 2) uf.Union(i, i + 1);
  std::atomic<size_t> connected{0};
  ParallelFor(0, kN / 2, [&](size_t i) {
    if (uf.Connected(2 * i, 2 * i + 1)) connected.fetch_add(1);
  });
  EXPECT_EQ(connected.load(), kN / 2);
}

TEST(Kruskal, MatchesPrimOnRandomGraph) {
  constexpr size_t kN = 120;
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<std::vector<double>> w(kN, std::vector<double>(kN, 0));
  std::vector<WeightedEdge> edges;
  for (uint32_t i = 0; i < kN; ++i) {
    for (uint32_t j = i + 1; j < kN; ++j) {
      w[i][j] = w[j][i] = u(rng);
      edges.push_back({i, j, w[i][j]});
    }
  }
  auto kruskal = KruskalMst(kN, edges);
  auto prim = PrimMst(kN, [&](uint32_t i, uint32_t j) { return w[i][j]; });
  ASSERT_EQ(kruskal.size(), kN - 1);
  EXPECT_NEAR(TotalWeight(kruskal), TotalWeight(prim), 1e-9);
}

TEST(Kruskal, BatchedEqualsOneShot) {
  constexpr size_t kN = 60;
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<WeightedEdge> edges;
  for (uint32_t i = 0; i < kN; ++i) {
    for (uint32_t j = i + 1; j < kN; ++j) {
      edges.push_back({i, j, u(rng)});
    }
  }
  auto all = KruskalMst(kN, edges);
  // Feed the same edges in increasing-weight batches.
  std::sort(edges.begin(), edges.end());
  UnionFind uf(kN);
  std::vector<WeightedEdge> out;
  size_t batch_size = 97;
  for (size_t lo = 0; lo < edges.size(); lo += batch_size) {
    std::vector<WeightedEdge> batch(
        edges.begin() + lo,
        edges.begin() + std::min(edges.size(), lo + batch_size));
    KruskalBatch(batch, uf, out);
  }
  EXPECT_NEAR(TotalWeight(out), TotalWeight(all), 1e-12);
}

// ---------------------------------------------------------------------------
// EMST: all algorithms vs the dense Prim oracle, across n / d / seeds.

template <int D>
void CheckEmstAllMethods(const std::vector<Point<D>>& pts) {
  double expect = test::PrimEmstWeight(pts);
  auto naive = EmstNaive(pts);
  auto gfk = EmstGfk(pts);
  auto memo = EmstMemoGfk(pts);
  ASSERT_EQ(naive.size(), pts.size() - 1);
  ASSERT_EQ(gfk.size(), pts.size() - 1);
  ASSERT_EQ(memo.size(), pts.size() - 1);
  EXPECT_NEAR(TotalWeight(naive), expect, 1e-7 * (1 + expect));
  EXPECT_NEAR(TotalWeight(gfk), expect, 1e-7 * (1 + expect));
  EXPECT_NEAR(TotalWeight(memo), expect, 1e-7 * (1 + expect));
}

class EmstOracleTest : public ::testing::TestWithParam<std::tuple<size_t, int>> {
};

TEST_P(EmstOracleTest, MatchesPrim2D) {
  auto [n, seed] = GetParam();
  CheckEmstAllMethods(RandomPoints<2>(n, seed));
}

TEST_P(EmstOracleTest, MatchesPrim3D) {
  auto [n, seed] = GetParam();
  CheckEmstAllMethods(RandomPoints<3>(n, seed + 1000));
}

TEST_P(EmstOracleTest, MatchesPrim5D) {
  auto [n, seed] = GetParam();
  CheckEmstAllMethods(RandomPoints<5>(n, seed + 2000));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EmstOracleTest,
    ::testing::Combine(::testing::Values(2, 3, 5, 16, 100, 400),
                       ::testing::Values(1, 2, 3)));

TEST(Emst, ClusteredDataMatchesPrim) {
  auto pts = SeedSpreaderVarden<2>(500, 3, 4);
  CheckEmstAllMethods(pts);
}

TEST(Emst, SkewedDataMatchesPrim) {
  auto pts = SkewedLevy<3>(400, 5);
  CheckEmstAllMethods(pts);
}

TEST(Emst, DuplicatePointsMatchPrim) {
  for (uint64_t seed : {1, 2, 3}) {
    CheckEmstAllMethods(DuplicatedPoints<2>(200, seed));
  }
}

TEST(Emst, AllIdenticalPoints) {
  std::vector<Point<2>> pts(50, Point<2>{{3.0, 4.0}});
  auto mst = EmstMemoGfk(pts);
  ASSERT_EQ(mst.size(), 49u);
  EXPECT_EQ(TotalWeight(mst), 0.0);
}

TEST(Emst, TwoPoints) {
  std::vector<Point<2>> pts{{{0.0, 0.0}}, {{3.0, 4.0}}};
  for (auto& mst : {EmstNaive(pts), EmstGfk(pts), EmstMemoGfk(pts)}) {
    ASSERT_EQ(mst.size(), 1u);
    EXPECT_DOUBLE_EQ(mst[0].w, 5.0);
  }
}

TEST(Emst, SinglePoint) {
  std::vector<Point<2>> pts{{{1.0, 1.0}}};
  EXPECT_TRUE(EmstMemoGfk(pts).empty());
  EXPECT_TRUE(EmstNaive(pts).empty());
}

TEST(Emst, MethodsAgreeOnLargerInput) {
  // Too big for the O(n^2) oracle comfort zone in every config; methods
  // must agree with each other to full precision on the total weight.
  auto pts = UniformFill<3>(5000, 11);
  double w_naive = TotalWeight(EmstNaive(pts));
  double w_gfk = TotalWeight(EmstGfk(pts));
  double w_memo = TotalWeight(EmstMemoGfk(pts));
  EXPECT_NEAR(w_gfk, w_naive, 1e-9 * w_naive);
  EXPECT_NEAR(w_memo, w_naive, 1e-9 * w_naive);
}

TEST(Emst, IdenticalEdgeSetsUnderUniqueWeights) {
  // With generic (random double) coordinates, distances are distinct, the
  // MST is unique, and all algorithms must return the same edge set.
  auto pts = RandomPoints<2>(800, 123);
  auto canon = [](std::vector<WeightedEdge> es) {
    for (auto& e : es) {
      if (e.u > e.v) std::swap(e.u, e.v);
    }
    std::sort(es.begin(), es.end(), [](auto& a, auto& b) {
      return std::tie(a.u, a.v) < std::tie(b.u, b.v);
    });
    return es;
  };
  auto a = canon(EmstNaive(pts));
  auto b = canon(EmstGfk(pts));
  auto c = canon(EmstMemoGfk(pts));
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].u, b[i].u);
    EXPECT_EQ(a[i].v, b[i].v);
    EXPECT_EQ(a[i].u, c[i].u);
    EXPECT_EQ(a[i].v, c[i].v);
  }
}

// ---------------------------------------------------------------------------
// HDBSCAN*: both variants vs dense Prim on the mutual reachability graph.

class HdbscanOracleTest
    : public ::testing::TestWithParam<std::tuple<size_t, int>> {};

TEST_P(HdbscanOracleTest, BothVariantsMatchPrim2D) {
  auto [n, min_pts] = GetParam();
  if (static_cast<size_t>(min_pts) > n) GTEST_SKIP();
  auto pts = RandomPoints<2>(n, n * 7 + min_pts);
  double expect = test::PrimMutualReachabilityWeight(pts, min_pts);
  auto gan = HdbscanMst(pts, min_pts, HdbscanVariant::kGanTao);
  auto memo = HdbscanMst(pts, min_pts, HdbscanVariant::kMemoGfk);
  ASSERT_EQ(gan.mst.size(), n - 1);
  ASSERT_EQ(memo.mst.size(), n - 1);
  EXPECT_NEAR(TotalWeight(gan.mst), expect, 1e-7 * (1 + expect));
  EXPECT_NEAR(TotalWeight(memo.mst), expect, 1e-7 * (1 + expect));
}

TEST_P(HdbscanOracleTest, BothVariantsMatchPrim5D) {
  auto [n, min_pts] = GetParam();
  if (static_cast<size_t>(min_pts) > n) GTEST_SKIP();
  auto pts = RandomPoints<5>(n, n * 13 + min_pts);
  double expect = test::PrimMutualReachabilityWeight(pts, min_pts);
  auto memo = HdbscanMst(pts, min_pts, HdbscanVariant::kMemoGfk);
  EXPECT_NEAR(TotalWeight(memo.mst), expect, 1e-7 * (1 + expect));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HdbscanOracleTest,
    ::testing::Combine(::testing::Values(2, 10, 64, 300),
                       ::testing::Values(1, 2, 3, 5, 10)));

TEST(Hdbscan, MinPtsOneEqualsEmst) {
  // Appendix D: with minPts = 1 mutual reachability equals Euclidean
  // distance, so the HDBSCAN* MST is the EMST.
  auto pts = RandomPoints<3>(500, 31);
  auto emst = EmstMemoGfk(pts);
  auto hd = HdbscanMst(pts, 1, HdbscanVariant::kMemoGfk);
  EXPECT_NEAR(TotalWeight(hd.mst), TotalWeight(emst),
              1e-9 * TotalWeight(emst));
}

TEST(Hdbscan, MinPtsThreeEmstIsValidMrMst) {
  // Theorem D.1: for minPts <= 3, the EMST re-weighted by mutual
  // reachability has the same total weight as the MR-graph MST.
  constexpr int kMinPts = 3;
  auto pts = RandomPoints<2>(250, 41);
  auto cd = test::BruteCoreDistances(pts, kMinPts);
  auto emst = EmstMemoGfk(pts);
  double emst_as_mr = 0;
  for (auto& e : emst) {
    emst_as_mr += std::max({e.w, cd[e.u], cd[e.v]});
  }
  double expect = test::PrimMutualReachabilityWeight(pts, kMinPts);
  EXPECT_NEAR(emst_as_mr, expect, 1e-9 * (1 + expect));
}

TEST(Hdbscan, CoreDistancesMatchBruteForce) {
  auto pts = RandomPoints<3>(400, 17);
  KdTree<3> tree(pts, 1);
  auto fast = CoreDistances(tree, 10);
  auto slow = test::BruteCoreDistances(pts, 10);
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_NEAR(fast[i], slow[i], 1e-12);
  }
}

TEST(Hdbscan, VariantsAgreeOnLargerInput) {
  auto pts = SeedSpreaderVarden<3>(4000, 9, 6);
  auto gan = HdbscanMst(pts, 10, HdbscanVariant::kGanTao);
  auto memo = HdbscanMst(pts, 10, HdbscanVariant::kMemoGfk);
  double wg = TotalWeight(gan.mst), wm = TotalWeight(memo.mst);
  EXPECT_NEAR(wm, wg, 1e-9 * wg);
}

TEST(Hdbscan, DuplicatePointsMatchPrim) {
  auto pts = DuplicatedPoints<2>(150, 4);
  for (int min_pts : {1, 3, 7}) {
    double expect = test::PrimMutualReachabilityWeight(pts, min_pts);
    auto memo = HdbscanMst(pts, min_pts, HdbscanVariant::kMemoGfk);
    EXPECT_NEAR(TotalWeight(memo.mst), expect, 1e-9 * (1 + expect))
        << "minPts=" << min_pts;
  }
}

TEST(Hdbscan, FewerPairsMaterializedThanGanTao) {
  // The headline claim of Section 3.2.2: the new well-separation
  // materializes fewer pairs.
  auto pts = SeedSpreaderVarden<3>(3000, 77, 5);
  StatsEpoch gan_epoch;
  HdbscanMst(pts, 10, HdbscanVariant::kGanTao);
  uint64_t gan_pairs = gan_epoch.Delta().wspd_pairs_materialized;
  StatsEpoch memo_epoch;
  HdbscanMst(pts, 10, HdbscanVariant::kMemoGfk);
  uint64_t memo_pairs = memo_epoch.Delta().wspd_pairs_materialized;
  EXPECT_LT(memo_pairs, gan_pairs);
}

}  // namespace
}  // namespace parhc
