// Tests for the multi-node serving tier (src/cluster/): the hello
// handshake, the placement map, and — the load-bearing invariant — that a
// router fronting several real workers answers EMST / HDBSCAN* / label
// queries over a sharded dataset bit-identically to one single-node
// engine over the union, across interleaved insert/delete batches and a
// worker restart restored from a snapshot. Runs under TSan in CI with the
// other concurrency tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/placement.h"
#include "cluster/router.h"
#include "cluster/upstream.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/server.h"
#include "obs/trace.h"
#include "parhc.h"

namespace parhc {
namespace {

using cluster::Router;
using cluster::RouterOptions;
using cluster::ShardMap;
using cluster::Upstream;

/// One in-process engine-backed worker server on a loopback port.
struct Worker {
  explicit Worker(uint16_t port = 0) {
    net::NetServerOptions opts;
    opts.port = port;
    opts.workers = 2;
    opts.show_timing = false;
    engine = std::make_unique<ClusteringEngine>();
    server = std::make_unique<net::NetServer>(*engine, opts);
    EXPECT_EQ(server->Start(), "");
    loop = std::thread([this] { server->Run(); });
  }

  ~Worker() { Stop(); }

  void Stop() {
    if (!server) return;
    server->Shutdown();
    loop.join();
    server.reset();
    engine.reset();
  }

  uint16_t port() const { return server->port(); }
  std::string addr() const {
    return "127.0.0.1:" + std::to_string(port());
  }

  std::unique_ptr<ClusteringEngine> engine;
  std::unique_ptr<net::NetServer> server;
  std::thread loop;
};

net::ProtocolOptions NoTiming() {
  net::ProtocolOptions popts;
  popts.show_timing = false;
  return popts;
}

RouterOptions NoHealth() {
  RouterOptions ropts;
  ropts.start_health_thread = false;
  return ropts;
}

std::string Ask(Router& router, const std::string& line) {
  net::WireMessage msg;
  msg.text = line;
  return router.Handle(msg, NoTiming()).out;
}

/// Drops the built=/reused= introspection tokens: the router traces its
/// own merged-artifact scheme, so those keys legitimately differ from a
/// single-node backend's. Everything else must match byte for byte.
std::string StripArtifacts(const std::string& line) {
  std::istringstream ss(line);
  std::string tok, out;
  while (ss >> tok) {
    if (tok.rfind("built=", 0) == 0 || tok.rfind("reused=", 0) == 0) {
      continue;
    }
    if (!out.empty()) out += ' ';
    out += tok;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Placement map

TEST(Placement, OwnerOfGidIsDeterministicAndInRange) {
  for (uint32_t g = 0; g < 1000; ++g) {
    size_t o = cluster::OwnerOfGid(g, 3);
    EXPECT_LT(o, 3u);
    EXPECT_EQ(o, cluster::OwnerOfGid(g, 3));  // stable
  }
  // Not degenerate: 1000 gids over 3 workers hit every worker.
  std::set<size_t> seen;
  for (uint32_t g = 0; g < 1000; ++g) seen.insert(cluster::OwnerOfGid(g, 3));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Placement, ShardMapSaveLoadRoundTrip) {
  ShardMap map;
  map.workers = 3;
  map.Allocate(100);
  std::vector<uint32_t> next_local(3, 0);
  for (uint32_t g = 0; g < 100; ++g) {
    map.local[g] = next_local[map.owner[g]]++;
  }
  map.dead[7] = 1;
  map.dead[42] = 1;
  EXPECT_EQ(map.LiveCount(), 98u);

  std::string path = ::testing::TempDir() + "/shard_map_test.map";
  cluster::SaveShardMap(path, /*dim=*/5, map);
  uint32_t dim = 0;
  ShardMap loaded = cluster::LoadShardMap(path, &dim);
  std::remove(path.c_str());

  EXPECT_EQ(dim, 5u);
  EXPECT_EQ(loaded.next_gid, map.next_gid);
  EXPECT_EQ(loaded.workers, map.workers);
  EXPECT_EQ(loaded.owner, map.owner);
  EXPECT_EQ(loaded.local, map.local);
  EXPECT_EQ(loaded.dead, map.dead);
  EXPECT_EQ(loaded.LiveCount(), 98u);
}

// ---------------------------------------------------------------------------
// Handshake

TEST(Upstream, HelloHandshakeVerifiesProtocolAndRole) {
  Worker w;
  Upstream up(w.addr(), /*timeout_ms=*/5000);
  EXPECT_EQ(up.Connect(), "");
  EXPECT_TRUE(up.healthy());
  // The worker advertises its compiled-in dimension caps.
  EXPECT_FALSE(up.dims().empty());
  bool has2 = false;
  for (int d : up.dims()) has2 |= (d == 2);
  EXPECT_TRUE(has2);

  // A router fronting this worker identifies itself as role=router with
  // the same protocol version.
  Router router({w.addr()}, NoHealth());
  EXPECT_EQ(router.Start(), "");
  std::string hello = Ask(router, "hello");
  EXPECT_EQ(hello.rfind("ok hello proto=" +
                            std::to_string(net::kProtocolVersion) +
                            " role=router dims=",
                        0),
            0u)
      << hello;
}

TEST(Upstream, ConnectToDeadPortFailsAndRouterStartIsStrict) {
  Upstream up("127.0.0.1:1", /*timeout_ms=*/500);
  EXPECT_NE(up.Connect(), "");
  EXPECT_FALSE(up.healthy());
  Worker w;
  Router router({w.addr(), "127.0.0.1:1"},
                NoHealth());
  EXPECT_NE(router.Start(), "");  // all workers must be up at startup
}

// ---------------------------------------------------------------------------
// Replicated datasets

TEST(Router, ReplicatedReadsFanOutAndBitMatchSingleNode) {
  Worker w1, w2;
  Router router({w1.addr(), w2.addr()},
                NoHealth());
  ASSERT_EQ(router.Start(), "");

  ClusteringEngine ref_engine;
  net::ProtocolSession ref(ref_engine, NoTiming());

  std::vector<std::string> script = {
      "gen rep 2 uniform 300 7", "emst rep",       "hdbscan rep 8",
      "dbscan rep 8 0.05",       "clusters rep 8 6", "slink rep 4",
      "emst nosuch",
  };
  // Reads round-robin, so each worker's warm/cold artifact state differs
  // from the single reference session's — the built=/reused= keys are the
  // only tokens allowed to diverge.
  for (const std::string& line : script) {
    EXPECT_EQ(StripArtifacts(Ask(router, line)),
              StripArtifacts(ref.HandleLine(line).out))
        << line;
  }
  // Reads round-robin: both upstreams served some of the 7 requests (the
  // gen broadcast alone touches both).
  EXPECT_GT(router.pool().at(0).counters().requests.load(), 1u);
  EXPECT_GT(router.pool().at(1).counters().requests.load(), 1u);

  // The cluster verb surfaces per-upstream counters.
  std::string cl = Ask(router, "cluster");
  EXPECT_NE(cl.find("upstream " + w1.addr() + " healthy=1"),
            std::string::npos)
      << cl;
  EXPECT_NE(cl.find("ok cluster workers=2 healthy=2 datasets=1"),
            std::string::npos)
      << cl;

  // Router-side list shows the serving mode.
  EXPECT_EQ(Ask(router, "list"),
            "dataset rep dim=2 n=300 mode=replicated\nok list\n");
}

// ---------------------------------------------------------------------------
// Sharded oracle

struct Oracle {
  Oracle(Router& router, net::ProtocolSession& ref)
      : router(router), ref(ref) {}

  /// Runs one line on both sides; mutations must match exactly, queries
  /// modulo the built=/reused= keys.
  void Check(const std::string& line) {
    std::string got = Ask(router, line);
    std::string want = ref.HandleLine(line).out;
    EXPECT_EQ(StripArtifacts(got), StripArtifacts(want)) << line;
  }

  Router& router;
  net::ProtocolSession& ref;
};

/// DBSCAN* labels via the binary frame path on both sides — exact int
/// comparison, which transitively pins the merged core distances (labels
/// flip if any core distance differs in even one bit).
void CheckLabelsFrame(Router& router, ClusteringEngine& ref_engine,
                      const std::string& name, int min_pts, double eps) {
  std::string payload;
  net::PutU16(&payload, static_cast<uint16_t>(name.size()));
  payload += name;
  payload += '\0';  // kind 0 = dbscan
  net::PutU32(&payload, static_cast<uint32_t>(min_pts));
  net::PutF64(&payload, eps);
  net::WireMessage msg;
  msg.binary = true;
  msg.opcode = net::kOpGetLabels;
  msg.payload = payload;
  std::string out = router.Handle(msg, NoTiming()).out;
  ASSERT_GT(out.size(), net::kFrameHeaderBytes);
  ASSERT_EQ(static_cast<uint8_t>(out[0]), net::kFrameMagic) << out;
  ASSERT_EQ(static_cast<uint8_t>(out[1]), net::kOpLabelsReply);
  // PayloadReader holds a reference — the payload must outlive it.
  std::string frame_payload = out.substr(net::kFrameHeaderBytes);
  net::PayloadReader rd(frame_payload);
  uint32_t count = rd.GetU32();
  std::vector<int32_t> labels(count);
  for (auto& l : labels) l = static_cast<int32_t>(rd.GetU32());
  ASSERT_TRUE(rd.ok());

  EngineRequest req;
  req.type = QueryType::kDbscanStarAt;
  req.dataset = name;
  req.min_pts = min_pts;
  req.eps = eps;
  EngineResponse r = ref_engine.Run(req);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(labels, r.labels);
}

/// Client-facing kNN via the binary frame path: the router fans the query
/// frame to every owning worker and k-way merges the rows; the reply must
/// byte-match the single-node session (same opcode, count, k, and every
/// squared distance bit-for-bit).
void CheckKnnFrame(Router& router, net::ProtocolSession& ref,
                   const std::string& name, uint32_t k,
                   const std::vector<double>& queries, int dim) {
  std::string payload;
  net::PutU16(&payload, static_cast<uint16_t>(name.size()));
  payload += name;
  net::PutU32(&payload, k);
  net::PutU16(&payload, static_cast<uint16_t>(dim));
  net::PutU32(&payload, static_cast<uint32_t>(queries.size() / dim));
  for (double v : queries) net::PutF64(&payload, v);
  net::WireMessage msg;
  msg.binary = true;
  msg.opcode = net::kOpKnnQuery;
  msg.payload = payload;
  std::string got = router.Handle(msg, NoTiming()).out;
  std::string want = ref.Handle(msg).out;
  ASSERT_GT(want.size(), net::kFrameHeaderBytes);
  ASSERT_EQ(static_cast<uint8_t>(want[1]), net::kOpKnnReply);
  EXPECT_EQ(got, want) << name << " k=" << k;
}

TEST(Router, ShardedAnswersBitMatchSingleNodeAcrossMutationsAndRestart) {
  Worker w1, w3;
  auto w2 = std::make_unique<Worker>();
  std::vector<std::string> addrs = {w1.addr(), w2->addr(), w3.addr()};
  Router router(addrs, NoHealth());
  ASSERT_EQ(router.Start(), "");

  ClusteringEngine ref_engine;
  net::ProtocolSession ref(ref_engine, NoTiming());
  Oracle oracle(router, ref);

  oracle.Check("dyn s 2");

  std::mt19937 rng(20210621);
  std::set<uint32_t> live;
  uint32_t next_gid = 0;
  std::string snap_dir = ::testing::TempDir() + "/cluster_restart_snap";

  for (int round = 0; round < 6; ++round) {
    // Insert a batch (seed-deterministic on both sides; the router ships
    // the rows to the owners as bit-exact binary frames).
    size_t n = 25 + static_cast<size_t>(rng() % 30);
    const char* kind = (round % 2 == 0) ? "uniform" : "varden";
    oracle.Check("geninsert s 2 " + std::string(kind) + " " +
                 std::to_string(n) + " " + std::to_string(round + 1));
    for (size_t i = 0; i < n; ++i) live.insert(next_gid++);

    // Delete a few random live points (same gids on both sides).
    if (round > 0) {
      size_t kills = 1 + rng() % 6;
      std::string line = "delete s";
      for (size_t k = 0; k < kills && !live.empty(); ++k) {
        auto it = live.begin();
        std::advance(it, rng() % live.size());
        line += ' ' + std::to_string(*it);
        live.erase(it);
      }
      oracle.Check(line);
    }

    int m = 2 + static_cast<int>(rng() % 6);
    oracle.Check("emst s");
    oracle.Check("slink s 3");
    oracle.Check("hdbscan s " + std::to_string(m));
    oracle.Check("dbscan s " + std::to_string(m) + " 0.1");
    oracle.Check("clusters s " + std::to_string(m) + " 4");
    oracle.Check("reach s " + std::to_string(m));
    CheckLabelsFrame(router, ref_engine, "s", m, 0.08);
    std::vector<double> queries;
    for (int q = 0; q < 3 * 2; ++q) {
      queries.push_back((rng() % 1000) / 1000.0);
    }
    CheckKnnFrame(router, ref, "s", static_cast<uint32_t>(m), queries, 2);

    if (round == 3) {
      // Snapshot the cluster, kill worker 2, restart it empty on the same
      // port, and let the health pass restore its slice from the snapshot.
      std::string saved = Ask(router, "save s " + snap_dir);
      ASSERT_EQ(saved, "ok save s dir=" + snap_dir + "\n") << saved;
      ASSERT_TRUE(std::ifstream(snap_dir + "/cluster.map").good());

      uint16_t port = w2->port();
      w2->Stop();
      router.HealthPassNow(1000);  // ping fails -> marked down
      EXPECT_EQ(router.pool().HealthyCount(), 2u);
      // A query that must touch the dead owner fails loudly. (An
      // artifact already merged at this epoch may still serve — m=50
      // exceeds every kNN width built so far, forcing a fresh fan-out.)
      std::string down = Ask(router, "hdbscan s 50");
      EXPECT_EQ(down.rfind("err hdbscan s: worker ", 0), 0u) << down;

      w2 = std::make_unique<Worker>(port);  // fresh engine, same address
      router.HealthPassNow(5000);  // backoff expired -> reconnect + reseed
      EXPECT_EQ(router.pool().HealthyCount(), 3u);
    }
  }

  // Mixed single-point text inserts after everything above.
  oracle.Check("insert s 0.125 0.25 0.5 0.75");
  live.insert(next_gid++);
  live.insert(next_gid++);
  oracle.Check("emst s");
  oracle.Check("hdbscan s 4");

  // Error paths stay aligned too.
  oracle.Check("insert s 1.0");            // not a multiple of dim
  oracle.Check("delete s 999999");         // unknown gids -> deleted=0
  oracle.Check("slink s 0");               // k out of range
  oracle.Check("hdbscan s 100000");        // min_pts out of range
  oracle.Check("emst s eps 0.5");          // eps EMST is static-only

  EXPECT_EQ(Ask(router, "drop s"), ref.HandleLine("drop s").out);
}

TEST(Router, ShardedSaveLoadServesWarmAcrossRouterRestart) {
  Worker w1, w2;
  std::string snap_dir = ::testing::TempDir() + "/cluster_reload_snap";
  std::string before;
  {
    Router router({w1.addr(), w2.addr()},
                  NoHealth());
    ASSERT_EQ(router.Start(), "");
    ASSERT_EQ(Ask(router, "dyn p 2"), "ok dyn p dim=2\n");
    ASSERT_EQ(Ask(router, "geninsert p 2 uniform 80 3").substr(0, 2), "ok");
    ASSERT_EQ(Ask(router, "delete p 5 6 7"), "ok delete p deleted=3\n");
    before = StripArtifacts(Ask(router, "hdbscan p 4"));
    ASSERT_EQ(Ask(router, "save p " + snap_dir),
              "ok save p dir=" + snap_dir + "\n");
  }
  // A brand-new router (the workers kept their slices) reloads the
  // sharding map and serves identical answers.
  Router router2({w1.addr(), w2.addr()},
                 NoHealth());
  ASSERT_EQ(router2.Start(), "");
  ASSERT_EQ(Ask(router2, "load p snap " + snap_dir),
            "ok load p dim=2 n=77 warm\n");
  EXPECT_EQ(StripArtifacts(Ask(router2, "hdbscan p 4")), before);
  EXPECT_EQ(Ask(router2, "list"),
            "dataset p dim=2 n=77 mode=sharded\nok list\n");
}

// ---------------------------------------------------------------------------
// Trace propagation across hops

TEST(Router, HopSpansNestInsideTheRequestSpan) {
  Worker w1, w2;
  Router router({w1.addr(), w2.addr()},
                NoHealth());
  ASSERT_EQ(router.Start(), "");

  obs::Tracer& tracer = obs::Tracer::Get();
  tracer.Clear();
  tracer.Enable();
  ASSERT_EQ(Ask(router, "gen tr 2 uniform 200 1").substr(0, 2), "ok");
  ASSERT_EQ(Ask(router, "emst tr").substr(0, 2), "ok");
  tracer.Disable();

  std::string path = ::testing::TempDir() + "/cluster_trace_dump.json";
  ASSERT_EQ(Ask(router, "trace dump " + path).rfind("ok trace dump ", 0),
            0u);
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f.good());
  std::string json((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  tracer.Clear();

  // Pull (name, ts, dur, trace) out of the Chrome trace_event stream.
  struct Ev {
    std::string name;
    double ts = 0, dur = 0;
    unsigned long long trace = 0;
  };
  std::vector<Ev> events;
  size_t pos = 0;
  const std::string kName = "{\"name\":\"";
  while ((pos = json.find(kName, pos)) != std::string::npos) {
    Ev e;
    size_t nb = pos + kName.size();
    size_t ne = json.find("\",\"cat\":\"", nb);
    ASSERT_NE(ne, std::string::npos);
    e.name = json.substr(nb, ne - nb);
    size_t body = json.find("\"ts\":", ne);
    ASSERT_NE(body, std::string::npos);
    ASSERT_EQ(std::sscanf(json.c_str() + body,
                          "\"ts\":%lf,\"dur\":%lf,\"pid\":%*d,\"tid\":%*d,"
                          "\"args\":{\"trace\":%llu}}",
                          &e.ts, &e.dur, &e.trace),
              3)
        << e.name;
    events.push_back(std::move(e));
    pos = ne;
  }

  // Each of the two requests minted one trace; every hop:<addr> span must
  // join its request's trace and nest inside the request:<verb> root by
  // time containment — that is the cross-hop propagation contract.
  std::map<unsigned long long, std::vector<const Ev*>> by_trace;
  for (const Ev& e : events) {
    if (e.trace != 0) by_trace[e.trace].push_back(&e);
  }
  constexpr double kEpsUs = 0.002;
  int hops_checked = 0;
  for (const auto& [trace_id, spans] : by_trace) {
    // The in-process workers share the process-global tracer, so each
    // trace also holds the WORKER-side request:* spans the propagated id
    // produced; the router's root is the outermost (longest) one.
    const Ev* root = nullptr;
    for (const Ev* e : spans) {
      if (e->name.rfind("request:", 0) == 0 &&
          (root == nullptr || e->dur > root->dur)) {
        root = e;
      }
    }
    ASSERT_NE(root, nullptr) << "orphan spans for trace " << trace_id;
    for (const Ev* e : spans) {
      if (e->name.rfind("hop:", 0) != 0) continue;
      EXPECT_GE(e->ts + kEpsUs, root->ts) << e->name;
      EXPECT_LE(e->ts + e->dur, root->ts + root->dur + kEpsUs) << e->name;
      ++hops_checked;
    }
  }
  // gen broadcasts to both workers; emst reads from one: >= 3 hops.
  EXPECT_GE(hops_checked, 3);
}

}  // namespace
}  // namespace parhc
