// Tests for the parallel substrate: scheduler, primitives, sort, semisort,
// hash table, list ranking, and Euler tour.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <set>

#include "parallel/euler_tour.h"
#include "parallel/hash_table.h"
#include "parallel/list_ranking.h"
#include "parallel/primitives.h"
#include "parallel/scheduler.h"
#include "parallel/semisort.h"
#include "parallel/sort.h"

namespace parhc {
namespace {

TEST(Scheduler, ParDoRunsBoth) {
  int a = 0, b = 0;
  ParDo([&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Scheduler, NestedForkJoin) {
  std::atomic<int64_t> sum{0};
  std::function<void(int)> rec = [&](int depth) {
    if (depth == 0) {
      sum.fetch_add(1);
      return;
    }
    ParDo([&] { rec(depth - 1); }, [&] { rec(depth - 1); });
  };
  rec(10);
  EXPECT_EQ(sum.load(), 1024);
}

TEST(Scheduler, ParallelForCoversRangeExactlyOnce) {
  constexpr size_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  ParallelFor(0, kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(Scheduler, WorkerCountChanges) {
  SetNumWorkers(3);
  EXPECT_EQ(NumWorkers(), 3);
  std::atomic<int64_t> sum{0};
  ParallelFor(0, 10000, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 10000LL * 9999 / 2);
  SetNumWorkers(2);
  EXPECT_EQ(NumWorkers(), 2);
}

TEST(Scheduler, AutoGrainCoversRangeAtWorkerBoundaries) {
  // Regression test for the automatic grain selection
  // (grain = clamp(n / (8p), 1, 2048)): sweep n around the 8p chunking
  // boundaries for several worker counts — in particular tiny n with large
  // worker counts, where n / (8p) truncates to 0 and the floor of 1 must
  // apply — and check every index runs exactly once.
  for (int p : {1, 2, 3, 4, 8, 16}) {
    SetNumWorkers(p);
    size_t boundary = static_cast<size_t>(p) * 8;
    std::vector<size_t> sizes = {1, 2, 3, boundary - 1, boundary,
                                 boundary + 1, 4 * boundary + 3};
    for (size_t n : sizes) {
      if (n == 0) continue;
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      ParallelFor(0, n, [&](size_t i) { hits[i].fetch_add(1); });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "p=" << p << " n=" << n << " i=" << i;
      }
    }
  }
  SetNumWorkers(4);  // restore the test-binary default
}

TEST(Scheduler, EmptyRange) {
  bool ran = false;
  ParallelFor(5, 5, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(TaskArena, GroupSizeIsVisibleInsideExecute) {
  SetNumWorkers(4);
  TaskArena arena(2);
  EXPECT_EQ(arena.size(), 2);
  int inside = 0;
  arena.Execute([&] { inside = NumWorkers(); });
  EXPECT_EQ(inside, 2);
  EXPECT_EQ(NumWorkers(), 4);  // outside any arena: the whole pool
}

TEST(TaskArena, ClampsToPoolSize) {
  SetNumWorkers(2);
  {
    TaskArena arena(16);
    EXPECT_EQ(arena.size(), 2);
  }  // the arena must be gone before Reset may run again
  SetNumWorkers(4);  // restore the test-binary default
}

TEST(TaskArena, ParallelForCoversRangeExactlyOnceInsideGroup) {
  SetNumWorkers(4);
  constexpr size_t kN = 50000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  TaskArena arena(2);
  arena.Execute([&] {
    ParallelFor(0, kN, [&](size_t i) {
      // Scratch indexed by MyId must stay in [0, group size).
      ASSERT_LT(Scheduler::Get().MyId(), 2);
      hits[i].fetch_add(1);
    });
  });
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(TaskArena, ConcurrentGroupsRunIndependently) {
  SetNumWorkers(4);
  constexpr size_t kN = 200000;
  std::atomic<int64_t> sums[2] = {{0}, {0}};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      TaskArena arena(2);
      for (int rep = 0; rep < 5; ++rep) {
        sums[t].store(0);
        arena.Execute([&] {
          ParallelFor(0, kN, [&](size_t i) {
            sums[t].fetch_add(static_cast<int64_t>(i));
          });
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  constexpr int64_t kExpect = int64_t{kN} * (kN - 1) / 2;
  EXPECT_EQ(sums[0].load(), kExpect);
  EXPECT_EQ(sums[1].load(), kExpect);
}

TEST(Scheduler, ConcurrentPlainExternalSubmitters) {
  // Multiple threads issuing ParallelFor without any arena was illegal
  // under the old single-external-caller contract; now each claims a root
  // arena slot (or degrades to inline execution) and must be correct.
  SetNumWorkers(4);
  constexpr size_t kN = 100000;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int rep = 0; rep < 3; ++rep) {
        std::atomic<int64_t> sum{0};
        ParallelFor(0, kN, [&](size_t i) {
          sum.fetch_add(static_cast<int64_t>(i));
        });
        if (sum.load() != int64_t{kN} * (kN - 1) / 2) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(SchedulerDeathTest, ResetWhileArenaLiveDies) {
  // Scheduler::Reset used to destroy the singleton out from under any
  // in-flight parallel work; it must now refuse with a clear error.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        TaskArena arena(2);
        SetNumWorkers(2);
      },
      "TaskArena");
}

TEST(SchedulerDeathTest, ResetWhileExecuteInFlightDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        TaskArena arena(2);
        arena.Execute([] { SetNumWorkers(2); });
      },
      "in flight");
}

TEST(Primitives, TabulateIdentity) {
  auto v = Tabulate(1000, [](size_t i) { return i * i; });
  for (size_t i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i * i);
}

TEST(Primitives, ReduceMatchesAccumulate) {
  std::mt19937_64 rng(7);
  std::vector<int64_t> a(12345);
  for (auto& x : a) x = static_cast<int64_t>(rng() % 1000) - 500;
  int64_t expect = std::accumulate(a.begin(), a.end(), int64_t{0});
  int64_t got = Reduce(a, int64_t{0}, [](int64_t x, int64_t y) { return x + y; });
  EXPECT_EQ(got, expect);
}

TEST(Primitives, ScanExclusiveMatchesReference) {
  for (size_t n : {0ul, 1ul, 2ul, 100ul, 65536ul, 100001ul}) {
    std::vector<int64_t> a(n), ref(n);
    std::mt19937_64 rng(n);
    for (auto& x : a) x = static_cast<int64_t>(rng() % 100);
    int64_t acc = 0;
    for (size_t i = 0; i < n; ++i) {
      ref[i] = acc;
      acc += a[i];
    }
    int64_t total = ScanExclusive(a.data(), n, int64_t{0},
                                  [](int64_t x, int64_t y) { return x + y; });
    EXPECT_EQ(total, acc);
    EXPECT_EQ(a, ref);
  }
}

TEST(Primitives, FilterPreservesOrder) {
  std::vector<int> a(100000);
  std::iota(a.begin(), a.end(), 0);
  auto evens = Filter(a, [](int x) { return x % 2 == 0; });
  ASSERT_EQ(evens.size(), 50000u);
  for (size_t i = 0; i < evens.size(); ++i) ASSERT_EQ(evens[i], 2 * (int)i);
}

TEST(Primitives, SplitPartitions) {
  std::vector<int> a(9999);
  std::iota(a.begin(), a.end(), 0);
  auto [yes, no] = Split(a, [](int x) { return x % 3 == 0; });
  EXPECT_EQ(yes.size() + no.size(), a.size());
  for (int x : yes) ASSERT_EQ(x % 3, 0);
  for (int x : no) ASSERT_NE(x % 3, 0);
  EXPECT_TRUE(std::is_sorted(yes.begin(), yes.end()));
  EXPECT_TRUE(std::is_sorted(no.begin(), no.end()));
}

TEST(Primitives, WriteMinConcurrent) {
  std::atomic<double> m{1e18};
  ParallelFor(0, 100000, [&](size_t i) {
    WriteMin(&m, static_cast<double>((i * 7919) % 100000));
  });
  EXPECT_EQ(m.load(), 0.0);
}

TEST(Primitives, WriteMaxConcurrent) {
  std::atomic<uint64_t> m{0};
  ParallelFor(0, 50000, [&](size_t i) { WriteMax(&m, (uint64_t)i); });
  EXPECT_EQ(m.load(), 49999u);
}

TEST(Primitives, FlattenConcatenates) {
  std::vector<std::vector<int>> parts{{1, 2}, {}, {3}, {4, 5, 6}};
  auto flat = Flatten(parts);
  EXPECT_EQ(flat, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

class SortTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SortTest, MatchesStdSort) {
  size_t n = GetParam();
  std::mt19937_64 rng(n + 1);
  std::vector<uint64_t> a(n);
  for (auto& x : a) x = rng() % (n + 1);
  std::vector<uint64_t> ref = a;
  std::sort(ref.begin(), ref.end());
  ParallelSort(a);
  EXPECT_EQ(a, ref);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortTest,
                         ::testing::Values(0, 1, 2, 100, 8192, 8193, 100000,
                                           1 << 18));

TEST(Sort, CustomComparatorDescending) {
  std::vector<int> a(30000);
  std::mt19937_64 rng(3);
  for (auto& x : a) x = static_cast<int>(rng() % 1000);
  ParallelSort(a, [](int x, int y) { return x > y; });
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(), std::greater<int>()));
}

TEST(SemiSort, GroupsAllEqualKeys) {
  constexpr size_t kN = 60000;
  std::mt19937_64 rng(11);
  std::vector<std::pair<uint32_t, uint32_t>> items(kN);
  for (size_t i = 0; i < kN; ++i) {
    items[i] = {static_cast<uint32_t>(rng() % 500), static_cast<uint32_t>(i)};
  }
  std::vector<size_t> count_by_key(500, 0);
  for (auto& it : items) count_by_key[it.first]++;
  auto [sorted, starts] = SemiSort(
      items, [](const std::pair<uint32_t, uint32_t>& p) { return p.first; });
  ASSERT_EQ(sorted.size(), kN);
  // Each group is contiguous, keys within a group are equal, and group
  // sizes match the original multiset.
  std::set<uint32_t> seen;
  for (size_t g = 0; g + 1 < starts.size(); ++g) {
    uint32_t key = sorted[starts[g]].first;
    EXPECT_TRUE(seen.insert(key).second) << "key appears in two groups";
    for (size_t i = starts[g]; i < starts[g + 1]; ++i) {
      ASSERT_EQ(sorted[i].first, key);
    }
    EXPECT_EQ(starts[g + 1] - starts[g], count_by_key[key]);
  }
}

TEST(HashTable, InsertFindRoundTrip) {
  constexpr size_t kN = 50000;
  ConcurrentMap<uint64_t> map(kN);
  ParallelFor(0, kN, [&](size_t i) { map.Insert(i * 2 + 1, i * 10); });
  for (size_t i = 0; i < kN; ++i) {
    const uint64_t* v = map.Find(i * 2 + 1);
    ASSERT_NE(v, nullptr);
    ASSERT_EQ(*v, i * 10);
    ASSERT_EQ(map.Find(i * 2 + 2), nullptr);
  }
}

TEST(HashTable, DuplicateInsertFirstWins) {
  ConcurrentMap<uint64_t> map(1000);
  std::atomic<int> successes{0};
  ParallelFor(0, 1000, [&](size_t i) {
    if (map.Insert(42, i)) successes.fetch_add(1);
  });
  EXPECT_EQ(successes.load(), 1);
  ASSERT_NE(map.Find(42), nullptr);
}

TEST(ListRanking, SuffixSumsSingleList) {
  constexpr size_t kN = 1000;
  // List i -> i+1; values all 1: rank[i] should be n - i.
  std::vector<uint32_t> next(kN);
  for (size_t i = 0; i < kN; ++i) next[i] = (i + 1 < kN) ? i + 1 : kNil;
  std::vector<uint32_t> vals(kN, 1);
  auto rank = ListRank(next, vals);
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(rank[i], kN - i);
}

TEST(ListRanking, RandomPermutationList) {
  constexpr size_t kN = 4096;
  std::mt19937_64 rng(5);
  std::vector<uint32_t> order(kN);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);
  std::vector<uint32_t> next(kN, kNil);
  for (size_t i = 0; i + 1 < kN; ++i) next[order[i]] = order[i + 1];
  std::vector<int64_t> vals(kN);
  for (size_t i = 0; i < kN; ++i) vals[order[i]] = static_cast<int64_t>(i);
  auto rank = ListRank(next, vals);
  // rank[order[i]] = sum of positions i..n-1.
  int64_t suffix = 0;
  for (size_t i = kN; i-- > 0;) {
    suffix += static_cast<int64_t>(i);
    ASSERT_EQ(rank[order[i]], suffix);
  }
}

TEST(EulerTour, PathGraphDepths) {
  // Path 0-1-2-...-9 rooted at 3.
  constexpr size_t kN = 10;
  std::vector<TreeEdge> edges;
  for (uint32_t i = 0; i + 1 < kN; ++i) edges.push_back({i, i + 1});
  auto depth = TreeHopDistances(kN, edges, 3);
  for (uint32_t v = 0; v < kN; ++v) {
    EXPECT_EQ(depth[v], static_cast<uint32_t>(std::abs((int)v - 3))) << v;
  }
}

TEST(EulerTour, StarGraphDepths) {
  constexpr size_t kN = 50;
  std::vector<TreeEdge> edges;
  for (uint32_t i = 1; i < kN; ++i) edges.push_back({0, i});
  auto depth = TreeHopDistances(kN, edges, 0);
  EXPECT_EQ(depth[0], 0u);
  for (uint32_t v = 1; v < kN; ++v) EXPECT_EQ(depth[v], 1u);
  // Rooted at a spoke, the hub is at 1 and other spokes at 2.
  auto depth7 = TreeHopDistances(kN, edges, 7);
  EXPECT_EQ(depth7[7], 0u);
  EXPECT_EQ(depth7[0], 1u);
  EXPECT_EQ(depth7[23], 2u);
}

TEST(EulerTour, RandomTreeMatchesBfs) {
  constexpr size_t kN = 2000;
  std::mt19937_64 rng(17);
  std::vector<TreeEdge> edges;
  for (uint32_t v = 1; v < kN; ++v) {
    edges.push_back({static_cast<uint32_t>(rng() % v), v});
  }
  auto depth = TreeHopDistances(kN, edges, 0);
  // BFS reference.
  std::vector<std::vector<uint32_t>> adj(kN);
  for (auto& e : edges) {
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  std::vector<uint32_t> ref(kN, kNil);
  std::vector<uint32_t> frontier{0};
  ref[0] = 0;
  while (!frontier.empty()) {
    std::vector<uint32_t> next_frontier;
    for (uint32_t u : frontier) {
      for (uint32_t v : adj[u]) {
        if (ref[v] == kNil) {
          ref[v] = ref[u] + 1;
          next_frontier.push_back(v);
        }
      }
    }
    frontier = std::move(next_frontier);
  }
  for (size_t v = 0; v < kN; ++v) ASSERT_EQ(depth[v], ref[v]) << v;
}

TEST(EulerTour, SingleVertexAndSingleEdge) {
  EXPECT_EQ(TreeHopDistances(1, {}, 0), std::vector<uint32_t>{0});
  std::vector<TreeEdge> one{{0, 1}};
  auto d = TreeHopDistances(2, one, 1);
  EXPECT_EQ(d[0], 1u);
  EXPECT_EQ(d[1], 0u);
}

}  // namespace
}  // namespace parhc
