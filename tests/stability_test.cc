// Stability-based (excess-of-mass) flat cluster extraction.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>

#include "hdbscan/hdbscan.h"
#include "hdbscan/stability.h"
#include "test_util.h"

namespace parhc {
namespace {

/// k well-separated Gaussian blobs plus uniform noise; returns (points,
/// ground-truth labels with -1 noise).
std::pair<std::vector<Point<2>>, std::vector<int32_t>> PlantedBlobs(
    size_t per_blob, int blobs, size_t noise, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  std::uniform_real_distribution<double> u(0.0, 1000.0);
  std::vector<Point<2>> pts;
  std::vector<int32_t> truth;
  for (int b = 0; b < blobs; ++b) {
    double cx = 100.0 + 800.0 * (b % 3) / 2.0;
    double cy = 100.0 + 800.0 * (b / 3);
    for (size_t i = 0; i < per_blob; ++i) {
      pts.push_back({{cx + 5.0 * g(rng), cy + 5.0 * g(rng)}});
      truth.push_back(b);
    }
  }
  for (size_t i = 0; i < noise; ++i) {
    pts.push_back({{u(rng), u(rng)}});
    truth.push_back(-1);
  }
  return {std::move(pts), std::move(truth)};
}

TEST(Stability, RecoversPlantedBlobs) {
  auto [pts, truth] = PlantedBlobs(300, 3, 60, 1);
  auto h = Hdbscan(pts, 10);
  StabilityClusters sc = ExtractStableClusters(h.dendrogram, 25);
  // The three planted blobs must come back as three dominant clusters.
  std::map<int32_t, std::map<int32_t, size_t>> truth_to_found;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (truth[i] >= 0) truth_to_found[truth[i]][sc.label[i]]++;
  }
  std::set<int32_t> majors;
  for (auto& [t, found] : truth_to_found) {
    // Majority of each blob lands in a single non-noise cluster.
    auto best = std::max_element(
        found.begin(), found.end(),
        [](auto& a, auto& b) { return a.second < b.second; });
    EXPECT_NE(best->first, kNoise) << "blob " << t << " dissolved";
    EXPECT_GT(best->second, 300u * 9 / 10) << "blob " << t << " fragmented";
    majors.insert(best->first);
  }
  EXPECT_EQ(majors.size(), 3u) << "blobs merged";
  // Far-flung uniform noise is mostly labeled noise.
  size_t noise_as_noise = 0, noise_total = 0;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (truth[i] == -1) {
      ++noise_total;
      noise_as_noise += sc.label[i] == kNoise;
    }
  }
  EXPECT_GT(noise_as_noise, noise_total / 2);
}

TEST(Stability, LabelsAreDenseAndStabilitiesPositive) {
  auto [pts, truth] = PlantedBlobs(150, 6, 100, 3);
  (void)truth;
  auto h = Hdbscan(pts, 10);
  StabilityClusters sc = ExtractStableClusters(h.dendrogram, 15);
  int32_t max_label = -1;
  for (int32_t l : sc.label) {
    ASSERT_GE(l, kNoise);
    max_label = std::max(max_label, l);
  }
  ASSERT_EQ(static_cast<size_t>(max_label + 1), sc.stability.size());
  for (int32_t c = 0; c <= max_label; ++c) {
    EXPECT_GT(sc.stability[c], 0.0);
    size_t members = 0;
    for (int32_t l : sc.label) members += (l == c);
    EXPECT_GT(members, 0u) << "empty cluster " << c;
  }
}

TEST(Stability, VariableDensityClustersSurvive) {
  // The headline HDBSCAN* use case: clusters whose densities differ by an
  // order of magnitude, which no single DBSCAN eps can capture.
  auto pts = SeedSpreaderVarden<2>(4000, 17, 5);
  auto h = Hdbscan(pts, 10);
  StabilityClusters sc = ExtractStableClusters(h.dendrogram, 50);
  std::set<int32_t> clusters;
  for (int32_t l : sc.label) {
    if (l != kNoise) clusters.insert(l);
  }
  EXPECT_GE(clusters.size(), 2u);
  EXPECT_LE(clusters.size(), 40u);
}

TEST(Stability, UniformDataYieldsFewClusters) {
  // Pure uniform noise has no density structure; EOM should not hallucinate
  // many confident clusters.
  auto pts = UniformFill<2>(2000, 5);
  auto h = Hdbscan(pts, 10);
  StabilityClusters sc = ExtractStableClusters(h.dendrogram, 50);
  std::set<int32_t> clusters;
  for (int32_t l : sc.label) {
    if (l != kNoise) clusters.insert(l);
  }
  EXPECT_LE(clusters.size(), 25u);
}

TEST(Stability, Deterministic) {
  auto [pts, truth] = PlantedBlobs(100, 4, 40, 9);
  (void)truth;
  auto h1 = Hdbscan(pts, 5);
  auto h2 = Hdbscan(pts, 5);
  auto a = ExtractStableClusters(h1.dendrogram, 10);
  auto b = ExtractStableClusters(h2.dendrogram, 10);
  EXPECT_EQ(a.label, b.label);
}

TEST(Stability, TinyInputs) {
  std::vector<Point<2>> two{{{0.0, 0.0}}, {{1.0, 1.0}}};
  auto h = Hdbscan(two, 1);
  auto sc = ExtractStableClusters(h.dendrogram, 2);
  EXPECT_EQ(sc.label.size(), 2u);  // no crash; labels well-formed
  std::vector<Point<2>> pts = test::RandomPoints<2>(8, 2);
  auto h8 = Hdbscan(pts, 2);
  auto sc8 = ExtractStableClusters(h8.dendrogram, 3);
  EXPECT_EQ(sc8.label.size(), 8u);
}

}  // namespace
}  // namespace parhc
