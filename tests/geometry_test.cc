// Geometric primitives: the distance-bound invariants that WSPD separation
// tests and MemoGFK window pruning depend on for correctness.
#include <gtest/gtest.h>

#include <random>

#include "geometry/box.h"
#include "geometry/point.h"
#include "test_util.h"

namespace parhc {
namespace {

template <int D>
Box<D> RandomBox(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(-50.0, 50.0);
  Box<D> b = Box<D>::Empty();
  for (int k = 0; k < 4; ++k) {
    Point<D> p;
    for (int d = 0; d < D; ++d) p[d] = u(rng);
    b.Extend(p);
  }
  return b;
}

template <int D>
Point<D> RandomPointIn(const Box<D>& b, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  Point<D> p;
  for (int d = 0; d < D; ++d) {
    p[d] = b.lo[d] + u(rng) * (b.hi[d] - b.lo[d]);
  }
  return p;
}

TEST(Box, EmptyExtendsToPoint) {
  Box<3> b = Box<3>::Empty();
  Point<3> p{{1, 2, 3}};
  b.Extend(p);
  EXPECT_EQ(b.lo, p);
  EXPECT_EQ(b.hi, p);
  EXPECT_EQ(b.SphereRadius(), 0.0);
}

// The invariant MemoGFK's interval pruning rests on (Figure 3): for any
// points p in A and q in B,
//   MinSquaredDistance(A,B) <= d(p,q)^2 <= MaxSquaredDistance(A,B).
TEST(Box, MinMaxDistanceBracketAllPointPairs) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    Box<3> a = RandomBox<3>(rng);
    Box<3> b = RandomBox<3>(rng);
    double lo = a.MinSquaredDistance(b);
    double hi = a.MaxSquaredDistance(b);
    EXPECT_LE(lo, hi);
    for (int s = 0; s < 20; ++s) {
      Point<3> p = RandomPointIn(a, rng);
      Point<3> q = RandomPointIn(b, rng);
      double d2 = SquaredDistance(p, q);
      ASSERT_GE(d2, lo - 1e-9);
      ASSERT_LE(d2, hi + 1e-9);
    }
  }
}

// GetRho / GetPairs prune with box distances while separation tests use
// sphere distances: soundness needs SphereDistance <= point distances too
// (the sphere contains the box).
TEST(Box, SphereDistanceIsAlsoALowerBound) {
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    Box<2> a = RandomBox<2>(rng);
    Box<2> b = RandomBox<2>(rng);
    double sd = SphereDistance(a, b);
    EXPECT_LE(sd * sd, a.MinSquaredDistance(b) + 1e-9)
        << "sphere distance must not exceed box distance";
    for (int s = 0; s < 10; ++s) {
      double d = Distance(RandomPointIn(a, rng), RandomPointIn(b, rng));
      ASSERT_LE(sd, d + 1e-9);
    }
  }
}

TEST(Box, MinDistanceMonotoneUnderShrinking) {
  // Child boxes (subsets) can only be farther apart — the property that
  // makes lb-based subtree pruning sound.
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    Box<3> a = RandomBox<3>(rng);
    Box<3> b = RandomBox<3>(rng);
    Box<3> child = Box<3>::Empty();
    for (int k = 0; k < 3; ++k) child.Extend(RandomPointIn(a, rng));
    ASSERT_GE(child.MinSquaredDistance(b), a.MinSquaredDistance(b) - 1e-9);
    ASSERT_LE(child.MaxSquaredDistance(b), a.MaxSquaredDistance(b) + 1e-9);
  }
}

TEST(Box, OverlappingBoxesHaveZeroMinDistance) {
  Box<2> a{{{0, 0}}, {{2, 2}}};
  Box<2> b{{{1, 1}}, {{3, 3}}};
  EXPECT_EQ(a.MinSquaredDistance(b), 0.0);
  EXPECT_GT(a.MaxSquaredDistance(b), 0.0);
}

TEST(Box, WidestDimIsCorrect) {
  Box<3> b{{{0, 0, 0}}, {{1, 5, 2}}};
  EXPECT_EQ(b.WidestDim(), 1);
}

TEST(WellSeparated, SeparationConstantMonotone) {
  // If a pair is well-separated at s, it is well-separated at any s' < s.
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 300; ++trial) {
    Box<2> a = RandomBox<2>(rng);
    Box<2> b = RandomBox<2>(rng);
    for (double s : {8.0, 4.0, 2.0, 1.0}) {
      if (WellSeparated(a, b, s)) {
        for (double s2 : {0.5, 1.0, 2.0, 4.0}) {
          if (s2 <= s) {
            ASSERT_TRUE(WellSeparated(a, b, s2));
          }
        }
      }
    }
  }
}

TEST(WellSeparated, TranslatedCopiesSeparateAtLargeDistance) {
  std::mt19937_64 rng(19);
  Box<2> a = RandomBox<2>(rng);
  Box<2> b = a;
  double r = a.SphereRadius();
  // Shift b far along x: separation must eventually hold for s = 2.
  for (int d = 0; d < 2; ++d) {
    b.lo[d] += 0;  // keep shape
  }
  b.lo[0] += 100 * (r + 1);
  b.hi[0] += 100 * (r + 1);
  EXPECT_TRUE(WellSeparated(a, b, 2.0));
  // Overlapping copies are never well-separated (unless degenerate).
  if (r > 0) {
    EXPECT_FALSE(WellSeparated(a, a, 2.0));
  }
}

TEST(Point, DistanceBasics) {
  Point<2> a{{0, 0}}, b{{3, 4}};
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(Distance(a, a), 0.0);
  EXPECT_TRUE(a != b);
  EXPECT_TRUE(a == a);
}

TEST(Point, TriangleInequalitySampled) {
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> u(-10, 10);
  for (int t = 0; t < 500; ++t) {
    Point<5> a, b, c;
    for (int d = 0; d < 5; ++d) {
      a[d] = u(rng);
      b[d] = u(rng);
      c[d] = u(rng);
    }
    ASSERT_LE(Distance(a, c), Distance(a, b) + Distance(b, c) + 1e-9);
  }
}

}  // namespace
}  // namespace parhc
