// Delaunay triangulation validity and EMST-Delaunay vs the WSPD methods.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "delaunay/delaunay.h"
#include "emst/emst_delaunay.h"
#include "emst/emst_memogfk.h"
#include "test_util.h"

namespace parhc {
namespace {

using test::RandomPoints;
using test::TotalWeight;

long double InCircleRef(const Point<2>& a, const Point<2>& b,
                        const Point<2>& c, const Point<2>& d) {
  long double adx = (long double)a[0] - d[0], ady = (long double)a[1] - d[1];
  long double bdx = (long double)b[0] - d[0], bdy = (long double)b[1] - d[1];
  long double cdx = (long double)c[0] - d[0], cdy = (long double)c[1] - d[1];
  long double ad2 = adx * adx + ady * ady;
  long double bd2 = bdx * bdx + bdy * bdy;
  long double cd2 = cdx * cdx + cdy * cdy;
  return adx * (bdy * cd2 - cdy * bd2) - ady * (bdx * cd2 - cdx * bd2) +
         ad2 * (bdx * cdy - cdx * bdy);
}

TEST(Delaunay, Triangle) {
  std::vector<Point<2>> pts{{{0, 0}}, {{1, 0}}, {{0, 1}}};
  auto tri = DelaunayTriangulate(pts);
  ASSERT_EQ(tri.triangles.size(), 1u);
  EXPECT_EQ(tri.edges.size(), 3u);
}

TEST(Delaunay, Square) {
  std::vector<Point<2>> pts{{{0, 0}}, {{1, 0}}, {{1, 1}}, {{0, 1}}};
  auto tri = DelaunayTriangulate(pts);
  EXPECT_EQ(tri.triangles.size(), 2u);
  EXPECT_EQ(tri.edges.size(), 5u);  // 4 sides + 1 diagonal
}

class DelaunayRandomTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DelaunayRandomTest, EmptyCircumcircleProperty) {
  size_t n = GetParam();
  auto pts = RandomPoints<2>(n, n * 3 + 1);
  auto tri = DelaunayTriangulate(pts);
  // Euler bound: at most 2n - 2 - h triangles, 3n - 3 - h edges.
  EXPECT_LE(tri.edges.size(), 3 * n);
  // Empty circumcircle: no point strictly inside any triangle's circle
  // (allow a tiny relative slack for the long double arithmetic).
  for (const auto& t : tri.triangles) {
    for (uint32_t p = 0; p < n; ++p) {
      if (p == t[0] || p == t[1] || p == t[2]) continue;
      long double det =
          InCircleRef(pts[t[0]], pts[t[1]], pts[t[2]], pts[p]);
      ASSERT_LE(det, 1e-3L) << "point " << p << " inside circumcircle";
    }
  }
}

TEST_P(DelaunayRandomTest, EdgesFormConnectedPlanarGraph) {
  size_t n = GetParam();
  auto pts = RandomPoints<2>(n, n * 7 + 5);
  auto tri = DelaunayTriangulate(pts);
  UnionFind uf(n);
  for (auto [u, v] : tri.edges) uf.Union(u, v);
  EXPECT_EQ(uf.num_components(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DelaunayRandomTest,
                         ::testing::Values(4, 10, 50, 200, 1000));

TEST(Delaunay, CollinearPoints) {
  std::vector<Point<2>> pts;
  for (int i = 0; i < 20; ++i) pts.push_back({{double(i), 2.0 * i}});
  auto tri = DelaunayTriangulate(pts);
  // No real triangles, but consecutive points must be connected.
  UnionFind uf(pts.size());
  for (auto [u, v] : tri.edges) uf.Union(u, v);
  EXPECT_EQ(uf.num_components(), 1u);
}

TEST(Delaunay, GridWithCocircularities) {
  // Regular grid: many exactly-cocircular quadruples; triangulation must
  // still produce a valid connected planar graph.
  std::vector<Point<2>> pts;
  for (int x = 0; x < 12; ++x) {
    for (int y = 0; y < 12; ++y) pts.push_back({{double(x), double(y)}});
  }
  auto tri = DelaunayTriangulate(pts);
  UnionFind uf(pts.size());
  for (auto [u, v] : tri.edges) uf.Union(u, v);
  EXPECT_EQ(uf.num_components(), 1u);
  EXPECT_LE(tri.edges.size(), 3 * pts.size());
}

class EmstDelaunayTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EmstDelaunayTest, MatchesMemoGfk) {
  size_t n = GetParam();
  auto pts = RandomPoints<2>(n, n + 11);
  auto mst_d = EmstDelaunay(pts);
  auto mst_m = EmstMemoGfk(pts);
  ASSERT_EQ(mst_d.size(), n - 1);
  double wd = TotalWeight(mst_d), wm = TotalWeight(mst_m);
  EXPECT_NEAR(wd, wm, 1e-9 * (1 + wm));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EmstDelaunayTest,
                         ::testing::Values(2, 3, 10, 100, 2000));

TEST(EmstDelaunay, MatchesPrimOracle) {
  auto pts = RandomPoints<2>(300, 6);
  EXPECT_NEAR(TotalWeight(EmstDelaunay(pts)), test::PrimEmstWeight(pts),
              1e-9);
}

TEST(EmstDelaunay, HandlesDuplicates) {
  auto pts = test::DuplicatedPoints<2>(300, 17);
  double expect = test::PrimEmstWeight(pts);
  auto mst = EmstDelaunay(pts);
  ASSERT_EQ(mst.size(), pts.size() - 1);
  EXPECT_NEAR(TotalWeight(mst), expect, 1e-9 * (1 + expect));
}

TEST(EmstDelaunay, ClusteredData) {
  auto pts = SeedSpreaderVarden<2>(2000, 23, 5);
  auto mst_d = EmstDelaunay(pts);
  auto mst_m = EmstMemoGfk(pts);
  EXPECT_NEAR(TotalWeight(mst_d), TotalWeight(mst_m),
              1e-9 * TotalWeight(mst_m));
}

}  // namespace
}  // namespace parhc
