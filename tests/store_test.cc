// Persistent artifact store (src/store/): snapshot round trips, typed
// rejection of corrupt / truncated / version-skewed files, and
// snapshot-while-serving concurrency.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "engine/engine.h"
#include "store/artifact_io.h"
#include "store/manifest.h"
#include "store/snapshot.h"
#include "test_util.h"

namespace parhc {
namespace {

namespace fs = std::filesystem;

/// A fresh empty directory under the test temp root, removed by the
/// destructor.
struct TempDir {
  explicit TempDir(const std::string& tag)
      : path(fs::path(::testing::TempDir()) /
             ("parhc_store_" + tag + "_" +
              std::to_string(reinterpret_cast<uintptr_t>(this)))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
  fs::path path;
};

std::vector<uint8_t> ReadAll(const fs::path& p) {
  std::ifstream in(p, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in.good()) << p;
  std::vector<uint8_t> bytes(static_cast<size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void WriteAll(const fs::path& p, const std::vector<uint8_t>& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << p;
}

/// Sorted relative file names inside a dataset directory.
std::vector<std::string> DirFiles(const fs::path& dir) {
  std::vector<std::string> names;
  for (const auto& e : fs::directory_iterator(dir)) {
    names.push_back(e.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

/// Warms an engine dataset through the standard query mix so every
/// artifact class (tree, kNN prefixes, EMST, single-linkage dendrogram,
/// two per-minPts clusterings with dendrograms) is cached.
void WarmDataset(ClusteringEngine& engine, const std::string& name) {
  EngineRequest req;
  req.dataset = name;
  req.type = QueryType::kHdbscan;
  req.min_pts = 16;
  ASSERT_TRUE(engine.Run(req).ok);
  req.min_pts = 5;
  ASSERT_TRUE(engine.Run(req).ok);
  req.type = QueryType::kEmst;
  ASSERT_TRUE(engine.Run(req).ok);
  req.type = QueryType::kSingleLinkage;
  req.k = 3;
  ASSERT_TRUE(engine.Run(req).ok);
}

// --- Round trips ----------------------------------------------------------

TEST(SnapshotRoundTrip, StaticArtifactsBitIdentical) {
  auto pts = SeedSpreaderVarden<2>(2500, 21, 3);
  ClusteringEngine cold;
  cold.registry().Add("d", pts);
  WarmDataset(cold, "d");

  TempDir dir("static");
  ASSERT_EQ(cold.SaveDataset("d", dir.str()), "");

  ClusteringEngine warm;
  ASSERT_EQ(warm.LoadDataset("d", dir.str()), "");

  auto infos = warm.registry().List();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].dim, 2);
  EXPECT_EQ(infos[0].num_points, pts.size());
  EXPECT_EQ(infos[0].knn_k, 16u);
  EXPECT_EQ(infos[0].cached_clusterings, 2u);

  EngineRequest req;
  req.dataset = "d";
  for (int min_pts : {5, 16}) {
    req.type = QueryType::kHdbscan;
    req.min_pts = min_pts;
    EngineResponse a = cold.Run(req);
    EngineResponse b = warm.Run(req);
    ASSERT_TRUE(a.ok && b.ok);
    // The warm engine must answer entirely from loaded artifacts.
    EXPECT_TRUE(b.built.empty())
        << "minPts=" << min_pts << " rebuilt " << b.built[0];
    EXPECT_EQ(a.mst_weight, b.mst_weight);
    ASSERT_EQ(a.mst->size(), b.mst->size());
    for (size_t i = 0; i < a.mst->size(); ++i) {
      ASSERT_EQ((*a.mst)[i].u, (*b.mst)[i].u);
      ASSERT_EQ((*a.mst)[i].v, (*b.mst)[i].v);
      ASSERT_EQ((*a.mst)[i].w, (*b.mst)[i].w);
    }
    ASSERT_EQ(a.core_dist->size(), b.core_dist->size());
    for (size_t i = 0; i < a.core_dist->size(); ++i) {
      ASSERT_EQ((*a.core_dist)[i], (*b.core_dist)[i]);
    }
    // Flat clusterings from the loaded dendrogram.
    req.type = QueryType::kStableClusters;
    req.min_cluster_size = 20;
    EngineResponse ca = cold.Run(req);
    EngineResponse cb = warm.Run(req);
    ASSERT_TRUE(ca.ok && cb.ok);
    EXPECT_EQ(ca.labels, cb.labels);
  }
  req.type = QueryType::kEmst;
  EngineResponse ea = cold.Run(req);
  EngineResponse eb = warm.Run(req);
  ASSERT_TRUE(ea.ok && eb.ok);
  EXPECT_TRUE(eb.built.empty());
  EXPECT_EQ(ea.mst_weight, eb.mst_weight);
  req.type = QueryType::kSingleLinkage;
  req.k = 3;
  EngineResponse sa = cold.Run(req);
  EngineResponse sb = warm.Run(req);
  ASSERT_TRUE(sa.ok && sb.ok);
  EXPECT_EQ(sa.labels, sb.labels);
}

TEST(SnapshotRoundTrip, SaveLoadSaveByteIdentical) {
  auto pts = test::RandomPoints<3>(1200, 7);
  ClusteringEngine engine;
  engine.registry().Add("d", pts);
  WarmDataset(engine, "d");

  TempDir dir1("first"), dir2("second");
  ASSERT_EQ(engine.SaveDataset("d", dir1.str()), "");

  ClusteringEngine loaded;
  ASSERT_EQ(loaded.LoadDataset("d", dir1.str()), "");
  ASSERT_EQ(loaded.SaveDataset("d", dir2.str()), "");

  ASSERT_EQ(DirFiles(dir1.path), DirFiles(dir2.path));
  for (const std::string& name : DirFiles(dir1.path)) {
    EXPECT_EQ(ReadAll(dir1.path / name), ReadAll(dir2.path / name))
        << name << " is not byte-identical across save -> load -> save";
  }
}

TEST(SnapshotRoundTrip, DynamicForestRoundTrip) {
  auto pts = SeedSpreaderVarden<2>(1500, 33, 3);
  ClusteringEngine cold;
  cold.registry().AddDynamic("d", 2);
  auto rows = test::RowsFrom(pts);
  // Several batches (a multi-shard forest) plus deletes (tombstones).
  ASSERT_EQ(cold.InsertBatch(
                "d", {rows.begin(), rows.begin() + 1000}, nullptr),
            "");
  ASSERT_EQ(cold.InsertBatch(
                "d", {rows.begin() + 1000, rows.begin() + 1400}, nullptr),
            "");
  ASSERT_EQ(cold.InsertBatch("d", {rows.begin() + 1400, rows.end()}, nullptr),
            "");
  size_t deleted = 0;
  ASSERT_EQ(cold.DeleteBatch("d", {3, 44, 555, 1401}, &deleted), "");
  EXPECT_EQ(deleted, 4u);

  EngineRequest req;
  req.dataset = "d";
  req.type = QueryType::kEmst;
  EngineResponse ea = cold.Run(req);
  ASSERT_TRUE(ea.ok) << ea.error;
  req.type = QueryType::kHdbscan;
  req.min_pts = 10;
  EngineResponse ha = cold.Run(req);
  ASSERT_TRUE(ha.ok) << ha.error;

  TempDir dir("dynamic"), dir2("dynamic2");
  ASSERT_EQ(cold.SaveDataset("d", dir.str()), "");

  ClusteringEngine warm;
  ASSERT_EQ(warm.LoadDataset("d", dir.str()), "");
  auto infos = warm.registry().List();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_TRUE(infos[0].dynamic);
  EXPECT_EQ(infos[0].num_points, pts.size() - 4);

  // The restored forest answers bit-identically (per-shard EMSTs and the
  // cross tier came back warm; only the global Kruskal re-runs).
  req.type = QueryType::kEmst;
  EngineResponse eb = warm.Run(req);
  ASSERT_TRUE(eb.ok) << eb.error;
  EXPECT_EQ(ea.mst_weight, eb.mst_weight);
  ASSERT_EQ(ea.point_ids->size(), eb.point_ids->size());
  EXPECT_EQ(*ea.point_ids, *eb.point_ids);
  req.type = QueryType::kHdbscan;
  EngineResponse hb = warm.Run(req);
  ASSERT_TRUE(hb.ok) << hb.error;
  EXPECT_EQ(ha.mst_weight, hb.mst_weight);
  for (size_t i = 0; i < ha.core_dist->size(); ++i) {
    ASSERT_EQ((*ha.core_dist)[i], (*hb.core_dist)[i]);
  }

  // Gid allocation resumes after the saved cursor: new inserts never
  // collide with restored gids.
  uint32_t first = 0;
  ASSERT_EQ(warm.InsertBatch("d", {rows.begin(), rows.begin() + 5}, &first),
            "");
  EXPECT_GE(first, pts.size());

  // And the dynamic manifest round-trips byte-identically too.
  ClusteringEngine replay;
  ASSERT_EQ(replay.LoadDataset("d", dir.str()), "");
  ASSERT_EQ(replay.SaveDataset("d", dir2.str()), "");
  ASSERT_EQ(DirFiles(dir.path), DirFiles(dir2.path));
  for (const std::string& name : DirFiles(dir.path)) {
    EXPECT_EQ(ReadAll(dir.path / name), ReadAll(dir2.path / name))
        << name << " is not byte-identical across save -> load -> save";
  }
}

// Saving right after a delete — before any build re-runs
// PurgeStaleCrossEdges — must not snapshot cross-tier entries keyed by
// retired content ids (their edges can reference tombstoned endpoints,
// which LoadFrom rightly rejects). Regression: this exact sequence once
// produced a snapshot the engine itself refused to load.
TEST(SnapshotRoundTrip, SaveAfterDeleteWithoutRebuildLoads) {
  // Two shards (different Bentley–Saxe size classes, so no merge) whose
  // between-shard closest pair is known by construction: batch A sits in
  // [0,1]^2 plus an outpost at (10, 0) — gid 100; batch B sits in
  // [20,21]^2 plus an outpost at (10.1, 0) — gid 101. The cached cross
  // BCCP edge is therefore (100, 101), and deleting gid 100 leaves the
  // cross tier holding a stale entry whose endpoint is tombstoned.
  ClusteringEngine engine;
  engine.registry().AddDynamic("d", 2);
  auto batch_a = test::RowsFrom(test::RandomPoints<2>(100, 13, /*side=*/1.0));
  batch_a.push_back({10.0, 0.0});  // gid 100
  auto batch_b = test::RowsFrom(test::RandomPoints<2>(40, 14, /*side=*/1.0));
  for (auto& row : batch_b) {
    row[0] += 20.0;
    row[1] += 20.0;
  }
  batch_b.insert(batch_b.begin(), {10.1, 0.0});  // gid 101
  ASSERT_EQ(engine.InsertBatch("d", batch_a, nullptr), "");
  ASSERT_EQ(engine.InsertBatch("d", batch_b, nullptr), "");
  EngineRequest req;
  req.dataset = "d";
  req.type = QueryType::kEmst;
  EngineResponse before = engine.Run(req);
  ASSERT_TRUE(before.ok) << before.error;  // populates the cross tier
  size_t deleted = 0;
  ASSERT_EQ(engine.DeleteBatch("d", {100}, &deleted), "");
  ASSERT_EQ(deleted, 1u);

  TempDir dir("stale_cross");
  ASSERT_EQ(engine.SaveDataset("d", dir.str()), "");
  ClusteringEngine warm;
  ASSERT_EQ(warm.LoadDataset("d", dir.str()), "");

  // Both engines agree on the post-delete EMST.
  EngineResponse a = engine.Run(req);
  EngineResponse b = warm.Run(req);
  ASSERT_TRUE(a.ok && b.ok) << a.error << b.error;
  EXPECT_EQ(a.mst_weight, b.mst_weight);
}

// --- Fuzz: corrupt / truncated / mismatched files must raise -------------

/// A small saved static dataset reused by the fuzz cases.
class SnapshotFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("fuzz");
    ClusteringEngine engine;
    engine.registry().Add("d", test::RandomPoints<2>(300, 3));
    WarmDataset(engine, "d");
    ASSERT_EQ(engine.SaveDataset("d", dir_->str()), "");
  }

  /// Expects LoadDataset to reject the directory with a non-empty error
  /// (typed SnapshotError internally — never an abort).
  void ExpectLoadFails(const std::string& what) {
    ClusteringEngine engine;
    std::string err = engine.LoadDataset("d", dir_->str());
    EXPECT_NE(err, "") << what << ": corrupt snapshot was accepted";
  }

  std::unique_ptr<TempDir> dir_;
};

TEST_F(SnapshotFuzz, TruncatedFilesRaise) {
  for (const std::string& name : DirFiles(dir_->path)) {
    std::vector<uint8_t> orig = ReadAll(dir_->path / name);
    for (double f : {0.0, 0.2, 0.5, 0.9}) {
      size_t cut = static_cast<size_t>(orig.size() * f);
      WriteAll(dir_->path / name,
               {orig.begin(), orig.begin() + cut});
      ExpectLoadFails(name + " truncated to " + std::to_string(cut));
    }
    // Dropping the last byte alone must already be fatal.
    WriteAll(dir_->path / name, {orig.begin(), orig.end() - 1});
    ExpectLoadFails(name + " missing last byte");
    WriteAll(dir_->path / name, orig);
  }
  // Intact again: the round trip still loads.
  ClusteringEngine engine;
  EXPECT_EQ(engine.LoadDataset("d", dir_->str()), "");
}

TEST_F(SnapshotFuzz, FlippedBytesRaise) {
  // Exhaustive over the point file (its layout has no padding: header +
  // table + 16-byte point payload, all 8-aligned), sampled over the rest.
  fs::path points = dir_->path / PointsFileName();
  std::vector<uint8_t> orig = ReadAll(points);
  for (size_t i = 0; i < orig.size(); ++i) {
    std::vector<uint8_t> bad = orig;
    bad[i] ^= 0x40;
    WriteAll(points, bad);
    EXPECT_THROW(SnapshotFile f(points.string()), SnapshotError)
        << "flip at byte " << i << " was accepted";
  }
  WriteAll(points, orig);

  for (const std::string& name : DirFiles(dir_->path)) {
    std::vector<uint8_t> bytes = ReadAll(dir_->path / name);
    // Two flips in the header (dim field, file-size field), one past it
    // (section table, or first payload for single-section files) —
    // positions chosen to always land in checksummed bytes, never in
    // inter-section alignment padding.
    for (size_t pos : {size_t{9}, size_t{50}, size_t{96}}) {
      std::vector<uint8_t> bad = bytes;
      bad[pos] ^= 0x01;
      WriteAll(dir_->path / name, bad);
      ExpectLoadFails(name + " flipped at " + std::to_string(pos));
    }
    WriteAll(dir_->path / name, bytes);
  }
}

TEST_F(SnapshotFuzz, WrongVersionRaises) {
  fs::path points = dir_->path / PointsFileName();
  std::vector<uint8_t> bytes = ReadAll(points);
  bytes[4] ^= 0xff;  // SnapshotHeader::version (offset 4, little-endian)
  WriteAll(points, bytes);
  EXPECT_THROW(SnapshotFile f(points.string()), SnapshotVersionError);
  ExpectLoadFails("version skew");
}

TEST_F(SnapshotFuzz, WrongMagicRaises) {
  fs::path manifest = dir_->path / kManifestFileName;
  std::vector<uint8_t> bytes = ReadAll(manifest);
  bytes[0] = 'X';
  WriteAll(manifest, bytes);
  EXPECT_THROW(SnapshotFile f(manifest.string()), SnapshotFormatError);
  ExpectLoadFails("magic");
}

TEST_F(SnapshotFuzz, MissingFilesRaise) {
  fs::remove(dir_->path / KnnFileName());
  ExpectLoadFails("missing knn file");
  fs::remove(dir_->path / kManifestFileName);
  ExpectLoadFails("missing manifest");
}

// Manifest file-name fields are the one untrusted string joined onto a
// filesystem path; separators and dot components must be rejected before
// any loader touches the disk.
TEST(SnapshotSchema, ManifestPathTraversalRaises) {
  TempDir dir("traversal");
  for (const std::string& evil :
       {std::string("../evil.phcs"), std::string("a/b.phcs"),
        std::string(".."), std::string("")}) {
    StaticManifest m;
    m.dim = 2;
    m.n = 4;
    m.points_file = evil;
    std::string path = dir.str() + "/manifest.phcs";
    WriteStaticManifest(path, m);
    EXPECT_THROW(ReadStaticManifest(path), SnapshotFormatError) << evil;
  }
}

TEST(SnapshotSchema, WrongDimensionRaises) {
  TempDir dir("dim");
  auto pts = test::RandomPoints<3>(64, 9);
  std::string path = dir.str() + "/pts.phcs";
  SavePointsSnapshot<3>(path, pts);
  EXPECT_THROW(LoadPointsSnapshot<2>(path), SnapshotSchemaError);
  EXPECT_NO_THROW(LoadPointsSnapshot<3>(path));
}

TEST(SnapshotSchema, WrongKindRaises) {
  TempDir dir("kind");
  auto pts = test::RandomPoints<2>(64, 9);
  std::string path = dir.str() + "/pts.phcs";
  SavePointsSnapshot<2>(path, pts);
  EXPECT_THROW(LoadKdTreeSnapshot<2>(path), SnapshotSchemaError);
  EXPECT_THROW(LoadEdgesSnapshot(path, 0, 64), SnapshotSchemaError);
}

// --- Snapshot-while-serving (the TSan job runs this under -fsanitize=thread)

TEST(StoreConcurrency, SaveWhileServingStaysConsistent) {
  auto pts = SeedSpreaderVarden<2>(1200, 17, 3);
  ClusteringEngine engine;
  engine.registry().Add("d", pts);
  WarmDataset(engine, "d");
  TempDir save_dir("concurrent_save");
  TempDir seed_dir("concurrent_seed");
  ASSERT_EQ(engine.SaveDataset("d", seed_dir.str()), "");

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  // Readers: cache-hit queries run under the shared lock, concurrently
  // with the snapshot writer.
  std::thread reader([&] {
    EngineRequest req;
    req.dataset = "d";
    req.type = QueryType::kHdbscan;
    req.min_pts = 16;
    double want = engine.Run(req).mst_weight;
    while (!stop.load()) {
      EngineResponse r = engine.Run(req);
      if (!r.ok || r.mst_weight != want) failures.fetch_add(1);
    }
  });
  // Snapshotter: saves the served dataset repeatedly.
  std::thread saver([&] {
    for (int i = 0; i < 5; ++i) {
      if (engine.SaveDataset("d", save_dir.str()) != "") {
        failures.fetch_add(1);
      }
    }
  });
  // Loader: warm-starts new datasets into the same engine while both run.
  std::thread loader([&] {
    for (int i = 0; i < 3; ++i) {
      if (engine.LoadDataset("warm" + std::to_string(i), seed_dir.str()) !=
          "") {
        failures.fetch_add(1);
      }
    }
  });
  saver.join();
  loader.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(failures.load(), 0);

  // All three warm-started copies arrived, and the concurrently-written
  // snapshot is complete and loads cleanly into a fresh engine.
  EXPECT_EQ(engine.registry().List().size(), 4u);  // d + warm0..warm2
  ClusteringEngine check;
  EXPECT_EQ(check.LoadDataset("d", save_dir.str()), "");
  EXPECT_EQ(check.registry().List().size(), 1u);
}

}  // namespace
}  // namespace parhc
