// Observability layer unit tests: metrics registry rendering, latency
// histogram quantiles vs an exact reference, slow-query log semantics,
// the span tracer (including the Chrome trace_event JSON dump), and the
// StatsEpoch scoped-delta contract over util/stats.h.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "net/stats.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "obs/sources.h"
#include "obs/trace.h"
#include "obs/verb_counters.h"
#include "util/stats.h"

namespace parhc {
namespace {

// --- LatencyHistogram vs exact reference ---------------------------------

// Exact nearest-rank quantile over the raw samples.
uint64_t ReferenceQuantile(std::vector<uint64_t> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  if (rank < 1) rank = 1;
  if (rank > samples.size()) rank = samples.size();
  return samples[rank - 1];
}

TEST(LatencyHistogramObs, CountAndSumAreExact) {
  net::LatencyHistogram h;
  uint64_t sum = 0;
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 100ull, 1000000ull}) {
    h.Record(v);
    sum += v;
  }
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum_us(), sum);
}

TEST(LatencyHistogramObs, BucketBoundsArePowersOfTwo) {
  EXPECT_EQ(net::LatencyHistogram::BucketUpperUs(0), 0u);
  EXPECT_EQ(net::LatencyHistogram::BucketLowerUs(0), 0u);
  for (int b = 1; b < net::LatencyHistogram::kBuckets; ++b) {
    EXPECT_EQ(net::LatencyHistogram::BucketLowerUs(b), uint64_t{1} << (b - 1));
    EXPECT_EQ(net::LatencyHistogram::BucketUpperUs(b),
              (uint64_t{1} << b) - 1);
  }
}

// A sample that is alone in its bucket and sits exactly on the bucket's
// upper bound must be reported exactly (frac == 1 maps onto `hi`).
TEST(LatencyHistogramObs, ExactAtBucketUpperBound) {
  net::LatencyHistogram h;
  h.Record(0);
  h.Record(1);
  h.Record(3);
  h.Record(7);
  h.Record(1023);
  EXPECT_EQ(h.QuantileUs(1.0), 1023u);
  EXPECT_EQ(h.QuantileUs(0.2), 0u);
  EXPECT_EQ(h.QuantileUs(0.4), 1u);
  EXPECT_EQ(h.QuantileUs(0.6), 3u);
  EXPECT_EQ(h.QuantileUs(0.8), 7u);
}

// The interpolated quantile must land within the reference sample's
// bucket: error is bounded by one bucket width (the documented contract).
TEST(LatencyHistogramObs, QuantilesWithinOneBucketOfReference) {
  std::mt19937_64 rng(12345);
  std::lognormal_distribution<double> dist(6.0, 2.0);
  net::LatencyHistogram h;
  std::vector<uint64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    uint64_t us = static_cast<uint64_t>(dist(rng));
    samples.push_back(us);
    h.Record(us);
  }
  for (double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    uint64_t ref = ReferenceQuantile(samples, q);
    uint64_t got = h.QuantileUs(q);
    // The reference sample lives in some bucket [lo, hi]; the estimate
    // must not leave it.
    int b = 0;
    uint64_t v = ref;
    while (v > 0 && b < net::LatencyHistogram::kBuckets - 1) {
      v >>= 1;
      ++b;
    }
    EXPECT_GE(got, net::LatencyHistogram::BucketLowerUs(b))
        << "q=" << q << " ref=" << ref;
    EXPECT_LE(got, net::LatencyHistogram::BucketUpperUs(b))
        << "q=" << q << " ref=" << ref;
  }
}

TEST(LatencyHistogramObs, MergeFromAddsCountsSumsAndBuckets) {
  net::LatencyHistogram a, b;
  a.Record(5);
  a.Record(100);
  b.Record(5);
  b.Record(7000);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum_us(), 5u + 100u + 5u + 7000u);
  // Bucket for 5 (bit_width 3) now holds two samples.
  EXPECT_EQ(a.bucket_count(3), 2u);
  EXPECT_EQ(a.QuantileUs(1.0), net::LatencyHistogram::BucketUpperUs(13));
}

TEST(LatencyHistogramObs, EmptyHistogramQuantileIsZero) {
  net::LatencyHistogram h;
  EXPECT_EQ(h.QuantileUs(0.5), 0u);
  EXPECT_EQ(h.count(), 0u);
}

// --- Metrics registry rendering ------------------------------------------

TEST(MetricsRegistry, PrometheusTextSortsFamiliesAndKeepsSampleOrder) {
  obs::MetricsRegistry reg;
  reg.AddSource([](obs::MetricsBuilder& b) {
    b.Gauge("parhc_zeta", "Last family by name.", 2);
    b.Counter("parhc_alpha_total", "First family by name.", 41,
              {{"kind", "b"}});
    b.Counter("parhc_alpha_total", "First family by name.", 1,
              {{"kind", "a"}});
  });
  std::string text = reg.PrometheusText();
  std::string expected =
      "# HELP parhc_alpha_total First family by name.\n"
      "# TYPE parhc_alpha_total counter\n"
      "parhc_alpha_total{kind=\"b\"} 41\n"
      "parhc_alpha_total{kind=\"a\"} 1\n"
      "# HELP parhc_zeta Last family by name.\n"
      "# TYPE parhc_zeta gauge\n"
      "parhc_zeta 2\n";
  EXPECT_EQ(text, expected);
}

TEST(MetricsRegistry, HistogramRendersCumulativeBucketsSumCount) {
  obs::MetricsRegistry reg;
  reg.AddSource([](obs::MetricsBuilder& b) {
    b.Histogram("parhc_h_us", "A histogram.", {{1, 3}, {3, 5}}, 9.5, 5);
  });
  std::string text = reg.PrometheusText();
  std::string expected =
      "# HELP parhc_h_us A histogram.\n"
      "# TYPE parhc_h_us histogram\n"
      "parhc_h_us_bucket{le=\"1\"} 3\n"
      "parhc_h_us_bucket{le=\"3\"} 5\n"
      "parhc_h_us_bucket{le=\"+Inf\"} 5\n"
      "parhc_h_us_sum 9.5\n"
      "parhc_h_us_count 5\n";
  EXPECT_EQ(text, expected);
}

TEST(MetricsRegistry, SamplesMergeAcrossSources) {
  obs::MetricsRegistry reg;
  reg.AddSource([](obs::MetricsBuilder& b) {
    b.Gauge("parhc_g", "Shared family.", 1, {{"src", "one"}});
  });
  reg.AddSource([](obs::MetricsBuilder& b) {
    b.Gauge("parhc_g", "Shared family.", 2, {{"src", "two"}});
  });
  std::vector<obs::MetricFamily> fams = reg.Collect();
  ASSERT_EQ(fams.size(), 1u);
  EXPECT_EQ(fams[0].samples.size(), 2u);
}

TEST(MetricsRegistry, JsonIsWellFormedAndEscapes) {
  obs::MetricsRegistry reg;
  reg.AddSource([](obs::MetricsBuilder& b) {
    b.Gauge("parhc_g", "Says \"hi\".", 1.5, {{"name", "a\\b"}});
  });
  std::string json = reg.Json();
  EXPECT_NE(json.find("\"name\":\"parhc_g\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("Says \\\"hi\\\"."), std::string::npos);
  EXPECT_NE(json.find("a\\\\b"), std::string::npos);
  EXPECT_NE(json.find("\"value\":1.5"), std::string::npos);
  // Balanced braces/brackets (single line, no strings with braces here
  // beyond the escaped content checked above).
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(MetricsRegistry, FormatMetricValueIntegersHaveNoDecimalPoint) {
  EXPECT_EQ(obs::FormatMetricValue(42), "42");
  EXPECT_EQ(obs::FormatMetricValue(0), "0");
  EXPECT_EQ(obs::FormatMetricValue(-3), "-3");
  EXPECT_EQ(obs::FormatMetricValue(1.5), "1.5");
}

// --- Slow-query log -------------------------------------------------------

obs::SlowLogRecord QueryRec(uint64_t total_us, const char* verb = "hdbscan") {
  obs::SlowLogRecord r;
  r.verb = verb;
  r.dataset = "d";
  r.queue_us = 1;
  r.build_us = total_us - 1;
  r.total_us = total_us;
  return r;
}

TEST(SlowLog, ThresholdGatesQueriesNotBuilds) {
  obs::SlowLog log(/*capacity=*/8, /*threshold_us=*/1000);
  log.RecordQuery(QueryRec(999));
  EXPECT_EQ(log.size(), 0u);
  log.RecordQuery(QueryRec(1000));
  EXPECT_EQ(log.size(), 1u);
  obs::SlowLogRecord b;
  b.artifact = "mst@10";
  b.build_us = 5;
  b.total_us = 5;  // far below threshold, recorded anyway
  log.RecordBuild(b);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.Entries()[1].kind, obs::SlowLogRecord::Kind::kBuild);
  EXPECT_EQ(log.total_recorded(), 2u);
}

TEST(SlowLog, EvictsOldestAtCapacityAndKeepsOrder) {
  obs::SlowLog log(/*capacity=*/3, /*threshold_us=*/0);
  for (uint64_t i = 1; i <= 5; ++i) log.RecordQuery(QueryRec(i * 100));
  std::vector<obs::SlowLogRecord> e = log.Entries();
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(e[0].total_us, 300u);
  EXPECT_EQ(e[2].total_us, 500u);
  EXPECT_EQ(log.total_recorded(), 5u);  // monotone despite eviction
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_recorded(), 5u);  // survives Clear
}

TEST(SlowLog, FormatIsOneStableLine) {
  obs::SlowLogRecord r;
  r.kind = obs::SlowLogRecord::Kind::kBuild;
  r.dataset = "geo";
  r.artifact = "tree,mst@10";
  r.queue_us = 12;
  r.build_us = 3400;
  r.total_us = 3412;
  r.group = 8;
  r.trace_id = 7;
  EXPECT_EQ(r.Format(),
            "slow kind=build verb=- dataset=geo artifact=tree,mst@10 "
            "queue_us=12 build_us=3400 total_us=3412 group=8 cache_hit=0 "
            "trace=7");
}

TEST(SlowLog, SetThresholdTakesEffect) {
  obs::SlowLog log;
  EXPECT_EQ(log.threshold_us(), 10000u);
  log.set_threshold_us(50);
  log.RecordQuery(QueryRec(60));
  EXPECT_EQ(log.size(), 1u);
}

// --- Tracer ---------------------------------------------------------------

// The tracer is process-global, so these tests serialize through gtest's
// single-threaded runner and clean up after themselves.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::Get().Clear();
    obs::Tracer::Get().Enable();
  }
  void TearDown() override {
    obs::Tracer::Get().Disable();
    obs::Tracer::Get().Clear();
  }
};

TEST_F(TracerTest, RecordedSpanAppearsInDump) {
  obs::Tracer& t = obs::Tracer::Get();
  uint64_t before = t.spans_recorded();
  t.RecordSpan("request:test", "net", 42, 1000, 5000);
  EXPECT_EQ(t.spans_recorded(), before + 1);
  std::string json = t.DumpJson();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"request:test\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"net\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"trace\":42}"), std::string::npos);
  // 1000ns begin, 4000ns duration -> microsecond fixed point.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":4.000"), std::string::npos);
}

TEST_F(TracerTest, DisabledRecordsNothing) {
  obs::Tracer& t = obs::Tracer::Get();
  t.Disable();
  uint64_t before = t.spans_recorded();
  { obs::Span s("request:ignored", "net"); }
  t.RecordSpan("request:ignored", "net", 1, 0, 1);
  EXPECT_EQ(t.spans_recorded(), before);
}

TEST_F(TracerTest, SpanUsesCurrentTraceContext) {
  obs::Tracer& t = obs::Tracer::Get();
  EXPECT_EQ(obs::CurrentTraceId(), 0u);
  {
    obs::TraceContext ctx(99);
    EXPECT_EQ(obs::CurrentTraceId(), 99u);
    {
      obs::TraceContext inner(7);
      EXPECT_EQ(obs::CurrentTraceId(), 7u);
    }
    EXPECT_EQ(obs::CurrentTraceId(), 99u);
    obs::Span s("phase:ctx", "algo");
  }
  EXPECT_EQ(obs::CurrentTraceId(), 0u);
  std::string json = t.DumpJson();
  EXPECT_NE(json.find("\"args\":{\"trace\":99}"), std::string::npos);
}

TEST_F(TracerTest, MintTraceIdIsNonzeroAndFresh) {
  obs::Tracer& t = obs::Tracer::Get();
  uint64_t a = t.MintTraceId();
  uint64_t b = t.MintTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST_F(TracerTest, InternReturnsStablePointer) {
  obs::Tracer& t = obs::Tracer::Get();
  const char* a = t.Intern("build:mst@10");
  const char* b = t.Intern("build:mst@10");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "build:mst@10");
  EXPECT_NE(t.Intern("build:mst@11"), a);
}

TEST_F(TracerTest, DumpJsonToFileWritesEventsAndCountsSpans) {
  obs::Tracer& t = obs::Tracer::Get();
  t.RecordSpan("request:a", "net", 1, 0, 10);
  t.RecordSpan("queue", "net", 1, 1, 2);
  std::string path = ::testing::TempDir() + "/obs_trace_dump.json";
  size_t spans = 0;
  ASSERT_TRUE(t.DumpJsonToFile(path, &spans));
  EXPECT_EQ(spans, 2u);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(content.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(content.find("\"name\":\"queue\""), std::string::npos);
}

TEST_F(TracerTest, DumpJsonToFileFailsOnBadPath) {
  EXPECT_FALSE(obs::Tracer::Get().DumpJsonToFile(
      "/nonexistent-dir-xyz/trace.json"));
}

TEST_F(TracerTest, ClearDropsSpansButKeepsRecordedTotal) {
  obs::Tracer& t = obs::Tracer::Get();
  t.RecordSpan("request:a", "net", 1, 0, 10);
  uint64_t recorded = t.spans_recorded();
  t.Clear();
  EXPECT_EQ(t.spans_recorded(), recorded);
  EXPECT_EQ(t.DumpJson().find("\"name\":\"request:a\""), std::string::npos);
}

TEST_F(TracerTest, ConcurrentRecordWhileDumpingIsSafe) {
  obs::Tracer& t = obs::Tracer::Get();
  std::atomic<bool> stop{false};
  std::thread recorder([&] {
    obs::TraceContext ctx(5);
    while (!stop.load(std::memory_order_relaxed)) {
      obs::Span s("phase:spin", "algo");
    }
  });
  for (int i = 0; i < 50; ++i) {
    std::string json = t.DumpJson();
    EXPECT_NE(json.find("traceEvents"), std::string::npos);
  }
  stop.store(true, std::memory_order_relaxed);
  recorder.join();
  EXPECT_GT(t.spans_recorded(), 0u);
}

// --- Obs metrics source ---------------------------------------------------

TEST(ObsMetricsSource, ExportsTracerAndSlowlogState) {
  obs::MetricsRegistry reg;
  obs::SlowLog log(/*capacity=*/4, /*threshold_us=*/123);
  obs::RegisterObsMetrics(reg, log);
  std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("parhc_trace_enabled"), std::string::npos);
  EXPECT_NE(text.find("parhc_trace_spans_total"), std::string::npos);
  EXPECT_NE(text.find("parhc_slowlog_threshold_us 123\n"),
            std::string::npos);
}

// --- StatsEpoch -----------------------------------------------------------

TEST(StatsEpochObs, DeltaIsScopedToTheEpoch) {
  Stats& s = Stats::Get();
  s.wspd_pairs_materialized.fetch_add(10, std::memory_order_relaxed);
  StatsEpoch epoch;
  s.wspd_pairs_materialized.fetch_add(7, std::memory_order_relaxed);
  s.bccp_computed.fetch_add(3, std::memory_order_relaxed);
  AlgoCounterSnapshot d = epoch.Delta();
  EXPECT_EQ(d.wspd_pairs_materialized, 7u);
  EXPECT_EQ(d.bccp_computed, 3u);
  EXPECT_EQ(d.wspd_pairs_visited, 0u);
}

TEST(StatsEpochObs, ResetPeakZeroesOnlyTheHighWaterMark) {
  Stats& s = Stats::Get();
  s.wspd_pairs_peak.store(999, std::memory_order_relaxed);
  uint64_t mat_before =
      s.wspd_pairs_materialized.load(std::memory_order_relaxed);
  StatsEpoch epoch(StatsEpoch::kResetPeak);
  EXPECT_EQ(s.wspd_pairs_peak.load(std::memory_order_relaxed), 0u);
  EXPECT_EQ(s.wspd_pairs_materialized.load(std::memory_order_relaxed),
            mat_before);
  s.wspd_pairs_peak.store(42, std::memory_order_relaxed);
  EXPECT_EQ(epoch.Delta().wspd_pairs_peak, 42u);  // high-water, not delta
}

// --- VerbCounters ---------------------------------------------------------

TEST(VerbCountersObs, IndexOfRoundTripsEveryVerb) {
  for (int i = 0; i < obs::VerbCounters::kNumVerbs; ++i) {
    EXPECT_EQ(obs::VerbCounters::IndexOf(obs::VerbCounters::kVerbs[i]), i)
        << obs::VerbCounters::kVerbs[i];
  }
  EXPECT_EQ(obs::VerbCounters::IndexOf("bogus"), obs::VerbCounters::kOther);
  EXPECT_EQ(obs::VerbCounters::IndexOf(""), obs::VerbCounters::kOther);
}

TEST(VerbCountersObs, SpanNamesParallelVerbTable) {
  for (int i = 0; i < obs::VerbCounters::kNumVerbs; ++i) {
    std::string expect =
        std::string("request:") + obs::VerbCounters::kVerbs[i];
    EXPECT_EQ(obs::VerbCounters::kRequestSpanNames[i], expect);
  }
}

TEST(VerbCountersObs, BumpAndTotalAgree) {
  obs::VerbCounters v;
  v.Bump("hdbscan");
  v.Bump("hdbscan");
  v.Bump("nonsense");
  v.BumpIndex(obs::VerbCounters::IndexOf("stats"));
  EXPECT_EQ(v.Count(obs::VerbCounters::IndexOf("hdbscan")), 2u);
  EXPECT_EQ(v.Count(obs::VerbCounters::kOther), 1u);
  EXPECT_EQ(v.Total(), 4u);
}

}  // namespace
}  // namespace parhc
