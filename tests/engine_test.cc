// Multi-query clustering engine: memoized artifact DAG, dataset registry,
// and serving front-end (src/engine/).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "data/generators.h"
#include "emst/emst.h"
#include "engine/engine.h"
#include "hdbscan/hdbscan.h"
#include "test_util.h"

namespace parhc {
namespace {

using test::SortedWeights;

// --- Core-distance prefix reuse -----------------------------------------

// One kNN@16 pass must yield, for every minPts <= 16, core distances that
// are bit-identical to a direct CoreDistances(tree, minPts) pass.
TEST(EnginePrefixReuse, DerivedCoreDistancesMatchDirectExactly) {
  auto pts = SeedSpreaderVarden<2>(3000, 11, 3);
  KdTree<2> tree(pts, 1);

  ClusteringEngine engine;
  engine.registry().Add("d", pts);
  EngineRequest req;
  req.dataset = "d";
  req.type = QueryType::kHdbscan;

  // Warm the prefix matrix at the largest minPts first.
  req.min_pts = 16;
  EngineResponse warm = engine.Run(req);
  ASSERT_TRUE(warm.ok) << warm.error;
  ASSERT_NE(std::find(warm.built.begin(), warm.built.end(), "knn@16"),
            warm.built.end());

  for (int min_pts : {2, 5, 10, 16}) {
    req.min_pts = min_pts;
    EngineResponse r = engine.Run(req);
    ASSERT_TRUE(r.ok) << r.error;
    // No further kNN pass: the @16 prefixes serve every smaller minPts.
    EXPECT_EQ(std::count_if(
                  r.built.begin(), r.built.end(),
                  [](const std::string& k) { return k.rfind("knn@", 0) == 0; }),
              0)
        << "minPts=" << min_pts << " rebuilt kNN";
    std::vector<double> direct = CoreDistances(tree, min_pts);
    ASSERT_EQ(r.core_dist->size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i) {
      ASSERT_EQ((*r.core_dist)[i], direct[i])
          << "minPts=" << min_pts << " point " << i;
    }
  }
}

// The same guarantee at the kNN API level: every column of the prefix
// matrix equals the corresponding KthNeighborDistances pass, and rows are
// sorted ascending.
TEST(EnginePrefixReuse, AllKnnDistancesColumnsMatchKthNeighbor) {
  auto pts = test::RandomPoints<3>(800, 5);
  KdTree<3> tree(pts, 1);
  constexpr size_t kK = 12;
  std::vector<double> prefix = AllKnnDistances(tree, kK);
  ASSERT_EQ(prefix.size(), pts.size() * kK);
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(prefix[i * kK], 0.0) << "self distance";
    for (size_t j = 1; j < kK; ++j) {
      EXPECT_LE(prefix[i * kK + j - 1], prefix[i * kK + j]);
    }
  }
  for (size_t k : {size_t{1}, size_t{4}, size_t{12}}) {
    std::vector<double> direct = KthNeighborDistances(tree, k);
    for (size_t i = 0; i < pts.size(); ++i) {
      ASSERT_EQ(prefix[i * kK + (k - 1)], direct[i]) << "k=" << k;
    }
  }
}

// --- Cached vs uncached equivalence -------------------------------------

TEST(EngineEquivalence, CachedHdbscanMatchesDirect) {
  auto pts = SeedSpreaderVarden<2>(4000, 13, 3);
  ClusteringEngine engine;
  engine.registry().Add("d", pts);

  EngineRequest req;
  req.dataset = "d";
  req.type = QueryType::kHdbscan;
  req.min_pts = 50;
  ASSERT_TRUE(engine.Run(req).ok);  // warm kNN@50 + clustering@50

  for (int min_pts : {5, 10, 20, 50}) {
    HdbscanResult direct = Hdbscan(pts, min_pts);
    req.min_pts = min_pts;
    EngineResponse r = engine.Run(req);
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_EQ(r.mst->size(), direct.mst.size());
    // Same mutual-reachability graph, unique generic-position weights:
    // the MST edge weight multisets must agree exactly.
    EXPECT_EQ(SortedWeights(*r.mst), SortedWeights(direct.mst))
        << "minPts=" << min_pts;
    EXPECT_EQ(r.mst_weight,
              std::accumulate(r.mst->begin(), r.mst->end(), 0.0,
                              [](double s, const WeightedEdge& e) {
                                return s + e.w;
                              }));
    // The dendrograms answer identical flat clusterings and reachability
    // queries (cross-checks the sequential vs parallel builder too).
    double eps = direct.dendrogram.Height(direct.dendrogram.root()) * 0.05;
    EXPECT_EQ(DbscanStarLabels(*r.dendrogram, *r.core_dist, eps),
              direct.ClustersAt(eps))
        << "minPts=" << min_pts;
    ReachabilityPlot cached = ComputeReachability(*r.dendrogram);
    ReachabilityPlot plain = direct.Reachability();
    EXPECT_EQ(cached.order, plain.order) << "minPts=" << min_pts;
    EXPECT_EQ(cached.value, plain.value) << "minPts=" << min_pts;
  }
}

TEST(EngineEquivalence, DbscanAtEpsAndStableClustersMatchDirect) {
  auto pts = SeedSpreaderVarden<2>(3000, 17, 4);
  HdbscanResult direct = Hdbscan(pts, 10);
  ClusteringEngine engine;
  engine.registry().Add("d", pts);

  EngineRequest req;
  req.dataset = "d";
  req.type = QueryType::kDbscanStarAt;
  req.min_pts = 10;
  for (double frac : {0.01, 0.05, 0.3}) {
    req.eps = direct.dendrogram.Height(direct.dendrogram.root()) * frac;
    EngineResponse r = engine.Run(req);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.labels, direct.ClustersAt(req.eps)) << "frac=" << frac;
  }

  req.type = QueryType::kStableClusters;
  req.min_cluster_size = 30;
  EngineResponse r = engine.Run(req);
  ASSERT_TRUE(r.ok) << r.error;
  StabilityClusters sc = ExtractStableClusters(direct.dendrogram, 30);
  EXPECT_EQ(r.labels, sc.label);
  EXPECT_EQ(r.stability, sc.stability);
}

TEST(EngineEquivalence, EmstAndSingleLinkageMatchDirect) {
  auto pts = test::RandomPoints<3>(2500, 23);
  std::vector<WeightedEdge> direct = Emst(pts);
  ClusteringEngine engine;
  engine.registry().Add("d", pts);

  EngineRequest req;
  req.dataset = "d";
  req.type = QueryType::kEmst;
  EngineResponse r = engine.Run(req);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(SortedWeights(*r.mst), SortedWeights(direct));

  req.type = QueryType::kSingleLinkage;
  req.k = 6;
  EngineResponse sl = engine.Run(req);
  ASSERT_TRUE(sl.ok) << sl.error;
  Dendrogram d = BuildDendrogramParallel(pts.size(), direct, 0);
  EXPECT_EQ(sl.labels, KClusters(d, 6));
  // EMST artifacts were reused, not rebuilt.
  EXPECT_NE(std::find(sl.reused.begin(), sl.reused.end(), "emst"),
            sl.reused.end());
}

// --- Cache mechanics ----------------------------------------------------

TEST(EngineCache, SecondIdenticalQueryIsAPureHit) {
  ClusteringEngine engine;
  engine.registry().Add("d", UniformFill<2>(2000, 3));
  EngineRequest req;
  req.dataset = "d";
  req.type = QueryType::kHdbscan;
  req.min_pts = 10;
  EngineResponse first = engine.Run(req);
  ASSERT_TRUE(first.ok);
  EXPECT_FALSE(first.built.empty());
  EngineResponse second = engine.Run(req);
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.built.empty()) << "second query rebuilt artifacts";
  EXPECT_EQ(second.mst.get(), first.mst.get());  // same shared snapshot
}

TEST(EngineCache, LruEvictionBoundsCachedClusterings) {
  ClusteringEngine engine;
  engine.registry().Add("d", UniformFill<2>(1500, 9));
  EngineRequest req;
  req.dataset = "d";
  req.type = QueryType::kHdbscan;
  std::vector<EngineResponse> held;
  for (int m = 2; m < 2 + static_cast<int>(kMaxCachedClusterings) + 4; ++m) {
    req.min_pts = m;
    held.push_back(engine.Run(req));  // responses outlive eviction
    ASSERT_TRUE(held.back().ok);
  }
  auto entry = engine.registry().Find("d");
  ASSERT_NE(entry, nullptr);
  EXPECT_LE(entry->num_cached_clusterings(), kMaxCachedClusterings);
  // Evicted snapshots stay valid through their shared_ptrs.
  for (const EngineResponse& r : held) {
    EXPECT_EQ(r.mst->size(), size_t{1499});
  }
}

TEST(EngineRegistry, ErrorsAndTypeErasedDispatch) {
  ClusteringEngine engine;
  EngineRequest req;
  req.dataset = "missing";
  EngineResponse r = engine.Run(req);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown dataset"), std::string::npos);

  engine.registry().Add("d7", ClusteredGaussians<7>(500, 2));
  req.dataset = "d7";
  req.type = QueryType::kHdbscan;
  req.min_pts = 5;
  r = engine.Run(req);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.mst->size(), size_t{499});

  req.min_pts = 0;
  EXPECT_FALSE(engine.Run(req).ok);
  req.min_pts = 501;
  EXPECT_FALSE(engine.Run(req).ok);

  std::vector<std::vector<double>> ragged = {{1, 2}, {3}};
  EXPECT_FALSE(engine.registry().TryAddRows("bad", ragged).empty());
  std::vector<std::vector<double>> dim6(4, std::vector<double>(6, 0.0));
  EXPECT_FALSE(engine.registry().TryAddRows("bad", dim6).empty());
  EXPECT_EQ(engine.registry().Find("bad"), nullptr);

  EXPECT_TRUE(engine.registry().Remove("d7"));
  EXPECT_FALSE(engine.registry().Remove("d7"));
  EXPECT_EQ(engine.registry().List().size(), size_t{0});
}

// Concurrent readers answer from shared artifacts while a writer builds a
// new parameterization; run under the sanitizer CI job this validates the
// readers-writer discipline.
TEST(EngineConcurrency, ParallelMixedQueriesStayConsistent) {
  auto pts = SeedSpreaderVarden<2>(2000, 29, 3);
  HdbscanResult direct = Hdbscan(pts, 8);
  double eps = direct.dendrogram.Height(direct.dendrogram.root()) * 0.05;
  std::vector<int32_t> expect = direct.ClustersAt(eps);

  ClusteringEngine engine;
  engine.registry().Add("d", pts);
  EngineRequest warm;
  warm.dataset = "d";
  warm.type = QueryType::kHdbscan;
  warm.min_pts = 8;
  ASSERT_TRUE(engine.Run(warm).ok);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 15; ++i) {
        EngineRequest req;
        req.dataset = "d";
        if (t == 0 && i % 5 == 0) {
          // One thread also triggers builds of new parameterizations.
          req.type = QueryType::kHdbscan;
          req.min_pts = 3 + i;
          if (!engine.Run(req).ok) failures.fetch_add(1);
          continue;
        }
        req.type = QueryType::kDbscanStarAt;
        req.min_pts = 8;
        req.eps = eps;
        EngineResponse r = engine.Run(req);
        if (!r.ok || r.labels != expect) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// Two independent datasets' cold builds must proceed concurrently through
// the build executor (no engine-wide mutex), and every result must be
// bit-identical to the serialized-build path (a fresh engine answering the
// same queries one at a time).
TEST(EngineConcurrency, TwoDatasetsBuildConcurrentlyAndMatchSerial) {
  auto pts_a = SeedSpreaderVarden<2>(2500, 41, 3);
  auto pts_b = SeedSpreaderVarden<2>(2500, 43, 3);

  ClusteringEngine serial;
  serial.registry().Add("a", pts_a);
  serial.registry().Add("b", pts_b);
  EngineRequest req;
  req.type = QueryType::kHdbscan;
  req.min_pts = 10;
  req.dataset = "a";
  EngineResponse want_a = serial.Run(req);
  req.dataset = "b";
  EngineResponse want_b = serial.Run(req);
  ASSERT_TRUE(want_a.ok && want_b.ok);

  ClusteringEngine engine;
  engine.registry().Add("a", pts_a);
  engine.registry().Add("b", pts_b);
  EngineResponse got_a, got_b;
  std::thread ta([&] {
    EngineRequest r = req;
    r.dataset = "a";
    got_a = engine.Run(r);
  });
  std::thread tb([&] {
    EngineRequest r = req;
    r.dataset = "b";
    got_b = engine.Run(r);
  });
  ta.join();
  tb.join();
  ASSERT_TRUE(got_a.ok) << got_a.error;
  ASSERT_TRUE(got_b.ok) << got_b.error;
  EXPECT_EQ(got_a.mst_weight, want_a.mst_weight);
  EXPECT_EQ(got_b.mst_weight, want_b.mst_weight);
  ASSERT_EQ(got_a.mst->size(), want_a.mst->size());
  ASSERT_EQ(got_b.mst->size(), want_b.mst->size());
  EXPECT_EQ(SortedWeights(*got_a.mst), SortedWeights(*want_a.mst));
  EXPECT_EQ(SortedWeights(*got_b.mst), SortedWeights(*want_b.mst));
  EXPECT_EQ(*got_a.core_dist, *want_a.core_dist);
  EXPECT_EQ(*got_b.core_dist, *want_b.core_dist);
  EXPECT_GE(engine.executor().stats().builds_total, uint64_t{2});
}

// N threads requesting the same uncached artifact must coalesce onto one
// build: exactly one response reports building the MST, and every thread
// comes back holding the same shared_ptr snapshot.
TEST(EngineConcurrency, DuplicateArtifactRequestsCoalesce) {
  auto pts = SeedSpreaderVarden<2>(2500, 47, 3);
  ClusteringEngine engine;
  engine.registry().Add("d", pts);

  constexpr int kThreads = 6;
  std::vector<EngineResponse> res(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      EngineRequest req;
      req.dataset = "d";
      req.type = QueryType::kHdbscan;
      req.min_pts = 8;
      res[t] = engine.Run(req);
    });
  }
  for (auto& th : threads) th.join();

  int mst_builds = 0, tree_builds = 0;
  for (const auto& r : res) {
    ASSERT_TRUE(r.ok) << r.error;
    mst_builds += static_cast<int>(
        std::count(r.built.begin(), r.built.end(), "mst@8"));
    tree_builds += static_cast<int>(
        std::count(r.built.begin(), r.built.end(), "tree"));
    // Same physical snapshot, not an equal copy: coalesced waiters get
    // the builder's shared_ptr.
    EXPECT_EQ(r.mst.get(), res[0].mst.get());
    EXPECT_EQ(r.core_dist.get(), res[0].core_dist.get());
  }
  EXPECT_EQ(mst_builds, 1);
  EXPECT_EQ(tree_builds, 1);
}

// Mutating a batch-dynamic dataset excludes that dataset's builds (both
// take the exclusive per-dataset lock), and the end state is bit-identical
// to replaying the same batches serially.
TEST(EngineConcurrency, MutationExcludesBuildsAndMatchesSerialReplay) {
  constexpr int kBatches = 8;
  constexpr size_t kBatch = 150;
  std::vector<std::vector<std::vector<double>>> batches;
  std::mt19937_64 rng(59);
  std::uniform_real_distribution<double> u(0.0, 100.0);
  for (int b = 0; b < kBatches; ++b) {
    std::vector<std::vector<double>> rows(kBatch);
    for (auto& row : rows) row = {u(rng), u(rng)};
    batches.push_back(std::move(rows));
  }

  ClusteringEngine serial;
  serial.registry().AddDynamic("d", 2);
  for (const auto& rows : batches) {
    ASSERT_EQ(serial.InsertBatch("d", rows), "");
  }
  EngineRequest req;
  req.dataset = "d";
  req.type = QueryType::kHdbscan;
  req.min_pts = 6;
  EngineResponse want = serial.Run(req);
  ASSERT_TRUE(want.ok) << want.error;

  ClusteringEngine engine;
  engine.registry().AddDynamic("d", 2);
  std::atomic<int> failures{0};
  std::thread writer([&] {
    for (const auto& rows : batches) {
      if (!engine.InsertBatch("d", rows).empty()) failures.fetch_add(1);
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        EngineResponse r = engine.Run(req);
        // Builds interleave with inserts: any consistent prefix of the
        // stream is a valid answer; empty-dataset errors are too. Crashes
        // and torn state are what this test hunts (run under TSan in CI).
        if (r.ok && r.mst && r.mst->size() + 1 > kBatches * kBatch) {
          failures.fetch_add(1);
        }
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0);

  EngineResponse got = engine.Run(req);
  ASSERT_TRUE(got.ok) << got.error;
  EXPECT_EQ(got.mst_weight, want.mst_weight);
  ASSERT_EQ(got.mst->size(), want.mst->size());
  EXPECT_EQ(SortedWeights(*got.mst), SortedWeights(*want.mst));
  EXPECT_EQ(*got.core_dist, *want.core_dist);
}

// Regression guard for the Registry::Remove vs concurrent Run lifetime
// audit: Find hands each query its own shared_ptr, so an entry removed (or
// replaced) mid-query must stay alive — including its shared_mutex, which
// the query still holds — until the last in-flight query drops it. Queries
// racing a Remove must either answer from their snapshot or report
// "unknown dataset"; nothing may crash or corrupt state. Run under the
// ASan/UBSan CI job this validates the whole lifetime story.
TEST(EngineConcurrency, RemoveWhileQueriesInFlight) {
  auto pts = SeedSpreaderVarden<2>(1500, 37, 3);
  ClusteringEngine engine;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        EngineRequest req;
        req.dataset = "d";
        // Mix pure cache hits with builds of new parameterizations so some
        // queries hold the entry across long artifact builds.
        req.type = QueryType::kHdbscan;
        req.min_pts = 3 + (t * 31 + i++) % 6;
        EngineResponse r = engine.Run(req);
        if (!r.ok && r.error.find("unknown dataset") == std::string::npos) {
          failures.fetch_add(1);
        }
        if (r.ok && r.mst->size() + 1 != size_t{1500}) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (int cycle = 0; cycle < 10; ++cycle) {
    engine.registry().Add("d", pts);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    engine.registry().Remove("d");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace parhc
