// Tests for the flat-arena k-d tree and the shared traversal engine:
//
//  * structural equivalence against a sequential pointer-based reference
//    builder that replicates the build rule (same splits, boxes, diameters,
//    and point order);
//  * WSPD pair sets from the engine vs. a direct Algorithm-1 recursion over
//    the reference pointer tree;
//  * brute-force cross-checks (kNN, core distances) on random and
//    duplicate-heavy inputs;
//  * the flat bottom-up sweeps (AnnotateCoreDistances, RefreshComponents)
//    against per-node range scans.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <set>

#include "spatial/bccp.h"
#include "spatial/kdtree.h"
#include "spatial/knn.h"
#include "spatial/traverse.h"
#include "spatial/wspd.h"
#include "test_util.h"

namespace parhc {
namespace {

using test::DuplicatedPoints;
using test::RandomPoints;

// ---------------------------------------------------------------------------
// Reference pointer-based k-d tree: the layout this repo used before the
// arena refactor, rebuilt here sequentially with the exact same split rule
// (spatial median on the widest dimension, object-median fallback on
// degenerate splits, leaves at `leaf_size` points or zero diameter).
// ---------------------------------------------------------------------------

template <int D>
struct RefNode {
  Box<D> box;
  uint32_t begin = 0;
  uint32_t end = 0;
  std::unique_ptr<RefNode> left;
  std::unique_ptr<RefNode> right;
  double diameter = 0;

  bool IsLeaf() const { return left == nullptr; }
};

template <int D>
class RefKdTree {
 public:
  // Matches KdTree<D>::kSeqBuildCutoff: below it the arena build uses an
  // unstable swap partition, at or above it a stable blocked partition.
  static constexpr uint32_t kSeqBuildCutoff = 2048;

  RefKdTree(const std::vector<Point<D>>& points, uint32_t leaf_size)
      : leaf_size_(leaf_size), pts_(points), ids_(points.size()) {
    for (size_t i = 0; i < points.size(); ++i) {
      ids_[i] = static_cast<uint32_t>(i);
    }
    root_ = Build(0, static_cast<uint32_t>(points.size()));
  }

  const RefNode<D>* root() const { return root_.get(); }
  const std::vector<Point<D>>& points() const { return pts_; }
  const std::vector<uint32_t>& ids() const { return ids_; }

 private:
  std::unique_ptr<RefNode<D>> Build(uint32_t begin, uint32_t end) {
    auto node = std::make_unique<RefNode<D>>();
    node->begin = begin;
    node->end = end;
    node->box = Box<D>::Empty();
    for (uint32_t i = begin; i < end; ++i) node->box.Extend(pts_[i]);
    node->diameter = 2.0 * node->box.SphereRadius();
    uint32_t n = end - begin;
    if (n <= leaf_size_ || node->diameter == 0.0) return node;
    int axis = node->box.WidestDim();
    double split = 0.5 * (node->box.lo[axis] + node->box.hi[axis]);
    uint32_t mid = Partition(begin, end, axis, split);
    if (mid == begin || mid == end) {
      mid = begin + n / 2;
      MedianSplit(begin, end, mid, axis);
    }
    node->left = Build(begin, mid);
    node->right = Build(mid, end);
    return node;
  }

  uint32_t Partition(uint32_t begin, uint32_t end, int axis, double split) {
    if (end - begin < kSeqBuildCutoff) {
      // Swap partition, element-for-element as in the arena build.
      uint32_t i = begin;
      for (uint32_t j = begin; j < end; ++j) {
        if (pts_[j][axis] < split) {
          std::swap(pts_[i], pts_[j]);
          std::swap(ids_[i], ids_[j]);
          ++i;
        }
      }
      return i;
    }
    // The arena's blocked out-of-place partition is stable regardless of
    // block structure, so a stable_partition over (point, id) pairs matches.
    std::vector<std::pair<Point<D>, uint32_t>> tmp(end - begin);
    for (uint32_t i = begin; i < end; ++i) tmp[i - begin] = {pts_[i], ids_[i]};
    auto mid_it = std::stable_partition(
        tmp.begin(), tmp.end(),
        [&](const auto& e) { return e.first[axis] < split; });
    for (uint32_t i = begin; i < end; ++i) {
      pts_[i] = tmp[i - begin].first;
      ids_[i] = tmp[i - begin].second;
    }
    return begin + static_cast<uint32_t>(mid_it - tmp.begin());
  }

  void MedianSplit(uint32_t begin, uint32_t end, uint32_t mid, int axis) {
    std::vector<uint32_t> perm(end - begin);
    for (uint32_t i = 0; i < end - begin; ++i) perm[i] = begin + i;
    std::nth_element(perm.begin(), perm.begin() + (mid - begin), perm.end(),
                     [&](uint32_t a, uint32_t b) {
                       if (pts_[a][axis] != pts_[b][axis]) {
                         return pts_[a][axis] < pts_[b][axis];
                       }
                       return ids_[a] < ids_[b];
                     });
    std::vector<Point<D>> tmp_pts(end - begin);
    std::vector<uint32_t> tmp_ids(end - begin);
    for (uint32_t i = 0; i < end - begin; ++i) {
      tmp_pts[i] = pts_[perm[i]];
      tmp_ids[i] = ids_[perm[i]];
    }
    std::copy(tmp_pts.begin(), tmp_pts.end(), pts_.begin() + begin);
    std::copy(tmp_ids.begin(), tmp_ids.end(), ids_.begin() + begin);
  }

  uint32_t leaf_size_;
  std::vector<Point<D>> pts_;
  std::vector<uint32_t> ids_;
  std::unique_ptr<RefNode<D>> root_;
};

template <int D>
void CompareNodes(const KdTree<D>& tree, uint32_t v, const RefNode<D>* ref,
                  uint32_t* visited) {
  ++*visited;
  ASSERT_EQ(tree.NodeBegin(v), ref->begin);
  ASSERT_EQ(tree.NodeEnd(v), ref->end);
  ASSERT_EQ(tree.IsLeaf(v), ref->IsLeaf());
  ASSERT_EQ(tree.Diameter(v), ref->diameter);
  for (int d = 0; d < D; ++d) {
    ASSERT_EQ(tree.NodeBox(v).lo[d], ref->box.lo[d]);
    ASSERT_EQ(tree.NodeBox(v).hi[d], ref->box.hi[d]);
  }
  if (!ref->IsLeaf()) {
    CompareNodes(tree, tree.Left(v), ref->left.get(), visited);
    CompareNodes(tree, tree.Right(v), ref->right.get(), visited);
  }
}

template <int D>
void CheckStructuralEquivalence(const std::vector<Point<D>>& pts,
                                uint32_t leaf_size) {
  KdTree<D> tree(pts, leaf_size);
  RefKdTree<D> ref(pts, leaf_size);
  // Identical point reordering.
  ASSERT_EQ(tree.ids(), ref.ids());
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_EQ(tree.point(static_cast<uint32_t>(i)), ref.points()[i]);
  }
  // Identical splits, boxes, diameters — and the arena holds nothing else.
  uint32_t visited = 0;
  CompareNodes(tree, tree.root(), ref.root(), &visited);
  ASSERT_EQ(visited, tree.node_count());
}

TEST(FlatTree, MatchesPointerTreeRandom2D) {
  CheckStructuralEquivalence(RandomPoints<2>(3000, 11), 1);
}

TEST(FlatTree, MatchesPointerTreeRandom5DLeaf8) {
  CheckStructuralEquivalence(RandomPoints<5>(2500, 23), 8);
}

TEST(FlatTree, MatchesPointerTreeAcrossParallelBuildCutoff) {
  // > 2*kSeqBuildCutoff points so the parallel blocked partition runs.
  CheckStructuralEquivalence(RandomPoints<3>(6000, 31), 1);
}

TEST(FlatTree, MatchesPointerTreeDuplicateHeavy) {
  CheckStructuralEquivalence(DuplicatedPoints<2>(1500, 7), 1);
}

// ---------------------------------------------------------------------------
// WSPD through the engine vs. a direct Algorithm-1 recursion over the
// reference pointer tree.
// ---------------------------------------------------------------------------

using RangePair = std::array<uint32_t, 4>;  // (a.begin, a.end, b.begin, b.end)

template <int D>
void RefFindPair(const RefNode<D>* p, const RefNode<D>* pp, double s,
                 std::multiset<RangePair>& out) {
  if (WellSeparated(p->box, pp->box, s)) {
    out.insert({p->begin, p->end, pp->begin, pp->end});
    return;
  }
  const RefNode<D>* a = p;
  const RefNode<D>* b = pp;
  if (a->diameter < b->diameter) std::swap(a, b);
  if (a->IsLeaf()) std::swap(a, b);
  if (a->IsLeaf()) {
    out.insert({p->begin, p->end, pp->begin, pp->end});
    return;
  }
  RefFindPair(a->left.get(), b, s, out);
  RefFindPair(a->right.get(), b, s, out);
}

template <int D>
void RefWspd(const RefNode<D>* node, double s, std::multiset<RangePair>& out) {
  if (node->IsLeaf()) return;
  RefWspd(node->left.get(), s, out);
  RefWspd(node->right.get(), s, out);
  RefFindPair(node->left.get(), node->right.get(), s, out);
}

template <int D>
void CheckWspdMatchesReference(const std::vector<Point<D>>& pts, double s) {
  KdTree<D> tree(pts, 1);
  RefKdTree<D> ref(pts, 1);
  auto pairs = MaterializeWspd(tree, GeometricSeparation<D>{s});
  std::multiset<RangePair> got;
  for (const auto& pr : pairs) {
    got.insert({tree.NodeBegin(pr.a), tree.NodeEnd(pr.a),
                tree.NodeBegin(pr.b), tree.NodeEnd(pr.b)});
  }
  std::multiset<RangePair> expect;
  RefWspd(ref.root(), s, expect);
  EXPECT_EQ(got, expect);
}

TEST(EngineWspd, MatchesReferenceRecursionRandom) {
  CheckWspdMatchesReference(RandomPoints<2>(2000, 5), 2.0);
}

TEST(EngineWspd, MatchesReferenceRecursionDuplicateHeavy) {
  CheckWspdMatchesReference(DuplicatedPoints<2>(800, 19), 2.0);
}

TEST(EngineWspd, MatchesReferenceRecursionWideSeparation3D) {
  CheckWspdMatchesReference(RandomPoints<3>(1200, 3), 4.0);
}

// ---------------------------------------------------------------------------
// Brute-force cross-checks on duplicate-heavy inputs (random inputs are
// covered in spatial_test.cc).
// ---------------------------------------------------------------------------

TEST(EngineKnn, MatchesBruteForceDuplicateHeavy) {
  auto pts = DuplicatedPoints<3>(600, 41);
  KdTree<3> tree(pts, 1);
  constexpr int kK = 7;
  auto kth = KthNeighborDistances(tree, kK);
  auto brute = test::BruteCoreDistances(pts, kK);
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_NEAR(kth[i], brute[i], 1e-12) << "point " << i;
  }
}

TEST(EngineCoreDistances, MatchBruteForceDuplicateHeavy) {
  auto pts = DuplicatedPoints<2>(500, 13);
  KdTree<2> tree(pts, 1);
  auto fast = KthNeighborDistances(tree, 10);
  auto slow = test::BruteCoreDistances(pts, 10);
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_NEAR(fast[i], slow[i], 1e-12);
  }
}

// ---------------------------------------------------------------------------
// Flat bottom-up sweeps vs. per-node range scans.
// ---------------------------------------------------------------------------

TEST(BottomUpSweep, CoreDistanceAnnotationMatchesRangeScan) {
  auto pts = DuplicatedPoints<2>(700, 29);
  KdTree<2> tree(pts, 1);
  auto cd = test::BruteCoreDistances(pts, 5);
  tree.AnnotateCoreDistances(cd);
  for (uint32_t v = 0; v < tree.node_count(); ++v) {
    double mn = std::numeric_limits<double>::infinity(), mx = 0;
    for (uint32_t i = tree.NodeBegin(v); i < tree.NodeEnd(v); ++i) {
      mn = std::min(mn, cd[tree.id(i)]);
      mx = std::max(mx, cd[tree.id(i)]);
    }
    ASSERT_EQ(tree.CdMin(v), mn) << "node " << v;
    ASSERT_EQ(tree.CdMax(v), mx) << "node " << v;
  }
}

TEST(BottomUpSweep, RefreshComponentsMatchesRangeScan) {
  auto pts = RandomPoints<3>(2000, 37);
  KdTree<3> tree(pts, 4);
  // Arbitrary deterministic pseudo-components.
  auto find = [](uint32_t id) { return id % 5; };
  tree.RefreshComponents(find);
  for (uint32_t v = 0; v < tree.node_count(); ++v) {
    int64_t expect = static_cast<int64_t>(find(tree.id(tree.NodeBegin(v))));
    for (uint32_t i = tree.NodeBegin(v) + 1; i < tree.NodeEnd(v); ++i) {
      if (static_cast<int64_t>(find(tree.id(i))) != expect) {
        expect = -1;
        break;
      }
    }
    ASSERT_EQ(tree.Component(v), expect) << "node " << v;
  }
}

}  // namespace
}  // namespace parhc
