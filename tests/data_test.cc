// Dataset generators and CSV IO.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "data/generators.h"
#include "data/io.h"
#include "test_util.h"

namespace parhc {
namespace {

TEST(UniformFillGen, DeterministicAndInBounds) {
  auto a = UniformFill<3>(5000, 7);
  auto b = UniformFill<3>(5000, 7);
  ASSERT_EQ(a.size(), 5000u);
  EXPECT_EQ(a, b);  // same seed, same data
  double side = std::sqrt(5000.0);
  for (const auto& p : a) {
    for (int d = 0; d < 3; ++d) {
      ASSERT_GE(p[d], 0.0);
      ASSERT_LT(p[d], side);
    }
  }
  auto c = UniformFill<3>(5000, 8);
  EXPECT_NE(a, c);  // different seed, different data
}

TEST(UniformFillGen, RoughlyUniformOccupancy) {
  constexpr size_t kN = 40000;
  auto pts = UniformFill<2>(kN, 3);
  double side = std::sqrt(static_cast<double>(kN));
  // 4x4 grid of cells: each should hold ~1/16 of the points.
  std::array<size_t, 16> cells{};
  for (const auto& p : pts) {
    int cx = std::min(3, static_cast<int>(4 * p[0] / side));
    int cy = std::min(3, static_cast<int>(4 * p[1] / side));
    cells[4 * cy + cx]++;
  }
  for (size_t c : cells) {
    EXPECT_NEAR(static_cast<double>(c), kN / 16.0, kN / 16.0 * 0.15);
  }
}

TEST(VardenGen, ProducesVaryingLocalDensity) {
  auto pts = SeedSpreaderVarden<2>(20000, 5, 8);
  ASSERT_EQ(pts.size(), 20000u);
  // Variable-density clusters: the 10-NN distance should vary by far more
  // than an order of magnitude across points (uniform data would not).
  KdTree<2> tree(pts, 8);
  auto cd = KthNeighborDistances(tree, 10);
  std::sort(cd.begin(), cd.end());
  double p10 = cd[cd.size() / 10], p90 = cd[cd.size() * 9 / 10];
  EXPECT_GT(p90 / std::max(p10, 1e-12), 3.0);
}

TEST(VardenGen, Deterministic) {
  EXPECT_EQ(SeedSpreaderVarden<3>(1000, 2, 4),
            SeedSpreaderVarden<3>(1000, 2, 4));
}

TEST(LevyGen, ExtremeSkew) {
  auto pts = SkewedLevy<3>(20000, 1);
  KdTree<3> tree(pts, 8);
  auto cd = KthNeighborDistances(tree, 10);
  std::sort(cd.begin(), cd.end());
  // Heavy-tailed walks produce dwell clusters and long jumps: the spread is
  // far beyond what uniform data shows (~1.5x between these quantiles).
  double p10 = cd[cd.size() / 10], p99 = cd[cd.size() * 99 / 100];
  EXPECT_GT(p99 / std::max(p10, 1e-12), 5.0);
}

TEST(GaussGen, BlobsAreDenserThanBackground) {
  auto pts = ClusteredGaussians<7>(20000, 9, 8);
  KdTree<7> tree(pts, 8);
  auto cd = KthNeighborDistances(tree, 10);
  std::sort(cd.begin(), cd.end());
  EXPECT_GT(cd[cd.size() * 99 / 100] / std::max(cd[cd.size() / 2], 1e-12),
            2.0);
}

TEST(CsvIo, RoundTrip) {
  auto pts = test::RandomPoints<5>(500, 33);
  std::string path =
      (std::filesystem::temp_directory_path() / "parhc_io_test.csv").string();
  WritePointsCsv(path, pts);
  auto back = ReadPointsCsvAs<5>(path);
  ASSERT_EQ(back.size(), pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    for (int d = 0; d < 5; ++d) {
      ASSERT_DOUBLE_EQ(back[i][d], pts[i][d]);
    }
  }
  std::remove(path.c_str());
}

TEST(BinIo, RoundTripIsBitExact) {
  auto pts = test::RandomPoints<5>(500, 33);
  std::string path =
      (std::filesystem::temp_directory_path() / "parhc_io_test.bin").string();
  WritePointsBin(path, pts);
  PointsBinHeader h = ReadPointsBinHeader(path);
  EXPECT_EQ(h.dim, 5u);
  EXPECT_EQ(h.count, 500u);
  auto back = ReadPointsBinAs<5>(path);
  ASSERT_EQ(back.size(), pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    for (int d = 0; d < 5; ++d) {
      // Binary IO stores raw doubles: exact equality, not CSV's
      // parse-precision equality.
      ASSERT_EQ(back[i][d], pts[i][d]);
    }
  }
  std::remove(path.c_str());
}

TEST(BinIo, CsvAndBinLoadIdenticalRows) {
  auto pts = test::RandomPoints<3>(200, 7);
  auto dir = std::filesystem::temp_directory_path();
  std::string csv = (dir / "parhc_io_rt.csv").string();
  std::string bin = (dir / "parhc_io_rt.bin").string();
  WritePointsCsv(csv, pts);
  WritePointsBin(bin, pts);
  auto from_csv = ReadPointsCsv(csv);
  auto from_bin = ReadPointsBin(bin);
  ASSERT_EQ(from_csv.size(), from_bin.size());
  for (size_t i = 0; i < from_csv.size(); ++i) {
    ASSERT_EQ(from_csv[i].size(), from_bin[i].size());
    for (size_t d = 0; d < from_csv[i].size(); ++d) {
      // CSV writes 17 significant digits, so the parsed double round-trips
      // to the same bits the binary path stores directly.
      ASSERT_EQ(from_csv[i][d], from_bin[i][d]);
    }
  }
  std::remove(csv.c_str());
  std::remove(bin.c_str());
}

TEST(BinIo, RowsOverloadAndHeaderValidation) {
  std::string path =
      (std::filesystem::temp_directory_path() / "parhc_io_rows.bin").string();
  std::vector<std::vector<double>> rows = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  WritePointsBin(path, rows);
  EXPECT_EQ(ReadPointsBin(path), rows);
  std::remove(path.c_str());
}

TEST(BinIo, MalformedFilesThrowInsteadOfAborting) {
  auto dir = std::filesystem::temp_directory_path();
  std::string missing = (dir / "parhc_io_absent.bin").string();
  EXPECT_THROW(ReadPointsBin(missing), std::runtime_error);
  EXPECT_THROW(ReadPointsBinHeader(missing), std::runtime_error);

  std::string garbage = (dir / "parhc_io_garbage.bin").string();
  {
    FILE* f = std::fopen(garbage.c_str(), "wb");
    std::fputs("1.5,2.5\n3.5,4.5\n", f);  // a CSV is not a PHCB file
    std::fclose(f);
  }
  EXPECT_THROW(ReadPointsBin(garbage), std::runtime_error);

  std::string truncated = (dir / "parhc_io_trunc.bin").string();
  WritePointsBin(truncated, test::RandomPoints<3>(100, 4));
  std::filesystem::resize_file(truncated, 16 + 50 * 3 * sizeof(double));
  EXPECT_THROW(ReadPointsBin(truncated), std::runtime_error);
  EXPECT_THROW(ReadPointsBinAs<3>(truncated), std::runtime_error);

  // Wrong compile-time dimension on a well-formed file.
  std::string good = (dir / "parhc_io_dim.bin").string();
  WritePointsBin(good, test::RandomPoints<3>(10, 4));
  EXPECT_THROW(ReadPointsBinAs<5>(good), std::runtime_error);
  std::remove(garbage.c_str());
  std::remove(truncated.c_str());
  std::remove(good.c_str());
}

TEST(CsvIo, SkipsCommentsAndBlankLines) {
  std::string path =
      (std::filesystem::temp_directory_path() / "parhc_io_test2.csv").string();
  {
    FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("# header comment\n1.5,2.5\n\n3.5,4.5\n", f);
    std::fclose(f);
  }
  auto rows = ReadPointsCsv(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0][0], 1.5);
  EXPECT_DOUBLE_EQ(rows[1][1], 4.5);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace parhc
