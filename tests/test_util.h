// Shared test helpers: deterministic point generators and MST oracles.
#pragma once

#include <algorithm>
#include <random>
#include <vector>

#include "data/generators.h"
#include "geometry/point.h"
#include "graph/edge.h"
#include "graph/prim.h"
#include "hdbscan/core_distance.h"
#include "parallel/scheduler.h"

namespace parhc {
namespace test {

// Exercise real concurrency in every test binary even on few-core CI
// machines (oversubscription still interleaves the workers).
struct ForceParallelWorkers {
  ForceParallelWorkers() { SetNumWorkers(4); }
};
inline ForceParallelWorkers force_parallel_workers;

template <int D>
std::vector<Point<D>> RandomPoints(size_t n, uint64_t seed,
                                   double side = 100.0) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, side);
  std::vector<Point<D>> pts(n);
  for (auto& p : pts) {
    for (int d = 0; d < D; ++d) p[d] = u(rng);
  }
  return pts;
}

/// Points with heavy duplication: roughly n/4 distinct locations.
template <int D>
std::vector<Point<D>> DuplicatedPoints(size_t n, uint64_t seed) {
  auto base = RandomPoints<D>((n + 3) / 4, seed);
  std::vector<Point<D>> pts(n);
  std::mt19937_64 rng(seed ^ 0xabcdef);
  for (size_t i = 0; i < n; ++i) pts[i] = base[rng() % base.size()];
  return pts;
}

inline double TotalWeight(const std::vector<WeightedEdge>& edges) {
  double s = 0;
  for (const auto& e : edges) s += e.w;
  return s;
}

/// Ascending weight multiset of `edges` (for MST equivalence checks that
/// must ignore tied-edge identity).
inline std::vector<double> SortedWeights(const std::vector<WeightedEdge>& edges) {
  std::vector<double> w(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) w[i] = edges[i].w;
  std::sort(w.begin(), w.end());
  return w;
}

/// Typed points as runtime rows (the registry/engine ingestion format).
template <int D>
std::vector<std::vector<double>> RowsFrom(const std::vector<Point<D>>& pts) {
  std::vector<std::vector<double>> rows(pts.size(), std::vector<double>(D));
  for (size_t i = 0; i < pts.size(); ++i) {
    for (int d = 0; d < D; ++d) rows[i][d] = pts[i][d];
  }
  return rows;
}

/// Exact EMST weight by dense Prim.
template <int D>
double PrimEmstWeight(const std::vector<Point<D>>& pts) {
  auto mst = PrimMst(pts.size(), [&](uint32_t i, uint32_t j) {
    return Distance(pts[i], pts[j]);
  });
  return TotalWeight(mst);
}

/// Brute-force core distances (no tree).
template <int D>
std::vector<double> BruteCoreDistances(const std::vector<Point<D>>& pts,
                                       int min_pts) {
  size_t n = pts.size();
  std::vector<double> cd(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> d(n);
    for (size_t j = 0; j < n; ++j) d[j] = Distance(pts[i], pts[j]);
    std::nth_element(d.begin(), d.begin() + (min_pts - 1), d.end());
    cd[i] = d[min_pts - 1];
  }
  return cd;
}

/// Exact mutual-reachability MST weight by dense Prim.
template <int D>
double PrimMutualReachabilityWeight(const std::vector<Point<D>>& pts,
                                    int min_pts) {
  auto cd = BruteCoreDistances(pts, min_pts);
  auto mst = PrimMst(pts.size(), [&](uint32_t i, uint32_t j) {
    return std::max({Distance(pts[i], pts[j]), cd[i], cd[j]});
  });
  return TotalWeight(mst);
}

}  // namespace test
}  // namespace parhc
